package freshen_test

import (
	"math"
	"testing"

	"freshen"
	"freshen/internal/schedule"
)

// TestIntegrationPipeline drives the full stack end to end: generate a
// workload, plan with every strategy, quantize to integer counts,
// expand to a timeline, deploy in the simulator, and cross-check every
// metric against the closed forms.
func TestIntegrationPipeline(t *testing.T) {
	spec := freshen.TableTwoWorkload()
	spec.Theta = 1.0
	spec.Seed = 77
	elems, err := freshen.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	bandwidth := spec.SyncsPerPeriod

	strategies := []struct {
		name string
		cfg  freshen.PlanConfig
	}{
		{"exact", freshen.PlanConfig{Bandwidth: bandwidth}},
		{"partitioned", freshen.PlanConfig{
			Bandwidth: bandwidth, Strategy: freshen.StrategyPartitioned,
			Key: freshen.KeyPF, NumPartitions: 50,
		}},
		{"clustered", freshen.DefaultHeuristics(bandwidth, 50)},
	}
	var exactPF float64
	for _, s := range strategies {
		s := s
		t.Run(s.name, func(t *testing.T) {
			plan, err := freshen.MakePlan(elems, s.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plan.BandwidthUsed > bandwidth*(1+1e-6) {
				t.Fatalf("over budget: %v", plan.BandwidthUsed)
			}
			if s.name == "exact" {
				exactPF = plan.Perceived
			} else if plan.Perceived > exactPF+1e-9 {
				t.Fatalf("heuristic %v beats exact %v", plan.Perceived, exactPF)
			}

			// Quantized execution stays close to the fractional plan.
			counts, err := schedule.Quantize(plan.Freqs)
			if err != nil {
				t.Fatal(err)
			}
			qpf, err := freshen.PerceivedFreshness(nil, elems, schedule.QuantizedFreqs(counts))
			if err != nil {
				t.Fatal(err)
			}
			if plan.Perceived-qpf > 0.02 {
				t.Errorf("quantization cost %v too high", plan.Perceived-qpf)
			}

			// Timeline expansion respects the slot budget.
			events, err := plan.Timeline(2, 9)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(float64(len(events)) - 2*plan.BandwidthUsed); d > 0.05*2*plan.BandwidthUsed+float64(len(elems)) {
				t.Errorf("timeline has %d events for bandwidth %v over 2 periods", len(events), plan.BandwidthUsed)
			}

			// Simulated deployment agrees with the planned objective.
			res, err := freshen.Simulate(freshen.SimConfig{
				Elements:          elems,
				Freqs:             plan.Freqs,
				Periods:           40,
				WarmupPeriods:     4,
				AccessesPerPeriod: 20000,
				Seed:              13,
			})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.MonitoredPF-plan.Perceived) > 0.02 {
				t.Errorf("simulated PF %v vs planned %v", res.MonitoredPF, plan.Perceived)
			}
			if math.Abs(res.AnalyticPF-plan.Perceived) > 1e-9 {
				t.Errorf("analytic PF %v vs planned %v", res.AnalyticPF, plan.Perceived)
			}
		})
	}
}

// TestIntegrationLearningLoop closes the operational loop: a mirror
// that starts ignorant (uniform profile, prior rates) converges toward
// the oracle plan as it learns from simulated accesses and polls.
func TestIntegrationLearningLoop(t *testing.T) {
	spec := freshen.TableTwoWorkload()
	spec.NumObjects = 100
	spec.UpdatesPerPeriod = 200
	spec.SyncsPerPeriod = 50
	spec.Theta = 1.2
	spec.Seed = 21
	truth, err := freshen.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := freshen.MakePlan(truth, freshen.PlanConfig{Bandwidth: 50})
	if err != nil {
		t.Fatal(err)
	}

	// The ignorant mirror: uniform profile, all change rates guessed
	// at the fleet mean.
	ignorant := append([]freshen.Element(nil), truth...)
	for i := range ignorant {
		ignorant[i].AccessProb = 1 / float64(len(ignorant))
		ignorant[i].Lambda = 2
	}
	naive, err := freshen.MakePlan(ignorant, freshen.PlanConfig{Bandwidth: 50})
	if err != nil {
		t.Fatal(err)
	}
	naivePF, err := freshen.PerceivedFreshness(nil, truth, naive.Freqs)
	if err != nil {
		t.Fatal(err)
	}

	// Learn: profile from a simulated access log, rates from simulated
	// polling, then re-plan.
	accesses := make([]int, 0, 20000)
	for i := 0; i < len(truth); i++ {
		n := int(truth[i].AccessProb * 20000)
		for j := 0; j < n; j++ {
			accesses = append(accesses, i)
		}
	}
	learnedProfile, err := freshen.ProfileFromAccessLog(len(truth), accesses, 1)
	if err != nil {
		t.Fatal(err)
	}
	learned := append([]freshen.Element(nil), truth...)
	if err := freshen.ApplyProfile(learned, learnedProfile); err != nil {
		t.Fatal(err)
	}
	// Rates via the public estimation API over synthetic poll streams.
	for i := range learned {
		history := make([]freshen.Poll, 60)
		for j := range history {
			// Deterministic pseudo-polls: changed on a fraction of
			// polls matching 1 - e^{-λ·I} at I = 0.5.
			q := 1 - math.Exp(-truth[i].Lambda*0.5)
			history[j] = freshen.Poll{Elapsed: 0.5, Changed: float64(j%60)/60 < q}
		}
		rate, err := freshen.EstimateChangeRate(history)
		if err != nil {
			t.Fatal(err)
		}
		learned[i].Lambda = rate
	}
	informed, err := freshen.MakePlan(learned, freshen.PlanConfig{Bandwidth: 50})
	if err != nil {
		t.Fatal(err)
	}
	informedPF, err := freshen.PerceivedFreshness(nil, truth, informed.Freqs)
	if err != nil {
		t.Fatal(err)
	}

	if informedPF <= naivePF {
		t.Errorf("learning did not help: informed %v vs naive %v", informedPF, naivePF)
	}
	if oracle.Perceived-informedPF > 0.1*oracle.Perceived {
		t.Errorf("informed plan %v too far below oracle %v", informedPF, oracle.Perceived)
	}
}

// TestIntegrationSizedPipeline exercises the Extended Problem end to
// end with Pareto sizes and FBA hand-down.
func TestIntegrationSizedPipeline(t *testing.T) {
	spec := freshen.TableTwoWorkload()
	spec.Theta = 1.0
	spec.Sizes = freshen.SizePareto
	spec.ParetoShape = 1.1
	spec.SizeAlignment = freshen.Reverse
	spec.Seed = 31
	elems, err := freshen.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: spec.SyncsPerPeriod})
	if err != nil {
		t.Fatal(err)
	}
	heuristic, err := freshen.MakePlan(elems, freshen.PlanConfig{
		Bandwidth:     spec.SyncsPerPeriod,
		Strategy:      freshen.StrategyPartitioned,
		Key:           freshen.KeyPFOverSize,
		NumPartitions: 50,
		Allocation:    freshen.FBA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if heuristic.Perceived > exact.Perceived+1e-9 {
		t.Fatalf("heuristic %v beats exact %v", heuristic.Perceived, exact.Perceived)
	}
	if exact.Perceived-heuristic.Perceived > 0.05 {
		t.Errorf("sized heuristic %v too far below exact %v", heuristic.Perceived, exact.Perceived)
	}
	if heuristic.BandwidthUsed > spec.SyncsPerPeriod*(1+1e-6) {
		t.Errorf("over budget: %v", heuristic.BandwidthUsed)
	}
}
