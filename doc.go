// Package freshen is a scalable, application-aware data freshening
// library: it schedules the refreshing of a mirror's local copies
// against a master source so that the freshness users actually
// perceive — weighted by how often each copy is accessed — is
// maximized under a bandwidth budget.
//
// It implements Carney, Lee & Zdonik, "Scalable Application-Aware Data
// Freshening" (ICDE 2003): the perceived-freshness objective, the
// exact Lagrange (water-filling) solution of the Core and Extended
// (variable object size) Problems, the P/λ/P-over-λ/PF partitioning
// heuristics with FFA and FBA bandwidth hand-down, k-means refinement
// of partitions, profile aggregation and drift-triggered re-planning,
// change-rate estimation from poll histories, and a discrete-event
// simulator for end-to-end validation.
//
// # Quick start
//
//	elems := []freshen.Element{
//		{ID: 0, Lambda: 5, AccessProb: 0.7, Size: 1}, // hot and volatile
//		{ID: 1, Lambda: 1, AccessProb: 0.3, Size: 1},
//	}
//	plan, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: 3})
//	// plan.Freqs holds refreshes/period per element;
//	// plan.Perceived the expected fraction of accesses served fresh.
//
// For large mirrors use the heuristic pipeline the paper recommends:
//
//	cfg := freshen.DefaultHeuristics(bandwidth, 100 /* partitions */)
//	plan, err := freshen.MakePlan(elems, cfg)
//
// The runnable programs under examples/ and the experiment registry in
// cmd/freshenctl reproduce every table and figure of the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
package freshen
