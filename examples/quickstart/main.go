// Quickstart: plan the refreshing of a small mirror and compare the
// profile-aware schedule against the interest-blind baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"freshen"
)

func main() {
	// A six-element mirror. Lambda is how often each source object
	// changes per period; AccessProb is the aggregated user profile.
	// Note the tension: the hottest object is also the most volatile.
	elems := []freshen.Element{
		{ID: 0, Lambda: 8, AccessProb: 0.40, Size: 1}, // hot, very volatile
		{ID: 1, Lambda: 3, AccessProb: 0.25, Size: 1},
		{ID: 2, Lambda: 1, AccessProb: 0.15, Size: 1},
		{ID: 3, Lambda: 5, AccessProb: 0.10, Size: 1},
		{ID: 4, Lambda: 0.5, AccessProb: 0.07, Size: 1},
		{ID: 5, Lambda: 12, AccessProb: 0.03, Size: 1}, // cold, churning
	}
	const bandwidth = 6 // refreshes per period

	plan, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: bandwidth})
	if err != nil {
		log.Fatal(err)
	}
	gf, err := freshen.SolveGF(elems, bandwidth)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("element  lambda  access  PF-aware freq  interest-blind freq")
	for i, e := range elems {
		fmt.Printf("%7d  %6.1f  %6.2f  %13.2f  %19.2f\n",
			e.ID, e.Lambda, e.AccessProb, plan.Freqs[i], gf.Freqs[i])
	}
	fmt.Printf("\nperceived freshness: profile-aware %.4f vs interest-blind %.4f (+%.1f%%)\n",
		plan.Perceived, gf.Perceived, 100*(plan.Perceived/gf.Perceived-1))

	// Expand the plan into the first few concrete refresh operations.
	events, err := plan.Timeline(1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst refresh operations of the period:")
	for i, ev := range events {
		if i == 8 {
			fmt.Printf("  ... %d more\n", len(events)-8)
			break
		}
		fmt.Printf("  t=%.3f  refresh element %d\n", ev.Time, ev.Element)
	}

	// Validate the plan end to end in the discrete-event simulator.
	res, err := freshen.Simulate(freshen.SimConfig{
		Elements:          elems,
		Freqs:             plan.Freqs,
		Periods:           50,
		WarmupPeriods:     5,
		AccessesPerPeriod: 10000,
		Seed:              1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated: %.4f of %d accesses saw a fresh copy (planned %.4f)\n",
		res.MonitoredPF, res.Accesses, plan.Perceived)
}
