// Pocketmirror: the paper's future-work scenario — a mirror with room
// for only a fraction of the database (an edge node, a mobile cache).
// Profiles then decide not just how often to refresh but *what to
// host*: spending storage on objects nobody reads, or on objects too
// volatile to keep fresh, wastes both capacity and bandwidth.
//
// Run with: go run ./examples/pocketmirror
package main

import (
	"fmt"
	"log"

	"freshen"
)

func main() {
	// A 2000-object database with web-like interest skew.
	spec := freshen.WorkloadSpec{
		NumObjects:       2000,
		UpdatesPerPeriod: 4000,
		SyncsPerPeriod:   400,
		Theta:            1.1,
		UpdateStdDev:     1.5,
		ChangeAlignment:  freshen.Shuffled,
		Seed:             11,
	}
	elems, err := freshen.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("capacity  hosted  perceived freshness  (% of full-mirror optimum)")
	full := 0.0
	for _, frac := range []float64{1.0, 0.5, 0.25, 0.1, 0.05} {
		res, err := freshen.SelectMirror(freshen.SelectionProblem{
			Candidates: elems,
			Capacity:   frac * float64(len(elems)),
			Bandwidth:  spec.SyncsPerPeriod,
		})
		if err != nil {
			log.Fatal(err)
		}
		if frac == 1.0 {
			full = res.Perceived
		}
		fmt.Printf("%7.0f%%  %6d  %19.4f  (%.0f%%)\n",
			frac*100, res.HostedCount, res.Perceived, 100*res.Perceived/full)
	}

	fmt.Println("\nThe pocket mirror keeps most of the perceived freshness with a")
	fmt.Println("fraction of the storage: the profile concentrates value in few")
	fmt.Println("objects, and the selector also skips objects whose churn would")
	fmt.Println("eat bandwidth without staying fresh.")

	// Show what kind of object gets dropped first: compare the hosted
	// set's mean interest and change rate against the dropped set's.
	res, err := freshen.SelectMirror(freshen.SelectionProblem{
		Candidates: elems,
		Capacity:   0.1 * float64(len(elems)),
		Bandwidth:  spec.SyncsPerPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	var hostP, hostL, dropP, dropL float64
	var nh, nd int
	for i, e := range elems {
		if res.Hosted[i] {
			hostP += e.AccessProb
			hostL += e.Lambda
			nh++
		} else {
			dropP += e.AccessProb
			dropL += e.Lambda
			nd++
		}
	}
	fmt.Printf("\nat 10%% capacity: hosted %d objects carrying %.1f%% of all accesses\n",
		nh, 100*hostP)
	fmt.Printf("mean change rate: hosted %.2f vs dropped %.2f updates/period\n",
		hostL/float64(nh), dropL/float64(nd))
}
