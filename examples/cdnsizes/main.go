// Cdnsizes: a CDN edge cache with wildly variable object sizes (paper
// Section 5). Small, hot, churning objects (stock tickers, scores,
// weather) share the origin link with huge, static ones (videos,
// installers) — sizes follow a Pareto and are *reverse*-aligned with
// change rate, the configuration the paper calls realistic.
//
// The example shows the two Section 5 lessons: plan with sizes in the
// constraint (Σ sᵢfᵢ ≤ B, not Σ fᵢ ≤ B), and hand partition bandwidth
// down per-byte (FBA) rather than per-refresh (FFA).
//
// Run with: go run ./examples/cdnsizes
package main

import (
	"fmt"
	"log"

	"freshen"
)

func main() {
	spec := freshen.WorkloadSpec{
		NumObjects:       5000,
		UpdatesPerPeriod: 10000,
		SyncsPerPeriod:   2500, // origin-link budget in size units
		Theta:            1.0,
		UpdateStdDev:     1.0,
		ChangeAlignment:  freshen.Shuffled,
		Sizes:            freshen.SizePareto,
		ParetoShape:      1.1,
		SizeAlignment:    freshen.Reverse, // big objects rarely change
		Seed:             3,
	}
	elems, err := freshen.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}
	bandwidth := spec.SyncsPerPeriod

	// Lesson 1: size-aware vs size-blind planning.
	aware, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: bandwidth})
	if err != nil {
		log.Fatal(err)
	}
	blindElems := append([]freshen.Element(nil), elems...)
	for i := range blindElems {
		blindElems[i].Size = 1
	}
	blind, err := freshen.MakePlan(blindElems, freshen.PlanConfig{Bandwidth: bandwidth})
	if err != nil {
		log.Fatal(err)
	}
	// Deploy the blind schedule on the real mirror: scale uniformly so
	// it fits the true link budget, then score it.
	var used float64
	for i, e := range elems {
		used += e.Size * blind.Freqs[i]
	}
	scaled := make([]float64, len(elems))
	for i, f := range blind.Freqs {
		scaled[i] = f * bandwidth / used
	}
	blindPF, err := freshen.PerceivedFreshness(nil, elems, scaled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("size-aware plan: PF %.4f\n", aware.Perceived)
	fmt.Printf("size-blind plan deployed on the real link: PF %.4f\n", blindPF)
	fmt.Println("(ignoring sizes overfeeds the big static objects)")

	// Lesson 2: FFA vs FBA hand-down in the heuristic pipeline.
	fmt.Println("\nheuristic hand-down with K=25 partitions (PF/s key):")
	for _, tc := range []struct {
		name  string
		alloc freshen.Allocation
	}{{"FFA (equal refreshes)", freshen.FFA}, {"FBA (equal bandwidth)", freshen.FBA}} {
		plan, err := freshen.MakePlan(elems, freshen.PlanConfig{
			Bandwidth:     bandwidth,
			Strategy:      freshen.StrategyPartitioned,
			Key:           freshen.KeyPFOverSize,
			NumPartitions: 25,
			Allocation:    tc.alloc,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s PF %.4f (bandwidth used %.1f)\n",
			tc.name, plan.Perceived, plan.BandwidthUsed)
	}

	// A concrete pair: the smallest and largest funded objects.
	small, large := 0, 0
	for i, e := range elems {
		if aware.Freqs[i] <= 0 {
			continue
		}
		if e.Size < elems[small].Size || aware.Freqs[small] == 0 {
			small = i
		}
		if e.Size > elems[large].Size || aware.Freqs[large] == 0 {
			large = i
		}
	}
	fmt.Printf("\nsmallest funded object: size %.3f -> %.2f refreshes/period\n",
		elems[small].Size, aware.Freqs[small])
	fmt.Printf("largest funded object:  size %.3f -> %.2f refreshes/period\n",
		elems[large].Size, aware.Freqs[large])
	fmt.Println("(a small object can take more refreshes while consuming less bandwidth)")
}
