// Stockmirror: the paper's day-trader scenario. A mirror of stock
// quotes where the most interesting tickers are interesting *because*
// they are volatile — the "aligned" case in which ignoring user
// interest is most costly (paper Section 2.2.1, profile P2, and
// Figure 3b).
//
// User interest arrives as individual trader profiles which the mirror
// aggregates (weighting premium customers higher), exactly as the
// paper's profile model describes.
//
// Run with: go run ./examples/stockmirror
package main

import (
	"fmt"
	"log"

	"freshen"
)

func main() {
	// The tradable universe: volatile momentum names and sleepy
	// blue chips. Change rate = quote updates per scheduling period.
	tickers := []struct {
		symbol string
		lambda float64
	}{
		{"MEME", 40}, {"VOLT", 32}, {"CHIP", 25}, {"BIO+", 18},
		{"NRGY", 12}, {"BANK", 6}, {"RAIL", 3}, {"UTIL", 1.5},
		{"BOND", 0.8}, {"GOLD", 0.4},
	}
	elems := make([]freshen.Element, len(tickers))
	for i, tk := range tickers {
		elems[i] = freshen.Element{ID: i, Lambda: tk.lambda, Size: 1}
	}

	// Trader profiles: day traders chase volatility, the pension desk
	// watches the sleepy end, and the premium desk (weight 3) sits in
	// between.
	users := []freshen.User{
		{Name: "daytrader-1", Weight: 1, Interests: map[int]float64{0: 5, 1: 4, 2: 3, 3: 1}},
		{Name: "daytrader-2", Weight: 1, Interests: map[int]float64{0: 4, 1: 3, 4: 1}},
		{Name: "pension-desk", Weight: 1, Interests: map[int]float64{8: 3, 9: 2, 7: 1}},
		{Name: "premium-desk", Weight: 3, Interests: map[int]float64{1: 2, 2: 2, 5: 1, 6: 1}},
	}
	master, err := freshen.AggregateProfiles(len(elems), users)
	if err != nil {
		log.Fatal(err)
	}
	if err := freshen.ApplyProfile(elems, master); err != nil {
		log.Fatal(err)
	}

	const bandwidth = 30 // quote fetches per period
	pf, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: bandwidth})
	if err != nil {
		log.Fatal(err)
	}
	gf, err := freshen.SolveGF(elems, bandwidth)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ticker  updates/perd  interest  PF freq  GF freq")
	for i, tk := range tickers {
		fmt.Printf("%-6s  %12.1f  %8.3f  %7.2f  %7.2f\n",
			tk.symbol, tk.lambda, elems[i].AccessProb, pf.Freqs[i], gf.Freqs[i])
	}
	fmt.Printf("\nperceived freshness: profile-aware %.4f vs interest-blind %.4f\n",
		pf.Perceived, gf.Perceived)
	fmt.Println("(the GF baseline starves MEME/VOLT precisely because they churn,")
	fmt.Println(" yet those are the quotes the traders actually look at)")

	// Measure both schedules in the simulator: the fraction of quote
	// lookups served with a current price.
	for _, tc := range []struct {
		name  string
		freqs []float64
	}{{"profile-aware", pf.Freqs}, {"interest-blind", gf.Freqs}} {
		res, err := freshen.Simulate(freshen.SimConfig{
			Elements:          elems,
			Freqs:             tc.freqs,
			Periods:           60,
			WarmupPeriods:     6,
			AccessesPerPeriod: 20000,
			Seed:              7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("simulated %-14s: %.4f of lookups fresh (%d lookups)\n",
			tc.name, res.MonitoredPF, res.Accesses)
	}
}
