// Webmirror: a search-engine-scale crawl mirror. 200 000 pages with
// Zipf-skewed popularity and gamma-distributed change rates — the
// regime where the paper's heuristics earn their keep. The example
// compares exact, partitioned and clustered planning on both quality
// and wall-clock cost, then demonstrates drift-triggered re-planning
// when the audience's interests shift.
//
// Run with: go run ./examples/webmirror
package main

import (
	"fmt"
	"log"

	"freshen"
)

func main() {
	spec := freshen.WorkloadSpec{
		NumObjects:       200000,
		UpdatesPerPeriod: 400000, // each page changes ~2x per period
		SyncsPerPeriod:   100000, // we can re-crawl half that
		Theta:            1.0,    // web-like popularity skew
		UpdateStdDev:     2.0,
		ChangeAlignment:  freshen.Shuffled,
		Seed:             1,
	}
	elems, err := freshen.GenerateWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}
	bandwidth := spec.SyncsPerPeriod

	fmt.Printf("crawl mirror: %d pages, %.0f refreshes/period budget\n\n",
		len(elems), bandwidth)
	fmt.Println("strategy                      PF      plan time")
	configs := []struct {
		name string
		cfg  freshen.PlanConfig
	}{
		{"exact (water-filling)", freshen.PlanConfig{Bandwidth: bandwidth}},
		{"partitioned (PF, K=100)", freshen.PlanConfig{
			Bandwidth: bandwidth, Strategy: freshen.StrategyPartitioned,
			Key: freshen.KeyPF, NumPartitions: 100,
		}},
		{"clustered (K=50, 10 iters)", freshen.DefaultHeuristics(bandwidth, 50)},
	}
	for _, c := range configs {
		plan, err := freshen.MakePlan(elems, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s  %.4f  %v\n", c.name, plan.Perceived, plan.Elapsed)
	}

	// Drift: a breaking-news event makes a cold corner of the site
	// hot. The adaptive planner notices from the access stream alone.
	fmt.Println("\nadaptive re-planning on interest drift:")
	ap, err := freshen.NewAdaptivePlanner(elems, freshen.DefaultHeuristics(bandwidth, 50), 0.2, 50000)
	if err != nil {
		log.Fatal(err)
	}
	// Simulate the news spike: half the traffic now hits 100 formerly
	// cold pages.
	hot := make([]int, 100)
	for i := range hot {
		hot[i] = len(elems) - 1 - i
	}
	replans := 0
	for i := 0; i < 400000 && replans == 0; i++ {
		var page int
		if i%2 == 0 {
			page = hot[i%len(hot)]
		} else {
			page = i % 1000 // the usual head traffic
		}
		replanned, err := ap.Observe(page)
		if err != nil {
			log.Fatal(err)
		}
		if replanned {
			replans++
			fmt.Printf("  drift detected after %d accesses; re-planned\n", i+1)
		}
	}
	if replans == 0 {
		fmt.Println("  no drift detected (unexpected)")
		return
	}
	newPlan := ap.Plan()
	coldPage := hot[0]
	fmt.Printf("  page %d refresh frequency: now %.3f/period (PF %.4f)\n",
		coldPage, newPlan.Freqs[coldPage], newPlan.Perceived)
}
