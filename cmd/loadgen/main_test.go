package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testCfg(mirror string) config {
	return config{
		mirror:      mirror,
		n:           10,
		theta:       1,
		rate:        10,
		duration:    time.Second,
		seed:        1,
		scrapeEvery: time.Second,
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-mirror", "http://m:8081"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.mirror != "http://m:8081" || cfg.n != 500 || cfg.theta != 1.0 || cfg.rate != 50 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.duration != 30*time.Second || cfg.seed != 1 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.metricsURL != "" || cfg.scrapeEvery != time.Second || cfg.obsOut != "BENCH_obs.json" {
		t.Errorf("scrape defaults not applied: %+v", cfg)
	}
	if cfg.serveOut != "" || cfg.workers != 4 || cfg.stages != "500,1000,2000,4000" {
		t.Errorf("serve defaults not applied: %+v", cfg)
	}
	if cfg.stageDuration != 5*time.Second || cfg.warmup != time.Second || cfg.stallThreshold != 100*time.Millisecond {
		t.Errorf("serve defaults not applied: %+v", cfg)
	}
	if cfg.sustainFrac != 0.95 || cfg.maxErrRate != 0.01 || cfg.accessAllocs != -1 || cfg.handlerAllocs != -1 {
		t.Errorf("serve defaults not applied: %+v", cfg)
	}
	if cfg.pastKnee || cfg.statusURL != "" {
		t.Errorf("overload defaults not applied: %+v", cfg)
	}
}

func TestParseFlagsOverridesAndErrors(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-mirror", "http://m", "-n", "7", "-theta", "0.5", "-rate", "5",
		"-duration", "2s", "-seed", "3",
		"-metrics-url", "http://m/metrics", "-scrape-every", "250ms", "-obs-out", "/tmp/o.json",
		"-serve-out", "/tmp/s.json", "-workers", "8", "-stages", "100,200",
		"-stage-duration", "3s", "-warmup", "500ms", "-stall", "20ms",
		"-sustain-frac", "0.9", "-max-err-rate", "0.05",
		"-access-allocs", "0", "-handler-allocs", "2",
		"-past-knee", "-status-url", "http://m/status",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := config{
		mirror: "http://m", n: 7, theta: 0.5, rate: 5,
		duration: 2 * time.Second, seed: 3,
		metricsURL: "http://m/metrics", scrapeEvery: 250 * time.Millisecond, obsOut: "/tmp/o.json",
		serveOut: "/tmp/s.json", workers: 8, stages: "100,200",
		stageDuration: 3 * time.Second, warmup: 500 * time.Millisecond, stallThreshold: 20 * time.Millisecond,
		sustainFrac: 0.9, maxErrRate: 0.05, accessAllocs: 0, handlerAllocs: 2,
		pastKnee: true, statusURL: "http://m/status",
	}
	if cfg != want {
		t.Errorf("parsed %+v, want %+v", cfg, want)
	}
	for _, args := range [][]string{
		{"-rate", "not-a-number"},
		{"-duration", "sideways"},
		{"-no-such-flag"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

func TestRunValidation(t *testing.T) {
	alter := func(f func(*config)) config {
		cfg := testCfg("http://x")
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  config
	}{
		{"missing mirror", alter(func(c *config) { c.mirror = "" })},
		{"zero objects", alter(func(c *config) { c.n = 0 })},
		{"zero rate", alter(func(c *config) { c.rate = 0 })},
		{"zero duration", alter(func(c *config) { c.duration = 0 })},
		{"negative theta", alter(func(c *config) { c.theta = -1 })},
		{"zero scrape cadence", alter(func(c *config) {
			c.metricsURL = "http://x/metrics"
			c.scrapeEvery = 0
		})},
	}
	for _, tc := range cases {
		if err := run(tc.cfg); err == nil {
			t.Errorf("%s: invalid configuration accepted", tc.name)
		}
	}
}

func TestRunDrivesTraffic(t *testing.T) {
	var hits int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/object/") {
			http.NotFound(w, r)
			return
		}
		if _, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/object/")); err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		atomic.AddInt64(&hits, 1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	cfg := testCfg(srv.URL)
	cfg.n = 20
	cfg.rate = 200
	cfg.duration = 300 * time.Millisecond
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&hits); got < 20 {
		t.Errorf("mirror saw only %d requests", got)
	}
}

// stubExposition is a plausible freshend exposition for scrape tests.
const stubExposition = `# HELP freshen_pf Live perceived freshness.
# TYPE freshen_pf gauge
freshen_pf 0.87
# TYPE freshen_refresh_duration_seconds histogram
freshen_refresh_duration_seconds_bucket{outcome="success",le="0.001"} 5
freshen_refresh_duration_seconds_bucket{outcome="success",le="0.01"} 9
freshen_refresh_duration_seconds_bucket{outcome="success",le="+Inf"} 10
freshen_refresh_duration_seconds_sum{outcome="success"} 0.05
freshen_refresh_duration_seconds_count{outcome="success"} 10
# TYPE freshen_solver_solve_seconds histogram
freshen_solver_solve_seconds_bucket{le="+Inf"} 4
freshen_solver_solve_seconds_sum 0.02
freshen_solver_solve_seconds_count 4
`

// TestScrapeLoopWritesBenchmark drives traffic against a stub mirror
// whose /metrics serves a fixed exposition, and checks the written
// BENCH_obs.json: scrape counts, the PF trajectory, and the latency
// digests derived from the histogram.
func TestScrapeLoopWritesBenchmark(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write([]byte(stubExposition))
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "BENCH_obs.json")
	// A pre-existing cold_start section (written by `freshenctl
	// bench-coldstart`) must survive loadgen's rewrite verbatim.
	if err := os.WriteFile(out, []byte(`{"cold_start":{"n":200,"policies":[]}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(srv.URL)
	cfg.rate = 100
	cfg.duration = 350 * time.Millisecond
	cfg.metricsURL = srv.URL + "/metrics"
	cfg.scrapeEvery = 50 * time.Millisecond
	cfg.obsOut = out
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report obsReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_obs.json is not valid JSON: %v", err)
	}
	if report.Scrapes < 3 {
		t.Errorf("scrapes = %d, want >= 3 (initial + cadence + final)", report.Scrapes)
	}
	if report.ScrapeErrors != 0 || report.BadLines != 0 {
		t.Errorf("clean exposition produced errors: %+v", report)
	}
	if len(report.PFTrajectory) != report.Scrapes {
		t.Errorf("pf trajectory has %d points for %d scrapes", len(report.PFTrajectory), report.Scrapes)
	}
	for _, pf := range report.PFTrajectory {
		if pf != 0.87 {
			t.Errorf("pf point = %v, want 0.87", pf)
		}
	}
	if report.RefreshP50Seconds <= 0 || report.RefreshP50Seconds > 0.001 {
		t.Errorf("p50 = %v, want in (0, 0.001] (5 of 10 in the first bucket)", report.RefreshP50Seconds)
	}
	if report.RefreshP99Seconds < report.RefreshP50Seconds {
		t.Errorf("p99 %v < p50 %v", report.RefreshP99Seconds, report.RefreshP50Seconds)
	}
	if report.SolverMeanSeconds != 0.005 {
		t.Errorf("solver mean = %v, want 0.005 (0.02/4)", report.SolverMeanSeconds)
	}
	if report.RefreshCount != 10 {
		t.Errorf("refresh count = %v, want 10", report.RefreshCount)
	}
	if report.Requests == 0 {
		t.Error("no traffic recorded")
	}
	var coldStart struct {
		N        int               `json:"n"`
		Policies []json.RawMessage `json:"policies"`
	}
	if err := json.Unmarshal(report.ColdStart, &coldStart); err != nil {
		t.Fatalf("cold_start section not preserved: %v (%s)", err, report.ColdStart)
	}
	if coldStart.N != 200 || coldStart.Policies == nil {
		t.Errorf("cold_start content mangled: %s", report.ColdStart)
	}
}

// TestScrapeMalformedExposition: garbage lines are counted, a fully
// unparseable endpoint counts as a scrape error, and neither kills the
// run or the report.
func TestScrapeMalformedExposition(t *testing.T) {
	cases := []struct {
		name       string
		body       string
		wantErrors bool
		wantBad    bool
	}{
		{"partial garbage", "# TYPE freshen_pf gauge\nfreshen_pf 0.5\nthis is not a metric line at all {{{\n", false, true},
		{"complete garbage", "<html>not metrics</html>\n", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/metrics" {
					w.Write([]byte(tc.body))
					return
				}
				w.Write([]byte("ok"))
			}))
			defer srv.Close()
			out := filepath.Join(t.TempDir(), "obs.json")
			cfg := testCfg(srv.URL)
			cfg.rate = 100
			cfg.duration = 200 * time.Millisecond
			cfg.metricsURL = srv.URL + "/metrics"
			cfg.scrapeEvery = 50 * time.Millisecond
			cfg.obsOut = out
			if err := run(cfg); err != nil {
				t.Fatalf("malformed exposition killed the run: %v", err)
			}
			var report obsReport
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(data, &report); err != nil {
				t.Fatal(err)
			}
			if tc.wantErrors && report.ScrapeErrors == 0 {
				t.Errorf("scrape errors not counted: %+v", report)
			}
			if tc.wantBad && report.BadLines == 0 {
				t.Errorf("bad lines not counted: %+v", report)
			}
		})
	}
}

// TestScrapeUnreachableMirror: a dead metrics endpoint is a counted
// error per attempt, not a crash.
func TestScrapeUnreachableMirror(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	out := filepath.Join(t.TempDir(), "obs.json")
	cfg := testCfg(srv.URL)
	cfg.duration = 150 * time.Millisecond
	cfg.metricsURL = "http://127.0.0.1:1/metrics"
	cfg.scrapeEvery = 50 * time.Millisecond
	cfg.obsOut = out
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	var report obsReport
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.ScrapeErrors == 0 {
		t.Errorf("unreachable endpoint produced no scrape errors: %+v", report)
	}
	if report.Scrapes != 0 {
		t.Errorf("scrapes = %d from an unreachable endpoint", report.Scrapes)
	}
}
