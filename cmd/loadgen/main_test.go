package main

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	if err := run("", 10, 1, 10, time.Second, 1); err == nil {
		t.Error("missing mirror must fail")
	}
	if err := run("http://x", 0, 1, 10, time.Second, 1); err == nil {
		t.Error("zero objects must fail")
	}
	if err := run("http://x", 10, 1, 0, time.Second, 1); err == nil {
		t.Error("zero rate must fail")
	}
	if err := run("http://x", 10, 1, 10, 0, 1); err == nil {
		t.Error("zero duration must fail")
	}
	if err := run("http://x", 10, -1, 10, time.Second, 1); err == nil {
		t.Error("negative theta must fail")
	}
}

func TestRunDrivesTraffic(t *testing.T) {
	var hits int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/object/") {
			http.NotFound(w, r)
			return
		}
		if _, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/object/")); err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		atomic.AddInt64(&hits, 1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	if err := run(srv.URL, 20, 1.0, 200, 300*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&hits); got < 20 {
		t.Errorf("mirror saw only %d requests", got)
	}
}
