// Command loadgen drives Zipf-distributed read traffic against a
// freshend mirror, closing the live-demo loop: mocksource updates
// objects, freshend mirrors them, loadgen plays the user community the
// mirror learns its profile from.
//
// Usage:
//
//	loadgen -mirror http://localhost:8081 -n 500 -theta 1.0 -rate 100
//
// With -metrics-url set, loadgen also scrapes the mirror's Prometheus
// exposition every -scrape-every while the traffic runs and writes an
// observability benchmark (PF trajectory, refresh latency quantiles,
// solver solve-time mean) to -obs-out:
//
//	loadgen -mirror http://localhost:8081 -n 500 \
//	        -metrics-url http://localhost:8081/metrics -obs-out BENCH_obs.json
//
// With -serve-out set, loadgen instead runs a closed-loop serving
// benchmark: a paced worker pool ramps Zipf GET traffic through the
// -stages RPS targets and writes per-stage latency quantiles, stall
// counts, and the maximum sustained rate (see serve.go):
//
//	loadgen -mirror http://localhost:8081 -n 500 -serve-out BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"freshen/internal/obs"
	"freshen/internal/stats"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2) // the FlagSet already printed the diagnostic and usage
	}
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

type config struct {
	mirror      string
	n           int
	theta, rate float64
	duration    time.Duration
	seed        int64
	metricsURL  string
	scrapeEvery time.Duration
	obsOut      string

	// Serve-benchmark mode (see serve.go); empty serveOut disables it.
	serveOut       string
	workers        int
	stages         string
	stageDuration  time.Duration
	warmup         time.Duration
	stallThreshold time.Duration
	sustainFrac    float64
	maxErrRate     float64
	accessAllocs   float64
	handlerAllocs  float64
	pastKnee       bool
	statusURL      string
}

// parseFlags builds the generator configuration from a command line;
// split from main so tests can exercise flag handling directly.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	mirror := fs.String("mirror", "", "base URL of the freshend mirror; required")
	n := fs.Int("n", 500, "number of objects (must match the mirror)")
	theta := fs.Float64("theta", 1.0, "zipf skew of the simulated community")
	rate := fs.Float64("rate", 50, "requests per second")
	duration := fs.Duration("duration", 30*time.Second, "how long to run")
	seed := fs.Int64("seed", 1, "traffic seed")
	metricsURL := fs.String("metrics-url", "", "mirror /metrics URL to scrape while driving traffic; empty disables scraping")
	scrapeEvery := fs.Duration("scrape-every", time.Second, "scrape cadence for -metrics-url")
	obsOut := fs.String("obs-out", "BENCH_obs.json", "where the observability benchmark is written (with -metrics-url)")
	serveOut := fs.String("serve-out", "", "write a closed-loop serving benchmark here instead of running demo traffic; empty disables serve mode")
	workers := fs.Int("workers", 4, "concurrent closed-loop clients (serve mode)")
	stages := fs.String("stages", "500,1000,2000,4000", "comma-separated target-RPS ramp (serve mode)")
	stageDuration := fs.Duration("stage-duration", 5*time.Second, "how long each ramp stage runs (serve mode)")
	warmup := fs.Duration("warmup", time.Second, "untimed warmup before the ramp (serve mode)")
	stall := fs.Duration("stall", 100*time.Millisecond, "latency above which a request counts as a stall (serve mode)")
	sustainFrac := fs.Float64("sustain-frac", 0.95, "fraction of the target a stage must achieve to count as sustained (serve mode)")
	maxErrRate := fs.Float64("max-err-rate", 0.01, "error rate above which a stage is not sustained (serve mode)")
	accessAllocs := fs.Float64("access-allocs", -1, "measured allocs/op of Mirror.Access, folded into the report; -1 means not measured")
	handlerAllocs := fs.Float64("handler-allocs", -1, "measured allocs/op of the /object handler, folded into the report; -1 means not measured")
	pastKnee := fs.Bool("past-knee", false, "keep ramping past the first unsustained stage to record shedding behavior (serve mode)")
	statusURL := fs.String("status-url", "", "mirror /status URL sampled after the ramp for mode and shed counters; empty disables (serve mode)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return config{
		mirror:      *mirror,
		n:           *n,
		theta:       *theta,
		rate:        *rate,
		duration:    *duration,
		seed:        *seed,
		metricsURL:  *metricsURL,
		scrapeEvery: *scrapeEvery,
		obsOut:      *obsOut,

		serveOut:       *serveOut,
		workers:        *workers,
		stages:         *stages,
		stageDuration:  *stageDuration,
		warmup:         *warmup,
		stallThreshold: *stall,
		sustainFrac:    *sustainFrac,
		maxErrRate:     *maxErrRate,
		accessAllocs:   *accessAllocs,
		handlerAllocs:  *handlerAllocs,
		pastKnee:       *pastKnee,
		statusURL:      *statusURL,
	}, nil
}

func run(cfg config) error {
	if cfg.mirror == "" {
		return fmt.Errorf("-mirror is required")
	}
	if cfg.n <= 0 {
		return fmt.Errorf("n must be positive, got %d", cfg.n)
	}
	if cfg.serveOut != "" {
		return runServe(cfg)
	}
	if cfg.rate <= 0 || cfg.duration <= 0 {
		return fmt.Errorf("rate and duration must be positive")
	}
	if cfg.metricsURL != "" && cfg.scrapeEvery <= 0 {
		return fmt.Errorf("scrape-every must be positive, got %v", cfg.scrapeEvery)
	}
	zipf, err := stats.NewZipf(cfg.n, cfg.theta)
	if err != nil {
		return err
	}

	var scraper *metricsScraper
	if cfg.metricsURL != "" {
		scraper = newMetricsScraper(cfg.metricsURL)
		stop := scraper.start(cfg.scrapeEvery)
		defer stop()
	}

	rng := stats.NewRNG(cfg.seed)
	interval := time.Duration(float64(time.Second) / cfg.rate)
	deadline := time.Now().Add(cfg.duration)
	requests, errors := 0, 0
	for time.Now().Before(deadline) {
		id := zipf.Sample(rng) - 1
		resp, err := http.Get(fmt.Sprintf("%s/object/%d", cfg.mirror, id))
		if err != nil {
			errors++
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errors++
			}
			requests++
		}
		time.Sleep(interval)
	}
	log.Printf("loadgen: %d requests (%d errors) over %v at zipf θ=%.2f", requests, errors, cfg.duration, cfg.theta)

	if scraper != nil {
		report := scraper.report(cfg.metricsURL)
		report.Requests = requests
		report.RequestErrors = errors
		// Preserve sections other tools merged into the same file (the
		// cold-start estimator benchmark writes under "cold_start").
		if raw, err := os.ReadFile(cfg.obsOut); err == nil {
			var prev struct {
				ColdStart json.RawMessage `json:"cold_start"`
			}
			if json.Unmarshal(raw, &prev) == nil {
				report.ColdStart = prev.ColdStart
			}
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.obsOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", cfg.obsOut, err)
		}
		log.Printf("loadgen: wrote %s (%d scrapes, %d scrape errors)", cfg.obsOut, report.Scrapes, report.ScrapeErrors)
	}
	return nil
}

// obsReport is the observability benchmark loadgen writes: what a live
// mirror's exposition said while this traffic ran.
type obsReport struct {
	MetricsURL   string    `json:"metrics_url"`
	Scrapes      int       `json:"scrapes"`
	ScrapeErrors int       `json:"scrape_errors"`
	BadLines     int       `json:"bad_exposition_lines"`
	PFTrajectory []float64 `json:"pf_trajectory"`

	// Latency digests from the final scrape (success refreshes).
	RefreshP50Seconds float64 `json:"refresh_p50_seconds"`
	RefreshP99Seconds float64 `json:"refresh_p99_seconds"`
	SolverMeanSeconds float64 `json:"solver_mean_seconds"`
	RefreshCount      float64 `json:"refresh_count"`

	Requests      int `json:"requests"`
	RequestErrors int `json:"request_errors"`

	// ColdStart carries the estimator cold-start benchmark merged into
	// the same file by `freshenctl bench-coldstart`; loadgen preserves
	// it verbatim when it rewrites the report.
	ColdStart json.RawMessage `json:"cold_start,omitempty"`
}

// metricsScraper polls a /metrics endpoint on a cadence, keeping the
// PF trajectory and the final exposition. Scrape failures and
// unparseable lines are counted, never fatal: a mirror mid-restart
// just leaves a gap in the trajectory.
type metricsScraper struct {
	url    string
	client *http.Client

	mu       sync.Mutex
	scrapes  int
	errors   int
	badLines int
	pf       []float64
	last     *obs.Exposition
}

func newMetricsScraper(url string) *metricsScraper {
	return &metricsScraper{url: url, client: &http.Client{Timeout: 5 * time.Second}}
}

// scrapeOnce fetches and folds in one exposition.
func (s *metricsScraper) scrapeOnce() {
	resp, err := s.client.Get(s.url)
	if err != nil {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
		return
	}
	e, err := obs.ParseExposition(resp.Body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.errors++
		return
	}
	s.scrapes++
	s.badLines += e.BadLines
	if pf, ok := e.Value("freshen_pf"); ok {
		s.pf = append(s.pf, pf)
	}
	s.last = e
}

// start launches the scrape loop and returns its stop function. One
// scrape runs immediately so even sub-cadence runs report something.
func (s *metricsScraper) start(every time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		s.scrapeOnce()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				s.scrapeOnce()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// report folds the collected scrapes into the benchmark document,
// taking one final scrape so the digests cover the whole run.
func (s *metricsScraper) report(url string) obsReport {
	s.scrapeOnce()
	s.mu.Lock()
	defer s.mu.Unlock()
	r := obsReport{
		MetricsURL:   url,
		Scrapes:      s.scrapes,
		ScrapeErrors: s.errors,
		BadLines:     s.badLines,
		PFTrajectory: s.pf,
	}
	if e := s.last; e != nil {
		if p50, ok := e.HistogramQuantile("freshen_refresh_duration_seconds", 0.5, "outcome", "success"); ok {
			r.RefreshP50Seconds = p50
		}
		if p99, ok := e.HistogramQuantile("freshen_refresh_duration_seconds", 0.99, "outcome", "success"); ok {
			r.RefreshP99Seconds = p99
		}
		r.RefreshCount, _ = e.Value("freshen_refresh_duration_seconds_count", "outcome", "success")
		sum, ok1 := e.Value("freshen_solver_solve_seconds_sum")
		count, ok2 := e.Value("freshen_solver_solve_seconds_count")
		if ok1 && ok2 && count > 0 {
			r.SolverMeanSeconds = sum / count
		}
	}
	return r
}
