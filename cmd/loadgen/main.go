// Command loadgen drives Zipf-distributed read traffic against a
// freshend mirror, closing the live-demo loop: mocksource updates
// objects, freshend mirrors them, loadgen plays the user community the
// mirror learns its profile from.
//
// Usage:
//
//	loadgen -mirror http://localhost:8081 -n 500 -theta 1.0 -rate 100
//
// It reports request throughput and exits after -duration; freshness
// metrics live on the mirror side (GET /status), since only the mirror
// can compare its copies against the source.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"freshen/internal/stats"
)

func main() {
	mirror := flag.String("mirror", "", "base URL of the freshend mirror; required")
	n := flag.Int("n", 500, "number of objects (must match the mirror)")
	theta := flag.Float64("theta", 1.0, "zipf skew of the simulated community")
	rate := flag.Float64("rate", 50, "requests per second")
	duration := flag.Duration("duration", 30*time.Second, "how long to run")
	seed := flag.Int64("seed", 1, "traffic seed")
	flag.Parse()

	if err := run(*mirror, *n, *theta, *rate, *duration, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(mirror string, n int, theta, rate float64, duration time.Duration, seed int64) error {
	if mirror == "" {
		return fmt.Errorf("-mirror is required")
	}
	if n <= 0 || rate <= 0 || duration <= 0 {
		return fmt.Errorf("n, rate and duration must be positive")
	}
	zipf, err := stats.NewZipf(n, theta)
	if err != nil {
		return err
	}
	rng := stats.NewRNG(seed)
	interval := time.Duration(float64(time.Second) / rate)
	deadline := time.Now().Add(duration)
	requests, errors := 0, 0
	for time.Now().Before(deadline) {
		id := zipf.Sample(rng) - 1
		resp, err := http.Get(fmt.Sprintf("%s/object/%d", mirror, id))
		if err != nil {
			errors++
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errors++
			}
			requests++
		}
		time.Sleep(interval)
	}
	log.Printf("loadgen: %d requests (%d errors) over %v at zipf θ=%.2f", requests, errors, duration, theta)
	return nil
}
