package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func serveTestCfg(mirror, out string) config {
	return config{
		mirror:         mirror,
		n:              32,
		theta:          1,
		seed:           1,
		serveOut:       out,
		workers:        2,
		stages:         "200",
		stageDuration:  300 * time.Millisecond,
		warmup:         50 * time.Millisecond,
		stallThreshold: 100 * time.Millisecond,
		sustainFrac:    0.5,
		maxErrRate:     0.01,
		accessAllocs:   -1,
		handlerAllocs:  -1,
	}
}

// objectStub serves GET /object/{id} like a mirror would.
func objectStub(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest, ok := strings.CutPrefix(r.URL.Path, "/object/")
		if !ok {
			http.NotFound(w, r)
			return
		}
		if _, err := strconv.Atoi(rest); err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		handler(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func readServeReport(t *testing.T, path string) serveReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report serveReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("%s is not valid JSON: %v", path, err)
	}
	return report
}

func TestParseStages(t *testing.T) {
	got, err := parseStages(" 500, 1000,2000 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{500, 1000, 2000}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "abc", "100,", "100,-5", "0"} {
		if _, err := parseStages(bad); err == nil {
			t.Errorf("parseStages(%q) accepted", bad)
		}
	}
}

func TestServeModeValidation(t *testing.T) {
	alter := func(f func(*config)) config {
		cfg := serveTestCfg("http://x", "/tmp/unused.json")
		f(&cfg)
		return cfg
	}
	cases := []struct {
		name string
		cfg  config
	}{
		{"zero workers", alter(func(c *config) { c.workers = 0 })},
		{"zero stage duration", alter(func(c *config) { c.stageDuration = 0 })},
		{"zero stall threshold", alter(func(c *config) { c.stallThreshold = 0 })},
		{"sustain frac above one", alter(func(c *config) { c.sustainFrac = 1.5 })},
		{"negative err rate", alter(func(c *config) { c.maxErrRate = -0.1 })},
		{"bad stages", alter(func(c *config) { c.stages = "fast,faster" })},
		{"negative theta", alter(func(c *config) { c.theta = -1 })},
	}
	for _, tc := range cases {
		if err := run(tc.cfg); err == nil {
			t.Errorf("%s: invalid configuration accepted", tc.name)
		}
	}
}

// TestServeModeWritesReport runs the ramp against a healthy stub and
// checks the written BENCH_serve.json end to end: stage shape, latency
// digests, the sustained verdict, and the alloc pass-throughs.
func TestServeModeWritesReport(t *testing.T) {
	srv := objectStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("object body"))
	})
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	cfg := serveTestCfg(srv.URL, out)
	cfg.accessAllocs = 0
	cfg.handlerAllocs = 0
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	report := readServeReport(t, out)
	if report.Mirror != srv.URL || report.Objects != 32 || report.Workers != 2 {
		t.Errorf("report header wrong: %+v", report)
	}
	if len(report.Stages) != 1 {
		t.Fatalf("got %d stages, want 1", len(report.Stages))
	}
	s := report.Stages[0]
	if s.TargetRPS != 200 || s.Requests == 0 || s.Errors != 0 {
		t.Errorf("stage result wrong: %+v", s)
	}
	if s.AchievedRPS <= 0 {
		t.Errorf("achieved rps = %v", s.AchievedRPS)
	}
	if !(s.P50Ms > 0 && s.P50Ms <= s.P99Ms && s.P99Ms <= s.P999Ms && s.P999Ms <= s.MaxMs) {
		t.Errorf("quantiles not ordered: %+v", s)
	}
	if report.MaxSustainedRPS <= 0 {
		t.Errorf("max sustained rps = %v, want > 0", report.MaxSustainedRPS)
	}
	if report.AccessAllocsPerOp != 0 || report.HandlerAllocsPerOp != 0 {
		t.Errorf("alloc pass-throughs lost: %+v", report)
	}
}

// TestServeModeCountsErrorsAndStopsRamp: a stub that always fails
// pushes the error rate past the cap, so the first stage is not
// sustained and the ramp stops there — but the report is still
// written, with the errors counted.
func TestServeModeCountsErrorsAndStopsRamp(t *testing.T) {
	srv := objectStub(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	cfg := serveTestCfg(srv.URL, out)
	cfg.stages = "200,400,800"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	report := readServeReport(t, out)
	if len(report.Stages) != 1 {
		t.Errorf("ramp did not stop at the failing stage: %d stages", len(report.Stages))
	}
	s := report.Stages[0]
	if s.Sustained {
		t.Error("an all-errors stage counted as sustained")
	}
	if s.Errors == 0 || s.Errors != s.Requests {
		t.Errorf("errors = %d of %d requests, want all", s.Errors, s.Requests)
	}
}

// TestServeModeShedsArePastKneeNotErrors: a stub that 503s every other
// request models admission control past the knee. With -past-knee the
// ramp runs every stage anyway, the 503s land in the shed column (not
// errors), and the admitted quantiles cover only the served responses.
func TestServeModeShedsArePastKneeNotErrors(t *testing.T) {
	var nreq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/object/", func(w http.ResponseWriter, r *http.Request) {
		if nreq.Add(1)%2 == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("object body"))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"mode":              "full",
			"mode_transitions":  uint64(2),
			"admitted_requests": uint64(1234),
			"shed_requests":     uint64(56),
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	cfg := serveTestCfg(srv.URL, out)
	cfg.stages = "200,400"
	cfg.pastKnee = true
	cfg.statusURL = srv.URL + "/status"
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	report := readServeReport(t, out)
	if !report.PastKnee {
		t.Error("past_knee not recorded in the report")
	}
	if len(report.Stages) != 2 {
		t.Fatalf("past-knee ramp stopped early: %d stages, want 2", len(report.Stages))
	}
	for i, s := range report.Stages {
		if s.Errors != 0 {
			t.Errorf("stage %d: shed responses counted as errors: %+v", i, s)
		}
		if s.Shed == 0 || s.ShedRate <= 0 {
			t.Errorf("stage %d: no shedding recorded: %+v", i, s)
		}
		if s.AdmittedRPS <= 0 || s.AdmittedRPS >= s.AchievedRPS {
			t.Errorf("stage %d: admitted rps %.1f not below achieved %.1f", i, s.AdmittedRPS, s.AchievedRPS)
		}
		if s.AdmittedP50Ms <= 0 || s.AdmittedP50Ms > s.AdmittedP99Ms {
			t.Errorf("stage %d: admitted quantiles wrong: %+v", i, s)
		}
	}
	if report.MirrorMode != "full" || report.MirrorModeTransitions != 2 {
		t.Errorf("status sample lost: mode=%q transitions=%d", report.MirrorMode, report.MirrorModeTransitions)
	}
	if report.MirrorShedRequests != 56 || report.MirrorAdmittedRequests != 1234 {
		t.Errorf("status counters lost: %+v", report)
	}
}

// TestServeModeStatusSamplingTolerant: a missing /status endpoint logs
// and leaves the mirror fields zero; it never fails the run.
func TestServeModeStatusSamplingTolerant(t *testing.T) {
	srv := objectStub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("object body"))
	})
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	cfg := serveTestCfg(srv.URL, out)
	cfg.statusURL = srv.URL + "/status" // objectStub 404s anything but /object/
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	report := readServeReport(t, out)
	if report.MirrorMode != "" || report.MirrorModeTransitions != 0 {
		t.Errorf("failed status sample recorded values: %+v", report)
	}
}

// TestServeModeCountsStalls: responses slower than the stall threshold
// are counted as stalls.
func TestServeModeCountsStalls(t *testing.T) {
	srv := objectStub(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(10 * time.Millisecond)
		w.Write([]byte("slow body"))
	})
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	cfg := serveTestCfg(srv.URL, out)
	cfg.stages = "50"
	cfg.stallThreshold = 2 * time.Millisecond
	cfg.warmup = 0
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	report := readServeReport(t, out)
	s := report.Stages[0]
	if s.Stalls != s.Requests || s.Stalls == 0 {
		t.Errorf("stalls = %d of %d requests, want all", s.Stalls, s.Requests)
	}
}
