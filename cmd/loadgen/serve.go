package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"freshen/internal/stats"
)

// The serve-benchmark mode (-serve-out): instead of the gentle
// open-loop demo traffic, loadgen runs a closed-loop benchmark against
// the mirror's lock-free read path. A pool of paced workers drives
// Zipf-distributed GET /object/{id} traffic through a ramp of target
// request rates while the mirror's refresh pipeline, breaker, and
// snapshot machinery run concurrently; each stage's latency quantiles,
// error rate, and stall count decide whether that rate was sustained.
// The result is BENCH_serve.json — the serving-path counterpart of
// BENCH_obs.json and BENCH_solver.json.

// serveReport is the document -serve-out writes.
type serveReport struct {
	Mirror           string  `json:"mirror"`
	Objects          int     `json:"objects"`
	Theta            float64 `json:"theta"`
	Workers          int     `json:"workers"`
	StageSeconds     float64 `json:"stage_seconds"`
	StallThresholdMs float64 `json:"stall_threshold_ms"`
	SustainFrac      float64 `json:"sustain_frac"`
	MaxErrRate       float64 `json:"max_err_rate"`

	// PastKnee records whether the ramp was allowed to continue past
	// the first unsustained stage (-past-knee), which is how the shed
	// columns below get non-trivial values: beyond the knee the mirror
	// is expected to 503 the excess, not to queue it.
	PastKnee bool `json:"past_knee"`

	Stages []stageResult `json:"stages"`

	// Mirror-side counters sampled from /status after the ramp
	// (-status-url); MirrorMode is empty when sampling was disabled or
	// failed. ModeTransitions counts degradation-mode changes over the
	// mirror's lifetime, so a clean overload run should leave it at
	// whatever the chaos script expects, not silently grow it.
	MirrorMode             string `json:"mirror_mode,omitempty"`
	MirrorModeTransitions  uint64 `json:"mirror_mode_transitions"`
	MirrorShedRequests     uint64 `json:"mirror_shed_requests"`
	MirrorAdmittedRequests uint64 `json:"mirror_admitted_requests"`

	// MaxSustainedRPS is the highest achieved rate among stages that
	// met the sustain criteria. When no stage qualified (the ramp
	// started past the knee, or the environment is too noisy for the
	// 95% pacing bar) it falls back to the highest achieved rate, so a
	// live, serving mirror never reports zero: zero means requests
	// failed, not that a target was missed.
	MaxSustainedRPS float64 `json:"max_sustained_rps"`

	// Allocations per operation on the serving path, measured by `go
	// test -bench` and passed through by scripts/bench_serve.sh so the
	// closed-loop numbers and the micro-benchmark travel together.
	// -1 means not measured (loadgen run without the script).
	AccessAllocsPerOp  float64 `json:"access_allocs_per_op"`
	HandlerAllocsPerOp float64 `json:"handler_allocs_per_op"`
}

// stageResult is one rung of the ramp.
type stageResult struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	// Shed counts 503 responses — load the mirror's admission control
	// turned away on purpose. Shed requests are not errors: past the
	// knee a healthy mirror sheds, and the benchmark's job is to show
	// the shed fraction rising while the admitted tail stays bounded.
	Shed     int     `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	// Stalls counts requests slower than the stall threshold — the
	// tail the RCU read path exists to keep empty (a mutex read path
	// stalls whenever a reader parks behind a commit).
	Stalls int     `json:"stalls"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Admitted quantiles cover only non-shed responses: the latency
	// the mirror delivered to traffic it accepted. Past the knee the
	// overall quantiles are dominated by fast 503s, so these are the
	// columns the degradation-envelope check reads.
	AdmittedRPS   float64 `json:"admitted_rps"`
	AdmittedP50Ms float64 `json:"admitted_p50_ms"`
	AdmittedP99Ms float64 `json:"admitted_p99_ms"`
	// Sustained: admitted rate >= sustain_frac * target with an error
	// rate (over admitted traffic, 503s excluded) at or under
	// max_err_rate.
	Sustained bool `json:"sustained"`
}

// parseStages turns the -stages flag ("500,1000,2000") into the ramp.
func parseStages(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	targets := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("stage %q is not a number", p)
		}
		if v <= 0 {
			return nil, fmt.Errorf("stage %q must be a positive RPS target", p)
		}
		targets = append(targets, v)
	}
	return targets, nil
}

// serveWorker is one closed-loop client: it paces itself to target/W
// requests per second, issuing the next request on schedule (or
// immediately, when the previous one ran long — a closed loop never
// queues a burst to catch up; falling behind shows up as a missed
// target instead).
type serveWorker struct {
	latenciesMs []float64
	admittedMs  []float64
	errors      int
	shed        int
	stalls      int
}

func (w *serveWorker) run(cfg config, client *http.Client, seed int64, interval, duration time.Duration) {
	zipf, err := stats.NewZipf(cfg.n, cfg.theta)
	if err != nil {
		// Validated in runServe before any worker starts.
		panic(err)
	}
	rng := stats.NewRNG(seed)
	stall := cfg.stallThreshold.Seconds() * 1000
	deadline := time.Now().Add(duration)
	next := time.Now()
	for time.Now().Before(deadline) {
		id := zipf.Sample(rng) - 1
		start := time.Now()
		admitted := false
		resp, err := client.Get(fmt.Sprintf("%s/object/%d", cfg.mirror, id))
		if err != nil {
			w.errors++
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusServiceUnavailable:
				// Admission control turned the request away; count it
				// as shed, not as an error, and keep its (fast) latency
				// out of the admitted digest.
				w.shed++
			case resp.StatusCode != http.StatusOK:
				w.errors++
				admitted = true
			default:
				admitted = true
			}
		}
		ms := time.Since(start).Seconds() * 1000
		w.latenciesMs = append(w.latenciesMs, ms)
		if admitted {
			w.admittedMs = append(w.admittedMs, ms)
		}
		if ms > stall {
			w.stalls++
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		} else {
			next = time.Now()
		}
	}
}

// runServeStage drives one rung of the ramp with cfg.workers concurrent
// closed-loop clients and digests their merged samples.
func runServeStage(cfg config, client *http.Client, target float64) stageResult {
	interval := time.Duration(float64(time.Second) * float64(cfg.workers) / target)
	workers := make([]serveWorker, cfg.workers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(w *serveWorker, seed int64) {
			defer wg.Done()
			w.run(cfg, client, seed, interval, cfg.stageDuration)
		}(&workers[i], cfg.seed+int64(i)+int64(target))
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := stageResult{TargetRPS: target}
	var ms, admittedMs []float64
	for i := range workers {
		ms = append(ms, workers[i].latenciesMs...)
		admittedMs = append(admittedMs, workers[i].admittedMs...)
		res.Errors += workers[i].errors
		res.Shed += workers[i].shed
		res.Stalls += workers[i].stalls
	}
	res.Requests = len(ms)
	if elapsed > 0 {
		res.AchievedRPS = float64(res.Requests) / elapsed
		res.AdmittedRPS = float64(res.Requests-res.Shed) / elapsed
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	if len(ms) > 0 {
		sort.Float64s(ms)
		res.P50Ms = stats.Quantile(ms, 0.50)
		res.P99Ms = stats.Quantile(ms, 0.99)
		res.P999Ms = stats.Quantile(ms, 0.999)
		res.MaxMs = ms[len(ms)-1]
	}
	if len(admittedMs) > 0 {
		sort.Float64s(admittedMs)
		res.AdmittedP50Ms = stats.Quantile(admittedMs, 0.50)
		res.AdmittedP99Ms = stats.Quantile(admittedMs, 0.99)
	}
	// Sustained is judged on admitted traffic: shed 503s are the
	// mirror declining load, not failing it, so they count against
	// the achieved rate but not the error rate.
	errRate := 0.0
	if admitted := res.Requests - res.Shed; admitted > 0 {
		errRate = float64(res.Errors) / float64(admitted)
	}
	res.Sustained = res.Requests > 0 &&
		res.AdmittedRPS >= cfg.sustainFrac*target &&
		errRate <= cfg.maxErrRate
	return res
}

// mirrorStatus is the slice of the mirror's /status document the serve
// benchmark records: the degradation mode and admission counters.
type mirrorStatus struct {
	Mode            string `json:"mode"`
	ModeTransitions uint64 `json:"mode_transitions"`
	Admitted        uint64 `json:"admitted_requests"`
	Shed            uint64 `json:"shed_requests"`
}

// sampleStatus fetches -status-url once; errors are logged, not fatal,
// so a mirror without the endpoint still produces a report.
func sampleStatus(client *http.Client, url string) (mirrorStatus, bool) {
	var st mirrorStatus
	resp, err := client.Get(url)
	if err != nil {
		log.Printf("loadgen: sampling %s: %v", url, err)
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Printf("loadgen: sampling %s: HTTP %d", url, resp.StatusCode)
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Printf("loadgen: decoding %s: %v", url, err)
		return st, false
	}
	return st, true
}

// runServe is the -serve-out entry point: warmup, then the stage ramp,
// stopping at the first unsustained stage (beyond the knee, a closed
// loop measures its own queueing, not the server), then the report.
func runServe(cfg config) error {
	if cfg.workers <= 0 {
		return fmt.Errorf("workers must be positive, got %d", cfg.workers)
	}
	if cfg.stageDuration <= 0 {
		return fmt.Errorf("stage-duration must be positive, got %v", cfg.stageDuration)
	}
	if cfg.stallThreshold <= 0 {
		return fmt.Errorf("stall threshold must be positive, got %v", cfg.stallThreshold)
	}
	if cfg.sustainFrac <= 0 || cfg.sustainFrac > 1 {
		return fmt.Errorf("sustain-frac must be in (0, 1], got %v", cfg.sustainFrac)
	}
	if cfg.maxErrRate < 0 || cfg.maxErrRate > 1 {
		return fmt.Errorf("max-err-rate must be in [0, 1], got %v", cfg.maxErrRate)
	}
	targets, err := parseStages(cfg.stages)
	if err != nil {
		return err
	}
	if _, err := stats.NewZipf(cfg.n, cfg.theta); err != nil {
		return err
	}

	// One shared transport with enough idle connections that the pool
	// never churns sockets mid-stage; the default of 2 per host would
	// turn every stage into a connection-setup benchmark.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = cfg.workers * 2
	transport.MaxIdleConnsPerHost = cfg.workers * 2
	client := &http.Client{Transport: transport, Timeout: 10 * time.Second}

	if cfg.warmup > 0 {
		warm := cfg
		warm.stageDuration = cfg.warmup
		runServeStage(warm, client, targets[0])
	}

	report := serveReport{
		Mirror:             cfg.mirror,
		Objects:            cfg.n,
		Theta:              cfg.theta,
		Workers:            cfg.workers,
		StageSeconds:       cfg.stageDuration.Seconds(),
		StallThresholdMs:   cfg.stallThreshold.Seconds() * 1000,
		SustainFrac:        cfg.sustainFrac,
		MaxErrRate:         cfg.maxErrRate,
		PastKnee:           cfg.pastKnee,
		AccessAllocsPerOp:  cfg.accessAllocs,
		HandlerAllocsPerOp: cfg.handlerAllocs,
	}
	best := 0.0
	for _, target := range targets {
		res := runServeStage(cfg, client, target)
		report.Stages = append(report.Stages, res)
		log.Printf("loadgen: stage %.0f rps -> achieved %.0f (admitted %.0f), p50 %.3fms p99 %.3fms p99.9 %.3fms (admitted p99 %.3fms), %d errors, %d shed, %d stalls, sustained=%v",
			target, res.AchievedRPS, res.AdmittedRPS, res.P50Ms, res.P99Ms, res.P999Ms, res.AdmittedP99Ms, res.Errors, res.Shed, res.Stalls, res.Sustained)
		if res.AchievedRPS > best {
			best = res.AchievedRPS
		}
		if res.Sustained {
			if res.AchievedRPS > report.MaxSustainedRPS {
				report.MaxSustainedRPS = res.AchievedRPS
			}
		} else if cfg.pastKnee {
			log.Printf("loadgen: stage %.0f rps not sustained; continuing past the knee", target)
		} else {
			log.Printf("loadgen: stage %.0f rps not sustained; stopping the ramp", target)
			break
		}
	}
	if report.MaxSustainedRPS == 0 {
		report.MaxSustainedRPS = best
	}
	if cfg.statusURL != "" {
		if st, ok := sampleStatus(client, cfg.statusURL); ok {
			report.MirrorMode = st.Mode
			report.MirrorModeTransitions = st.ModeTransitions
			report.MirrorShedRequests = st.Shed
			report.MirrorAdmittedRequests = st.Admitted
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.serveOut, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", cfg.serveOut, err)
	}
	log.Printf("loadgen: wrote %s (max sustained %.0f rps over %d stages)",
		cfg.serveOut, report.MaxSustainedRPS, len(report.Stages))
	return nil
}
