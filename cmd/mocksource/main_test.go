package main

import (
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name         string
		n            int
		mean, stddev float64
		period       time.Duration
	}{
		{"zero objects", 0, 2, 1, time.Second},
		{"zero mean", 10, 0, 1, time.Second},
		{"zero stddev", 10, 2, 0, time.Second},
		{"zero period", 10, 2, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(":0", tc.n, tc.mean, tc.stddev, false, tc.period, 1); err == nil {
				t.Fatal("invalid configuration accepted")
			}
		})
	}
}
