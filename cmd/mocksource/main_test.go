package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name         string
		n            int
		mean, stddev float64
		period       time.Duration
		faults       faultFlags
	}{
		{"zero objects", 0, 2, 1, time.Second, faultFlags{}},
		{"zero mean", 10, 0, 1, time.Second, faultFlags{}},
		{"zero stddev", 10, 2, 0, time.Second, faultFlags{}},
		{"zero period", 10, 2, 1, 0, faultFlags{}},
		{"fault rate above 1", 10, 2, 1, time.Second, faultFlags{rate: 1.5}},
		{"negative stall prob", 10, 2, 1, time.Second, faultFlags{stallProb: -0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config{addr: ":0", n: tc.n, mean: tc.mean, stddev: tc.stddev, period: tc.period, seed: 1, faults: tc.faults}
			if err := run(cfg); err == nil {
				t.Fatal("invalid configuration accepted")
			}
		})
	}
}

// TestParseFlagsValidatesFaults pins the startup contract for the
// fault knobs: an unusable injection schedule is a usage error before
// the server binds, never a silently-ignored flag.
func TestParseFlagsValidatesFaults(t *testing.T) {
	bad := [][]string{
		{"-fault-rate", "-0.1"},
		{"-fault-rate", "1.5"},
		{"-stall-prob", "-0.5"},
		{"-stall-prob", "2"},
		{"-fault-latency", "-1s"},
		{"-stall-for", "-5s"},
		{"-outage-after", "-1m"},
		{"-outage-for", "-30s"},
		{"-outage-for", "30s"},  // window with no start
		{"-outage-after", "1m"}, // start with no window
		{"-n", "0"},
		{"-no-such-flag"},
	}
	for _, args := range bad {
		cfg, err := parseFlags(args, io.Discard)
		if err == nil {
			t.Errorf("parseFlags(%v) accepted: %+v", args, cfg)
		}
	}
	good := [][]string{
		{},
		{"-fault-rate", "0.2", "-stall-prob", "0.1"},
		{"-outage-after", "1m", "-outage-for", "30s"},
	}
	for _, args := range good {
		if _, err := parseFlags(args, io.Discard); err != nil {
			t.Errorf("parseFlags(%v) rejected: %v", args, err)
		}
	}
}

func TestBuildHandlerInjectsFaults(t *testing.T) {
	// With a certain fault rate every request fails with 500.
	h, err := buildHandler(3, 2, 1, false, time.Second, 1, faultFlags{rate: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("fault rate 1 returned %s, want 500", resp.Status)
	}

	// Without injection the catalog serves normally.
	h, err = buildHandler(3, 2, 1, false, time.Second, 1, faultFlags{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(h)
	defer srv2.Close()
	resp, err = srv2.Client().Get(srv2.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("clean source returned %s", resp.Status)
	}
}
