package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name         string
		n            int
		mean, stddev float64
		period       time.Duration
		faults       faultFlags
	}{
		{"zero objects", 0, 2, 1, time.Second, faultFlags{}},
		{"zero mean", 10, 0, 1, time.Second, faultFlags{}},
		{"zero stddev", 10, 2, 0, time.Second, faultFlags{}},
		{"zero period", 10, 2, 1, 0, faultFlags{}},
		{"fault rate above 1", 10, 2, 1, time.Second, faultFlags{rate: 1.5}},
		{"negative stall prob", 10, 2, 1, time.Second, faultFlags{stallProb: -0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(":0", tc.n, tc.mean, tc.stddev, false, tc.period, 1, tc.faults); err == nil {
				t.Fatal("invalid configuration accepted")
			}
		})
	}
}

func TestBuildHandlerInjectsFaults(t *testing.T) {
	// With a certain fault rate every request fails with 500.
	h, err := buildHandler(3, 2, 1, false, time.Second, 1, faultFlags{rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("fault rate 1 returned %s, want 500", resp.Status)
	}

	// Without injection the catalog serves normally.
	h, err = buildHandler(3, 2, 1, false, time.Second, 1, faultFlags{})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(h)
	defer srv2.Close()
	resp, err = srv2.Client().Get(srv2.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("clean source returned %s", resp.Status)
	}
}
