// Command mocksource runs a simulated origin server whose objects
// change as independent Poisson processes — a stand-in for any data
// source a freshend mirror can poll. It speaks the minimal source
// protocol (GET /catalog, GET|HEAD /object/{id} with X-Version).
//
// Usage:
//
//	mocksource -addr :8080 -n 500 -mean 2 -stddev 1 -period 10s
//
// -period maps one scheduling period to wall-clock time: with
// -period 10s and -mean 2, each object changes about twice every ten
// seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"freshen/internal/httpmirror"
	"freshen/internal/stats"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 500, "number of objects")
	mean := flag.Float64("mean", 2, "mean object change rate per period")
	stddev := flag.Float64("stddev", 1, "stddev of the gamma change-rate distribution")
	pareto := flag.Bool("pareto-sizes", false, "draw object sizes from Pareto(1.1, mean 1)")
	period := flag.Duration("period", 10*time.Second, "wall-clock length of one period")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	if err := run(*addr, *n, *mean, *stddev, *pareto, *period, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, n int, mean, stddev float64, pareto bool, period time.Duration, seed int64) error {
	if n <= 0 || mean <= 0 || stddev <= 0 || period <= 0 {
		return fmt.Errorf("n, mean, stddev and period must be positive")
	}
	gamma, err := stats.NewGammaMeanStdDev(mean, stddev)
	if err != nil {
		return err
	}
	rng := stats.NewRNG(seed)
	lambdas := gamma.SampleN(rng, n)
	var sizes []float64
	if pareto {
		p, err := stats.NewParetoMean(1.1, 1.0)
		if err != nil {
			return err
		}
		sizes = p.SampleN(rng, n)
	}
	src, err := httpmirror.NewSimulatedSource(lambdas, sizes, seed+1)
	if err != nil {
		return err
	}

	// Advance the simulated clock with wall time.
	start := time.Now()
	go func() {
		ticker := time.NewTicker(period / 100)
		defer ticker.Stop()
		for range ticker.C {
			src.Advance(time.Since(start).Seconds() / period.Seconds())
		}
	}()

	log.Printf("mocksource: %d objects, mean rate %.2f/period, period %v, listening on %s",
		n, mean, period, addr)
	return http.ListenAndServe(addr, src.Handler())
}
