// Command mocksource runs a simulated origin server whose objects
// change as independent Poisson processes — a stand-in for any data
// source a freshend mirror can poll. It speaks the minimal source
// protocol (GET /catalog, GET|HEAD /object/{id} with X-Version).
//
// For resilience testing the origin can misbehave on demand:
// -fault-rate injects probabilistic 500s, -fault-latency delays every
// response, -stall-prob hangs a fraction of requests, and
// -outage-after/-outage-for schedule a full-outage window during which
// every request gets a 503.
//
// Usage:
//
//	mocksource -addr :8080 -n 500 -mean 2 -stddev 1 -period 10s \
//	           -fault-rate 0.2 -outage-after 1m -outage-for 30s
//
// -period maps one scheduling period to wall-clock time: with
// -period 10s and -mean 2, each object changes about twice every ten
// seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"freshen/internal/httpmirror"
	"freshen/internal/stats"
)

// faultFlags groups the injection knobs.
type faultFlags struct {
	rate        float64
	latency     time.Duration
	stallProb   float64
	stallFor    time.Duration
	outageAfter time.Duration
	outageFor   time.Duration
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 500, "number of objects")
	mean := flag.Float64("mean", 2, "mean object change rate per period")
	stddev := flag.Float64("stddev", 1, "stddev of the gamma change-rate distribution")
	pareto := flag.Bool("pareto-sizes", false, "draw object sizes from Pareto(1.1, mean 1)")
	period := flag.Duration("period", 10*time.Second, "wall-clock length of one period")
	seed := flag.Int64("seed", 1, "generation seed")
	faultRate := flag.Float64("fault-rate", 0, "probability a request fails with 500")
	faultLatency := flag.Duration("fault-latency", 0, "latency added to every response")
	stallProb := flag.Float64("stall-prob", 0, "probability a request stalls")
	stallFor := flag.Duration("stall-for", 30*time.Second, "how long a stalled request hangs")
	outageAfter := flag.Duration("outage-after", 0, "delay before a full-outage window opens")
	outageFor := flag.Duration("outage-for", 0, "length of the outage window (0 disables)")
	flag.Parse()

	faults := faultFlags{
		rate:        *faultRate,
		latency:     *faultLatency,
		stallProb:   *stallProb,
		stallFor:    *stallFor,
		outageAfter: *outageAfter,
		outageFor:   *outageFor,
	}
	if err := run(*addr, *n, *mean, *stddev, *pareto, *period, *seed, faults); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, n int, mean, stddev float64, pareto bool, period time.Duration, seed int64, faults faultFlags) error {
	if n <= 0 || mean <= 0 || stddev <= 0 || period <= 0 {
		return fmt.Errorf("n, mean, stddev and period must be positive")
	}
	if faults.rate < 0 || faults.rate > 1 || faults.stallProb < 0 || faults.stallProb > 1 {
		return fmt.Errorf("fault-rate and stall-prob must be in [0, 1]")
	}
	handler, err := buildHandler(n, mean, stddev, pareto, period, seed, faults)
	if err != nil {
		return err
	}
	log.Printf("mocksource: %d objects, mean rate %.2f/period, period %v, listening on %s",
		n, mean, period, addr)
	srv := &http.Server{
		Addr:        addr,
		Handler:     handler,
		ReadTimeout: 10 * time.Second,
		// No WriteTimeout: stall injection must be able to outlive it.
	}
	return srv.ListenAndServe()
}

// buildHandler assembles the simulated source (with its clock driver)
// and wraps it in the fault injector when any injection is requested.
func buildHandler(n int, mean, stddev float64, pareto bool, period time.Duration, seed int64, faults faultFlags) (http.Handler, error) {
	gamma, err := stats.NewGammaMeanStdDev(mean, stddev)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	lambdas := gamma.SampleN(rng, n)
	var sizes []float64
	if pareto {
		p, err := stats.NewParetoMean(1.1, 1.0)
		if err != nil {
			return nil, err
		}
		sizes = p.SampleN(rng, n)
	}
	src, err := httpmirror.NewSimulatedSource(lambdas, sizes, seed+1)
	if err != nil {
		return nil, err
	}

	// Advance the simulated clock with wall time.
	start := time.Now()
	go func() {
		ticker := time.NewTicker(period / 100)
		defer ticker.Stop()
		for range ticker.C {
			src.Advance(time.Since(start).Seconds() / period.Seconds())
		}
	}()

	var handler http.Handler = src.Handler()
	if faults.rate > 0 || faults.latency > 0 || faults.stallProb > 0 || faults.outageFor > 0 {
		inj, err := httpmirror.NewFaultInjector(handler, httpmirror.ChaosConfig{
			ErrorRate: faults.rate,
			Latency:   faults.latency,
			StallProb: faults.stallProb,
			StallFor:  faults.stallFor,
			Seed:      seed + 2,
		})
		if err != nil {
			return nil, err
		}
		httpmirror.ScheduleOutage(inj, faults.outageAfter, faults.outageFor)
		log.Printf("mocksource: fault injection on (rate %.2f, latency %v, stall %.2f, outage %v after %v)",
			faults.rate, faults.latency, faults.stallProb, faults.outageFor, faults.outageAfter)
		handler = inj
	}
	return handler, nil
}
