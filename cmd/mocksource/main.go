// Command mocksource runs a simulated origin server whose objects
// change as independent Poisson processes — a stand-in for any data
// source a freshend mirror can poll. It speaks the minimal source
// protocol (GET /catalog, GET|HEAD /object/{id} with X-Version).
//
// For resilience testing the origin can misbehave on demand:
// -fault-rate injects probabilistic 500s, -fault-latency delays every
// response, -stall-prob hangs a fraction of requests, and
// -outage-after/-outage-for schedule a full-outage window during which
// every request gets a 503.
//
// Usage:
//
//	mocksource -addr :8080 -n 500 -mean 2 -stddev 1 -period 10s \
//	           -fault-rate 0.2 -outage-after 1m -outage-for 30s
//
// -period maps one scheduling period to wall-clock time: with
// -period 10s and -mean 2, each object changes about twice every ten
// seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"freshen/internal/httpmirror"
	"freshen/internal/obs"
	"freshen/internal/stats"
)

// faultFlags groups the injection knobs.
type faultFlags struct {
	rate        float64
	latency     time.Duration
	stallProb   float64
	stallFor    time.Duration
	outageAfter time.Duration
	outageFor   time.Duration
}

type config struct {
	addr         string
	n            int
	mean, stddev float64
	pareto       bool
	period       time.Duration
	seed         int64
	logLevel     string
	faults       faultFlags
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2) // parseFlags already printed the diagnostic and usage
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "mocksource:", err)
		os.Exit(1)
	}
}

// parseFlags builds the source configuration from a command line and
// validates it up front: a misconfigured fault schedule is a usage
// error at startup, not a surprise mid-experiment.
func parseFlags(args []string, out io.Writer) (config, error) {
	fs := flag.NewFlagSet("mocksource", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	n := fs.Int("n", 500, "number of objects")
	mean := fs.Float64("mean", 2, "mean object change rate per period")
	stddev := fs.Float64("stddev", 1, "stddev of the gamma change-rate distribution")
	pareto := fs.Bool("pareto-sizes", false, "draw object sizes from Pareto(1.1, mean 1)")
	period := fs.Duration("period", 10*time.Second, "wall-clock length of one period")
	seed := fs.Int64("seed", 1, "generation seed")
	faultRate := fs.Float64("fault-rate", 0, "probability a request fails with 500")
	faultLatency := fs.Duration("fault-latency", 0, "latency added to every response")
	stallProb := fs.Float64("stall-prob", 0, "probability a request stalls")
	stallFor := fs.Duration("stall-for", 30*time.Second, "how long a stalled request hangs")
	outageAfter := fs.Duration("outage-after", 0, "delay before a full-outage window opens; requires -outage-for")
	outageFor := fs.Duration("outage-for", 0, "length of the outage window; requires -outage-after")
	logLevel := fs.String("log-level", "info", "log verbosity: debug | info | warn | error")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		addr: *addr, n: *n, mean: *mean, stddev: *stddev,
		pareto: *pareto, period: *period, seed: *seed, logLevel: *logLevel,
		faults: faultFlags{
			rate:        *faultRate,
			latency:     *faultLatency,
			stallProb:   *stallProb,
			stallFor:    *stallFor,
			outageAfter: *outageAfter,
			outageFor:   *outageFor,
		},
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(fs.Output(), "mocksource: %v\n", err)
		fs.Usage()
		return config{}, err
	}
	return cfg, nil
}

// validate rejects unusable generation parameters and fault schedules.
func (cfg config) validate() error {
	if cfg.n <= 0 || cfg.mean <= 0 || cfg.stddev <= 0 || cfg.period <= 0 {
		return fmt.Errorf("n, mean, stddev and period must be positive")
	}
	f := cfg.faults
	if f.rate < 0 || f.rate > 1 {
		return fmt.Errorf("fault-rate must be in [0, 1], got %v", f.rate)
	}
	if f.stallProb < 0 || f.stallProb > 1 {
		return fmt.Errorf("stall-prob must be in [0, 1], got %v", f.stallProb)
	}
	if f.latency < 0 {
		return fmt.Errorf("fault-latency must not be negative, got %v", f.latency)
	}
	if f.stallFor < 0 {
		return fmt.Errorf("stall-for must not be negative, got %v", f.stallFor)
	}
	if f.outageAfter < 0 || f.outageFor < 0 {
		return fmt.Errorf("outage-after and outage-for must not be negative, got %v and %v", f.outageAfter, f.outageFor)
	}
	// The outage window is one knob in two halves: a window with no
	// start (or a start with no window) is a misremembered command
	// line, so fail loudly instead of silently never injecting.
	if f.outageFor > 0 && f.outageAfter == 0 {
		return fmt.Errorf("-outage-for requires -outage-after")
	}
	if f.outageAfter > 0 && f.outageFor == 0 {
		return fmt.Errorf("-outage-after requires -outage-for")
	}
	return nil
}

func run(cfg config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.logLevel == "" {
		cfg.logLevel = "info"
	}
	level, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	lg := obs.Component(obs.NewLogger(os.Stderr, level), "mocksource")
	handler, err := buildHandler(cfg.n, cfg.mean, cfg.stddev, cfg.pareto, cfg.period, cfg.seed, cfg.faults, lg)
	if err != nil {
		return err
	}
	lg.Info("source up",
		slog.Int("objects", cfg.n),
		slog.Float64("mean_rate", cfg.mean),
		slog.Duration("period", cfg.period),
		slog.String("addr", cfg.addr))
	srv := &http.Server{
		Addr:        cfg.addr,
		Handler:     handler,
		ReadTimeout: 10 * time.Second,
		// No WriteTimeout: stall injection must be able to outlive it.
	}
	return srv.ListenAndServe()
}

// buildHandler assembles the simulated source (with its clock driver)
// and wraps it in the fault injector when any injection is requested.
func buildHandler(n int, mean, stddev float64, pareto bool, period time.Duration, seed int64, faults faultFlags, lg *slog.Logger) (http.Handler, error) {
	if lg == nil {
		lg = obs.Nop()
	}
	gamma, err := stats.NewGammaMeanStdDev(mean, stddev)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	lambdas := gamma.SampleN(rng, n)
	var sizes []float64
	if pareto {
		p, err := stats.NewParetoMean(1.1, 1.0)
		if err != nil {
			return nil, err
		}
		sizes = p.SampleN(rng, n)
	}
	src, err := httpmirror.NewSimulatedSource(lambdas, sizes, seed+1)
	if err != nil {
		return nil, err
	}

	// Advance the simulated clock with wall time.
	start := time.Now()
	go func() {
		ticker := time.NewTicker(period / 100)
		defer ticker.Stop()
		for range ticker.C {
			src.Advance(time.Since(start).Seconds() / period.Seconds())
		}
	}()

	var handler http.Handler = src.Handler()
	if faults.rate > 0 || faults.latency > 0 || faults.stallProb > 0 || faults.outageFor > 0 {
		inj, err := httpmirror.NewFaultInjector(handler, httpmirror.ChaosConfig{
			ErrorRate: faults.rate,
			Latency:   faults.latency,
			StallProb: faults.stallProb,
			StallFor:  faults.stallFor,
			Seed:      seed + 2,
		})
		if err != nil {
			return nil, err
		}
		httpmirror.ScheduleOutage(inj, faults.outageAfter, faults.outageFor)
		lg.Info("fault injection on",
			slog.Float64("error_rate", faults.rate),
			slog.Duration("latency", faults.latency),
			slog.Float64("stall_prob", faults.stallProb),
			slog.Duration("outage_for", faults.outageFor),
			slog.Duration("outage_after", faults.outageAfter))
		handler = inj
	}
	return handler, nil
}
