package main

import (
	"context"
	"testing"
	"time"
)

func testConfig(upstream, strategy string, bandwidth, replanEvery float64, period time.Duration) config {
	return config{
		addr:        ":0",
		upstream:    upstream,
		bandwidth:   bandwidth,
		period:      period,
		strategy:    strategy,
		partitions:  10,
		iterations:  3,
		replanEvery: replanEvery,
		seed:        1,
		upTimeout:   time.Second,
		upRetries:   1,
		shards:      1,
		placement:   "hash",
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name                   string
		upstream, strategy     string
		bandwidth, replanEvery float64
		period                 time.Duration
	}{
		{"missing upstream", "", "exact", 10, 5, time.Second},
		{"zero bandwidth", "http://localhost:1", "exact", 0, 5, time.Second},
		{"zero period", "http://localhost:1", "exact", 10, 5, 0},
		{"zero replan", "http://localhost:1", "exact", 10, 0, time.Second},
		{"bad strategy", "http://localhost:1", "warp", 10, 5, time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(tc.upstream, tc.strategy, tc.bandwidth, tc.replanEvery, tc.period)
			if err := run(context.Background(), cfg, nil); err == nil {
				t.Fatal("invalid configuration accepted")
			}
		})
	}
	t.Run("zero snapshot-every with state dir", func(t *testing.T) {
		cfg := testConfig("http://localhost:1", "exact", 10, 5, time.Second)
		cfg.stateDir = t.TempDir()
		cfg.snapshotEvery = 0
		if err := run(context.Background(), cfg, nil); err == nil {
			t.Fatal("invalid configuration accepted")
		}
	})
}

func TestRunUnreachableUpstream(t *testing.T) {
	// A valid configuration against a dead upstream must fail at the
	// catalog fetch, not hang.
	cfg := testConfig("http://127.0.0.1:1", "exact", 10, 5, time.Second)
	if err := run(context.Background(), cfg, nil); err == nil {
		t.Fatal("unreachable upstream accepted")
	}
}
