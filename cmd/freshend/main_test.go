package main

import (
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name                   string
		upstream, strategy     string
		bandwidth, replanEvery float64
		period                 time.Duration
	}{
		{"missing upstream", "", "exact", 10, 5, time.Second},
		{"zero bandwidth", "http://localhost:1", "exact", 0, 5, time.Second},
		{"zero period", "http://localhost:1", "exact", 10, 5, 0},
		{"zero replan", "http://localhost:1", "exact", 10, 0, time.Second},
		{"bad strategy", "http://localhost:1", "warp", 10, 5, time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(":0", tc.upstream, tc.bandwidth, tc.period, tc.strategy, 10, 3, tc.replanEvery, 1)
			if err == nil {
				t.Fatal("invalid configuration accepted")
			}
		})
	}
}

func TestRunUnreachableUpstream(t *testing.T) {
	// A valid configuration against a dead upstream must fail at the
	// catalog fetch, not hang.
	err := run(":0", "http://127.0.0.1:1", 10, time.Second, "exact", 10, 3, 5, 1)
	if err == nil {
		t.Fatal("unreachable upstream accepted")
	}
}
