package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"freshen/internal/httpmirror"
	"freshen/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the metrics contract golden file")

// startPersistentDaemon runs a persistent daemon against a fresh
// simulated upstream and returns its base URL, the state dir, and a
// shutdown function.
func startPersistentDaemon(t *testing.T, stateDir string, debugReady chan<- net.Addr) (string, func() error) {
	t.Helper()
	src, err := httpmirror.NewSimulatedSource([]float64{2, 1, 0.5, 0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(src.Handler())
	t.Cleanup(upstream.Close)

	cfg := testConfig(upstream.URL, "exact", 4, 5, 50*time.Millisecond)
	cfg.addr = "127.0.0.1:0"
	cfg.stateDir = stateDir
	cfg.snapshotEvery = 2
	if debugReady != nil {
		cfg.debugAddr = "127.0.0.1:0"
		cfg.debugReady = debugReady
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		cancel()
		t.Fatalf("daemon died before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "http://" + addr.String(), func() error {
		cancel()
		select {
		case err := <-runErr:
			return err
		case <-time.After(15 * time.Second):
			return fmt.Errorf("daemon did not shut down")
		}
	}
}

func scrapeDaemon(t *testing.T, url string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	e, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestMetricsContract pins the daemon's full metric schema — every
// family name and type a live persistent daemon exposes — against a
// golden file. Childless families still emit HELP/TYPE, so the schema
// is complete and deterministic right after boot. Run with -update to
// accept an intentional schema change.
func TestMetricsContract(t *testing.T) {
	base, shutdown := startPersistentDaemon(t, t.TempDir(), nil)
	defer shutdown()

	e := scrapeDaemon(t, base+"/metrics")
	lines := make([]string, 0, len(e.Types))
	for name, typ := range e.Types {
		lines = append(lines, name+" "+typ)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "metrics_contract.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric schema changed.\n--- golden\n%s\n--- live\n%s\nIf intentional, re-run with -update and document the change in DESIGN.md §10.", want, got)
	}
}

// TestMetricsEndToEnd scrapes a live persistent daemon and checks the
// acceptance surface: at least 20 distinct families, with the
// headline series present and sane.
func TestMetricsEndToEnd(t *testing.T) {
	base, shutdown := startPersistentDaemon(t, t.TempDir(), nil)

	// Drive serve-path traffic.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/object/0")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Wait until the refresh loop has produced at least one successful
	// refresh and a snapshot landed (cadence 2 periods at 50ms each).
	deadline := time.Now().Add(15 * time.Second)
	var e *obs.Exposition
	for {
		e = scrapeDaemon(t, base+"/metrics")
		refreshed, _ := e.Value("freshen_refreshes_total", "outcome", "success")
		snaps, _ := e.Value("freshen_persist_snapshots_total")
		if refreshed >= 1 && snaps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never refreshed+snapshotted; refreshes=%v snapshots=%v", refreshed, snaps)
		}
		time.Sleep(25 * time.Millisecond)
	}

	if n := len(e.Types); n < 20 {
		t.Errorf("only %d distinct metric families exposed, want >= 20: %v", n, e.Families())
	}
	if typ := e.Types["freshen_refresh_duration_seconds"]; typ != "histogram" {
		t.Errorf("freshen_refresh_duration_seconds type = %q, want histogram", typ)
	}
	if v, ok := e.Value("freshen_pf"); !ok || v <= 0 || v > 1 {
		t.Errorf("freshen_pf = %v, %v; want in (0, 1]", v, ok)
	}
	if v, ok := e.Value("freshen_solver_solve_seconds_count"); !ok || v < 1 {
		t.Errorf("freshen_solver_solve_seconds_count = %v, %v; want >= 1 (the boot plan solves)", v, ok)
	}
	if v, ok := e.Value("freshen_refresh_duration_seconds_count", "outcome", "success"); !ok || v < 1 {
		t.Errorf("refresh duration histogram count = %v, %v; want >= 1", v, ok)
	}
	if _, ok := e.Value("freshen_breaker_state"); !ok {
		t.Error("freshen_breaker_state missing")
	}
	if _, ok := e.Value("freshen_quarantine_size"); !ok {
		t.Error("freshen_quarantine_size missing")
	}
	if v, ok := e.Value("freshen_persist_journal_records_total"); !ok || v < 1 {
		t.Errorf("freshen_persist_journal_records_total = %v, %v; want >= 1", v, ok)
	}
	if v, ok := e.Value("freshen_accesses_total"); !ok || v != 3 {
		t.Errorf("freshen_accesses_total = %v, %v; want 3", v, ok)
	}
	if v, ok := e.Value("freshen_estimator_polls_total"); !ok || v < 1 {
		t.Errorf("freshen_estimator_polls_total = %v, %v; want >= 1", v, ok)
	}
	if e.BadLines != 0 {
		t.Errorf("exposition had %d unparseable lines", e.BadLines)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestMetricsAcrossRestart pins that /metrics stays serveable across a
// kill-and-restart cycle on the same state dir and that the restarted
// daemon's gauges reflect the recovered state.
func TestMetricsAcrossRestart(t *testing.T) {
	stateDir := t.TempDir()
	base, shutdown := startPersistentDaemon(t, stateDir, nil)
	e := scrapeDaemon(t, base+"/metrics")
	if _, ok := e.Value("freshen_objects"); !ok {
		t.Fatal("first process: freshen_objects missing")
	}
	// Let some clock accumulate so recovery has something to restore.
	deadline := time.Now().Add(10 * time.Second)
	for {
		e = scrapeDaemon(t, base+"/metrics")
		if now, _ := e.Value("freshen_clock_periods"); now >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("clock never advanced")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	base2, shutdown2 := startPersistentDaemon(t, stateDir, nil)
	defer shutdown2()
	e2 := scrapeDaemon(t, base2+"/metrics")
	if v, ok := e2.Value("freshen_clock_periods"); !ok || v < 1 {
		t.Errorf("restarted clock = %v, %v; want >= 1 (recovered, not reset)", v, ok)
	}
	if v, ok := e2.Value("freshen_estimator_polls_total"); !ok || v < 1 {
		t.Errorf("restarted estimator polls = %v, %v; want >= 1 (replayed history counts)", v, ok)
	}
	if v, ok := e2.Value("freshen_pf"); !ok || v <= 0 {
		t.Errorf("restarted freshen_pf = %v, %v; want > 0", v, ok)
	}
}

// TestDebugListener pins the -debug-addr surface: metrics and pprof on
// a second listener, separate from the serving address.
func TestDebugListener(t *testing.T) {
	debugReady := make(chan net.Addr, 1)
	base, shutdown := startPersistentDaemon(t, t.TempDir(), debugReady)
	defer shutdown()
	var debugAddr net.Addr
	select {
	case debugAddr = <-debugReady:
	case <-time.After(10 * time.Second):
		t.Fatal("debug listener never came up")
	}
	debugBase := "http://" + debugAddr.String()

	// Metrics on both listeners.
	for _, url := range []string{base + "/metrics", debugBase + "/metrics"} {
		e := scrapeDaemon(t, url)
		if _, ok := e.Value("freshen_objects"); !ok {
			t.Errorf("%s: freshen_objects missing", url)
		}
	}
	// pprof only on the debug listener.
	resp, err := http.Get(debugBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug /debug/pprof/ = %d; want 200", resp.StatusCode)
	}
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("serving-listener /debug/pprof/ = %d; want 404", resp.StatusCode)
	}
}
