package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"freshen/internal/httpmirror"
)

// startDaemonWith runs the daemon under an arbitrary config (addr
// forced to an ephemeral port) and returns its base URL plus a
// shutdown function.
func startDaemonWith(t *testing.T, cfg config) (string, func() error) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		cancel()
		t.Fatalf("daemon died before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "http://" + addr.String(), func() error {
		cancel()
		select {
		case err := <-runErr:
			return err
		case <-time.After(15 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

// TestDaemonEdgeChain boots a two-level chain of real daemons —
// origin → regional freshend → edge freshend (-upstream-url) — and
// checks the edge serves the catalog end to end, reports its upstream
// in /status, and the regional counts the edge's conditional polls as
// 304 savings.
func TestDaemonEdgeChain(t *testing.T) {
	src, err := httpmirror.NewSimulatedSource([]float64{2, 1, 0.5, 0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	origin := httptest.NewServer(src.Handler())
	t.Cleanup(origin.Close)

	regional, stopRegional := startDaemonWith(t, testConfig(origin.URL, "exact", 4, 5, 50*time.Millisecond))
	edgeCfg := testConfig("", "exact", 2, 5, 50*time.Millisecond)
	edgeCfg.upstreamURL = regional
	edge, stopEdge := startDaemonWith(t, edgeCfg)

	resp, err := http.Get(edge + "/object/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Version") == "" {
		t.Errorf("edge GET /object/0: status %d, X-Version %q", resp.StatusCode, resp.Header.Get("X-Version"))
	}

	resp, err = http.Get(edge + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Objects     int    `json:"objects"`
		UpstreamURL string `json:"upstream_url"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 4 {
		t.Errorf("edge mirrors %d objects, want 4", st.Objects)
	}
	if st.UpstreamURL != regional {
		t.Errorf("edge upstream_url = %q, want %q", st.UpstreamURL, regional)
	}

	// Give the edge a few refresh periods against a mostly static
	// catalog, then check the regional answered some polls with 304.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(regional + "/status")
		if err != nil {
			t.Fatal(err)
		}
		var reg struct {
			NotModified int `json:"source_not_modified"`
		}
		err = json.NewDecoder(resp.Body).Decode(&reg)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if reg.NotModified > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Error("regional never answered an edge poll with 304")
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	if err := stopEdge(); err != nil {
		t.Errorf("edge shutdown: %v", err)
	}
	if err := stopRegional(); err != nil {
		t.Errorf("regional shutdown: %v", err)
	}
}

// TestEdgeModeFlagValidation pins the -upstream/-upstream-url
// contract: exactly one, and edge mode is single-mirror only.
func TestEdgeModeFlagValidation(t *testing.T) {
	both := testConfig("http://localhost:1", "exact", 10, 5, time.Second)
	both.upstreamURL = "http://localhost:2"
	if err := run(context.Background(), both, nil); err == nil {
		t.Error("both -upstream and -upstream-url accepted")
	}
	fleet := testConfig("", "exact", 10, 5, time.Second)
	fleet.upstreamURL = "http://localhost:2"
	fleet.shards = 2
	if err := run(context.Background(), fleet, nil); err == nil {
		t.Error("-upstream-url accepted in fleet mode")
	}
}
