package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"freshen/internal/httpmirror"
	"freshen/internal/persist"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-upstream", "http://src:8080"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.upstream != "http://src:8080" {
		t.Errorf("upstream = %q", cfg.upstream)
	}
	if cfg.addr != ":8081" || cfg.bandwidth != 100 || cfg.period != 10*time.Second {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.strategy != "exact" || cfg.partitions != 100 || cfg.replanEvery != 5 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.upRetries != 3 || cfg.breakerAfter != 5 || cfg.quarantineAfter != 3 {
		t.Errorf("fault-policy defaults not applied: %+v", cfg)
	}
	if cfg.stateDir != "" || cfg.snapshotEvery != 5 {
		t.Errorf("persistence defaults not applied: %+v", cfg)
	}
	if cfg.debugAddr != "" || cfg.logLevel != "info" {
		t.Errorf("observability defaults not applied: %+v", cfg)
	}
	if cfg.upstreamURL != "" {
		t.Errorf("edge mode on by default: %+v", cfg)
	}
}

func TestParseFlagsUpstreamURL(t *testing.T) {
	cfg, err := parseFlags([]string{"-upstream-url", "http://regional:8081"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.upstreamURL != "http://regional:8081" || cfg.upstream != "" {
		t.Errorf("edge flags not parsed: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0",
		"-upstream", "http://src",
		"-bandwidth", "42.5",
		"-period", "250ms",
		"-strategy", "clustered",
		"-partitions", "7",
		"-iterations", "2",
		"-replan-every", "3",
		"-estimator", "mle",
		"-explore-frac", "0.15",
		"-floor-lambda", "0.01",
		"-seed", "99",
		"-upstream-timeout", "1s",
		"-upstream-retries", "1",
		"-breaker-after", "-1",
		"-breaker-cooldown", "4",
		"-quarantine-after", "-1",
		"-probe-every", "2",
		"-state-dir", "/tmp/state",
		"-snapshot-every", "7",
		"-debug-addr", "127.0.0.1:6060",
		"-log-level", "debug",
		"-max-inflight", "32",
		"-min-inflight", "4",
		"-shed-target-latency", "20ms",
		"-persist-degrade-after", "2",
		"-persist-fault-after", "10",
		"-persist-fault-ops", "5",
		"-persist-fault-kind", "enospc",
		"-persist-fault-torn",
		"-serve-fault-latency", "3ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := config{
		addr: "127.0.0.1:0", upstream: "http://src",
		bandwidth: 42.5, period: 250 * time.Millisecond,
		strategy: "clustered", partitions: 7, iterations: 2,
		replanEvery: 3, seed: 99,
		estimator: "mle", exploreFrac: 0.15, floorLambda: 0.01,
		upTimeout: time.Second, upRetries: 1,
		breakerAfter: -1, breakerCooldown: 4,
		quarantineAfter: -1, probeEvery: 2,
		stateDir: "/tmp/state", snapshotEvery: 7,
		debugAddr: "127.0.0.1:6060", logLevel: "debug",
		shards: 1, placement: "hash",
		maxInflight: 32, minInflight: 4,
		shedTargetLatency: 20 * time.Millisecond, persistDegradeAfter: 2,
		persistFaultAfter: 10, persistFaultOps: 5,
		persistFaultKind: "enospc", persistFaultTorn: true,
		serveFaultLatency: 3 * time.Millisecond,
	}
	if cfg != want {
		t.Errorf("parsed %+v, want %+v", cfg, want)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bandwidth", "not-a-number"},
		{"-period", "sideways"},
		{"-no-such-flag"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// startDaemon runs the daemon against a simulated upstream and returns
// its base URL plus a shutdown function that cancels the run context
// and reports run's error.
func startDaemon(t *testing.T, strategy string) (string, func() error) {
	t.Helper()
	src, err := httpmirror.NewSimulatedSource([]float64{2, 1, 0.5, 0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(src.Handler())
	t.Cleanup(upstream.Close)

	cfg := testConfig(upstream.URL, strategy, 4, 5, 50*time.Millisecond)
	cfg.addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		cancel()
		t.Fatalf("daemon died before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "http://" + addr.String(), func() error {
		cancel()
		select {
		case err := <-runErr:
			return err
		case <-time.After(15 * time.Second):
			return fmt.Errorf("daemon did not shut down")
		}
	}
}

// TestDaemonServesAndShutsDown drives the whole daemon over a real
// listener: every endpoint, the error contract for malformed and
// unknown object ids, and the graceful shutdown path.
func TestDaemonServesAndShutsDown(t *testing.T) {
	base, shutdown := startDaemon(t, "exact")

	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/healthz", http.StatusOK},
		{http.MethodGet, "/readyz", http.StatusOK},
		{http.MethodGet, "/status", http.StatusOK},
		{http.MethodGet, "/object/0", http.StatusOK},
		{http.MethodGet, "/object/3", http.StatusOK},
		{http.MethodGet, "/object/banana", http.StatusBadRequest},
		{http.MethodGet, "/object/999", http.StatusNotFound},
		{http.MethodPost, "/replan", http.StatusNoContent},
		{http.MethodPost, "/object/0", http.StatusMethodNotAllowed},
		{http.MethodGet, "/replan", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, base+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.path, resp.StatusCode, tc.want, body)
		}
		if tc.path == "/object/0" && tc.want == http.StatusOK && resp.Header.Get("X-Version") == "" {
			t.Error("GET /object/0 missing X-Version header")
		}
	}

	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("decoding /status: %v", err)
	}
	resp.Body.Close()
	if got, ok := status["objects"]; !ok || got.(float64) != 4 {
		t.Errorf("/status objects = %v, want 4", status["objects"])
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonClusteredStrategy exercises the heuristic planning path
// end to end (plan → serve → shutdown) rather than just validation.
func TestDaemonClusteredStrategy(t *testing.T) {
	base, shutdown := startDaemon(t, "clustered")
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonShutdownPersistsState drives a persistent daemon over a
// live listener and pins the graceful-shutdown ordering: the refresh
// loop drains, then the final snapshot is flushed (so it covers at
// least everything /status reported while serving), then the listener
// closes. The snapshot cadence is set far out so the only snapshot is
// the shutdown flush itself.
func TestDaemonShutdownPersistsState(t *testing.T) {
	src, err := httpmirror.NewSimulatedSource([]float64{2, 1, 0.5, 0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(src.Handler())
	t.Cleanup(upstream.Close)

	cfg := testConfig(upstream.URL, "exact", 4, 5, 50*time.Millisecond)
	cfg.addr = "127.0.0.1:0"
	cfg.stateDir = t.TempDir()
	cfg.snapshotEvery = 1e6
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("daemon died before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr.String()

	// A cold persistent daemon is not ready until durable state
	// exists; with the cadence pushed out, that is only at shutdown.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("cold /readyz = %d, want 503", resp.StatusCode)
	}

	// Generate state to persist: accesses, and enough wall-clock for
	// the refresh loop to run some periods.
	status := func() (now float64, fetches, accesses int) {
		t.Helper()
		resp, err := http.Get(base + "/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var s struct {
			Now      float64 `json:"now_periods"`
			Fetches  int     `json:"fetches"`
			Accesses int     `json:"accesses"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		return s.Now, s.Fetches, s.Accesses
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/object/0")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// Wait until the refresh loop has driven at least one full period
	// (fetches at boot come from seeding, not the loop).
	deadline := time.Now().Add(10 * time.Second)
	var preNow float64
	var preFetches, preAccesses int
	for {
		preNow, preFetches, preAccesses = status()
		if preNow >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("refresh loop never advanced a period")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// The listener is really closed, not just draining.
	if conn, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		conn.Close()
		t.Error("listener still accepting connections after shutdown")
	}

	// The final snapshot landed, is loadable, and covers everything
	// /status reported while the daemon was serving.
	store, err := persist.Open(cfg.stateDir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rec := store.Recovery()
	if rec.Snapshot == nil {
		t.Fatalf("no snapshot after graceful shutdown (snapshot err: %v)", rec.SnapshotErr)
	}
	if rec.Snapshot.Now <= 0 {
		t.Errorf("snapshot clock = %v, want > 0", rec.Snapshot.Now)
	}
	if got := rec.Snapshot.Counters.Fetches; got < preFetches {
		t.Errorf("snapshot fetches = %d < observed %d: flush did not wait for the refresh loop", got, preFetches)
	}
	if got := rec.Snapshot.Counters.Accesses; got < preAccesses {
		t.Errorf("snapshot accesses = %d < observed %d", got, preAccesses)
	}
	if len(rec.Records) != 0 {
		t.Errorf("%d journal records survived the final snapshot; shutdown flush should have reset the journal", len(rec.Records))
	}
}

// TestRunListenError pins the failure mode for an unusable listen
// address: run must fail fast, not hang with a half-built daemon.
func TestRunListenError(t *testing.T) {
	src, err := httpmirror.NewSimulatedSource([]float64{1}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(src.Handler())
	defer upstream.Close()
	cfg := testConfig(upstream.URL, "exact", 4, 5, 50*time.Millisecond)
	cfg.addr = "256.256.256.256:1"
	if err := run(context.Background(), cfg, nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
