package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"freshen/internal/httpmirror"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-upstream", "http://src:8080"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.upstream != "http://src:8080" {
		t.Errorf("upstream = %q", cfg.upstream)
	}
	if cfg.addr != ":8081" || cfg.bandwidth != 100 || cfg.period != 10*time.Second {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.strategy != "exact" || cfg.partitions != 100 || cfg.replanEvery != 5 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.upRetries != 3 || cfg.breakerAfter != 5 || cfg.quarantineAfter != 3 {
		t.Errorf("fault-policy defaults not applied: %+v", cfg)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0",
		"-upstream", "http://src",
		"-bandwidth", "42.5",
		"-period", "250ms",
		"-strategy", "clustered",
		"-partitions", "7",
		"-iterations", "2",
		"-replan-every", "3",
		"-seed", "99",
		"-upstream-timeout", "1s",
		"-upstream-retries", "1",
		"-breaker-after", "-1",
		"-breaker-cooldown", "4",
		"-quarantine-after", "-1",
		"-probe-every", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := config{
		addr: "127.0.0.1:0", upstream: "http://src",
		bandwidth: 42.5, period: 250 * time.Millisecond,
		strategy: "clustered", partitions: 7, iterations: 2,
		replanEvery: 3, seed: 99,
		upTimeout: time.Second, upRetries: 1,
		breakerAfter: -1, breakerCooldown: 4,
		quarantineAfter: -1, probeEvery: 2,
	}
	if cfg != want {
		t.Errorf("parsed %+v, want %+v", cfg, want)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bandwidth", "not-a-number"},
		{"-period", "sideways"},
		{"-no-such-flag"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// startDaemon runs the daemon against a simulated upstream and returns
// its base URL plus a shutdown function that cancels the run context
// and reports run's error.
func startDaemon(t *testing.T, strategy string) (string, func() error) {
	t.Helper()
	src, err := httpmirror.NewSimulatedSource([]float64{2, 1, 0.5, 0}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(src.Handler())
	t.Cleanup(upstream.Close)

	cfg := testConfig(upstream.URL, strategy, 4, 5, 50*time.Millisecond)
	cfg.addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-runErr:
		cancel()
		t.Fatalf("daemon died before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "http://" + addr.String(), func() error {
		cancel()
		select {
		case err := <-runErr:
			return err
		case <-time.After(15 * time.Second):
			return fmt.Errorf("daemon did not shut down")
		}
	}
}

// TestDaemonServesAndShutsDown drives the whole daemon over a real
// listener: every endpoint, the error contract for malformed and
// unknown object ids, and the graceful shutdown path.
func TestDaemonServesAndShutsDown(t *testing.T) {
	base, shutdown := startDaemon(t, "exact")

	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/healthz", http.StatusOK},
		{http.MethodGet, "/status", http.StatusOK},
		{http.MethodGet, "/object/0", http.StatusOK},
		{http.MethodGet, "/object/3", http.StatusOK},
		{http.MethodGet, "/object/banana", http.StatusBadRequest},
		{http.MethodGet, "/object/999", http.StatusNotFound},
		{http.MethodPost, "/replan", http.StatusNoContent},
		{http.MethodPost, "/object/0", http.StatusMethodNotAllowed},
		{http.MethodGet, "/replan", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, base+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.path, resp.StatusCode, tc.want, body)
		}
		if tc.path == "/object/0" && tc.want == http.StatusOK && resp.Header.Get("X-Version") == "" {
			t.Error("GET /object/0 missing X-Version header")
		}
	}

	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("decoding /status: %v", err)
	}
	resp.Body.Close()
	if got, ok := status["objects"]; !ok || got.(float64) != 4 {
		t.Errorf("/status objects = %v, want 4", status["objects"])
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestDaemonClusteredStrategy exercises the heuristic planning path
// end to end (plan → serve → shutdown) rather than just validation.
func TestDaemonClusteredStrategy(t *testing.T) {
	base, shutdown := startDaemon(t, "clustered")
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: status %d", resp.StatusCode)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestRunListenError pins the failure mode for an unusable listen
// address: run must fail fast, not hang with a half-built daemon.
func TestRunListenError(t *testing.T) {
	src, err := httpmirror.NewSimulatedSource([]float64{1}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	upstream := httptest.NewServer(src.Handler())
	defer upstream.Close()
	cfg := testConfig(upstream.URL, "exact", 4, 5, 50*time.Millisecond)
	cfg.addr = "256.256.256.256:1"
	if err := run(context.Background(), cfg, nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
