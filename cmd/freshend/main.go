// Command freshend is the mirror daemon: it mirrors an upstream
// source (anything speaking the GET /catalog + GET /object/{id}
// protocol, e.g. mocksource), refreshing local copies on the
// perceived-freshness-optimal schedule, learning the user profile from
// its own access log and per-object change rates from its refresh
// polls, and re-planning on cadence.
//
// Usage:
//
//	freshend -addr :8081 -upstream http://localhost:8080 \
//	         -bandwidth 250 -period 10s -strategy clustered -partitions 50
//
// Endpoints: GET /object/{id} (serve a copy), GET /status (JSON
// metrics), POST /replan (learn + re-plan now).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"freshen/internal/core"
	"freshen/internal/httpmirror"
	"freshen/internal/partition"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	upstream := flag.String("upstream", "", "base URL of the source to mirror; required")
	bandwidth := flag.Float64("bandwidth", 100, "refresh budget per period")
	period := flag.Duration("period", 10*time.Second, "wall-clock length of one period")
	strategy := flag.String("strategy", "exact", "exact | partitioned | clustered")
	partitions := flag.Int("partitions", 100, "partition count for heuristic strategies")
	iterations := flag.Int("iterations", 10, "k-means iterations for the clustered strategy")
	replanEvery := flag.Float64("replan-every", 5, "replanning cadence in periods")
	seed := flag.Int64("seed", 1, "phase seed")
	flag.Parse()

	if err := run(*addr, *upstream, *bandwidth, *period, *strategy, *partitions, *iterations, *replanEvery, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(addr, upstream string, bandwidth float64, period time.Duration, strategy string, partitions, iterations int, replanEvery float64, seed int64) error {
	if upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	if bandwidth <= 0 || period <= 0 || replanEvery <= 0 {
		return fmt.Errorf("bandwidth, period and replan-every must be positive")
	}
	planCfg := core.Config{
		Bandwidth:        bandwidth,
		Key:              partition.KeyPF,
		NumPartitions:    partitions,
		KMeansIterations: iterations,
		Allocation:       partition.FBA,
	}
	switch strategy {
	case "exact":
		planCfg.Strategy = core.StrategyExact
	case "partitioned":
		planCfg.Strategy = core.StrategyPartitioned
	case "clustered":
		planCfg.Strategy = core.StrategyClustered
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	m, err := httpmirror.New(httpmirror.Config{
		Upstream:    httpmirror.NewSourceClient(upstream, nil),
		Plan:        planCfg,
		ReplanEvery: replanEvery,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	log.Printf("freshend: mirroring %s (%d objects), bandwidth %.0f/period, period %v, strategy %s",
		upstream, m.Status().Objects, bandwidth, period, strategy)

	go func() {
		// Refresh-loop errors (e.g. the upstream going away) are
		// logged and the loop restarted; the mirror keeps serving its
		// last copies meanwhile.
		for {
			if err := m.Run(context.Background(), period); err != nil {
				log.Printf("freshend: refresh loop: %v (retrying in %v)", err, period)
				time.Sleep(period)
				continue
			}
			return
		}
	}()

	return http.ListenAndServe(addr, m.Handler())
}
