// Command freshend is the mirror daemon: it mirrors an upstream
// source (anything speaking the GET /catalog + GET /object/{id}
// protocol, e.g. mocksource), refreshing local copies on the
// perceived-freshness-optimal schedule, learning the user profile from
// its own access log and per-object change rates from its refresh
// polls, and re-planning on cadence.
//
// The refresh pipeline is fault tolerant: upstream calls carry
// per-request timeouts and retry transient failures with backoff, a
// circuit breaker pauses refreshing through outages (the mirror keeps
// serving its local copies), and objects whose refreshes keep failing
// are quarantined out of the plan until a recovery probe succeeds.
//
// With -state-dir set the daemon is also crash safe: it snapshots its
// learned state (estimator histories, access profile, schedule,
// breaker/quarantine state) atomically every -snapshot-every periods,
// journals each refresh outcome in between, flushes a final snapshot
// on graceful shutdown, and on boot recovers from the state directory
// — replaying the journal and warm-starting the schedule from the
// persisted plan.
//
// Mirrors also chain: -upstream-url points the daemon at another
// freshend mirror instead of an origin (source → regional → edge).
// The edge speaks the same protocol upward but additionally observes
// the upstream's degradation headers, so an outage anywhere above it
// surfaces to clients as source-degraded mode with the compounded
// X-Staleness-Periods, never as silent staleness.
//
// Usage:
//
//	freshend -addr :8081 -upstream http://localhost:8080 \
//	         -bandwidth 250 -period 10s -strategy clustered -partitions 50 \
//	         -state-dir /var/lib/freshend
//
//	freshend -addr :8082 -upstream-url http://localhost:8081 \
//	         -bandwidth 100 -period 10s
//
// Endpoints: GET /object/{id} (serve a copy), GET /status (JSON
// metrics), GET /metrics (Prometheus text exposition), GET /healthz
// (liveness), GET /readyz (readiness: 503 until learned state is
// recovered or durable), POST /replan (learn + re-plan now). With
// -debug-addr set, a second listener serves GET /metrics plus
// net/http/pprof under /debug/pprof/ — kept off the serving address so
// profiling exposure is an explicit operator choice.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"freshen/internal/hierarchy"
	"freshen/internal/httpmirror"
	"freshen/internal/obs"
	"freshen/internal/persist"
	"freshen/internal/resilience"
	"freshen/internal/solver"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2) // the FlagSet already printed the diagnostic and usage
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "freshend:", err)
		os.Exit(1)
	}
}

// parseFlags builds the daemon configuration from a command line. It
// is split from main so tests can exercise flag handling without
// forking a process.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("freshend", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	upstream := fs.String("upstream", "", "base URL of the source to mirror; required unless -upstream-url is set")
	upstreamURL := fs.String("upstream-url", "", "base URL of an upstream freshend mirror to chain below (edge mode: degradation headers compound); mutually exclusive with -upstream")
	bandwidth := fs.Float64("bandwidth", 100, "refresh budget per period")
	period := fs.Duration("period", 10*time.Second, "wall-clock length of one period")
	strategy := fs.String("strategy", "exact", "exact | partitioned | clustered")
	partitions := fs.Int("partitions", 100, "partition count for heuristic strategies")
	iterations := fs.Int("iterations", 10, "k-means iterations for the clustered strategy")
	replanEvery := fs.Float64("replan-every", 5, "replanning cadence in periods")
	estimator := fs.String("estimator", "history", "change-rate estimator: history | naive | sa | mle")
	exploreFrac := fs.Float64("explore-frac", 0, "fraction of bandwidth spent probing high-uncertainty objects (0 disables exploration)")
	floorLambda := fs.Float64("floor-lambda", 0, "minimum change-rate estimate; 0 means prior/10, negative means no floor")
	seed := fs.Int64("seed", 1, "phase seed")
	upTimeout := fs.Duration("upstream-timeout", 5*time.Second, "per-request upstream timeout")
	upRetries := fs.Int("upstream-retries", 3, "attempts per upstream call (1 disables retries)")
	breakerAfter := fs.Int("breaker-after", 5, "consecutive failures that open the circuit breaker (negative disables)")
	breakerCooldown := fs.Float64("breaker-cooldown", 2, "breaker cooldown in periods")
	quarantineAfter := fs.Int("quarantine-after", 3, "per-object consecutive failures before quarantine (negative disables)")
	probeEvery := fs.Float64("probe-every", 1, "quarantine recovery-probe cadence in periods")
	stateDir := fs.String("state-dir", "", "directory for crash-safe state (snapshots + journal); empty disables persistence")
	snapshotEvery := fs.Float64("snapshot-every", 5, "snapshot cadence in periods")
	maxInflight := fs.Int("max-inflight", 0, "hard cap on concurrently admitted object reads (0 means 512, negative disables shedding)")
	minInflight := fs.Int("min-inflight", 0, "floor the adaptive concurrency limit never drops below (0 means 2)")
	shedTargetLatency := fs.Duration("shed-target-latency", 0, "object-read latency above which the adaptive limiter backs off (0 means 50ms)")
	persistDegradeAfter := fs.Int("persist-degrade-after", 0, "consecutive persist failures before persist-degraded read-only mode (0 means 3, negative disables)")
	persistFaultAfter := fs.Int("persist-fault-after", 0, "chaos testing: inject disk faults starting at this persist op (0 disables injection)")
	persistFaultOps := fs.Int("persist-fault-ops", 0, "chaos testing: how many consecutive persist ops fail (0 means the fault never heals)")
	persistFaultKind := fs.String("persist-fault-kind", "eio", "chaos testing: injected fault kind, eio | enospc")
	persistFaultTorn := fs.Bool("persist-fault-torn", false, "chaos testing: also tear the journal tail on the first injected append fault")
	serveFaultLatency := fs.Duration("serve-fault-latency", 0, "chaos testing: artificial latency added to every admitted object read (0 disables)")
	shards := fs.Int("shards", 1, "shard count; above 1 the daemon runs the sharded fleet tier behind a router on -addr")
	placement := fs.String("placement", "hash", "fleet object placement: hash (consistent hashing) | partition (paper's partitioner over prior parameters)")
	allocEvery := fs.Duration("alloc-every", 0, "fleet budget re-leveling cadence (0 means one period)")
	healthEvery := fs.Duration("health-every", 0, "fleet shard health-probe cadence (0 means a quarter period)")
	fleetChaos := fs.Bool("fleet-chaos", false, "chaos testing: mount POST /fleet/kill and /fleet/restart on the router")
	persistFaultShard := fs.Int("persist-fault-shard", 0, "chaos testing: which shard the persist-fault flags apply to in fleet mode")
	debugAddr := fs.String("debug-addr", "", "optional second listen address serving /metrics and /debug/pprof/; empty disables it")
	logLevel := fs.String("log-level", "info", "log verbosity: debug | info | warn | error")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	return config{
		addr:            *addr,
		upstream:        *upstream,
		upstreamURL:     *upstreamURL,
		bandwidth:       *bandwidth,
		period:          *period,
		strategy:        *strategy,
		partitions:      *partitions,
		iterations:      *iterations,
		replanEvery:     *replanEvery,
		estimator:       *estimator,
		exploreFrac:     *exploreFrac,
		floorLambda:     *floorLambda,
		seed:            *seed,
		upTimeout:       *upTimeout,
		upRetries:       *upRetries,
		breakerAfter:    *breakerAfter,
		breakerCooldown: *breakerCooldown,
		quarantineAfter: *quarantineAfter,
		probeEvery:      *probeEvery,
		stateDir:        *stateDir,
		snapshotEvery:   *snapshotEvery,
		debugAddr:       *debugAddr,
		logLevel:        *logLevel,

		shards:            *shards,
		placement:         *placement,
		allocEvery:        *allocEvery,
		healthEvery:       *healthEvery,
		fleetChaos:        *fleetChaos,
		persistFaultShard: *persistFaultShard,

		maxInflight:         *maxInflight,
		minInflight:         *minInflight,
		shedTargetLatency:   *shedTargetLatency,
		persistDegradeAfter: *persistDegradeAfter,
		persistFaultAfter:   *persistFaultAfter,
		persistFaultOps:     *persistFaultOps,
		persistFaultKind:    *persistFaultKind,
		persistFaultTorn:    *persistFaultTorn,
		serveFaultLatency:   *serveFaultLatency,
	}, nil
}

type config struct {
	addr, upstream         string
	upstreamURL            string
	bandwidth              float64
	period                 time.Duration
	strategy               string
	partitions, iterations int
	replanEvery            float64
	estimator              string
	exploreFrac            float64
	floorLambda            float64
	seed                   int64
	upTimeout              time.Duration
	upRetries              int
	breakerAfter           int
	breakerCooldown        float64
	quarantineAfter        int
	probeEvery             float64
	stateDir               string
	snapshotEvery          float64
	debugAddr              string
	logLevel               string

	// Fleet mode (shards > 1; see fleet.go in this package).
	shards            int
	placement         string
	allocEvery        time.Duration
	healthEvery       time.Duration
	fleetChaos        bool
	persistFaultShard int

	// Overload shedding and degraded-mode tuning.
	maxInflight         int
	minInflight         int
	shedTargetLatency   time.Duration
	persistDegradeAfter int

	// Deterministic fault injection (chaos testing).
	persistFaultAfter int
	persistFaultOps   int
	persistFaultKind  string
	persistFaultTorn  bool
	serveFaultLatency time.Duration

	// debugReady, when set (tests), receives the debug listener's bound
	// address once it is accepting connections.
	debugReady chan<- net.Addr
}

// run builds the mirror and serves it until ctx is cancelled (SIGINT/
// SIGTERM), then shuts down gracefully: the refresh loop stops before
// the listener closes. If ready is non-nil the bound listener address
// is sent on it once the server is accepting connections, which lets
// tests bind port 0 and still find the daemon.
func run(ctx context.Context, cfg config, ready chan<- net.Addr) error {
	if cfg.shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", cfg.shards)
	}
	if cfg.upstream != "" && cfg.upstreamURL != "" {
		return fmt.Errorf("-upstream and -upstream-url are mutually exclusive")
	}
	if cfg.shards > 1 {
		if cfg.upstreamURL != "" {
			return fmt.Errorf("-upstream-url is for single-mirror edge mode; fleet mode chains via -upstream")
		}
		return runFleet(ctx, cfg, ready)
	}
	if cfg.upstream == "" && cfg.upstreamURL == "" {
		return fmt.Errorf("-upstream or -upstream-url is required")
	}
	if cfg.bandwidth <= 0 || cfg.period <= 0 || cfg.replanEvery <= 0 {
		return fmt.Errorf("bandwidth, period and replan-every must be positive")
	}
	if cfg.stateDir != "" && cfg.snapshotEvery <= 0 {
		return fmt.Errorf("snapshot-every must be positive, got %v", cfg.snapshotEvery)
	}
	if cfg.logLevel == "" {
		cfg.logLevel = "info"
	}
	level, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level)
	lg := obs.Component(logger, "freshend")
	planCfg, err := planConfig(cfg)
	if err != nil {
		return err
	}

	// One registry carries every layer's series: the mirror's, the
	// solver's, the estimator's, and — with persistence on — the
	// store's.
	reg := obs.NewRegistry()
	solver.Instrument(reg)

	// storer stays a nil interface when persistence is off: assigning a
	// nil *persist.Store directly would make Config.Persist non-nil.
	var store *persist.Store
	var storer persist.Storer
	if cfg.stateDir != "" {
		var err error
		store, err = persist.Open(cfg.stateDir)
		if err != nil {
			return fmt.Errorf("opening state dir: %w", err)
		}
		defer store.Close()
		store.Instrument(reg)
		rec := store.Recovery()
		if rec.JournalTruncated {
			lg.Warn("journal had a torn or corrupt tail; truncated to the last good record")
		}
		if rec.SnapshotErr != nil {
			lg.Warn("snapshot discarded", "error", rec.SnapshotErr)
		}
		storer = store
		if cfg.persistFaultAfter > 0 {
			faultErr := persist.ErrDiskIO
			switch cfg.persistFaultKind {
			case "", "eio":
			case "enospc":
				faultErr = persist.ErrDiskFull
			default:
				return fmt.Errorf("unknown persist-fault-kind %q (want eio or enospc)", cfg.persistFaultKind)
			}
			storer = persist.NewFaultStore(store, persist.FaultPlan{
				FailFrom:   cfg.persistFaultAfter,
				FailOps:    cfg.persistFaultOps,
				Err:        faultErr,
				TornAppend: cfg.persistFaultTorn,
			})
			lg.Warn("disk-fault injection armed",
				"from_op", cfg.persistFaultAfter,
				"ops", cfg.persistFaultOps,
				"kind", cfg.persistFaultKind,
				"torn", cfg.persistFaultTorn)
		}
	}
	if cfg.serveFaultLatency > 0 {
		lg.Warn("serve-fault latency armed", "latency", cfg.serveFaultLatency)
	}

	retry := httpmirror.RetryPolicy{
		MaxAttempts: cfg.upRetries,
		Timeout:     cfg.upTimeout,
	}
	upstreamBase := cfg.upstream
	var upstream httpmirror.Source
	if cfg.upstreamURL != "" {
		// Edge mode: the upstream is itself a freshend mirror. The
		// hierarchy adapter speaks the same protocol but also observes
		// the upstream's degradation headers, so this mirror compounds
		// staleness instead of hiding it.
		upstreamBase = cfg.upstreamURL
		ms := hierarchy.NewMirrorSource(cfg.upstreamURL, nil)
		ms.SetRetryPolicy(retry)
		upstream = ms
	} else {
		client := httpmirror.NewSourceClient(cfg.upstream, nil)
		client.SetRetryPolicy(retry)
		upstream = client
	}
	m, err := httpmirror.New(ctx, httpmirror.Config{
		Upstream:    upstream,
		Plan:        planCfg,
		ReplanEvery: cfg.replanEvery,
		Estimator:   cfg.estimator,
		ExploreFrac: cfg.exploreFrac,
		FloorLambda: cfg.floorLambda,
		Fault: httpmirror.FaultPolicy{
			BreakerThreshold: cfg.breakerAfter,
			BreakerCooldown:  cfg.breakerCooldown,
			QuarantineAfter:  cfg.quarantineAfter,
			ProbeEvery:       cfg.probeEvery,
		},
		Overload: resilience.LimiterConfig{
			MaxInflight:   cfg.maxInflight,
			MinInflight:   cfg.minInflight,
			TargetLatency: cfg.shedTargetLatency,
		},
		Degrade: resilience.ModeConfig{
			PersistFailureThreshold: cfg.persistDegradeAfter,
		},
		ServeFaultLatency: cfg.serveFaultLatency,
		Seed:              cfg.seed,
		Persist:           storer,
		SnapshotEvery:     cfg.snapshotEvery,
		Metrics:           reg,
		Logger:            logger,
	})
	if err != nil {
		return err
	}
	lg.Info("mirroring upstream",
		"upstream", upstreamBase,
		"edge_mode", cfg.upstreamURL != "",
		"objects", m.Status().Objects,
		"bandwidth", cfg.bandwidth,
		"period", cfg.period.String(),
		"strategy", cfg.strategy)
	if store != nil {
		rd := m.Readiness()
		lg.Info("state recovered",
			"state_dir", cfg.stateDir,
			"status", rd.RecoveryStatus,
			"journal_replayed", rd.JournalReplayed)
	}

	// The refresh loop: upstream trouble is absorbed by retries, the
	// breaker, and quarantine; only internal errors surface, and even
	// those restart the loop rather than killing the daemon.
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		for {
			err := m.Run(ctx, cfg.period)
			if err == nil {
				return // ctx cancelled: clean shutdown
			}
			lg.Error("refresh loop failed; restarting", "error", err, "restart_in", cfg.period.String())
			select {
			case <-ctx.Done():
				return
			case <-time.After(cfg.period):
			}
		}
	}()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:      m.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// The optional debug listener: metrics plus pprof on an address the
	// operator chose to expose, separate from the serving one.
	var debugSrv *http.Server
	debugErr := make(chan error, 1)
	if cfg.debugAddr != "" {
		debugLn, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			srv.Close()
			<-serveErr
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: debugHandler(reg)}
		go func() { debugErr <- debugSrv.Serve(debugLn) }()
		lg.Info("debug listener up", "addr", debugLn.Addr().String())
		if cfg.debugReady != nil {
			cfg.debugReady <- debugLn.Addr()
		}
	}
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case err := <-serveErr:
		if debugSrv != nil {
			debugSrv.Close()
			<-debugErr
		}
		return err
	case err := <-debugErr:
		srv.Close()
		<-serveErr
		return fmt.Errorf("debug listener: %w", err)
	case <-ctx.Done():
	}
	// Graceful shutdown: the refresh loop stops first (any in-flight
	// refresh batch completes), then the final snapshot is flushed,
	// then the listeners close.
	lg.Info("shutting down")
	<-loopDone
	if err := m.FlushSnapshot(); err != nil {
		lg.Error("final snapshot failed", "error", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-debugErr; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// debugHandler builds the -debug-addr mux: the metrics exposition and
// the standard pprof handlers.
func debugHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
