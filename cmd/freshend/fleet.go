// Fleet mode: with -shards=K (K > 1) freshend runs the sharded
// multi-mirror tier instead of a single mirror. The catalog is
// partitioned across K fault-isolated shards — each an independent
// mirror with its own solver, estimator, persist directory
// (<state-dir>/shard-i), and loopback listener — a supervisor
// water-fills the global -bandwidth across healthy shards and
// re-levels it within one period of a shard dying or recovering, and
// a router on -addr fronts the fleet: placement-based object routing
// with failover, aggregated /status and /metrics, and 503 + jittered
// Retry-After for a dead shard's keyspace (see DESIGN.md §14).
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"freshen/internal/core"
	"freshen/internal/fleet"
	"freshen/internal/freshness"
	"freshen/internal/httpmirror"
	"freshen/internal/obs"
	"freshen/internal/partition"
	"freshen/internal/persist"
	"freshen/internal/resilience"
	"freshen/internal/solver"
)

// planConfig translates the -strategy family of flags; shared by the
// single-mirror and fleet paths.
func planConfig(cfg config) (core.Config, error) {
	planCfg := core.Config{
		Bandwidth:        cfg.bandwidth,
		Key:              partition.KeyPF,
		NumPartitions:    cfg.partitions,
		KMeansIterations: cfg.iterations,
		Allocation:       partition.FBA,
	}
	switch cfg.strategy {
	case "exact":
		planCfg.Strategy = core.StrategyExact
	case "partitioned":
		planCfg.Strategy = core.StrategyPartitioned
	case "clustered":
		planCfg.Strategy = core.StrategyClustered
	default:
		return core.Config{}, fmt.Errorf("unknown strategy %q", cfg.strategy)
	}
	return planCfg, nil
}

// runFleet is run's -shards>1 twin: same flag surface, sharded tier.
func runFleet(ctx context.Context, cfg config, ready chan<- net.Addr) error {
	if cfg.upstream == "" {
		return fmt.Errorf("-upstream is required")
	}
	if cfg.bandwidth <= 0 || cfg.period <= 0 || cfg.replanEvery <= 0 {
		return fmt.Errorf("bandwidth, period and replan-every must be positive")
	}
	if cfg.stateDir != "" && cfg.snapshotEvery <= 0 {
		return fmt.Errorf("snapshot-every must be positive, got %v", cfg.snapshotEvery)
	}
	if cfg.logLevel == "" {
		cfg.logLevel = "info"
	}
	level, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, level)
	lg := obs.Component(logger, "freshend")
	planCfg, err := planConfig(cfg)
	if err != nil {
		return err
	}

	// The router registry carries the fleet-level series plus the
	// process-global solver series (the pooled allocator's solves and
	// every shard's land there); per-shard series live on each shard's
	// own loopback listener.
	reg := obs.NewRegistry()
	solver.Instrument(reg)

	newClient := func() *httpmirror.SourceClient {
		c := httpmirror.NewSourceClient(cfg.upstream, nil)
		c.SetRetryPolicy(httpmirror.RetryPolicy{
			MaxAttempts: cfg.upRetries,
			Timeout:     cfg.upTimeout,
		})
		return c
	}

	var place *fleet.Placement
	switch cfg.placement {
	case "hash":
		// fleet.New derives the consistent-hash placement itself.
	case "partition":
		// The paper's partitioner needs element parameters; before any
		// traffic the only honest ones are the prior change rate and a
		// uniform profile over the catalog's real sizes.
		catalog, err := newClient().Catalog(ctx)
		if err != nil {
			return fmt.Errorf("fetching catalog for partition placement: %w", err)
		}
		elems := make([]freshness.Element, len(catalog))
		for i, e := range catalog {
			elems[i] = freshness.Element{ID: e.ID, Lambda: 1, AccessProb: 1 / float64(len(catalog)), Size: e.Size}
		}
		place, err = fleet.PartitionPlacement(elems, cfg.shards, partition.KeyPFOverSize, nil)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown placement %q (want hash or partition)", cfg.placement)
	}

	var wrapStore func(int, *persist.Store) persist.Storer
	if cfg.persistFaultAfter > 0 {
		faultErr := persist.ErrDiskIO
		switch cfg.persistFaultKind {
		case "", "eio":
		case "enospc":
			faultErr = persist.ErrDiskFull
		default:
			return fmt.Errorf("unknown persist-fault-kind %q (want eio or enospc)", cfg.persistFaultKind)
		}
		if cfg.persistFaultShard < 0 || cfg.persistFaultShard >= cfg.shards {
			return fmt.Errorf("persist-fault-shard %d outside fleet of %d", cfg.persistFaultShard, cfg.shards)
		}
		plan := persist.FaultPlan{
			FailFrom:   cfg.persistFaultAfter,
			FailOps:    cfg.persistFaultOps,
			Err:        faultErr,
			TornAppend: cfg.persistFaultTorn,
		}
		wrapStore = func(shard int, s *persist.Store) persist.Storer {
			if shard != cfg.persistFaultShard {
				return s
			}
			return persist.NewFaultStore(s, plan)
		}
		lg.Warn("disk-fault injection armed",
			"shard", cfg.persistFaultShard,
			"from_op", cfg.persistFaultAfter,
			"ops", cfg.persistFaultOps,
			"kind", cfg.persistFaultKind,
			"torn", cfg.persistFaultTorn)
	}

	fl, err := fleet.New(ctx, fleet.Config{
		Shards:    cfg.shards,
		Budget:    cfg.bandwidth,
		Placement: place,
		Upstream:  newClient(),
		ShardUpstream: func(int) httpmirror.Source {
			return newClient()
		},
		Mirror: httpmirror.Config{
			Plan:        planCfg,
			ReplanEvery: cfg.replanEvery,
			Estimator:   cfg.estimator,
			ExploreFrac: cfg.exploreFrac,
			FloorLambda: cfg.floorLambda,
			Fault: httpmirror.FaultPolicy{
				BreakerThreshold: cfg.breakerAfter,
				BreakerCooldown:  cfg.breakerCooldown,
				QuarantineAfter:  cfg.quarantineAfter,
				ProbeEvery:       cfg.probeEvery,
			},
			Overload: resilience.LimiterConfig{
				MaxInflight:   cfg.maxInflight,
				MinInflight:   cfg.minInflight,
				TargetLatency: cfg.shedTargetLatency,
			},
			Degrade: resilience.ModeConfig{
				PersistFailureThreshold: cfg.persistDegradeAfter,
			},
			ServeFaultLatency: cfg.serveFaultLatency,
			Seed:              cfg.seed,
			SnapshotEvery:     cfg.snapshotEvery,
		},
		Period:      cfg.period,
		StateDir:    cfg.stateDir,
		WrapStore:   wrapStore,
		AllocEvery:  cfg.allocEvery,
		HealthEvery: cfg.healthEvery,
		ChaosAdmin:  cfg.fleetChaos,
		Metrics:     reg,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	lg.Info("fleet up",
		"shards", cfg.shards,
		"placement", cfg.placement,
		"objects", fl.Placement().NumObjects(),
		"budget", cfg.bandwidth,
		"period", cfg.period.String(),
		"chaos_admin", cfg.fleetChaos)

	runCtx, cancelRun := context.WithCancel(context.Background())
	supDone := make(chan struct{})
	go func() {
		defer close(supDone)
		fl.Run(runCtx)
	}()

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		cancelRun()
		<-supDone
		fl.Close(context.Background())
		return err
	}
	srv := &http.Server{
		Handler:      fl.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case err := <-serveErr:
		cancelRun()
		<-supDone
		fl.Close(context.Background())
		return err
	case <-ctx.Done():
	}
	lg.Info("shutting down fleet")
	cancelRun()
	<-supDone
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fl.Close(shutdownCtx); err != nil {
		lg.Error("fleet shutdown", "error", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
