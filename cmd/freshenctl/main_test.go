package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdList(t *testing.T) {
	var sb strings.Builder
	if err := cmdList(&sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "figure3", "figure11", "sim-validate"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestCmdExperimentQuick(t *testing.T) {
	var sb strings.Builder
	if err := cmdExperiment(&sb, []string{"-quick", "table1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sync freq (P2)") {
		t.Errorf("table1 output missing rows:\n%s", sb.String())
	}
	sb.Reset()
	if err := cmdExperiment(&sb, []string{"-quick", "-csv", "figure1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "# Figure 1") {
		t.Errorf("csv output missing comment header:\n%s", sb.String())
	}
	// -outdir writes one CSV per table, numbered for multi-table
	// experiments.
	dir := t.TempDir()
	sb.Reset()
	if err := cmdExperiment(&sb, []string{"-quick", "-outdir", dir, "figure10"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure10_1.csv", "figure10_2.csv", "figure10_3.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing %s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	if err := cmdExperiment(&sb, []string{"bogus"}); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := cmdExperiment(&sb, []string{}); err == nil {
		t.Error("missing id must fail")
	}
}

func writeWorkloadCSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "elems.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := cmdWorkload(f, []string{"-n", "100", "-updates", "200", "-syncs", "50", "-theta", "1.0"}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdWorkloadSolveSimulate(t *testing.T) {
	path := writeWorkloadCSV(t)

	var sb strings.Builder
	if err := cmdSolve(&sb, []string{"-input", path, "-bandwidth", "50", "-top", "5"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "perceived freshness") {
		t.Errorf("solve output missing summary:\n%s", out)
	}
	if !strings.Contains(out, "Schedule (highest refresh frequency first)") {
		t.Errorf("solve output missing schedule:\n%s", out)
	}

	sb.Reset()
	if err := cmdSolve(&sb, []string{"-input", path, "-bandwidth", "50",
		"-strategy", "clustered", "-partitions", "10", "-iterations", "3", "-fba"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "clustered") {
		t.Errorf("clustered solve output:\n%s", sb.String())
	}

	sb.Reset()
	if err := cmdSimulate(&sb, []string{"-input", path, "-bandwidth", "50",
		"-periods", "20", "-accesses", "2000"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "measured monitored PF") {
		t.Errorf("simulate output:\n%s", sb.String())
	}
}

func TestCmdSolveErrors(t *testing.T) {
	var sb strings.Builder
	if err := cmdSolve(&sb, []string{"-bandwidth", "50"}); err == nil {
		t.Error("missing input must fail")
	}
	path := writeWorkloadCSV(t)
	if err := cmdSolve(&sb, []string{"-input", path}); err == nil {
		t.Error("missing bandwidth must fail")
	}
	if err := cmdSolve(&sb, []string{"-input", path, "-bandwidth", "50", "-strategy", "magic"}); err == nil {
		t.Error("unknown strategy must fail")
	}
	if err := cmdSolve(&sb, []string{"-input", path, "-bandwidth", "50", "-key", "magic"}); err == nil {
		t.Error("unknown key must fail")
	}
	if err := cmdSolve(&sb, []string{"-input", "/nonexistent.csv", "-bandwidth", "50"}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestCmdWorkloadErrors(t *testing.T) {
	var sb strings.Builder
	if err := cmdWorkload(&sb, []string{"-align", "bogus"}); err == nil {
		t.Error("bad alignment must fail")
	}
	if err := cmdWorkload(&sb, []string{"-n", "0"}); err == nil {
		t.Error("zero elements must fail")
	}
}

func TestCmdSolveQuantize(t *testing.T) {
	path := writeWorkloadCSV(t)
	var sb strings.Builder
	if err := cmdSolve(&sb, []string{"-input", path, "-bandwidth", "50", "-quantize", "-top", "3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "quantized perceived freshness") {
		t.Errorf("quantize output missing summary row:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "perceived age") {
		t.Errorf("output missing age row:\n%s", sb.String())
	}
}

func TestCmdSolveObjectives(t *testing.T) {
	path := writeWorkloadCSV(t)
	for _, obj := range []string{"age", "blend"} {
		var sb strings.Builder
		if err := cmdSolve(&sb, []string{"-input", path, "-bandwidth", "50", "-objective", obj, "-top", "3"}); err != nil {
			t.Fatalf("objective %s: %v", obj, err)
		}
		out := sb.String()
		if strings.Contains(out, "inf (") {
			t.Errorf("objective %s left infinite age:\n%s", obj, out)
		}
	}
	var sb strings.Builder
	if err := cmdSolve(&sb, []string{"-input", path, "-bandwidth", "50", "-objective", "karma"}); err == nil {
		t.Error("unknown objective must fail")
	}
	if err := cmdSolve(&sb, []string{"-input", path, "-bandwidth", "50",
		"-objective", "age", "-strategy", "clustered", "-partitions", "5"}); err == nil {
		t.Error("age objective with heuristic strategy must fail")
	}
}

func TestCmdCapacity(t *testing.T) {
	path := writeWorkloadCSV(t)
	var sb strings.Builder
	if err := cmdCapacity(&sb, []string{"-input", path, "-target", "0.7"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "required bandwidth") {
		t.Errorf("capacity output:\n%s", sb.String())
	}
	if err := cmdCapacity(&sb, []string{"-target", "0.7"}); err == nil {
		t.Error("missing input must fail")
	}
	if err := cmdCapacity(&sb, []string{"-input", path, "-target", "1.5"}); err == nil {
		t.Error("bad target must fail")
	}
	if err := cmdCapacity(&sb, []string{"-input", "/nonexistent", "-target", "0.5"}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestCmdLearn(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "access.log")
	if err := os.WriteFile(logPath, []byte("0\n0\n1\n# note\n\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cmdLearn(&sb, []string{"-n", "4", "-log", logPath, "-smoothing", "0"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "element,access_prob\n") {
		t.Errorf("learn output: %q", out)
	}
	if !strings.Contains(out, "0,0.5") {
		t.Errorf("element 0 should hold half the mass: %q", out)
	}

	// With -input, the element CSV is rewritten.
	elemPath := writeWorkloadCSV(t)
	sb.Reset()
	if err := cmdLearn(&sb, []string{"-log", logPath, "-input", elemPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "id,lambda,access_prob,size\n") {
		t.Errorf("learn -input output: %q", sb.String()[:60])
	}

	// Errors.
	if err := cmdLearn(&sb, []string{"-n", "4"}); err == nil {
		t.Error("missing -log must fail")
	}
	if err := cmdLearn(&sb, []string{"-log", logPath}); err == nil {
		t.Error("missing -n without -input must fail")
	}
	badLog := filepath.Join(dir, "bad.log")
	if err := os.WriteFile(badLog, []byte("zap\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdLearn(&sb, []string{"-n", "4", "-log", badLog}); err == nil {
		t.Error("garbage log line must fail")
	}
	if err := cmdLearn(&sb, []string{"-n", "4", "-log", filepath.Join(dir, "missing.log")}); err == nil {
		t.Error("missing log file must fail")
	}
}

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args must fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand must fail")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help failed: %v", err)
	}
}
