package main

import (
	"flag"
	"fmt"
	"io"

	"freshen/internal/freshness"
	"freshen/internal/hierarchy"
	"freshen/internal/workload"
)

// chainSplitResult is the committed shape of the chain_split section
// of BENCH_obs.json: the optimized cross-level budget split against
// the two fixed heuristics it must dominate, on the same workload and
// inner solver.
type chainSplitResult struct {
	N         int     `json:"n"`
	Budget    float64 `json:"budget"`
	Edges     int     `json:"edges"`
	Seed      int64   `json:"seed"`
	Optimized struct {
		Share float64 `json:"upstream_share"`
		PF    float64 `json:"pf"`
	} `json:"optimized"`
	Naive []struct {
		Name  string  `json:"name"`
		Share float64 `json:"upstream_share"`
		PF    float64 `json:"pf"`
	} `json:"naive"`
	Evals int `json:"share_evals"`
}

// cmdBenchChainSplit benchmarks the hierarchical budget split: on a
// paper-shaped synthetic workload it compares hierarchy.SplitBudget's
// optimized cross-level share against the 50/50 and
// proportional-to-mirror-count heuristics, prints the comparison, and
// merges it under the "chain_split" key of the output JSON.
func cmdBenchChainSplit(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bench-chainsplit", flag.ContinueOnError)
	out := fs.String("out", "BENCH_obs.json", "output JSON path (merged, not overwritten)")
	n := fs.Int("n", 500, "catalog size")
	edges := fs.Int("edges", 4, "edge mirrors below the regional tier")
	budget := fs.Float64("budget", 0, "global refresh budget across all tiers (0 = n/2 per tier)")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := workload.TableTwo()
	spec.NumObjects = *n
	spec.UpdatesPerPeriod = 2 * float64(*n)
	spec.Seed = *seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	if *budget == 0 {
		// Half the updates per tier: enough to matter, scarce enough
		// that the split is a real decision.
		*budget = 0.5 * float64(*n) * float64(1+*edges)
	}
	cfg := hierarchy.SplitConfig{
		Elements: elems,
		Budget:   *budget,
		Edges:    *edges,
		Policy:   freshness.FixedOrder{},
	}

	best, err := hierarchy.SplitBudget(cfg)
	if err != nil {
		return err
	}
	var res chainSplitResult
	res.N, res.Budget, res.Edges, res.Seed = *n, *budget, *edges, *seed
	res.Optimized.Share = best.Upstream.Share
	res.Optimized.PF = best.PF
	res.Evals = best.Evals

	fmt.Fprintf(w, "chain split: n=%d budget=%.0f edges=%d (%d share evals)\n",
		*n, *budget, *edges, best.Evals)
	fmt.Fprintf(w, "%-14s %16s %12s %12s\n", "split", "upstream_share", "chain_pf", "vs_best")
	fmt.Fprintf(w, "%-14s %16.4f %12.6f %12s\n", "optimized", best.Upstream.Share, best.PF, "-")
	for _, naive := range []struct {
		name  string
		share float64
	}{
		{"50/50", 0.5},
		{"proportional", 1 / float64(1+*edges)},
	} {
		s, err := hierarchy.EvalShare(cfg, naive.share)
		if err != nil {
			return err
		}
		res.Naive = append(res.Naive, struct {
			Name  string  `json:"name"`
			Share float64 `json:"upstream_share"`
			PF    float64 `json:"pf"`
		}{naive.name, naive.share, s.PF})
		fmt.Fprintf(w, "%-14s %16.4f %12.6f %+12.6f\n",
			naive.name, naive.share, s.PF, s.PF-best.PF)
	}

	return mergeJSONSection(*out, "chain_split", res)
}
