package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"freshen/internal/freshness"
	"freshen/internal/solver"
	"freshen/internal/workload"
)

// benchCase is one measured configuration in BENCH_solver.json.
type benchCase struct {
	Policy         string  `json:"policy"`
	N              int     `json:"n"`
	EngineNsOp     int64   `json:"engine_ns_op"`
	ReferenceNsOp  int64   `json:"reference_ns_op"`
	Speedup        float64 `json:"speedup"`
	EngineAllocsOp uint64  `json:"engine_allocs_op"`
	EngineIters    int     `json:"engine_iterations"`
}

// benchReport is the BENCH_solver.json document.
type benchReport struct {
	GOMAXPROCS int         `json:"gomaxprocs"`
	GoVersion  string      `json:"go_version"`
	Cases      []benchCase `json:"cases"`
}

// cmdBenchSolver times the solve engine against the frozen pre-engine
// reference on Table-3-style workloads (Zipf access, gamma change
// rates, Pareto sizes) and writes the measurements to a JSON file.
func cmdBenchSolver(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bench-solver", flag.ContinueOnError)
	out := fs.String("out", "BENCH_solver.json", "output JSON path")
	quick := fs.Bool("quick", false, "skip the N=1e6 cases")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail on an unwritable output path before spending minutes
	// benchmarking, not after.
	probe, err := os.OpenFile(*out, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	probe.Close()

	sizes := []int{10_000, 100_000, 1_000_000}
	if *quick {
		sizes = sizes[:2]
	}
	policies := []struct {
		name string
		pol  freshness.Policy
	}{
		{"fixed-order", freshness.FixedOrder{}},
		{"poisson-order", freshness.PoissonOrder{}},
	}

	report := benchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	fmt.Fprintf(w, "%-14s %8s %14s %14s %9s %10s\n",
		"policy", "n", "engine", "reference", "speedup", "allocs/op")
	for _, n := range sizes {
		elems, bandwidth, err := benchWorkload(n, *seed)
		if err != nil {
			return err
		}
		for _, pc := range policies {
			p := solver.Problem{Elements: elems, Bandwidth: bandwidth, Policy: pc.pol}
			c, err := runBenchCase(p, pc.name, n)
			if err != nil {
				return err
			}
			report.Cases = append(report.Cases, c)
			fmt.Fprintf(w, "%-14s %8d %14s %14s %8.2fx %10d\n",
				c.Policy, c.N, time.Duration(c.EngineNsOp), time.Duration(c.ReferenceNsOp),
				c.Speedup, c.EngineAllocsOp)
		}
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", *out)
	return nil
}

// benchWorkload scales the paper's Table 3 shape (Zipf θ=1, gamma
// change rates, Pareto-1.1 sizes, budget = half the updates) to n
// elements.
func benchWorkload(n int, seed int64) ([]freshness.Element, float64, error) {
	spec := workload.TableThree()
	spec.NumObjects = n
	spec.UpdatesPerPeriod = 2 * float64(n)
	spec.SyncsPerPeriod = 0.5 * float64(n)
	spec.Sizes = workload.SizePareto
	spec.ParetoShape = 1.1
	spec.Seed = seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return nil, 0, err
	}
	return elems, spec.SyncsPerPeriod, nil
}

// runBenchCase measures one (policy, n) configuration: median-of-reps
// wall clock for the engine and the reference, and the engine's
// steady-state allocation count from the runtime's malloc counter.
func runBenchCase(p solver.Problem, policy string, n int) (benchCase, error) {
	reps := 5
	if n >= 1_000_000 {
		reps = 2
	}
	eng := solver.NewEngine()
	// Warm-up solve: grows the engine's buffers and faults in the data.
	sol, err := eng.WaterFill(p)
	if err != nil {
		return benchCase{}, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	engNs := int64(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := eng.WaterFill(p); err != nil {
			return benchCase{}, err
		}
		if d := time.Since(start).Nanoseconds(); d < engNs {
			engNs = d
		}
	}
	runtime.ReadMemStats(&ms1)
	allocs := (ms1.Mallocs - ms0.Mallocs) / uint64(reps)

	refNs := int64(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := solver.ReferenceWaterFill(p); err != nil {
			return benchCase{}, err
		}
		if d := time.Since(start).Nanoseconds(); d < refNs {
			refNs = d
		}
	}

	return benchCase{
		Policy:         policy,
		N:              n,
		EngineNsOp:     engNs,
		ReferenceNsOp:  refNs,
		Speedup:        float64(refNs) / float64(engNs),
		EngineAllocsOp: allocs,
		EngineIters:    sol.Iterations,
	}, nil
}
