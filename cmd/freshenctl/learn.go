package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"freshen/internal/profile"
	"freshen/internal/solver"
	"freshen/internal/textio"
)

// formatAge renders a perceived-age value, flagging the infinite case
// (some accessed element is never refreshed).
func formatAge(age float64) string {
	if math.IsInf(age, 1) {
		return "inf (an accessed element is never refreshed)"
	}
	return strconv.FormatFloat(age, 'f', 4, 64)
}

// cmdCapacity answers the planning question "how much refresh
// bandwidth does this mirror need for a target perceived freshness?".
func cmdCapacity(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("capacity", flag.ContinueOnError)
	input := fs.String("input", "", "element CSV; required")
	target := fs.Float64("target", 0.9, "target perceived freshness in (0, 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		return fmt.Errorf("capacity: -input is required")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	elems, err := textio.ReadElements(f)
	f.Close()
	if err != nil {
		return err
	}
	bandwidth, err := solver.BandwidthForTarget(elems, *target, nil)
	if err != nil {
		return err
	}
	t := textio.NewTable("Capacity plan", "metric", "value")
	t.AddRow("elements", len(elems))
	t.AddRow("target perceived freshness", *target)
	t.AddRow("required bandwidth (refreshes/period)", bandwidth)
	if bandwidth > 0 {
		sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: bandwidth})
		if err != nil {
			return err
		}
		t.AddRow("achieved perceived freshness", sol.Perceived)
	}
	return t.Render(w)
}

// cmdLearn builds the master profile from an access log (one element
// index per line; blank lines and #-comments ignored). With -input it
// rewrites the element CSV with the learned probabilities; otherwise
// it prints element,access_prob pairs.
func cmdLearn(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("learn", flag.ContinueOnError)
	logPath := fs.String("log", "", "access log file (one element index per line); required")
	n := fs.Int("n", 0, "number of elements (required without -input)")
	input := fs.String("input", "", "element CSV to re-profile (optional)")
	smoothing := fs.Float64("smoothing", 1, "Laplace pseudo-count for unseen elements")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" {
		return fmt.Errorf("learn: -log is required")
	}
	accesses, err := readAccessLog(*logPath)
	if err != nil {
		return err
	}

	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		elems, err := textio.ReadElements(f)
		f.Close()
		if err != nil {
			return err
		}
		probs, err := profile.FromAccessLog(len(elems), accesses, *smoothing)
		if err != nil {
			return err
		}
		for i := range elems {
			elems[i].AccessProb = probs[i]
		}
		return textio.WriteElements(w, elems)
	}

	if *n <= 0 {
		return fmt.Errorf("learn: -n is required without -input")
	}
	probs, err := profile.FromAccessLog(*n, accesses, *smoothing)
	if err != nil {
		return err
	}
	t := textio.NewTable("", "element", "access_prob")
	for i, p := range probs {
		t.AddRow(i, p)
	}
	return t.RenderCSV(w)
}

// readAccessLog parses one element index per line.
func readAccessLog(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var accesses []int
	scanner := bufio.NewScanner(f)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		idx, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("learn: %s:%d: bad element index %q", path, line, text)
		}
		accesses = append(accesses, idx)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return accesses, nil
}
