package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"freshen/internal/experiment"
)

// cmdBenchColdStart runs the cold-start convergence benchmark — how
// fast each change-rate estimation policy steers an uninformed mirror
// onto the optimal refresh plan — and merges the result under the
// "cold_start" key of the output JSON, preserving whatever other
// sections (e.g. loadgen's closed-loop serve results) the file already
// holds.
func cmdBenchColdStart(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bench-coldstart", flag.ContinueOnError)
	out := fs.String("out", "BENCH_obs.json", "output JSON path (merged, not overwritten)")
	n := fs.Int("n", 0, "catalog size (0 = standard)")
	periods := fs.Int("periods", 0, "horizon in periods (0 = standard)")
	seed := fs.Int64("seed", 0, "workload seed (0 = standard)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := experiment.RunColdStart(experiment.ColdStartOptions{
		N: *n, Periods: *periods, Seed: *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "cold start: n=%d bandwidth=%.0f periods=%d converged_pf=%.4f target=%.4f\n",
		res.N, res.Bandwidth, res.Periods, res.ConvergedPF, res.TargetPF)
	fmt.Fprintf(w, "%-12s %12s %12s %10s\n", "policy", "periods_to_99", "final_pf", "rel_err")
	for _, p := range res.Policies {
		final := 0.0
		if len(p.PF) > 0 {
			final = p.PF[len(p.PF)-1]
		}
		to99 := "never"
		if p.PeriodsTo99 >= 0 {
			to99 = fmt.Sprintf("%d", p.PeriodsTo99)
		}
		fmt.Fprintf(w, "%-12s %12s %12.4f %10.3f\n", p.Name, to99, final, p.FinalRelErr)
	}

	return mergeJSONSection(*out, "cold_start", res)
}

// mergeJSONSection writes value under key in the JSON object at path,
// creating the file if absent and leaving every other top-level key
// untouched.
func mergeJSONSection(path, key string, value any) error {
	sections := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &sections); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	enc, err := json.Marshal(value)
	if err != nil {
		return err
	}
	sections[key] = enc
	merged, err := json.MarshalIndent(sections, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(merged, '\n'), 0o644)
}
