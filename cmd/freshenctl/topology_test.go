package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"freshen/internal/core"
	"freshen/internal/hierarchy"
	"freshen/internal/httpmirror"
)

// chainFixture stands up an in-process origin → regional → edge chain
// and returns the edge's base URL.
func chainFixture(t *testing.T) (edgeURL, regionalURL string) {
	t.Helper()
	src, err := httpmirror.NewSimulatedSource([]float64{2, 1, 0.5}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(src.Handler())
	t.Cleanup(originSrv.Close)

	newMirror := func(up httpmirror.Source) *httpmirror.Mirror {
		m, err := httpmirror.New(context.Background(), httpmirror.Config{
			Upstream:    up,
			Plan:        core.Config{Bandwidth: 2},
			ReplanEvery: 50,
			Seed:        5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	regional := newMirror(httpmirror.NewSourceClient(originSrv.URL, originSrv.Client()))
	regSrv := httptest.NewServer(regional.Handler())
	t.Cleanup(regSrv.Close)
	edge := newMirror(hierarchy.NewMirrorSource(regSrv.URL, regSrv.Client()))
	edgeSrv := httptest.NewServer(edge.Handler())
	t.Cleanup(edgeSrv.Close)
	for now := 1.0; now <= 2; now++ {
		if _, err := regional.Step(now); err != nil {
			t.Fatal(err)
		}
		if _, err := edge.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	return edgeSrv.URL, regSrv.URL
}

func TestCmdTopologyStatus(t *testing.T) {
	edgeURL, regionalURL := chainFixture(t)
	var sb strings.Builder
	if err := cmdTopologyStatus(&sb, []string{"-url", edgeURL}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "chain: 2 level(s)") {
		t.Errorf("wrong chain depth:\n%s", out)
	}
	for _, want := range []string{"edge", "root", edgeURL, regionalURL} {
		if !strings.Contains(out, want) {
			t.Errorf("topology output missing %q:\n%s", want, out)
		}
	}
	// Starting the walk at the regional shows a single root level.
	sb.Reset()
	if err := cmdTopologyStatus(&sb, []string{"-url", regionalURL}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "chain: 1 level(s)") {
		t.Errorf("regional walk:\n%s", sb.String())
	}

	if err := cmdTopologyStatus(&sb, []string{"-url", "http://127.0.0.1:1"}); err == nil {
		t.Error("unreachable edge must fail")
	}
}

func TestCmdBenchChainSplit(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	// Pre-seed a sibling section: the merge must preserve it.
	if err := os.WriteFile(out, []byte(`{"cold_start": {"n": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cmdBenchChainSplit(&sb, []string{"-out", out, "-n", "60", "-edges", "3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "optimized") || !strings.Contains(sb.String(), "proportional") {
		t.Errorf("bench output:\n%s", sb.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sections map[string]json.RawMessage
	if err := json.Unmarshal(raw, &sections); err != nil {
		t.Fatal(err)
	}
	if _, ok := sections["cold_start"]; !ok {
		t.Error("merge dropped the cold_start section")
	}
	var res chainSplitResult
	if err := json.Unmarshal(sections["chain_split"], &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Naive) != 2 {
		t.Fatalf("recorded %d naive splits, want 2", len(res.Naive))
	}
	for _, naive := range res.Naive {
		if res.Optimized.PF < naive.PF {
			t.Errorf("optimized PF %v below %s's %v", res.Optimized.PF, naive.Name, naive.PF)
		}
	}
}
