package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"text/tabwriter"
	"time"

	"freshen/internal/httpmirror"
)

// maxTopologyDepth caps the upstream walk so a status loop (two
// mirrors chained at each other, a misconfiguration) terminates.
const maxTopologyDepth = 8

// cmdTopologyStatus walks a mirror chain from the given edge: it
// fetches /status, follows upstream_url level by level, and renders
// one row per tier — edge first, origin-most mirror last — so an
// operator can see at a glance where in the hierarchy freshness is
// being lost.
func cmdTopologyStatus(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("topology-status", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8081", "edge mirror base URL (the walk starts here)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}

	type level struct {
		url string
		ok  bool
		st  httpmirror.Status
	}
	var levels []level
	seen := map[string]bool{}
	for next := *url; next != "" && len(levels) < maxTopologyDepth; {
		if seen[next] {
			return fmt.Errorf("topology loop: %s appears twice in the chain", next)
		}
		seen[next] = true
		resp, err := client.Get(next + "/status")
		if err != nil {
			if len(levels) > 0 {
				// A dead upstream is a finding, not a tool failure:
				// report the walk so far plus the unreachable tier.
				levels = append(levels, level{url: next})
				break
			}
			return fmt.Errorf("fetching %s/status: %w", next, err)
		}
		var st httpmirror.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding %s/status: %w", next, err)
		}
		levels = append(levels, level{url: next, ok: true, st: st})
		next = st.UpstreamURL
	}

	fmt.Fprintf(out, "chain: %d level(s), edge first\n", len(levels))
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "LEVEL\tROLE\tMODE\tPF\tOBJECTS\t304s\tBREAKER\tUPSTREAM-DEGRADED\tURL")
	for i, lv := range levels {
		role := "regional"
		switch {
		case !lv.ok:
			fmt.Fprintf(w, "%d\t?\tUNREACHABLE\t-\t-\t-\t-\t-\t%s\n", i, lv.url)
			continue
		case i == 0 && len(levels) > 1:
			role = "edge"
		case lv.st.UpstreamURL == "":
			role = "root"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%.6f\t%d\t%d\t%s\t%v\t%s\n",
			i, role, lv.st.Mode, lv.st.PlannedPF, lv.st.Objects,
			lv.st.NotModified, lv.st.BreakerState, lv.st.UpstreamDegraded, lv.url)
	}
	return w.Flush()
}
