// Command freshenctl is the command-line front end of the freshen
// library: it plans refresh schedules for element sets, simulates
// them, generates synthetic workloads, and reproduces every table and
// figure of the paper's evaluation.
//
// Usage:
//
//	freshenctl list
//	freshenctl experiment [-csv] [-outdir DIR] [-seed N] [-bign N] [-clustern N] [-quick] <id|all>
//	freshenctl solve -input elems.csv -bandwidth B [-strategy S] [-key K] [-partitions P] [-iterations I] [-fba] [-objective O] [-quantize] [-top N]
//	freshenctl simulate -input elems.csv -bandwidth B [-periods P] [-accesses A] [-seed N]
//	freshenctl workload -n N -updates U -syncs B [-theta T] [-stddev S] [-align A] [-pareto-sizes] [-seed N]
//	freshenctl learn -log access.log (-n N | -input elems.csv) [-smoothing S]
//	freshenctl capacity -input elems.csv -target PF
//	freshenctl bench-solver [-out BENCH_solver.json] [-quick] [-seed N]
//	freshenctl bench-coldstart [-out BENCH_obs.json] [-n N] [-periods P] [-seed N]
//	freshenctl fleet-status [-url http://localhost:8081] [-timeout D]
//	freshenctl topology-status [-url http://localhost:8081] [-timeout D]
//	freshenctl bench-chainsplit [-out BENCH_obs.json] [-n N] [-edges E] [-budget B] [-seed N]
//
// Flags come before positional arguments (standard flag package
// ordering).
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "freshenctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return cmdList(os.Stdout)
	case "experiment":
		return cmdExperiment(os.Stdout, args[1:])
	case "solve":
		return cmdSolve(os.Stdout, args[1:])
	case "simulate":
		return cmdSimulate(os.Stdout, args[1:])
	case "workload":
		return cmdWorkload(os.Stdout, args[1:])
	case "learn":
		return cmdLearn(os.Stdout, args[1:])
	case "capacity":
		return cmdCapacity(os.Stdout, args[1:])
	case "bench-solver":
		return cmdBenchSolver(os.Stdout, args[1:])
	case "bench-coldstart":
		return cmdBenchColdStart(os.Stdout, args[1:])
	case "fleet-status":
		return cmdFleetStatus(os.Stdout, args[1:])
	case "topology-status":
		return cmdTopologyStatus(os.Stdout, args[1:])
	case "bench-chainsplit":
		return cmdBenchChainSplit(os.Stdout, args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `freshenctl — application-aware data freshening

Subcommands:
  list        list reproducible experiments (paper tables and figures)
  experiment  run one experiment (or "all") and print its tables
  solve       plan a refresh schedule for an element CSV
  simulate    plan and then simulate a schedule, reporting measured freshness
  workload    generate a synthetic element CSV (gamma/zipf/pareto)
  learn       build the master profile from an access log
  capacity    minimum bandwidth for a target perceived freshness
  bench-solver  time the solve engine against the pre-engine reference
  bench-coldstart  race change-rate estimators from a cold start (see BENCH_obs.json)
  fleet-status  shard table of a running fleet router (-url http://host:port)
  topology-status  walk a mirror chain upstream-by-upstream and print one row per tier
  bench-chainsplit  optimized vs naive cross-level budget splits (see BENCH_obs.json)
`)
}
