package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"freshen/internal/core"
	"freshen/internal/experiment"
	"freshen/internal/freshness"
	"freshen/internal/partition"
	"freshen/internal/schedule"
	"freshen/internal/sim"
	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// cmdList prints the experiment registry.
func cmdList(w io.Writer) error {
	t := textio.NewTable("Reproducible experiments", "id", "description")
	for _, info := range experiment.All() {
		t.AddRow(info.ID, info.Title)
	}
	return t.Render(w)
}

// cmdExperiment runs one experiment (or all) and renders its tables.
func cmdExperiment(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	csvOut := fs.Bool("csv", false, "emit CSV instead of aligned text")
	outDir := fs.String("outdir", "", "also write each table as a CSV file into this directory")
	seed := fs.Int64("seed", 1, "workload seed")
	bigN := fs.Int("bign", 0, "element count for the figure7 big case (0 = paper's 500000)")
	clusterN := fs.Int("clustern", 0, "element count for the k-means figures (0 = 100000)")
	quick := fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("experiment: need exactly one experiment id (or 'all'); see 'freshenctl list'")
	}
	opts := experiment.Options{Seed: *seed, BigN: *bigN, ClusterN: *clusterN, Quick: *quick}

	var infos []experiment.Info
	if fs.Arg(0) == "all" {
		infos = experiment.All()
	} else {
		info, err := experiment.Find(fs.Arg(0))
		if err != nil {
			return err
		}
		infos = append(infos, info)
	}
	for _, info := range infos {
		tables, err := info.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", info.ID, err)
		}
		for ti, tab := range tables {
			if *csvOut {
				fmt.Fprintf(w, "# %s\n", tab.Title)
				if err := tab.RenderCSV(w); err != nil {
					return err
				}
			} else {
				if err := tab.Render(w); err != nil {
					return err
				}
			}
			fmt.Fprintln(w)
			if *outDir != "" {
				name := info.ID
				if len(tables) > 1 {
					name = fmt.Sprintf("%s_%d", info.ID, ti+1)
				}
				if err := writeTableCSV(filepath.Join(*outDir, name+".csv"), tab); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeTableCSV writes one result table to a CSV file.
func writeTableCSV(path string, tab *textio.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tab.RenderCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// planFlags holds the planning options shared by solve and simulate.
type planFlags struct {
	input      string
	bandwidth  float64
	strategy   string
	key        string
	partitions int
	iterations int
	fba        bool
}

func (p *planFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.input, "input", "", "element CSV (id,lambda,access_prob,size); required")
	fs.Float64Var(&p.bandwidth, "bandwidth", 0, "refresh budget per period; required")
	fs.StringVar(&p.strategy, "strategy", "exact", "exact | partitioned | clustered")
	fs.StringVar(&p.key, "key", "PF", "partitioning key: P | LAMBDA | P_OVER_LAMBDA | PF | PF_OVER_SIZE | SIZE")
	fs.IntVar(&p.partitions, "partitions", 100, "partition count for heuristic strategies")
	fs.IntVar(&p.iterations, "iterations", 10, "k-means iterations for the clustered strategy")
	fs.BoolVar(&p.fba, "fba", false, "use fixed-bandwidth allocation (for variable-size mirrors)")
}

func (p *planFlags) config() (core.Config, error) {
	cfg := core.Config{
		Bandwidth:        p.bandwidth,
		NumPartitions:    p.partitions,
		KMeansIterations: p.iterations,
	}
	switch p.strategy {
	case "exact":
		cfg.Strategy = core.StrategyExact
	case "partitioned":
		cfg.Strategy = core.StrategyPartitioned
	case "clustered":
		cfg.Strategy = core.StrategyClustered
	default:
		return core.Config{}, fmt.Errorf("unknown strategy %q", p.strategy)
	}
	key, err := partition.ParseKey(p.key)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Key = key
	if p.fba {
		cfg.Allocation = partition.FBA
	}
	return cfg, nil
}

func (p *planFlags) loadElements() (core.Config, []freshness.Element, error) {
	if p.input == "" {
		return core.Config{}, nil, fmt.Errorf("-input is required")
	}
	if !(p.bandwidth > 0) {
		return core.Config{}, nil, fmt.Errorf("-bandwidth must be positive")
	}
	f, err := os.Open(p.input)
	if err != nil {
		return core.Config{}, nil, err
	}
	defer f.Close()
	elems, err := textio.ReadElements(f)
	if err != nil {
		return core.Config{}, nil, err
	}
	cfg, err := p.config()
	if err != nil {
		return core.Config{}, nil, err
	}
	return cfg, elems, nil
}

// cmdSolve plans a schedule and prints it.
func cmdSolve(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	var pf planFlags
	pf.register(fs)
	top := fs.Int("top", 20, "print only the N highest-frequency elements (0 = all)")
	quantize := fs.Bool("quantize", false, "round to whole refresh counts per period (largest remainder)")
	objective := fs.String("objective", "freshness", "freshness | age | blend (exact strategy only for age/blend)")
	ageWeight := fs.Float64("age-weight", 0.1, "staleness penalty for -objective blend")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, elems, err := pf.loadElements()
	if err != nil {
		return err
	}
	var plan core.Plan
	switch *objective {
	case "freshness":
		plan, err = core.MakePlan(elems, cfg)
	case "age", "blend":
		if cfg.Strategy != core.StrategyExact {
			return fmt.Errorf("solve: -objective %s requires -strategy exact", *objective)
		}
		prob := solver.Problem{Elements: elems, Bandwidth: cfg.Bandwidth}
		var sol solver.Solution
		if *objective == "age" {
			sol, err = solver.MinimizeAge(prob)
		} else {
			sol, err = solver.Blend(prob, *ageWeight)
		}
		if err != nil {
			break
		}
		var avg float64
		avg, err = freshness.Average(freshness.FixedOrder{}, elems, sol.Freqs)
		plan = core.Plan{
			Freqs:         sol.Freqs,
			Perceived:     sol.Perceived,
			AvgFreshness:  avg,
			BandwidthUsed: sol.BandwidthUsed,
			Strategy:      core.StrategyExact,
			NumPartitions: len(elems),
		}
	default:
		return fmt.Errorf("solve: unknown objective %q", *objective)
	}
	if err != nil {
		return err
	}

	freqs := plan.Freqs
	if *quantize {
		counts, err := schedule.Quantize(plan.Freqs)
		if err != nil {
			return err
		}
		freqs = schedule.QuantizedFreqs(counts)
	}

	summary := textio.NewTable("Plan summary", "metric", "value")
	summary.AddRow("strategy", plan.Strategy.String())
	summary.AddRow("elements", len(elems))
	summary.AddRow("partitions", plan.NumPartitions)
	summary.AddRow("perceived freshness", plan.Perceived)
	summary.AddRow("average freshness", plan.AvgFreshness)
	if age, err := freshness.PerceivedAge(elems, freqs); err == nil {
		summary.AddRow("perceived age (periods)", formatAge(age))
	}
	summary.AddRow("bandwidth used", plan.BandwidthUsed)
	summary.AddRow("planning time", plan.Elapsed.String())
	if *quantize {
		qpf, err := freshness.Perceived(freshness.FixedOrder{}, elems, freqs)
		if err != nil {
			return err
		}
		summary.AddRow("quantized perceived freshness", qpf)
	}
	if err := summary.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	type row struct {
		idx  int
		freq float64
	}
	rows := make([]row, len(elems))
	for i, f := range freqs {
		rows[i] = row{idx: i, freq: f}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].freq > rows[b].freq })
	if *top > 0 && *top < len(rows) {
		rows = rows[:*top]
	}
	sched := textio.NewTable("Schedule (highest refresh frequency first)",
		"element id", "lambda", "access prob", "size", "freq/period", "bandwidth")
	for _, r := range rows {
		e := elems[r.idx]
		sched.AddRow(e.ID, e.Lambda, e.AccessProb, e.Size, r.freq, r.freq*e.Size)
	}
	return sched.Render(w)
}

// cmdSimulate plans and then validates the plan in the simulator.
func cmdSimulate(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var pf planFlags
	pf.register(fs)
	periods := fs.Int("periods", 40, "periods to simulate")
	accesses := fs.Float64("accesses", 10000, "user accesses per period")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, elems, err := pf.loadElements()
	if err != nil {
		return err
	}
	plan, err := core.MakePlan(elems, cfg)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{
		Elements:          elems,
		Freqs:             plan.Freqs,
		Periods:           *periods,
		WarmupPeriods:     max(1, *periods/10),
		AccessesPerPeriod: *accesses,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	t := textio.NewTable("Simulation", "metric", "value")
	t.AddRow("planned (analytic) PF", res.AnalyticPF)
	t.AddRow("measured time-averaged PF", res.TimeAveragedPF)
	t.AddRow("measured monitored PF", res.MonitoredPF)
	t.AddRow("average freshness", res.AvgFreshness)
	t.AddRow("accesses", res.Accesses)
	t.AddRow("fresh accesses", res.FreshAccesses)
	t.AddRow("updates", res.Updates)
	t.AddRow("syncs", res.Syncs)
	return t.Render(w)
}

// cmdWorkload emits a synthetic element CSV.
func cmdWorkload(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("workload", flag.ContinueOnError)
	n := fs.Int("n", 500, "number of elements")
	updates := fs.Float64("updates", 1000, "expected updates per period (all elements)")
	syncs := fs.Float64("syncs", 250, "sync budget per period (recorded only)")
	theta := fs.Float64("theta", 1.0, "zipf skew of the access distribution")
	stddev := fs.Float64("stddev", 1.0, "stddev of the gamma change-rate distribution")
	align := fs.String("align", "shuffled", "change/access alignment: aligned | reverse | shuffled")
	pareto := fs.Bool("pareto-sizes", false, "draw object sizes from Pareto(1.1, mean 1)")
	sizeAlign := fs.String("size-align", "shuffled", "size/change alignment: aligned | reverse | shuffled")
	seed := fs.Int64("seed", 1, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := workload.ParseAlignment(*align)
	if err != nil {
		return err
	}
	sa, err := workload.ParseAlignment(*sizeAlign)
	if err != nil {
		return err
	}
	spec := workload.Spec{
		NumObjects:       *n,
		UpdatesPerPeriod: *updates,
		SyncsPerPeriod:   *syncs,
		Theta:            *theta,
		UpdateStdDev:     *stddev,
		ChangeAlignment:  a,
		SizeAlignment:    sa,
		Seed:             *seed,
	}
	if *pareto {
		spec.Sizes = workload.SizePareto
		spec.ParetoShape = 1.1
	}
	elems, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	return textio.WriteElements(w, elems)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
