package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"text/tabwriter"
	"time"

	"freshen/internal/fleet"
)

// cmdFleetStatus fetches a fleet router's /status and renders the
// shard table: health, placement size, budget slice, traffic weight,
// and each live shard's mode and freshness.
func cmdFleetStatus(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("fleet-status", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8081", "fleet router base URL")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(*url + "/status")
	if err != nil {
		return fmt.Errorf("fetching fleet status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet status: %s", resp.Status)
	}
	var st fleet.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding fleet status: %w", err)
	}
	if st.Shards == 0 {
		return fmt.Errorf("%s/status has no shards — is it a fleet router? (single mirrors answer /status too)", *url)
	}

	fmt.Fprintf(out, "fleet: %d/%d shards healthy, %d objects, budget %.4g/period, mode %s\n",
		st.HealthyShards, st.Shards, st.Objects, st.Budget, st.Mode)
	ok := "certified"
	if !st.AllocationOK {
		ok = "FAILED"
	}
	fmt.Fprintf(out, "allocation: PF %.6f, %d levelings (%d failed), latest %s\n",
		st.Perceived, st.Reallocations, st.AllocFailures, ok)

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SHARD\tHEALTHY\tOBJECTS\tSLICE\tWEIGHT\tMODE\tPF\tACCESSES\tKILLS\tURL")
	for _, sh := range st.ShardStatus {
		mode, pf, accesses := "-", "-", "-"
		if sh.Status != nil {
			mode = sh.Status.Mode
			pf = fmt.Sprintf("%.6f", sh.Status.PlannedPF)
			accesses = fmt.Sprintf("%d", sh.Status.Accesses)
		}
		fmt.Fprintf(w, "%d\t%v\t%d\t%.4g\t%.3f\t%s\t%s\t%s\t%d\t%s\n",
			sh.Shard, sh.Healthy, sh.Objects, sh.Slice, sh.Weight, mode, pf, accesses, sh.Kills, sh.URL)
	}
	return w.Flush()
}
