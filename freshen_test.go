package freshen_test

import (
	"math"
	"testing"

	"freshen"
)

func demoElements() []freshen.Element {
	return []freshen.Element{
		{ID: 0, Lambda: 5, AccessProb: 0.55, Size: 1},
		{ID: 1, Lambda: 2, AccessProb: 0.25, Size: 1},
		{ID: 2, Lambda: 1, AccessProb: 0.15, Size: 1},
		{ID: 3, Lambda: 8, AccessProb: 0.05, Size: 1},
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	elems := demoElements()
	plan, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.BandwidthUsed > 4.0001 {
		t.Errorf("over budget: %v", plan.BandwidthUsed)
	}
	gf, err := freshen.SolveGF(elems, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gf.Perceived > plan.Perceived+1e-9 {
		t.Errorf("GF %v beats PF optimum %v", gf.Perceived, plan.Perceived)
	}
	pf, err := freshen.PerceivedFreshness(nil, elems, plan.Freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pf-plan.Perceived) > 1e-12 {
		t.Errorf("PerceivedFreshness %v != plan.Perceived %v", pf, plan.Perceived)
	}
	if _, err := freshen.AverageFreshness(nil, elems, plan.Freqs); err != nil {
		t.Fatal(err)
	}

	events, err := plan.Timeline(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty timeline")
	}

	res, err := freshen.Simulate(freshen.SimConfig{
		Elements:          elems,
		Freqs:             plan.Freqs,
		Periods:           40,
		WarmupPeriods:     4,
		AccessesPerPeriod: 5000,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MonitoredPF-plan.Perceived) > 0.05 {
		t.Errorf("simulated PF %v far from planned %v", res.MonitoredPF, plan.Perceived)
	}
}

func TestPublicAPIProfiles(t *testing.T) {
	users := []freshen.User{
		{Name: "a", Weight: 1, Interests: map[int]float64{0: 3, 1: 1}},
		{Name: "b", Weight: 1, Interests: map[int]float64{2: 1}},
	}
	master, err := freshen.AggregateProfiles(4, users)
	if err != nil {
		t.Fatal(err)
	}
	elems := demoElements()
	if err := freshen.ApplyProfile(elems, master); err != nil {
		t.Fatal(err)
	}
	if elems[3].AccessProb != 0 {
		t.Errorf("element 3 should have no interest, got %v", elems[3].AccessProb)
	}
	if err := freshen.ApplyProfile(elems, master[:2]); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := freshen.ApplyProfile(elems, []float64{-1, 0, 0, 1}); err == nil {
		t.Error("negative probability must fail")
	}
	learned, err := freshen.ProfileFromAccessLog(4, []int{0, 0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if learned[0] <= learned[1] {
		t.Error("learned profile should rank element 0 hottest")
	}
}

func TestPublicAPIWorkloadAndHeuristics(t *testing.T) {
	spec := freshen.WorkloadSpec{
		NumObjects:       2000,
		UpdatesPerPeriod: 4000,
		SyncsPerPeriod:   1000,
		Theta:            1.0,
		UpdateStdDev:     1.0,
		Seed:             7,
	}
	elems, err := freshen.GenerateWorkload(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := freshen.DefaultHeuristics(1000, 40)
	plan, err := freshen.MakePlan(elems, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Perceived > exact.Perceived+1e-9 {
		t.Errorf("heuristic %v beats exact %v", plan.Perceived, exact.Perceived)
	}
	if exact.Perceived-plan.Perceived > 0.05 {
		t.Errorf("heuristic %v too far below exact %v", plan.Perceived, exact.Perceived)
	}
}

func TestPublicAPIPresetsAndSelection(t *testing.T) {
	two := freshen.TableTwoWorkload()
	if two.NumObjects != 500 || two.SyncsPerPeriod != 250 {
		t.Errorf("TableTwoWorkload = %+v", two)
	}
	three := freshen.TableThreeWorkload()
	if three.NumObjects != 500000 {
		t.Errorf("TableThreeWorkload = %+v", three)
	}

	elems := demoElements()
	res, err := freshen.SelectMirror(freshen.SelectionProblem{
		Candidates: elems,
		Capacity:   2,
		Bandwidth:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostedCount != 2 {
		t.Errorf("hosted %d of capacity 2", res.HostedCount)
	}
	hostedMass := 0.0
	for i, h := range res.Hosted {
		if h {
			hostedMass += elems[i].AccessProb
		}
	}
	if hostedMass < 0.5 {
		t.Errorf("selection hosted only %v of the access mass", hostedMass)
	}
}

func TestPublicAPIErrorPaths(t *testing.T) {
	if _, err := freshen.MakePlan(nil, freshen.PlanConfig{Bandwidth: 1}); err == nil {
		t.Error("empty mirror must fail")
	}
	if _, err := freshen.SolveGF(nil, 1); err == nil {
		t.Error("SolveGF on empty mirror must fail")
	}
	if _, err := freshen.GenerateWorkload(freshen.WorkloadSpec{}); err == nil {
		t.Error("zero-value workload spec must fail")
	}
	if _, err := freshen.Simulate(freshen.SimConfig{}); err == nil {
		t.Error("zero-value sim config must fail")
	}
	if _, err := freshen.SelectMirror(freshen.SelectionProblem{}); err == nil {
		t.Error("zero-value selection problem must fail")
	}
	if _, err := freshen.EstimateChangeRate(nil); err == nil {
		t.Error("empty poll history must fail")
	}
	if _, err := freshen.AggregateProfiles(0, nil); err == nil {
		t.Error("empty aggregate must fail")
	}
	if _, err := freshen.ProfileFromAccessLog(0, nil, 0); err == nil {
		t.Error("empty profile learn must fail")
	}
	if _, err := freshen.PerceivedFreshness(nil, demoElements(), nil); err == nil {
		t.Error("mismatched freqs must fail")
	}
	if _, err := freshen.AverageFreshness(freshen.PoissonOrder{}, demoElements(), nil); err == nil {
		t.Error("mismatched freqs must fail")
	}
}

func TestPublicAPIBandwidthForTarget(t *testing.T) {
	elems := demoElements()
	b, err := freshen.BandwidthForTarget(elems, 0.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: b})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Perceived < 0.7-1e-4 {
		t.Errorf("bandwidth %v achieves only %v", b, plan.Perceived)
	}
	if _, err := freshen.BandwidthForTarget(elems, 2, nil); err == nil {
		t.Error("target above 1 must fail")
	}
}

func TestPublicAPIBlendPlan(t *testing.T) {
	elems := demoElements()
	plan, err := freshen.BlendPlan(elems, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	age, err := freshen.PerceivedAge(elems, plan.Freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(age, 0) {
		t.Error("blended plan left infinite age")
	}
	if plan.BandwidthUsed > 4.0001 {
		t.Errorf("over budget: %v", plan.BandwidthUsed)
	}
	if _, err := freshen.BlendPlan(elems, 4, -1); err == nil {
		t.Error("negative weight must fail")
	}
}

func TestPublicAPIMinimizeAge(t *testing.T) {
	elems := demoElements()
	agePlan, err := freshen.MinimizeAge(elems, 4)
	if err != nil {
		t.Fatal(err)
	}
	freshPlan, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ageA, err := freshen.PerceivedAge(elems, agePlan.Freqs)
	if err != nil {
		t.Fatal(err)
	}
	ageF, err := freshen.PerceivedAge(elems, freshPlan.Freqs)
	if err != nil {
		t.Fatal(err)
	}
	if !(ageA <= ageF) {
		t.Errorf("age plan's age %v not below freshness plan's %v", ageA, ageF)
	}
	if agePlan.Perceived > freshPlan.Perceived+1e-9 {
		t.Errorf("age plan PF %v above freshness optimum %v", agePlan.Perceived, freshPlan.Perceived)
	}
	if _, err := freshen.MinimizeAge(nil, 1); err == nil {
		t.Error("empty mirror must fail")
	}
}

func TestPublicAPIAdaptiveAndEstimation(t *testing.T) {
	elems := demoElements()
	ap, err := freshen.NewAdaptivePlanner(elems, freshen.PlanConfig{Bandwidth: 4}, 0.3, 50)
	if err != nil {
		t.Fatal(err)
	}
	replanned := false
	for i := 0; i < 500 && !replanned; i++ {
		replanned, err = ap.Observe(3)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !replanned {
		t.Error("adaptive planner never replanned under a full interest flip")
	}

	history := []freshen.Poll{
		{Elapsed: 1, Changed: true},
		{Elapsed: 1, Changed: false},
		{Elapsed: 1, Changed: true},
		{Elapsed: 1, Changed: false},
	}
	rate, err := freshen.EstimateChangeRate(history)
	if err != nil {
		t.Fatal(err)
	}
	if !(rate > 0) {
		t.Errorf("estimated rate %v", rate)
	}
}
