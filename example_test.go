package freshen_test

import (
	"fmt"

	"freshen"
)

// ExampleMakePlan plans a two-element mirror and prints the optimal
// refresh frequencies.
func ExampleMakePlan() {
	elems := []freshen.Element{
		{ID: 0, Lambda: 4, AccessProb: 0.8, Size: 1}, // hot, volatile
		{ID: 1, Lambda: 4, AccessProb: 0.2, Size: 1}, // cold, volatile
	}
	plan, err := freshen.MakePlan(elems, freshen.PlanConfig{Bandwidth: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// With this budget the hot element's marginal value stays above
	// the cold element's peak value, so it takes the whole budget.
	fmt.Printf("hot: %.2f refreshes/period\n", plan.Freqs[0])
	fmt.Printf("cold: %.2f refreshes/period\n", plan.Freqs[1])
	fmt.Printf("budget used: %.1f\n", plan.BandwidthUsed)
	// Output:
	// hot: 4.00 refreshes/period
	// cold: 0.00 refreshes/period
	// budget used: 4.0
}

// ExampleAggregateProfiles combines two users into a master profile,
// weighting the second user triple.
func ExampleAggregateProfiles() {
	master, err := freshen.AggregateProfiles(3, []freshen.User{
		{Name: "reader", Weight: 1, Interests: map[int]float64{0: 1}},
		{Name: "vip", Weight: 3, Interests: map[int]float64{1: 1}},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.2f %.2f %.2f\n", master[0], master[1], master[2])
	// Output:
	// 0.25 0.75 0.00
}

// ExamplePerceivedFreshness scores a schedule on the paper's metric.
func ExamplePerceivedFreshness() {
	elems := []freshen.Element{
		{ID: 0, Lambda: 2, AccessProb: 1, Size: 1},
	}
	// Refreshing at the change rate yields F = 1 - 1/e ≈ 0.632.
	pf, err := freshen.PerceivedFreshness(nil, elems, []float64{2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.3f\n", pf)
	// Output:
	// 0.632
}

// ExampleEstimateChangeRate recovers a change rate from poll outcomes.
func ExampleEstimateChangeRate() {
	// Ten polls at interval 1; changes detected on half of them:
	// the MLE is -ln(1 - 0.5) ≈ 0.693 changes per interval.
	var history []freshen.Poll
	for i := 0; i < 10; i++ {
		history = append(history, freshen.Poll{Elapsed: 1, Changed: i%2 == 0})
	}
	rate, err := freshen.EstimateChangeRate(history)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.3f\n", rate)
	// Output:
	// 0.693
}
