#!/usr/bin/env bash
# edge_chain.sh — live two-level hierarchy drill.
#
# Stands up a real chain with race-built binaries:
#
#   mocksource origin -> freshend regional -> freshend edge (-upstream-url)
#
# proves the healthy chain end to end (the edge mirrors through the
# regional; the regional answers the edge's conditional polls with 304s;
# topology-status walks both levels), then hard-kills the regional tier
# mid-run and asserts the edge's degraded-mode contract:
#
#   - every object keeps serving 200 from the edge's local copies —
#     zero non-200 responses during the outage
#   - responses carry X-Mirror-Mode: source-degraded and a parseable,
#     positive X-Staleness-Periods that grows while the outage lasts
#   - after the regional restarts, the edge re-converges to full mode
#     and drops the degradation headers
#
# Knobs come from the environment, CI-sized defaults:
#
#   N=32 OUTAGE=6 ./scripts/edge_chain.sh
set -euo pipefail

N=${N:-32}
OUTAGE=${OUTAGE:-6}
PERIOD=${PERIOD:-1s}
MOCK_ADDR=${MOCK_ADDR:-127.0.0.1:18090}
REGIONAL_ADDR=${REGIONAL_ADDR:-127.0.0.1:18091}
EDGE_ADDR=${EDGE_ADDR:-127.0.0.1:18092}

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

echo "edge_chain: building race-instrumented binaries" >&2
go build -race -o "$bin" ./cmd/mocksource ./cmd/freshend ./cmd/freshenctl

wait_ready() {
    local url=$1 tries=150
    until curl -fsS -o /dev/null "$url" 2>/dev/null; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "edge_chain: $url never became ready" >&2
            return 1
        fi
        sleep 0.2
    done
}

"$bin/mocksource" -addr "$MOCK_ADDR" -n "$N" -mean 2 -period 10s &
wait_ready "http://$MOCK_ADDR/catalog"

start_regional() {
    "$bin/freshend" -addr "$REGIONAL_ADDR" -upstream "http://$MOCK_ADDR" \
        -bandwidth "$((N / 4))" -period "$PERIOD" -replan-every 2 &
    regional_pid=$!
}
start_regional
wait_ready "http://$REGIONAL_ADDR/readyz"

# The edge chains below the regional, short breaker so the kill lands
# in drill time, few retries so refresh failures surface fast.
"$bin/freshend" -addr "$EDGE_ADDR" -upstream-url "http://$REGIONAL_ADDR" \
    -bandwidth "$((N / 8))" -period "$PERIOD" -replan-every 2 \
    -upstream-retries 1 -upstream-timeout 2s -breaker-after 2 -breaker-cooldown 1 &
wait_ready "http://$EDGE_ADDR/readyz"

# Healthy chain: the edge serves clean and reports its upstream.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$EDGE_ADDR/object/0")
if [ "$code" != "200" ]; then
    echo "edge_chain: FAIL: healthy edge served $code for object 0" >&2
    exit 1
fi
upstream_url=$(curl -fsS "http://$EDGE_ADDR/status" | jq -r '.upstream_url')
if [ "$upstream_url" != "http://$REGIONAL_ADDR" ]; then
    echo "edge_chain: FAIL: edge reports upstream $upstream_url" >&2
    exit 1
fi

# The regional must answer some of the edge's conditional refresh
# polls with 304 — the bytes the hierarchy exists to save.
deadline=$((SECONDS + 30))
not_modified=0
while [ "$SECONDS" -lt "$deadline" ]; do
    not_modified=$(curl -fsS "http://$REGIONAL_ADDR/status" | jq -r '.source_not_modified')
    [ "$not_modified" -gt 0 ] && break
    sleep 0.5
done
if [ "$not_modified" -le 0 ]; then
    echo "edge_chain: FAIL: regional never answered an edge poll with 304" >&2
    exit 1
fi
echo "edge_chain: healthy chain up, $not_modified conditional polls saved" >&2

levels=$("$bin/freshenctl" topology-status -url "http://$EDGE_ADDR" | tee /dev/stderr | head -1)
if [ "$levels" != "chain: 2 level(s), edge first" ]; then
    echo "edge_chain: FAIL: topology walk saw '$levels'" >&2
    exit 1
fi

# Kill the regional tier, hard.
echo "edge_chain: killing regional tier (pid $regional_pid)" >&2
kill -9 "$regional_pid"

# The edge must flip to source-degraded and keep serving everything.
deadline=$((SECONDS + 30))
mode=""
while [ "$SECONDS" -lt "$deadline" ]; do
    mode=$(curl -fsS "http://$EDGE_ADDR/status" | jq -r '.mode')
    case "$mode" in *source-degraded*) break ;; esac
    sleep 0.5
done
case "$mode" in
*source-degraded*) ;;
*)
    echo "edge_chain: FAIL: edge mode '$mode' after regional kill" >&2
    exit 1
    ;;
esac

headers=$(mktemp)
bad=0
stale_first=""
for id in $(seq 0 $((N - 1))); do
    code=$(curl -s -D "$headers" -o /dev/null -w '%{http_code}' "http://$EDGE_ADDR/object/$id")
    if [ "$code" != "200" ]; then
        echo "edge_chain: object $id served $code during the outage" >&2
        bad=$((bad + 1))
        continue
    fi
    hmode=$(tr -d '\r' <"$headers" | awk -F': ' 'tolower($1)=="x-mirror-mode" {print $2}')
    stale=$(tr -d '\r' <"$headers" | awk -F': ' 'tolower($1)=="x-staleness-periods" {print $2}')
    if [ "$hmode" != "source-degraded" ]; then
        echo "edge_chain: object $id mode header '$hmode'" >&2
        bad=$((bad + 1))
    fi
    # Parseable positive float, the degraded-serving contract.
    if ! awk -v s="$stale" 'BEGIN { exit !(s + 0 > 0) }'; then
        echo "edge_chain: object $id staleness header '$stale'" >&2
        bad=$((bad + 1))
    fi
    [ -z "$stale_first" ] && stale_first=$stale
done
rm -f "$headers"
if [ "$bad" -gt 0 ]; then
    echo "edge_chain: FAIL: $bad bad responses during the regional outage" >&2
    exit 1
fi

# Staleness must grow while the outage lasts.
sleep "$OUTAGE"
stale_later=$(curl -s -D - -o /dev/null "http://$EDGE_ADDR/object/0" |
    tr -d '\r' | awk -F': ' 'tolower($1)=="x-staleness-periods" {print $2}')
if ! awk -v a="$stale_first" -v b="$stale_later" 'BEGIN { exit !(b + 0 > a + 0) }'; then
    echo "edge_chain: FAIL: staleness did not grow ($stale_first -> $stale_later)" >&2
    exit 1
fi
echo "edge_chain: outage ridden out, staleness $stale_first -> $stale_later across all $N objects" >&2

# Regional returns: the edge must re-converge and drop the headers.
start_regional
wait_ready "http://$REGIONAL_ADDR/readyz"
deadline=$((SECONDS + 60))
mode=""
while [ "$SECONDS" -lt "$deadline" ]; do
    mode=$(curl -fsS "http://$EDGE_ADDR/status" | jq -r '.mode')
    [ "$mode" = "full" ] && break
    sleep 0.5
done
if [ "$mode" != "full" ]; then
    echo "edge_chain: FAIL: edge stuck in '$mode' after regional restart; status:" >&2
    curl -fsS "http://$EDGE_ADDR/status" | jq . >&2 || true
    exit 1
fi
hmode=$(curl -s -D - -o /dev/null "http://$EDGE_ADDR/object/0" |
    tr -d '\r' | awk -F': ' 'tolower($1)=="x-mirror-mode" {print $2}')
if [ -n "$hmode" ]; then
    echo "edge_chain: FAIL: recovered edge still sends X-Mirror-Mode: $hmode" >&2
    exit 1
fi

"$bin/freshenctl" topology-status -url "http://$EDGE_ADDR" >&2

echo "edge_chain: PASS ($N objects served 200 through a hard regional kill, staleness grew and cleared, chain re-converged)"
