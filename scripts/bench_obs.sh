#!/usr/bin/env bash
# bench_obs.sh — end-to-end observability benchmark.
#
# Stands up the full live loop (mocksource origin -> freshend mirror ->
# loadgen traffic), scrapes the mirror's /metrics while the traffic
# runs, and writes BENCH_obs.json (PF trajectory, refresh latency
# quantiles, solver solve-time mean), then appends the cold-start
# estimator benchmark under its cold_start key. Knobs come from the
# environment:
#
#   N=200 DURATION=30s OUT=BENCH_obs.json ./scripts/bench_obs.sh
set -euo pipefail

N=${N:-200}
RATE=${RATE:-50}
DURATION=${DURATION:-30s}
OUT=${OUT:-BENCH_obs.json}
MOCK_ADDR=${MOCK_ADDR:-127.0.0.1:18080}
MIRROR_ADDR=${MIRROR_ADDR:-127.0.0.1:18081}

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/mocksource ./cmd/freshend ./cmd/loadgen ./cmd/freshenctl

wait_ready() {
    local url=$1 tries=50
    until curl -fsS -o /dev/null "$url" 2>/dev/null; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "bench_obs: $url never became ready" >&2
            return 1
        fi
        sleep 0.2
    done
}

"$bin/mocksource" -addr "$MOCK_ADDR" -n "$N" -mean 2 -period 10s &
wait_ready "http://$MOCK_ADDR/catalog"

"$bin/freshend" -addr "$MIRROR_ADDR" -upstream "http://$MOCK_ADDR" \
    -bandwidth "$((N / 4))" -period 2s -replan-every 2 \
    -estimator mle -explore-frac 0.2 &
wait_ready "http://$MIRROR_ADDR/readyz"

"$bin/loadgen" -mirror "http://$MIRROR_ADDR" -n "$N" -rate "$RATE" \
    -duration "$DURATION" \
    -metrics-url "http://$MIRROR_ADDR/metrics" -obs-out "$OUT"

# The offline estimator race merges its trajectories under the
# cold_start key; loadgen preserves the section on rewrite, so the
# order of the two steps does not matter.
"$bin/freshenctl" bench-coldstart -out "$OUT"

# The hierarchical budget-split benchmark merges under chain_split:
# the optimized cross-level share against the 50/50 and proportional
# heuristics on the same workload and inner solver.
"$bin/freshenctl" bench-chainsplit -out "$OUT" -n "$N"

echo "bench_obs: wrote $OUT"
