#!/usr/bin/env bash
# bench_serve.sh — closed-loop serving-path benchmark.
#
# Two measurements travel together in BENCH_serve.json:
#
#  1. Micro: `go test -bench` measures allocs/op for the raw
#     Mirror.Access path and the full /object HTTP route (both must be
#     zero — that is the point of the lock-free read path).
#  2. Macro: the full live loop (mocksource origin with injected faults
#     -> freshend mirror with persistence and frequent replans ->
#     loadgen's paced worker pool) ramps Zipf GET traffic through the
#     STAGES targets while refreshes, breaker trips, and snapshots run
#     concurrently, recording per-stage latency quantiles, stalls, and
#     the max sustained RPS. With PAST_KNEE=1 (the default) the ramp
#     keeps going after the first unsustained stage so the report also
#     captures the degradation envelope: shed rate rising while the
#     admitted p99 stays bounded.
#
# Knobs come from the environment:
#
#   N=200 STAGES=500,1000,2000 STAGE_DURATION=5s ./scripts/bench_serve.sh
set -euo pipefail

N=${N:-200}
THETA=${THETA:-1.0}
WORKERS=${WORKERS:-16}
MAX_INFLIGHT=${MAX_INFLIGHT:-8}
STAGES=${STAGES:-500,1000,2000,4000,8000,16000}
STAGE_DURATION=${STAGE_DURATION:-5s}
WARMUP=${WARMUP:-1s}
PAST_KNEE=${PAST_KNEE:-1}
REQUIRE_SHED=${REQUIRE_SHED:-0}
P99_FACTOR=${P99_FACTOR:-5}
BENCHTIME=${BENCHTIME:-1s}
OUT=${OUT:-BENCH_serve.json}
MOCK_ADDR=${MOCK_ADDR:-127.0.0.1:18090}
MIRROR_ADDR=${MIRROR_ADDR:-127.0.0.1:18091}

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
state=$(mktemp -d)
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$bin" "$state"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/mocksource ./cmd/freshend ./cmd/loadgen

echo "bench_serve: measuring serving-path allocs/op" >&2
bench=$(go test -run 'xxx' -bench 'BenchmarkAccess$|BenchmarkObjectHandler$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/httpmirror/)
echo "$bench" >&2
# The -N cpu suffix on benchmark names is omitted when GOMAXPROCS=1,
# hence the two-character match. Missing lines degrade to -1 ("not
# measured") rather than killing the run.
access_allocs=$(echo "$bench" | awk '$1 ~ /^BenchmarkAccess(-[0-9]+)?$/ {print $(NF-1)}')
handler_allocs=$(echo "$bench" | awk '$1 ~ /^BenchmarkObjectHandler(-[0-9]+)?$/ {print $(NF-1)}')
access_allocs=${access_allocs:--1}
handler_allocs=${handler_allocs:--1}

wait_ready() {
    local url=$1 tries=50
    until curl -fsS -o /dev/null "$url" 2>/dev/null; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "bench_serve: $url never became ready" >&2
            return 1
        fi
        sleep 0.2
    done
}

# The origin injects a light fault rate (sparse 500s keep the retry
# path warm without breaking the strict seed fetch) plus a hard outage
# window that opens mid-ramp, so the breaker trips and refreshes are
# skipped while the read path is measured; GETs keep serving from the
# local copies regardless.
"$bin/mocksource" -addr "$MOCK_ADDR" -n "$N" -mean 2 -period 5s \
    -fault-rate 0.05 -outage-after 10s -outage-for 5s &
wait_ready "http://$MOCK_ADDR/catalog"

# Short periods, frequent replans, and a tight snapshot cadence keep
# the write side busy: every stage of the ramp overlaps refresh
# commits (serving-snapshot swaps), plan recomputes, and fsyncing
# snapshots.
"$bin/freshend" -addr "$MIRROR_ADDR" -upstream "http://$MOCK_ADDR" \
    -bandwidth "$((N / 4))" -period 2s -replan-every 2 -upstream-retries 5 \
    -breaker-after 3 -breaker-cooldown 1 -quarantine-after 5 \
    -state-dir "$state" -snapshot-every 2 \
    -max-inflight "$MAX_INFLIGHT" &
wait_ready "http://$MIRROR_ADDR/readyz"

past_knee_flag=""
if [ "$PAST_KNEE" = "1" ]; then
    past_knee_flag="-past-knee"
fi
# shellcheck disable=SC2086
"$bin/loadgen" -mirror "http://$MIRROR_ADDR" -n "$N" -theta "$THETA" \
    -serve-out "$OUT" -workers "$WORKERS" -stages "$STAGES" \
    -stage-duration "$STAGE_DURATION" -warmup "$WARMUP" \
    -status-url "http://$MIRROR_ADDR/status" $past_knee_flag \
    -access-allocs "$access_allocs" -handler-allocs "$handler_allocs"

# Sanity-assert the report so CI smoke fails loudly on a dead serving
# path rather than uploading a benchmark full of zeros.
rps=$(sed -n 's/.*"max_sustained_rps": \([0-9.eE+-]*\),*.*/\1/p' "$OUT")
awk -v r="${rps:-0}" 'BEGIN {
    if (r + 0 <= 0) { print "bench_serve: max_sustained_rps is zero" > "/dev/stderr"; exit 1 }
}'
for key in '"stages"' '"p99_ms"' '"shed_rate"' '"access_allocs_per_op"'; do
    if ! grep -q "$key" "$OUT"; then
        echo "bench_serve: $OUT is missing $key" >&2
        exit 1
    fi
done

# Overload discipline: excess load must come back as 503s (shed), never
# as other errors, and the latency of admitted requests past the knee
# must stay within P99_FACTOR of the in-envelope admitted p99.
errors=$(jq '[.stages[].errors] | add' "$OUT")
if [ "$errors" != "0" ]; then
    echo "bench_serve: $errors non-503 request errors during the ramp" >&2
    exit 1
fi
shed=$(jq '[.stages[].shed] | add' "$OUT")
if [ "$REQUIRE_SHED" = "1" ] && [ "$shed" -le 0 ]; then
    echo "bench_serve: no requests shed; the ramp never crossed the admission cap" >&2
    exit 1
fi
jq -e --argjson factor "$P99_FACTOR" '
    ([.stages[] | select(.sustained) | .admitted_p99_ms] | max // 0) as $envelope |
    ([.stages[] | select(.sustained | not) | .admitted_p99_ms] | max // 0) as $past |
    if $envelope == 0 or $past == 0 or $past <= $envelope * $factor then
        "bench_serve: admitted p99 \($past)ms past the knee vs \($envelope)ms in envelope (factor \($factor))"
    else
        error("admitted p99 \($past)ms past the knee exceeds \($factor)x envelope p99 \($envelope)ms")
    end' "$OUT" >&2

echo "bench_serve: wrote $OUT (max sustained $rps rps, $shed shed, access $access_allocs allocs/op, handler $handler_allocs allocs/op)"
