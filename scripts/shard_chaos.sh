#!/usr/bin/env bash
# shard_chaos.sh — shard-kill + survivor-disk-fault chaos gate for the
# sharded fleet tier.
#
# Stands up the full fleet (freshend -shards=K behind its failover
# router) with race-built binaries, drives a past-knee closed loop
# through the router, and attacks it mid-ramp:
#
#  1. Shard kill: one shard is hard-killed through the chaos admin
#     surface (POST /fleet/kill) while the load keeps coming, then
#     restarted mid-run. The dead shard's keyspace must come back as
#     immediate 503 + Retry-After (counted as shed by loadgen), never
#     as a hang, a mis-route, or a non-503 error; the supervisor must
#     re-level the dead shard's budget slice onto the survivors and
#     give it back after the restart.
#
#  2. Survivor disk fault: a *different* shard's persistence layer is
#     scheduled to fail mid-run (-persist-fault-shard), so the fleet
#     rides a compound failure — one shard dead, one survivor
#     persist-degraded — without the two interacting.
#
# Assertions, in order:
#   - zero non-503 request errors across every stage of the ramp
#   - shed > 0 (the kill window actually turned requests away)
#   - every /status sample with a certified allocation conserves the
#     global budget: Σ shard slices == -bandwidth (1e-6 tolerance)
#   - the killed shard's slice was observed at 0 while it was down
#   - final state: all shards healthy (disk-faulted survivor
#     included), allocation certified, the restarted shard holds
#     budget again, and the fleet's planned PF is back within
#     PF_TOLERANCE of the pre-kill steady state
#
# Knobs come from the environment, CI-sized defaults:
#
#   N=48 SHARDS=3 STAGES=400,20000 ./scripts/shard_chaos.sh
set -euo pipefail

N=${N:-48}
SHARDS=${SHARDS:-3}
KILL_SHARD=${KILL_SHARD:-1}
DISK_SHARD=${DISK_SHARD:-2}
THETA=${THETA:-1.0}
WORKERS=${WORKERS:-16}
MAX_INFLIGHT=${MAX_INFLIGHT:-16}
STAGES=${STAGES:-400,20000}
STAGE_DURATION=${STAGE_DURATION:-8s}
WARMUP=${WARMUP:-1s}
SERVE_FAULT_LATENCY=${SERVE_FAULT_LATENCY:-3ms}
# The drill timeline, seconds after loadgen starts: kill mid-first
# stage, restart while the second (past-knee) stage is still running.
KILL_AT=${KILL_AT:-4}
RESTART_AT=${RESTART_AT:-10}
# Persist ops on the faulted survivor accrue at ~slice/period journal
# appends plus the snapshot cadence; op 60 lands mid-ramp, well after
# readiness.
FAULT_AFTER=${FAULT_AFTER:-60}
FAULT_OPS=${FAULT_OPS:-4}
# The live-binary gate allows looser PF recovery than the race test's
# 1%: loadgen's Zipf traffic keeps reshaping the learned profiles, so
# the planned PF moves with the traffic as well as with the drill.
PF_TOLERANCE=${PF_TOLERANCE:-0.05}
OUT=${OUT:-/tmp/BENCH_shard_chaos.json}
MOCK_ADDR=${MOCK_ADDR:-127.0.0.1:18096}
ROUTER_ADDR=${ROUTER_ADDR:-127.0.0.1:18097}

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
state=$(mktemp -d)
samples=$(mktemp)
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$bin" "$state" "$samples" "$samples.warm"
}
trap cleanup EXIT

echo "shard_chaos: building race-instrumented binaries" >&2
go build -race -o "$bin" ./cmd/mocksource ./cmd/freshend ./cmd/loadgen ./cmd/freshenctl

wait_ready() {
    local url=$1 tries=150
    until curl -fsS -o /dev/null "$url" 2>/dev/null; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "shard_chaos: $url never became ready" >&2
            return 1
        fi
        sleep 0.2
    done
}

"$bin/mocksource" -addr "$MOCK_ADDR" -n "$N" -mean 2 -period 5s &
wait_ready "http://$MOCK_ADDR/catalog"

# The fleet: K shards behind the router, chaos admin mounted, a
# scheduled disk-fault window armed on a shard the kill won't touch.
BANDWIDTH=$((N / 4))
"$bin/freshend" -addr "$ROUTER_ADDR" -upstream "http://$MOCK_ADDR" \
    -shards "$SHARDS" -placement hash -fleet-chaos \
    -bandwidth "$BANDWIDTH" -period 2s -replan-every 2 -upstream-retries 5 \
    -state-dir "$state" -snapshot-every 2 \
    -max-inflight "$MAX_INFLIGHT" \
    -serve-fault-latency "$SERVE_FAULT_LATENCY" \
    -persist-degrade-after 3 \
    -persist-fault-shard "$DISK_SHARD" \
    -persist-fault-after "$FAULT_AFTER" -persist-fault-ops "$FAULT_OPS" \
    -persist-fault-kind eio &
wait_ready "http://$ROUTER_ADDR/readyz"

# Warm-up load, no drill: the planned PF depends on the learned access
# profile, and a cold fleet's uniform profile looks nothing like the
# Zipf steady state the drill runs under. Converge the profiles first,
# let the traffic-windowed allocator weights settle back after the load
# stops, and only then capture the baseline — so the recovery assertion
# compares two settled post-traffic states, not boot against traffic.
"$bin/loadgen" -mirror "http://$ROUTER_ADDR" -n "$N" -theta "$THETA" \
    -serve-out "$samples.warm" -workers "$WORKERS" -stages "${WARM_STAGES:-400}" \
    -stage-duration "${WARM_DURATION:-6s}" -warmup "$WARMUP"
warm_errors=$(jq '[.stages[].errors] | add' "$samples.warm")
if [ "$warm_errors" != "0" ]; then
    echo "shard_chaos: FAIL: $warm_errors non-503 request errors before any fault was injected" >&2
    exit 1
fi
sleep 6

deadline=$((SECONDS + 30))
pf0=""
while [ "$SECONDS" -lt "$deadline" ]; do
    pf0=$(curl -fsS "http://$ROUTER_ADDR/status" |
        jq -r "select(.allocation_ok and .healthy_shards == $SHARDS) | .planned_perceived_freshness") || true
    [ -n "$pf0" ] && break
    sleep 0.5
done
if [ -z "$pf0" ]; then
    echo "shard_chaos: fleet never reached a certified all-healthy allocation" >&2
    exit 1
fi
echo "shard_chaos: baseline planned PF $pf0 across $SHARDS shards, budget $BANDWIDTH" >&2

# Sample /status on a 500ms cadence for the whole run: one compact
# line per sample — allocation_ok, budget, Σ slices, killed shard's
# slice — so conservation is checked at every observed leveling, not
# just at the end.
(
    while :; do
        curl -fsS "http://$ROUTER_ADDR/status" 2>/dev/null |
            jq -c "[.allocation_ok, .budget, ([.shard_status[].budget_slice] | add), .shard_status[$KILL_SHARD].budget_slice]" \
                >>"$samples" 2>/dev/null || true
        sleep 0.5
    done
) &
sampler=$!

# The drill runs beside the load: kill mid-first-stage, restart while
# the past-knee stage is still hammering the router.
(
    sleep "$KILL_AT"
    echo "shard_chaos: killing shard $KILL_SHARD" >&2
    curl -fsS -X POST "http://$ROUTER_ADDR/fleet/kill?shard=$KILL_SHARD" -o /dev/null
    sleep $((RESTART_AT - KILL_AT))
    echo "shard_chaos: restarting shard $KILL_SHARD" >&2
    curl -fsS -X POST "http://$ROUTER_ADDR/fleet/restart?shard=$KILL_SHARD" -o /dev/null
) &

"$bin/loadgen" -mirror "http://$ROUTER_ADDR" -n "$N" -theta "$THETA" \
    -serve-out "$OUT" -workers "$WORKERS" -stages "$STAGES" \
    -stage-duration "$STAGE_DURATION" -warmup "$WARMUP" \
    -past-knee -status-url "http://$ROUTER_ADDR/status"

kill "$sampler" 2>/dev/null || true

echo "shard_chaos: checking $OUT" >&2

errors=$(jq '[.stages[].errors] | add' "$OUT")
if [ "$errors" != "0" ]; then
    echo "shard_chaos: FAIL: $errors non-503 request errors during the drill" >&2
    exit 1
fi

shed=$(jq '[.stages[].shed] | add' "$OUT")
if [ "$shed" -le 0 ]; then
    echo "shard_chaos: FAIL: no requests shed; the kill window never turned traffic away" >&2
    exit 1
fi

# Budget conservation at every sampled certified allocation, and the
# outage itself must have been observed (killed shard's slice at 0).
jq -s -e --argjson budget "$BANDWIDTH" '
    def abs: if . < 0 then -. else . end;
    [.[] | select(.[0])] as $certified |
    ($certified | map(select((.[1] - .[2]) | abs > 1e-6))) as $leaks |
    if ($certified | length) == 0 then error("no certified allocation sampled during the drill")
    elif ($leaks | length) > 0 then error("budget leaked in \($leaks | length) samples, e.g. \($leaks[0])")
    elif ($certified | map(select(.[3] == 0)) | length) == 0 then error("killed shard never observed with a zero slice")
    else "shard_chaos: budget conserved across \($certified | length) sampled allocations, outage observed"
    end' "$samples" >&2

# Recovery: all shards healthy again (the disk-faulted survivor too),
# allocation certified, the restarted shard holds budget, and the
# planned PF is back near the pre-kill steady state.
deadline=$((SECONDS + 45))
recovered=""
while [ "$SECONDS" -lt "$deadline" ]; do
    recovered=$(curl -fsS "http://$ROUTER_ADDR/status" |
        jq -r --argjson pf0 "$pf0" --argjson tol "$PF_TOLERANCE" "
            def abs: if . < 0 then -. else . end;
            select(.allocation_ok
                and .healthy_shards == $SHARDS
                and .shard_status[$KILL_SHARD].budget_slice > 0
                and .shard_status[$DISK_SHARD].healthy
                and (((.planned_perceived_freshness - \$pf0) / \$pf0) | abs) <= \$tol) |
            .planned_perceived_freshness") || true
    [ -n "$recovered" ] && break
    sleep 1
done
if [ -z "$recovered" ]; then
    echo "shard_chaos: FAIL: fleet did not recover to the pre-kill steady state; final status:" >&2
    curl -fsS "http://$ROUTER_ADDR/status" | jq . >&2 || true
    exit 1
fi

"$bin/freshenctl" fleet-status -url "http://$ROUTER_ADDR" >&2

echo "shard_chaos: PASS (shed $shed requests, zero non-503 errors, budget conserved, PF $pf0 -> $recovered)"
