#!/usr/bin/env bash
# overload_chaos.sh — overload shedding + disk-fault chaos gate.
#
# Stands up the full live loop with race-built binaries, then attacks
# it from two directions at once:
#
#  1. Overload: loadgen drives a closed-loop worker pool far past the
#     mirror's admission cap (-max-inflight), with -past-knee so the
#     ramp keeps going after the first unsustained stage. The excess
#     must come back as immediate 503s (shed), never as queueing
#     collapse or non-503 errors, and the latency of *admitted*
#     requests must stay bounded.
#
#  2. Disk faults: freshend runs with -persist-fault-after so its
#     persistence layer starts failing mid-run (EIO on journal appends
#     and snapshot commits). The mirror must enter persist-degraded
#     (read-only durability: serving continues, journaling stops,
#     snapshots back off), keep serving 200s throughout, and return to
#     full mode once the fault window passes — proven by a successful
#     snapshot fsync after the heal.
#
# Assertions, in order:
#   - zero non-503 request errors across every stage of the ramp
#   - shed > 0 (the overload actually engaged admission control)
#   - max admitted p99 <= P99_FACTOR x in-envelope p99 (floored at
#     P99_FLOOR_MS for race-built jitter)
#   - persist-degraded was observed mid-run (the fault window bit)
#   - final mode is full with zero consecutive persist failures and
#     at least one committed snapshot (durability recovered)
#
# Knobs come from the environment, CI-sized defaults:
#
#   N=64 STAGES=500,20000 ./scripts/overload_chaos.sh
set -euo pipefail

N=${N:-64}
THETA=${THETA:-1.0}
WORKERS=${WORKERS:-32}
MAX_INFLIGHT=${MAX_INFLIGHT:-16}
STAGES=${STAGES:-400,20000}
STAGE_DURATION=${STAGE_DURATION:-8s}
WARMUP=${WARMUP:-1s}
SERVE_FAULT_LATENCY=${SERVE_FAULT_LATENCY:-5ms}
SUSTAIN_FRAC=${SUSTAIN_FRAC:-0.85}
P99_FACTOR=${P99_FACTOR:-5}
P99_FLOOR_MS=${P99_FLOOR_MS:-250}
# Persist ops accrue at ~bandwidth/period (journal appends) plus the
# snapshot cadence; op 90 lands a few seconds into the first ramp
# stage, so the disk dies mid-run, after readiness (which needs the
# first snapshot to commit) and while the sampler is watching.
FAULT_AFTER=${FAULT_AFTER:-90}
FAULT_OPS=${FAULT_OPS:-4}
OUT=${OUT:-/tmp/BENCH_chaos.json}
MOCK_ADDR=${MOCK_ADDR:-127.0.0.1:18094}
MIRROR_ADDR=${MIRROR_ADDR:-127.0.0.1:18095}

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
state=$(mktemp -d)
modelog=$(mktemp)
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$bin" "$state" "$modelog"
}
trap cleanup EXIT

echo "overload_chaos: building race-instrumented binaries" >&2
go build -race -o "$bin" ./cmd/mocksource ./cmd/freshend ./cmd/loadgen

wait_ready() {
    local url=$1 tries=100
    until curl -fsS -o /dev/null "$url" 2>/dev/null; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "overload_chaos: $url never became ready" >&2
            return 1
        fi
        sleep 0.2
    done
}

# A clean origin: this gate is about the mirror's own failure modes
# (admission control and its state disk), not upstream faults.
"$bin/mocksource" -addr "$MOCK_ADDR" -n "$N" -mean 2 -period 5s &
wait_ready "http://$MOCK_ADDR/catalog"

# Tight admission cap so the 32-worker closed loop genuinely overloads
# admission control, plus a scheduled disk-fault window: persist ops
# FAULT_AFTER..FAULT_AFTER+FAULT_OPS-1 fail with EIO. Three consecutive
# failures trip persist-degraded; the backed-off snapshot probes then
# burn through the window and the first post-window fsync heals it.
# The serve-fault latency slows the (sub-microsecond) admitted read
# section so the inflight cap is actually reachable: capacity becomes
# MAX_INFLIGHT / SERVE_FAULT_LATENCY requests per second, and the
# second ramp stage drives far past it.
"$bin/freshend" -addr "$MIRROR_ADDR" -upstream "http://$MOCK_ADDR" \
    -bandwidth "$((N / 4))" -period 2s -replan-every 2 -upstream-retries 5 \
    -state-dir "$state" -snapshot-every 2 \
    -max-inflight "$MAX_INFLIGHT" \
    -serve-fault-latency "$SERVE_FAULT_LATENCY" \
    -persist-degrade-after 3 \
    -persist-fault-after "$FAULT_AFTER" -persist-fault-ops "$FAULT_OPS" \
    -persist-fault-kind eio &
wait_ready "http://$MIRROR_ADDR/readyz"

# Sample /status on a 500ms cadence for the whole run so the
# persist-degraded episode is observed even though the final state has
# healed back to full.
(
    while :; do
        curl -fsS "http://$MIRROR_ADDR/status" 2>/dev/null |
            jq -r '.mode' >>"$modelog" 2>/dev/null || true
        sleep 0.5
    done
) &
sampler=$!

# The loosened sustain fraction reflects what this gate is for: the
# first stage only has to land inside the envelope despite race-build
# jitter; the precise knee is bench_serve.sh's job.
"$bin/loadgen" -mirror "http://$MIRROR_ADDR" -n "$N" -theta "$THETA" \
    -serve-out "$OUT" -workers "$WORKERS" -stages "$STAGES" \
    -stage-duration "$STAGE_DURATION" -warmup "$WARMUP" \
    -sustain-frac "$SUSTAIN_FRAC" \
    -past-knee -status-url "http://$MIRROR_ADDR/status"

kill "$sampler" 2>/dev/null || true

# Give the backed-off snapshot probes time to burn through the fault
# window and heal, then take the final status.
deadline=$((SECONDS + 30))
final_mode=""
while [ "$SECONDS" -lt "$deadline" ]; do
    final_mode=$(curl -fsS "http://$MIRROR_ADDR/status" | jq -r '.mode')
    [ "$final_mode" = "full" ] && break
    sleep 1
done
status=$(curl -fsS "http://$MIRROR_ADDR/status")

echo "overload_chaos: checking $OUT" >&2

errors=$(jq '[.stages[].errors] | add' "$OUT")
if [ "$errors" != "0" ]; then
    echo "overload_chaos: FAIL: $errors non-503 request errors during the ramp" >&2
    exit 1
fi

shed=$(jq '[.stages[].shed] | add' "$OUT")
if [ "$shed" -le 0 ]; then
    echo "overload_chaos: FAIL: no requests shed; the overload never engaged admission control" >&2
    exit 1
fi

# Bounded admitted tail: the worst admitted p99 across the whole ramp
# (including past-knee stages) must stay within P99_FACTOR of the worst
# in-envelope (sustained-stage) p99, floored for race-built jitter.
jq -e --argjson factor "$P99_FACTOR" --argjson floor "$P99_FLOOR_MS" '
    ([.stages[] | select(.sustained) | .admitted_p99_ms] | max // 0) as $envelope |
    ([.stages[].admitted_p99_ms] | max) as $worst |
    ($envelope * $factor | if . > $floor then . else $floor end) as $bound |
    if $worst <= $bound then
        "overload_chaos: admitted p99 \($worst)ms within bound \($bound)ms (envelope \($envelope)ms)"
    else
        error("admitted p99 \($worst)ms exceeds bound \($bound)ms (envelope \($envelope)ms)")
    end' "$OUT" >&2

if ! grep -q 'persist-degraded' "$modelog"; then
    echo "overload_chaos: FAIL: persist-degraded never observed; the disk-fault window did not bite" >&2
    echo "overload_chaos: sampled modes: $(sort -u "$modelog" | tr '\n' ' ')" >&2
    exit 1
fi

echo "$status" | jq -e '
    if .mode != "full" then error("final mode \(.mode), want full")
    elif .consecutive_persist_failures != 0 then error("\(.consecutive_persist_failures) consecutive persist failures after heal")
    elif .snapshots <= 0 then error("no snapshot committed; durability never recovered")
    elif .mode_transitions < 2 then error("only \(.mode_transitions) mode transitions; expected enter+leave persist-degraded")
    else "overload_chaos: recovered to full after \(.mode_transitions) transitions, \(.snapshots) snapshots, \(.journal_records_skipped) journal records skipped while degraded"
    end' >&2

echo "overload_chaos: PASS (shed $shed requests, zero non-503 errors, persist-degraded entered and healed)"
