module freshen

go 1.22
