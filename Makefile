GO ?= go

.PHONY: all build vet test race ci bench-solver bench clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The solver's worker pool and the clustering code are the two places
# goroutines share buffers; run them under the race detector.
race:
	$(GO) test -race ./internal/solver/... ./internal/cluster/...

ci: build vet test race

# Engine-vs-reference timings; writes BENCH_solver.json.
bench-solver:
	$(GO) run ./cmd/freshenctl bench-solver

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/solver/

clean:
	$(GO) clean ./...
