GO ?= go

.PHONY: all build vet test test-short race cover fuzz-smoke restart-chaos ci bench-solver bench clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fast feedback loop: slow experiment/simulation sweeps skip themselves
# under -short; CI runs the full suite.
test-short:
	$(GO) test -short ./...

# Total statement coverage with the same floor CI enforces.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# 30s per fuzz target: replays the checked-in corpus (regressions fail
# immediately) plus a short exploration burst. One -fuzz pattern per
# go test invocation, hence one run per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzWaterFill$$' -fuzztime 30s ./internal/solver/
	$(GO) test -run '^$$' -fuzz '^FuzzBandwidthForTarget$$' -fuzztime 30s ./internal/solver/
	$(GO) test -run '^$$' -fuzz '^FuzzEstimator$$' -fuzztime 30s ./internal/estimate/
	$(GO) test -run '^$$' -fuzz '^FuzzHTTPHandler$$' -fuzztime 30s ./internal/httpmirror/
	$(GO) test -run '^$$' -fuzz '^FuzzRecoverSnapshot$$' -fuzztime 30s ./internal/persist/
	$(GO) test -run '^$$' -fuzz '^FuzzReplayJournal$$' -fuzztime 30s ./internal/persist/

# The crash-recovery suite under the race detector: kill-and-restart
# chaos, shutdown persistence ordering, and the persistence layer.
restart-chaos:
	$(GO) test -race -count=1 -run 'TestKillRestartRecovery|TestMirrorSnapshotAndRecover|TestRecovery' ./internal/httpmirror/
	$(GO) test -race -count=1 -run 'TestDaemonShutdownPersistsState' ./cmd/freshend/
	$(GO) test -race -count=1 ./internal/persist/

# The solver's worker pool and the clustering code are the two places
# goroutines share buffers; run them under the race detector.
race:
	$(GO) test -race ./internal/solver/... ./internal/cluster/...

ci: build vet test race

# Engine-vs-reference timings; writes BENCH_solver.json.
bench-solver:
	$(GO) run ./cmd/freshenctl bench-solver

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/solver/

clean:
	$(GO) clean ./...
