GO ?= go

.PHONY: all build fmt vet test test-short race cover fuzz-smoke restart-chaos overload-chaos shard-chaos edge-chain metrics-contract estimator-convergence ci bench-solver bench-obs bench-serve bench-all bench clean

all: ci

build:
	$(GO) build ./...

# Fails if any file is not gofmt-clean, listing the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test and subtest order every run, so hidden
# inter-test state dependencies fail here instead of in a flaky CI lane.
test:
	$(GO) test -shuffle=on ./...

# Fast feedback loop: slow experiment/simulation sweeps skip themselves
# under -short; CI runs the full suite.
test-short:
	$(GO) test -short ./...

# Total statement coverage with the same floor CI enforces.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# 30s per fuzz target: replays the checked-in corpus (regressions fail
# immediately) plus a short exploration burst. One -fuzz pattern per
# go test invocation, hence one run per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzWaterFill$$' -fuzztime 30s ./internal/solver/
	$(GO) test -run '^$$' -fuzz '^FuzzBandwidthForTarget$$' -fuzztime 30s ./internal/solver/
	$(GO) test -run '^$$' -fuzz '^FuzzEstimator$$' -fuzztime 30s ./internal/estimate/
	$(GO) test -run '^$$' -fuzz '^FuzzOnlineEstimators$$' -fuzztime 30s ./internal/estimate/
	$(GO) test -run '^$$' -fuzz '^FuzzExploreAllocation$$' -fuzztime 30s ./internal/schedule/
	$(GO) test -run '^$$' -fuzz '^FuzzHTTPHandler$$' -fuzztime 30s ./internal/httpmirror/
	$(GO) test -run '^$$' -fuzz '^FuzzRecoverSnapshot$$' -fuzztime 30s ./internal/persist/
	$(GO) test -run '^$$' -fuzz '^FuzzReplayJournal$$' -fuzztime 30s ./internal/persist/
	$(GO) test -run '^$$' -fuzz '^FuzzModeMachine$$' -fuzztime 30s ./internal/resilience/
	$(GO) test -run '^$$' -fuzz '^FuzzChainFreshness$$' -fuzztime 30s ./internal/freshness/

# The crash-recovery suite under the race detector: kill-and-restart
# chaos, shutdown persistence ordering, and the persistence layer.
restart-chaos:
	$(GO) test -race -count=1 -run 'TestKillRestartRecovery|TestMirrorSnapshotAndRecover|TestRecovery' ./internal/httpmirror/
	$(GO) test -race -count=1 -run 'TestDaemonShutdownPersistsState|TestMetricsAcrossRestart' ./cmd/freshend/
	$(GO) test -race -count=1 ./internal/persist/

# Overload + disk-fault chaos gate: race-built live loop driven far
# past the admission cap while a scheduled disk-fault window forces
# persist-degraded; asserts zero non-503 errors, bounded admitted p99,
# and recovery to full mode (see scripts/overload_chaos.sh). The unit-
# level halves of the same story run under the race detector first.
overload-chaos:
	$(GO) test -race -count=1 -run 'TestOverloadShedding|TestSourceDegradedHeaders|TestDiskDiesMidRun|TestKillRestartInPersistDegraded|TestReadyzRetryAfter' ./internal/httpmirror/
	$(GO) test -race -count=1 ./internal/resilience/
	./scripts/overload_chaos.sh

# Shard-kill chaos gate for the fleet tier: the whole internal/fleet
# suite under the race detector first — placement, allocator
# conservation/certificates, router failover, the in-process kill-and-
# restart drill (TestShardKillChaos) — then the race-built live loop:
# loadgen driven past the knee through the router while a shard is
# hard-killed and restarted mid-ramp and a survivor's state disk fails
# (see scripts/shard_chaos.sh).
shard-chaos:
	$(GO) test -race -count=1 ./internal/fleet/
	./scripts/shard_chaos.sh

# Hierarchical-topology gate: the hierarchy package under the race
# detector (the MirrorSource observer's atomics run under concurrent
# refreshes), the chain closed form's sim cross-validation, then the
# live two-level drill — origin -> regional freshend -> edge freshend,
# regional hard-killed and restarted mid-run (see scripts/edge_chain.sh).
edge-chain:
	$(GO) test -race -count=1 ./internal/hierarchy/
	$(GO) test -race -count=1 -run 'TestChain|TestRunChain|TestCrossValid' ./internal/freshness/ ./internal/sim/ ./internal/testkit/
	$(GO) test -race -count=1 -run 'TestDaemonEdgeChain' ./cmd/freshend/
	./scripts/edge_chain.sh

# The estimator-convergence gate under the race detector: the
# ground-truth cross-validator (censoring-aware estimators strictly
# beat the naive tracker at every catalog scale), the cold-start
# closed-loop race (MLE+explore reaches 99% of the converged plan;
# naive never does), the explore-budget property tests, and the
# restart-continuity tests for online estimator state.
estimator-convergence:
	$(GO) test -race -count=1 ./internal/estimate/
	$(GO) test -race -count=1 -run 'TestEstimator' ./internal/testkit/
	$(GO) test -race -count=1 -run 'TestColdStart' ./internal/experiment/
	$(GO) test -race -count=1 -run 'TestExplore|TestAllocateExplore' ./internal/schedule/
	$(GO) test -race -count=1 -run 'TestMirrorExplore|TestOnlineEstimatorRestart' ./internal/httpmirror/

# The exposition schema golden test and the live-scrape integration
# tests, under the race detector (GaugeFunc closures scrape under the
# mirror lock while the refresh loop runs).
metrics-contract:
	$(GO) test -race -count=1 -run 'TestMetricsContract|TestMetricsEndToEnd|TestDebugListener' ./cmd/freshend/
	$(GO) test -race -count=1 ./internal/obs/

# Shared-state hot spots under the race detector: the solver's worker
# pool, the clustering buffers, the mirror's lock-free serving path
# (the snapshot-swap stress test lives in internal/httpmirror), and
# the admission limiter / mode machine atomics.
race:
	$(GO) test -race ./internal/solver/... ./internal/cluster/... ./internal/httpmirror/... ./internal/resilience/...

ci: build fmt vet test race

# Engine-vs-reference timings; writes BENCH_solver.json.
bench-solver:
	$(GO) run ./cmd/freshenctl bench-solver

# Live-loop observability benchmark; stands up mocksource + freshend,
# drives loadgen traffic, scrapes /metrics, writes BENCH_obs.json.
bench-obs:
	./scripts/bench_obs.sh

# Closed-loop serving benchmark; measures serving-path allocs/op, then
# ramps paced Zipf GET traffic against a live mirror while refreshes,
# breaker trips, and snapshots run concurrently. Writes BENCH_serve.json.
bench-serve:
	./scripts/bench_serve.sh

# The full reproducible perf trajectory in one command, followed by
# the overload/disk-fault chaos gate that proves the envelope the
# serve benchmark records is actually enforced.
bench-all: bench-solver bench-obs bench-serve overload-chaos

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/solver/
	$(GO) test -run xxx -bench . -benchmem ./internal/httpmirror/

clean:
	$(GO) clean ./...
