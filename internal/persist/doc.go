// Package persist is the mirror's crash-safe state subsystem. It
// combines two durable artifacts in one state directory:
//
//   - A snapshot: a single versioned, CRC-checksummed file holding the
//     full learned state of a mirror (estimator poll histories, the
//     water-filled schedule, breaker and quarantine state, element
//     metadata, lifetime counters). Snapshots are written atomically —
//     temp file, fsync, rename, directory fsync — so a crash at any
//     instant leaves either the previous snapshot or the new one,
//     never a torn hybrid.
//
//   - A write-ahead journal: an append-only log of per-refresh
//     observations made since the last snapshot. Every record is
//     length-prefixed and CRC-checksummed and fsynced on append, so a
//     refresh outcome survives a crash the moment Append returns. A
//     torn or corrupted tail truncates recovery at the first bad
//     record instead of failing it: everything before the tear is
//     kept, everything after is discarded.
//
// Records carry monotone sequence numbers and each snapshot embeds the
// last sequence it folded in, so a crash between "snapshot renamed"
// and "journal reset" never double-applies an observation: recovery
// replays only records with Seq > Snapshot.LastSeq.
//
// Corruption is never loaded silently: a snapshot whose checksum,
// encoding, or semantic validation fails is discarded (with the reason
// surfaced to the caller) and recovery degrades to journal-only or
// cold start — the estimator's correctness is preserved at the cost of
// history, never the other way around.
package persist
