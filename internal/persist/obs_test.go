package persist

import (
	"strings"
	"testing"

	"freshen/internal/obs"
)

// TestStoreInstrument pins the persistence metric surface: appends
// and commits must produce latency observations and byte counts under
// the exact series names the daemon exports.
func TestStoreInstrument(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := obs.NewRegistry()
	s.Instrument(reg)

	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Kind: KindRefresh, Element: i, At: float64(i + 1), Elapsed: 1, Changed: true, Version: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Commit(testSnapshot(3)); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	e, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		series string
		min    float64
	}{
		{"freshen_persist_journal_records_total", 3},
		{"freshen_persist_journal_bytes_total", 1},
		{"freshen_persist_journal_append_seconds_count", 3},
		{"freshen_persist_snapshots_total", 1},
		{"freshen_persist_snapshot_bytes_total", 1},
		{"freshen_persist_snapshot_seconds_count", 1},
	}
	for _, c := range checks {
		if v, ok := e.Value(c.series); !ok || v < c.min {
			t.Errorf("%s = %v, %v; want >= %v", c.series, v, ok, c.min)
		}
	}
	if v, ok := e.Value("freshen_persist_errors_total"); !ok || v != 0 {
		t.Errorf("freshen_persist_errors_total = %v, %v; want 0", v, ok)
	}

	// Force a real write failure by breaking the journal handle: the
	// failed append must land in the error counter. (Instrumenting a
	// second store against the same registry reuses the same series —
	// the registry is get-or-create.)
	s2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Instrument(reg)
	s2.journal.Close() // the next fsynced append must fail
	if err := s2.Append(Record{Kind: KindRefresh, Element: 0, At: 1, Elapsed: 1}); err == nil {
		t.Fatal("append on a broken journal succeeded")
	}
	b.Reset()
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	e2, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e2.Value("freshen_persist_errors_total"); !ok || v < 1 {
		t.Errorf("freshen_persist_errors_total = %v, %v; want >= 1 after a failed append", v, ok)
	}
}
