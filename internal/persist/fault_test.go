package persist

import (
	"errors"
	"testing"
	"time"
)

func TestFaultStoreScheduledWindow(t *testing.T) {
	inner, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	// Ops 3 and 4 fail, everything else passes.
	fs := NewFaultStore(inner, FaultPlan{FailFrom: 3, FailOps: 2})

	for i := 0; i < 2; i++ {
		if err := fs.Append(Record{Kind: KindRefresh, At: float64(i + 1), Elapsed: 1}); err != nil {
			t.Fatalf("op %d before the window failed: %v", i+1, err)
		}
	}
	if err := fs.Append(Record{Kind: KindRefresh, At: 3, Elapsed: 1}); !errors.Is(err, ErrDiskIO) {
		t.Fatalf("op 3 error = %v, want EIO", err)
	}
	if err := fs.Sync(); !errors.Is(err, ErrDiskIO) {
		t.Fatalf("op 4 (sync) error = %v, want EIO", err)
	}
	if err := fs.Commit(testSnapshot(5)); err != nil {
		t.Fatalf("op 5 past the window failed: %v", err)
	}
	if got := fs.Injected(); got != 2 {
		t.Errorf("injected = %d, want 2", got)
	}
	// The inner store never saw the failed ops: only the two good
	// appends, folded into the snapshot.
	if got := inner.Seq(); got != 2 {
		t.Errorf("inner seq = %d, want 2", got)
	}
}

func TestFaultStoreBreakHeal(t *testing.T) {
	inner, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	fs := NewFaultStore(inner, FaultPlan{Err: ErrDiskFull})

	if err := fs.Sync(); err != nil {
		t.Fatalf("healthy sync failed: %v", err)
	}
	fs.Break(nil) // nil: the plan's error
	if err := fs.Append(Record{Kind: KindRefresh, At: 1, Elapsed: 1}); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("broken append error = %v, want ENOSPC", err)
	}
	if err := fs.Commit(testSnapshot(1)); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("broken commit error = %v, want ENOSPC", err)
	}
	fs.Heal()
	if err := fs.Append(Record{Kind: KindRefresh, At: 2, Elapsed: 1}); err != nil {
		t.Fatalf("healed append failed: %v", err)
	}
	// Heal also disarms a scheduled window.
	fs2 := NewFaultStore(inner, FaultPlan{FailFrom: 1})
	fs2.Heal()
	if err := fs2.Sync(); err != nil {
		t.Fatalf("healed scheduled window still failing: %v", err)
	}
}

// TestFaultStoreTornAppend proves the torn write is invisible to the
// running store (the next good append overwrites it) but would be
// truncated by recovery if the process died while broken.
func TestFaultStoreTornAppend(t *testing.T) {
	dir := t.TempDir()
	inner, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(inner, FaultPlan{TornAppend: true})

	if err := fs.Append(Record{Kind: KindRefresh, At: 1, Elapsed: 1}); err != nil {
		t.Fatal(err)
	}
	fs.Break(nil)
	if err := fs.Append(Record{Kind: KindRefresh, At: 2, Elapsed: 1}); err == nil {
		t.Fatal("broken append succeeded")
	}
	inner.Close()

	// Crash while broken: recovery must cut the garbage tail and keep
	// the good record.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec := re.Recovery()
	if !rec.JournalTruncated {
		t.Error("torn tail not detected by recovery")
	}
	if len(rec.Records) != 1 || rec.Records[0].At != 1 {
		t.Fatalf("recovered records = %+v, want the single good append", rec.Records)
	}
	if err := re.Append(Record{Kind: KindRefresh, At: 3, Elapsed: 1}); err != nil {
		t.Fatalf("append after torn recovery failed: %v", err)
	}
}

// TestFaultStoreTornAppendOverwritten is the other half: without a
// crash, the running store's next append lands on its own offset and
// the garbage never reaches recovery.
func TestFaultStoreTornAppendOverwritten(t *testing.T) {
	dir := t.TempDir()
	inner, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(inner, FaultPlan{FailFrom: 1, FailOps: 1, TornAppend: true})

	if err := fs.Append(Record{Kind: KindRefresh, At: 1, Elapsed: 1}); err == nil {
		t.Fatal("scheduled fault did not fire")
	}
	if err := fs.Append(Record{Kind: KindRefresh, At: 2, Elapsed: 1}); err != nil {
		t.Fatal(err)
	}
	inner.Close()

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec := re.Recovery()
	if rec.JournalTruncated {
		t.Error("overwritten tear still visible to recovery")
	}
	if len(rec.Records) != 1 || rec.Records[0].At != 2 {
		t.Fatalf("recovered records = %+v, want the single good append", rec.Records)
	}
}

func TestFaultStoreLatency(t *testing.T) {
	inner, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	fs := NewFaultStore(inner, FaultPlan{AppendLatency: 20 * time.Millisecond})

	start := time.Now()
	if err := fs.Append(Record{Kind: KindRefresh, At: 1, Elapsed: 1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("append took %v, want >= 20ms of injected latency", d)
	}
}

func TestStoreSyncProbe(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("healthy sync probe failed: %v", err)
	}
	s.Close()
	if err := s.Sync(); err == nil {
		t.Fatal("sync on a closed store succeeded")
	}
}
