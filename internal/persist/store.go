package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"freshen/internal/obs"
)

const (
	// SnapshotFile is the snapshot's file name inside the state dir.
	SnapshotFile = "snapshot.frsnap"
	// JournalFile is the journal's file name inside the state dir.
	JournalFile = "journal.frwal"
)

// RecoveryResult is what Open salvaged from the state directory.
type RecoveryResult struct {
	// Snapshot is the verified snapshot, or nil when none was usable.
	Snapshot *Snapshot
	// SnapshotErr records why an existing snapshot was discarded
	// (checksum, decoding, or validation failure); nil when the
	// snapshot loaded or none existed.
	SnapshotErr error
	// Records are the journal records to replay, already filtered to
	// Seq > Snapshot.LastSeq and in order.
	Records []Record
	// JournalTruncated reports that the journal had a torn or
	// corrupted tail which was cut back to the last good record.
	JournalTruncated bool
}

// Recovered reports whether any durable state survived.
func (r RecoveryResult) Recovered() bool {
	return r.Snapshot != nil || len(r.Records) > 0
}

// Storer is the durability surface the mirror programs against:
// recovery at boot, fsynced record appends, atomic snapshot commits,
// and a bare fsync used as a disk-health probe. *Store implements it
// directly; FaultStore wraps any Storer-producing *Store to inject
// failures for chaos testing.
type Storer interface {
	Recovery() RecoveryResult
	Append(Record) error
	Commit(*Snapshot) error
	Sync() error
}

var _ Storer = (*Store)(nil)

// Store is a state directory opened for use: the recovered state plus
// an append position in the journal. Methods are safe for concurrent
// use.
type Store struct {
	dir string

	mu       sync.Mutex
	journal  *os.File
	seq      uint64 // last sequence number assigned or seen
	recovery RecoveryResult
	closed   bool
	metrics  *storeMetrics // nil until Instrument
}

// storeMetrics is the store's optional instrumentation: write
// latencies (the fsyncs dominate) and byte volumes for both the
// journal and the snapshot path, plus an error counter.
type storeMetrics struct {
	appendSeconds   *obs.Histogram
	snapshotSeconds *obs.Histogram
	journalBytes    *obs.Counter
	snapshotBytes   *obs.Counter
	appends         *obs.Counter
	snapshots       *obs.Counter
	errors          *obs.Counter
}

// Instrument registers the store's metrics on reg and starts
// recording journal-append and snapshot-commit latencies, byte
// volumes, and write errors. Call once, before the store is shared.
func (s *Store) Instrument(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = &storeMetrics{
		appendSeconds: reg.Histogram("freshen_persist_journal_append_seconds",
			"Latency of one fsynced journal append.", obs.LatencyBuckets()),
		snapshotSeconds: reg.Histogram("freshen_persist_snapshot_seconds",
			"Latency of one atomic snapshot commit (write, fsync, rename, journal reset).", obs.LatencyBuckets()),
		journalBytes: reg.Counter("freshen_persist_journal_bytes_total",
			"Bytes appended to the journal."),
		snapshotBytes: reg.Counter("freshen_persist_snapshot_bytes_total",
			"Bytes written by snapshot commits."),
		appends: reg.Counter("freshen_persist_journal_records_total",
			"Journal records durably appended."),
		snapshots: reg.Counter("freshen_persist_snapshots_total",
			"Snapshots durably committed."),
		errors: reg.Counter("freshen_persist_errors_total",
			"Journal or snapshot writes that failed (state kept in memory)."),
	}
}

// Open opens (creating if needed) a state directory and performs
// recovery: the snapshot is loaded and verified, the journal is walked
// to its last good record and physically truncated there, and the
// sequence counter resumes past everything seen. A corrupt snapshot is
// discarded — never loaded silently-wrong — and recovery degrades to
// journal-only; a corrupt journal tail is truncated, keeping the good
// prefix. Open never fails on corruption, only on I/O errors.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: state dir must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating state dir: %w", err)
	}
	s := &Store{dir: dir}

	// Snapshot: load whole and valid, or record why not.
	snapPath := filepath.Join(dir, SnapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		snap, derr := DecodeSnapshot(data)
		if derr != nil {
			s.recovery.SnapshotErr = derr
		} else {
			s.recovery.Snapshot = snap
			s.seq = snap.LastSeq
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}

	// Journal: walk to the last good record, truncate the tear, and
	// open for appends at the clean end.
	jPath := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(jPath)
	switch {
	case os.IsNotExist(err):
		if err := s.resetJournalLocked(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("persist: reading journal: %w", err)
	default:
		recs, goodLen, clean := DecodeJournal(data)
		if goodLen == 0 {
			// Empty file or unusable header: start the journal over.
			// Nothing after a bad header can be trusted.
			s.recovery.JournalTruncated = !clean
			if err := s.resetJournalLocked(); err != nil {
				return nil, err
			}
		} else {
			s.recovery.JournalTruncated = !clean
			f, err := os.OpenFile(jPath, os.O_RDWR, 0o644)
			if err != nil {
				return nil, fmt.Errorf("persist: opening journal: %w", err)
			}
			if !clean {
				if err := f.Truncate(int64(goodLen)); err != nil {
					f.Close()
					return nil, fmt.Errorf("persist: truncating torn journal: %w", err)
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return nil, fmt.Errorf("persist: syncing truncated journal: %w", err)
				}
			}
			if _, err := f.Seek(int64(goodLen), 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("persist: seeking journal: %w", err)
			}
			s.journal = f
			// Filter to records the snapshot hasn't folded in; a crash
			// between snapshot rename and journal reset leaves them
			// behind, and replaying them would double-count polls.
			for _, r := range recs {
				if r.Seq > s.seq {
					s.recovery.Records = append(s.recovery.Records, r)
				}
			}
			if n := len(recs); n > 0 && recs[n-1].Seq > s.seq {
				s.seq = recs[n-1].Seq
			}
		}
	}
	return s, nil
}

// resetJournalLocked replaces the journal with a fresh, empty,
// fsynced one containing only the magic header.
func (s *Store) resetJournalLocked() error {
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	path := filepath.Join(s.dir, JournalFile)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("persist: creating journal: %w", err)
	}
	if _, err := f.Write(journalMagic); err != nil {
		f.Close()
		return fmt.Errorf("persist: writing journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("persist: syncing journal header: %w", err)
	}
	s.journal = f
	return syncDir(s.dir)
}

// Dir returns the state directory.
func (s *Store) Dir() string { return s.dir }

// Recovery returns what Open salvaged. The records are the caller's to
// replay once; the slice is shared, not copied.
func (s *Store) Recovery() RecoveryResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Append journals one record, assigning its sequence number, and
// fsyncs before returning: once Append returns nil the observation
// survives a crash.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store is closed")
	}
	r.Seq = s.seq + 1
	frame, err := encodeRecord(&r)
	if err != nil {
		s.countErrorLocked()
		return err
	}
	start := time.Now()
	if _, err := s.journal.Write(frame); err != nil {
		s.countErrorLocked()
		return fmt.Errorf("persist: appending record: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		s.countErrorLocked()
		return fmt.Errorf("persist: syncing journal: %w", err)
	}
	if m := s.metrics; m != nil {
		m.appendSeconds.Observe(time.Since(start).Seconds())
		m.journalBytes.Add(float64(len(frame)))
		m.appends.Inc()
	}
	s.seq = r.Seq
	return nil
}

// countErrorLocked bumps the error counter when instrumented.
func (s *Store) countErrorLocked() {
	if m := s.metrics; m != nil {
		m.errors.Inc()
	}
}

// Sync fsyncs the journal without writing anything: a pure disk-health
// probe. A nil return is evidence the device accepts and flushes
// writes — the mirror uses it at boot to decide whether to start in
// persist-degraded mode, and its failure counts like any persist
// failure.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store is closed")
	}
	if err := s.journal.Sync(); err != nil {
		s.countErrorLocked()
		return fmt.Errorf("persist: probing journal sync: %w", err)
	}
	return nil
}

// Seq returns the last assigned sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Commit durably installs a snapshot and resets the journal: the
// snapshot is stamped with the store's current sequence number, written
// atomically, and only then is the journal emptied. A crash between
// the two steps is safe — the leftover records carry sequence numbers
// the snapshot already covers, so recovery skips them.
func (s *Store) Commit(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store is closed")
	}
	snap.LastSeq = s.seq
	start := time.Now()
	size, err := writeSnapshotFile(s.dir, SnapshotFile, snap)
	if err != nil {
		s.countErrorLocked()
		return err
	}
	if err := s.resetJournalLocked(); err != nil {
		s.countErrorLocked()
		return err
	}
	if m := s.metrics; m != nil {
		m.snapshotSeconds.Observe(time.Since(start).Seconds())
		m.snapshotBytes.Add(float64(size))
		m.snapshots.Inc()
	}
	return nil
}

// Close releases the journal handle. It does not flush state: Append
// and Commit are already durable when they return.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}
