package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// Canonical disk faults for injection. Real kernels surface exactly
// these from a dying or full device, so chaos runs exercise the same
// error values production would.
var (
	// ErrDiskIO is a device-level I/O error (EIO).
	ErrDiskIO = error(syscall.EIO)
	// ErrDiskFull is an out-of-space error (ENOSPC).
	ErrDiskFull = error(syscall.ENOSPC)
)

// FaultPlan is a deterministic fault schedule counted in persist
// operations (Append, Commit, and Sync each advance the op counter by
// one). The zero value injects nothing.
type FaultPlan struct {
	// FailFrom is the 1-based op index at which injected failures
	// start; 0 disables the scheduled window.
	FailFrom int
	// FailOps is how many consecutive ops fail from FailFrom on;
	// 0 with FailFrom > 0 means the fault never heals on its own.
	FailOps int
	// Err is the injected error; nil means ErrDiskIO.
	Err error
	// AppendLatency and CommitLatency are added to every corresponding
	// op (failed or not), modelling a device that degrades before it
	// dies. Sync shares CommitLatency.
	AppendLatency time.Duration
	CommitLatency time.Duration
	// TornAppend writes a partial garbage frame to the journal file on
	// the first failed append, simulating a crash mid-write: the tear
	// is only visible to a later Open (the inner store's own file
	// offset overwrites it on the next successful append), exactly like
	// a real torn tail.
	TornAppend bool
}

// FaultStore wraps a *Store and injects faults on a deterministic
// schedule, plus manual Break/Heal control for chaos tests and the
// freshend CLI. It implements Storer; the inner store is never touched
// by a failed op (except the deliberate TornAppend garbage), so its
// durability invariants hold across injected faults. Methods are safe
// for concurrent use.
type FaultStore struct {
	inner *Store

	mu       sync.Mutex
	plan     FaultPlan
	ops      int
	manual   error // non-nil: Break() forced failures until Heal()
	torn     bool  // TornAppend garbage already written
	injected uint64
}

var _ Storer = (*FaultStore)(nil)

// NewFaultStore wraps inner with the given fault schedule.
func NewFaultStore(inner *Store, plan FaultPlan) *FaultStore {
	if plan.Err == nil {
		plan.Err = ErrDiskIO
	}
	return &FaultStore{inner: inner, plan: plan}
}

// Inner returns the wrapped store (tests re-open its directory to
// verify on-disk state).
func (f *FaultStore) Inner() *Store { return f.inner }

// Break forces every subsequent op to fail with err (nil means the
// plan's error) until Heal.
func (f *FaultStore) Break(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = f.plan.Err
	}
	f.manual = err
}

// Heal clears a manual Break and disarms any remaining scheduled
// window: the disk works again.
func (f *FaultStore) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.manual = nil
	f.plan.FailFrom = 0
}

// Injected is the lifetime count of injected failures.
func (f *FaultStore) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// fault advances the op counter and decides this op's fate, returning
// (error to inject, whether a torn append should be written).
func (f *FaultStore) fault(isAppend bool) (error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	err := f.manual
	if err == nil && f.plan.FailFrom > 0 && f.ops >= f.plan.FailFrom &&
		(f.plan.FailOps <= 0 || f.ops < f.plan.FailFrom+f.plan.FailOps) {
		err = f.plan.Err
	}
	if err == nil {
		return nil, false
	}
	f.injected++
	tear := isAppend && f.plan.TornAppend && !f.torn
	if tear {
		f.torn = true
	}
	return err, tear
}

// tearJournal appends a partial garbage frame through a separate
// O_APPEND handle. The inner store's own descriptor keeps its offset,
// so a following successful append overwrites the garbage — the tear
// survives only a crash, which is the scenario it models.
func (f *FaultStore) tearJournal() {
	path := filepath.Join(f.inner.Dir(), JournalFile)
	fd, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return // the disk is "dead"; failing to tear is in character
	}
	defer fd.Close()
	fd.Write([]byte{0x00, 0x00, 0x00}) // truncated length prefix
	fd.Sync()
}

// Recovery passes through to the inner store: recovery happened at
// Open time, before any injection.
func (f *FaultStore) Recovery() RecoveryResult { return f.inner.Recovery() }

// Append injects per the schedule, then delegates.
func (f *FaultStore) Append(r Record) error {
	if d := f.plan.AppendLatency; d > 0 {
		time.Sleep(d)
	}
	if err, tear := f.fault(true); err != nil {
		if tear {
			f.tearJournal()
		}
		return fmt.Errorf("persist: injected append fault: %w", err)
	}
	return f.inner.Append(r)
}

// Commit injects per the schedule, then delegates.
func (f *FaultStore) Commit(snap *Snapshot) error {
	if d := f.plan.CommitLatency; d > 0 {
		time.Sleep(d)
	}
	if err, _ := f.fault(false); err != nil {
		return fmt.Errorf("persist: injected commit fault: %w", err)
	}
	return f.inner.Commit(snap)
}

// Sync injects per the schedule, then delegates: a broken disk fails
// its health probe too.
func (f *FaultStore) Sync() error {
	if d := f.plan.CommitLatency; d > 0 {
		time.Sleep(d)
	}
	if err, _ := f.fault(false); err != nil {
		return fmt.Errorf("persist: injected sync fault: %w", err)
	}
	return f.inner.Sync()
}
