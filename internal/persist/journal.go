package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
)

// journalMagic identifies a journal file and pins its framing version.
var journalMagic = []byte("FRJRNL01")

// RecordKind tags a journal record.
type RecordKind string

const (
	// KindRefresh is a successful refresh: a poll observation plus the
	// version the element advanced to (if it changed).
	KindRefresh RecordKind = "refresh"
	// KindFailure is a failed refresh attempt; it carries no
	// observation (the estimator never sees failures) but replays into
	// the breaker and quarantine counters.
	KindFailure RecordKind = "failure"
)

// Record is one journaled per-refresh outcome.
type Record struct {
	// Seq is the record's monotone sequence number, assigned by the
	// store on append. Recovery replays only Seq > Snapshot.LastSeq.
	Seq uint64 `json:"seq"`
	// Kind is refresh or failure.
	Kind RecordKind `json:"kind"`
	// Element is the element the refresh targeted.
	Element int `json:"element"`
	// At is the period-clock time of the refresh.
	At float64 `json:"at"`
	// Elapsed is the time since the element's previous successful
	// poll; 0 means "no observation" (the element's first poll).
	Elapsed float64 `json:"elapsed,omitempty"`
	// Changed reports whether the poll detected a change.
	Changed bool `json:"changed,omitempty"`
	// Version is the upstream version the element advanced to when
	// Changed (refresh records only).
	Version int `json:"version,omitempty"`
}

// Validate rejects records that decode but describe impossible
// observations; replay treats an invalid record as corruption.
func (r *Record) Validate() error {
	if r.Kind != KindRefresh && r.Kind != KindFailure {
		return fmt.Errorf("persist: unknown record kind %q", r.Kind)
	}
	if r.Element < 0 {
		return fmt.Errorf("persist: negative element %d", r.Element)
	}
	if !finite(r.At) || r.At < 0 {
		return fmt.Errorf("persist: invalid record time %v", r.At)
	}
	if !finite(r.Elapsed) || r.Elapsed < 0 || math.IsInf(r.Elapsed, 0) {
		return fmt.Errorf("persist: invalid elapsed %v", r.Elapsed)
	}
	return nil
}

// encodeRecord frames one record: payload length, CRC-32C, payload.
func encodeRecord(r *Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding record: %w", err)
	}
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	copy(out[8:], payload)
	return out, nil
}

// maxRecordSize bounds one record's payload; a length prefix beyond it
// is treated as corruption rather than an allocation request.
const maxRecordSize = 16 << 20

// DecodeJournal walks a journal image record by record. It returns the
// records that decoded and verified cleanly, the byte length of that
// good prefix, and whether the image was clean (no trailing garbage).
// Decoding never fails: a torn or corrupted record ends the walk at
// the last good byte — crash recovery keeps the prefix and truncates
// the rest.
func DecodeJournal(data []byte) (recs []Record, goodLen int, clean bool) {
	if len(data) == 0 {
		// An empty file: journal creation crashed before the header
		// landed. Nothing was written, so nothing was lost.
		return nil, 0, true
	}
	if len(data) < len(journalMagic) || !bytes.Equal(data[:len(journalMagic)], journalMagic) {
		// No usable header: nothing salvageable.
		return nil, 0, false
	}
	off := len(journalMagic)
	for {
		if off == len(data) {
			return recs, off, true
		}
		if len(data)-off < 8 {
			return recs, off, false // torn header
		}
		size := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if size > maxRecordSize || len(data)-off-8 < int(size) {
			return recs, off, false // torn or absurd payload
		}
		payload := data[off+8 : off+8+int(size)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, false // bit rot or torn write
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return recs, off, false
		}
		if err := r.Validate(); err != nil {
			return recs, off, false
		}
		// Sequence numbers must be strictly increasing; a regression
		// means the framing resynchronized on garbage.
		if n := len(recs); n > 0 && r.Seq <= recs[n-1].Seq {
			return recs, off, false
		}
		recs = append(recs, r)
		off += 8 + int(size)
	}
}
