package persist

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzRecoverSnapshot drives arbitrary bytes through the full
// snapshot recovery path (decode + Store.Open). Properties: never
// panic; never load a snapshot that doesn't survive re-encoding to
// identical bytes (i.e. anything the checksum or validator should
// have caught is rejected, and what loads is exactly what was
// stored).
func FuzzRecoverSnapshot(f *testing.F) {
	if valid, err := EncodeSnapshot(testSnapshot(2.5)); err == nil {
		f.Add(valid)
		// A flipped payload byte and a torn tail, as seed corruption.
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)-3] ^= 0x01
		f.Add(flipped)
		f.Add(valid[:len(valid)-7])
	}
	f.Add([]byte{})
	f.Add([]byte("FRSNAP01 not a real snapshot"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			if snap != nil {
				t.Fatal("decode returned a snapshot alongside an error")
			}
		} else {
			// Whatever loaded must be internally valid and re-encode
			// to bytes that decode to the same state — no silent
			// mutation anywhere in the path.
			if verr := snap.Validate(); verr != nil {
				t.Fatalf("loaded snapshot fails validation: %v", verr)
			}
			if _, rerr := EncodeSnapshot(snap); rerr != nil {
				t.Fatalf("loaded snapshot does not re-encode: %v", rerr)
			}
		}

		// The store-level path must tolerate the same bytes on disk.
		dir := t.TempDir()
		if werr := os.WriteFile(filepath.Join(dir, SnapshotFile), data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		s, oerr := Open(dir)
		if oerr != nil {
			t.Fatalf("Open failed on corrupt snapshot: %v", oerr)
		}
		rec := s.Recovery()
		if err != nil && rec.Snapshot != nil {
			t.Fatal("store loaded a snapshot the decoder rejects")
		}
		if err == nil && rec.Snapshot == nil {
			t.Fatal("store dropped a valid snapshot")
		}
		s.Close()
	})
}

// FuzzReplayJournal drives arbitrary bytes through journal recovery.
// Properties: never panic; every replayed record validates; the good
// prefix really is a clean journal (re-reading the truncated file
// yields the same records, now clean); appends after recovery work.
func FuzzReplayJournal(f *testing.F) {
	// Seed: a well-formed journal of three records, then mutations.
	dir := f.TempDir()
	s, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Kind: KindRefresh, Element: i, At: float64(i) + 0.5, Elapsed: 0.5, Changed: i%2 == 0}); err != nil {
			f.Fatal(err)
		}
	}
	s.Close()
	valid, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(journalMagic)+12] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("FRJRNL01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodLen, clean := DecodeJournal(data)
		if goodLen > len(data) {
			t.Fatalf("good prefix %d exceeds input %d", goodLen, len(data))
		}
		for i, r := range recs {
			if err := r.Validate(); err != nil {
				t.Fatalf("replayed record %d invalid: %v", i, err)
			}
			if i > 0 && r.Seq <= recs[i-1].Seq {
				t.Fatalf("sequence regression at %d", i)
			}
		}
		// The good prefix must re-read as a clean journal with the
		// same records — truncation converges in one step.
		if goodLen > 0 {
			again, againLen, againClean := DecodeJournal(data[:goodLen])
			if !againClean || againLen != goodLen || len(again) != len(recs) {
				t.Fatalf("truncated prefix not clean: clean=%v len=%d records=%d (want %d)", againClean, againLen, len(again), len(recs))
			}
		}

		// Store-level recovery over the same bytes: must open, report
		// the same records, and accept new appends.
		dir := t.TempDir()
		if werr := os.WriteFile(filepath.Join(dir, JournalFile), data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		st, oerr := Open(dir)
		if oerr != nil {
			t.Fatalf("Open failed on corrupt journal: %v", oerr)
		}
		defer st.Close()
		if got := st.Recovery().Records; len(got) != len(recs) {
			t.Fatalf("store recovered %d records, decoder %d", len(got), len(recs))
		}
		if clean != !st.Recovery().JournalTruncated {
			t.Fatalf("clean=%v but truncated=%v", clean, st.Recovery().JournalTruncated)
		}
		if err := st.Append(Record{Kind: KindFailure, Element: 0, At: 1e6}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
