package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testSnapshot builds a small valid snapshot.
func testSnapshot(now float64) *Snapshot {
	return &Snapshot{
		Version: FormatVersion,
		Now:     now,
		Plan: PlanState{
			Freqs:         []float64{2, 0.5},
			Perceived:     0.8,
			AvgFreshness:  0.7,
			BandwidthUsed: 2.5,
		},
		Breaker: BreakerSnap{State: 0, Fails: 1, Trips: 2},
		Elements: []ElementState{
			{ID: 0, Lambda: 1.5, AccessProb: 0.6, Size: 1, StoredVersion: 3, LastPoll: now, Fetches: 4,
				History: []PollObs{{Elapsed: 0.5, Changed: true}, {Elapsed: 0.5, Changed: false}}},
			{ID: 1, Lambda: 0.2, AccessProb: 0.4, Size: 2, Quarantined: true, QuarantinedAt: 1, ConsecFails: 3,
				History: []PollObs{{Elapsed: 2, Changed: false}}},
		},
		Counters: Counters{Fetches: 6, Transfers: 3, Replans: 2},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot(3.25)
	data, err := EncodeSnapshot(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the snapshot:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	data, err := EncodeSnapshot(testSnapshot(1))
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip anywhere in the file must be detected:
	// the magic, the header, or the CRC-protected payload.
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("flip at byte %d loaded silently", i)
		}
	}
	for _, short := range [][]byte{nil, data[:4], data[:len(snapshotMagic)+7], data[:len(data)-1]} {
		if _, err := DecodeSnapshot(short); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) loaded", len(short))
		}
	}
}

// withEstimator attaches a valid online-estimator section to a test
// snapshot and returns it for the caller to corrupt.
func withEstimator(s *Snapshot) *EstimatorSnap {
	s.Estimator = &EstimatorSnap{
		Kind: "mle",
		Elements: []EstimatorElem{
			{Lambda: 1.5, Info: 2, Polls: 4, Changes: 3, SumElapsed: 2},
			{Lambda: 0.2, Info: 5, Polls: 1, Changes: 0, SumElapsed: 2},
		},
	}
	return s.Estimator
}

func TestSnapshotValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"wrong version", func(s *Snapshot) { s.Version = 99 }},
		{"negative clock", func(s *Snapshot) { s.Now = -1 }},
		{"NaN clock", func(s *Snapshot) { s.Now = math.NaN() }},
		{"freqs length mismatch", func(s *Snapshot) { s.Plan.Freqs = s.Plan.Freqs[:1] }},
		{"negative freq", func(s *Snapshot) { s.Plan.Freqs[0] = -1 }},
		{"bad breaker state", func(s *Snapshot) { s.Breaker.State = 7 }},
		{"sparse ids", func(s *Snapshot) { s.Elements[1].ID = 5 }},
		{"negative lambda", func(s *Snapshot) { s.Elements[0].Lambda = -2 }},
		{"access prob above one", func(s *Snapshot) { s.Elements[0].AccessProb = 1.5 }},
		{"zero elapsed poll", func(s *Snapshot) { s.Elements[0].History[0].Elapsed = 0 }},
		{"estimator without kind", func(s *Snapshot) { withEstimator(s).Kind = "" }},
		{"estimator length mismatch", func(s *Snapshot) {
			est := withEstimator(s)
			est.Elements = est.Elements[:1]
		}},
		{"estimator negative rate", func(s *Snapshot) { withEstimator(s).Elements[0].Lambda = -1 }},
		{"estimator NaN information", func(s *Snapshot) { withEstimator(s).Elements[1].Info = math.NaN() }},
		{"estimator changes exceed polls", func(s *Snapshot) { withEstimator(s).Elements[0].Changes = 9 }},
		{"estimator negative observed time", func(s *Snapshot) { withEstimator(s).Elements[1].SumElapsed = -2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSnapshot(1)
			tc.mut(s)
			if err := s.Validate(); err == nil {
				t.Error("invalid snapshot validated")
			}
		})
	}
}

func TestStoreColdOpen(t *testing.T) {
	s, err := Open(t.TempDir() + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := s.Recovery()
	if rec.Recovered() || rec.Snapshot != nil || len(rec.Records) != 0 || rec.SnapshotErr != nil {
		t.Errorf("cold open recovered state: %+v", rec)
	}
}

func TestStoreAppendRecoverCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindRefresh, Element: 0, At: 0.5, Elapsed: 0.5, Changed: true, Version: 2},
		{Kind: KindFailure, Element: 1, At: 0.75},
		{Kind: KindRefresh, Element: 1, At: 1.0, Elapsed: 1.0},
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Crash before any snapshot: all three records replay.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Recovery()
	if len(got.Records) != 3 || got.JournalTruncated {
		t.Fatalf("recovered %d records (truncated=%v), want 3 clean", len(got.Records), got.JournalTruncated)
	}
	for i, r := range got.Records {
		if r.Seq != uint64(i+1) || r.Kind != recs[i].Kind || r.Element != recs[i].Element {
			t.Errorf("record %d = %+v", i, r)
		}
	}

	// Snapshot folds them in; the journal resets.
	if err := s2.Commit(testSnapshot(1.5)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(Record{Kind: KindRefresh, Element: 0, At: 2, Elapsed: 1.5}); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got = s3.Recovery()
	if got.Snapshot == nil || got.Snapshot.LastSeq != 3 {
		t.Fatalf("snapshot not recovered or wrong LastSeq: %+v", got.Snapshot)
	}
	if len(got.Records) != 1 || got.Records[0].Seq != 4 {
		t.Fatalf("post-snapshot records = %+v, want the one Seq-4 record", got.Records)
	}
}

// TestStoreSkipsRecordsSnapshotCovers simulates a crash between
// "snapshot renamed into place" and "journal reset": the journal still
// holds records the snapshot already folded in, and recovery must not
// replay them.
func TestStoreSkipsRecordsSnapshotCovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Kind: KindRefresh, Element: i, At: float64(i), Elapsed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Write the snapshot the way Commit would — but "crash" before the
	// journal reset by writing it directly.
	snap := testSnapshot(3)
	snap.LastSeq = s.Seq()
	if _, err := writeSnapshotFile(dir, SnapshotFile, snap); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Snapshot == nil {
		t.Fatal("snapshot lost")
	}
	if len(rec.Records) != 0 {
		t.Errorf("replayed %d records the snapshot already covers", len(rec.Records))
	}
	// New appends must continue the sequence, not reuse covered ones.
	if err := s2.Append(Record{Kind: KindRefresh, Element: 0, At: 4, Elapsed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Seq(); got != 4 {
		t.Errorf("post-recovery Seq = %d, want 4", got)
	}
}

// TestStoreTruncatesTornJournal cuts the journal mid-record and checks
// recovery keeps the good prefix, truncates the tear, and appends
// cleanly afterwards.
func TestStoreTruncatesTornJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Kind: KindRefresh, Element: i, At: float64(i), Elapsed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the last 5 bytes — a torn final record.
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovery()
	if !rec.JournalTruncated {
		t.Error("torn tail not reported")
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	// The file must be physically truncated and appendable.
	if err := s2.Append(Record{Kind: KindRefresh, Element: 9, At: 5, Elapsed: 1}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	rec = s3.Recovery()
	if rec.JournalTruncated || len(rec.Records) != 3 {
		t.Errorf("after repair: truncated=%v records=%d, want clean 3", rec.JournalTruncated, len(rec.Records))
	}
	if last := rec.Records[2]; last.Element != 9 || last.Seq != 3 {
		t.Errorf("repaired append = %+v", last)
	}
}

// TestStoreCorruptMidJournal flips a byte inside the second of three
// records: recovery keeps record one and discards the rest.
func TestStoreCorruptMidJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Kind: KindRefresh, Element: i, At: float64(i), Elapsed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _ := DecodeJournal(data)
	if len(recs) != 3 {
		t.Fatalf("setup: %d records", len(recs))
	}
	// Locate record 2's frame by re-walking: flip a byte two frames in.
	off := len(journalMagic)
	for i := 0; i < 1; i++ {
		size := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 8 + size
	}
	data[off+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.JournalTruncated || len(rec.Records) != 1 {
		t.Errorf("truncated=%v records=%d, want truncation after record 1", rec.JournalTruncated, len(rec.Records))
	}
}

// TestStoreCorruptSnapshotDegradesGracefully corrupts the snapshot:
// recovery must discard it (reporting why) and still replay the
// journal, never load a snapshot whose checksum fails.
func TestStoreCorruptSnapshotDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(testSnapshot(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Kind: KindRefresh, Element: 0, At: 3, Elapsed: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Snapshot != nil {
		t.Fatal("corrupt snapshot loaded")
	}
	if rec.SnapshotErr == nil {
		t.Error("snapshot discard not reported")
	}
	if len(rec.Records) != 1 {
		t.Errorf("journal lost with the snapshot: %d records", len(rec.Records))
	}
}

// TestStoreRejectsPoisonedEstimatorState plants a snapshot whose
// framing is intact — magic, length, CRC all good — but whose
// estimator section carries values the estimator could never have
// produced. Validation must refuse the whole snapshot (a torn write
// can't make a CRC pass, so this is the bit-rot/foreign-writer case)
// and recovery must degrade to the journal, reporting why.
func TestStoreRejectsPoisonedEstimatorState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testSnapshot(2)
	withEstimator(good)
	if err := s.Commit(good); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Kind: KindRefresh, Element: 0, At: 3, Elapsed: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Rewrite the snapshot in place with a negative rate, re-framing by
	// hand: EncodeSnapshot validates, and the point is a frame persist
	// itself would refuse to write.
	path := filepath.Join(dir, SnapshotFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	snap.Estimator.Elements[0].Lambda = -1
	payload, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf.Write(hdr[:])
	buf.Write(payload)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Snapshot != nil {
		t.Fatal("snapshot with poisoned estimator state loaded")
	}
	if rec.SnapshotErr == nil || !strings.Contains(rec.SnapshotErr.Error(), "estimator element 0") {
		t.Errorf("discard reason does not name the estimator: %v", rec.SnapshotErr)
	}
	if len(rec.Records) != 1 {
		t.Errorf("journal lost with the snapshot: %d records", len(rec.Records))
	}
}

// TestStoreAtomicSnapshotInstall verifies a leftover temp file (a
// crash mid-write) never shadows the installed snapshot.
func TestStoreAtomicSnapshotInstall(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := testSnapshot(7)
	if err := s.Commit(want); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a later crash mid-write: garbage in a temp file.
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile+".tmp-123"), []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Recovery().Snapshot
	if got == nil || got.Now != 7 {
		t.Fatalf("recovered %+v, want the committed snapshot", got)
	}
}

func TestDecodeJournalGarbageHeader(t *testing.T) {
	for _, data := range [][]byte{[]byte("x"), []byte("WRONGMAG"), bytes.Repeat([]byte{0xFF}, 64)} {
		recs, goodLen, clean := DecodeJournal(data)
		if len(recs) != 0 || goodLen != 0 || clean {
			t.Errorf("garbage header %q: recs=%d goodLen=%d clean=%v", data, len(recs), goodLen, clean)
		}
	}
	// An empty file predates the header write: clean, nothing lost.
	if recs, goodLen, clean := DecodeJournal(nil); len(recs) != 0 || goodLen != 0 || !clean {
		t.Errorf("empty journal: recs=%d goodLen=%d clean=%v", len(recs), goodLen, clean)
	}
}

func TestRecordValidate(t *testing.T) {
	cases := []Record{
		{Kind: "mystery", Element: 0, At: 1},
		{Kind: KindRefresh, Element: -1, At: 1},
		{Kind: KindRefresh, Element: 0, At: math.Inf(1)},
		{Kind: KindRefresh, Element: 0, At: -1},
		{Kind: KindRefresh, Element: 0, At: 1, Elapsed: -0.5},
		{Kind: KindRefresh, Element: 0, At: 1, Elapsed: math.NaN()},
	}
	for _, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid record validated: %+v", r)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestAppendAfterClose(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Append(Record{Kind: KindRefresh, At: 1}); err == nil {
		t.Error("append after close accepted")
	}
	if err := s.Commit(testSnapshot(1)); err == nil {
		t.Error("commit after close accepted")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
