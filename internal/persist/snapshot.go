package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// FormatVersion is the current snapshot payload version. Decoders
// accept only payloads whose embedded version they understand.
const FormatVersion = 1

// snapshotMagic identifies a snapshot file and pins its framing
// version; bumping the framing bumps the trailing digits.
var snapshotMagic = []byte("FRSNAP01")

// castagnoli is the CRC-32C table; Castagnoli detects the short burst
// errors torn writes produce better than the IEEE polynomial.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is the durable image of a mirror's learned state — the
// knowledge that is expensive to lose, not the object bodies (those
// are re-fetched from the origin on boot).
type Snapshot struct {
	// Version is the payload format version (FormatVersion).
	Version int `json:"format_version"`
	// LastSeq is the journal sequence number of the newest record this
	// snapshot folds in; recovery replays only records beyond it.
	LastSeq uint64 `json:"last_seq"`
	// Now is the mirror's period clock at snapshot time.
	Now float64 `json:"now_periods"`
	// Plan is the live schedule, used to warm-start the refresh loop
	// on recovery without re-solving.
	Plan PlanState `json:"plan"`
	// Breaker is the upstream circuit breaker's state.
	Breaker BreakerSnap `json:"breaker"`
	// Elements holds per-element learned state and metadata.
	Elements []ElementState `json:"elements"`
	// Counters are the mirror's lifetime counters.
	Counters Counters `json:"counters"`
	// Estimator is the online change-rate estimator's state, present
	// only when the mirror runs an O(1)-state estimator (the history
	// estimator's state is the per-element poll histories above). The
	// field is optional and additive, so version-1 snapshots from
	// before it existed still decode; recovery falls back to replaying
	// histories when it is absent or mismatched.
	Estimator *EstimatorSnap `json:"estimator,omitempty"`
}

// EstimatorSnap is a persisted online estimator: its kind plus the
// per-element summary that lets a restart resume convergence exactly
// where the crash interrupted it.
type EstimatorSnap struct {
	Kind     string          `json:"kind"`
	Elements []EstimatorElem `json:"elements"`
}

// EstimatorElem is one element's persisted estimator state.
type EstimatorElem struct {
	Lambda     float64 `json:"lambda"`
	Info       float64 `json:"info"`
	Polls      int     `json:"polls"`
	Changes    int     `json:"changes"`
	SumElapsed float64 `json:"sum_elapsed"`
}

// PlanState is the persisted schedule: the frequency vector plus the
// plan's reported metrics.
type PlanState struct {
	Freqs         []float64 `json:"freqs"`
	Perceived     float64   `json:"perceived"`
	AvgFreshness  float64   `json:"avg_freshness"`
	BandwidthUsed float64   `json:"bandwidth_used"`
}

// BreakerSnap is the circuit breaker's persisted state. State uses the
// breaker's integer encoding (closed / open / half-open).
type BreakerSnap struct {
	State    int     `json:"state"`
	Fails    int     `json:"fails"`
	OpenedAt float64 `json:"opened_at"`
	Trips    int     `json:"trips"`
}

// ElementState is one element's durable state: identity and metadata,
// the learned change rate and access probability, refresh bookkeeping,
// quarantine state, and the full poll history the estimator runs on.
type ElementState struct {
	ID         int     `json:"id"`
	Lambda     float64 `json:"lambda"`
	AccessProb float64 `json:"access_prob"`
	Size       float64 `json:"size"`

	StoredVersion int     `json:"stored_version"`
	FetchedAt     float64 `json:"fetched_at"`
	LastPoll      float64 `json:"last_poll"`
	Fetches       int     `json:"fetches"`
	Accesses      int     `json:"accesses"`

	Quarantined   bool    `json:"quarantined,omitempty"`
	QuarantinedAt float64 `json:"quarantined_at,omitempty"`
	LastProbe     float64 `json:"last_probe,omitempty"`
	ConsecFails   int     `json:"consec_fails,omitempty"`

	History []PollObs `json:"history"`
}

// PollObs is one persisted poll observation.
type PollObs struct {
	Elapsed float64 `json:"elapsed"`
	Changed bool    `json:"changed"`
}

// Counters are the mirror's lifetime counters, persisted so restarts
// don't zero the operational record.
type Counters struct {
	Accesses         int `json:"accesses"`
	Fetches          int `json:"fetches"`
	Transfers        int `json:"transfers"`
	Replans          int `json:"replans"`
	RefreshFailures  int `json:"refresh_failures"`
	SkippedRefreshes int `json:"skipped_refreshes"`
	QuarantineEvents int `json:"quarantine_events"`
	Recoveries       int `json:"recoveries"`
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate rejects snapshots that decode but describe impossible
// state; a snapshot that fails validation is never loaded.
func (s *Snapshot) Validate() error {
	if s.Version != FormatVersion {
		return fmt.Errorf("persist: unsupported snapshot version %d (want %d)", s.Version, FormatVersion)
	}
	if !finite(s.Now) || s.Now < 0 {
		return fmt.Errorf("persist: invalid clock %v", s.Now)
	}
	if len(s.Plan.Freqs) != len(s.Elements) {
		return fmt.Errorf("persist: plan has %d frequencies for %d elements", len(s.Plan.Freqs), len(s.Elements))
	}
	for i, f := range s.Plan.Freqs {
		if !finite(f) || f < 0 {
			return fmt.Errorf("persist: element %d has invalid frequency %v", i, f)
		}
	}
	if st := s.Breaker.State; st < 0 || st > 2 {
		return fmt.Errorf("persist: invalid breaker state %d", st)
	}
	for i := range s.Elements {
		e := &s.Elements[i]
		if e.ID != i {
			return fmt.Errorf("persist: element ids must be dense, got %d at position %d", e.ID, i)
		}
		if !finite(e.Lambda) || e.Lambda < 0 {
			return fmt.Errorf("persist: element %d has invalid change rate %v", i, e.Lambda)
		}
		if !finite(e.AccessProb) || e.AccessProb < 0 || e.AccessProb > 1 {
			return fmt.Errorf("persist: element %d has invalid access probability %v", i, e.AccessProb)
		}
		if !finite(e.Size) || e.Size < 0 {
			return fmt.Errorf("persist: element %d has invalid size %v", i, e.Size)
		}
		if !finite(e.LastPoll) || !finite(e.FetchedAt) {
			return fmt.Errorf("persist: element %d has non-finite poll times", i)
		}
		for j, p := range e.History {
			if !(p.Elapsed > 0) || math.IsInf(p.Elapsed, 0) {
				return fmt.Errorf("persist: element %d poll %d has invalid elapsed %v", i, j, p.Elapsed)
			}
		}
	}
	if est := s.Estimator; est != nil {
		if est.Kind == "" {
			return fmt.Errorf("persist: estimator state has no kind")
		}
		if len(est.Elements) != len(s.Elements) {
			return fmt.Errorf("persist: estimator state has %d elements for %d catalog elements",
				len(est.Elements), len(s.Elements))
		}
		for i, e := range est.Elements {
			if !finite(e.Lambda) || e.Lambda < 0 {
				return fmt.Errorf("persist: estimator element %d has invalid rate %v", i, e.Lambda)
			}
			if !finite(e.Info) || e.Info < 0 {
				return fmt.Errorf("persist: estimator element %d has invalid information %v", i, e.Info)
			}
			if e.Polls < 0 || e.Changes < 0 || e.Changes > e.Polls {
				return fmt.Errorf("persist: estimator element %d has %d changes over %d polls", i, e.Changes, e.Polls)
			}
			if !finite(e.SumElapsed) || e.SumElapsed < 0 {
				return fmt.Errorf("persist: estimator element %d has invalid observed time %v", i, e.SumElapsed)
			}
		}
	}
	return nil
}

// EncodeSnapshot frames a snapshot for disk: magic, payload length,
// CRC-32C of the payload, then the JSON payload.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("persist: encoding snapshot: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(snapshotMagic) + 8 + len(payload))
	buf.Write(snapshotMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf.Write(hdr[:])
	buf.Write(payload)
	return buf.Bytes(), nil
}

// DecodeSnapshot parses and verifies a framed snapshot. Any framing,
// checksum, encoding, or semantic failure is an error: a snapshot
// either loads whole and valid or not at all.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic)+8 {
		return nil, fmt.Errorf("persist: snapshot too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(snapshotMagic)], snapshotMagic) {
		return nil, fmt.Errorf("persist: bad snapshot magic %q", data[:len(snapshotMagic)])
	}
	rest := data[len(snapshotMagic):]
	size := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	payload := rest[8:]
	if uint32(len(payload)) != size {
		return nil, fmt.Errorf("persist: snapshot payload is %d bytes, header says %d", len(payload), size)
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, fmt.Errorf("persist: snapshot checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("persist: decoding snapshot payload: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// writeSnapshotFile writes the framed snapshot atomically: temp file
// in the same directory, fsync, rename over the final name, fsync the
// directory so the rename itself is durable. It returns the framed
// size in bytes, for the store's instrumentation.
func writeSnapshotFile(dir, name string, s *Snapshot) (int, error) {
	data, err := EncodeSnapshot(s)
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("persist: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return 0, fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return 0, fmt.Errorf("persist: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("persist: installing snapshot: %w", err)
	}
	return len(data), syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power
// loss. Filesystems that refuse to sync directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening state dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return fmt.Errorf("persist: syncing state dir: %w", err)
	}
	return nil
}
