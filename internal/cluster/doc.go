// Package cluster implements the paper's Section 4.1.3 refinement: a
// k-means (Lloyd) pass over the elements, seeded with the groups an
// initial partitioning produced, using Euclidean distance in the
// normalized (accessProb, changeRate) plane — the paper's Equation 3 —
// and optionally a third, size dimension for the Section 5 workloads.
//
// The paper's surprising result is that very few iterations on few
// partitions beat many plain partitions; the assignment step is
// parallelized so the big-case experiments (hundreds of thousands of
// elements) run in seconds.
package cluster
