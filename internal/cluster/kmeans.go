package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"freshen/internal/freshness"
	"freshen/internal/partition"
)

// Config tunes the refinement.
type Config struct {
	// Iterations is the number of Lloyd iterations; 0 returns the
	// seed grouping unchanged (the paper's "0 iterations" line).
	Iterations int
	// IncludeSize adds a normalized size dimension to the feature
	// space for variable-size mirrors.
	IncludeSize bool
	// Parallelism bounds the assignment workers; 0 means GOMAXPROCS.
	Parallelism int
}

// Stats reports what the refinement did.
type Stats struct {
	// Iterations actually run (may stop early on convergence).
	Iterations int
	// Moves[i] is the number of elements that switched clusters in
	// iteration i; a zero entry ends the run.
	Moves []int
	// Inertia[i] is the within-cluster sum of squared distances after
	// iteration i's reassignment — Lloyd's objective, which must be
	// non-increasing across iterations (a repository test enforces
	// this invariant).
	Inertia []float64
}

// Refine runs k-means from the seed grouping and returns the refined
// grouping (with the same number of clusters; clusters may end up
// empty) together with iteration statistics. The seed must be a valid
// partitioning of the element set.
func Refine(elems []freshness.Element, seed partition.Partitioning, cfg Config) (partition.Partitioning, Stats, error) {
	if err := freshness.ValidateElements(elems); err != nil {
		return partition.Partitioning{}, Stats{}, err
	}
	if err := seed.Validate(len(elems)); err != nil {
		return partition.Partitioning{}, Stats{}, err
	}
	if cfg.Iterations < 0 {
		return partition.Partitioning{}, Stats{}, fmt.Errorf("cluster: iterations must be non-negative, got %d", cfg.Iterations)
	}
	k := len(seed.Groups)
	n := len(elems)

	// Build the normalized feature matrix once. Following the paper's
	// footnote 6, change rates are normalized to sum to 1, which puts
	// them on the same scale as the access probabilities (themselves a
	// distribution summing to 1): the Euclidean distance of Equation 3
	// then compares like with like, and the naturally wider spread of
	// the access distribution is what lets it dominate the clustering,
	// matching the paper's observation. Sizes, when included, are
	// normalized the same way.
	dims := 2
	if cfg.IncludeSize {
		dims = 3
	}
	features := make([]float64, n*dims)
	var sumP, sumL, sumS float64
	for _, e := range elems {
		sumP += e.AccessProb
		sumL += e.Lambda
		sumS += e.Size
	}
	if sumP == 0 {
		sumP = 1
	}
	if sumL == 0 {
		sumL = 1
	}
	if sumS == 0 {
		sumS = 1
	}
	for i, e := range elems {
		features[i*dims] = e.AccessProb / sumP
		features[i*dims+1] = e.Lambda / sumL
		if cfg.IncludeSize {
			features[i*dims+2] = e.Size / sumS
		}
	}

	assign := make([]int, n)
	for g, group := range seed.Groups {
		for _, idx := range group {
			assign[idx] = g
		}
	}

	centroids := make([]float64, k*dims)
	counts := make([]int, k)
	stats := Stats{}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	for it := 0; it < cfg.Iterations; it++ {
		computeCentroids(features, assign, centroids, counts, dims, k)
		moves := assignNearest(features, centroids, counts, assign, dims, k, workers)
		stats.Iterations++
		stats.Moves = append(stats.Moves, moves)
		stats.Inertia = append(stats.Inertia, inertia(features, assign, centroids, dims))
		if moves == 0 {
			break
		}
	}

	groups := make([][]int, k)
	for idx, g := range assign {
		groups[g] = append(groups[g], idx)
	}
	return partition.Partitioning{Key: seed.Key, Groups: groups}, stats, nil
}

// inertia returns the within-cluster sum of squared distances to the
// centroids the points were just assigned against.
func inertia(features []float64, assign []int, centroids []float64, dims int) float64 {
	var total float64
	for i, g := range assign {
		fbase, cbase := i*dims, g*dims
		for d := 0; d < dims; d++ {
			diff := features[fbase+d] - centroids[cbase+d]
			total += diff * diff
		}
	}
	return total
}

// computeCentroids recomputes cluster means. A cluster that lost all
// members keeps its previous centroid so it can win points back in a
// later iteration.
func computeCentroids(features []float64, assign []int, centroids []float64, counts []int, dims, k int) {
	sums := make([]float64, k*dims)
	for i := range counts {
		counts[i] = 0
	}
	n := len(assign)
	for i := 0; i < n; i++ {
		g := assign[i]
		counts[g]++
		base := g * dims
		fbase := i * dims
		for d := 0; d < dims; d++ {
			sums[base+d] += features[fbase+d]
		}
	}
	for g := 0; g < k; g++ {
		if counts[g] == 0 {
			continue // keep the stale centroid
		}
		inv := 1 / float64(counts[g])
		for d := 0; d < dims; d++ {
			centroids[g*dims+d] = sums[g*dims+d] * inv
		}
	}
}

// assignNearest moves every element to its nearest centroid and
// returns the number of reassignments. Elements are sharded across
// workers; each worker writes a disjoint range of assign.
func assignNearest(features, centroids []float64, counts []int, assign []int, dims, k, workers int) int {
	n := len(assign)
	movesPer := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			moves := 0
			for i := lo; i < hi; i++ {
				fbase := i * dims
				best, bestDist := assign[i], -1.0
				for g := 0; g < k; g++ {
					base := g * dims
					var dist float64
					for d := 0; d < dims; d++ {
						diff := features[fbase+d] - centroids[base+d]
						dist += diff * diff
					}
					if bestDist < 0 || dist < bestDist {
						best, bestDist = g, dist
					}
				}
				if best != assign[i] {
					assign[i] = best
					moves++
				}
			}
			movesPer[w] = moves
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, m := range movesPer {
		total += m
	}
	return total
}
