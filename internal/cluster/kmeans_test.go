package cluster

import (
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/partition"
	"freshen/internal/workload"
)

func testElements(t *testing.T, n int, theta float64, seed int64) []freshness.Element {
	t.Helper()
	spec := workload.TableTwo()
	spec.NumObjects = n
	spec.UpdatesPerPeriod = 2 * float64(n)
	spec.SyncsPerPeriod = float64(n) / 2
	spec.Theta = theta
	spec.Seed = seed
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return elems
}

func TestRefineZeroIterationsIsIdentity(t *testing.T) {
	elems := testElements(t, 100, 1.0, 1)
	seed, err := partition.Build(elems, partition.KeyPF, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Refine(elems, seed, Config{Iterations: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != 0 || len(stats.Moves) != 0 {
		t.Errorf("zero-iteration stats = %+v", stats)
	}
	if len(got.Groups) != len(seed.Groups) {
		t.Fatalf("group count changed: %d vs %d", len(got.Groups), len(seed.Groups))
	}
	// Same membership (order within groups may be rebuilt).
	if err := got.Validate(len(elems)); err != nil {
		t.Fatal(err)
	}
	for g := range seed.Groups {
		if len(got.Groups[g]) != len(seed.Groups[g]) {
			t.Errorf("group %d size changed with 0 iterations", g)
		}
	}
}

func TestRefineProducesValidPartitioning(t *testing.T) {
	elems := testElements(t, 500, 1.0, 2)
	for _, iters := range []int{1, 3, 10} {
		seed, err := partition.Build(elems, partition.KeyPF, 20, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := Refine(elems, seed, Config{Iterations: iters})
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(len(elems)); err != nil {
			t.Errorf("iters=%d: %v", iters, err)
		}
		if stats.Iterations > iters {
			t.Errorf("ran %d iterations, cap was %d", stats.Iterations, iters)
		}
	}
}

func TestRefineImprovesPerceivedFreshness(t *testing.T) {
	// The paper's headline: a few k-means iterations on a modest
	// number of partitions materially improve perceived freshness over
	// the plain partitioning.
	elems := testElements(t, 2000, 1.0, 3)
	const bandwidth, k = 1000, 12
	seed, err := partition.Build(elems, partition.KeyPF, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := partition.Options{Key: partition.KeyPF, NumPartitions: k}
	base, err := partition.SolvePartitioned(elems, bandwidth, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	refined, _, err := Refine(elems, seed, Config{Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := partition.SolvePartitioned(elems, bandwidth, refined, opts)
	if err != nil {
		t.Fatal(err)
	}
	if improved.Solution.Perceived < base.Solution.Perceived-1e-9 {
		t.Errorf("refinement hurt: %v -> %v",
			base.Solution.Perceived, improved.Solution.Perceived)
	}
	if improved.Solution.Perceived <= base.Solution.Perceived {
		t.Logf("warning: refinement did not improve (%v -> %v)",
			base.Solution.Perceived, improved.Solution.Perceived)
	}
}

func TestRefineInertiaNonIncreasing(t *testing.T) {
	elems := testElements(t, 1000, 1.0, 12)
	seed, err := partition.Build(elems, partition.KeyPF, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Refine(elems, seed, Config{Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Inertia) != stats.Iterations {
		t.Fatalf("recorded %d inertia values for %d iterations", len(stats.Inertia), stats.Iterations)
	}
	for i := 1; i < len(stats.Inertia); i++ {
		if stats.Inertia[i] > stats.Inertia[i-1]*(1+1e-12) {
			t.Errorf("inertia rose at iteration %d: %v -> %v",
				i, stats.Inertia[i-1], stats.Inertia[i])
		}
	}
	if stats.Inertia[len(stats.Inertia)-1] >= stats.Inertia[0] && stats.Iterations > 1 {
		t.Error("inertia never improved across iterations")
	}
}

func TestRefineConvergesAndStopsEarly(t *testing.T) {
	elems := testElements(t, 300, 0.8, 4)
	seed, err := partition.Build(elems, partition.KeyPF, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Refine(elems, seed, Config{Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations == 500 {
		t.Error("k-means did not converge within 500 iterations on 300 elements")
	}
	if len(stats.Moves) == 0 || stats.Moves[len(stats.Moves)-1] != 0 {
		t.Errorf("final iteration moves = %v, want trailing 0", stats.Moves)
	}
	// Rerunning from the converged grouping must make no moves.
	converged, _, err := Refine(elems, seed, Config{Iterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	_, stats2, err := Refine(elems, converged, Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Moves[0] != 0 {
		t.Errorf("converged grouping moved %d elements on re-run", stats2.Moves[0])
	}
}

func TestRefineDeterministicAcrossParallelism(t *testing.T) {
	elems := testElements(t, 400, 1.2, 5)
	seed, err := partition.Build(elems, partition.KeyP, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := Refine(elems, seed, Config{Iterations: 5, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Refine(elems, seed, Config{Iterations: 5, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for g := range a.Groups {
		if len(a.Groups[g]) != len(b.Groups[g]) {
			t.Fatalf("group %d sizes differ across parallelism: %d vs %d",
				g, len(a.Groups[g]), len(b.Groups[g]))
		}
		for i := range a.Groups[g] {
			if a.Groups[g][i] != b.Groups[g][i] {
				t.Fatalf("group %d differs across parallelism", g)
			}
		}
	}
}

func TestRefineWithSizeDimension(t *testing.T) {
	spec := workload.TableTwo()
	spec.NumObjects = 300
	spec.Theta = 1.0
	spec.Sizes = workload.SizePareto
	spec.ParetoShape = 1.1
	spec.SizeAlignment = workload.Reverse
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := partition.Build(elems, partition.KeyPFOverSize, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Refine(elems, seed, Config{Iterations: 5, IncludeSize: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(len(elems)); err != nil {
		t.Fatal(err)
	}
}

func TestRefineValidation(t *testing.T) {
	elems := testElements(t, 10, 1.0, 6)
	seed, err := partition.Build(elems, partition.KeyPF, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Refine(elems, seed, Config{Iterations: -1}); err == nil {
		t.Error("negative iterations must fail")
	}
	if _, _, err := Refine(nil, seed, Config{}); err == nil {
		t.Error("empty element set must fail")
	}
	bad := partition.Partitioning{Groups: [][]int{{0}}}
	if _, _, err := Refine(elems, bad, Config{}); err == nil {
		t.Error("corrupt seed must fail")
	}
}
