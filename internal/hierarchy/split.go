package hierarchy

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
	"freshen/internal/solver"
)

// SplitConfig describes a two-level chain budget split problem: one
// regional mirror refreshing from the origin, and Edges edge mirrors
// refreshing from it, all serving the same catalog.
type SplitConfig struct {
	// Elements is the shared catalog: change rates, access profile,
	// sizes. The access profile is the end clients' (served by the
	// edges).
	Elements []freshness.Element
	// Budget is the global refresh budget per period, to be divided
	// between the regional tier and the edge tier.
	Budget float64
	// Edges is the number of edge mirrors (≥ 1). Every edge serves the
	// same profile, so the optimal edge allocations are identical and
	// the edge tier's budget divides evenly.
	Edges int
	// Policy is the synchronization-order policy; nil defaults to the
	// paper's Fixed-Order policy.
	Policy freshness.Policy
	// Grid is the number of interior upstream-share candidates the
	// outer search scans before refining; 0 means 33.
	Grid int
	// MaxRounds bounds the block-coordinate ascent per candidate; 0
	// means 40 (it converges in a handful; the bound is a backstop).
	MaxRounds int
}

func (c SplitConfig) withDefaults() SplitConfig {
	if c.Policy == nil {
		c.Policy = freshness.FixedOrder{}
	}
	if c.Grid <= 0 {
		c.Grid = 33
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 40
	}
	return c
}

// Validate checks the problem is well-formed.
func (c SplitConfig) Validate() error {
	if err := freshness.ValidateElements(c.Elements); err != nil {
		return err
	}
	if !(c.Budget > 0) || math.IsInf(c.Budget, 0) {
		return fmt.Errorf("hierarchy: budget must be positive and finite, got %v", c.Budget)
	}
	if c.Edges < 1 {
		return fmt.Errorf("hierarchy: need at least one edge mirror, got %d", c.Edges)
	}
	return nil
}

// Level is one tier's share of a certified split.
type Level struct {
	// Share is this tier's fraction of the global budget (the edge
	// tier's Share covers all edges together).
	Share float64
	// Bandwidth is the absolute budget of one mirror at this tier.
	Bandwidth float64
	// Freqs is the optimal per-element refresh frequency vector for
	// one mirror at this tier.
	Freqs []float64
	// Elems are the effective elements this tier optimizes: the shared
	// catalog with each access weight scaled by the other tier's
	// freshness factor. The tier's Freqs water-fill exactly this
	// program, so testkit.Certify(policy, Elems, Freqs, Bandwidth, tol)
	// proves the level optimal given the other.
	Elems []freshness.Element
	// Mu is the tier's water-filling multiplier: the marginal
	// end-to-end perceived freshness of one more period of bandwidth
	// spent at this tier.
	Mu float64
}

// Split is a certified two-level budget division.
type Split struct {
	Upstream Level // the regional tier (one mirror)
	Edge     Level // one edge mirror; all Edges are symmetric
	// PF is the end-to-end perceived freshness of the chain under the
	// split — what an edge client experiences relative to the origin.
	PF float64
	// Evals counts inner ascent solves, for instrumentation.
	Evals int
}

// levelWeights scales the catalog's access weights by the other
// tier's freshness factor: the value of refreshing element i at this
// tier is pᵢ · F(f_other,i, λᵢ) · ∂F/∂f — end-to-end freshness
// factorizes (freshness.ChainFreshness), so the other tier's factor
// is a constant multiplier on this tier's objective. The +Inf other
// frequency trick evaluates a bare single-level factor.
func levelWeights(pol freshness.Policy, elems []freshness.Element, otherFreqs []float64) []freshness.Element {
	out := append([]freshness.Element(nil), elems...)
	for i := range out {
		out[i].AccessProb = elems[i].AccessProb *
			freshness.ChainFreshness(pol, otherFreqs[i], math.Inf(1), elems[i].Lambda)
	}
	return out
}

// EvalShare solves the two-level allocation for a fixed upstream
// share s ∈ (0, 1): the regional tier gets s·Budget, each edge
// (1−s)·Budget/Edges, and the per-element frequencies at each tier
// are block-coordinate water-fills against the other tier's freshness
// factors, iterated to a fixed point. This is the inner solve both
// SplitBudget and the naive-split baselines use, so comparing their
// PFs isolates the value of choosing s well.
func EvalShare(cfg SplitConfig, share float64) (Split, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Split{}, err
	}
	if !(share > 0 && share < 1) {
		return Split{}, fmt.Errorf("hierarchy: upstream share must be in (0, 1), got %v", share)
	}
	return evalShare(cfg, share)
}

func evalShare(cfg SplitConfig, share float64) (Split, error) {
	pol := cfg.Policy
	upBW := share * cfg.Budget
	edgeBW := (1 - share) * cfg.Budget / float64(cfg.Edges)
	eng := solver.NewEngine()

	solve := func(elems []freshness.Element, bw float64) (solver.Solution, error) {
		return eng.WaterFill(solver.Problem{Elements: elems, Bandwidth: bw, Policy: pol})
	}

	// Round zero seeds the regional tier with the raw client profile
	// (as if the edges were perfectly fresh); the ascent then
	// alternates, each tier re-weighted by the other's latest factors.
	s := Split{
		Upstream: Level{Share: share, Bandwidth: upBW},
		Edge:     Level{Share: 1 - share, Bandwidth: edgeBW},
	}
	up, err := solve(cfg.Elements, upBW)
	if err != nil {
		return s, err
	}
	s.Evals++
	var edge solver.Solution
	var edgeElems []freshness.Element
	for round := 0; round < cfg.MaxRounds; round++ {
		edgeElems = levelWeights(pol, cfg.Elements, up.Freqs)
		next, err := solve(edgeElems, edgeBW)
		if err != nil {
			return s, err
		}
		s.Evals++
		converged := round > 0 && maxDelta(edge.Freqs, next.Freqs) <= convergenceTol
		edge = next
		upElems := levelWeights(pol, cfg.Elements, edge.Freqs)
		nextUp, err := solve(upElems, upBW)
		if err != nil {
			return s, err
		}
		s.Evals++
		converged = converged && maxDelta(up.Freqs, nextUp.Freqs) <= convergenceTol
		up = nextUp
		s.Upstream.Elems = upElems
		if converged {
			break
		}
	}
	// One closing half-step keeps both levels mutually consistent: the
	// edge re-solves against the final upstream frequencies, so each
	// tier's allocation is the exact water-fill of its stored Elems.
	edgeElems = levelWeights(pol, cfg.Elements, up.Freqs)
	edge, err = solve(edgeElems, edgeBW)
	if err != nil {
		return s, err
	}
	s.Evals++
	s.Upstream.Freqs, s.Upstream.Mu = up.Freqs, up.Multiplier
	s.Edge.Freqs, s.Edge.Mu = edge.Freqs, edge.Multiplier
	s.Edge.Elems = edgeElems
	pf, err := freshness.ChainPerceived(pol, cfg.Elements, up.Freqs, edge.Freqs)
	if err != nil {
		return s, err
	}
	s.PF = pf
	return s, nil
}

// convergenceTol is the sup-norm frequency change below which the
// block-coordinate ascent is declared at its fixed point. Well below
// any certification tolerance: the stored level weights are then
// indistinguishable from the exact fixed point's.
const convergenceTol = 1e-10

func maxDelta(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var d float64
	for i := range a {
		if dd := math.Abs(a[i] - b[i]); dd > d {
			d = dd
		}
	}
	return d
}

// SplitBudget finds the cross-level budget division maximizing
// end-to-end perceived freshness: an outer search over the regional
// tier's share of the global budget, with EvalShare's block-coordinate
// water-fill as the inner solve. The candidate set always contains the
// two naive splits (50/50 and proportional-to-mirror-count), so the
// result never scores below either; the grid scan plus local
// refinement then finds the genuinely best share.
func SplitBudget(cfg SplitConfig) (Split, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Split{}, err
	}
	step := 1 / float64(cfg.Grid+1)
	shares := make([]float64, 0, cfg.Grid+2)
	for i := 1; i <= cfg.Grid; i++ {
		shares = append(shares, float64(i)*step)
	}
	// The naive baselines ride along so best-of-candidates dominates
	// them by construction.
	shares = append(shares, 0.5, 1/float64(1+cfg.Edges))

	var best Split
	evals := 0
	bestShare := -1.0
	try := func(share float64) error {
		if !(share > 0 && share < 1) {
			return nil
		}
		s, err := evalShare(cfg, share)
		if err != nil {
			return err
		}
		evals += s.Evals
		if bestShare < 0 || s.PF > best.PF {
			best, bestShare = s, share
		}
		return nil
	}
	for _, share := range shares {
		if err := try(share); err != nil {
			return Split{}, err
		}
	}
	// Local refinement: shrink the bracket around the best share. The
	// PF-of-share curve is smooth, so three halvings of the grid step
	// pin the optimum far beyond what the certification tolerance can
	// distinguish.
	for refine := 0; refine < 3; refine++ {
		step /= 4
		center := bestShare
		for _, share := range [...]float64{center - 2*step, center - step, center + step, center + 2*step} {
			if err := try(share); err != nil {
				return Split{}, err
			}
		}
	}
	best.Evals = evals
	return best, nil
}
