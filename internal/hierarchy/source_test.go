package hierarchy

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"freshen/internal/httpmirror"
)

// TestMirrorSourceSpeaksSourceProtocol points a MirrorSource at a
// plain origin: the adapter must be a drop-in Source (catalog, fetch,
// head, conditional fetch) with the health interface reporting
// healthy throughout.
func TestMirrorSourceSpeaksSourceProtocol(t *testing.T) {
	origin, err := httpmirror.NewSimulatedSource([]float64{1, 2}, []float64{1, 2.5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(origin.Handler())
	defer srv.Close()
	ms := NewMirrorSource(srv.URL, srv.Client())
	ctx := context.Background()

	catalog, err := ms.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(catalog) != 2 || catalog[1].Size != 2.5 {
		t.Fatalf("catalog = %+v", catalog)
	}
	body, ver, err := ms.Fetch(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Error("empty body")
	}
	if v, err := ms.Version(ctx, 0); err != nil || v != ver {
		t.Errorf("Version = %d, %v; want %d", v, err, ver)
	}
	_, _, notMod, err := ms.FetchIfNewer(ctx, 0, ver)
	if err != nil {
		t.Fatal(err)
	}
	if !notMod {
		t.Error("conditional fetch of the current version was not a 304")
	}
	if ms.UpstreamDegraded() {
		t.Error("healthy origin reported degraded")
	}
	if s := ms.UpstreamStaleness(0); s != 0 {
		t.Errorf("healthy origin staleness = %v", s)
	}
	if ms.UpstreamURL() != srv.URL {
		t.Errorf("UpstreamURL = %q, want %q", ms.UpstreamURL(), srv.URL)
	}
}

// TestObserverTracksDegradationHeaders drives the observing transport
// with a scriptable upstream: degraded responses must set the flag and
// record per-object staleness, healthy ones must self-clear both, and
// non-substantive answers (a 503 shed) must leave a standing signal
// alone.
func TestObserverTracksDegradationHeaders(t *testing.T) {
	var mode, staleness string
	var code int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/catalog" {
			w.Write([]byte(`[{"id":0,"size":1},{"id":1,"size":1}]`))
			return
		}
		if mode != "" {
			w.Header().Set("X-Mirror-Mode", mode)
		}
		if staleness != "" {
			w.Header().Set("X-Staleness-Periods", staleness)
		}
		w.Header().Set("X-Version", "3")
		if code != 0 && code != http.StatusOK {
			w.WriteHeader(code)
			return
		}
		w.Write([]byte("body"))
	}))
	defer srv.Close()
	ms := NewMirrorSource(srv.URL, srv.Client())
	ms.SetRetryPolicy(httpmirror.RetryPolicy{MaxAttempts: 1})
	ctx := context.Background()
	if _, err := ms.Catalog(ctx); err != nil {
		t.Fatal(err)
	}

	mode, staleness = "source-degraded", "4.50"
	if _, _, err := ms.Fetch(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if !ms.UpstreamDegraded() {
		t.Fatal("degraded header not observed")
	}
	if s := ms.UpstreamStaleness(0); s != 4.5 {
		t.Errorf("staleness(0) = %v, want 4.5", s)
	}
	if s := ms.UpstreamStaleness(1); s != 0 {
		t.Errorf("staleness(1) = %v, want 0 (never reported)", s)
	}

	// A shed says nothing: the standing signal survives.
	code = http.StatusServiceUnavailable
	if _, _, err := ms.Fetch(ctx, 0); err == nil {
		t.Fatal("shed fetch should fail")
	} else if !strings.Contains(err.Error(), "503") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !ms.UpstreamDegraded() || ms.UpstreamStaleness(0) != 4.5 {
		t.Error("a 503 cleared the degradation signal")
	}

	// Persist-degraded alone is not source degradation: the upstream
	// still verifies against its origin, so the source axis clears.
	code, mode, staleness = 0, "persist-degraded", ""
	if _, _, err := ms.Fetch(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if ms.UpstreamDegraded() || ms.UpstreamStaleness(0) != 0 {
		t.Error("persist-degraded answer did not clear the source axis")
	}

	// The compound mode counts as source degradation again.
	mode, staleness = "source-degraded+persist-degraded", "1.25"
	if _, _, err := ms.Fetch(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if !ms.UpstreamDegraded() || ms.UpstreamStaleness(1) != 1.25 {
		t.Error("compound mode not observed")
	}

	// Fully healthy self-clears.
	mode, staleness = "", ""
	if _, _, err := ms.Fetch(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if ms.UpstreamDegraded() || ms.UpstreamStaleness(1) != 0 {
		t.Error("healthy answer did not self-clear")
	}
}
