// Package hierarchy chains mirrors into multi-level topologies:
// source → regional → edge, each level refreshing from the one above
// it over the same HTTP source protocol an origin speaks.
//
// Two pieces make a chain more than a pair of independent mirrors:
//
//   - MirrorSource adapts an upstream mirror into the Source contract a
//     downstream mirror refreshes from, while eavesdropping on the
//     upstream's degradation headers (X-Mirror-Mode,
//     X-Staleness-Periods). A downstream mirror whose upstream is
//     itself source-degraded enters source-degraded mode too and
//     serves compounded staleness — the end client always learns the
//     true distance to the origin.
//
//   - SplitBudget divides a global refresh budget across the levels.
//     End-to-end freshness is the product of per-level freshness
//     factors (internal/freshness.ChainFreshness), so the levels
//     compete for budget: a regional mirror that refreshes too rarely
//     caps what any amount of edge polling can deliver. SplitBudget
//     water-fills each level against the other's marginal end-to-end
//     value and searches the cross-level share, so the split lands
//     where the marginal period of bandwidth is worth the same
//     wherever it is spent.
//
// The closed form this optimizes against is cross-validated by the
// chained discrete-event engine in internal/sim.
package hierarchy
