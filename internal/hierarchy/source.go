package hierarchy

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"freshen/internal/httpmirror"
)

// MirrorSource adapts an upstream mirror's HTTP API into the Source
// contract a downstream mirror refreshes from. The protocol is the
// origin's own — GET /catalog, GET/HEAD /object/{id}, conditional
// fetches via X-If-Version — so a mirror needs no new code to sit
// below another mirror instead of an origin.
//
// What the adapter adds is hierarchy awareness: every object response
// passes through an observing transport that records the upstream's
// degradation headers. When the upstream reports itself
// source-degraded (its own origin is unreachable), the downstream
// mirror learns it through the UpstreamHealth interface and enters
// source-degraded mode too, compounding the upstream's reported
// staleness into its own serving headers. The signal self-clears: a
// healthy upstream answer resets it.
//
// MirrorSource is safe for concurrent use.
type MirrorSource struct {
	*httpmirror.SourceClient
	obs *upstreamObserver
	url string
}

var (
	_ httpmirror.Source            = (*MirrorSource)(nil)
	_ httpmirror.ConditionalSource = (*MirrorSource)(nil)
	_ httpmirror.UpstreamHealth    = (*MirrorSource)(nil)
)

// NewMirrorSource creates a source that refreshes from the mirror at
// base (e.g. "http://regional:8080"). client may be nil for defaults;
// it is cloned, never mutated — the observer transport wraps the
// clone's.
func NewMirrorSource(base string, client *http.Client) *MirrorSource {
	if client == nil {
		client = http.DefaultClient
	}
	clone := *client
	obs := &upstreamObserver{next: clone.Transport}
	clone.Transport = obs
	return &MirrorSource{
		SourceClient: httpmirror.NewSourceClient(base, &clone),
		obs:          obs,
		url:          strings.TrimRight(base, "/"),
	}
}

// Catalog lists the upstream mirror's objects and sizes the observer's
// per-object staleness vector to match.
func (s *MirrorSource) Catalog(ctx context.Context) ([]httpmirror.CatalogEntry, error) {
	entries, err := s.SourceClient.Catalog(ctx)
	if err == nil {
		s.obs.grow(len(entries))
	}
	return entries, err
}

// UpstreamDegraded reports whether the upstream mirror most recently
// identified itself as source-degraded.
func (s *MirrorSource) UpstreamDegraded() bool { return s.obs.degraded.Load() }

// UpstreamStaleness returns the upstream's last-reported staleness for
// an object in periods (0 when healthy or never reported). Lock-free:
// the downstream mirror calls this on its serving path.
func (s *MirrorSource) UpstreamStaleness(id int) float64 { return s.obs.staleness(id) }

// UpstreamURL identifies the upstream tier, for topology walks.
func (s *MirrorSource) UpstreamURL() string { return s.url }

// upstreamObserver is the RoundTripper that reads the upstream's
// degradation headers off every object response. State is atomic
// throughout: writes happen on the refresh path, reads on the
// downstream mirror's lock-free serving path.
type upstreamObserver struct {
	next     http.RoundTripper
	degraded atomic.Bool
	stale    atomic.Pointer[[]atomic.Uint64] // per-object staleness, Float64bits
}

func (o *upstreamObserver) RoundTrip(req *http.Request) (*http.Response, error) {
	next := o.next
	if next == nil {
		next = http.DefaultTransport
	}
	resp, err := next.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if rest, ok := strings.CutPrefix(req.URL.Path, "/object/"); ok {
		if id, aerr := strconv.Atoi(rest); aerr == nil {
			o.note(id, resp)
		}
	}
	return resp, nil
}

// note folds one object response's headers into the degradation state.
// Only substantive answers count: a 503 shed or an error page says
// nothing about the upstream's mode, and must not clear a standing
// degradation signal.
func (o *upstreamObserver) note(id int, resp *http.Response) {
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
		return
	}
	mode := resp.Header.Get("X-Mirror-Mode")
	if strings.Contains(mode, "source-degraded") {
		o.degraded.Store(true)
		st := 0.0
		if v, err := strconv.ParseFloat(resp.Header.Get("X-Staleness-Periods"), 64); err == nil && v > 0 {
			st = v
		}
		o.setStale(id, st)
		return
	}
	// A healthy (or merely persist-degraded) answer self-clears the
	// source axis: the upstream is verifying against its origin again.
	o.degraded.Store(false)
	o.setStale(id, 0)
}

// grow ensures the staleness vector covers n objects, preserving any
// recorded values. Lock-free via CAS; concurrent growers retry.
func (o *upstreamObserver) grow(n int) {
	for {
		cur := o.stale.Load()
		if cur != nil && len(*cur) >= n {
			return
		}
		next := make([]atomic.Uint64, n)
		if cur != nil {
			for i := range *cur {
				next[i].Store((*cur)[i].Load())
			}
		}
		if o.stale.CompareAndSwap(cur, &next) {
			return
		}
	}
}

func (o *upstreamObserver) setStale(id int, periods float64) {
	s := o.stale.Load()
	if s == nil || id < 0 || id >= len(*s) {
		return
	}
	(*s)[id].Store(math.Float64bits(periods))
}

func (o *upstreamObserver) staleness(id int) float64 {
	s := o.stale.Load()
	if s == nil || id < 0 || id >= len(*s) {
		return 0
	}
	return math.Float64frombits((*s)[id].Load())
}
