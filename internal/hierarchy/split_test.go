package hierarchy

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/testkit"
)

const certTol = 1e-6

// certifySplit proves both levels of a split optimal: each tier's
// frequency vector must satisfy the KKT conditions of the water-fill
// over its stored effective elements (the catalog re-weighted by the
// other tier's freshness factors) at its bandwidth.
func certifySplit(t *testing.T, pol freshness.Policy, s Split) {
	t.Helper()
	if _, err := testkit.Certify(pol, s.Upstream.Elems, s.Upstream.Freqs, s.Upstream.Bandwidth, certTol); err != nil {
		t.Errorf("upstream level not certified: %v", err)
	}
	if _, err := testkit.Certify(pol, s.Edge.Elems, s.Edge.Freqs, s.Edge.Bandwidth, certTol); err != nil {
		t.Errorf("edge level not certified: %v", err)
	}
}

func TestSplitBudgetCertifiedAtEveryLevel(t *testing.T) {
	for _, pol := range []freshness.Policy{freshness.FixedOrder{}, freshness.PoissonOrder{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			cfg := SplitConfig{
				Elements: testkit.RandomElements(42, 60, true),
				Budget:   30,
				Edges:    4,
				Policy:   pol,
			}
			s, err := SplitBudget(cfg)
			if err != nil {
				t.Fatal(err)
			}
			certifySplit(t, pol, s)

			// The split spends the whole budget: the regional tier plus
			// all edges.
			total := s.Upstream.Bandwidth + float64(cfg.Edges)*s.Edge.Bandwidth
			if math.Abs(total-cfg.Budget) > 1e-9*cfg.Budget {
				t.Errorf("level budgets sum to %v, want %v", total, cfg.Budget)
			}
			if math.Abs(s.Upstream.Share+s.Edge.Share-1) > 1e-12 {
				t.Errorf("shares sum to %v", s.Upstream.Share+s.Edge.Share)
			}

			// The reported PF is the chain closed form at the returned
			// frequencies.
			pf, err := freshness.ChainPerceived(pol, cfg.Elements, s.Upstream.Freqs, s.Edge.Freqs)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pf-s.PF) > 1e-12 {
				t.Errorf("PF = %v, closed form says %v", s.PF, pf)
			}
			if s.PF <= 0 || s.PF >= 1 {
				t.Errorf("implausible chain PF %v", s.PF)
			}
		})
	}
}

// TestSplitBudgetDominatesNaiveSplits is the point of the subsystem:
// the optimized share must beat both fixed heuristics — 50/50 and
// proportional-to-mirror-count — evaluated with the identical inner
// block-coordinate solve, so the margin is purely the value of
// choosing the cross-level share well.
func TestSplitBudgetDominatesNaiveSplits(t *testing.T) {
	cfg := SplitConfig{
		Elements: testkit.RandomElements(7, 80, true),
		Budget:   24,
		Edges:    5,
	}
	best, err := SplitBudget(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, naive := range []struct {
		name  string
		share float64
	}{
		{"50/50", 0.5},
		{"proportional", 1 / float64(1+cfg.Edges)},
	} {
		base, err := EvalShare(cfg, naive.share)
		if err != nil {
			t.Fatal(err)
		}
		if best.PF < base.PF {
			t.Errorf("optimized PF %v below %s split's %v", best.PF, naive.name, base.PF)
		}
	}
}

// TestEvalShareSweepIsCoherent sanity-checks the share curve: interior
// evaluations succeed, every result is certified, and starving either
// tier hurts — the ends of the curve score below the middle (the
// chain multiplies the levels' factors, so a near-zero tier caps the
// product).
func TestEvalShareSweepIsCoherent(t *testing.T) {
	cfg := SplitConfig{
		Elements: testkit.RandomElements(3, 40, false),
		Budget:   16,
		Edges:    3,
	}
	pf := make(map[float64]float64)
	for _, share := range []float64{0.02, 0.3, 0.5, 0.7, 0.98} {
		s, err := EvalShare(cfg, share)
		if err != nil {
			t.Fatalf("share %v: %v", share, err)
		}
		certifySplit(t, freshness.FixedOrder{}, s)
		pf[share] = s.PF
	}
	if pf[0.02] >= pf[0.5] || pf[0.98] >= pf[0.5] {
		t.Errorf("starved tiers should hurt: PF(0.02)=%v PF(0.5)=%v PF(0.98)=%v",
			pf[0.02], pf[0.5], pf[0.98])
	}
}

func TestSplitValidation(t *testing.T) {
	elems := testkit.RandomElements(1, 5, false)
	cases := []SplitConfig{
		{Elements: nil, Budget: 1, Edges: 1},
		{Elements: elems, Budget: 0, Edges: 1},
		{Elements: elems, Budget: math.Inf(1), Edges: 1},
		{Elements: elems, Budget: 1, Edges: 0},
	}
	for i, cfg := range cases {
		if _, err := SplitBudget(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := EvalShare(SplitConfig{Elements: elems, Budget: 1, Edges: 1}, 0); err == nil {
		t.Error("share 0 accepted")
	}
	if _, err := EvalShare(SplitConfig{Elements: elems, Budget: 1, Edges: 1}, 1); err == nil {
		t.Error("share 1 accepted")
	}
}
