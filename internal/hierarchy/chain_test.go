package hierarchy

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"freshen/internal/core"
	"freshen/internal/httpmirror"
	"freshen/internal/resilience"
)

// killable is an HTTP server that can be stopped and restarted on the
// same address — the in-process analogue of kill -9 on a mirror
// daemon, for chaos-testing the chain's failover behavior.
type killable struct {
	t    *testing.T
	addr string
	h    http.Handler
	srv  *http.Server
}

func startKillable(t *testing.T, h http.Handler) *killable {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	k := &killable{t: t, addr: ln.Addr().String(), h: h}
	k.serve(ln)
	t.Cleanup(k.Stop)
	return k
}

func (k *killable) serve(ln net.Listener) {
	k.srv = &http.Server{Handler: k.h}
	go k.srv.Serve(ln)
}

func (k *killable) URL() string { return "http://" + k.addr }

func (k *killable) Stop() {
	if k.srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	k.srv.Shutdown(ctx)
	cancel()
	k.srv.Close()
	k.srv = nil
}

func (k *killable) Restart() {
	k.t.Helper()
	var ln net.Listener
	var err error
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln, err = net.Listen("tcp", k.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			k.t.Fatalf("rebinding %s: %v", k.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	k.serve(ln)
}

// fastRetry makes chain failures land in test time, not wall time.
var fastRetry = httpmirror.RetryPolicy{MaxAttempts: 1, Timeout: 2 * time.Second}

func newChainMirror(t *testing.T, up httpmirror.Source) *httpmirror.Mirror {
	t.Helper()
	m, err := httpmirror.New(context.Background(), httpmirror.Config{
		Upstream:    up,
		Plan:        core.Config{Bandwidth: 2},
		ReplanEvery: 50,
		Fault:       httpmirror.FaultPolicy{BreakerThreshold: 2, BreakerCooldown: 1},
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func getHeaders(t *testing.T, url string) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header
}

// TestEdgeChainRegionalOutage is the live two-level drill: origin →
// regional → edge, then the regional tier dies mid-run. The edge must
// keep serving every object from its local copies, flip to
// source-degraded with growing staleness headers, and re-converge to
// full mode once the regional comes back.
func TestEdgeChainRegionalOutage(t *testing.T) {
	origin, err := httpmirror.NewSimulatedSource([]float64{2, 1, 0.5}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(origin.Handler())
	defer originSrv.Close()

	regUp := httpmirror.NewSourceClient(originSrv.URL, originSrv.Client())
	regUp.SetRetryPolicy(fastRetry)
	regional := newChainMirror(t, regUp)
	regSrv := startKillable(t, regional.Handler())

	edgeUp := NewMirrorSource(regSrv.URL(), nil)
	edgeUp.SetRetryPolicy(fastRetry)
	edge := newChainMirror(t, edgeUp)
	edgeAPI := httptest.NewServer(edge.Handler())
	defer edgeAPI.Close()

	// Healthy steady state: both tiers step, the edge serves clean.
	now := 0.0
	stepBoth := func(periods int) {
		for i := 0; i < periods; i++ {
			now++
			origin.Advance(now)
			if _, err := regional.Step(now); err != nil {
				t.Fatal(err)
			}
			if _, err := edge.Step(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	stepBoth(3)
	if mode := edge.Mode(); mode != resilience.ModeFull {
		t.Fatalf("healthy chain: edge mode %v", mode)
	}
	if code, h := getHeaders(t, edgeAPI.URL+"/object/0"); code != http.StatusOK || h.Get("X-Mirror-Mode") != "" {
		t.Fatalf("healthy chain: code %d mode header %q", code, h.Get("X-Mirror-Mode"))
	}
	if st := edge.Status(); st.UpstreamURL != regSrv.URL() {
		t.Fatalf("edge upstream_url = %q, want %q", st.UpstreamURL, regSrv.URL())
	}

	// Kill the regional tier mid-run.
	regSrv.Stop()
	stepBoth(3)
	if mode := edge.Mode(); mode&resilience.ModeSourceDegraded == 0 {
		t.Fatalf("regional dead: edge mode %v, want source-degraded", mode)
	}
	// Every object still serves, 200, stale and saying so.
	var stale1 float64
	for id := 0; id < 3; id++ {
		code, h := getHeaders(t, edgeAPI.URL+"/object/"+strconv.Itoa(id))
		if code != http.StatusOK {
			t.Fatalf("object %d served %d during regional outage", id, code)
		}
		if got := h.Get("X-Mirror-Mode"); got != "source-degraded" {
			t.Errorf("object %d mode header %q", id, got)
		}
		s, err := strconv.ParseFloat(h.Get("X-Staleness-Periods"), 64)
		if err != nil || s <= 0 {
			t.Errorf("object %d staleness header %q", id, h.Get("X-Staleness-Periods"))
		}
		if id == 0 {
			stale1 = s
		}
	}
	// Staleness grows while the outage lasts.
	stepBoth(2)
	_, h := getHeaders(t, edgeAPI.URL+"/object/0")
	if s, _ := strconv.ParseFloat(h.Get("X-Staleness-Periods"), 64); s <= stale1 {
		t.Errorf("staleness did not grow during outage: %v then %v", stale1, s)
	}

	// Regional returns; the edge re-converges past its breaker
	// cooldown and drops the degradation headers.
	regSrv.Restart()
	for i := 0; i < 20 && edge.Mode() != resilience.ModeFull; i++ {
		stepBoth(1)
	}
	if mode := edge.Mode(); mode != resilience.ModeFull {
		t.Fatalf("edge did not re-converge after regional restart: mode %v", mode)
	}
	if _, h := getHeaders(t, edgeAPI.URL+"/object/0"); h.Get("X-Mirror-Mode") != "" {
		t.Errorf("recovered edge still sends mode header %q", h.Get("X-Mirror-Mode"))
	}
}

// TestCompoundedStaleness cuts the chain at the top instead: the
// origin dies, the regional goes source-degraded, and the edge — whose
// own refreshes against the regional keep succeeding — must still
// enter source-degraded mode via the upstream axis and add the
// regional's reported staleness to its own in the headers it serves.
func TestCompoundedStaleness(t *testing.T) {
	origin, err := httpmirror.NewSimulatedSource([]float64{2, 1}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := startKillable(t, origin.Handler())

	regUp := httpmirror.NewSourceClient(originSrv.URL(), nil)
	regUp.SetRetryPolicy(fastRetry)
	regional := newChainMirror(t, regUp)
	regAPI := httptest.NewServer(regional.Handler())
	defer regAPI.Close()

	edgeUp := NewMirrorSource(regAPI.URL, regAPI.Client())
	edgeUp.SetRetryPolicy(fastRetry)
	edge := newChainMirror(t, edgeUp)
	edgeAPI := httptest.NewServer(edge.Handler())
	defer edgeAPI.Close()

	now := 0.0
	stepBoth := func(periods int) {
		for i := 0; i < periods; i++ {
			now++
			origin.Advance(now)
			if _, err := regional.Step(now); err != nil {
				t.Fatal(err)
			}
			if _, err := edge.Step(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	stepBoth(2)

	// Origin dies: the regional degrades, the edge's own refreshes
	// keep succeeding against the still-serving regional.
	originSrv.Stop()
	stepBoth(4)
	if mode := regional.Mode(); mode&resilience.ModeSourceDegraded == 0 {
		t.Fatalf("origin dead: regional mode %v", mode)
	}
	if st := edge.Status(); st.BreakerState != "closed" {
		t.Fatalf("edge breaker %q; its upstream (the regional) is alive", st.BreakerState)
	}
	if mode := edge.Mode(); mode&resilience.ModeSourceDegraded == 0 {
		t.Fatal("edge did not compound the regional's degradation")
	}
	st := edge.Status()
	if !st.UpstreamDegraded {
		t.Error("edge status does not report upstream degradation")
	}

	// The edge's staleness header carries the chain total: its own
	// verification age plus what the regional reported. It must be at
	// least the regional's standing report for the same object.
	upStale := edgeUp.UpstreamStaleness(0)
	if upStale <= 0 {
		t.Fatal("observer recorded no upstream staleness")
	}
	_, h := getHeaders(t, edgeAPI.URL+"/object/0")
	if got := h.Get("X-Mirror-Mode"); got != "source-degraded" {
		t.Errorf("edge mode header %q", got)
	}
	s, err := strconv.ParseFloat(h.Get("X-Staleness-Periods"), 64)
	if err != nil {
		t.Fatalf("edge staleness header %q: %v", h.Get("X-Staleness-Periods"), err)
	}
	if s < upStale {
		t.Errorf("edge staleness %v below the upstream's reported %v: not compounded", s, upStale)
	}

	// Origin returns: the regional re-verifies, its headers clean up,
	// and the edge's upstream axis self-clears on the next polls.
	originSrv.Restart()
	for i := 0; i < 30 && (regional.Mode() != resilience.ModeFull || edge.Mode() != resilience.ModeFull); i++ {
		stepBoth(1)
	}
	if regional.Mode() != resilience.ModeFull {
		t.Fatalf("regional did not recover: %v", regional.Mode())
	}
	if edge.Mode() != resilience.ModeFull {
		t.Fatalf("edge upstream axis did not self-clear: %v", edge.Mode())
	}
	if st := edge.Status(); st.UpstreamDegraded {
		t.Error("recovered edge still reports upstream degradation")
	}
}
