package textio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"freshen/internal/freshness"
)

// elementHeader is the canonical CSV column set for element files.
var elementHeader = []string{"id", "lambda", "access_prob", "size"}

// WriteElements emits a mirror as CSV with columns
// id,lambda,access_prob,size.
func WriteElements(w io.Writer, elems []freshness.Element) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(elementHeader); err != nil {
		return err
	}
	for _, e := range elems {
		rec := []string{
			strconv.Itoa(e.ID),
			strconv.FormatFloat(e.Lambda, 'g', -1, 64),
			strconv.FormatFloat(e.AccessProb, 'g', -1, 64),
			strconv.FormatFloat(e.Size, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadElements parses a mirror from CSV written by WriteElements (or
// by hand: a header line id,lambda,access_prob,size followed by one
// row per element).
func ReadElements(r io.Reader) ([]freshness.Element, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(elementHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("textio: reading element header: %w", err)
	}
	for i, want := range elementHeader {
		if header[i] != want {
			return nil, fmt.Errorf("textio: element CSV column %d is %q, want %q", i, header[i], want)
		}
	}
	var elems []freshness.Element
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("textio: reading element row: %w", err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("textio: line %d: bad id %q", line, rec[0])
		}
		lambda, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("textio: line %d: bad lambda %q", line, rec[1])
		}
		p, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("textio: line %d: bad access_prob %q", line, rec[2])
		}
		size, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("textio: line %d: bad size %q", line, rec[3])
		}
		e := freshness.Element{ID: id, Lambda: lambda, AccessProb: p, Size: size}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("textio: line %d: %w", line, err)
		}
		elems = append(elems, e)
	}
	if len(elems) == 0 {
		return nil, fmt.Errorf("textio: element CSV has no rows")
	}
	return elems, nil
}
