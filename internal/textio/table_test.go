package textio

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", 42)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "1.5000") {
		t.Errorf("float not formatted to 4 decimals:\n%s", out)
	}
	if !strings.Contains(out, "42") {
		t.Error("missing int cell")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "alpha" is 5 wide, so the header row pads "name"
	// to 5 characters before the two-space gap.
	if !strings.Contains(out, "name   value") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableRenderNoTitle(t *testing.T) {
	tab := NewTable("", "x")
	tab.AddRow(1)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("empty title must not emit a blank line")
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.AddRow("x,y", 2.0)
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("missing CSV header: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if strings.Contains(out, "ignored") {
		t.Error("CSV must not contain the title")
	}
}

func TestFormatCell(t *testing.T) {
	if got := formatCell(float32(0.5)); got != "0.5000" {
		t.Errorf("float32 = %q", got)
	}
	if got := formatCell("s"); got != "s" {
		t.Errorf("string = %q", got)
	}
	if got := formatCell(true); got != "true" {
		t.Errorf("bool = %q", got)
	}
}
