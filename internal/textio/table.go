package textio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rectangular result set with named columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates an empty table with the given title and columns.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row. Cells are stringified with %v; float64
// values are formatted to four significant decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case float64:
		return strconv.FormatFloat(v, 'f', 4, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'f', 4, 32)
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Render writes the table as aligned, human-readable text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (headers first, no title line).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
