package textio

import (
	"strings"
	"testing"
)

// FuzzReadElements checks the element CSV parser never panics and
// that everything it accepts round-trips.
func FuzzReadElements(f *testing.F) {
	f.Add("id,lambda,access_prob,size\n0,1,0.5,1\n1,2,0.5,2\n")
	f.Add("id,lambda,access_prob,size\n")
	f.Add("")
	f.Add("id,lambda,access_prob,size\n0,abc,0.5,1\n")
	f.Add("id,lambda,access_prob,size\n0,1,0.5,1,extra\n")
	f.Add("id,lambda,access_prob,size\n-1,-1,-1,-1\n")
	f.Fuzz(func(t *testing.T, input string) {
		elems, err := ReadElements(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(elems) == 0 {
			t.Fatal("accepted input with zero elements")
		}
		var sb strings.Builder
		if err := WriteElements(&sb, elems); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := ReadElements(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(again) != len(elems) {
			t.Fatalf("round trip changed element count: %d -> %d", len(elems), len(again))
		}
		for i := range elems {
			if again[i] != elems[i] {
				t.Fatalf("round trip changed element %d: %+v -> %+v", i, elems[i], again[i])
			}
		}
	})
}
