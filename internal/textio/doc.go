// Package textio renders experiment results as aligned text tables
// (for the terminal) and CSV (for plotting), the two output formats of
// the repository's experiment harness and CLI.
package textio
