package textio

import (
	"strings"
	"testing"

	"freshen/internal/freshness"
)

func TestElementsRoundTrip(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 2.5, AccessProb: 0.75, Size: 1},
		{ID: 1, Lambda: 0, AccessProb: 0.25, Size: 3.25},
	}
	var sb strings.Builder
	if err := WriteElements(&sb, elems); err != nil {
		t.Fatal(err)
	}
	got, err := ReadElements(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d elements", len(got))
	}
	for i := range elems {
		if got[i] != elems[i] {
			t.Errorf("element %d: %+v != %+v", i, got[i], elems[i])
		}
	}
}

func TestReadElementsErrors(t *testing.T) {
	cases := []struct {
		name, csv string
	}{
		{"empty", ""},
		{"bad header", "a,b,c,d\n1,1,1,1\n"},
		{"no rows", "id,lambda,access_prob,size\n"},
		{"bad id", "id,lambda,access_prob,size\nx,1,0.5,1\n"},
		{"bad lambda", "id,lambda,access_prob,size\n1,x,0.5,1\n"},
		{"bad prob", "id,lambda,access_prob,size\n1,1,x,1\n"},
		{"bad size", "id,lambda,access_prob,size\n1,1,0.5,x\n"},
		{"invalid element", "id,lambda,access_prob,size\n1,-1,0.5,1\n"},
		{"wrong fields", "id,lambda,access_prob,size\n1,1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadElements(strings.NewReader(tc.csv)); err == nil {
				t.Errorf("ReadElements(%q) succeeded, want error", tc.csv)
			}
		})
	}
}
