package resilience

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzModeMachine drives the degraded-mode state machine through an
// arbitrary interleaving of breaker, quarantine, upstream-degradation,
// persist-failure, boot-probe, and recovery events decoded from the
// fuzz input, and
// asserts the machine's core invariants after every event:
//
//   - it never panics and never represents an invalid mode pair (each
//     axis is re-derivable from the signals fed in);
//   - persist-degraded implies the failure run reached the threshold;
//   - the snapshot backoff stays inside [min, max] while degraded and
//     is zero while healthy;
//   - monotone recovery signals always converge the machine back to
//     ModeFull, whatever chaos preceded them.
func FuzzModeMachine(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, 3, 0.5)
	f.Add([]byte{2, 2, 2, 2, 2, 5, 2, 2}, 1, 0.25)
	f.Add([]byte{3, 0, 2, 4, 1, 5, 2, 3}, -1, 2.0)
	f.Add([]byte{}, 0, 0.0)
	f.Fuzz(func(t *testing.T, events []byte, threshold int, quarThreshold float64) {
		if threshold > 1000 || threshold < -1000 {
			return // implausible config; the interesting space is small
		}
		cfg := ModeConfig{
			PersistFailureThreshold: threshold,
			QuarantineFracThreshold: quarThreshold,
		}
		m := NewMachine(cfg)
		eff := cfg.withDefaults()

		clock := 0.0
		check := func() {
			t.Helper()
			mode := m.Mode()
			// Axis consistency: the mode is exactly what the signals say.
			wantSource := m.breakerOpen || m.upstreamDegraded || m.quarFrac >= eff.QuarantineFracThreshold
			if got := mode&ModeSourceDegraded != 0; got != wantSource {
				t.Fatalf("source axis %v, signals say %v (breaker=%v upstream=%v quarFrac=%v)",
					got, wantSource, m.breakerOpen, m.upstreamDegraded, m.quarFrac)
			}
			if got := mode&ModePersistDegraded != 0; got != m.persistDegraded {
				t.Fatalf("persist axis %v, state says %v", got, m.persistDegraded)
			}
			if m.persistDegraded {
				if eff.PersistFailureThreshold < 0 {
					t.Fatal("persist-degraded with the axis disabled")
				}
				if m.consecPersistFails < eff.PersistFailureThreshold {
					t.Fatalf("persist-degraded with only %d consecutive failures (threshold %d)",
						m.consecPersistFails, eff.PersistFailureThreshold)
				}
				if m.backoff < eff.SnapshotBackoffMin || m.backoff > eff.SnapshotBackoffMax {
					t.Fatalf("backoff %v escaped [%v, %v]", m.backoff, eff.SnapshotBackoffMin, eff.SnapshotBackoffMax)
				}
			} else if m.backoff != 0 && m.consecPersistFails == 0 {
				t.Fatalf("healthy persist axis with leftover backoff %v", m.backoff)
			}
			if mode.String() == "" {
				t.Fatal("empty mode string")
			}
		}

		for i, ev := range events {
			clock += 0.5
			switch ev % 8 {
			case 0:
				m.SetBreakerOpen(true)
			case 1:
				m.SetBreakerOpen(false)
			case 2:
				m.PersistFailed(clock)
			case 3:
				m.PersistSucceeded()
			case 4:
				m.ForcePersistDegraded(clock)
			case 6:
				m.SetUpstreamDegraded(true)
			case 7:
				m.SetUpstreamDegraded(false)
			case 5:
				// Quarantine fraction from the following bytes, including
				// hostile values (NaN, Inf, negative).
				frac := 0.0
				if i+8 < len(events) {
					frac = math.Float64frombits(binary.LittleEndian.Uint64(events[i+1 : i+9]))
				} else {
					frac = float64(ev) / 10
				}
				m.SetQuarantineFrac(frac)
			}
			m.SnapshotDue(clock) // must never panic, any state
			check()
		}

		// Monotone convergence: recovery signals end in ModeFull.
		m.SetBreakerOpen(false)
		m.SetQuarantineFrac(0)
		m.SetUpstreamDegraded(false)
		m.PersistSucceeded()
		check()
		if mode := m.Mode(); mode != ModeFull {
			t.Fatalf("recovery signals did not converge: mode=%v", mode)
		}
		if !m.JournalEnabled() || !m.SnapshotDue(clock) {
			t.Fatal("recovered machine still withholding persistence")
		}
	})
}
