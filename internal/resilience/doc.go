// Package resilience keeps the mirror inside an explicit degradation
// envelope when capacity runs out or infrastructure fails.
//
// Two independent mechanisms live here, both dependency-free and both
// driven by the mirror:
//
//   - Limiter is an adaptive concurrency limiter (AIMD on observed
//     latency) with shed accounting. The serving layer admits a request
//     only while the in-flight count is under the current limit;
//     everything past it is shed immediately with a 503 and a
//     Retry-After hint instead of queueing into latency collapse. The
//     limit probes upward additively while latencies stay inside the
//     target and backs off multiplicatively the moment they do not.
//
//   - Machine is the degraded-mode state machine. The mirror's mode is
//     a pair of orthogonal axes — the source axis (breaker open or too
//     much of the catalog quarantined → serve stale deliberately, with
//     explicit staleness signals) and the persist axis (consecutive
//     persist failures → read-only: stop journaling, rate-limit
//     snapshot attempts with exponential backoff, recover on the first
//     successful fsync). Both axes are pure functions of the signals
//     fed in, so invalid mode pairs are unrepresentable and the fuzz
//     target can drive arbitrary event interleavings.
//
// Neither type takes locks on behalf of its caller: Limiter is fully
// atomic (safe on the zero-allocation read path), Machine is mutated
// only under the mirror's state lock.
package resilience
