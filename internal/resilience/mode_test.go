package resilience

import "testing"

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeFull:                                 "full",
		ModeSourceDegraded:                       "source-degraded",
		ModePersistDegraded:                      "persist-degraded",
		ModeSourceDegraded | ModePersistDegraded: "source-degraded+persist-degraded",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("%#x.String() = %q, want %q", uint32(mode), got, want)
		}
	}
}

func TestMachineSourceAxis(t *testing.T) {
	m := NewMachine(ModeConfig{})
	if m.Mode() != ModeFull {
		t.Fatalf("fresh machine mode = %v", m.Mode())
	}
	mode, changed := m.SetBreakerOpen(true)
	if !changed || mode != ModeSourceDegraded {
		t.Fatalf("breaker open: mode=%v changed=%v", mode, changed)
	}
	// Idempotent signal: no transition.
	if _, changed := m.SetBreakerOpen(true); changed {
		t.Error("repeated breaker-open reported a transition")
	}
	mode, changed = m.SetBreakerOpen(false)
	if !changed || mode != ModeFull {
		t.Fatalf("breaker closed: mode=%v changed=%v", mode, changed)
	}

	// Quarantine mass alone crosses at the threshold.
	if mode, changed := m.SetQuarantineFrac(0.49); changed || mode != ModeFull {
		t.Errorf("below threshold: mode=%v changed=%v", mode, changed)
	}
	if mode, changed := m.SetQuarantineFrac(0.5); !changed || mode != ModeSourceDegraded {
		t.Errorf("at threshold: mode=%v changed=%v", mode, changed)
	}
	if mode, _ := m.SetQuarantineFrac(0); mode != ModeFull {
		t.Errorf("cleared quarantine: mode=%v", mode)
	}
	if got := m.Transitions(); got != 4 {
		t.Errorf("transitions = %d, want 4", got)
	}
}

func TestMachinePersistAxis(t *testing.T) {
	m := NewMachine(ModeConfig{PersistFailureThreshold: 3, SnapshotBackoffMin: 1, SnapshotBackoffMax: 4})
	for i := 1; i <= 2; i++ {
		if mode, changed := m.PersistFailed(float64(i)); changed || mode != ModeFull {
			t.Fatalf("failure %d below threshold: mode=%v changed=%v", i, mode, changed)
		}
		if !m.JournalEnabled() {
			t.Fatalf("journaling off below the threshold")
		}
	}
	mode, changed := m.PersistFailed(3)
	if !changed || mode != ModePersistDegraded {
		t.Fatalf("threshold failure: mode=%v changed=%v", mode, changed)
	}
	if m.JournalEnabled() {
		t.Error("journaling still on in persist-degraded mode")
	}
	if m.ConsecutivePersistFailures() != 3 {
		t.Errorf("consecutive failures = %d, want 3", m.ConsecutivePersistFailures())
	}

	// Backoff: first retry one period out, doubling per failure, capped.
	if m.SnapshotDue(3.5) {
		t.Error("snapshot due inside the first backoff window")
	}
	if !m.SnapshotDue(4) {
		t.Error("snapshot not due after the backoff elapsed")
	}
	m.PersistFailed(4) // probe failed: backoff 2
	if got := m.SnapshotBackoff(); got != 2 {
		t.Errorf("backoff = %v, want 2", got)
	}
	if m.SnapshotDue(5.9) {
		t.Error("snapshot due inside the doubled window")
	}
	m.PersistFailed(6)  // backoff 4
	m.PersistFailed(10) // backoff capped at 4
	if got := m.SnapshotBackoff(); got != 4 {
		t.Errorf("backoff = %v, want the cap 4", got)
	}

	// One successful fsync clears everything.
	mode, changed = m.PersistSucceeded()
	if !changed || mode != ModeFull {
		t.Fatalf("success: mode=%v changed=%v", mode, changed)
	}
	if !m.JournalEnabled() || m.ConsecutivePersistFailures() != 0 || m.SnapshotBackoff() != 0 {
		t.Errorf("persist axis not fully cleared: journal=%v fails=%d backoff=%v",
			m.JournalEnabled(), m.ConsecutivePersistFailures(), m.SnapshotBackoff())
	}
	if !m.SnapshotDue(0) {
		t.Error("healthy machine withholding snapshots")
	}
}

func TestMachineForcePersistDegraded(t *testing.T) {
	m := NewMachine(ModeConfig{})
	mode, changed := m.ForcePersistDegraded(2)
	if !changed || mode != ModePersistDegraded {
		t.Fatalf("force: mode=%v changed=%v", mode, changed)
	}
	if m.ConsecutivePersistFailures() < 3 {
		t.Errorf("forced entry left consecutive failures at %d", m.ConsecutivePersistFailures())
	}
	// Idempotent.
	if _, changed := m.ForcePersistDegraded(3); changed {
		t.Error("repeated force reported a transition")
	}
	if mode, _ := m.PersistSucceeded(); mode != ModeFull {
		t.Errorf("recovery after force: mode=%v", mode)
	}
}

func TestMachinePersistAxisDisabled(t *testing.T) {
	m := NewMachine(ModeConfig{PersistFailureThreshold: -1})
	for i := 0; i < 100; i++ {
		if mode, changed := m.PersistFailed(float64(i)); changed || mode != ModeFull {
			t.Fatalf("disabled persist axis degraded: mode=%v", mode)
		}
	}
	if _, changed := m.ForcePersistDegraded(1); changed {
		t.Error("force degraded a disabled persist axis")
	}
	if !m.JournalEnabled() {
		t.Error("journaling off with the persist axis disabled")
	}
}

func TestMachineAxesCompose(t *testing.T) {
	m := NewMachine(ModeConfig{})
	m.SetBreakerOpen(true)
	m.ForcePersistDegraded(1)
	if mode := m.Mode(); mode != ModeSourceDegraded|ModePersistDegraded {
		t.Fatalf("composed mode = %v", mode)
	}
	if mode.String() == "" { // exercised above; here: the pair renders
		t.Fatal("empty mode string")
	}
	m.PersistSucceeded()
	if mode := m.Mode(); mode != ModeSourceDegraded {
		t.Errorf("after persist recovery: mode = %v", mode)
	}
	m.SetBreakerOpen(false)
	if mode := m.Mode(); mode != ModeFull {
		t.Errorf("after full recovery: mode = %v", mode)
	}
}

var mode Mode // sink

func BenchmarkMachineMode(b *testing.B) {
	m := NewMachine(ModeConfig{})
	m.SetBreakerOpen(true)
	for i := 0; i < b.N; i++ {
		mode = m.Mode()
	}
}

// TestMachineUpstreamAxis: in a hierarchical chain the upstream
// mirror's own degradation folds into the downstream source axis, ORed
// with the breaker and quarantine signals — clearing one signal while
// another still holds must not clear the mode.
func TestMachineUpstreamAxis(t *testing.T) {
	m := NewMachine(ModeConfig{})
	mode, changed := m.SetUpstreamDegraded(true)
	if !changed || mode != ModeSourceDegraded {
		t.Fatalf("upstream degraded: mode=%v changed=%v", mode, changed)
	}
	if _, changed := m.SetUpstreamDegraded(true); changed {
		t.Error("repeated upstream-degraded reported a transition")
	}
	// The breaker opening on top of upstream degradation is not a
	// transition; clearing the upstream signal alone is not either.
	if _, changed := m.SetBreakerOpen(true); changed {
		t.Error("breaker open under upstream degradation reported a transition")
	}
	if mode, changed := m.SetUpstreamDegraded(false); changed || mode != ModeSourceDegraded {
		t.Errorf("upstream cleared with breaker open: mode=%v changed=%v", mode, changed)
	}
	if mode, changed := m.SetBreakerOpen(false); !changed || mode != ModeFull {
		t.Errorf("all signals cleared: mode=%v changed=%v", mode, changed)
	}
}
