package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives the limiter's cooldown deterministically.
type fakeClock struct{ nanos int64 }

func (c *fakeClock) now() int64              { return c.nanos }
func (c *fakeClock) advance(d time.Duration) { c.nanos += int64(d) }

func newTestLimiter(cfg LimiterConfig) (*Limiter, *fakeClock) {
	l := NewLimiter(cfg)
	clk := &fakeClock{nanos: int64(time.Hour)} // away from zero so the first cooldown check passes
	l.nowNanos = clk.now
	return l, clk
}

func TestLimiterAdmitsUpToLimitAndSheds(t *testing.T) {
	l, _ := newTestLimiter(LimiterConfig{MaxInflight: 3, MinInflight: 1, InitialInflight: 3})
	for i := 0; i < 3; i++ {
		if !l.Acquire() {
			t.Fatalf("acquire %d shed below the limit", i)
		}
	}
	if l.Acquire() {
		t.Fatal("acquire past the limit admitted")
	}
	if got := l.Shed(); got != 1 {
		t.Errorf("shed count = %d, want 1", got)
	}
	if got := l.Admitted(); got != 3 {
		t.Errorf("admitted count = %d, want 3", got)
	}
	l.Release(time.Millisecond)
	if !l.Acquire() {
		t.Fatal("freed slot not reusable")
	}
}

func TestLimiterMultiplicativeDecrease(t *testing.T) {
	l, clk := newTestLimiter(LimiterConfig{
		MaxInflight: 100, InitialInflight: 100, MinInflight: 2,
		TargetLatency: 10 * time.Millisecond, DecreaseFactor: 0.5,
		Cooldown: 100 * time.Millisecond,
	})
	if !l.Acquire() {
		t.Fatal("acquire failed")
	}
	l.Release(50 * time.Millisecond) // overload signal
	if got := l.Limit(); got != 50 {
		t.Errorf("limit after one decrease = %d, want 50", got)
	}
	// Inside the cooldown: a second slow completion costs nothing more.
	l.Acquire()
	l.Release(50 * time.Millisecond)
	if got := l.Limit(); got != 50 {
		t.Errorf("limit decreased inside the cooldown: %d", got)
	}
	// Past the cooldown it halves again, and keeps halving down to the
	// floor but never through it.
	for i := 0; i < 10; i++ {
		clk.advance(200 * time.Millisecond)
		l.Acquire()
		l.Release(50 * time.Millisecond)
	}
	if got := l.Limit(); got != 2 {
		t.Errorf("limit = %d, want the floor 2", got)
	}
}

func TestLimiterAdditiveIncrease(t *testing.T) {
	l, clk := newTestLimiter(LimiterConfig{
		MaxInflight: 8, InitialInflight: 8, MinInflight: 2,
		TargetLatency: 10 * time.Millisecond, DecreaseFactor: 0.5,
		IncreaseEvery: 4, Cooldown: 100 * time.Millisecond,
	})
	l.Acquire()
	l.Release(time.Second) // collapse to 4
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit = %d, want 4", got)
	}
	clk.advance(time.Second)
	// 4 fast completions buy one slot back; repeat to the ceiling.
	for round := 0; round < 40; round++ {
		l.Acquire()
		l.Release(time.Millisecond)
	}
	if got := l.Limit(); got != 8 {
		t.Errorf("limit recovered to %d, want the ceiling 8", got)
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxInflight: -1})
	for i := 0; i < 10_000; i++ {
		if !l.Acquire() {
			t.Fatal("disabled limiter shed a request")
		}
	}
	if !l.Disabled() {
		t.Error("Disabled() = false")
	}
	if got := l.Limit(); got != -1 {
		t.Errorf("disabled Limit() = %d, want -1", got)
	}
}

func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(LimiterConfig{})
	if l.Disabled() {
		t.Fatal("zero-value config disabled the limiter")
	}
	if got := l.Limit(); got != 512 {
		t.Errorf("default limit = %d, want 512", got)
	}
}

// TestLimiterConcurrent hammers the limiter from many goroutines: the
// inflight count must return to zero, admitted+shed must equal the
// attempt total, and the limit must stay inside its bounds. Run under
// -race this is the limiter's memory-model test.
func TestLimiterConcurrent(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxInflight: 16, MinInflight: 2, TargetLatency: time.Nanosecond})
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if l.Acquire() {
					// Alternate fast and slow completions so both AIMD
					// branches run concurrently.
					if i%2 == 0 {
						l.Release(0)
					} else {
						l.Release(time.Hour)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := l.Inflight(); got != 0 {
		t.Errorf("inflight = %d after all releases, want 0", got)
	}
	if total := l.Admitted() + l.Shed(); total != workers*perWorker {
		t.Errorf("admitted+shed = %d, want %d", total, workers*perWorker)
	}
	if lim := l.Limit(); lim < 2 || lim > 16 {
		t.Errorf("limit %d escaped [2, 16]", lim)
	}
}
