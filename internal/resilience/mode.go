package resilience

import "math"

// Mode is the mirror's degradation mode: a bitmask over two orthogonal
// axes. ModeFull (no bits) is the healthy state.
type Mode uint32

const (
	// ModeFull: every subsystem healthy; the envelope is the plan.
	ModeFull Mode = 0
	// ModeSourceDegraded: the upstream is effectively unavailable
	// (breaker open/half-open, or too much of the catalog quarantined).
	// The mirror deliberately serves stale copies and says so.
	ModeSourceDegraded Mode = 1 << 0
	// ModePersistDegraded: the state disk is failing. The mirror is
	// read-only durability-wise — journaling stops, snapshot attempts
	// are rate-limited with exponential backoff — but keeps serving.
	ModePersistDegraded Mode = 1 << 1
)

// String renders the mode pair ("full", "source-degraded",
// "persist-degraded", "source-degraded+persist-degraded").
func (m Mode) String() string {
	switch m & (ModeSourceDegraded | ModePersistDegraded) {
	case ModeFull:
		return "full"
	case ModeSourceDegraded:
		return "source-degraded"
	case ModePersistDegraded:
		return "persist-degraded"
	default:
		return "source-degraded+persist-degraded"
	}
}

// ModeConfig tunes the degraded-mode state machine. The zero value
// uses the documented defaults.
type ModeConfig struct {
	// PersistFailureThreshold is how many consecutive persist failures
	// (journal appends or snapshot commits) enter persist-degraded
	// mode; 0 means 3, negative disables the persist axis.
	PersistFailureThreshold int
	// QuarantineFracThreshold is the fraction of the catalog that must
	// be quarantined to count as source degradation on its own (the
	// breaker opening always does); values <= 0 mean 0.5 (a non-positive
	// threshold would make the condition vacuously permanent), values
	// above 1 make quarantine mass alone never trigger it.
	QuarantineFracThreshold float64
	// SnapshotBackoffMin/Max bound the exponential backoff (in
	// periods) between snapshot attempts while persist-degraded;
	// 0 means 1 and 32.
	SnapshotBackoffMin float64
	SnapshotBackoffMax float64
}

func (c ModeConfig) withDefaults() ModeConfig {
	if c.PersistFailureThreshold == 0 {
		c.PersistFailureThreshold = 3
	}
	if c.QuarantineFracThreshold <= 0 || math.IsNaN(c.QuarantineFracThreshold) {
		c.QuarantineFracThreshold = 0.5
	}
	if c.SnapshotBackoffMin <= 0 {
		c.SnapshotBackoffMin = 1
	}
	if c.SnapshotBackoffMax < c.SnapshotBackoffMin {
		c.SnapshotBackoffMax = math.Max(32, c.SnapshotBackoffMin)
	}
	return c
}

// Machine is the degraded-mode state machine. The source axis is a
// pure function of the last breaker and quarantine signals fed in, and
// the persist axis of the consecutive-failure count since the last
// successful fsync — so an invalid mode pair is unrepresentable: there
// is no stored mode to drift out of sync. Machine is not safe for
// concurrent use; the mirror mutates it under its state lock and
// publishes the mode through an atomic word for lock-free readers.
type Machine struct {
	cfg ModeConfig

	breakerOpen      bool
	quarFrac         float64
	upstreamDegraded bool

	consecPersistFails int
	persistDegraded    bool
	backoff            float64 // current snapshot retry backoff, periods
	nextSnapshotAt     float64 // period clock before which snapshots are withheld

	transitions int
}

// NewMachine builds a machine in ModeFull.
func NewMachine(cfg ModeConfig) *Machine {
	return &Machine{cfg: cfg.withDefaults()}
}

// Mode derives the current mode pair from the signals.
func (m *Machine) Mode() Mode {
	var mode Mode
	if m.breakerOpen || m.upstreamDegraded || m.quarFrac >= m.cfg.QuarantineFracThreshold {
		mode |= ModeSourceDegraded
	}
	if m.persistDegraded {
		mode |= ModePersistDegraded
	}
	return mode
}

// note wraps a signal mutation, reporting the resulting mode and
// whether it changed (and counting the transition when it did).
func (m *Machine) note(mutate func()) (Mode, bool) {
	before := m.Mode()
	mutate()
	after := m.Mode()
	if after != before {
		m.transitions++
	}
	return after, after != before
}

// SetBreakerOpen feeds the circuit breaker's condition (open or
// half-open both count: the upstream is not yet trusted again).
func (m *Machine) SetBreakerOpen(open bool) (Mode, bool) {
	return m.note(func() { m.breakerOpen = open })
}

// SetUpstreamDegraded feeds the upstream mirror's own degradation
// signal: in a hierarchical chain, a downstream mirror whose source is
// itself a source-degraded mirror is serving compounded staleness and
// must say so, even while its own breaker is closed — the upstream is
// reachable and answering, it is just answering with stale copies.
func (m *Machine) SetUpstreamDegraded(degraded bool) (Mode, bool) {
	return m.note(func() { m.upstreamDegraded = degraded })
}

// SetQuarantineFrac feeds the quarantined fraction of the catalog.
// Out-of-range and NaN inputs clamp into [0, 1].
func (m *Machine) SetQuarantineFrac(frac float64) (Mode, bool) {
	if math.IsNaN(frac) || frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	return m.note(func() { m.quarFrac = frac })
}

// PersistFailed feeds one failed persist operation at period-clock
// time now. Crossing the threshold enters persist-degraded mode;
// failures while already degraded (the snapshot probes) double the
// retry backoff up to the cap.
func (m *Machine) PersistFailed(now float64) (Mode, bool) {
	return m.note(func() {
		if m.cfg.PersistFailureThreshold < 0 {
			return
		}
		m.consecPersistFails++
		switch {
		case m.persistDegraded:
			m.backoff = math.Min(m.backoff*2, m.cfg.SnapshotBackoffMax)
			m.nextSnapshotAt = now + m.backoff
		case m.consecPersistFails >= m.cfg.PersistFailureThreshold:
			m.enterPersistDegraded(now)
		}
	})
}

// ForcePersistDegraded enters persist-degraded mode directly — the
// boot-time fsync probe failing is already proof enough, no need to
// accumulate threshold failures against a dead disk.
func (m *Machine) ForcePersistDegraded(now float64) (Mode, bool) {
	return m.note(func() {
		if m.cfg.PersistFailureThreshold < 0 {
			return
		}
		if m.consecPersistFails < m.cfg.PersistFailureThreshold {
			m.consecPersistFails = m.cfg.PersistFailureThreshold
		}
		if !m.persistDegraded {
			m.enterPersistDegraded(now)
		}
	})
}

func (m *Machine) enterPersistDegraded(now float64) {
	m.persistDegraded = true
	m.backoff = m.cfg.SnapshotBackoffMin
	m.nextSnapshotAt = now + m.backoff
}

// PersistSucceeded feeds one successful persist fsync. A single
// success clears the persist axis completely: the disk demonstrably
// works again, so journaling resumes and the backoff resets.
func (m *Machine) PersistSucceeded() (Mode, bool) {
	return m.note(func() {
		m.consecPersistFails = 0
		m.persistDegraded = false
		m.backoff = 0
		m.nextSnapshotAt = 0
	})
}

// JournalEnabled reports whether per-record journaling should run. In
// persist-degraded mode it must not: every append would eat an fsync
// timeout against a dead disk at refresh rate.
func (m *Machine) JournalEnabled() bool { return !m.persistDegraded }

// SnapshotDue reports whether a snapshot attempt is allowed at
// period-clock time now. Healthy persist axis: always (the cadence is
// the caller's). Degraded: only when the current backoff has elapsed —
// the attempt that succeeds is the fsync that clears the mode.
func (m *Machine) SnapshotDue(now float64) bool {
	if !m.persistDegraded {
		return true
	}
	return now >= m.nextSnapshotAt
}

// ConsecutivePersistFailures is the failure run length since the last
// successful persist fsync.
func (m *Machine) ConsecutivePersistFailures() int { return m.consecPersistFails }

// SnapshotBackoff is the current snapshot retry backoff in periods
// (0 while the persist axis is healthy).
func (m *Machine) SnapshotBackoff() float64 { return m.backoff }

// Transitions is the lifetime count of mode changes.
func (m *Machine) Transitions() int { return m.transitions }
