package resilience

import (
	"strconv"
	"sync/atomic"
	"time"
)

// LimiterConfig tunes the adaptive concurrency limiter. The zero value
// enables the limiter with the documented defaults; MaxInflight < 0
// disables admission control entirely (every Acquire succeeds).
type LimiterConfig struct {
	// MaxInflight is the hard ceiling on concurrently admitted
	// requests; the adaptive limit never probes past it. 0 means 512,
	// negative disables the limiter.
	MaxInflight int
	// MinInflight is the floor the multiplicative decrease can reach;
	// the limiter never sheds everything. 0 means 2.
	MinInflight int
	// InitialInflight is the starting limit; 0 means MaxInflight (the
	// limiter is optimistic and backs off on evidence).
	InitialInflight int
	// TargetLatency is the per-request latency above which a completion
	// counts as an overload signal; 0 means 50ms.
	TargetLatency time.Duration
	// DecreaseFactor is the multiplicative backoff applied to the limit
	// on an overload signal; 0 means 0.75. Must be in (0, 1).
	DecreaseFactor float64
	// IncreaseEvery is how many consecutive in-target completions buy
	// one additional slot (additive increase); 0 means 16.
	IncreaseEvery int
	// Cooldown is the minimum interval between multiplicative
	// decreases, so one burst of slow completions costs one backoff,
	// not one per completion; 0 means 100ms.
	Cooldown time.Duration
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.MaxInflight == 0 {
		c.MaxInflight = 512
	}
	if c.MinInflight <= 0 {
		c.MinInflight = 2
	}
	if c.MinInflight > c.MaxInflight && c.MaxInflight > 0 {
		c.MinInflight = c.MaxInflight
	}
	if c.InitialInflight <= 0 || c.InitialInflight > c.MaxInflight {
		c.InitialInflight = c.MaxInflight
	}
	if c.TargetLatency <= 0 {
		c.TargetLatency = 50 * time.Millisecond
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.75
	}
	if c.IncreaseEvery <= 0 {
		c.IncreaseEvery = 16
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	return c
}

// Limiter is an adaptive concurrency limiter: admission is one atomic
// add and one load, release is an atomic add plus the AIMD update —
// no locks, no allocation, safe for the zero-alloc serving path.
//
// The control loop is AIMD on observed latency: completions faster
// than the target latency accumulate toward an additive +1 on the
// limit; a completion slower than the target multiplies the limit by
// DecreaseFactor (at most once per Cooldown). The limit always stays
// inside [MinInflight, MaxInflight].
type Limiter struct {
	cfg      LimiterConfig
	disabled bool

	inflight atomic.Int64
	limit    atomic.Int64
	good     atomic.Int64 // consecutive in-target completions
	lastDec  atomic.Int64 // nanos of the last multiplicative decrease

	admitted atomic.Uint64
	shed     atomic.Uint64

	// nowNanos is the monotonic-ish clock the cooldown runs on;
	// injectable so tests drive the control loop deterministically.
	nowNanos func() int64
}

// NewLimiter builds a limiter from cfg (zero value: enabled defaults;
// cfg.MaxInflight < 0: disabled).
func NewLimiter(cfg LimiterConfig) *Limiter {
	l := &Limiter{disabled: cfg.MaxInflight < 0, nowNanos: func() int64 { return time.Now().UnixNano() }}
	l.cfg = cfg.withDefaults()
	l.limit.Store(int64(l.cfg.InitialInflight))
	return l
}

// Acquire admits or sheds one request. Admitted requests must Release
// exactly once; shed requests must not.
func (l *Limiter) Acquire() bool {
	if l.disabled {
		return true
	}
	if l.inflight.Add(1) > l.limit.Load() {
		l.inflight.Add(-1)
		l.shed.Add(1)
		return false
	}
	l.admitted.Add(1)
	return true
}

// Release completes one admitted request, feeding its latency into the
// AIMD control loop.
func (l *Limiter) Release(latency time.Duration) {
	if l.disabled {
		return
	}
	l.inflight.Add(-1)
	if latency > l.cfg.TargetLatency {
		l.good.Store(0)
		now := l.nowNanos()
		last := l.lastDec.Load()
		// One decrease per cooldown window; the CAS loser's signal is
		// deliberately dropped — the winner already backed off for it.
		if now-last >= int64(l.cfg.Cooldown) && l.lastDec.CompareAndSwap(last, now) {
			cur := l.limit.Load()
			next := int64(float64(cur) * l.cfg.DecreaseFactor)
			if next < int64(l.cfg.MinInflight) {
				next = int64(l.cfg.MinInflight)
			}
			l.limit.Store(next)
		}
		return
	}
	if l.good.Add(1) >= int64(l.cfg.IncreaseEvery) {
		l.good.Store(0)
		if cur := l.limit.Load(); cur < int64(l.cfg.MaxInflight) {
			// A lost CAS means a concurrent adjustment already moved the
			// limit; either way it stays in bounds.
			l.limit.CompareAndSwap(cur, cur+1)
		}
	}
}

// Limit is the current adaptive concurrency limit.
func (l *Limiter) Limit() int64 {
	if l.disabled {
		return -1
	}
	return l.limit.Load()
}

// Inflight is the number of currently admitted requests.
func (l *Limiter) Inflight() int64 { return l.inflight.Load() }

// Admitted is the lifetime count of admitted requests.
func (l *Limiter) Admitted() uint64 { return l.admitted.Load() }

// Shed is the lifetime count of shed requests.
func (l *Limiter) Shed() uint64 { return l.shed.Load() }

// Disabled reports whether admission control is off.
func (l *Limiter) Disabled() bool { return l.disabled }

// RetryAfterSeconds is the base Retry-After hint attached to shed
// responses: the limiter recovers capacity on the next completions,
// so one second is an honest "immediately, but not in this burst".
const RetryAfterSeconds = 1

// RetryAfterSpread is how many distinct jittered Retry-After values a
// 503 can carry: RetryAfterSeconds .. RetryAfterSeconds+Spread-1.
// Without jitter, every client shed or turned away by a dead shard in
// the same burst retries on the same second and re-stampedes a server
// (or a recovering shard) that just found its feet.
const RetryAfterSpread = 3

// retryAfterValues are the pre-built one-element header values for
// the jittered hints, so attaching one costs no allocation on the
// shed path ("Retry-After" is already canonical MIME form; direct map
// assignment matches what Header().Set would store).
var retryAfterValues = func() [RetryAfterSpread][]string {
	var vs [RetryAfterSpread][]string
	for i := range vs {
		vs[i] = []string{strconv.Itoa(RetryAfterSeconds + i)}
	}
	return vs
}()

// retrySeq drives the jitter: a Weyl sequence (odd multiplicative
// step) cycles through all residues with consecutive draws spread far
// apart, so concurrent shed responses in one burst get staggered
// hints. Cheaper than a real RNG and race-free by construction.
var retrySeq atomic.Uint32

// RetryAfterHeader returns a pre-built jittered Retry-After header
// value in [RetryAfterSeconds, RetryAfterSeconds+RetryAfterSpread).
// Allocation-free; safe for concurrent use.
func RetryAfterHeader() []string {
	return retryAfterValues[retrySeq.Add(2654435761)%RetryAfterSpread]
}
