package estimate

import (
	"fmt"
	"math"
)

// Estimator kinds, selectable via New (and the daemon's -estimator
// flag). "history" is the original batch tracker: it stores every poll
// and re-solves the exact MLE at each learn pass. The other three are
// the online family of Avrachenkov, Patil & Thoppe (PAPERS.md): O(1)
// state per element, one update per censored observation.
const (
	KindHistory = "history"
	KindNaive   = "naive"
	KindSA      = "sa"
	KindMLE     = "mle"
)

// Kinds lists every estimator kind New accepts.
func Kinds() []string { return []string{KindHistory, KindNaive, KindSA, KindMLE} }

// Params tunes an estimator family. The zero value applies no prior,
// no floor and no cap — the historical tracker behavior.
type Params struct {
	// Prior is the change rate reported for elements with no
	// observations yet, and the online estimators' starting point.
	Prior float64
	// Floor is a lower bound applied to every reported estimate. A
	// positive floor fixes the cold-start starvation bias: an element
	// whose polls observed no change has MLE λ̂ = 0, which a
	// freshness-maximizing scheduler answers with zero budget — so the
	// element is never polled again and the estimate can never recover.
	// Flooring at a small prior keeps the scheduler probing.
	Floor float64
	// Cap is an upper bound on every reported estimate; 0 means 1e9.
	Cap float64
}

func (p Params) withDefaults() Params {
	if p.Cap == 0 {
		p.Cap = 1e9
	}
	return p
}

// apply maps a raw estimate to the reported one: floored (the
// cold-start fix) and, when a cap is set, capped.
func (p Params) apply(x float64) float64 {
	if x < p.Floor {
		x = p.Floor
	}
	if p.Cap > 0 && x > p.Cap {
		x = p.Cap
	}
	return x
}

// Estimate is one element's current change-rate knowledge: the point
// estimate, its asymptotic standard error, and how many censored
// observations it is built on.
type Estimate struct {
	// Lambda is the point estimate λ̂ (finite, ≥ 0).
	Lambda float64
	// StdErr is the asymptotic standard error 1/√J, where J is the
	// Fisher information accumulated over the element's observations
	// (evaluated at the running estimate). +Inf when no observation has
	// carried information yet.
	StdErr float64
	// Polls counts the observations folded in.
	Polls int
}

// Uncertainty maps the estimate to a scale-free score in [0, 1]: the
// standard error's share of the total scale StdErr + λ̂. An unobserved
// element scores 1 (maximally uncertain); a long-polled element's
// score falls toward 0 as information accumulates. The explore policy
// water-fills its probe budget proportionally to this score.
func (e Estimate) Uncertainty() float64 {
	if e.Polls == 0 || math.IsInf(e.StdErr, 1) {
		return 1
	}
	den := e.StdErr + e.Lambda
	if !(den > 0) {
		return 1
	}
	u := e.StdErr / den
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// UncertaintyAt is Uncertainty with the denominator floored at a
// planning-relevant rate scale: StdErr/(StdErr + λ̂ + scale). The pure
// relative score never converges for near-static elements — StdErr
// shrinks like √(λ̂/T), so StdErr/λ̂ stays large whenever λ̂ ≈ 0 — which
// would keep an explore policy probing elements whose freshness cannot
// improve under any plan. Flooring the scale at the smallest rate the
// planner cares about lets "confidently negligible" elements release
// their probe share. A non-positive or non-finite scale reduces to
// Uncertainty.
func (e Estimate) UncertaintyAt(scale float64) float64 {
	if !(scale > 0) || math.IsInf(scale, 1) {
		return e.Uncertainty()
	}
	if e.Polls == 0 || math.IsInf(e.StdErr, 1) {
		return 1
	}
	den := e.StdErr + e.Lambda + scale
	if !(den > 0) {
		return 1
	}
	u := e.StdErr / den
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Estimator is a per-element change-rate estimator consuming the
// censored poll stream a mirror actually observes: for each refresh,
// only whether the element changed since the last successful poll and
// how much time elapsed — never how many times it changed.
type Estimator interface {
	// Kind names the estimator family (see Kinds).
	Kind() string
	// Elements returns the catalog size the estimator tracks.
	Elements() int
	// Observe folds in one censored observation. It rejects out-of-range
	// elements and non-positive or non-finite elapsed times with an
	// error and never panics.
	Observe(element int, elapsed float64, changed bool) error
	// Estimate returns the element's current point estimate with its
	// uncertainty. Out-of-range elements report a zero-poll estimate.
	Estimate(element int) Estimate
	// Estimates returns every element's λ̂, using fallback for elements
	// without observations and applying the configured floor and cap.
	Estimates(fallback float64) ([]float64, error)
	// ExportState returns the estimator's durable state. The history
	// kind exports no per-element state here — its poll histories,
	// persisted separately, are the state (see Tracker.Export).
	ExportState() State
}

// State is an estimator's durable form: O(1) numbers per element for
// the online family, so a restart resumes convergence exactly where
// the crash interrupted it instead of re-learning from scratch.
type State struct {
	Kind     string
	Elements []ElementState
}

// ElementState is one element's online-estimator state.
type ElementState struct {
	// Lambda is the running estimate x_k.
	Lambda float64
	// Info is the accumulated Fisher information J_k.
	Info float64
	// Polls and Changes count the observations and detections.
	Polls   int
	Changes int
	// SumElapsed is the total observed time Σ τ_k.
	SumElapsed float64
}

// New builds an estimator of the given kind for n elements.
func New(kind string, n int, p Params) (Estimator, error) {
	switch kind {
	case KindHistory:
		t, err := NewTracker(n)
		if err != nil {
			return nil, err
		}
		t.SetParams(p)
		return t, nil
	case KindNaive, KindSA, KindMLE:
		if n <= 0 {
			return nil, fmt.Errorf("estimate: estimator needs at least one element, got %d", n)
		}
		return newOnline(kind, n, p), nil
	default:
		return nil, fmt.Errorf("estimate: unknown estimator kind %q (want one of %v)", kind, Kinds())
	}
}

// NewFromState rebuilds an online estimator from exported state,
// validating every field; it is the recovery counterpart of
// ExportState. The history kind cannot be rebuilt here — it is rebuilt
// from its persisted poll histories via NewTrackerFromHistories.
func NewFromState(st State, p Params) (Estimator, error) {
	switch st.Kind {
	case KindNaive, KindSA, KindMLE:
	case KindHistory:
		return nil, fmt.Errorf("estimate: the history estimator is rebuilt from poll histories, not State")
	default:
		return nil, fmt.Errorf("estimate: unknown estimator kind %q", st.Kind)
	}
	if len(st.Elements) == 0 {
		return nil, fmt.Errorf("estimate: state has no elements")
	}
	e := newOnline(st.Kind, len(st.Elements), p)
	for i, s := range st.Elements {
		if !finitePos(s.Lambda) && s.Lambda != 0 {
			return nil, fmt.Errorf("estimate: element %d has invalid state rate %v", i, s.Lambda)
		}
		if math.IsNaN(s.Info) || math.IsInf(s.Info, 0) || s.Info < 0 {
			return nil, fmt.Errorf("estimate: element %d has invalid information %v", i, s.Info)
		}
		if s.Polls < 0 || s.Changes < 0 || s.Changes > s.Polls {
			return nil, fmt.Errorf("estimate: element %d has %d changes over %d polls", i, s.Changes, s.Polls)
		}
		if math.IsNaN(s.SumElapsed) || math.IsInf(s.SumElapsed, 0) || s.SumElapsed < 0 {
			return nil, fmt.Errorf("estimate: element %d has invalid observed time %v", i, s.SumElapsed)
		}
		st := s
		if st.Polls > 0 && st.Lambda == 0 {
			st.Lambda = e.stateFloor()
		}
		e.elems[i] = onlineElem{
			x:          st.Lambda,
			info:       st.Info,
			polls:      st.Polls,
			changes:    st.Changes,
			sumElapsed: st.SumElapsed,
		}
	}
	return e, nil
}

func finitePos(v float64) bool { return v > 0 && !math.IsInf(v, 0) }

// onlineElem is one element's O(1) online state.
type onlineElem struct {
	x          float64 // running estimate (sa/mle); derived for naive
	info       float64 // accumulated Fisher information at the running estimate
	polls      int
	changes    int
	sumElapsed float64
}

// online implements the three O(1)-state estimators over censored
// polls. For a Poisson change process with rate λ polled after elapsed
// time τ, the detection probability is q(λ,τ) = 1 − e^(−λτ); each
// observation is a Bernoulli draw I ~ q(λ,τ) — that censoring is all
// the estimators ever see.
//
//   - naive: λ̂ = detections / observed time, the LLN baseline. Each
//     poll detects at most one change, so it is biased low by the
//     factor q(λ,τ)/(λτ) — ~37% at λτ = 1 — and the bias never decays
//     with more polls.
//   - sa: Robbins–Monro stochastic approximation on the moment
//     equation E[I − q(x,τ)] = 0, whose unique root is x = λ for any
//     interval sequence. Update x += a_k·(I − q(x,τ))/q'(x,τ) with
//     a_k = k^(−0.7) (Σa_k = ∞, Σa_k² < ∞).
//   - mle: recursive maximum likelihood by stochastic Fisher scoring:
//     x += score_k(x)/J_k, where score_k is the observation's
//     log-likelihood gradient and J_k the accumulated Fisher
//     information — the online form of the exact MLE, asymptotically
//     efficient.
//
// Every update is clamped to a bounded multiplicative move and to
// [max(Floor, 1e-12), Cap], so no observation sequence can produce a
// non-finite, negative, or runaway estimate.
type online struct {
	kind   string
	params Params
	elems  []onlineElem
}

func newOnline(kind string, n int, p Params) *online {
	e := &online{kind: kind, params: p.withDefaults(), elems: make([]onlineElem, n)}
	start := e.params.Prior
	if !(start > 0) {
		start = e.stateFloor()
	}
	for i := range e.elems {
		e.elems[i].x = start
	}
	return e
}

// stateFloor is the smallest internal state value: the configured
// floor when positive, else a tiny positive rate that keeps the
// multiplicative updates well-defined.
func (e *online) stateFloor() float64 {
	if e.params.Floor > 0 {
		return e.params.Floor
	}
	return 1e-12
}

func (e *online) Kind() string  { return e.kind }
func (e *online) Elements() int { return len(e.elems) }

// qEps floors the detection probability inside score and information
// terms so the λ → 0 singularity stays finite.
const qEps = 1e-12

func (e *online) Observe(element int, elapsed float64, changed bool) error {
	if element < 0 || element >= len(e.elems) {
		return fmt.Errorf("estimate: element %d outside [0, %d)", element, len(e.elems))
	}
	if !(elapsed > 0) || math.IsInf(elapsed, 0) {
		return fmt.Errorf("estimate: elapsed time must be positive and finite, got %v", elapsed)
	}
	s := &e.elems[element]
	s.polls++
	s.sumElapsed += elapsed
	if changed {
		s.changes++
	}

	// Fisher information of this observation at the pre-update
	// estimate: (dq/dx)² / (q(1−q)) = τ²(1−q)/q. Accumulated for the
	// mle gain and for every kind's confidence report.
	q := -math.Expm1(-s.x * elapsed)
	qq := math.Max(q, qEps)
	s.info += elapsed * elapsed * (1 - q) / qq

	switch e.kind {
	case KindNaive:
		s.x = e.clamp(float64(s.changes) / s.sumElapsed)
	case KindSA:
		g := -q
		if changed {
			g = 1 - q
		}
		a := math.Pow(float64(s.polls), -0.7)
		// q'(x,τ) = τ·e^(−xτ) = τ(1−q); the small regularizer keeps the
		// quasi-Newton normalization finite when q → 1.
		slope := elapsed*(1-q) + 1e-3*elapsed
		s.x = e.step(s.x, a*g/slope)
	case KindMLE:
		// d log L/dx = I·τ(1−q)/q − (1−I)·τ.
		score := -elapsed
		if changed {
			score = elapsed * (1 - q) / qq
		}
		s.x = e.step(s.x, score/s.info)
	}

	// Identifiability cap for the iterative kinds, applied only while
	// EVERY poll so far came back changed: on such a history the
	// likelihood is monotone in λ — the MLE is +∞ — and the recursion
	// diverges upward; once diverged, a freshness scheduler drops the
	// element (hopelessly stale), it stops being polled, and the
	// runaway estimate can never correct — the high-side twin of the
	// zero-rate starvation trap the floor fixes. k all-changed polls at
	// mean spacing τ̄ support a rate of at most ≈ log(2k+1)/τ̄ (the
	// batch tracker's ChoGM cap for that history). The first no-change
	// observation makes the likelihood proper again, so the cap lifts
	// and the recursion is free to follow the data.
	if e.kind != KindNaive && s.changes == s.polls {
		idCap := math.Log(2*float64(s.polls)+1) * float64(s.polls) / s.sumElapsed
		if s.x > idCap {
			s.x = e.clamp(idCap)
		}
	}
	return nil
}

// step applies one online update, bounding the multiplicative move so
// a single hostile observation can never fling the estimate across the
// domain, then clamping into [stateFloor, Cap].
func (e *online) step(x, delta float64) float64 {
	nx := x + delta
	if math.IsNaN(nx) {
		nx = x
	}
	if nx > 4*x {
		nx = 4 * x
	} else if nx < x/4 {
		nx = x / 4
	}
	return e.clamp(nx)
}

func (e *online) clamp(x float64) float64 {
	lo := e.stateFloor()
	if !(x > lo) { // also catches NaN
		return lo
	}
	if x > e.params.Cap {
		return e.params.Cap
	}
	return x
}

func (e *online) Estimate(element int) Estimate {
	if element < 0 || element >= len(e.elems) {
		return Estimate{Lambda: e.params.Prior, StdErr: math.Inf(1)}
	}
	s := &e.elems[element]
	if s.polls == 0 {
		return Estimate{Lambda: e.params.Prior, StdErr: math.Inf(1)}
	}
	stderr := math.Inf(1)
	if s.info > 0 {
		stderr = 1 / math.Sqrt(s.info)
	}
	return Estimate{Lambda: e.reported(s), StdErr: stderr, Polls: s.polls}
}

// reported maps internal state to the exported estimate: floored (the
// cold-start fix) and capped.
func (e *online) reported(s *onlineElem) float64 { return e.params.apply(s.x) }

// Both estimator families satisfy the interface.
var (
	_ Estimator = (*online)(nil)
	_ Estimator = (*Tracker)(nil)
)

func (e *online) Estimates(fallback float64) ([]float64, error) {
	out := make([]float64, len(e.elems))
	for i := range e.elems {
		s := &e.elems[i]
		if s.polls == 0 {
			out[i] = fallback
			continue
		}
		out[i] = e.reported(s)
	}
	return out, nil
}

func (e *online) ExportState() State {
	st := State{Kind: e.kind, Elements: make([]ElementState, len(e.elems))}
	for i := range e.elems {
		s := &e.elems[i]
		st.Elements[i] = ElementState{
			Lambda:     s.x,
			Info:       s.info,
			Polls:      s.polls,
			Changes:    s.changes,
			SumElapsed: s.sumElapsed,
		}
	}
	return st
}
