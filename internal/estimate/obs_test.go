package estimate

import (
	"strings"
	"testing"

	"freshen/internal/obs"
)

// TestTrackerInstrument pins the estimator's metric surface: every
// recorded poll counts, changed polls count separately, and replay via
// NewTrackerFromHistories is NOT counted unless the rebuilt tracker is
// itself instrumented.
func TestTrackerInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	tr, err := NewTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Instrument(reg)

	polls := []struct {
		elem    int
		changed bool
	}{{0, true}, {0, false}, {1, true}, {1, true}, {1, false}}
	for _, p := range polls {
		if err := tr.Record(p.elem, 1.0, p.changed); err != nil {
			t.Fatal(err)
		}
	}
	// Rejected polls must not count.
	if err := tr.Record(0, -1, true); err == nil {
		t.Fatal("negative elapsed accepted")
	}

	// Rebuilding from the exported history replays every poll through
	// Record; instrumenting the rebuilt tracker on the same registry
	// doubles the counters (get-or-create returns the same series).
	tr2, err := NewTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	tr2.Instrument(reg)
	for i, h := range tr.Export() {
		for _, p := range h {
			if err := tr2.Record(i, p.Elapsed, p.Changed); err != nil {
				t.Fatal(err)
			}
		}
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	e, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Value("freshen_estimator_polls_total"); !ok || v != 10 {
		t.Errorf("freshen_estimator_polls_total = %v, %v; want 10", v, ok)
	}
	if v, ok := e.Value("freshen_estimator_changes_total"); !ok || v != 6 {
		t.Errorf("freshen_estimator_changes_total = %v, %v; want 6", v, ok)
	}
}
