package estimate

import (
	"math"
	"reflect"
	"testing"

	"freshen/internal/stats"
)

// TestTrackerExportImportRoundTrip checks that a tracker rebuilt from
// an export produces byte-identical estimates: recovery must restore
// the estimator exactly, not approximately.
func TestTrackerExportImportRoundTrip(t *testing.T) {
	r := stats.NewRNG(3)
	tr, err := NewTracker(4)
	if err != nil {
		t.Fatal(err)
	}
	for elem, lambda := range []float64{2, 0.5, 0.1, 1} {
		for _, p := range SimulatePolling(r, lambda, 0.5, 40) {
			if err := tr.Record(elem, p.Elapsed, p.Changed); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Element 3 gets an extra irregular poll so histories differ.
	if err := tr.Record(3, 2.5, true); err != nil {
		t.Fatal(err)
	}

	exported := tr.Export()
	rebuilt, err := NewTrackerFromHistories(exported)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Estimates(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.Estimates(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rebuilt estimates %v != original %v", got, want)
	}
	for i := range exported {
		if rebuilt.Polls(i) != tr.Polls(i) {
			t.Errorf("element %d: rebuilt %d polls, original %d", i, rebuilt.Polls(i), tr.Polls(i))
		}
	}
}

// TestTrackerExportIsDeepCopy mutates the export and checks the
// tracker is unaffected (and vice versa).
func TestTrackerExportIsDeepCopy(t *testing.T) {
	tr, err := NewTracker(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Record(0, 1, true); err != nil {
		t.Fatal(err)
	}
	exp := tr.Export()
	exp[0][0].Elapsed = 99
	again := tr.Export()
	if again[0][0].Elapsed != 1 {
		t.Error("export aliases tracker history")
	}
}

func TestNewTrackerFromHistoriesValidation(t *testing.T) {
	cases := []struct {
		name string
		h    [][]Poll
	}{
		{"empty", nil},
		{"zero elapsed", [][]Poll{{{Elapsed: 0, Changed: true}}}},
		{"negative elapsed", [][]Poll{{{Elapsed: -1}}}},
		{"NaN elapsed", [][]Poll{{{Elapsed: math.NaN()}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTrackerFromHistories(tc.h); err == nil {
				t.Error("invalid histories accepted")
			}
		})
	}
	// Elements with no history are fine — they fall back to the prior.
	tr, err := NewTrackerFromHistories([][]Poll{nil, {{Elapsed: 1, Changed: false}}})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := tr.Estimates(7)
	if err != nil {
		t.Fatal(err)
	}
	if ests[0] != 7 {
		t.Errorf("history-less element estimate = %v, want the prior 7", ests[0])
	}
}
