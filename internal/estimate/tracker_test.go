package estimate

import (
	"math"
	"reflect"
	"testing"

	"freshen/internal/stats"
)

// TestTrackerExportImportRoundTrip checks that a tracker rebuilt from
// an export produces byte-identical estimates: recovery must restore
// the estimator exactly, not approximately.
func TestTrackerExportImportRoundTrip(t *testing.T) {
	r := stats.NewRNG(3)
	tr, err := NewTracker(4)
	if err != nil {
		t.Fatal(err)
	}
	for elem, lambda := range []float64{2, 0.5, 0.1, 1} {
		for _, p := range SimulatePolling(r, lambda, 0.5, 40) {
			if err := tr.Record(elem, p.Elapsed, p.Changed); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Element 3 gets an extra irregular poll so histories differ.
	if err := tr.Record(3, 2.5, true); err != nil {
		t.Fatal(err)
	}

	exported := tr.Export()
	rebuilt, err := NewTrackerFromHistories(exported)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Estimates(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.Estimates(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rebuilt estimates %v != original %v", got, want)
	}
	for i := range exported {
		if rebuilt.Polls(i) != tr.Polls(i) {
			t.Errorf("element %d: rebuilt %d polls, original %d", i, rebuilt.Polls(i), tr.Polls(i))
		}
	}
}

// TestTrackerExportIsDeepCopy mutates the export and checks the
// tracker is unaffected (and vice versa).
func TestTrackerExportIsDeepCopy(t *testing.T) {
	tr, err := NewTracker(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Record(0, 1, true); err != nil {
		t.Fatal(err)
	}
	exp := tr.Export()
	exp[0][0].Elapsed = 99
	again := tr.Export()
	if again[0][0].Elapsed != 1 {
		t.Error("export aliases tracker history")
	}
}

// TestTrackerRoundTripShapes drives Export/NewTrackerFromHistories
// through the degenerate shapes persistence actually produces — empty
// trackers, elements with no history, single-poll elements, mixed
// lengths — and requires the round trip to preserve every poll and
// every estimate exactly.
func TestTrackerRoundTripShapes(t *testing.T) {
	cases := []struct {
		name      string
		histories [][]Poll
	}{
		{
			name:      "all empty",
			histories: [][]Poll{nil, nil, nil},
		},
		{
			name:      "single element single poll changed",
			histories: [][]Poll{{{Elapsed: 0.5, Changed: true}}},
		},
		{
			name:      "single element single poll unchanged",
			histories: [][]Poll{{{Elapsed: 2, Changed: false}}},
		},
		{
			name: "mixed lengths with gaps",
			histories: [][]Poll{
				{{Elapsed: 1, Changed: true}, {Elapsed: 0.25, Changed: false}, {Elapsed: 3, Changed: true}},
				nil,
				{{Elapsed: 0.125, Changed: false}},
				{{Elapsed: 10, Changed: true}, {Elapsed: 10, Changed: true}},
			},
		},
		{
			name: "irregular elapsed spread",
			histories: [][]Poll{
				{{Elapsed: 1e-6, Changed: false}, {Elapsed: 1e3, Changed: true}},
				{{Elapsed: 0.7, Changed: true}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := NewTracker(len(tc.histories))
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range tc.histories {
				for _, p := range h {
					if err := tr.Record(i, p.Elapsed, p.Changed); err != nil {
						t.Fatal(err)
					}
				}
			}

			exported := tr.Export()
			if len(exported) != len(tc.histories) {
				t.Fatalf("Export length %d, want %d", len(exported), len(tc.histories))
			}
			for i, h := range tc.histories {
				if len(h) == 0 {
					if exported[i] != nil {
						t.Errorf("element %d: exported %v, want nil", i, exported[i])
					}
					continue
				}
				if !reflect.DeepEqual(exported[i], h) {
					t.Errorf("element %d: exported %v, want %v", i, exported[i], h)
				}
			}

			rebuilt, err := NewTrackerFromHistories(exported)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tc.histories {
				if got, want := rebuilt.Polls(i), tr.Polls(i); got != want {
					t.Errorf("element %d: rebuilt polls %d, want %d", i, got, want)
				}
			}
			want, err := tr.Estimates(4.2)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rebuilt.Estimates(4.2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("rebuilt estimates %v, want %v", got, want)
			}
		})
	}
}

// TestTrackerFloor pins the cold-start fix: a zero-change history
// reports λ̂ = 0 on a bare tracker (historical behavior) but is floored
// once params carry a positive floor, so the scheduler keeps probing
// the element instead of starving it of budget forever.
func TestTrackerFloor(t *testing.T) {
	mk := func() *Tracker {
		tr, err := NewTracker(2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := tr.Record(0, 1, false); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}

	bare := mk()
	ests, err := bare.Estimates(1)
	if err != nil {
		t.Fatal(err)
	}
	if ests[0] != 0 {
		t.Errorf("bare tracker zero-change estimate %v, want 0", ests[0])
	}
	if ests[1] != 1 {
		t.Errorf("unpolled fallback %v, want 1", ests[1])
	}

	floored := mk()
	floored.SetParams(Params{Prior: 1, Floor: 0.05})
	ests, err = floored.Estimates(1)
	if err != nil {
		t.Fatal(err)
	}
	if ests[0] != 0.05 {
		t.Errorf("floored zero-change estimate %v, want 0.05", ests[0])
	}

	// The floor never drags a well-observed estimate down.
	busy := mk()
	busy.SetParams(Params{Prior: 1, Floor: 0.05})
	for i := 0; i < 50; i++ {
		if err := busy.Record(1, 0.5, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	ests, err = busy.Estimates(1)
	if err != nil {
		t.Fatal(err)
	}
	if !(ests[1] > 0.05) {
		t.Errorf("observed estimate %v should exceed the floor", ests[1])
	}
}

// TestTrackerEstimatorInterface exercises the Tracker through the
// Estimator interface: kind, per-element confidence, and the unpolled
// prior.
func TestTrackerEstimatorInterface(t *testing.T) {
	est, err := New(KindHistory, 3, Params{Prior: 2, Floor: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Kind() != KindHistory {
		t.Errorf("Kind = %q", est.Kind())
	}
	if est.Elements() != 3 {
		t.Errorf("Elements = %d", est.Elements())
	}

	e := est.Estimate(0)
	if e.Polls != 0 || e.Lambda != 2 || !math.IsInf(e.StdErr, 1) || e.Uncertainty() != 1 {
		t.Errorf("unpolled estimate %+v (u=%v)", e, e.Uncertainty())
	}
	// Out-of-range elements report the same total uncertainty.
	if u := est.Estimate(99).Uncertainty(); u != 1 {
		t.Errorf("out-of-range uncertainty %v, want 1", u)
	}

	for i := 0; i < 200; i++ {
		if err := est.Observe(0, 0.5, i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	e = est.Estimate(0)
	if e.Polls != 200 {
		t.Errorf("Polls = %d, want 200", e.Polls)
	}
	if !(e.Lambda > 0) || math.IsInf(e.Lambda, 0) {
		t.Errorf("Lambda = %v", e.Lambda)
	}
	if !(e.StdErr > 0) || math.IsInf(e.StdErr, 0) {
		t.Errorf("StdErr = %v", e.StdErr)
	}
	if u := e.Uncertainty(); !(u > 0 && u < 0.5) {
		t.Errorf("well-observed uncertainty %v, want small positive", u)
	}
	if st := est.ExportState(); st.Kind != KindHistory || len(st.Elements) != 0 {
		t.Errorf("ExportState = %+v; history state lives in Export()", st)
	}
}

func TestNewTrackerFromHistoriesValidation(t *testing.T) {
	cases := []struct {
		name string
		h    [][]Poll
	}{
		{"empty", nil},
		{"zero elapsed", [][]Poll{{{Elapsed: 0, Changed: true}}}},
		{"negative elapsed", [][]Poll{{{Elapsed: -1}}}},
		{"NaN elapsed", [][]Poll{{{Elapsed: math.NaN()}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTrackerFromHistories(tc.h); err == nil {
				t.Error("invalid histories accepted")
			}
		})
	}
	// Elements with no history are fine — they fall back to the prior.
	tr, err := NewTrackerFromHistories([][]Poll{nil, {{Elapsed: 1, Changed: false}}})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := tr.Estimates(7)
	if err != nil {
		t.Fatal(err)
	}
	if ests[0] != 7 {
		t.Errorf("history-less element estimate = %v, want the prior 7", ests[0])
	}
}
