package estimate

import (
	"math"
	"testing"
)

// fuzzHistory decodes raw bytes into a poll history: three bytes per
// poll, two spreading the elapsed time log-uniformly over twelve
// orders of magnitude and the third's low bit marking a detection.
// The mapping is total, so every fuzz input is a valid history.
func fuzzHistory(data []byte) []Poll {
	n := len(data) / 3
	if n > 256 {
		n = 256
	}
	polls := make([]Poll, n)
	for i := range polls {
		b := data[i*3 : i*3+3]
		t := float64(uint16(b[0])<<8|uint16(b[1])) / 65535
		polls[i] = Poll{
			Elapsed: math.Exp(math.Log(1e-6) + t*(math.Log(1e6)-math.Log(1e-6))),
			Changed: b[2]&1 == 1,
		}
	}
	return polls
}

// FuzzEstimator drives all three change-rate estimators with raw,
// unsanitized arguments. The regular-polling estimators must reject
// bad arguments with an error (never a panic) and return finite,
// non-negative rates otherwise; the irregular-polling MLE must do the
// same on any decoded history, deterministically, and must agree with
// its own score function at the returned maximizer.
func FuzzEstimator(f *testing.F) {
	f.Add(3, 10, 0.5, []byte{})
	f.Add(0, 1, 1e-9, []byte{0, 0, 1})
	f.Add(10, 10, 2.0, []byte{255, 255, 1, 0, 0, 0})
	f.Add(-1, -1, math.NaN(), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(1<<40, 7, math.Inf(1), []byte{128, 128, 1, 128, 128, 0})
	f.Fuzz(func(t *testing.T, detections, polls int, interval float64, data []byte) {
		naive, errN := Naive(detections, polls, interval)
		chogm, errC := ChoGM(detections, polls, interval)
		if (errN == nil) != (errC == nil) {
			t.Fatalf("estimators disagree on argument validity: Naive err=%v, ChoGM err=%v", errN, errC)
		}
		if errN == nil {
			for name, est := range map[string]float64{"Naive": naive, "ChoGM": chogm} {
				if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
					t.Fatalf("%s(%d, %d, %v) = %v", name, detections, polls, interval, est)
				}
			}
			// A second call with identical arguments must agree exactly.
			if again, _ := ChoGM(detections, polls, interval); again != chogm {
				t.Fatalf("ChoGM not deterministic: %v then %v", chogm, again)
			}
		}

		history := fuzzHistory(data)
		if len(history) == 0 {
			return
		}
		lambda, err := MLE(history)
		if err != nil {
			t.Fatalf("MLE rejected a valid history of %d polls: %v", len(history), err)
		}
		if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
			t.Fatalf("MLE = %v on %d polls", lambda, len(history))
		}
		if again, _ := MLE(history); again != lambda {
			t.Fatalf("MLE not deterministic: %v then %v", lambda, again)
		}
	})
}

// FuzzOnlineEstimators feeds every online estimator the same hostile
// poll sequence (elapsed times spanning twelve orders of magnitude,
// arbitrary change patterns, fuzzer-chosen prior/floor) and checks the
// core safety contract: no panic, every reported λ̂ and stderr finite
// or +Inf-stderr-only, estimates non-negative and within [floor, cap],
// updates deterministic, and export-restore-continue mid-stream agrees
// exactly with an uninterrupted run.
func FuzzOnlineEstimators(f *testing.F) {
	f.Add([]byte{}, 1.0, 0.0)
	f.Add([]byte{0, 0, 1, 255, 255, 0}, 0.5, 0.01)
	f.Add([]byte{255, 255, 1, 255, 255, 1, 0, 0, 0}, 1e6, 1e-9)
	f.Add([]byte{7, 7, 7, 8, 8, 8, 9, 9, 9}, math.NaN(), math.Inf(1))
	f.Fuzz(func(t *testing.T, data []byte, prior, floor float64) {
		// Total mapping: fold arbitrary prior/floor into the valid range
		// rather than rejecting — New does not validate params, it clamps.
		if math.IsNaN(prior) || math.IsInf(prior, 0) || prior < 0 {
			prior = 1
		}
		if math.IsNaN(floor) || math.IsInf(floor, 0) || floor < 0 {
			floor = 0
		}
		if floor > 1e6 {
			floor = 1e6
		}
		if prior > 1e6 {
			prior = 1e6
		}
		p := Params{Prior: prior, Floor: floor}
		history := fuzzHistory(data)
		for _, kind := range []string{KindNaive, KindSA, KindMLE} {
			est, err := New(kind, 1, p)
			if err != nil {
				t.Fatal(err)
			}
			twin, err := New(kind, 1, p)
			if err != nil {
				t.Fatal(err)
			}
			var restored Estimator
			for i, obs := range history {
				if err := est.Observe(0, obs.Elapsed, obs.Changed); err != nil {
					t.Fatalf("%s: rejected valid poll %d: %v", kind, i, err)
				}
				if err := twin.Observe(0, obs.Elapsed, obs.Changed); err != nil {
					t.Fatal(err)
				}
				e := est.Estimate(0)
				if math.IsNaN(e.Lambda) || math.IsInf(e.Lambda, 0) || e.Lambda < 0 {
					t.Fatalf("%s: λ̂ = %v after poll %d", kind, e.Lambda, i)
				}
				if e.Lambda < floor {
					t.Fatalf("%s: λ̂ = %v below floor %v", kind, e.Lambda, floor)
				}
				if math.IsNaN(e.StdErr) || e.StdErr < 0 {
					t.Fatalf("%s: stderr = %v after poll %d", kind, e.StdErr, i)
				}
				if u := e.Uncertainty(); math.IsNaN(u) || u < 0 || u > 1 {
					t.Fatalf("%s: uncertainty = %v after poll %d", kind, u, i)
				}
				if te := twin.Estimate(0); te != e {
					t.Fatalf("%s: not deterministic at poll %d: %+v vs %+v", kind, i, e, te)
				}
				if i == len(history)/2 {
					restored, err = NewFromState(est.ExportState(), p)
					if err != nil {
						t.Fatalf("%s: restore of own export failed: %v", kind, err)
					}
				}
				if restored != nil && i > len(history)/2 {
					if err := restored.Observe(0, obs.Elapsed, obs.Changed); err != nil {
						t.Fatal(err)
					}
				}
			}
			if restored != nil {
				if a, b := est.Estimate(0), restored.Estimate(0); a != b {
					t.Fatalf("%s: restored run diverged: %+v vs %+v", kind, a, b)
				}
			}
			ests, err := est.Estimates(prior)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range ests {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("%s: Estimates returned %v", kind, v)
				}
			}
		}
	})
}
