// Package estimate supplies the change-frequency knowledge the paper
// assumes the mirror obtains "using estimation and sampling
// techniques" (its references [4] and [6]): estimators that recover an
// element's Poisson change rate λ from a history of polls, each of
// which only reveals whether the element changed at all since the
// previous poll.
//
// Naive is the ratio estimator X/T, which under-estimates because a
// poll collapses any number of changes into one detection. ChoGM is
// the bias-corrected estimator of Cho & Garcia-Molina,
// λ̂ = −log((n−X+0.5)/(n+0.5))/I, consistent for regular polling. MLE
// handles irregular poll intervals by maximizing the exact Bernoulli
// likelihood. Tracker accumulates poll outcomes per element and feeds
// any of the estimators.
package estimate
