package estimate

import (
	"fmt"
	"math"

	"freshen/internal/obs"
	"freshen/internal/stats"
)

// Tracker accumulates poll histories for every element of a mirror and
// produces per-element change-rate estimates. It is the bookkeeping a
// mirror runs alongside its refresh loop: every refresh doubles as a
// poll (the fetched copy either differs from the stored one or not).
type Tracker struct {
	histories [][]Poll

	// Optional instrumentation (nil until Instrument): the paper's
	// schedule is only as good as these inputs, so the poll stream the
	// estimator actually sees is exported, not inferred.
	polls   *obs.Counter
	changes *obs.Counter
}

// Instrument registers the tracker's metrics on reg and starts
// counting recorded polls and observed changes — including polls
// replayed from a snapshot or journal at boot, so the counters always
// reflect the knowledge the estimates are built on.
func (t *Tracker) Instrument(reg *obs.Registry) {
	t.polls = reg.Counter("freshen_estimator_polls_total",
		"Change polls recorded by the estimator (replayed history included).")
	t.changes = reg.Counter("freshen_estimator_changes_total",
		"Polls that observed a changed object.")
}

// NewTracker creates a tracker for n elements.
func NewTracker(n int) (*Tracker, error) {
	if n <= 0 {
		return nil, fmt.Errorf("estimate: tracker needs at least one element, got %d", n)
	}
	return &Tracker{histories: make([][]Poll, n)}, nil
}

// Record adds one poll outcome for an element.
func (t *Tracker) Record(element int, elapsed float64, changed bool) error {
	if element < 0 || element >= len(t.histories) {
		return fmt.Errorf("estimate: element %d outside [0, %d)", element, len(t.histories))
	}
	if !(elapsed > 0) {
		return fmt.Errorf("estimate: elapsed time must be positive, got %v", elapsed)
	}
	t.histories[element] = append(t.histories[element], Poll{Elapsed: elapsed, Changed: changed})
	if t.polls != nil {
		t.polls.Inc()
		if changed {
			t.changes.Inc()
		}
	}
	return nil
}

// Export returns a deep copy of every element's poll history — the
// durable form of the tracker's accumulated knowledge, suitable for
// snapshotting and for rebuilding via NewTrackerFromHistories.
func (t *Tracker) Export() [][]Poll {
	out := make([][]Poll, len(t.histories))
	for i, h := range t.histories {
		if len(h) > 0 {
			out[i] = append([]Poll(nil), h...)
		}
	}
	return out
}

// NewTrackerFromHistories rebuilds a tracker from exported histories,
// validating every poll; it is the recovery counterpart of Export.
func NewTrackerFromHistories(histories [][]Poll) (*Tracker, error) {
	t, err := NewTracker(len(histories))
	if err != nil {
		return nil, err
	}
	for i, h := range histories {
		for _, p := range h {
			if err := t.Record(i, p.Elapsed, p.Changed); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Polls returns how many polls an element has accumulated.
func (t *Tracker) Polls(element int) int {
	if element < 0 || element >= len(t.histories) {
		return 0
	}
	return len(t.histories[element])
}

// Estimates runs MLE per element. Elements with no history get
// fallback (a prior, e.g. the fleet-wide mean change rate).
func (t *Tracker) Estimates(fallback float64) ([]float64, error) {
	out := make([]float64, len(t.histories))
	for i, h := range t.histories {
		if len(h) == 0 {
			out[i] = fallback
			continue
		}
		est, err := MLE(h)
		if err != nil {
			return nil, fmt.Errorf("estimate: element %d: %w", i, err)
		}
		out[i] = est
	}
	return out, nil
}

// SimulatePolling generates the poll history a mirror would observe if
// it polled an element with true change rate lambda at the given
// regular interval n times: each poll independently detects a change
// with probability 1 − e^(−λ·I). It is used by tests and by the
// estimation ablation experiment to produce realistic imperfect
// knowledge.
func SimulatePolling(r *stats.RNG, lambda, interval float64, polls int) []Poll {
	q := -math.Expm1(-lambda * interval)
	out := make([]Poll, polls)
	for i := range out {
		out[i] = Poll{Elapsed: interval, Changed: r.Float64() < q}
	}
	return out
}
