package estimate

import (
	"fmt"
	"math"

	"freshen/internal/obs"
	"freshen/internal/stats"
)

// Tracker accumulates poll histories for every element of a mirror and
// produces per-element change-rate estimates. It is the bookkeeping a
// mirror runs alongside its refresh loop: every refresh doubles as a
// poll (the fetched copy either differs from the stored one or not).
type Tracker struct {
	histories [][]Poll
	params    Params

	// Optional instrumentation (nil until Instrument): the paper's
	// schedule is only as good as these inputs, so the poll stream the
	// estimator actually sees is exported, not inferred.
	polls   *obs.Counter
	changes *obs.Counter
}

// SetParams configures the tracker's prior, floor and cap (see
// Params). The zero value keeps the historical behavior: no floor, so
// a zero-change history reports λ̂ = 0.
func (t *Tracker) SetParams(p Params) { t.params = p.withDefaults() }

// Instrument registers the tracker's metrics on reg and starts
// counting recorded polls and observed changes — including polls
// replayed from a snapshot or journal at boot, so the counters always
// reflect the knowledge the estimates are built on.
func (t *Tracker) Instrument(reg *obs.Registry) {
	t.polls = reg.Counter("freshen_estimator_polls_total",
		"Change polls recorded by the estimator (replayed history included).")
	t.changes = reg.Counter("freshen_estimator_changes_total",
		"Polls that observed a changed object.")
}

// NewTracker creates a tracker for n elements.
func NewTracker(n int) (*Tracker, error) {
	if n <= 0 {
		return nil, fmt.Errorf("estimate: tracker needs at least one element, got %d", n)
	}
	return &Tracker{histories: make([][]Poll, n)}, nil
}

// Record adds one poll outcome for an element.
func (t *Tracker) Record(element int, elapsed float64, changed bool) error {
	if element < 0 || element >= len(t.histories) {
		return fmt.Errorf("estimate: element %d outside [0, %d)", element, len(t.histories))
	}
	if !(elapsed > 0) {
		return fmt.Errorf("estimate: elapsed time must be positive, got %v", elapsed)
	}
	t.histories[element] = append(t.histories[element], Poll{Elapsed: elapsed, Changed: changed})
	if t.polls != nil {
		t.polls.Inc()
		if changed {
			t.changes.Inc()
		}
	}
	return nil
}

// Export returns a deep copy of every element's poll history — the
// durable form of the tracker's accumulated knowledge, suitable for
// snapshotting and for rebuilding via NewTrackerFromHistories.
func (t *Tracker) Export() [][]Poll {
	out := make([][]Poll, len(t.histories))
	for i, h := range t.histories {
		if len(h) > 0 {
			out[i] = append([]Poll(nil), h...)
		}
	}
	return out
}

// NewTrackerFromHistories rebuilds a tracker from exported histories,
// validating every poll; it is the recovery counterpart of Export.
func NewTrackerFromHistories(histories [][]Poll) (*Tracker, error) {
	t, err := NewTracker(len(histories))
	if err != nil {
		return nil, err
	}
	for i, h := range histories {
		for _, p := range h {
			if err := t.Record(i, p.Elapsed, p.Changed); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Polls returns how many polls an element has accumulated.
func (t *Tracker) Polls(element int) int {
	if element < 0 || element >= len(t.histories) {
		return 0
	}
	return len(t.histories[element])
}

// Kind names the tracker's estimator family: the full-history batch
// MLE, re-solved exactly at every learn pass.
func (t *Tracker) Kind() string { return KindHistory }

// Elements returns the catalog size the tracker covers.
func (t *Tracker) Elements() int { return len(t.histories) }

// Observe folds in one censored observation (Estimator interface); it
// is Record under the interface's name.
func (t *Tracker) Observe(element int, elapsed float64, changed bool) error {
	return t.Record(element, elapsed, changed)
}

// Estimate returns one element's batch-MLE estimate with a confidence
// measure: the asymptotic standard error 1/√J(λ̂), where J is the
// observed Fisher information Σ τᵢ²(1−qᵢ)/qᵢ of the element's history
// evaluated at the reported (floored) estimate.
func (t *Tracker) Estimate(element int) Estimate {
	if element < 0 || element >= len(t.histories) || len(t.histories[element]) == 0 {
		return Estimate{Lambda: t.params.Prior, StdErr: math.Inf(1)}
	}
	h := t.histories[element]
	est, err := MLE(h)
	if err != nil {
		// Record validated every poll, so this cannot happen; report
		// total uncertainty rather than guessing.
		return Estimate{Lambda: t.params.Prior, StdErr: math.Inf(1)}
	}
	est = t.params.apply(est)
	info := 0.0
	if est > 0 {
		for _, p := range h {
			q := -math.Expm1(-est * p.Elapsed)
			info += p.Elapsed * p.Elapsed * (1 - q) / math.Max(q, qEps)
		}
	}
	stderr := math.Inf(1)
	if info > 0 {
		stderr = 1 / math.Sqrt(info)
	}
	return Estimate{Lambda: est, StdErr: stderr, Polls: len(h)}
}

// ExportState identifies the tracker's family; the durable state is
// the poll histories themselves (Export), persisted per element, so no
// per-element summary is duplicated here.
func (t *Tracker) ExportState() State { return State{Kind: KindHistory} }

// Estimates runs MLE per element. Elements with no history get
// fallback (a prior, e.g. the fleet-wide mean change rate); polled
// elements are floored at Params.Floor so a run of no-change polls can
// never starve an element of refresh budget forever.
func (t *Tracker) Estimates(fallback float64) ([]float64, error) {
	out := make([]float64, len(t.histories))
	for i, h := range t.histories {
		if len(h) == 0 {
			out[i] = fallback
			continue
		}
		est, err := MLE(h)
		if err != nil {
			return nil, fmt.Errorf("estimate: element %d: %w", i, err)
		}
		out[i] = t.params.apply(est)
	}
	return out, nil
}

// SimulatePolling generates the poll history a mirror would observe if
// it polled an element with true change rate lambda at the given
// regular interval n times: each poll independently detects a change
// with probability 1 − e^(−λ·I). It is used by tests and by the
// estimation ablation experiment to produce realistic imperfect
// knowledge.
func SimulatePolling(r *stats.RNG, lambda, interval float64, polls int) []Poll {
	q := -math.Expm1(-lambda * interval)
	out := make([]Poll, polls)
	for i := range out {
		out[i] = Poll{Elapsed: interval, Changed: r.Float64() < q}
	}
	return out
}
