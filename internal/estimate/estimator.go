package estimate

import (
	"fmt"
	"math"
)

// Naive estimates λ as detections per unit time, X/(n·I). Each poll
// can detect at most one change, so the estimate saturates at 1/I and
// is biased low for λ·I that is not small.
func Naive(detections, polls int, interval float64) (float64, error) {
	if err := checkPollArgs(detections, polls, interval); err != nil {
		return 0, err
	}
	return float64(detections) / (float64(polls) * interval), nil
}

// ChoGM is the bias-corrected estimator of Cho & Garcia-Molina for
// regular polling at interval I:
//
//	λ̂ = −log((n − X + 0.5) / (n + 0.5)) / I.
//
// The half-counts keep the estimate finite when every poll detected a
// change (X = n), where the raw maximum-likelihood estimate diverges.
func ChoGM(detections, polls int, interval float64) (float64, error) {
	if err := checkPollArgs(detections, polls, interval); err != nil {
		return 0, err
	}
	n := float64(polls)
	x := float64(detections)
	return -math.Log((n-x+0.5)/(n+0.5)) / interval, nil
}

func checkPollArgs(detections, polls int, interval float64) error {
	if polls <= 0 {
		return fmt.Errorf("estimate: need at least one poll, got %d", polls)
	}
	if detections < 0 || detections > polls {
		return fmt.Errorf("estimate: detections %d outside [0, %d]", detections, polls)
	}
	if !(interval > 0) || math.IsInf(interval, 0) {
		return fmt.Errorf("estimate: poll interval must be positive and finite, got %v", interval)
	}
	return nil
}

// Poll is one observation: the element was checked after Elapsed time
// and either had or had not changed.
type Poll struct {
	Elapsed float64
	Changed bool
}

// MLE estimates λ from irregular polls by maximizing the exact
// likelihood Π qᵢ^cᵢ (1−qᵢ)^(1−cᵢ) with qᵢ = 1 − e^(−λ·Iᵢ). The
// derivative of the log-likelihood is strictly decreasing in λ, so the
// maximizer is found by bisection. Histories where every poll detected
// a change have no finite maximizer; as with ChoGM, a half-count
// correction is applied by capping the estimate using the shortest
// interval.
func MLE(history []Poll) (float64, error) {
	if len(history) == 0 {
		return 0, fmt.Errorf("estimate: empty poll history")
	}
	allChanged := true
	shortest := math.Inf(1)
	for i, p := range history {
		if !(p.Elapsed > 0) || math.IsInf(p.Elapsed, 0) {
			return 0, fmt.Errorf("estimate: poll %d has invalid elapsed time %v", i, p.Elapsed)
		}
		if !p.Changed {
			allChanged = false
		}
		if p.Elapsed < shortest {
			shortest = p.Elapsed
		}
	}
	// Score function: dL/dλ = Σ_changed I·e^(−λI)/(1−e^(−λI)) − Σ_unchanged I.
	score := func(lambda float64) float64 {
		var s float64
		for _, p := range history {
			if p.Changed {
				r := lambda * p.Elapsed
				// I·e^{-r}/(1-e^{-r}) = I / (e^{r} - 1)
				s += p.Elapsed / math.Expm1(r)
			} else {
				s -= p.Elapsed
			}
		}
		return s
	}
	if allChanged {
		// The likelihood increases without bound; return the ChoGM-style
		// capped estimate for the shortest interval, the tightest bound
		// the data supports.
		n := len(history)
		return ChoGM(n, n, shortest)
	}
	// Bracket: score(0+) = +Inf when any change observed; if no change
	// was ever observed the score is negative everywhere and λ̂ = 0.
	anyChanged := false
	for _, p := range history {
		if p.Changed {
			anyChanged = true
			break
		}
	}
	if !anyChanged {
		return 0, nil
	}
	lo, hi := 0.0, 1.0/shortest
	for score(hi) > 0 {
		hi *= 2
		if math.IsInf(hi, 0) {
			return 0, fmt.Errorf("estimate: likelihood failed to bracket")
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if score(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-13*hi {
			break
		}
	}
	return 0.5 * (lo + hi), nil
}
