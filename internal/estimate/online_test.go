package estimate

import (
	"math"
	"testing"

	"freshen/internal/stats"
)

func onlineKinds() []string { return []string{KindNaive, KindSA, KindMLE} }

func TestNewValidation(t *testing.T) {
	if _, err := New("bogus", 4, Params{}); err == nil {
		t.Error("unknown kind accepted")
	}
	for _, kind := range Kinds() {
		if _, err := New(kind, 0, Params{}); err == nil {
			t.Errorf("%s: zero elements accepted", kind)
		}
		est, err := New(kind, 4, Params{Prior: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if est.Kind() != kind || est.Elements() != 4 {
			t.Errorf("%s: Kind=%q Elements=%d", kind, est.Kind(), est.Elements())
		}
	}
}

func TestOnlineObserveValidation(t *testing.T) {
	for _, kind := range onlineKinds() {
		est, err := New(kind, 2, Params{Prior: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := est.Observe(-1, 1, true); err == nil {
			t.Errorf("%s: negative element accepted", kind)
		}
		if err := est.Observe(2, 1, true); err == nil {
			t.Errorf("%s: out-of-range element accepted", kind)
		}
		if err := est.Observe(0, 0, true); err == nil {
			t.Errorf("%s: zero elapsed accepted", kind)
		}
		if err := est.Observe(0, math.NaN(), true); err == nil {
			t.Errorf("%s: NaN elapsed accepted", kind)
		}
		if err := est.Observe(0, math.Inf(1), true); err == nil {
			t.Errorf("%s: infinite elapsed accepted", kind)
		}
		// A rejected observation must not count.
		if got := est.Estimate(0).Polls; got != 0 {
			t.Errorf("%s: rejected observation counted, polls=%d", kind, got)
		}
	}
}

// TestOnlineConvergence polls a known Poisson process at a regular
// interval and checks each online estimator's bias profile: sa and mle
// land near the true rate while naive stays biased low by its missed
// multiple changes (λτ = 1 here, so the bias is large and persistent).
func TestOnlineConvergence(t *testing.T) {
	const trueLambda, interval, polls = 2.0, 0.5, 8000
	for _, kind := range onlineKinds() {
		r := stats.NewRNG(7)
		est, err := New(kind, 1, Params{Prior: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range SimulatePolling(r, trueLambda, interval, polls) {
			if err := est.Observe(0, p.Elapsed, p.Changed); err != nil {
				t.Fatal(err)
			}
		}
		e := est.Estimate(0)
		switch kind {
		case KindNaive:
			// E[naive] = q/τ = (1−e^(−1))/0.5 ≈ 1.264.
			if !(e.Lambda < 0.75*trueLambda) {
				t.Errorf("naive λ̂ = %v, want visibly below %v", e.Lambda, trueLambda)
			}
		default:
			if math.Abs(e.Lambda-trueLambda) > 0.15*trueLambda {
				t.Errorf("%s λ̂ = %v, want about %v", kind, e.Lambda, trueLambda)
			}
		}
		if !(e.StdErr > 0) || math.IsInf(e.StdErr, 0) {
			t.Errorf("%s StdErr = %v", kind, e.StdErr)
		}
		if u := e.Uncertainty(); !(u >= 0 && u < 0.25) {
			t.Errorf("%s uncertainty after %d polls = %v, want small", kind, polls, u)
		}
	}
}

// TestOnlineIrregularIntervals checks sa and mle handle the interval
// mix a real mirror produces (every element's polling cadence changes
// at each replan).
func TestOnlineIrregularIntervals(t *testing.T) {
	const trueLambda = 1.5
	intervals := []float64{0.1, 0.5, 1.3, 0.25, 2.0}
	for _, kind := range []string{KindSA, KindMLE} {
		r := stats.NewRNG(21)
		est, err := New(kind, 1, Params{Prior: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12000; i++ {
			tau := intervals[i%len(intervals)]
			q := -math.Expm1(-trueLambda * tau)
			if err := est.Observe(0, tau, r.Float64() < q); err != nil {
				t.Fatal(err)
			}
		}
		got := est.Estimate(0).Lambda
		if math.Abs(got-trueLambda) > 0.15*trueLambda {
			t.Errorf("%s λ̂ = %v on irregular intervals, want about %v", kind, got, trueLambda)
		}
	}
}

func TestOnlineFloorAndFallback(t *testing.T) {
	for _, kind := range onlineKinds() {
		est, err := New(kind, 2, Params{Prior: 1, Floor: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		// A long run of no-change polls drives the estimate down but the
		// report never goes below the floor.
		for i := 0; i < 500; i++ {
			if err := est.Observe(0, 1, false); err != nil {
				t.Fatal(err)
			}
		}
		ests, err := est.Estimates(1)
		if err != nil {
			t.Fatal(err)
		}
		if ests[0] < 0.02 {
			t.Errorf("%s: floored estimate %v below floor", kind, ests[0])
		}
		if ests[1] != 1 {
			t.Errorf("%s: unpolled fallback %v, want 1", kind, ests[1])
		}
	}
}

// TestOnlineExportRestoreContinuity is the persistence contract: an
// estimator exported mid-stream, rebuilt via NewFromState, and fed the
// remaining observations must agree exactly with one that never
// stopped — restarts lose no convergence progress.
func TestOnlineExportRestoreContinuity(t *testing.T) {
	const polls = 400
	for _, kind := range onlineKinds() {
		r := stats.NewRNG(11)
		stream := SimulatePolling(r, 1.2, 0.7, polls)
		p := Params{Prior: 0.5, Floor: 0.01}

		full, err := New(kind, 1, p)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := New(kind, 1, p)
		if err != nil {
			t.Fatal(err)
		}
		for i, obs := range stream {
			if err := full.Observe(0, obs.Elapsed, obs.Changed); err != nil {
				t.Fatal(err)
			}
			if i < polls/2 {
				if err := resumed.Observe(0, obs.Elapsed, obs.Changed); err != nil {
					t.Fatal(err)
				}
			}
		}
		restored, err := NewFromState(resumed.ExportState(), p)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, obs := range stream[polls/2:] {
			if err := restored.Observe(0, obs.Elapsed, obs.Changed); err != nil {
				t.Fatal(err)
			}
		}
		a, b := full.Estimate(0), restored.Estimate(0)
		if a != b {
			t.Errorf("%s: uninterrupted %+v != restored %+v", kind, a, b)
		}
	}
}

func TestNewFromStateValidation(t *testing.T) {
	ok := ElementState{Lambda: 1, Info: 2, Polls: 3, Changes: 1, SumElapsed: 3}
	cases := []struct {
		name string
		st   State
	}{
		{"unknown kind", State{Kind: "bogus", Elements: []ElementState{ok}}},
		{"history kind", State{Kind: KindHistory, Elements: []ElementState{ok}}},
		{"no elements", State{Kind: KindMLE}},
		{"negative rate", State{Kind: KindMLE, Elements: []ElementState{{Lambda: -1}}}},
		{"NaN rate", State{Kind: KindMLE, Elements: []ElementState{{Lambda: math.NaN()}}}},
		{"infinite rate", State{Kind: KindMLE, Elements: []ElementState{{Lambda: math.Inf(1)}}}},
		{"negative info", State{Kind: KindMLE, Elements: []ElementState{{Lambda: 1, Info: -1}}}},
		{"changes above polls", State{Kind: KindMLE, Elements: []ElementState{{Lambda: 1, Polls: 1, Changes: 2}}}},
		{"negative observed time", State{Kind: KindMLE, Elements: []ElementState{{Lambda: 1, SumElapsed: -1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewFromState(tc.st, Params{}); err == nil {
				t.Error("invalid state accepted")
			}
		})
	}
}

// TestUncertaintyShrinks checks the confidence model the explore
// policy depends on: uncertainty starts at 1 and falls monotonically
// toward 0 as observations accumulate.
func TestUncertaintyShrinks(t *testing.T) {
	for _, kind := range onlineKinds() {
		r := stats.NewRNG(5)
		est, err := New(kind, 1, Params{Prior: 1})
		if err != nil {
			t.Fatal(err)
		}
		if u := est.Estimate(0).Uncertainty(); u != 1 {
			t.Fatalf("%s: unpolled uncertainty %v, want 1", kind, u)
		}
		prev := 1.0
		checkpoints := map[int]bool{10: true, 100: true, 1000: true}
		for i := 1; i <= 1000; i++ {
			q := -math.Expm1(-1.0 * 0.5)
			if err := est.Observe(0, 0.5, r.Float64() < q); err != nil {
				t.Fatal(err)
			}
			if checkpoints[i] {
				u := est.Estimate(0).Uncertainty()
				if !(u < prev) {
					t.Errorf("%s: uncertainty %v at %d polls not below %v", kind, u, i, prev)
				}
				prev = u
			}
		}
	}
}
