package estimate

import (
	"math"
	"testing"

	"freshen/internal/stats"
)

func TestNaiveAndChoGMBasics(t *testing.T) {
	// Half the polls detected a change at interval 1.
	naive, err := Naive(50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if naive != 0.5 {
		t.Errorf("Naive = %v, want 0.5", naive)
	}
	cg, err := ChoGM(50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// -log(50.5/100.5) ≈ 0.688 — above naive, correcting the missed
	// multiple changes.
	if cg <= naive {
		t.Errorf("ChoGM %v not above Naive %v", cg, naive)
	}
	if want := -math.Log(50.5 / 100.5); math.Abs(cg-want) > 1e-12 {
		t.Errorf("ChoGM = %v, want %v", cg, want)
	}
}

func TestChoGMSaturatedHistoryFinite(t *testing.T) {
	cg, err := ChoGM(100, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(cg, 0) || math.IsNaN(cg) {
		t.Errorf("ChoGM with all changes = %v, want finite", cg)
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := Naive(1, 0, 1); err == nil {
		t.Error("zero polls must fail")
	}
	if _, err := Naive(-1, 10, 1); err == nil {
		t.Error("negative detections must fail")
	}
	if _, err := Naive(11, 10, 1); err == nil {
		t.Error("detections above polls must fail")
	}
	if _, err := ChoGM(1, 10, 0); err == nil {
		t.Error("zero interval must fail")
	}
}

func TestChoGMRecoversTrueRate(t *testing.T) {
	// Simulate regular polling of a known Poisson process and check
	// the bias-corrected estimator recovers λ while the naive one
	// under-estimates.
	r := stats.NewRNG(99)
	const trueLambda, interval, polls = 2.0, 0.5, 20000
	history := SimulatePolling(r, trueLambda, interval, polls)
	detections := 0
	for _, p := range history {
		if p.Changed {
			detections++
		}
	}
	cg, err := ChoGM(detections, polls, interval)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cg-trueLambda) > 0.05*trueLambda {
		t.Errorf("ChoGM = %v, want about %v", cg, trueLambda)
	}
	naive, err := Naive(detections, polls, interval)
	if err != nil {
		t.Fatal(err)
	}
	if naive >= cg {
		t.Errorf("naive %v not below bias-corrected %v at λI=1", naive, cg)
	}
}

func TestMLEMatchesChoGMOnRegularPolls(t *testing.T) {
	r := stats.NewRNG(4)
	history := SimulatePolling(r, 1.5, 0.4, 5000)
	detections := 0
	for _, p := range history {
		if p.Changed {
			detections++
		}
	}
	mle, err := MLE(history)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := ChoGM(detections, len(history), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// On regular intervals the MLE is −log(1−X/n)/I; ChoGM differs
	// only by the half-count correction, negligible at n=5000.
	if math.Abs(mle-cg) > 0.01*cg {
		t.Errorf("MLE %v vs ChoGM %v", mle, cg)
	}
}

func TestMLEIrregularIntervals(t *testing.T) {
	// Two short polls without changes and one long poll with a change
	// must yield a finite positive rate.
	history := []Poll{
		{Elapsed: 0.1, Changed: false},
		{Elapsed: 0.1, Changed: false},
		{Elapsed: 5, Changed: true},
	}
	mle, err := MLE(history)
	if err != nil {
		t.Fatal(err)
	}
	if !(mle > 0) || math.IsInf(mle, 0) {
		t.Errorf("MLE = %v, want finite positive", mle)
	}
}

func TestMLEEdgeCases(t *testing.T) {
	if _, err := MLE(nil); err == nil {
		t.Error("empty history must fail")
	}
	if _, err := MLE([]Poll{{Elapsed: 0, Changed: true}}); err == nil {
		t.Error("zero elapsed must fail")
	}
	// No changes ever: the MLE is exactly 0.
	got, err := MLE([]Poll{{Elapsed: 1, Changed: false}, {Elapsed: 2, Changed: false}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("no-change MLE = %v, want 0", got)
	}
	// All changes: finite capped estimate.
	got, err = MLE([]Poll{{Elapsed: 1, Changed: true}, {Elapsed: 1, Changed: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !(got > 0) || math.IsInf(got, 0) {
		t.Errorf("all-change MLE = %v, want finite positive", got)
	}
}

func TestTracker(t *testing.T) {
	tr, err := NewTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Record(0, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Record(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if got := tr.Polls(0); got != 2 {
		t.Errorf("Polls(0) = %d, want 2", got)
	}
	if got := tr.Polls(1); got != 0 {
		t.Errorf("Polls(1) = %d, want 0", got)
	}
	if got := tr.Polls(-1); got != 0 {
		t.Errorf("Polls(-1) = %d, want 0", got)
	}
	ests, err := tr.Estimates(7.5)
	if err != nil {
		t.Fatal(err)
	}
	if ests[1] != 7.5 || ests[2] != 7.5 {
		t.Errorf("unpolled elements should use the fallback: %v", ests)
	}
	if !(ests[0] > 0) {
		t.Errorf("polled element estimate %v, want positive", ests[0])
	}
}

func TestTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0); err == nil {
		t.Error("zero elements must fail")
	}
	tr, err := NewTracker(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Record(5, 1, true); err == nil {
		t.Error("out-of-range element must fail")
	}
	if err := tr.Record(0, -1, true); err == nil {
		t.Error("negative elapsed must fail")
	}
}

func TestTrackerEstimatesRecoverRates(t *testing.T) {
	r := stats.NewRNG(123)
	tr, err := NewTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	trueRates := []float64{0.5, 3.0}
	for elem, lambda := range trueRates {
		for _, p := range SimulatePolling(r, lambda, 0.5, 5000) {
			if err := tr.Record(elem, p.Elapsed, p.Changed); err != nil {
				t.Fatal(err)
			}
		}
	}
	ests, err := tr.Estimates(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range trueRates {
		if math.Abs(ests[i]-want) > 0.1*want {
			t.Errorf("element %d estimate %v, want about %v", i, ests[i], want)
		}
	}
}
