package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"freshen/internal/core"
	"freshen/internal/httpmirror"
	"freshen/internal/resilience"
)

// memSource is an in-process global source: object gid's body names
// its global id, so any mis-route surfaces as a body mismatch.
type memSource struct {
	mu       sync.Mutex
	sizes    []float64
	versions []int
}

func newMemSource(n int) *memSource {
	s := &memSource{sizes: make([]float64, n), versions: make([]int, n)}
	for i := range s.sizes {
		s.sizes[i] = 1
	}
	return s
}

func (s *memSource) Catalog(context.Context) ([]httpmirror.CatalogEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]httpmirror.CatalogEntry, len(s.sizes))
	for i := range out {
		out[i] = httpmirror.CatalogEntry{ID: i, Size: s.sizes[i]}
	}
	return out, nil
}

func (s *memSource) Fetch(_ context.Context, id int) ([]byte, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.versions) {
		return nil, 0, fmt.Errorf("no object %d", id)
	}
	v := s.versions[id]
	return []byte(fmt.Sprintf("object-%d-v%d", id, v)), v, nil
}

func (s *memSource) Version(_ context.Context, id int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.versions) {
		return 0, fmt.Errorf("no object %d", id)
	}
	return s.versions[id], nil
}

func (s *memSource) Bump(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[id]++
}

func (s *memSource) Retries() int64  { return 0 }
func (s *memSource) Failures() int64 { return 0 }

// newTestFleet builds and starts a small fleet over a memSource, with
// the supervisor running and a router test server in front; everything
// stops at test cleanup.
func newTestFleet(t *testing.T, src *memSource, mutate func(*Config)) (*Fleet, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Shards:   3,
		Budget:   12,
		Upstream: src,
		Mirror: httpmirror.Config{
			Plan:        core.Config{Strategy: core.StrategyExact},
			ReplanEvery: 1,
			// Pin λ̂ at the prior so planned PF depends only on the
			// profile and budget — stable enough to assert recovery
			// against a pre-kill baseline.
			PriorLambda: 1,
			FloorLambda: 1,
			Seed:        7,
		},
		Period:     50 * time.Millisecond,
		AllocEvery: 50 * time.Millisecond,
		ChaosAdmin: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	f, err := New(ctx, cfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		srv.Close()
		cancel()
		<-done
		closeCtx, closeCancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer closeCancel()
		f.Close(closeCtx)
	})
	return f, srv
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFleetRoutesEveryObject(t *testing.T) {
	src := newMemSource(24)
	f, srv := newTestFleet(t, src, nil)
	for gid := 0; gid < 24; gid++ {
		resp, err := http.Get(srv.URL + "/object/" + strconv.Itoa(gid))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("object %d: status %d", gid, resp.StatusCode)
		}
		want := fmt.Sprintf("object-%d-v0", gid)
		if string(body) != want {
			t.Fatalf("object %d: body %q, want %q (mis-route?)", gid, body, want)
		}
	}
	// Outside the catalog: a clean 404, not a proxy error.
	resp, err := http.Get(srv.URL + "/object/9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown object: status %d, want 404", resp.StatusCode)
	}
	if err := f.Placement().Validate(); err != nil {
		t.Error(err)
	}
}

func TestFleetStatusAndReadyz(t *testing.T) {
	src := newMemSource(24)
	f, srv := newTestFleet(t, src, nil)

	st := f.Status()
	if st.Shards != 3 || st.Objects != 24 {
		t.Fatalf("status reports %d shards × %d objects", st.Shards, st.Objects)
	}
	if st.Mode != "full" {
		t.Errorf("fleet mode %q, want full", st.Mode)
	}
	if !st.AllocationOK {
		t.Error("boot allocation not certified")
	}

	// The HTTP document keeps the single-mirror contract fields.
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{`"mode"`, `"mode_transitions"`, `"shard_status"`} {
		if !strings.Contains(string(body), key) {
			t.Errorf("/status missing %s", key)
		}
	}

	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz status %d with healthy shards", resp.StatusCode)
	}
}

func TestFleetDeadShardKeyspace(t *testing.T) {
	src := newMemSource(24)
	f, srv := newTestFleet(t, src, nil)
	place := f.Placement()

	// Kill shard 1 through the chaos admin surface.
	resp, err := http.Post(srv.URL+"/fleet/kill?shard=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("kill: status %d", resp.StatusCode)
	}

	// The dead shard's keyspace answers 503 + jittered Retry-After,
	// fast; the survivors' keyspace keeps serving.
	client := &http.Client{Timeout: 2 * time.Second}
	for gid := 0; gid < 24; gid++ {
		start := time.Now()
		resp, err := client.Get(srv.URL + "/object/" + strconv.Itoa(gid))
		if err != nil {
			t.Fatalf("object %d: %v", gid, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if place.ShardOf(gid) == 1 {
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("dead-shard object %d: status %d, want 503", gid, resp.StatusCode)
			}
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < resilience.RetryAfterSeconds || ra >= resilience.RetryAfterSeconds+resilience.RetryAfterSpread {
				t.Errorf("dead-shard object %d: Retry-After %q", gid, resp.Header.Get("Retry-After"))
			}
			if d := time.Since(start); d > time.Second {
				t.Errorf("dead-shard object %d took %v — the router must answer immediately", gid, d)
			}
		} else {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("survivor object %d: status %d body %q", gid, resp.StatusCode, body)
			}
		}
	}

	// The dead shard's slice went to the survivors, conserved.
	waitFor(t, 5*time.Second, "post-kill allocation", func() bool {
		a, err := f.Allocation()
		return err == nil && !a.Healthy[1]
	})
	a, err := f.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	if a.Slices[1] != 0 {
		t.Errorf("dead shard holds budget %v", a.Slices[1])
	}
	if err := a.Conserved(1e-6); err != nil {
		t.Error(err)
	}

	// Restart: the shard rejoins and gets a slice back.
	resp, err = http.Post(srv.URL+"/fleet/restart?shard=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("restart: status %d", resp.StatusCode)
	}
	waitFor(t, 10*time.Second, "shard 1 to rejoin with budget", func() bool {
		a, err := f.Allocation()
		return err == nil && a.Healthy[1] && a.Slices[1] > 0
	})
	a, _ = f.Allocation()
	if err := a.Conserved(1e-6); err != nil {
		t.Error(err)
	}
}
