package fleet

import (
	"fmt"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/partition"
)

func TestHashPlacementCoversEveryObject(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {200, 5}, {64, 64}, {1000, 7}} {
		t.Run(fmt.Sprintf("n=%d_k=%d", tc.n, tc.k), func(t *testing.T) {
			p, err := HashPlacement(tc.n, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.K() != tc.k || p.NumObjects() != tc.n {
				t.Fatalf("placement is %d shards × %d objects, want %d × %d", p.K(), p.NumObjects(), tc.k, tc.n)
			}
			for gid := 0; gid < tc.n; gid++ {
				s := p.ShardOf(gid)
				if s < 0 || s >= tc.k {
					t.Fatalf("object %d owned by shard %d", gid, s)
				}
				if got := p.Globals(s)[p.Local(gid)]; got != gid {
					t.Fatalf("object %d round-trips to %d", gid, got)
				}
			}
		})
	}
}

func TestHashPlacementDeterministic(t *testing.T) {
	a, err := HashPlacement(500, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HashPlacement(500, 5)
	if err != nil {
		t.Fatal(err)
	}
	for gid := 0; gid < 500; gid++ {
		if a.ShardOf(gid) != b.ShardOf(gid) || a.Local(gid) != b.Local(gid) {
			t.Fatalf("object %d placed differently across builds: %d/%d vs %d/%d",
				gid, a.ShardOf(gid), a.Local(gid), b.ShardOf(gid), b.Local(gid))
		}
	}
}

func TestHashPlacementRoughlyBalanced(t *testing.T) {
	const n, k = 2000, 5
	p, err := HashPlacement(n, k)
	if err != nil {
		t.Fatal(err)
	}
	mean := n / k
	for s := 0; s < k; s++ {
		got := len(p.Globals(s))
		if got < mean/4 || got > mean*4 {
			t.Errorf("shard %d owns %d objects; mean is %d", s, got, mean)
		}
	}
}

func TestHashPlacementErrors(t *testing.T) {
	if _, err := HashPlacement(10, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := HashPlacement(2, 3); err == nil {
		t.Error("n<k accepted")
	}
}

func TestPlacementOutOfRange(t *testing.T) {
	p, err := HashPlacement(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, gid := range []int{-1, 10, 1 << 20} {
		if p.ShardOf(gid) != -1 || p.Local(gid) != -1 {
			t.Errorf("out-of-range id %d resolved to shard %d local %d", gid, p.ShardOf(gid), p.Local(gid))
		}
	}
}

func TestPartitionPlacement(t *testing.T) {
	elems := make([]freshness.Element, 30)
	for i := range elems {
		elems[i] = freshness.Element{
			ID:         i,
			Lambda:     0.1 + float64(i)*0.3,
			AccessProb: 1.0 / 30,
			Size:       1,
		}
	}
	p, err := PartitionPlacement(elems, 3, partition.KeyPF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.K() != 3 || p.NumObjects() != 30 {
		t.Fatalf("placement is %d shards × %d objects", p.K(), p.NumObjects())
	}
	if _, err := PartitionPlacement(elems[:2], 3, partition.KeyPF, nil); err == nil {
		t.Error("n<k accepted")
	}
}
