package fleet

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
	"freshen/internal/httpmirror"
	"freshen/internal/solver"
	"freshen/internal/testkit"
)

// Allocation is one leveling of the global budget across shards.
type Allocation struct {
	// Budget is the global refresh budget the allocation divides.
	Budget float64
	// Slices is the per-shard budget; exactly 0 for unhealthy shards
	// and Σ Slices == Budget whenever any shard is healthy (budget
	// conservation is an invariant, certified below).
	Slices []float64
	// Healthy records which shards participated.
	Healthy []bool
	// Weights is each healthy shard's traffic share, the factor its
	// local profile was scaled by in the pooled program.
	Weights []float64
	// Perceived is the pooled program's optimal perceived freshness —
	// the fleet-wide PF this allocation funds, under current learned
	// rates and profiles.
	Perceived float64
	// Cert is the KKT certificate of the pooled solution.
	Cert testkit.Certificate
}

// Conserved checks Σ Slices == Budget within a relative tolerance,
// with every slice finite and non-negative.
func (a Allocation) Conserved(tol float64) error {
	total := 0.0
	for s, sl := range a.Slices {
		if sl < 0 || math.IsNaN(sl) || math.IsInf(sl, 0) {
			return fmt.Errorf("fleet: shard %d slice %v", s, sl)
		}
		if !a.Healthy[s] && sl != 0 {
			return fmt.Errorf("fleet: unhealthy shard %d holds budget %v", s, sl)
		}
		total += sl
	}
	if diff := math.Abs(total - a.Budget); diff > tol*math.Max(1, a.Budget) {
		return fmt.Errorf("fleet: slices sum to %v, budget is %v", total, a.Budget)
	}
	return nil
}

// Allocate water-fills the global budget across the healthy shards.
//
// The fleet objective is separable: global PF = Σ_k w_k · PF_k, where
// w_k is shard k's share of fleet traffic and PF_k its local
// perceived freshness. Water-filling the budget across shards on
// their marginal-PF curves is therefore exactly one pooled water-fill
// over the union of their elements with each shard's profile scaled
// by w_k — the same concave engine the mirror already runs, one level
// up. The pooled solve equalizes the marginal PF per unit bandwidth
// across every funded element fleet-wide, so no shard can gain more
// from a dollar of budget than any other is getting: the KKT
// conditions of the hierarchical program, certified independently by
// testkit.Certify on every call.
//
// Traffic shares come from the caller's per-shard traffic counts
// (each shard's learned profile sums to ~1 locally, so pooling
// without reweighting would treat a shard serving 1% of traffic as
// equal to one serving 99%). The fleet supervisor passes windowed
// access deltas with one Laplace pseudo-count per owned object —
// NOT lifetime counts, which reset when a shard restarts and would
// starve a recovering shard's keyspace against survivors that kept
// counting through the outage.
//
// Unhealthy shards contribute nothing and receive 0: their slice
// flows to the survivors in the same solve. Slices sum to Budget
// exactly — the float residual of the per-element summation lands on
// the largest slice.
func Allocate(mirrors []*httpmirror.Mirror, healthy []bool, traffic []float64, budget float64, pol freshness.Policy, tol float64) (Allocation, error) {
	if len(mirrors) != len(healthy) {
		return Allocation{}, fmt.Errorf("fleet: %d mirrors, %d health flags", len(mirrors), len(healthy))
	}
	if len(traffic) != len(mirrors) {
		return Allocation{}, fmt.Errorf("fleet: %d mirrors, %d traffic counts", len(mirrors), len(traffic))
	}
	if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return Allocation{}, fmt.Errorf("fleet: global budget must be positive and finite, got %v", budget)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	a := Allocation{
		Budget:  budget,
		Slices:  make([]float64, len(mirrors)),
		Healthy: make([]bool, len(mirrors)),
		Weights: make([]float64, len(mirrors)),
	}
	type shardView struct {
		shard int
		elems []freshness.Element
		acc   float64
	}
	var views []shardView
	totalAcc := 0.0
	for s, m := range mirrors {
		if !healthy[s] || m == nil {
			continue
		}
		if t := traffic[s]; t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return a, fmt.Errorf("fleet: healthy shard %d traffic count must be positive and finite, got %v", s, traffic[s])
		}
		a.Healthy[s] = true
		v := shardView{shard: s, elems: m.Elements(), acc: traffic[s]}
		totalAcc += v.acc
		views = append(views, v)
	}
	if len(views) == 0 {
		return a, fmt.Errorf("fleet: no healthy shards to allocate %v to", budget)
	}

	var pooled []freshness.Element
	bounds := make([]int, 0, len(views)+1) // pooled index range per view
	bounds = append(bounds, 0)
	for _, v := range views {
		w := v.acc / totalAcc
		a.Weights[v.shard] = w
		for _, e := range v.elems {
			e.ID = len(pooled)
			e.AccessProb *= w
			pooled = append(pooled, e)
		}
		bounds = append(bounds, len(pooled))
	}

	sol, err := solver.NewEngine().WaterFill(solver.Problem{
		Elements:  pooled,
		Bandwidth: budget,
		Policy:    pol,
	})
	if err != nil {
		return a, fmt.Errorf("fleet: pooled water-fill: %w", err)
	}
	a.Perceived = sol.Perceived

	for i, v := range views {
		slice := 0.0
		for j := bounds[i]; j < bounds[i+1]; j++ {
			slice += pooled[j].Size * sol.Freqs[j]
		}
		a.Slices[v.shard] = slice
	}
	// Exact conservation: the pooled solve exhausts the budget (every
	// element has positive marginal value), but per-shard summation
	// re-accumulates it in a different order. The residual is float
	// noise; it lands on the largest slice so Σ Slices == Budget holds
	// to the last bit the largest slice can absorb.
	total, largest := 0.0, views[0].shard
	for _, v := range views {
		total += a.Slices[v.shard]
		if a.Slices[v.shard] > a.Slices[largest] {
			largest = v.shard
		}
	}
	a.Slices[largest] += budget - total

	cert, err := testkit.Certify(pol, pooled, sol.Freqs, budget, tol)
	a.Cert = cert
	if err != nil {
		return a, fmt.Errorf("fleet: pooled allocation failed certification: %w", err)
	}
	if err := a.Conserved(tol); err != nil {
		return a, err
	}
	return a, nil
}
