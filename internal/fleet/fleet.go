package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"freshen/internal/httpmirror"
	"freshen/internal/obs"
	"freshen/internal/persist"
	"freshen/internal/resilience"
)

// Config describes a fleet: K shards over one global source, a global
// budget, and the cadences of the two supervisor loops (health
// checking and budget leveling).
type Config struct {
	// Shards is K, the shard count.
	Shards int
	// Budget is the global refresh budget per period, water-filled
	// across healthy shards every AllocEvery.
	Budget float64
	// Placement fixes the object→shard map; nil means HashPlacement
	// over the source catalog.
	Placement *Placement
	// Upstream is the global source the fleet mirrors.
	Upstream httpmirror.Source
	// ShardUpstream, when non-nil, supplies shard i's own view of the
	// global source — production fleets give every shard its own
	// SourceClient so retry/failure counters and connection pools stay
	// fault-isolated. nil shares Upstream.
	ShardUpstream func(shard int) httpmirror.Source
	// Mirror is the per-shard configuration template (strategy,
	// estimator, fault policy, overload limits). Upstream, Persist,
	// Metrics, and Logger are overridden per shard; Plan.Bandwidth is
	// overridden by the allocator.
	Mirror httpmirror.Config
	// Period is the wall-clock length of one period.
	Period time.Duration
	// StateDir, when non-empty, gives shard i the persist directory
	// StateDir/shard-i.
	StateDir string
	// WrapStore, when non-nil, wraps shard i's store on every start —
	// the chaos hook for persist.FaultStore.
	WrapStore func(shard int, s *persist.Store) persist.Storer
	// AllocEvery is the budget re-leveling cadence; 0 means Period.
	// Health transitions additionally trigger an immediate re-level,
	// so a dead shard's slice reaches the survivors within one period
	// regardless of cadence.
	AllocEvery time.Duration
	// HealthEvery is the /readyz probe cadence; 0 means Period/4.
	HealthEvery time.Duration
	// HealthTimeout bounds one probe; 0 means HealthEvery.
	HealthTimeout time.Duration
	// HealthFailures is how many consecutive probe failures mark a
	// shard unhealthy; 0 means 2.
	HealthFailures int
	// ProxyTimeout is the router's per-request deadline against a
	// shard; 0 means 5s.
	ProxyTimeout time.Duration
	// CertifyTol is the KKT certification tolerance; 0 means 1e-6.
	CertifyTol float64
	// ChaosAdmin mounts POST /fleet/kill and /fleet/restart on the
	// router — hard shard kills over HTTP, for chaos drills only.
	ChaosAdmin bool
	// Metrics, when non-nil, carries the fleet-level series (shard
	// health, slices, router traffic). Per-shard series live on each
	// shard's own listener.
	Metrics *obs.Registry
	// Logger receives fleet events; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.AllocEvery <= 0 {
		c.AllocEvery = c.Period
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = c.Period / 4
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = c.HealthEvery
	}
	if c.HealthFailures <= 0 {
		c.HealthFailures = 2
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 5 * time.Second
	}
	if c.CertifyTol <= 0 {
		c.CertifyTol = 1e-6
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
	return c
}

// AllocationRecord is one supervisor re-leveling, kept in the fleet's
// bounded history so chaos gates can assert budget conservation and
// certification at every replan — including the degraded ones taken
// while shards were down.
type AllocationRecord struct {
	Allocation Allocation
	Err        error
}

// allocHistoryCap bounds the in-memory allocation history.
const allocHistoryCap = 4096

// Fleet is the running sharded tier: the shards, the supervisor state
// (health, allocation), and the router (see router.go).
type Fleet struct {
	cfg    Config
	place  *Placement
	shards []*Shard
	proxy  *http.Client
	log    *slog.Logger
	m      *fleetMetrics

	mu        sync.Mutex
	healthy   []bool
	fails     []int
	alloc     Allocation
	allocErr  error
	reallocs  int
	certFails int
	history   []AllocationRecord
	kick      chan struct{} // buffered; signals an immediate re-level

	// Windowed traffic accounting for the allocator: the mirror each
	// shard's last access reading came from (counters reset when a
	// shard restarts — a new mirror means a new baseline) and that
	// reading itself. reallocate weights shards by the delta since the
	// previous leveling, never by lifetime counts.
	lastMirror []*httpmirror.Mirror
	lastAcc    []int
}

// New builds and starts the fleet: placement, K shards (each booted
// and seeded via ctx), and one initial budget leveling so no shard
// runs on a made-up budget for longer than the boot takes.
func New(ctx context.Context, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("fleet: shard count must be positive, got %d", cfg.Shards)
	}
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("fleet: upstream is required")
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("fleet: period must be positive, got %v", cfg.Period)
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("fleet: budget must be positive, got %v", cfg.Budget)
	}

	place := cfg.Placement
	catalog, err := cfg.Upstream.Catalog(ctx)
	if err != nil {
		return nil, fmt.Errorf("fleet: global catalog: %w", err)
	}
	if place == nil {
		place, err = HashPlacement(len(catalog), cfg.Shards)
		if err != nil {
			return nil, err
		}
	}
	if place.K() != cfg.Shards {
		return nil, fmt.Errorf("fleet: placement has %d shards, config wants %d", place.K(), cfg.Shards)
	}
	if place.NumObjects() != len(catalog) {
		return nil, fmt.Errorf("fleet: placement covers %d objects, catalog has %d", place.NumObjects(), len(catalog))
	}

	f := &Fleet{
		cfg:        cfg,
		place:      place,
		log:        obs.Component(cfg.Logger, "fleet"),
		healthy:    make([]bool, cfg.Shards),
		fails:      make([]int, cfg.Shards),
		kick:       make(chan struct{}, 1),
		lastMirror: make([]*httpmirror.Mirror, cfg.Shards),
		lastAcc:    make([]int, cfg.Shards),
		proxy: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
		}},
	}
	f.m = instrumentFleet(f, cfg.Metrics)

	// Until the first leveling, each shard boots on a budget slice
	// proportional to the transfer mass it owns — close enough that
	// the warm-started solvers do useful work during seeding.
	totalSize := 0.0
	sizeOf := make([]float64, cfg.Shards)
	for _, e := range catalog {
		s := place.ShardOf(e.ID)
		sizeOf[s] += e.Size
		totalSize += e.Size
	}

	for i := 0; i < cfg.Shards; i++ {
		up := cfg.Upstream
		if cfg.ShardUpstream != nil {
			up = cfg.ShardUpstream(i)
		}
		mcfg := cfg.Mirror
		mcfg.Plan.Bandwidth = cfg.Budget * sizeOf[i] / totalSize
		// Stagger refresh phases across shards so the fleet's upstream
		// traffic does not arrive in K synchronized pulses.
		mcfg.Seed = cfg.Mirror.Seed + int64(i)
		stateDir := ""
		if cfg.StateDir != "" {
			stateDir = filepath.Join(cfg.StateDir, fmt.Sprintf("shard-%d", i))
		}
		var wrap func(*persist.Store) persist.Storer
		if cfg.WrapStore != nil {
			idx := i
			wrap = func(s *persist.Store) persist.Storer { return cfg.WrapStore(idx, s) }
		}
		sh, err := NewShard(ShardConfig{
			Index:     i,
			Placement: place,
			Upstream:  up,
			Mirror:    mcfg,
			StateDir:  stateDir,
			WrapStore: wrap,
			Period:    cfg.Period,
			Logger:    cfg.Logger,
		})
		if err != nil {
			f.closeShards()
			return nil, err
		}
		f.shards = append(f.shards, sh)
		if err := sh.Start(ctx); err != nil {
			f.closeShards()
			return nil, err
		}
		f.healthy[i] = true
	}

	f.reallocate("boot")
	return f, nil
}

// closeShards hard-stops whatever started during a failed New.
func (f *Fleet) closeShards() {
	for _, sh := range f.shards {
		if sh != nil {
			sh.Kill()
		}
	}
}

// Run drives the supervisor until ctx is done: /readyz probes on the
// health cadence, budget leveling on the allocation cadence, and an
// immediate leveling whenever the healthy set changes — that is what
// moves a dead shard's slice to the survivors within one period, and
// hands it back on recovery.
func (f *Fleet) Run(ctx context.Context) error {
	health := time.NewTicker(f.cfg.HealthEvery)
	defer health.Stop()
	alloc := time.NewTicker(f.cfg.AllocEvery)
	defer alloc.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-health.C:
			if f.checkHealth(ctx) {
				f.reallocate("health change")
			}
		case <-alloc.C:
			f.reallocate("cadence")
		case <-f.kick:
			if f.checkHealth(ctx) {
				f.reallocate("router fault")
			}
		}
	}
}

// checkHealth probes every shard's /readyz and reports whether the
// healthy set changed. A dead process fails instantly (Running() is
// false); a live one must answer 200 within HealthTimeout. Unhealthy
// needs HealthFailures consecutive misses so one slow probe does not
// trigger a fleet-wide re-level; recovery is immediate on the first
// 200 — a restarted shard gets its budget back as fast as possible.
func (f *Fleet) checkHealth(ctx context.Context) (changed bool) {
	for i, sh := range f.shards {
		ok := sh.Running() && f.probe(ctx, sh.URL())
		f.mu.Lock()
		if ok {
			f.fails[i] = 0
			if !f.healthy[i] {
				f.healthy[i] = true
				changed = true
				f.log.Info("shard recovered", "shard", i)
			}
		} else {
			f.fails[i]++
			// A dead process cannot come back without Restart; skip
			// the grace window and fail it now so its keyspace 503s
			// honestly instead of timing out HealthFailures more times.
			if f.healthy[i] && (f.fails[i] >= f.cfg.HealthFailures || !sh.Running()) {
				f.healthy[i] = false
				changed = true
				f.log.Warn("shard unhealthy", "shard", i, "consecutive_failures", f.fails[i])
			}
		}
		f.mu.Unlock()
	}
	return changed
}

// probe is one /readyz round-trip.
func (f *Fleet) probe(ctx context.Context, url string) bool {
	if url == "" {
		return false
	}
	ctx, cancel := context.WithTimeout(ctx, f.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := f.proxy.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// reallocate re-levels the global budget across the currently healthy
// shards and applies the slices. Every attempt — including failed
// ones — is recorded in the bounded history.
func (f *Fleet) reallocate(reason string) {
	f.mu.Lock()
	healthy := append([]bool(nil), f.healthy...)
	f.mu.Unlock()
	mirrors := make([]*httpmirror.Mirror, len(f.shards))
	for i, sh := range f.shards {
		mirrors[i] = sh.Mirror()
	}
	traffic := f.trafficWindow(mirrors)
	alloc, err := Allocate(mirrors, healthy, traffic, f.cfg.Budget, f.cfg.Mirror.Plan.Policy, f.cfg.CertifyTol)

	f.mu.Lock()
	f.alloc, f.allocErr = alloc, err
	f.reallocs++
	if err != nil {
		f.certFails++
	}
	if len(f.history) < allocHistoryCap {
		f.history = append(f.history, AllocationRecord{Allocation: alloc, Err: err})
	}
	f.mu.Unlock()
	f.m.countRealloc(err)
	f.m.setSlices(alloc)

	if err != nil {
		f.log.Error("budget leveling failed", "reason", reason, "error", err)
		return
	}
	for i, m := range mirrors {
		if m == nil || !alloc.Healthy[i] {
			continue
		}
		if err := m.SetBudget(alloc.Slices[i]); err != nil {
			f.log.Error("applying budget slice failed", "shard", i, "slice", alloc.Slices[i], "error", err)
		}
	}
	f.log.Debug("budget leveled", "reason", reason, "perceived", alloc.Perceived)
}

// trafficWindow returns the allocator's per-shard traffic counts:
// accesses since the previous leveling plus one Laplace pseudo-count
// per owned object. The windowing makes readings comparable across
// restarts — a recovering shard's counter starts at zero, and judging
// it against survivors' lifetime totals would starve its keyspace of
// budget forever. With no recent traffic anywhere the pseudo-counts
// dominate and the split decays to size-proportional.
func (f *Fleet) trafficWindow(mirrors []*httpmirror.Mirror) []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	traffic := make([]float64, len(mirrors))
	for i, m := range mirrors {
		traffic[i] = float64(len(f.place.Globals(i)))
		if m == nil {
			f.lastMirror[i] = nil
			f.lastAcc[i] = 0
			continue
		}
		cur := m.Status().Accesses
		if m == f.lastMirror[i] && cur >= f.lastAcc[i] {
			traffic[i] += float64(cur - f.lastAcc[i])
		} else {
			// A different mirror (restart) or a smaller reading: the
			// counter restarted from zero, so the whole reading is
			// this window's delta.
			traffic[i] += float64(cur)
		}
		f.lastMirror[i] = m
		f.lastAcc[i] = cur
	}
	return traffic
}

// kickRealloc requests an immediate health check + re-level from Run
// without blocking the caller (the router's failover path).
func (f *Fleet) kickRealloc() {
	select {
	case f.kick <- struct{}{}:
	default:
	}
}

// Kill hard-kills shard i (crash semantics; see Shard.Kill) and marks
// it unhealthy immediately so the next supervisor pass redistributes
// its slice without waiting out the probe grace window.
func (f *Fleet) Kill(i int) error {
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d", i)
	}
	f.shards[i].Kill()
	f.mu.Lock()
	changed := f.healthy[i]
	f.healthy[i] = false
	f.fails[i] = f.cfg.HealthFailures
	f.mu.Unlock()
	if changed {
		f.reallocate("kill")
	}
	return nil
}

// Restart boots a killed shard again; it recovers from its persist
// directory and rejoins the healthy set on its first 200 /readyz.
func (f *Fleet) Restart(ctx context.Context, i int) error {
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d", i)
	}
	return f.shards[i].Start(ctx)
}

// Close stops every shard gracefully (final snapshots included).
func (f *Fleet) Close(ctx context.Context) error {
	var firstErr error
	var wg sync.WaitGroup
	errs := make([]error, len(f.shards))
	for i, sh := range f.shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			errs[i] = sh.Stop(ctx)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.proxy.CloseIdleConnections()
	return firstErr
}

// Placement returns the fleet's object→shard map.
func (f *Fleet) Placement() *Placement { return f.place }

// Healthy returns a copy of the current health flags.
func (f *Fleet) Healthy() []bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]bool(nil), f.healthy...)
}

// Allocation returns the most recent budget leveling and its error.
func (f *Fleet) Allocation() (Allocation, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.alloc, f.allocErr
}

// AllocationHistory returns every recorded leveling, oldest first.
func (f *Fleet) AllocationHistory() []AllocationRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]AllocationRecord(nil), f.history...)
}

// Shard returns shard i (for tests and the chaos admin surface).
func (f *Fleet) Shard(i int) *Shard { return f.shards[i] }

// healthySnapshot returns (healthy flags, healthy count) in one lock.
func (f *Fleet) healthySnapshot() ([]bool, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, h := range f.healthy {
		if h {
			n++
		}
	}
	return append([]bool(nil), f.healthy...), n
}

// fleetMode ORs the degradation modes of the healthy shards: the
// fleet is source-degraded if any healthy shard is, and so on. Dead
// shards do not contribute (their keyspace is already 503ing, which
// /status reports through the health flags instead).
func (f *Fleet) fleetMode() resilience.Mode {
	healthy, _ := f.healthySnapshot()
	mode := resilience.ModeFull
	for i, sh := range f.shards {
		if !healthy[i] {
			continue
		}
		if m := sh.Mirror(); m != nil {
			mode |= m.Mode()
		}
	}
	return mode
}
