package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"freshen/internal/httpmirror"
	"freshen/internal/obs"
	"freshen/internal/persist"
)

// ShardConfig describes one shard of the fleet. The mirror template
// carries every tuning knob (plan strategy, estimator, fault policy,
// overload limits); the shard overrides Upstream, Persist, Metrics,
// and Logger with its own fault-isolated instances.
type ShardConfig struct {
	// Index is the shard's position in the placement.
	Index int
	// Placement is the fleet-wide object→shard map.
	Placement *Placement
	// Upstream is the global source; the shard sees only its slice.
	Upstream httpmirror.Source
	// Mirror is the configuration template; Plan.Bandwidth is the
	// shard's initial budget slice (the allocator re-levels it).
	Mirror httpmirror.Config
	// StateDir is the shard's own persist directory; "" disables
	// persistence.
	StateDir string
	// WrapStore, when non-nil, wraps the shard's freshly opened store
	// — the chaos hook persist.FaultStore slots into.
	WrapStore func(*persist.Store) persist.Storer
	// Period is the wall-clock length of one period.
	Period time.Duration
	// Addr is the shard's listen address; "" means 127.0.0.1:0
	// (loopback, kernel-assigned port — shards are fleet-internal).
	Addr string
	// Logger receives the shard's events; nil discards them.
	Logger *slog.Logger
}

// Shard is one fault domain: its own mirror (solver, estimator,
// breaker, limiter), its own metrics registry, its own persist store,
// and its own HTTP listener. Kill tears all of it down abruptly —
// simulating a crash — and Start afterwards recovers from the
// shard's persist directory exactly like a restarted daemon.
type Shard struct {
	cfg ShardConfig

	mu      sync.Mutex
	running bool
	mirror  *httpmirror.Mirror
	store   *persist.Store
	srv     *http.Server
	url     string
	cancel  context.CancelFunc
	done    chan struct{}
	kills   int
}

// NewShard validates the config; the shard starts dead.
func NewShard(cfg ShardConfig) (*Shard, error) {
	if cfg.Placement == nil {
		return nil, fmt.Errorf("fleet: shard %d has no placement", cfg.Index)
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Placement.K() {
		return nil, fmt.Errorf("fleet: shard index %d outside placement of %d", cfg.Index, cfg.Placement.K())
	}
	if cfg.Upstream == nil {
		return nil, fmt.Errorf("fleet: shard %d has no upstream", cfg.Index)
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("fleet: shard %d period must be positive, got %v", cfg.Index, cfg.Period)
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	return &Shard{cfg: cfg}, nil
}

// Start boots the shard: open (and recover from) its persist
// directory, build the mirror — seeding fetches ride ctx — and serve
// it. Idempotent-safe: starting a running shard is an error.
func (s *Shard) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return fmt.Errorf("fleet: shard %d already running", s.cfg.Index)
	}
	lg := obs.Component(s.cfg.Logger, fmt.Sprintf("shard-%d", s.cfg.Index))

	mcfg := s.cfg.Mirror
	mcfg.Upstream = newShardSource(s.cfg.Upstream, s.cfg.Placement, s.cfg.Index)
	mcfg.Logger = lg

	// Every shard gets its own registry: per-shard series live on the
	// shard's own /metrics, so family names never collide across the
	// fleet and a dead shard's scrape dies with it.
	reg := obs.NewRegistry()
	mcfg.Metrics = reg

	var store *persist.Store
	if s.cfg.StateDir != "" {
		var err error
		store, err = persist.Open(s.cfg.StateDir)
		if err != nil {
			return fmt.Errorf("fleet: shard %d state dir: %w", s.cfg.Index, err)
		}
		store.Instrument(reg)
		var storer persist.Storer = store
		if s.cfg.WrapStore != nil {
			storer = s.cfg.WrapStore(store)
		}
		mcfg.Persist = storer
	}

	m, err := httpmirror.New(ctx, mcfg)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return fmt.Errorf("fleet: shard %d mirror: %w", s.cfg.Index, err)
	}

	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return fmt.Errorf("fleet: shard %d listen: %w", s.cfg.Index, err)
	}
	srv := &http.Server{
		Handler:      m.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	go srv.Serve(ln)

	runCtx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Internal refresh-loop errors restart the loop, like the
		// standalone daemon: a shard keeps serving its copies through
		// anything short of Kill.
		for {
			err := m.Run(runCtx, s.cfg.Period)
			if err == nil {
				return
			}
			lg.Error("refresh loop failed; restarting", "error", err)
			select {
			case <-runCtx.Done():
				return
			case <-time.After(s.cfg.Period):
			}
		}
	}()

	s.running = true
	s.mirror = m
	s.store = store
	s.srv = srv
	s.url = "http://" + ln.Addr().String()
	s.cancel = cancel
	s.done = done
	lg.Info("shard up", "addr", s.url, "objects", len(s.cfg.Placement.Globals(s.cfg.Index)), "budget", m.Budget())
	return nil
}

// Kill hard-kills the shard: the refresh loop is cancelled, the
// listener and every open connection close immediately, the store
// closes without a final snapshot — whatever the last cadence
// snapshot plus journal captured is all a restart gets, exactly like
// a crash. Killing a dead shard is a no-op.
func (s *Shard) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return
	}
	s.cancel()
	s.srv.Close()
	// The refresh loop finishes its in-flight step before the store
	// closes underneath it; Run's tick is Period/100, so this wait is
	// short and keeps the teardown race-free.
	<-s.done
	if s.store != nil {
		s.store.Close()
	}
	s.teardownLocked()
	s.kills++
}

// Stop shuts the shard down gracefully: refresh loop first, then a
// final snapshot, then the listener, then the store.
func (s *Shard) Stop(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return nil
	}
	s.cancel()
	<-s.done
	var firstErr error
	if err := s.mirror.FlushSnapshot(); err != nil {
		firstErr = fmt.Errorf("fleet: shard %d final snapshot: %w", s.cfg.Index, err)
	}
	if err := s.srv.Shutdown(ctx); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("fleet: shard %d shutdown: %w", s.cfg.Index, err)
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: shard %d store close: %w", s.cfg.Index, err)
		}
	}
	s.teardownLocked()
	return firstErr
}

// teardownLocked clears the running state. Callers hold s.mu.
func (s *Shard) teardownLocked() {
	s.running = false
	s.mirror = nil
	s.store = nil
	s.srv = nil
	s.url = ""
	s.cancel = nil
	s.done = nil
}

// Running reports whether the shard is up.
func (s *Shard) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Mirror returns the shard's live mirror, or nil while dead.
func (s *Shard) Mirror() *httpmirror.Mirror {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mirror
}

// URL returns the shard's base URL ("http://host:port"), or "" while
// dead.
func (s *Shard) URL() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.url
}

// Kills counts hard kills over the shard's lifetime.
func (s *Shard) Kills() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kills
}
