// Package fleet runs the mirror horizontally: the global catalog is
// partitioned across K fault-isolated shards, each an independent
// httpmirror.Mirror with its own solver, estimator state, and persist
// directory; a top-level allocator water-fills the global refresh
// budget across shards on their marginal-PF curves; and a router
// fronts the fleet, health-checking shards and failing over without
// ever mis-routing or hanging (see DESIGN.md §14).
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"

	"freshen/internal/freshness"
	"freshen/internal/partition"
)

// Placement is the object→shard map: a fixed assignment of global
// object ids [0, N) to shards [0, K), plus the dense local id each
// object carries inside its shard (mirrors require dense catalogs).
// The placement is immutable once built — routing correctness ("never
// mis-routes") depends on the router and every shard agreeing on it.
type Placement struct {
	k       int
	shardOf []int   // global id → owning shard
	local   []int   // global id → dense local id within that shard
	globals [][]int // shard → ascending global ids it owns
}

// K is the shard count.
func (p *Placement) K() int { return p.k }

// NumObjects is the global catalog size.
func (p *Placement) NumObjects() int { return len(p.shardOf) }

// ShardOf returns the shard owning a global id, or -1 when the id is
// outside the catalog.
func (p *Placement) ShardOf(gid int) int {
	if gid < 0 || gid >= len(p.shardOf) {
		return -1
	}
	return p.shardOf[gid]
}

// Local returns the dense local id a global object carries inside its
// owning shard, or -1 when the id is outside the catalog.
func (p *Placement) Local(gid int) int {
	if gid < 0 || gid >= len(p.local) {
		return -1
	}
	return p.local[gid]
}

// Globals returns the ascending global ids shard s owns. The slice is
// shared; callers must not mutate it.
func (p *Placement) Globals(s int) []int { return p.globals[s] }

// Validate checks the placement is a true partition: every global id
// owned by exactly one shard, local ids dense per shard, and no shard
// left empty (an empty shard cannot host a mirror — mirrors reject
// empty catalogs — so placements refuse to create one).
func (p *Placement) Validate() error {
	if p.k <= 0 {
		return fmt.Errorf("fleet: placement has %d shards", p.k)
	}
	seen := 0
	for s, gids := range p.globals {
		if len(gids) == 0 {
			return fmt.Errorf("fleet: shard %d owns no objects (catalog of %d split %d ways)", s, len(p.shardOf), p.k)
		}
		for l, gid := range gids {
			if gid < 0 || gid >= len(p.shardOf) {
				return fmt.Errorf("fleet: shard %d owns out-of-range global id %d", s, gid)
			}
			if p.shardOf[gid] != s || p.local[gid] != l {
				return fmt.Errorf("fleet: inconsistent placement for global id %d", gid)
			}
			seen++
		}
	}
	if seen != len(p.shardOf) {
		return fmt.Errorf("fleet: placement covers %d of %d objects", seen, len(p.shardOf))
	}
	return nil
}

// build finishes a placement from the shard→globals assignment.
func build(n int, globals [][]int) (*Placement, error) {
	p := &Placement{
		k:       len(globals),
		shardOf: make([]int, n),
		local:   make([]int, n),
		globals: globals,
	}
	for i := range p.shardOf {
		p.shardOf[i] = -1
		p.local[i] = -1
	}
	for s, gids := range globals {
		sort.Ints(gids)
		for l, gid := range gids {
			if gid < 0 || gid >= n {
				return nil, fmt.Errorf("fleet: global id %d outside catalog of %d", gid, n)
			}
			if p.shardOf[gid] != -1 {
				return nil, fmt.Errorf("fleet: global id %d assigned to shards %d and %d", gid, p.shardOf[gid], s)
			}
			p.shardOf[gid] = s
			p.local[gid] = l
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// vnodesPerShard is the consistent-hash ring density. 64 virtual
// nodes per shard keeps the expected per-shard load imbalance under a
// few percent at the catalog sizes the mirror targets, while the ring
// stays small enough to build in microseconds.
const vnodesPerShard = 64

// HashPlacement spreads n global ids across k shards by consistent
// hashing: each shard projects vnodesPerShard virtual nodes onto a
// hash ring and every object belongs to the first vnode clockwise
// from its own hash. The assignment depends only on (n, k), so the
// router and every shard derive the identical map independently.
func HashPlacement(n, k int) (*Placement, error) {
	if k <= 0 {
		return nil, fmt.Errorf("fleet: shard count must be positive, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("fleet: cannot split %d objects across %d shards", n, k)
	}
	type vnode struct {
		pos   uint64
		shard int
	}
	ring := make([]vnode, 0, k*vnodesPerShard)
	for s := 0; s < k; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			ring = append(ring, vnode{ringHash(fmt.Sprintf("shard-%d-vnode-%d", s, v)), s})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].pos < ring[j].pos })
	globals := make([][]int, k)
	for gid := 0; gid < n; gid++ {
		h := ringHash(fmt.Sprintf("object-%d", gid))
		i := sort.Search(len(ring), func(i int) bool { return ring[i].pos >= h })
		if i == len(ring) {
			i = 0
		}
		s := ring[i].shard
		globals[s] = append(globals[s], gid)
	}
	// Consistent hashing leaves a shard empty only in tiny catalogs;
	// an empty shard cannot host a mirror, so hand it the largest
	// shard's tail objects (still deterministic in (n, k)).
	for s := range globals {
		for len(globals[s]) == 0 {
			big := 0
			for t := range globals {
				if len(globals[t]) > len(globals[big]) {
					big = t
				}
			}
			if len(globals[big]) < 2 {
				return nil, fmt.Errorf("fleet: cannot split %d objects across %d shards", n, k)
			}
			last := len(globals[big]) - 1
			globals[s] = append(globals[s], globals[big][last])
			globals[big] = globals[big][:last]
		}
	}
	return build(n, globals)
}

// ringHash is FNV-64a through a murmur3 finalizer. Raw FNV leaves the
// sequential "object-N" keys clustered on one arc of the ring (whole
// shards end up empty); the finalizer's avalanche spreads them. Both
// stages are fixed constants — the placement must be identical across
// processes and releases.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// PartitionPlacement groups the catalog with the paper's partitioner
// (sorted by key, split into k contiguous groups) so each shard holds
// statistically similar elements — the placement analogue of the
// partitioned/clustered plan strategies. Requires the global element
// parameters up front; HashPlacement needs only the catalog size.
func PartitionPlacement(elems []freshness.Element, k int, key partition.Key, pol freshness.Policy) (*Placement, error) {
	if k <= 0 {
		return nil, fmt.Errorf("fleet: shard count must be positive, got %d", k)
	}
	if len(elems) < k {
		return nil, fmt.Errorf("fleet: cannot split %d objects across %d shards", len(elems), k)
	}
	part, err := partition.Build(elems, key, k, pol)
	if err != nil {
		return nil, err
	}
	globals := make([][]int, 0, k)
	for _, g := range part.Groups {
		if len(g) == 0 {
			continue
		}
		globals = append(globals, append([]int(nil), g...))
	}
	if len(globals) != k {
		return nil, fmt.Errorf("fleet: partitioner produced %d non-empty groups, want %d", len(globals), k)
	}
	return build(len(elems), globals)
}
