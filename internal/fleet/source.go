package fleet

import (
	"context"
	"fmt"

	"freshen/internal/httpmirror"
)

// shardSource presents one shard's slice of a global source as a
// dense catalog: local id l is global id gids[l]. Mirrors require
// dense ids starting at 0, so every shard sees its own [0, len)
// world; the fleet layer translates at the boundary (here for refresh
// traffic, in the router for serve traffic).
type shardSource struct {
	inner httpmirror.Source
	gids  []int
}

// newShardSource builds shard s's view of the global source.
func newShardSource(inner httpmirror.Source, p *Placement, s int) *shardSource {
	return &shardSource{inner: inner, gids: p.Globals(s)}
}

// Catalog lists the shard's objects under their dense local ids,
// keeping each object's global size.
func (s *shardSource) Catalog(ctx context.Context) ([]httpmirror.CatalogEntry, error) {
	global, err := s.inner.Catalog(ctx)
	if err != nil {
		return nil, err
	}
	sizes := make(map[int]float64, len(global))
	for _, e := range global {
		sizes[e.ID] = e.Size
	}
	local := make([]httpmirror.CatalogEntry, len(s.gids))
	for l, gid := range s.gids {
		size, ok := sizes[gid]
		if !ok {
			return nil, fmt.Errorf("fleet: global catalog is missing object %d owned by this shard", gid)
		}
		local[l] = httpmirror.CatalogEntry{ID: l, Size: size}
	}
	return local, nil
}

// global translates a local id, rejecting out-of-range ids before
// they reach the upstream (a shard must never fetch another shard's
// objects).
func (s *shardSource) global(id int) (int, error) {
	if id < 0 || id >= len(s.gids) {
		return 0, fmt.Errorf("fleet: local id %d outside shard catalog of %d", id, len(s.gids))
	}
	return s.gids[id], nil
}

func (s *shardSource) Fetch(ctx context.Context, id int) ([]byte, int, error) {
	gid, err := s.global(id)
	if err != nil {
		return nil, 0, err
	}
	return s.inner.Fetch(ctx, gid)
}

func (s *shardSource) Version(ctx context.Context, id int) (int, error) {
	gid, err := s.global(id)
	if err != nil {
		return 0, err
	}
	return s.inner.Version(ctx, gid)
}

// Retries and Failures delegate to the shared transport: the counters
// are per-client, and each shard owns its own client in production
// (cmd/freshend builds one SourceClient per shard precisely so these
// stay shard-scoped).
func (s *shardSource) Retries() int64  { return s.inner.Retries() }
func (s *shardSource) Failures() int64 { return s.inner.Failures() }
