package fleet

import (
	"context"
	"testing"

	"freshen/internal/core"
	"freshen/internal/httpmirror"
)

// TestExploreFundedFromLocalSlice pins the explore/hierarchy contract:
// a shard's explore slice is carved out of its OWN budget slice — the
// fraction applies to what the fleet allocator granted locally, never
// to the global pool — and when the allocator cuts a shard's slice the
// explore spend shrinks with it.
func TestExploreFundedFromLocalSlice(t *testing.T) {
	const (
		n, k        = 30, 3
		budget      = 9.0
		exploreFrac = 0.3
	)
	src := newMemSource(n)
	place, err := HashPlacement(n, k)
	if err != nil {
		t.Fatal(err)
	}
	mirrors := make([]*httpmirror.Mirror, k)
	for s := 0; s < k; s++ {
		m, err := httpmirror.New(context.Background(), httpmirror.Config{
			Upstream:    newShardSource(src, place, s),
			Plan:        core.Config{Strategy: core.StrategyExact, Bandwidth: 1},
			ReplanEvery: 1,
			Estimator:   "mle",
			ExploreFrac: exploreFrac,
			PriorLambda: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		mirrors[s] = m
	}

	apply := func(a Allocation) {
		t.Helper()
		for s, m := range mirrors {
			if !a.Healthy[s] {
				continue
			}
			if err := m.SetBudget(a.Slices[s]); err != nil {
				t.Fatalf("shard %d: %v", s, err)
			}
		}
	}
	const eps = 1e-9
	checkWithin := func(a Allocation, context string) {
		t.Helper()
		globalExplore := 0.0
		for s, m := range mirrors {
			if !a.Healthy[s] {
				continue
			}
			st := m.Status()
			if st.ExploreBandwidth > exploreFrac*a.Slices[s]+eps {
				t.Errorf("%s: shard %d explore %v exceeds frac·slice %v",
					context, s, st.ExploreBandwidth, exploreFrac*a.Slices[s])
			}
			if st.BandwidthUsed > a.Slices[s]+eps {
				t.Errorf("%s: shard %d spends %v of its %v slice",
					context, s, st.BandwidthUsed, a.Slices[s])
			}
			globalExplore += st.ExploreBandwidth
		}
		if globalExplore > exploreFrac*a.Budget+eps {
			t.Errorf("%s: fleet explore spend %v exceeds frac·budget %v",
				context, globalExplore, exploreFrac*a.Budget)
		}
	}

	// Level the full budget and apply the slices: every shard's explore
	// spend must fit inside its own slice.
	full, err := Allocate(mirrors, allHealthy(k), uniformTraffic(place), budget, nil, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	apply(full)
	checkWithin(full, "full budget")
	before := make([]float64, k)
	for s, m := range mirrors {
		before[s] = m.Status().ExploreBandwidth
		if before[s] <= 0 {
			t.Fatalf("shard %d has no explore spend on a cold estimator", s)
		}
	}

	// The allocator cuts every slice (smaller global pool): each
	// shard's explore spend must shrink along with its slice — the
	// probe tax cannot hold onto bandwidth the shard no longer has.
	cut, err := Allocate(mirrors, allHealthy(k), uniformTraffic(place), budget/3, nil, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	apply(cut)
	checkWithin(cut, "cut budget")
	for s, m := range mirrors {
		after := m.Status().ExploreBandwidth
		if cut.Slices[s] < full.Slices[s] && after >= before[s] {
			t.Errorf("shard %d explore spend %v did not shrink from %v after its slice was cut %v → %v",
				s, after, before[s], full.Slices[s], cut.Slices[s])
		}
	}
}
