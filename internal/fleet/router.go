package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"freshen/internal/httpmirror"
	"freshen/internal/obs"
	"freshen/internal/resilience"
)

// fleetMetrics is the router-level instrumentation. Per-shard series
// (solver, estimator, serve path) stay on each shard's own listener;
// the fleet registry carries only what exists one level up: health,
// slices, router traffic, failovers.
type fleetMetrics struct {
	requests    *obs.CounterVec
	failovers   *obs.Counter
	deadRejects *obs.Counter
	reallocs    *obs.Counter
	certFails   *obs.Counter
	sliceGauges []func(Allocation)
}

func instrumentFleet(f *Fleet, reg *obs.Registry) *fleetMetrics {
	if reg == nil {
		return nil
	}
	reg.GaugeFunc("fleet_shards",
		"Configured shard count.",
		func() float64 { return float64(f.cfg.Shards) })
	reg.GaugeFunc("fleet_healthy_shards",
		"Shards currently passing readiness probes.",
		func() float64 { _, n := f.healthySnapshot(); return float64(n) })
	reg.GaugeFunc("fleet_budget_total",
		"Global refresh budget per period.",
		func() float64 { return f.cfg.Budget })
	reg.GaugeFunc("fleet_perceived_freshness",
		"Pooled optimal perceived freshness of the latest budget leveling.",
		func() float64 { a, _ := f.Allocation(); return a.Perceived })
	slices := reg.GaugeVec("fleet_shard_budget",
		"Budget slice currently assigned to each shard.", "shard")
	reg.GaugeFunc("fleet_allocation_conserved",
		"1 when the latest leveling's slices sum to the global budget and certify optimal, else 0.",
		func() float64 {
			if _, err := f.Allocation(); err != nil {
				return 0
			}
			return 1
		})
	m := &fleetMetrics{
		requests: reg.CounterVec("fleet_router_requests_total",
			"Requests the router handled, by route and status code.", "route", "code"),
		failovers: reg.Counter("fleet_router_failovers_total",
			"Object reads retried after a shard transport fault."),
		deadRejects: reg.Counter("fleet_router_dead_shard_rejects_total",
			"Object reads answered 503 because the owning shard is down."),
		reallocs: reg.Counter("fleet_reallocations_total",
			"Budget levelings performed."),
		certFails: reg.Counter("fleet_allocation_failures_total",
			"Budget levelings that failed solving, certification, or conservation."),
	}
	m.slicesHook(f, slices)
	return m
}

// slicesHook keeps the per-shard slice gauges in step with the latest
// allocation via a GaugeFunc-per-shard (labels are fixed up front).
func (m *fleetMetrics) slicesHook(f *Fleet, v *obs.GaugeVec) {
	for i := 0; i < f.cfg.Shards; i++ {
		g := v.With(strconv.Itoa(i))
		idx := i
		// The vec gauge is a plain gauge; refresh it lazily when the
		// allocation changes instead of on scrape. countRealloc calls
		// back here.
		m.sliceGauges = append(m.sliceGauges, func(a Allocation) {
			if idx < len(a.Slices) {
				g.Set(a.Slices[idx])
			}
		})
	}
}

func (m *fleetMetrics) countRealloc(err error) {
	if m == nil {
		return
	}
	m.reallocs.Inc()
	if err != nil {
		m.certFails.Inc()
	}
}

func (m *fleetMetrics) setSlices(a Allocation) {
	if m == nil {
		return
	}
	for _, set := range m.sliceGauges {
		set(a)
	}
}

func (m *fleetMetrics) countRequest(route string, code int) {
	if m == nil {
		return
	}
	m.requests.With(route, strconv.Itoa(code)).Inc()
}

func (m *fleetMetrics) countFailover() {
	if m != nil {
		m.failovers.Inc()
	}
}

func (m *fleetMetrics) countDeadReject() {
	if m != nil {
		m.deadRejects.Inc()
	}
}

// FleetStatus is the router's /status document. The top-level mode
// and mode_transitions fields keep the single-mirror status contract
// (loadgen and dashboards sample them without caring whether they
// watch one mirror or a fleet).
type FleetStatus struct {
	Mode            string  `json:"mode"`
	ModeTransitions int     `json:"mode_transitions"`
	Shards          int     `json:"shards"`
	HealthyShards   int     `json:"healthy_shards"`
	Objects         int     `json:"objects"`
	Budget          float64 `json:"budget"`
	Perceived       float64 `json:"planned_perceived_freshness"`
	Reallocations   int     `json:"reallocations"`
	AllocFailures   int     `json:"allocation_failures"`
	AllocationOK    bool    `json:"allocation_ok"`

	ShardStatus []ShardStatus `json:"shard_status"`
}

// ShardStatus is one shard's row in the fleet status.
type ShardStatus struct {
	Shard   int                `json:"shard"`
	URL     string             `json:"url"`
	Healthy bool               `json:"healthy"`
	Running bool               `json:"running"`
	Kills   int                `json:"kills"`
	Objects int                `json:"objects"`
	Slice   float64            `json:"budget_slice"`
	Weight  float64            `json:"traffic_weight"`
	Status  *httpmirror.Status `json:"status,omitempty"`
}

// Status assembles the fleet status document.
func (f *Fleet) Status() FleetStatus {
	healthy, n := f.healthySnapshot()
	alloc, allocErr := f.Allocation()
	f.mu.Lock()
	reallocs, certFails := f.reallocs, f.certFails
	f.mu.Unlock()
	st := FleetStatus{
		Mode:          f.fleetMode().String(),
		Shards:        len(f.shards),
		HealthyShards: n,
		Objects:       f.place.NumObjects(),
		Budget:        f.cfg.Budget,
		Perceived:     alloc.Perceived,
		Reallocations: reallocs,
		AllocFailures: certFails,
		AllocationOK:  allocErr == nil,
	}
	for i, sh := range f.shards {
		row := ShardStatus{
			Shard:   i,
			URL:     sh.URL(),
			Healthy: healthy[i],
			Running: sh.Running(),
			Kills:   sh.Kills(),
			Objects: len(f.place.Globals(i)),
		}
		if i < len(alloc.Slices) {
			row.Slice = alloc.Slices[i]
			row.Weight = alloc.Weights[i]
		}
		if m := sh.Mirror(); m != nil {
			s := m.Status()
			row.Status = &s
			st.ModeTransitions += s.ModeTransitions
		}
		st.ShardStatus = append(st.ShardStatus, row)
	}
	return st
}

// Handler is the fleet router: the one address clients talk to.
//
//	GET  /object/{gid}   — proxy to the owning shard (placement map);
//	                       per-request deadline, one retry on transport
//	                       fault, then 503 + jittered Retry-After. A
//	                       dead shard's keyspace 503s immediately —
//	                       never a hang, never a mis-route.
//	GET  /status         — fleet-wide aggregate (loadgen-compatible
//	                       top-level mode/mode_transitions).
//	GET  /healthz        — liveness (always 200 while the router runs).
//	GET  /readyz         — 200 when ≥1 shard is healthy.
//	GET  /metrics        — fleet-level series (with Config.Metrics).
//	POST /fleet/kill     — ?shard=i hard-kill   (Config.ChaosAdmin).
//	POST /fleet/restart  — ?shard=i restart      (Config.ChaosAdmin).
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/object/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		f.routeObject(w, r)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(f.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		f.m.countRequest("/status", http.StatusOK)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		f.m.countRequest("/healthz", http.StatusOK)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		_, n := f.healthySnapshot()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if n == 0 {
			w.Header()["Retry-After"] = resilience.RetryAfterHeader()
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "unavailable")
			f.m.countRequest("/readyz", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
		f.m.countRequest("/readyz", http.StatusOK)
	})
	if f.cfg.ChaosAdmin {
		mux.HandleFunc("/fleet/kill", f.chaosAdmin(func(ctx context.Context, i int) error {
			return f.Kill(i)
		}))
		mux.HandleFunc("/fleet/restart", f.chaosAdmin(func(ctx context.Context, i int) error {
			return f.Restart(ctx, i)
		}))
	}
	if f.cfg.Metrics != nil {
		mux.Handle("/metrics", f.cfg.Metrics.Handler())
	}
	return mux
}

// chaosAdmin wraps a kill/restart action as a POST ?shard=i handler.
func (f *Fleet) chaosAdmin(action func(context.Context, int) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		i, err := strconv.Atoi(r.URL.Query().Get("shard"))
		if err != nil {
			http.Error(w, "bad shard", http.StatusBadRequest)
			return
		}
		if err := action(r.Context(), i); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// proxiedHeaders are the shard response headers the router forwards
// verbatim: the object contract (version), the degradation contract
// (mode, staleness), and the backpressure contract (Retry-After, with
// the shard's own jitter).
var proxiedHeaders = []string{
	"X-Version", "X-Mirror-Mode", "X-Staleness-Periods", "Retry-After", "Content-Type",
}

// routeObject proxies one object read to its owning shard.
func (f *Fleet) routeObject(w http.ResponseWriter, r *http.Request) {
	gid, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/object/"))
	if err != nil {
		http.Error(w, "bad object id", http.StatusBadRequest)
		f.m.countRequest("/object", http.StatusBadRequest)
		return
	}
	shard := f.place.ShardOf(gid)
	if shard < 0 {
		http.Error(w, "no such object", http.StatusNotFound)
		f.m.countRequest("/object", http.StatusNotFound)
		return
	}
	sh := f.shards[shard]
	f.mu.Lock()
	healthy := f.healthy[shard]
	f.mu.Unlock()
	// A dead or unhealthy owner answers now — a 503 with a jittered
	// retry hint — not after a connect timeout. The object exists and
	// exactly one shard may serve it, so there is nowhere to fail over
	// to; the honest answer is "retry shortly", and the supervisor is
	// already re-leveling the survivors' budgets.
	if !healthy || !sh.Running() {
		f.rejectDeadShard(w)
		return
	}

	target := fmt.Sprintf("%s/object/%d", sh.URL(), f.place.Local(gid))
	resp, err := f.proxyGet(r, target)
	if err != nil {
		// One retry: a fresh connection, same deadline. Transport
		// faults here are either the shard dying mid-request (the
		// retry fails fast and we 503) or a dropped idle connection
		// (the retry succeeds).
		f.m.countFailover()
		resp, err = f.proxyGet(r, target)
		if err != nil {
			f.kickRealloc()
			f.rejectDeadShard(w)
			return
		}
	}
	defer resp.Body.Close()
	h := w.Header()
	for _, k := range proxiedHeaders {
		if vs := resp.Header[k]; len(vs) > 0 {
			h[k] = vs
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	f.m.countRequest("/object", resp.StatusCode)
}

// proxyGet performs one shard round-trip under the router deadline.
func (f *Fleet) proxyGet(r *http.Request, target string) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(r.Context(), f.cfg.ProxyTimeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := f.proxy.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The body carries the deadline until fully read; tie the cancel
	// to body close so the caller's io.Copy stays bounded.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody releases the request's deadline context when the
// response body is closed.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// rejectDeadShard answers for an unreachable owner.
func (f *Fleet) rejectDeadShard(w http.ResponseWriter) {
	w.Header()["Retry-After"] = resilience.RetryAfterHeader()
	http.Error(w, "shard unavailable", http.StatusServiceUnavailable)
	f.m.countDeadReject()
	f.m.countRequest("/object", http.StatusServiceUnavailable)
}
