package fleet

import (
	"context"
	"fmt"
	"math"
	"testing"

	"freshen/internal/core"
	"freshen/internal/httpmirror"
)

// newShardMirrors builds k live mirrors over one memSource via a hash
// placement — the allocator's inputs, without a running fleet.
func newShardMirrors(t *testing.T, n, k int) ([]*httpmirror.Mirror, *Placement) {
	t.Helper()
	src := newMemSource(n)
	place, err := HashPlacement(n, k)
	if err != nil {
		t.Fatal(err)
	}
	mirrors := make([]*httpmirror.Mirror, k)
	for s := 0; s < k; s++ {
		m, err := httpmirror.New(context.Background(), httpmirror.Config{
			Upstream: newShardSource(src, place, s),
			Plan: core.Config{
				Strategy:  core.StrategyExact,
				Bandwidth: 1,
			},
			ReplanEvery: 1,
			PriorLambda: 1,
			FloorLambda: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		mirrors[s] = m
	}
	return mirrors, place
}

func uniformTraffic(place *Placement) []float64 {
	traffic := make([]float64, place.K())
	for s := range traffic {
		traffic[s] = float64(len(place.Globals(s)))
	}
	return traffic
}

func allHealthy(k int) []bool {
	h := make([]bool, k)
	for i := range h {
		h[i] = true
	}
	return h
}

func TestAllocateConservation(t *testing.T) {
	mirrors, place := newShardMirrors(t, 30, 3)
	const budget = 9.0
	a, err := Allocate(mirrors, allHealthy(3), uniformTraffic(place), budget, nil, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Conserved(1e-9); err != nil {
		t.Error(err)
	}
	total := 0.0
	for s, sl := range a.Slices {
		if sl <= 0 {
			t.Errorf("shard %d slice %v with uniform traffic", s, sl)
		}
		total += sl
	}
	if total != budget {
		t.Errorf("slices sum to %v, want exactly %v (residual must land on a slice)", total, budget)
	}
	if a.Cert.Funded == 0 || a.Cert.StationarityErr > 1e-6 || a.Cert.CutoffErr > 1e-6 {
		t.Errorf("certificate not clean: %+v", a.Cert)
	}
	if a.Perceived <= 0 || a.Perceived > 1 {
		t.Errorf("pooled PF %v outside (0, 1]", a.Perceived)
	}
}

func TestAllocateExcludesUnhealthy(t *testing.T) {
	mirrors, place := newShardMirrors(t, 30, 3)
	healthy := allHealthy(3)
	healthy[1] = false
	a, err := Allocate(mirrors, healthy, uniformTraffic(place), 9, nil, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Slices[1] != 0 {
		t.Errorf("unhealthy shard 1 got %v", a.Slices[1])
	}
	if a.Weights[1] != 0 {
		t.Errorf("unhealthy shard 1 weighted %v", a.Weights[1])
	}
	if a.Slices[0]+a.Slices[2] != 9 {
		t.Errorf("survivors hold %v of 9", a.Slices[0]+a.Slices[2])
	}
	if err := a.Conserved(1e-9); err != nil {
		t.Error(err)
	}
}

func TestAllocateNoHealthyShards(t *testing.T) {
	mirrors, place := newShardMirrors(t, 30, 3)
	if _, err := Allocate(mirrors, make([]bool, 3), uniformTraffic(place), 9, nil, 1e-6); err == nil {
		t.Fatal("allocating to zero healthy shards must fail")
	}
	// A nil mirror (dead shard) with a true health flag is excluded,
	// not dereferenced.
	mirrors[0], mirrors[1] = nil, nil
	healthy := []bool{true, true, true}
	a, err := Allocate(mirrors, healthy, uniformTraffic(place), 9, nil, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Slices[2] != 9 {
		t.Errorf("sole live shard holds %v of 9", a.Slices[2])
	}
}

func TestAllocateTrafficWeighting(t *testing.T) {
	mirrors, place := newShardMirrors(t, 30, 3)
	// Shard 0 carries 100× the traffic of the rest: its keyspace's
	// marginal PF dominates, so it must win a strictly larger slice
	// than under uniform traffic.
	skew := uniformTraffic(place)
	skew[0] *= 100
	uni, err := Allocate(mirrors, allHealthy(3), uniformTraffic(place), 6, nil, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Allocate(mirrors, allHealthy(3), skew, 6, nil, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Slices[0] <= uni.Slices[0] {
		t.Errorf("hot shard slice %v not above uniform %v", hot.Slices[0], uni.Slices[0])
	}
	if hot.Weights[0] <= hot.Weights[1] || hot.Weights[0] <= hot.Weights[2] {
		t.Errorf("hot shard weight %v not dominant: %v", hot.Weights[0], hot.Weights)
	}
	if err := hot.Conserved(1e-9); err != nil {
		t.Error(err)
	}
}

func TestAllocateRejectsBadInputs(t *testing.T) {
	mirrors, place := newShardMirrors(t, 30, 3)
	traffic := uniformTraffic(place)
	for _, budget := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Allocate(mirrors, allHealthy(3), traffic, budget, nil, 1e-6); err == nil {
			t.Errorf("budget %v accepted", budget)
		}
	}
	if _, err := Allocate(mirrors, allHealthy(2), traffic, 9, nil, 1e-6); err == nil {
		t.Error("mismatched health slice accepted")
	}
	if _, err := Allocate(mirrors, allHealthy(3), traffic[:2], 9, nil, 1e-6); err == nil {
		t.Error("mismatched traffic slice accepted")
	}
	for _, bad := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		badTraffic := uniformTraffic(place)
		badTraffic[1] = bad
		if _, err := Allocate(mirrors, allHealthy(3), badTraffic, 9, nil, 1e-6); err == nil {
			t.Errorf("traffic count %v accepted for a healthy shard", bad)
		}
	}
}

func TestShardSourceMapping(t *testing.T) {
	src := newMemSource(20)
	place, err := HashPlacement(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		ss := newShardSource(src, place, s)
		catalog, err := ss.Catalog(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		gids := place.Globals(s)
		if len(catalog) != len(gids) {
			t.Fatalf("shard %d catalog has %d entries for %d owned objects", s, len(catalog), len(gids))
		}
		for local, e := range catalog {
			if e.ID != local {
				t.Errorf("shard %d catalog entry %d has id %d — local ids must be dense", s, local, e.ID)
			}
			body, _, err := ss.Fetch(context.Background(), local)
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("object-%d-v0", gids[local])
			if string(body) != want {
				t.Errorf("shard %d local %d fetched %q, want %q", s, local, body, want)
			}
		}
		// Out-of-range local ids fail instead of touching a neighbour's
		// keyspace.
		if _, _, err := ss.Fetch(context.Background(), len(gids)); err == nil {
			t.Errorf("shard %d fetched past its keyspace", s)
		}
		if _, _, err := ss.Fetch(context.Background(), -1); err == nil {
			t.Errorf("shard %d fetched local -1", s)
		}
	}
}
