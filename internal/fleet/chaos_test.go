package fleet

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"freshen/internal/persist"
	"freshen/internal/resilience"
)

// TestShardKillChaos is the fleet's chaos gate: loadgen-style traffic
// against the router while a shard is hard-killed and restarted
// mid-run and a survivor's disk breaks and heals underneath it.
//
// Invariants under fire:
//   - every response is either 200 with the right object's body or
//     503 with a valid jittered Retry-After — never a hang, never a
//     mis-route, never a bare error;
//   - every successful budget leveling conserves the global budget
//     exactly and certifies against the KKT conditions, throughout
//     the outage;
//   - within bounded periods of the restart the fleet's planned PF is
//     back within 1% of the pre-kill steady state and the restarted
//     shard holds budget again.
func TestShardKillChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gate skipped in -short")
	}

	const (
		numObjects = 24
		killShard  = 1
		diskShard  = 2
	)
	var (
		faultMu sync.Mutex
		faults  []*persist.FaultStore
	)
	src := newMemSource(numObjects)
	f, srv := newTestFleet(t, src, func(cfg *Config) {
		cfg.StateDir = t.TempDir()
		cfg.Mirror.SnapshotEvery = 2
		cfg.WrapStore = func(shard int, s *persist.Store) persist.Storer {
			if shard != diskShard {
				return s
			}
			fs := persist.NewFaultStore(s, persist.FaultPlan{})
			faultMu.Lock()
			faults = append(faults, fs)
			faultMu.Unlock()
			return fs
		}
	})
	place := f.Placement()

	// Persistent shards are not ready until their first snapshot
	// lands; wait out the boot window so the baseline is steady state.
	waitFor(t, 10*time.Second, "boot steady state", func() bool {
		for _, h := range f.Healthy() {
			if !h {
				return false
			}
		}
		a, err := f.Allocation()
		return err == nil && a.Conserved(1e-6) == nil
	})
	baseline, err := f.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	p0 := baseline.Perceived
	if p0 <= 0 {
		t.Fatalf("baseline PF %v", p0)
	}

	// Load: workers sweep the catalog through the router for the
	// whole drill, classifying every response.
	type failure struct {
		gid  int
		desc string
	}
	var (
		failMu   sync.Mutex
		failures []failure
		requests int64
	)
	record := func(gid int, format string, args ...any) {
		failMu.Lock()
		defer failMu.Unlock()
		if len(failures) < 32 {
			failures = append(failures, failure{gid, fmt.Sprintf(format, args...)})
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		// Each worker sweeps the catalog round-robin from a staggered
		// offset: full keyspace coverage, and per-object access counts
		// stay balanced so the learned profiles hold ~uniform — the
		// post-drill PF is then comparable to the idle baseline.
		go func(offset int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gid := (offset + i) % numObjects
				resp, err := client.Get(srv.URL + "/object/" + strconv.Itoa(gid))
				if err != nil {
					record(gid, "transport error: %v", err)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				failMu.Lock()
				requests++
				failMu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					if !strings.HasPrefix(string(body), fmt.Sprintf("object-%d-v", gid)) {
						record(gid, "mis-routed body %q", body)
					}
				case http.StatusServiceUnavailable:
					ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
					if err != nil || ra < resilience.RetryAfterSeconds || ra >= resilience.RetryAfterSeconds+resilience.RetryAfterSpread {
						record(gid, "503 with Retry-After %q", resp.Header.Get("Retry-After"))
					}
				default:
					record(gid, "status %d body %q", resp.StatusCode, body)
				}
			}
		}(w * numObjects / 4)
	}

	post := func(path string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}

	// The drill: kill a shard mid-ramp, break a survivor's disk on
	// top of the outage, heal it, then bring the dead shard back —
	// all while the load keeps coming.
	time.Sleep(300 * time.Millisecond)
	post("/fleet/kill?shard=" + strconv.Itoa(killShard))
	time.Sleep(300 * time.Millisecond)
	faultMu.Lock()
	for _, fs := range faults {
		fs.Break(persist.ErrDiskIO)
	}
	faultMu.Unlock()
	time.Sleep(300 * time.Millisecond)
	faultMu.Lock()
	for _, fs := range faults {
		fs.Heal()
	}
	faultMu.Unlock()
	post("/fleet/restart?shard=" + strconv.Itoa(killShard))
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	failMu.Lock()
	total := requests
	caught := append([]failure(nil), failures...)
	failMu.Unlock()
	if total < 100 {
		t.Fatalf("load produced only %d requests — the drill did not exercise the router", total)
	}
	for _, fl := range caught {
		owner := place.ShardOf(fl.gid)
		t.Errorf("object %d (shard %d): %s", fl.gid, owner, fl.desc)
	}

	// Recovery: the restarted shard holds budget again and the planned
	// fleet PF is back within 1% of the pre-kill baseline.
	defer func() {
		if t.Failed() {
			a, err := f.Allocation()
			t.Logf("final state: healthy=%v allocErr=%v slices=%v perceived=%v (baseline %v)",
				f.Healthy(), err, a.Slices, a.Perceived, p0)
		}
	}()
	waitFor(t, 10*time.Second, "PF recovery after restart", func() bool {
		a, err := f.Allocation()
		return err == nil && a.Healthy[killShard] && a.Slices[killShard] > 0 &&
			math.Abs(a.Perceived-p0) <= 0.01*p0
	})

	// The disk-faulted survivor never left the healthy set's keyspace
	// dark: it is healthy at the end and its shard status says so.
	st := f.Status()
	if st.HealthyShards != st.Shards {
		t.Errorf("%d/%d shards healthy after the drill", st.HealthyShards, st.Shards)
	}
	if !st.ShardStatus[diskShard].Healthy {
		t.Errorf("disk-faulted shard %d unhealthy after heal", diskShard)
	}

	// Budget conservation held at every successful leveling throughout
	// the drill — kill, disk fault, and recovery included.
	history := f.AllocationHistory()
	leveled := 0
	for i, rec := range history {
		if rec.Err != nil {
			continue
		}
		leveled++
		if err := rec.Allocation.Conserved(1e-6); err != nil {
			t.Errorf("leveling %d: %v", i, err)
		}
		if rec.Allocation.Cert.StationarityErr > 1e-6 || rec.Allocation.Cert.CutoffErr > 1e-6 {
			t.Errorf("leveling %d: certificate %+v", i, rec.Allocation.Cert)
		}
	}
	if leveled < 3 {
		t.Errorf("only %d successful levelings recorded across the drill", leveled)
	}
	t.Logf("drill: %d requests, %d levelings (%d recorded), PF baseline %.6f", total, leveled, len(history), p0)
}
