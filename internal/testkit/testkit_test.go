package testkit

import (
	"math"
	"strings"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/solver"
)

// solveWaterFill adapts the production solver to the harness's
// SolveFunc shape.
func solveWaterFill(elems []freshness.Element, bandwidth float64, pol freshness.Policy) ([]float64, error) {
	sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: bandwidth, Policy: pol})
	if err != nil {
		return nil, err
	}
	return sol.Freqs, nil
}

func table1Elements() []freshness.Element {
	elems := make([]freshness.Element, 5)
	for i := range elems {
		elems[i] = freshness.Element{ID: i, Lambda: float64(i + 1), AccessProb: 0.2, Size: 1}
	}
	return elems
}

func TestCertifyAcceptsOptimum(t *testing.T) {
	elems := table1Elements()
	freqs, err := solveWaterFill(elems, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(nil, elems, freqs, 5, 1e-6)
	if err != nil {
		t.Fatalf("true optimum rejected: %v", err)
	}
	if cert.Funded != 4 || cert.Starved != 1 {
		t.Errorf("funded/starved = %d/%d, want 4/1 (Table 1 row b)", cert.Funded, cert.Starved)
	}
	if cert.Mu <= 0 {
		t.Errorf("recovered multiplier %v not positive", cert.Mu)
	}
	if math.Abs(cert.BandwidthUsed-5) > 1e-6 {
		t.Errorf("bandwidth used %v, want 5", cert.BandwidthUsed)
	}
}

func TestCertifyRejectsPerturbations(t *testing.T) {
	elems := table1Elements()
	freqs, err := solveWaterFill(elems, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	perturb := func(mutate func([]float64)) []float64 {
		out := append([]float64(nil), freqs...)
		mutate(out)
		return out
	}
	cases := []struct {
		name string
		f    []float64
		want string
	}{
		{
			name: "bandwidth shifted between funded elements",
			f:    perturb(func(f []float64) { f[0] += 0.3; f[1] -= 0.3 }),
			want: "not equalized",
		},
		{
			name: "budget exceeded",
			f:    perturb(func(f []float64) { f[0] += 1 }),
			want: "exceeds budget",
		},
		{
			name: "budget left slack",
			f:    perturb(func(f []float64) { f[0] -= 1 }),
			want: "slack",
		},
		{
			name: "starved element funded instead",
			f:    perturb(func(f []float64) { f[4], f[3] = f[3], 0 }),
			want: "not equalized",
		},
		{
			name: "negative frequency",
			f:    perturb(func(f []float64) { f[0] = -1 }),
			want: "invalid frequency",
		},
		{
			name: "nothing funded",
			f:    make([]float64, 5),
			want: "unspent",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Certify(nil, elems, tc.f, 5, 1e-6)
			if err == nil {
				t.Fatalf("perturbed allocation certified: %v", tc.f)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCertifyRejectsStarvedHighValueElement(t *testing.T) {
	// An allocation that is exactly optimal for a sub-mirror — funded
	// marginals perfectly equalized, budget exhausted — but starves an
	// element whose first sliver of bandwidth is worth more than the
	// multiplier. Only the cutoff condition can catch this one.
	sub := []freshness.Element{
		{ID: 0, Lambda: 2, AccessProb: 0.45, Size: 1},
		{ID: 1, Lambda: 2, AccessProb: 0.45, Size: 1},
	}
	freqs, err := solveWaterFill(sub, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := append(sub, freshness.Element{ID: 2, Lambda: 1, AccessProb: 0.1, Size: 1})
	_, err = Certify(nil, full, append(freqs, 0), 10, 1e-6)
	if err == nil {
		t.Fatal("allocation starving a high-value element certified")
	}
	if !strings.Contains(err.Error(), "peak marginal value") {
		t.Errorf("error %q does not mention the cutoff condition", err)
	}
}

func TestCertifyValuelessElementFunded(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 0, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 2, AccessProb: 0.5, Size: 1},
	}
	if _, err := Certify(nil, elems, []float64{1, 1}, 2, 1e-6); err == nil {
		t.Error("funding a never-changing element must fail certification")
	}
}

func TestCertifyZeroBudgetAndValuelessMirror(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 0, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 2, AccessProb: 0, Size: 1},
	}
	cert, err := Certify(nil, elems, []float64{0, 0}, 10, 1e-6)
	if err != nil {
		t.Fatalf("all-valueless mirror rejected: %v", err)
	}
	if cert.Funded != 0 || cert.Mu != 0 {
		t.Errorf("unexpected certificate for valueless mirror: %+v", cert)
	}
	active := table1Elements()
	if _, err := Certify(nil, active, make([]float64, 5), 0, 1e-6); err != nil {
		t.Fatalf("zero-budget schedule rejected: %v", err)
	}
}

func TestCertifyArgumentValidation(t *testing.T) {
	elems := table1Elements()
	if _, err := Certify(nil, elems, []float64{1}, 5, 1e-6); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Certify(nil, elems, make([]float64, 5), math.Inf(1), 1e-6); err == nil {
		t.Error("infinite bandwidth accepted")
	}
	if _, err := Certify(nil, elems, make([]float64, 5), 5, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := Certify(nil, nil, nil, 5, 1e-6); err == nil {
		t.Error("empty mirror accepted")
	}
}

func TestCertifyVariableSizesAndPoisson(t *testing.T) {
	elems := RandomElements(11, 40, true)
	for _, pol := range []freshness.Policy{nil, freshness.PoissonOrder{}} {
		freqs, err := solveWaterFill(elems, 30, pol)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Certify(pol, elems, freqs, 30, 1e-5); err != nil {
			t.Errorf("policy %v: optimum rejected: %v", pol, err)
		}
	}
}

func TestPropertySuiteAgainstSolver(t *testing.T) {
	elems := RandomElements(3, 60, true)
	AssertMonotoneInBandwidth(t, solveWaterFill, nil, elems, []float64{1, 5, 20, 60, 200})
	AssertConcaveInBandwidth(t, solveWaterFill, nil, elems, 5, 105, 10)
	AssertScaleInvariance(t, solveWaterFill, nil, elems, 40, 7.5)
	AssertScaleInvariance(t, solveWaterFill, freshness.PoissonOrder{}, elems, 40, 0.25)
}

func TestFoldFloatDomain(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, 1e-300, 1e300, math.Inf(1), math.Inf(-1), math.NaN(), 5e-324, -3.7e19}
	for _, x := range cases {
		got := FoldFloat(x, 1e-9, 1e9)
		if !(got >= 1e-9 && got <= 1e9) {
			t.Errorf("FoldFloat(%v) = %v outside [1e-9, 1e9]", x, got)
		}
	}
	// In-range values pass through untouched.
	if got := FoldFloat(-42.5, 1e-9, 1e9); got != 42.5 {
		t.Errorf("FoldFloat(-42.5) = %v, want 42.5 (magnitude preserved)", got)
	}
}

func TestFuzzElementsAlwaysValid(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{0, 0, 0, 0, 0, 0},
		{255, 255, 255, 255, 255, 255},
		[]byte(strings.Repeat("\x00\xff", 300)),
	}
	for _, in := range inputs {
		elems := FuzzElements(in)
		if err := freshness.ValidateElements(elems); err != nil {
			t.Errorf("FuzzElements(%v) invalid: %v", in, err)
		}
		if len(elems) > 64 {
			t.Errorf("FuzzElements returned %d elements", len(elems))
		}
	}
}

func TestRandomElementsReproducible(t *testing.T) {
	a := RandomElements(7, 50, true)
	b := RandomElements(7, 50, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d differs across identical seeds", i)
		}
	}
	if err := freshness.ValidateElements(a); err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, e := range a {
		mass += e.AccessProb
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Errorf("access mass %v, want 1", mass)
	}
}

func TestCrossValidateSmoke(t *testing.T) {
	elems := RandomElements(5, 12, false)
	freqs, err := solveWaterFill(elems, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	CrossValidate(t, elems, freqs, CrossValOptions{Seed: 1})
}

// failRecorder captures harness failures so the negative paths of the
// assertion helpers can themselves be tested.
type failRecorder struct {
	fatals, errors int
	last           string
}

func (r *failRecorder) Helper() {}
func (r *failRecorder) Fatalf(format string, args ...any) {
	r.fatals++
	r.last = format
	panic(crossValAbort{})
}
func (r *failRecorder) Errorf(format string, args ...any) { r.errors++; r.last = format }
func (r *failRecorder) Logf(string, ...any)               {}

type crossValAbort struct{}

// run invokes fn, swallowing the panic Fatalf uses to stop execution.
func (r *failRecorder) run(fn func()) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(crossValAbort); !ok {
				panic(v)
			}
		}
	}()
	fn()
}

func TestCrossValidateDetectsWrongClosedForm(t *testing.T) {
	// The validator must discriminate: a fixed-order simulation checked
	// against the Poisson-order closed form (materially different at
	// moderate f/λ) has to fail. This is exactly the mismatch the
	// validator exists to catch — an analytic model that does not
	// describe the simulated dynamics.
	elems := RandomElements(9, 10, false)
	freqs, err := solveWaterFill(elems, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &failRecorder{}
	rec.run(func() {
		CrossValidate(rec, elems, freqs, CrossValOptions{
			Seed:           2,
			analyticPolicy: freshness.PoissonOrder{},
		})
	})
	if rec.errors == 0 && rec.fatals == 0 {
		t.Error("validator accepted a closed form that does not describe the simulated discipline")
	}
}

func TestMustCertifyFailsOnViolation(t *testing.T) {
	elems := table1Elements()
	rec := &failRecorder{}
	rec.run(func() {
		MustCertify(rec, nil, elems, []float64{5, 0, 0, 0, 0}, 5, 1e-6)
	})
	if rec.fatals == 0 {
		t.Error("MustCertify did not fail on a non-optimal allocation")
	}
}
