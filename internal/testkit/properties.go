package testkit

import (
	"math"

	"freshen/internal/freshness"
)

// SolveFunc produces an (allegedly optimal) frequency vector for a
// mirror under a refresh budget. The solver packages adapt their entry
// points to this shape so testkit can drive them without importing
// them (which would cycle: their test suites import testkit).
type SolveFunc func(elems []freshness.Element, bandwidth float64, pol freshness.Policy) ([]float64, error)

// perceived scores a schedule under the policy (nil = Fixed-Order).
func perceived(tb testingTB, pol freshness.Policy, elems []freshness.Element, freqs []float64) float64 {
	tb.Helper()
	if pol == nil {
		pol = freshness.FixedOrder{}
	}
	pf, err := freshness.Perceived(pol, elems, freqs)
	if err != nil {
		tb.Fatalf("scoring schedule: %v", err)
	}
	return pf
}

// AssertMonotoneInBandwidth asserts the optimal perceived freshness is
// non-decreasing in the budget: extra bandwidth never hurts. budgets
// must be given in increasing order.
func AssertMonotoneInBandwidth(tb testingTB, solve SolveFunc, pol freshness.Policy, elems []freshness.Element, budgets []float64) {
	tb.Helper()
	prev := math.Inf(-1)
	prevB := math.Inf(-1)
	for _, b := range budgets {
		if b < prevB {
			tb.Fatalf("budgets not increasing: %v after %v", b, prevB)
		}
		freqs, err := solve(elems, b, pol)
		if err != nil {
			tb.Fatalf("solve at B=%v: %v", b, err)
		}
		pf := perceived(tb, pol, elems, freqs)
		if pf < prev-1e-9*(1+prev) {
			tb.Errorf("optimal PF not monotone in bandwidth: PF(%v)=%v < PF(%v)=%v", b, pf, prevB, prev)
		}
		prev, prevB = pf, b
	}
}

// AssertConcaveInBandwidth asserts diminishing returns of extra
// bandwidth: on an equally spaced budget grid from lo to hi, the PF
// gain per step never increases. The optimal-PF curve is concave
// because the program's objective is concave and the feasible region
// scales linearly with B, so a violation indicates a sub-optimal solve
// somewhere along the grid.
func AssertConcaveInBandwidth(tb testingTB, solve SolveFunc, pol freshness.Policy, elems []freshness.Element, lo, hi float64, steps int) {
	tb.Helper()
	if steps < 2 || !(hi > lo) || !(lo >= 0) {
		tb.Fatalf("bad concavity grid: [%v, %v] in %d steps", lo, hi, steps)
	}
	pfs := make([]float64, steps+1)
	for i := 0; i <= steps; i++ {
		b := lo + (hi-lo)*float64(i)/float64(steps)
		freqs, err := solve(elems, b, pol)
		if err != nil {
			tb.Fatalf("solve at B=%v: %v", b, err)
		}
		pfs[i] = perceived(tb, pol, elems, freqs)
	}
	for i := 2; i <= steps; i++ {
		gainPrev := pfs[i-1] - pfs[i-2]
		gain := pfs[i] - pfs[i-1]
		if gain > gainPrev+1e-8*(1+math.Abs(gainPrev)) {
			tb.Errorf("optimal PF not concave in bandwidth: step gains %v then %v around B=%v",
				gainPrev, gain, lo+(hi-lo)*float64(i-1)/float64(steps))
		}
	}
}

// AssertScaleInvariance asserts the two rescalings that must leave the
// optimum untouched:
//
//   - profile scale: multiplying every access probability by c > 0
//     changes only the objective's unit, not the argmax;
//   - unit scale: multiplying every size and the budget by c > 0
//     changes only the bandwidth unit, not the argmax.
//
// Frequencies are compared loosely (elements at the funding cutoff are
// ill-conditioned in f but flat in value) and the objective tightly.
func AssertScaleInvariance(tb testingTB, solve SolveFunc, pol freshness.Policy, elems []freshness.Element, bandwidth, c float64) {
	tb.Helper()
	if !(c > 0) || c == 1 {
		tb.Fatalf("scale factor must be positive and ≠ 1, got %v", c)
	}
	base, err := solve(elems, bandwidth, pol)
	if err != nil {
		tb.Fatalf("base solve: %v", err)
	}
	basePF := perceived(tb, pol, elems, base)

	scaledProfile := append([]freshness.Element(nil), elems...)
	for i := range scaledProfile {
		scaledProfile[i].AccessProb *= c
	}
	got, err := solve(scaledProfile, bandwidth, pol)
	if err != nil {
		tb.Fatalf("profile-scaled solve: %v", err)
	}
	assertFreqsClose(tb, "profile scale", elems, bandwidth, base, got)
	if pf := perceived(tb, pol, elems, got); math.Abs(pf-basePF) > 1e-7*(1+basePF) {
		tb.Errorf("profile scale changed the optimum: PF %v vs %v", pf, basePF)
	}

	scaledUnits := append([]freshness.Element(nil), elems...)
	for i := range scaledUnits {
		scaledUnits[i].Size *= c
	}
	got, err = solve(scaledUnits, bandwidth*c, pol)
	if err != nil {
		tb.Fatalf("unit-scaled solve: %v", err)
	}
	assertFreqsClose(tb, "unit scale", elems, bandwidth, base, got)
	if pf := perceived(tb, pol, elems, got); math.Abs(pf-basePF) > 1e-7*(1+basePF) {
		tb.Errorf("unit scale changed the optimum: PF %v vs %v", pf, basePF)
	}
}

// assertFreqsClose compares two allegedly identical schedules with a
// per-element tolerance scaled by the frequency the whole budget would
// buy (the conditioning of cutoff-adjacent elements).
func assertFreqsClose(tb testingTB, what string, elems []freshness.Element, bandwidth float64, want, got []float64) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: schedule length %d vs %d", what, len(got), len(want))
	}
	for i := range want {
		tol := 1e-4 * (1 + want[i] + bandwidth/elems[i].Size)
		if math.Abs(want[i]-got[i]) > tol {
			tb.Errorf("%s: element %d frequency %v vs %v (tol %v)", what, i, got[i], want[i], tol)
		}
	}
}

// AssertPolicyInvariants asserts the analytic contract every
// synchronization policy must satisfy at the given change rates:
// boundary values, monotone concave freshness approaching 1, marginal
// equal to the freshness derivative, marginal non-increasing, and
// marginal inversion round-trips (cold and warm, including hostile
// hints, which may cost iterations but never accuracy).
func AssertPolicyInvariants(tb testingTB, pol freshness.Policy, lambdas []float64) {
	tb.Helper()
	if pol.Freshness(0, 0) != 1 || pol.Freshness(5, 0) != 1 {
		tb.Errorf("%s: F(·, 0) must be 1", pol.Name())
	}
	if pol.Marginal(3, 0) != 0 {
		tb.Errorf("%s: Marginal(·, 0) must be 0", pol.Name())
	}
	warm, _ := pol.(freshness.WarmStartInverter)
	for _, lambda := range lambdas {
		if !(lambda > 0) {
			tb.Fatalf("invariant lambdas must be positive, got %v", lambda)
		}
		if f0 := pol.Freshness(0, lambda); f0 != 0 {
			tb.Errorf("%s λ=%v: F(0, λ) = %v, want 0", pol.Name(), lambda, f0)
		}
		// Freshness increasing, concave, marginal decreasing, F → 1.
		freqs := []float64{lambda / 64, lambda / 8, lambda / 2, lambda, 2 * lambda, 8 * lambda, 64 * lambda}
		prevF, prevM := 0.0, math.Inf(1)
		for _, f := range freqs {
			F := pol.Freshness(f, lambda)
			M := pol.Marginal(f, lambda)
			if F <= prevF || F >= 1 {
				tb.Errorf("%s λ=%v f=%v: F=%v not strictly increasing toward 1 (prev %v)", pol.Name(), lambda, f, F, prevF)
			}
			if M <= 0 || M > prevM {
				tb.Errorf("%s λ=%v f=%v: marginal %v not positive decreasing (prev %v)", pol.Name(), lambda, f, M, prevM)
			}
			// Marginal matches a central finite difference of F.
			h := f * 1e-6
			fd := (pol.Freshness(f+h, lambda) - pol.Freshness(f-h, lambda)) / (2 * h)
			if math.Abs(fd-M) > 1e-4*M {
				tb.Errorf("%s λ=%v f=%v: marginal %v but dF/df ≈ %v", pol.Name(), lambda, f, M, fd)
			}
			prevF, prevM = F, M
		}
		if F := pol.Freshness(1e12*lambda, lambda); F < 1-1e-9 {
			tb.Errorf("%s λ=%v: F(f→∞) = %v, want → 1", pol.Name(), lambda, F)
		}
		// Inversion round-trips: f = Invert(M(f, λ), λ) for interior
		// targets, and a target at or above the peak yields 0. For
		// r = λ/f ≳ 37 the fixed-order marginal rounds to exactly the
		// peak in float64 — M is no longer injective there, the
		// round-trip is unsatisfiable, and inverting the peak to 0 is
		// the documented contract — so saturated targets are skipped.
		peak := pol.Marginal(0, lambda)
		for _, f := range freqs {
			target := pol.Marginal(f, lambda)
			if target >= peak {
				continue
			}
			if got := pol.InvertMarginal(target, lambda); math.Abs(got-f) > 1e-6*f {
				tb.Errorf("%s λ=%v: InvertMarginal(M(%v)) = %v", pol.Name(), lambda, f, got)
			}
			if warm == nil {
				continue
			}
			for _, hint := range []float64{0, lambda / f, 1e-12, 1e12} {
				got, _ := warm.InvertMarginalWarm(target, lambda, hint)
				if math.Abs(got-f) > 1e-6*f {
					tb.Errorf("%s λ=%v hint=%v: warm inversion of M(%v) = %v", pol.Name(), lambda, hint, f, got)
				}
			}
		}
		if got := pol.InvertMarginal(pol.Marginal(0, lambda)*1.01, lambda); got != 0 {
			tb.Errorf("%s λ=%v: target above the peak must invert to 0, got %v", pol.Name(), lambda, got)
		}
	}
}
