// Package testkit is the repository's correctness harness: reusable
// verification machinery that certifies solver outputs independently of
// the solvers that produced them.
//
// It provides three layers:
//
//   - Certify, a KKT certificate checker. Given any allocation
//     (elements, frequencies, budget, policy) it re-derives the
//     optimality conditions of the concave freshening program from
//     scratch — budget conservation, equalized marginal value across
//     funded elements, and the cutoff condition for starved ones — so
//     a schedule can be proven optimal without trusting the solver's
//     own bookkeeping (in particular, without trusting its reported
//     Lagrange multiplier).
//   - Property assertions: perceived freshness monotone and concave in
//     the budget, scale invariance of the optimum under profile and
//     size/budget rescaling, and per-policy analytic invariants
//     (closed-form boundary values, marginal = dF/df, inversion
//     round-trips).
//   - CrossValidate, a sim-vs-analytic validator: it drives seeded
//     event-driven Poisson simulations through internal/sim and asserts
//     the measured per-element freshness matches the closed form within
//     confidence intervals estimated from independent replications, so
//     the check is deterministic (seeded) yet statistically grounded.
//
// The package deliberately does not import internal/solver or
// internal/partition: it operates on plain element/frequency vectors,
// so those packages' own test suites can import testkit without an
// import cycle. Solving happens on the caller's side via a SolveFunc.
package testkit
