package testkit

import (
	"fmt"
	"math"

	"freshen/internal/estimate"
	"freshen/internal/stats"
)

// EstimatorReport is one estimator's accuracy against the ground-truth
// change rates of a simulated workload.
type EstimatorReport struct {
	// Kind names the estimator family (see estimate.Kinds).
	Kind string
	// MeanRelErr is the mean of |λ̂ᵢ−λᵢ|/λᵢ over the catalog.
	MeanRelErr float64
	// MeanBias is the mean of (λ̂ᵢ−λᵢ)/λᵢ — signed, so systematic
	// under-estimation (the censoring failure mode) shows as negative.
	MeanBias float64
	// MeanUncertainty is the mean reported uncertainty, for checking
	// that confidence tracks actual error.
	MeanUncertainty float64
}

// EstimatorTruthConfig tunes a ground-truth estimator comparison. The
// zero value of every field picks a sensible default.
type EstimatorTruthConfig struct {
	// Elements in the simulated catalog (0 means 100).
	N int
	// PollsPerElement is the fixed poll budget each element receives
	// (0 means 400).
	PollsPerElement int
	// Seed derives the workload and the shared observation stream.
	Seed int64
	// Prior seeds every estimator's unpolled estimate (0 means 1).
	Prior float64
	// Kinds to compare (nil means all of estimate.Kinds).
	Kinds []string
}

func (c EstimatorTruthConfig) withDefaults() EstimatorTruthConfig {
	if c.N == 0 {
		c.N = 100
	}
	if c.PollsPerElement == 0 {
		c.PollsPerElement = 400
	}
	if c.Prior == 0 {
		c.Prior = 1
	}
	if c.Kinds == nil {
		c.Kinds = estimate.Kinds()
	}
	return c
}

// CompareEstimators is the ground-truth cross-validator for the
// change-rate estimators: it draws a seeded workload with KNOWN true
// rates, derives a realistic polling schedule from those rates (so intervals span the same censored
// regimes a live mirror sees — hot elements polled often, cold ones
// rarely, never-funded ones on a slow floor cadence), then feeds the
// IDENTICAL censored change/no-change stream to one estimator of each
// requested kind and scores every λ̂ against the truth it can never
// observe directly. Because all estimators consume the same seeded
// observations, differences in the reports are estimator quality, not
// sampling luck.
func CompareEstimators(cfg EstimatorTruthConfig) ([]EstimatorReport, error) {
	cfg = cfg.withDefaults()
	elems := RandomElements(cfg.Seed, cfg.N, false)

	// Poll cadences from a square-root allocation at the TRUE rates —
	// the classic closed-form approximation of the optimal refresh
	// plan — so intervals span the censored regimes a live mirror sees:
	// hot elements polled often (λτ̄ mild), cold ones rarely (λτ̄
	// heavy). The cadence floor of one poll per period keeps every
	// history identifiable: much slower and a hot slow-polled element's
	// polls are all-changed with overwhelming probability — a history
	// no estimator can invert (the likelihood saturates; only the
	// ChoGM-style information bound ≈ log(2k+1)/τ̄ is supportable) —
	// which would score every family as equally hopeless there and
	// measure the harness, not the estimators.
	const floorFreq = 1.0
	base := make([]float64, cfg.N)
	for i := range elems {
		base[i] = 1 / math.Max(math.Sqrt(elems[i].Lambda), floorFreq)
	}

	ests := make([]estimate.Estimator, len(cfg.Kinds))
	for k, kind := range cfg.Kinds {
		e, err := estimate.New(kind, cfg.N, estimate.Params{Prior: cfg.Prior, Floor: 1e-6})
		if err != nil {
			return nil, err
		}
		ests[k] = e
	}

	// One shared stream: each observation is drawn once and fed to
	// every estimator. Intervals jitter ±50% around the plan cadence so
	// the estimators face irregular spacing, not a clean grid.
	r := stats.NewRNG(cfg.Seed + 1)
	for poll := 0; poll < cfg.PollsPerElement; poll++ {
		for i := range elems {
			tau := base[i] * (0.5 + r.Float64())
			changed := r.Float64() < -math.Expm1(-elems[i].Lambda*tau)
			for _, e := range ests {
				if err := e.Observe(i, tau, changed); err != nil {
					return nil, err
				}
			}
		}
	}

	reports := make([]EstimatorReport, len(ests))
	for k, e := range ests {
		rep := EstimatorReport{Kind: e.Kind()}
		for i := range elems {
			est := e.Estimate(i)
			rel := (est.Lambda - elems[i].Lambda) / elems[i].Lambda
			rep.MeanRelErr += math.Abs(rel)
			rep.MeanBias += rel
			rep.MeanUncertainty += est.Uncertainty()
		}
		n := float64(cfg.N)
		rep.MeanRelErr /= n
		rep.MeanBias /= n
		rep.MeanUncertainty /= n
		reports[k] = rep
	}
	return reports, nil
}

// ReportFor picks the named estimator's report out of a comparison.
func ReportFor(reports []EstimatorReport, kind string) (EstimatorReport, error) {
	for _, r := range reports {
		if r.Kind == kind {
			return r, nil
		}
	}
	return EstimatorReport{}, fmt.Errorf("no report for estimator %q", kind)
}
