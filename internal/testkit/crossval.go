package testkit

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
	"freshen/internal/sim"
)

// CrossValOptions tunes a sim-vs-analytic validation run. The zero
// value is a sensible CI configuration.
type CrossValOptions struct {
	// Periods per replication (0 means 40); the first tenth (at least
	// two periods) is warmup.
	Periods int
	// Replications is the number of independently seeded simulations
	// the empirical means and standard errors are estimated from
	// (0 means 5).
	Replications int
	// Seed derives every replication's RNG stream; fixed seeds make the
	// whole validation deterministic.
	Seed int64
	// Discipline selects the refresh spacing and, with it, the closed
	// form being validated (F fixed-order or f/(f+λ) Poisson).
	Discipline sim.SyncDiscipline
	// Z is the per-check confidence multiplier applied to the estimated
	// standard error (0 means 6 — wide, because with thousands of
	// per-element checks across suites the per-check false-positive
	// rate must be negligible; the run is seeded, so a pass is
	// permanent either way).
	Z float64
	// AbsFloor is the absolute tolerance floor added to every interval
	// (0 means 5e-3). It covers the quantization noise of elements with
	// expected event counts near zero over the measured window, where
	// the replication-estimated standard error itself is unreliable.
	AbsFloor float64

	// analyticPolicy overrides the closed form being compared against
	// (normally derived from Discipline). Test hook: injecting a
	// mismatched policy proves the validator actually discriminates.
	analyticPolicy freshness.Policy
}

func (o CrossValOptions) withDefaults() CrossValOptions {
	if o.Periods == 0 {
		o.Periods = 40
	}
	if o.Replications == 0 {
		o.Replications = 5
	}
	if o.Z == 0 {
		o.Z = 6
	}
	if o.AbsFloor == 0 {
		o.AbsFloor = 5e-3
	}
	return o
}

// CrossValidate drives seeded event-driven Poisson simulations of the
// given schedule and asserts the measured freshness agrees with the
// closed form, element by element and in the aggregate.
//
// The tolerance for each check is z·s/√R + floor, where s is the
// sample standard deviation of the measured value across R independent
// replications: the empirical sampling noise of the very estimator
// being checked, so the interval adapts to each element's event rate
// instead of hard-coding one magic constant for all regimes. Because
// every replication is seeded, the assertion is deterministic — the
// statistics only justify the tolerance, they do not re-randomize it.
func CrossValidate(tb testingTB, elems []freshness.Element, freqs []float64, opt CrossValOptions) {
	tb.Helper()
	opt = opt.withDefaults()
	n := len(elems)
	warmup := opt.Periods / 10
	if warmup < 2 {
		warmup = 2
	}
	if opt.Periods <= warmup {
		tb.Fatalf("cross-validation needs more than %d periods, got %d", warmup, opt.Periods)
	}

	// Per-element running moments across replications.
	sum := make([]float64, n)
	sumSq := make([]float64, n)
	var pfSum, pfSumSq float64
	for rep := 0; rep < opt.Replications; rep++ {
		res, err := sim.Run(sim.Config{
			Elements:      elems,
			Freqs:         freqs,
			Periods:       opt.Periods,
			WarmupPeriods: warmup,
			// The validator reads time-averaged freshness, which needs
			// no access sampling; a vanishing access rate keeps the
			// request generator armed (0 would mean "default 10000")
			// without ever firing inside the horizon.
			AccessesPerPeriod: 1e-9,
			Discipline:        opt.Discipline,
			CollectPerElement: true,
			Seed:              opt.Seed + int64(rep)*7919,
		})
		if err != nil {
			tb.Fatalf("replication %d: %v", rep, err)
		}
		for i, st := range res.PerElement {
			sum[i] += st.Freshness
			sumSq[i] += st.Freshness * st.Freshness
		}
		pfSum += res.TimeAveragedPF
		pfSumSq += res.TimeAveragedPF * res.TimeAveragedPF
	}

	pol := opt.analyticPolicy
	if pol == nil {
		pol = policyFor(opt.Discipline)
	}
	analytic, err := freshness.Perceived(pol, elems, freqs)
	if err != nil {
		tb.Fatalf("closed form: %v", err)
	}
	// With the standard error estimated from only R replications the
	// per-element statistic is Student-t with R−1 degrees of freedom,
	// whose tails are far heavier than the normal the Z multiplier
	// assumes: at R=5, Z=6 about 0.4% of perfectly healthy elements
	// land outside their interval. A per-mille outlier quota absorbs
	// that without costing detection power — a wrong closed form shifts
	// every funded element at once (and trips the strict aggregate
	// check below), not a handful.
	r := float64(opt.Replications)
	allowed := n / 100
	bad := 0
	var outliers []string
	for i, e := range elems {
		want := pol.Freshness(freqs[i], e.Lambda)
		mean := sum[i] / r
		tol := opt.Z*stderr(sum[i], sumSq[i], r) + opt.AbsFloor
		if math.Abs(mean-want) > tol {
			bad++
			if len(outliers) < 10 {
				outliers = append(outliers, fmt.Sprintf("element %d (λ=%v, f=%v): measured freshness %v vs closed form %v (tol %v)",
					i, e.Lambda, freqs[i], mean, want, tol))
			}
		}
	}
	if bad > allowed {
		for _, o := range outliers {
			tb.Errorf("%s", o)
		}
		if bad > len(outliers) {
			tb.Errorf("... and %d more per-element mismatches", bad-len(outliers))
		}
	}
	pfMean := pfSum / r
	pfTol := opt.Z*stderr(pfSum, pfSumSq, r) + opt.AbsFloor
	if math.Abs(pfMean-analytic) > pfTol {
		tb.Errorf("aggregate PF: measured %v vs analytic %v (tol %v)", pfMean, analytic, pfTol)
	}
}

// stderr returns the standard error of the mean from running moments.
func stderr(sum, sumSq, n float64) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	variance := (sumSq - sum*sum/n) / (n - 1)
	if variance < 0 { // rounding
		variance = 0
	}
	return math.Sqrt(variance / n)
}

// policyFor maps a sim discipline to the closed form it realizes.
func policyFor(d sim.SyncDiscipline) freshness.Policy {
	if d == sim.PoissonSync {
		return freshness.PoissonOrder{}
	}
	return freshness.FixedOrder{}
}
