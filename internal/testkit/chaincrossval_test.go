package testkit

import (
	"testing"

	"freshen/internal/freshness"
)

func TestCrossValidateChainSmoke(t *testing.T) {
	elems := RandomElements(6, 12, false)
	up, err := solveWaterFill(elems, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := solveWaterFill(elems, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	CrossValidateChain(t, elems, up, edge, CrossValOptions{Seed: 1})
}

// TestCrossValidateChainDetectsWrongClosedForm proves the chained
// validator discriminates the same way the single-level one does: a
// fixed-order chained simulation checked against the Poisson-order
// chain product must fail.
func TestCrossValidateChainDetectsWrongClosedForm(t *testing.T) {
	elems := RandomElements(10, 10, false)
	up, err := solveWaterFill(elems, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := solveWaterFill(elems, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &failRecorder{}
	rec.run(func() {
		CrossValidateChain(rec, elems, up, edge, CrossValOptions{
			Seed:           2,
			analyticPolicy: freshness.PoissonOrder{},
		})
	})
	if rec.errors == 0 && rec.fatals == 0 {
		t.Error("chain validator accepted a closed form that does not describe the simulated discipline")
	}
}
