package testkit

import (
	"math"

	"freshen/internal/freshness"
	"freshen/internal/stats"
)

// RandomElements draws a reproducible mirror of n elements in the
// paper's workload style: power-law access mass with a seed-dependent
// exponent, change rates spread over [1e-3, ~8), and — when sized —
// truncated-Pareto transfer sizes like web objects. Access
// probabilities are normalized to sum to 1.
func RandomElements(seed int64, n int, sized bool) []freshness.Element {
	r := stats.NewRNG(seed)
	elems := make([]freshness.Element, n)
	exp := 0.5 + r.Float64()
	var mass float64
	for i := range elems {
		p := math.Pow(float64(i+1), -exp)
		elems[i] = freshness.Element{
			ID:         i,
			Lambda:     r.Float64()*8 + 1e-3,
			AccessProb: p,
			Size:       1,
		}
		if sized {
			elems[i].Size = math.Min(1/math.Pow(1-r.Float64(), 1/1.5), 1e3)
		}
		mass += p
	}
	for i := range elems {
		elems[i].AccessProb /= mass
	}
	return elems
}

// Fuzz-domain bounds: wide enough to exercise extreme conditioning
// (ten-plus orders of magnitude between elements) while staying inside
// the documented input domain of the solvers.
const (
	fuzzLambdaMin = 1e-9
	fuzzLambdaMax = 1e9
	fuzzProbMin   = 1e-9
	fuzzProbMax   = 1.0
	fuzzSizeMin   = 1e-6
	fuzzSizeMax   = 1e6
)

// FoldFloat maps an arbitrary float64 (fuzzer-supplied, possibly NaN,
// ±Inf or subnormal) into [lo, hi], preserving as much of the input's
// entropy as possible: finite values fold by magnitude on a log scale,
// so fuzzers can steer toward either boundary.
func FoldFloat(x, lo, hi float64) float64 {
	if math.IsNaN(x) {
		return lo
	}
	if math.IsInf(x, 0) {
		return hi
	}
	x = math.Abs(x)
	if x >= lo && x <= hi {
		return x
	}
	// Fold the exponent into the target range on a log scale.
	logLo, logHi := math.Log(lo), math.Log(hi)
	span := logHi - logLo
	lx := math.Log(x)
	if math.IsInf(lx, -1) { // x == 0
		return lo
	}
	frac := math.Mod(lx-logLo, span)
	if frac < 0 {
		frac += span
	}
	return math.Exp(logLo + frac)
}

// FuzzElement builds one valid-but-possibly-extreme element from three
// raw fuzzer floats.
func FuzzElement(id int, rawLambda, rawProb, rawSize float64) freshness.Element {
	return freshness.Element{
		ID:         id,
		Lambda:     FoldFloat(rawLambda, fuzzLambdaMin, fuzzLambdaMax),
		AccessProb: FoldFloat(rawProb, fuzzProbMin, fuzzProbMax),
		Size:       FoldFloat(rawSize, fuzzSizeMin, fuzzSizeMax),
	}
}

// FuzzElements decodes a raw byte string into a slice of 1–64
// valid-but-extreme elements: every 6 bytes become one element (two
// bytes each for λ, p and s, spread log-uniformly over the fuzz
// domain). The mapping is total — any input yields a valid mirror — so
// the fuzzer's whole input space maps onto the solver's input domain.
func FuzzElements(data []byte) []freshness.Element {
	n := len(data) / 6
	if n == 0 {
		return []freshness.Element{{ID: 0, Lambda: 1, AccessProb: 1, Size: 1}}
	}
	if n > 64 {
		n = 64
	}
	elems := make([]freshness.Element, n)
	u16 := func(b []byte) float64 { return float64(uint16(b[0])<<8|uint16(b[1])) / 65535 }
	logSpread := func(t, lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + t*(math.Log(hi)-math.Log(lo)))
	}
	for i := range elems {
		b := data[i*6 : i*6+6]
		elems[i] = freshness.Element{
			ID:         i,
			Lambda:     logSpread(u16(b[0:2]), fuzzLambdaMin, fuzzLambdaMax),
			AccessProb: logSpread(u16(b[2:4]), fuzzProbMin, fuzzProbMax),
			Size:       logSpread(u16(b[4:6]), fuzzSizeMin, fuzzSizeMax),
		}
	}
	return elems
}
