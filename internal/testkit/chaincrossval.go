package testkit

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
	"freshen/internal/sim"
)

// CrossValidateChain drives seeded chained simulations (source →
// regional → edge) and asserts the measured end-to-end freshness agrees
// with the two-level chain closed form, element by element and in the
// aggregate. The tolerance machinery is identical to CrossValidate:
// per-check intervals of z·s/√R + floor estimated from independent
// replications, with a per-mille outlier quota absorbing the Student-t
// tails the Z multiplier understates at small R.
func CrossValidateChain(tb testingTB, elems []freshness.Element, upFreqs, edgeFreqs []float64, opt CrossValOptions) {
	tb.Helper()
	opt = opt.withDefaults()
	n := len(elems)
	warmup := opt.Periods / 10
	if warmup < 2 {
		warmup = 2
	}
	if opt.Periods <= warmup {
		tb.Fatalf("cross-validation needs more than %d periods, got %d", warmup, opt.Periods)
	}

	sum := make([]float64, n)
	sumSq := make([]float64, n)
	var pfSum, pfSumSq float64
	for rep := 0; rep < opt.Replications; rep++ {
		res, err := sim.RunChain(sim.ChainConfig{
			Elements:      elems,
			UpFreqs:       upFreqs,
			EdgeFreqs:     edgeFreqs,
			Periods:       opt.Periods,
			WarmupPeriods: warmup,
			// Time-averaged freshness needs no access sampling; keep the
			// request generator armed but silent (see CrossValidate).
			AccessesPerPeriod: 1e-9,
			Discipline:        opt.Discipline,
			CollectPerElement: true,
			Seed:              opt.Seed + int64(rep)*7919,
		})
		if err != nil {
			tb.Fatalf("replication %d: %v", rep, err)
		}
		for i, st := range res.PerElement {
			sum[i] += st.Freshness
			sumSq[i] += st.Freshness * st.Freshness
		}
		pfSum += res.TimeAveragedPF
		pfSumSq += res.TimeAveragedPF * res.TimeAveragedPF
	}

	pol := opt.analyticPolicy
	if pol == nil {
		pol = policyFor(opt.Discipline)
	}
	analytic, err := freshness.ChainPerceived(pol, elems, upFreqs, edgeFreqs)
	if err != nil {
		tb.Fatalf("chain closed form: %v", err)
	}
	r := float64(opt.Replications)
	allowed := n / 100
	bad := 0
	var outliers []string
	for i, e := range elems {
		want := freshness.ChainFreshness(pol, upFreqs[i], edgeFreqs[i], e.Lambda)
		mean := sum[i] / r
		tol := opt.Z*stderr(sum[i], sumSq[i], r) + opt.AbsFloor
		if math.Abs(mean-want) > tol {
			bad++
			if len(outliers) < 10 {
				outliers = append(outliers, fmt.Sprintf("element %d (λ=%v, f1=%v, f2=%v): measured chain freshness %v vs closed form %v (tol %v)",
					i, e.Lambda, upFreqs[i], edgeFreqs[i], mean, want, tol))
			}
		}
	}
	if bad > allowed {
		for _, o := range outliers {
			tb.Errorf("%s", o)
		}
		if bad > len(outliers) {
			tb.Errorf("... and %d more per-element mismatches", bad-len(outliers))
		}
	}
	pfMean := pfSum / r
	pfTol := opt.Z*stderr(pfSum, pfSumSq, r) + opt.AbsFloor
	if math.Abs(pfMean-analytic) > pfTol {
		tb.Errorf("aggregate chain PF: measured %v vs analytic %v (tol %v)", pfMean, analytic, pfTol)
	}
}
