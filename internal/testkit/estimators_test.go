package testkit

import (
	"math"
	"testing"

	"freshen/internal/estimate"
)

// TestEstimatorGroundTruth is the estimator cross-validation: every
// estimator family against workloads with known true change rates, at
// three catalog scales, under one fixed poll budget. The acceptance
// bar from the issue — the online MLE's mean relative error strictly
// below the naive tracker's — is asserted at every scale, along with
// absolute accuracy envelopes (measured, then pinned with headroom;
// the run is fully seeded, so drift means an estimator changed).
func TestEstimatorGroundTruth(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		reports, err := CompareEstimators(EstimatorTruthConfig{N: n, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		get := func(kind string) EstimatorReport {
			r, err := ReportFor(reports, kind)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		naive, sa, mle := get(estimate.KindNaive), get(estimate.KindSA), get(estimate.KindMLE)
		hist := get(estimate.KindHistory)

		// The headline: principled censoring-aware estimators beat the
		// naive changes/elapsed ratio, strictly, at every scale.
		if !(mle.MeanRelErr < naive.MeanRelErr) {
			t.Errorf("n=%d: online MLE relErr %v not below naive %v", n, mle.MeanRelErr, naive.MeanRelErr)
		}
		if !(sa.MeanRelErr < naive.MeanRelErr) {
			t.Errorf("n=%d: SA relErr %v not below naive %v", n, sa.MeanRelErr, naive.MeanRelErr)
		}
		if !(hist.MeanRelErr < naive.MeanRelErr) {
			t.Errorf("n=%d: batch MLE relErr %v not below naive %v", n, hist.MeanRelErr, naive.MeanRelErr)
		}

		// Absolute envelopes (measured ≈ 0.05/0.09–0.12/0.10–0.14
		// against naive's 0.52–0.56).
		if hist.MeanRelErr > 0.15 {
			t.Errorf("n=%d: batch MLE relErr %v above envelope", n, hist.MeanRelErr)
		}
		if mle.MeanRelErr > 0.25 || sa.MeanRelErr > 0.25 {
			t.Errorf("n=%d: online relErr mle=%v sa=%v above envelope", n, mle.MeanRelErr, sa.MeanRelErr)
		}

		// Bias structure: censoring drives the naive estimator far below
		// the truth (it counts at most one change per poll); the
		// principled estimators stay much closer to unbiased.
		if naive.MeanBias > -0.4 {
			t.Errorf("n=%d: naive bias %v not strongly negative — censoring gone?", n, naive.MeanBias)
		}
		if math.Abs(mle.MeanBias) > 0.5*math.Abs(naive.MeanBias) {
			t.Errorf("n=%d: MLE bias %v not well inside naive bias %v", n, mle.MeanBias, naive.MeanBias)
		}
	}
}

// TestEstimatorConvergence checks that more polls make the principled
// estimators better and more confident, while the naive estimator's
// censoring bias persists no matter how much data arrives — the
// defining difference between noise and structural error.
func TestEstimatorConvergence(t *testing.T) {
	short, err := CompareEstimators(EstimatorTruthConfig{N: 100, PollsPerElement: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	long, err := CompareEstimators(EstimatorTruthConfig{N: 100, PollsPerElement: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{estimate.KindHistory, estimate.KindSA, estimate.KindMLE} {
		s, err := ReportFor(short, kind)
		if err != nil {
			t.Fatal(err)
		}
		l, err := ReportFor(long, kind)
		if err != nil {
			t.Fatal(err)
		}
		if !(l.MeanRelErr < s.MeanRelErr) {
			t.Errorf("%s: relErr did not improve with polls (%v at 50, %v at 400)", kind, s.MeanRelErr, l.MeanRelErr)
		}
		if !(l.MeanUncertainty < s.MeanUncertainty) {
			t.Errorf("%s: uncertainty did not shrink with polls (%v at 50, %v at 400)", kind, s.MeanUncertainty, l.MeanUncertainty)
		}
	}
	// The naive estimator converges confidently to the wrong answer:
	// its error barely moves between budgets.
	sn, _ := ReportFor(short, estimate.KindNaive)
	ln, _ := ReportFor(long, estimate.KindNaive)
	if ln.MeanRelErr < sn.MeanRelErr-0.1 {
		t.Errorf("naive relErr improved from %v to %v — censoring bias should persist", sn.MeanRelErr, ln.MeanRelErr)
	}
}
