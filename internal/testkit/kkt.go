package testkit

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// Certificate is the evidence Certify assembles while proving an
// allocation optimal. All error bounds are relative to the recovered
// multiplier (or the budget, for the bandwidth fields).
type Certificate struct {
	// Mu is the Lagrange multiplier recovered from the allocation
	// itself: the bandwidth-weighted mean marginal value of the funded
	// elements. It is 0 when nothing is funded.
	Mu float64
	// Funded and Starved count the valuable elements (p > 0, λ > 0)
	// with positive and zero frequency respectively.
	Funded, Starved int
	// BandwidthUsed is Σ sᵢ·fᵢ; Slack is Bandwidth − BandwidthUsed.
	BandwidthUsed, Slack float64
	// StationarityErr is the largest relative deviation of a funded
	// element's marginal value from Mu.
	StationarityErr float64
	// CutoffErr is the largest relative excess of a starved element's
	// peak marginal value over Mu (0 when every starved peak sits below
	// the multiplier, as optimality requires).
	CutoffErr float64
}

// Certify checks the KKT conditions of the perceived-freshness program
//
//	max Σ pᵢ·F(fᵢ, λᵢ)  s.t.  Σ sᵢ·fᵢ ≤ B,  fᵢ ≥ 0
//
// for an arbitrary allocation, independently of whatever solver
// produced it:
//
//   - feasibility: every fᵢ finite and non-negative, Σ sᵢ·fᵢ ≤ B(1+tol);
//   - budget conservation: the budget is exhausted whenever any element
//     has positive marginal value (the objective is strictly increasing
//     in every funded frequency, so slack is never optimal);
//   - stationarity: the marginal value of bandwidth pᵢ·(∂F/∂f)(fᵢ,λᵢ)/sᵢ
//     agrees across all funded elements (their common value is the
//     multiplier μ, recovered here rather than taken on trust);
//   - complementary slackness: every starved element's peak marginal
//     value pᵢ·(∂F/∂f)(0,λᵢ)/sᵢ is at most μ;
//   - no waste: valueless elements (p = 0 or λ = 0) hold frequency 0.
//
// nil means the allocation is certified optimal within tol. The policy
// may be nil for the paper's Fixed-Order default.
func Certify(pol freshness.Policy, elems []freshness.Element, freqs []float64, bandwidth, tol float64) (Certificate, error) {
	var cert Certificate
	if pol == nil {
		pol = freshness.FixedOrder{}
	}
	if err := freshness.ValidateElements(elems); err != nil {
		return cert, err
	}
	if len(freqs) != len(elems) {
		return cert, fmt.Errorf("testkit: %d frequencies for %d elements", len(freqs), len(elems))
	}
	if !(bandwidth >= 0) || math.IsInf(bandwidth, 0) {
		return cert, fmt.Errorf("testkit: invalid bandwidth %v", bandwidth)
	}
	if !(tol > 0) {
		return cert, fmt.Errorf("testkit: tolerance must be positive, got %v", tol)
	}

	// Feasibility and the funded/starved split.
	var used float64
	active := 0 // valuable elements, funded or not
	for i, e := range elems {
		f := freqs[i]
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return cert, fmt.Errorf("testkit: element %d has invalid frequency %v", i, f)
		}
		used += e.Size * f
		if e.AccessProb > 0 && e.Lambda > 0 {
			active++
			if f > 0 {
				cert.Funded++
			} else {
				cert.Starved++
			}
		} else if f > 0 {
			return cert, fmt.Errorf("testkit: valueless element %d (p=%v, λ=%v) funded with frequency %v",
				i, e.AccessProb, e.Lambda, f)
		}
	}
	cert.BandwidthUsed = used
	cert.Slack = bandwidth - used
	if used > bandwidth*(1+tol)+tol {
		return cert, fmt.Errorf("testkit: bandwidth used %v exceeds budget %v", used, bandwidth)
	}

	if active == 0 || bandwidth == 0 {
		// Nothing can or may be funded; feasibility is the whole story.
		return cert, nil
	}
	if cert.Funded == 0 {
		// Some element has positive marginal value at f = 0 (every
		// valuable element does), so leaving the entire budget unspent
		// cannot be optimal.
		return cert, fmt.Errorf("testkit: budget %v unspent with %d valuable elements", bandwidth, active)
	}

	// Budget conservation: funded marginals are strictly positive, so
	// the optimum exhausts the budget.
	if cert.Slack > bandwidth*tol+tol {
		return cert, fmt.Errorf("testkit: budget slack %v of %v with positive marginal values", cert.Slack, bandwidth)
	}

	// Recover the multiplier: funded marginal values must agree, and
	// their common value is μ. The bandwidth-weighted mean makes the
	// recovered μ the shadow price of the budget constraint.
	var wSum, vSum float64
	vMin, vMax := math.Inf(1), math.Inf(-1)
	for i, e := range elems {
		if freqs[i] <= 0 || e.AccessProb <= 0 || e.Lambda <= 0 {
			continue
		}
		v := e.AccessProb * pol.Marginal(freqs[i], e.Lambda) / e.Size
		w := e.Size * freqs[i]
		wSum += w
		vSum += w * v
		if v < vMin {
			vMin = v
		}
		if v > vMax {
			vMax = v
		}
	}
	if !(vMin > 0) {
		return cert, fmt.Errorf("testkit: funded element with non-positive marginal value %v", vMin)
	}
	cert.Mu = vSum / wSum
	cert.StationarityErr = (vMax - vMin) / vMax
	if cert.StationarityErr > tol {
		return cert, fmt.Errorf("testkit: funded marginal values not equalized: [%v, %v] (rel spread %v > tol %v)",
			vMin, vMax, cert.StationarityErr, tol)
	}

	// Complementary slackness: a starved element's first sliver of
	// bandwidth must be worth no more than the recovered multiplier.
	for i, e := range elems {
		if freqs[i] != 0 || e.AccessProb <= 0 || e.Lambda <= 0 {
			continue
		}
		peak := e.AccessProb * pol.Marginal(0, e.Lambda) / e.Size
		if excess := peak/vMax - 1; excess > cert.CutoffErr {
			cert.CutoffErr = excess
		}
		if peak > vMax*(1+tol) {
			return cert, fmt.Errorf("testkit: element %d starved but its peak marginal value %v exceeds μ %v",
				i, peak, cert.Mu)
		}
	}
	return cert, nil
}

// MustCertify runs Certify and fails the test on any violation. It
// returns the certificate for callers that want to assert on the
// recovered multiplier or the funded/starved split.
func MustCertify(tb testingTB, pol freshness.Policy, elems []freshness.Element, freqs []float64, bandwidth, tol float64) Certificate {
	tb.Helper()
	cert, err := Certify(pol, elems, freqs, bandwidth, tol)
	if err != nil {
		tb.Fatalf("KKT certificate rejected: %v", err)
	}
	return cert
}

// testingTB is the subset of testing.TB the harness needs. Declaring it
// locally keeps testkit importable from fuzz targets and property
// drivers alike without forcing a testing.TB through every signature.
type testingTB interface {
	Helper()
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}
