package selection

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/workload"
)

func candidates(t *testing.T, n int, theta float64, seed int64) []freshness.Element {
	t.Helper()
	spec := workload.TableTwo()
	spec.NumObjects = n
	spec.UpdatesPerPeriod = 2 * float64(n)
	spec.SyncsPerPeriod = float64(n) / 2
	spec.Theta = theta
	spec.Seed = seed
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return elems
}

func TestGreedyRespectsCapacity(t *testing.T) {
	elems := candidates(t, 200, 1.0, 1)
	res, err := Greedy(Problem{Candidates: elems, Capacity: 50, Bandwidth: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.SizeUsed > 50+1e-9 {
		t.Errorf("size used %v over capacity 50", res.SizeUsed)
	}
	if res.HostedCount != 50 { // unit sizes: exactly 50 fit
		t.Errorf("hosted %d, want 50", res.HostedCount)
	}
	var bw float64
	for i, f := range res.Freqs {
		if f > 0 && !res.Hosted[i] {
			t.Fatalf("unhosted candidate %d funded", i)
		}
		bw += elems[i].Size * f
	}
	if bw > 40*(1+1e-6) {
		t.Errorf("bandwidth %v over budget", bw)
	}
}

func TestGreedyPrefersHotStableObjects(t *testing.T) {
	// Equal sizes; capacity for exactly one. A hot stable object must
	// be chosen over a cold one and over an equally hot but far more
	// volatile one (given scarce bandwidth).
	elems := []freshness.Element{
		{ID: 0, Lambda: 50, AccessProb: 0.45, Size: 1}, // hot but churning
		{ID: 1, Lambda: 0.5, AccessProb: 0.45, Size: 1},
		{ID: 2, Lambda: 0.5, AccessProb: 0.10, Size: 1}, // cold
	}
	res, err := Greedy(Problem{Candidates: elems, Capacity: 1, Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hosted[1] {
		t.Errorf("expected the hot stable object hosted, got %v", res.Hosted)
	}
}

func TestGreedyBeatsHostAllUnderSkew(t *testing.T) {
	// With skewed interest and a tight capacity, profile-driven
	// selection must beat "host whatever fits" (which under index
	// order happens to pick the hottest — so shuffle the access
	// probabilities to make index order uninformative).
	elems := candidates(t, 400, 1.2, 3)
	// Reverse the element order so HostAll fills with the coldest
	// objects first — the uninformed worst case.
	rev := make([]freshness.Element, len(elems))
	for i, e := range elems {
		rev[len(elems)-1-i] = e
	}
	p := Problem{Candidates: rev, Capacity: 100, Bandwidth: 80}
	greedy, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := HostAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Perceived <= baseline.Perceived {
		t.Errorf("greedy %v not above host-in-order %v", greedy.Perceived, baseline.Perceived)
	}
	if greedy.Perceived < 2*baseline.Perceived {
		t.Logf("note: advantage smaller than expected: %v vs %v", greedy.Perceived, baseline.Perceived)
	}
}

func TestGreedyVariableSizes(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 1, AccessProb: 0.5, Size: 10}, // huge
		{ID: 1, Lambda: 1, AccessProb: 0.3, Size: 1},
		{ID: 2, Lambda: 1, AccessProb: 0.2, Size: 1},
	}
	// Capacity 2: the huge hot object cannot fit; the two small ones
	// must be taken instead.
	res, err := Greedy(Problem{Candidates: elems, Capacity: 2, Bandwidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosted[0] || !res.Hosted[1] || !res.Hosted[2] {
		t.Errorf("hosting decision %v, want small objects only", res.Hosted)
	}
	if math.Abs(res.SizeUsed-2) > 1e-12 {
		t.Errorf("size used %v", res.SizeUsed)
	}
}

func TestSelectionValidation(t *testing.T) {
	elems := candidates(t, 10, 1.0, 5)
	if _, err := Greedy(Problem{Candidates: nil, Capacity: 5, Bandwidth: 5}); err == nil {
		t.Error("empty candidates must fail")
	}
	if _, err := Greedy(Problem{Candidates: elems, Capacity: 0, Bandwidth: 5}); err == nil {
		t.Error("zero capacity must fail")
	}
	if _, err := Greedy(Problem{Candidates: elems, Capacity: 5, Bandwidth: -1}); err == nil {
		t.Error("negative bandwidth must fail")
	}
	if _, err := HostAll(Problem{Candidates: elems, Capacity: 0, Bandwidth: 5}); err == nil {
		t.Error("HostAll zero capacity must fail")
	}
}

func TestGreedyCapacityBeyondDatabase(t *testing.T) {
	elems := candidates(t, 50, 1.0, 7)
	res, err := Greedy(Problem{Candidates: elems, Capacity: 1000, Bandwidth: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostedCount != 50 {
		t.Errorf("hosted %d of 50 with slack capacity", res.HostedCount)
	}
}
