// Package selection implements the extension sketched in the paper's
// conclusion: when the mirror is smaller than the database, profile
// knowledge should also decide *which* objects to host, not just how
// often to refresh them. ("Notice that in Figure 10 there are a
// significant number of objects that do not get refreshed at all...
// this could influence which objects we include in the mirror when the
// mirror is smaller than the database.")
//
// The joint problem — pick a subset within a storage capacity, then
// split the refresh bandwidth across it — is solved greedily: objects
// are admitted in order of the perceived-freshness value they could
// contribute per unit of storage, and the refresh schedule for the
// admitted set is re-solved exactly. Unhosted objects are assumed to
// miss (contribute zero freshness), which makes the objective the
// fraction of accesses served fresh *from the mirror*.
package selection
