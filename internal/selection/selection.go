package selection

import (
	"fmt"
	"math"
	"sort"

	"freshen/internal/freshness"
	"freshen/internal/solver"
)

// Problem is the joint host-and-freshen instance: choose which
// candidate elements the mirror stores (Σ sizes of hosted ≤ Capacity)
// and how to split the refresh bandwidth among the hosted ones.
type Problem struct {
	// Candidates is the full database the mirror could host from.
	Candidates []freshness.Element
	// Capacity is the storage budget in size units.
	Capacity float64
	// Bandwidth is the refresh budget per period.
	Bandwidth float64
	// Policy is the synchronization policy; nil means Fixed-Order.
	Policy freshness.Policy
}

// Validate checks the instance.
func (p Problem) Validate() error {
	if err := freshness.ValidateElements(p.Candidates); err != nil {
		return err
	}
	if !(p.Capacity > 0) || math.IsInf(p.Capacity, 0) {
		return fmt.Errorf("selection: capacity must be positive and finite, got %v", p.Capacity)
	}
	if p.Bandwidth < 0 || math.IsNaN(p.Bandwidth) || math.IsInf(p.Bandwidth, 0) {
		return fmt.Errorf("selection: bandwidth must be non-negative and finite, got %v", p.Bandwidth)
	}
	return nil
}

// Result is a hosting decision plus the refresh schedule for it.
type Result struct {
	// Hosted marks which candidates the mirror stores.
	Hosted []bool
	// Freqs is candidate-aligned; unhosted candidates have frequency 0.
	Freqs []float64
	// Perceived is the fraction of accesses served fresh from the
	// mirror: unhosted candidates contribute 0 even if they never
	// change, because an access to them misses.
	Perceived float64
	// HostedCount and SizeUsed describe the selection.
	HostedCount int
	SizeUsed    float64
}

// Greedy solves the joint problem with a density greedy: candidates
// are ranked by the perceived-freshness value they could contribute
// per unit of storage — pᵢ·F(f̄ᵢ, λᵢ)/sᵢ at the fair-share frequency
// f̄ᵢ = Bandwidth/(Capacity/sᵢ estimate) — admitted until the capacity
// is exhausted, and the refresh schedule for the admitted set is then
// solved exactly. The value estimate uses the fair-share refresh rate
// each element would get if the bandwidth were spread across a full
// mirror, which makes stable hot elements (cheap to keep fresh) rank
// above volatile ones of equal interest.
func Greedy(p Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.Candidates)
	pol := p.Policy
	if pol == nil {
		pol = freshness.FixedOrder{}
	}

	// Fair-share refresh frequency if the whole capacity were filled:
	// bandwidth spread over Capacity size units of hosted data.
	fairShare := p.Bandwidth / p.Capacity // refreshes per size unit
	type ranked struct {
		idx     int
		density float64
	}
	order := make([]ranked, n)
	for i, e := range p.Candidates {
		value := e.AccessProb * pol.Freshness(fairShare*1.0, e.Lambda)
		order[i] = ranked{idx: i, density: value / e.Size}
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].density > order[b].density })

	res := Result{
		Hosted: make([]bool, n),
		Freqs:  make([]float64, n),
	}
	var hosted []int
	for _, r := range order {
		size := p.Candidates[r.idx].Size
		if res.SizeUsed+size > p.Capacity {
			continue // try smaller candidates further down the ranking
		}
		if r.density <= 0 && res.SizeUsed > 0 {
			break // nothing of value left
		}
		res.Hosted[r.idx] = true
		res.SizeUsed += size
		hosted = append(hosted, r.idx)
	}
	res.HostedCount = len(hosted)
	if len(hosted) == 0 {
		return res, nil
	}

	sub := make([]freshness.Element, len(hosted))
	for i, idx := range hosted {
		sub[i] = p.Candidates[idx]
	}
	sol, err := solver.WaterFill(solver.Problem{
		Elements:  sub,
		Bandwidth: p.Bandwidth,
		Policy:    p.Policy,
	})
	if err != nil {
		return Result{}, err
	}
	for i, idx := range hosted {
		res.Freqs[idx] = sol.Freqs[i]
	}
	// Score over all candidates: misses contribute zero.
	var pf float64
	for i, e := range p.Candidates {
		if res.Hosted[i] {
			pf += e.AccessProb * pol.Freshness(res.Freqs[i], e.Lambda)
		}
	}
	res.Perceived = pf
	return res, nil
}

// HostAll returns the baseline that ignores the capacity constraint's
// selectivity: host the candidates in index order until capacity runs
// out (the "mirror whatever fits" policy), then schedule exactly. It
// exists so tests and examples can quantify what profile-driven
// selection adds.
func HostAll(p Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.Candidates)
	res := Result{
		Hosted: make([]bool, n),
		Freqs:  make([]float64, n),
	}
	var hosted []int
	for i, e := range p.Candidates {
		if res.SizeUsed+e.Size > p.Capacity {
			continue
		}
		res.Hosted[i] = true
		res.SizeUsed += e.Size
		hosted = append(hosted, i)
	}
	res.HostedCount = len(hosted)
	if len(hosted) == 0 {
		return res, nil
	}
	sub := make([]freshness.Element, len(hosted))
	for i, idx := range hosted {
		sub[i] = p.Candidates[idx]
	}
	sol, err := solver.WaterFill(solver.Problem{
		Elements:  sub,
		Bandwidth: p.Bandwidth,
		Policy:    p.Policy,
	})
	if err != nil {
		return Result{}, err
	}
	pol := p.Policy
	if pol == nil {
		pol = freshness.FixedOrder{}
	}
	var pf float64
	for i, idx := range hosted {
		res.Freqs[idx] = sol.Freqs[i]
		pf += p.Candidates[idx].AccessProb * pol.Freshness(sol.Freqs[i], p.Candidates[idx].Lambda)
	}
	res.Perceived = pf
	return res, nil
}
