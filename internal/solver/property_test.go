package solver

import (
	"math"
	"testing"
	"testing/quick"

	"freshen/internal/freshness"
	"freshen/internal/stats"
)

// randomProblem decodes a fuzz input into a well-formed problem with
// 2–18 elements, optionally size-varied.
func randomProblem(seed int64, n int, sized bool) Problem {
	r := stats.NewRNG(seed)
	if n < 2 {
		n = 2
	}
	if n > 18 {
		n = 18
	}
	elems := make([]freshness.Element, n)
	for i := range elems {
		elems[i] = freshness.Element{
			ID:         i,
			Lambda:     r.Float64()*8 + 0.01,
			AccessProb: r.Float64() + 0.001,
			Size:       1,
		}
		if sized {
			elems[i].Size = r.Float64()*4 + 0.1
		}
	}
	return Problem{Elements: elems, Bandwidth: r.Float64()*float64(n)*2 + 0.5}
}

func TestWaterFillPropertyKKT(t *testing.T) {
	f := func(seed int64, rawN uint8, sized bool) bool {
		p := randomProblem(seed, int(rawN%17)+2, sized)
		sol, err := WaterFill(p)
		if err != nil {
			return false
		}
		return VerifyKKT(p, sol, 1e-5) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWaterFillPropertyBeatsFeasiblePoints(t *testing.T) {
	// The optimum dominates random feasible allocations.
	f := func(seed int64, rawN uint8) bool {
		p := randomProblem(seed, int(rawN%17)+2, true)
		sol, err := WaterFill(p)
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed + 1)
		pol := p.policy()
		for trial := 0; trial < 8; trial++ {
			// A random feasible point: random positive weights scaled
			// to the budget.
			freqs := make([]float64, len(p.Elements))
			var used float64
			for i, e := range p.Elements {
				freqs[i] = r.Float64()
				used += e.Size * freqs[i]
			}
			scale := p.Bandwidth / used
			var pf float64
			for i, e := range p.Elements {
				freqs[i] *= scale
				pf += e.AccessProb * pol.Freshness(freqs[i], e.Lambda)
			}
			if pf > sol.Perceived+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWaterFillPropertyScaleInvariance(t *testing.T) {
	// Scaling every access probability by a constant must not change
	// the schedule (only relative interest matters).
	f := func(seed int64, rawN uint8) bool {
		p := randomProblem(seed, int(rawN%17)+2, false)
		a, err := WaterFill(p)
		if err != nil {
			return false
		}
		scaled := Problem{
			Elements:  append([]freshness.Element(nil), p.Elements...),
			Bandwidth: p.Bandwidth,
		}
		for i := range scaled.Elements {
			scaled.Elements[i].AccessProb *= 7.5
		}
		b, err := WaterFill(scaled)
		if err != nil {
			return false
		}
		// Frequencies agree loosely (elements sitting exactly at the
		// funding cutoff are ill-conditioned in f but flat in value)
		// while the objective agrees tightly.
		for i := range a.Freqs {
			if math.Abs(a.Freqs[i]-b.Freqs[i]) > 1e-4*(a.Freqs[i]+1) {
				return false
			}
		}
		return math.Abs(b.Perceived/7.5-a.Perceived) <= 1e-7*(a.Perceived+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
