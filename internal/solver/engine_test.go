package solver

import (
	"math"
	"testing"

	"freshen/internal/freshness"
)

// TestEngineDeterministicAcrossRuns checks the determinism guarantee:
// for a fixed worker count, solves of the same problem from the same
// starting state are bit-identical regardless of goroutine scheduling,
// because shards are fixed and partial sums reduce in shard order.
// (A *reused* engine may differ in the last couple of ulps — carried
// warm hints land each Newton solve on a slightly different root
// within its 1e-15 tolerance — which TestEngineReuseMatchesFresh
// bounds.) n exceeds the parallel threshold so the worker pool
// actually runs, and `go test -race` exercises it.
func TestEngineDeterministicAcrossRuns(t *testing.T) {
	elems := parityWorkload(11, 2*engineParallelThreshold, true)
	var total float64
	for _, el := range elems {
		total += el.Size
	}
	p := Problem{Elements: elems, Bandwidth: total * 0.4}

	solve := func() Solution {
		t.Helper()
		e := NewEngine()
		e.maxWorkers = 4
		sol, err := e.WaterFill(p)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	first := solve()
	for run := 0; run < 3; run++ {
		again := solve()
		if again.Perceived != first.Perceived || again.BandwidthUsed != first.BandwidthUsed {
			t.Fatalf("run %d: metrics drifted: %v/%v vs %v/%v",
				run, again.Perceived, again.BandwidthUsed, first.Perceived, first.BandwidthUsed)
		}
		for i := range first.Freqs {
			if again.Freqs[i] != first.Freqs[i] {
				t.Fatalf("run %d: element %d frequency drifted: %v vs %v",
					run, i, again.Freqs[i], first.Freqs[i])
			}
		}
	}
}

// TestEngineSerialParallelAgree compares a forced-serial solve against
// a parallel one. Summation order differs between the two, so exact
// bit-identity is not promised across worker counts — but the
// schedules must agree far inside any tolerance downstream code uses.
func TestEngineSerialParallelAgree(t *testing.T) {
	elems := parityWorkload(7, 2*engineParallelThreshold, false)
	p := Problem{Elements: elems, Bandwidth: float64(len(elems)) * 0.3}

	serial := NewEngine()
	serial.maxWorkers = 1
	parallel := NewEngine()
	parallel.maxWorkers = 8

	s, err := serial.WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := parallel.WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(s.Perceived - pp.Perceived); d > 1e-12*(1+s.Perceived) {
		t.Errorf("Perceived differs serial vs parallel: %v vs %v", s.Perceived, pp.Perceived)
	}
	for i := range s.Freqs {
		tol := 1e-12 * (1 + s.Freqs[i] + p.Bandwidth/elems[i].Size)
		if d := math.Abs(s.Freqs[i] - pp.Freqs[i]); d > tol {
			t.Errorf("element %d: serial %v vs parallel %v", i, s.Freqs[i], pp.Freqs[i])
		}
	}
}

// TestEngineCutoffPruning verifies the funding-cutoff logic end to
// end: with a tiny budget only the elements whose first sliver of
// bandwidth is most valuable get funded; everything below the final
// multiplier's cutoff stays exactly at zero.
func TestEngineCutoffPruning(t *testing.T) {
	// Cutoff μᵢ* = pᵢ/(λᵢ·sᵢ): element 0 dominates, element 3 is dirt.
	elems := []freshness.Element{
		{ID: 0, Lambda: 1, AccessProb: 0.70, Size: 1},   // cutoff 0.70
		{ID: 1, Lambda: 1, AccessProb: 0.20, Size: 1},   // cutoff 0.20
		{ID: 2, Lambda: 1, AccessProb: 0.08, Size: 1},   // cutoff 0.08
		{ID: 3, Lambda: 10, AccessProb: 0.02, Size: 20}, // cutoff 0.0001
	}
	sol, err := WaterFill(Problem{Elements: elems, Bandwidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Freqs[0] <= 0 {
		t.Errorf("dominant element unfunded: %v", sol.Freqs)
	}
	if sol.Multiplier <= elems[3].AccessProb/(elems[3].Lambda*elems[3].Size) {
		t.Fatalf("budget too generous for the test: μ=%v", sol.Multiplier)
	}
	if sol.Freqs[3] != 0 {
		t.Errorf("element below cutoff got bandwidth: %v", sol.Freqs[3])
	}
	if sol.BandwidthUsed > 0.5*(1+1e-12) {
		t.Errorf("budget exceeded: %v", sol.BandwidthUsed)
	}
}

// TestEngineZeroAndDegenerate covers the early-return paths the old
// solver had: zero bandwidth, no valuable elements, empty input.
func TestEngineZeroAndDegenerate(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 1, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 2, AccessProb: 0.5, Size: 1},
	}
	sol, err := WaterFill(Problem{Elements: elems, Bandwidth: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range sol.Freqs {
		if f != 0 {
			t.Errorf("zero budget but element %d got frequency %v", i, f)
		}
	}

	dead := []freshness.Element{
		{ID: 0, Lambda: 0, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 1, AccessProb: 0, Size: 1},
	}
	sol, err = WaterFill(Problem{Elements: dead, Bandwidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range sol.Freqs {
		if f != 0 {
			t.Errorf("valueless element %d got frequency %v", i, f)
		}
	}

	if _, err := WaterFill(Problem{Elements: nil, Bandwidth: 5}); err == nil {
		t.Error("empty problem should be rejected by validation")
	}
}

// TestEngineReuseMatchesFresh runs one engine across a sequence of
// unrelated problems (different sizes, policies, budgets) and checks
// each answer against a fresh pool solve: stale warm-start state or
// scratch from a previous solve must never leak into the next.
func TestEngineReuseMatchesFresh(t *testing.T) {
	e := NewEngine()
	policies := []freshness.Policy{freshness.FixedOrder{}, freshness.PoissonOrder{}, nil}
	for seed := int64(1); seed <= 6; seed++ {
		n := 8 << uint(seed) // 16 … 512
		elems := parityWorkload(seed, n, seed%2 == 0)
		p := Problem{
			Elements:  elems,
			Bandwidth: float64(n) * 0.2,
			Policy:    policies[seed%3],
		}
		reused, err := e.WaterFill(p)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := WaterFill(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fresh.Freqs {
			tol := 1e-12 * (1 + fresh.Freqs[i] + p.Bandwidth/elems[i].Size)
			if d := math.Abs(reused.Freqs[i] - fresh.Freqs[i]); d > tol {
				t.Errorf("seed %d element %d: reused %v vs fresh %v", seed, i, reused.Freqs[i], fresh.Freqs[i])
			}
		}
	}
}

// TestEngineSolveAllocs pins the allocation-free property: after the
// first solve warms the buffers, a reused engine allocates only the
// caller-visible Freqs slice (plus at most a rounding allocation or
// two inside evaluate) — nothing per bisection iteration.
func TestEngineSolveAllocs(t *testing.T) {
	elems := parityWorkload(3, 4096, true)
	p := Problem{Elements: elems, Bandwidth: 512}
	e := NewEngine()
	if _, err := e.WaterFill(p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := e.WaterFill(p); err != nil {
			t.Fatal(err)
		}
	})
	// One alloc for Solution.Freqs; leave headroom for the runtime.
	if allocs > 4 {
		t.Errorf("warm solve allocates %v objects per run; want ≤ 4", allocs)
	}
}

// TestEngineAgeAndBlendReuse exercises the non-water-fill curves
// through one shared engine.
func TestEngineAgeAndBlendReuse(t *testing.T) {
	elems := parityWorkload(5, 64, false)
	p := Problem{Elements: elems, Bandwidth: 16}
	e := NewEngine()

	age1, err := e.MinimizeAge(p)
	if err != nil {
		t.Fatal(err)
	}
	age2, err := MinimizeAge(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range age1.Freqs {
		if d := math.Abs(age1.Freqs[i] - age2.Freqs[i]); d > 1e-9*(1+age2.Freqs[i]) {
			t.Errorf("age element %d: engine %v vs package %v", i, age1.Freqs[i], age2.Freqs[i])
		}
	}

	b1, err := e.Blend(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Blend(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1.Freqs {
		if d := math.Abs(b1.Freqs[i] - b2.Freqs[i]); d > 1e-9*(1+b2.Freqs[i]) {
			t.Errorf("blend element %d: engine %v vs package %v", i, b1.Freqs[i], b2.Freqs[i])
		}
	}
}
