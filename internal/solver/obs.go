package solver

import (
	"sync/atomic"
	"time"

	"freshen/internal/obs"
)

// solveMetrics is the package's optional instrumentation. The solver
// is a hot path shared by every planning strategy, so metrics are a
// single atomic-pointer load when disabled and are recorded once per
// solve (never per usage sweep) when enabled.
type solveMetrics struct {
	solveSeconds *obs.Histogram
	iterations   *obs.Histogram
	funded       *obs.Gauge
	solves       *obs.Counter
}

var metrics atomic.Pointer[solveMetrics]

// Instrument registers the solver's metrics on reg and starts
// recording: per-solve wall time, multiplier-search iteration counts,
// the funded-element count of the most recent solve, and a running
// solve counter. Instrument affects every engine in the process
// (package entry points draw engines from a shared pool); calling it
// again with the same registry is a no-op re-registration.
func Instrument(reg *obs.Registry) {
	metrics.Store(&solveMetrics{
		solveSeconds: reg.Histogram("freshen_solver_solve_seconds",
			"Wall-clock time of one water-filling solve.", obs.LatencyBuckets()),
		iterations: reg.Histogram("freshen_solver_bisection_iterations",
			"Multiplier-search iterations per solve.", obs.CountBuckets()),
		funded: reg.Gauge("freshen_solver_funded_elements",
			"Elements funded by the most recent solve."),
		solves: reg.Counter("freshen_solver_solves_total",
			"Water-filling solves performed."),
	})
}

// record publishes one finished solve. m is the pointer loaded before
// the solve started, so a concurrent Instrument never splits a solve
// across two metric sets.
func (m *solveMetrics) record(elapsed time.Duration, iters, funded int) {
	if m == nil {
		return
	}
	m.solveSeconds.Observe(elapsed.Seconds())
	m.iterations.Observe(float64(iters))
	m.funded.Set(float64(funded))
	m.solves.Inc()
}
