package solver

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// Problem is one instance of the Core (unit sizes) or Extended
// (variable sizes) freshening problem.
type Problem struct {
	// Elements to schedule. AccessProb entries act as objective
	// weights; they need not sum to 1 (partition representatives carry
	// scaled masses).
	Elements []freshness.Element
	// Bandwidth is the refresh budget per period: Σ sᵢ·fᵢ ≤ Bandwidth.
	Bandwidth float64
	// Policy is the synchronization-order policy; nil defaults to the
	// paper's Fixed-Order policy.
	Policy freshness.Policy
}

// policy returns the effective policy.
func (p Problem) policy() freshness.Policy {
	if p.Policy == nil {
		return freshness.FixedOrder{}
	}
	return p.Policy
}

// Validate checks the problem is well-formed.
func (p Problem) Validate() error {
	if err := freshness.ValidateElements(p.Elements); err != nil {
		return err
	}
	if p.Bandwidth < 0 || math.IsNaN(p.Bandwidth) || math.IsInf(p.Bandwidth, 0) {
		return fmt.Errorf("solver: bandwidth must be a finite non-negative number, got %v", p.Bandwidth)
	}
	return nil
}

// Solution is a frequency assignment together with its quality.
type Solution struct {
	// Freqs is element-aligned with Problem.Elements.
	Freqs []float64
	// Perceived is Σ pᵢ·F(fᵢ, λᵢ) under the problem's weights.
	Perceived float64
	// BandwidthUsed is Σ sᵢ·fᵢ.
	BandwidthUsed float64
	// Multiplier is the Lagrange multiplier μ at the optimum (0 when
	// the constraint is slack or the solver does not expose one).
	Multiplier float64
	// Iterations counts outer solver iterations, for instrumentation.
	Iterations int
}

// evaluate fills the quality fields of a solution in place.
func (s *Solution) evaluate(p Problem) error {
	pf, err := freshness.Perceived(p.policy(), p.Elements, s.Freqs)
	if err != nil {
		return err
	}
	bw, err := freshness.BandwidthUsed(p.Elements, s.Freqs)
	if err != nil {
		return err
	}
	s.Perceived = pf
	s.BandwidthUsed = bw
	return nil
}
