package solver

import (
	"math"
	"runtime"
	"slices"
	"sync"
	"time"

	"freshen/internal/freshness"
)

// The engine is the shared water-filling core behind WaterFill,
// SolveGF, MinimizeAge, Blend, BandwidthForTarget and the partition
// heuristics. It makes the multiplier search's inner loop cheap in
// four ways:
//
//   - Funding-cutoff pruning: per-element invariants (the cutoff
//     μᵢ* = pᵢ·M(0,λᵢ)/sᵢ above which element i earns nothing) are
//     computed once per solve and sorted descending, so each candidate
//     μ binary-searches the funded prefix and never touches unfunded
//     elements.
//   - A superlinear root finder: usage(μ) is close to a power law, so
//     a log-log secant with an Illinois safeguard replaces bisection —
//     ~12–20 usage sweeps to a 1e-15-relative multiplier instead of
//     ~60.
//   - Warm starts: each element carries the root of its previous
//     marginal inversion across iterations. μ moves little per step
//     once the root localizes, so policies implementing
//     freshness.WarmStartInverter re-converge in 1–2 exp evaluations
//     instead of a cold solve's handful.
//   - A persistent worker pool: workers are spawned once per solve
//     (not once per usage evaluation) and write into engine-owned
//     scratch, so the search loop allocates nothing. Partial sums
//     reduce in fixed shard order, keeping results deterministic for a
//     given GOMAXPROCS regardless of goroutine scheduling.
//
// The search runs to full multiplier resolution (bracket width
// 1e-15·μ) rather than stopping at a loose bandwidth tolerance: the
// extra sweeps are cheap once warm-started, and the tight root makes
// results reproducible to ~1e-12 against a from-scratch solve.

// engineParallelThreshold is the active-element count below which a
// solve stays on the calling goroutine.
const engineParallelThreshold = 16384

// bracketHalvings caps the μ-bracketing fallback loops.
const bracketHalvings = 4096

// activeElem is one schedulable element's solve-time state.
type activeElem struct {
	idx    int     // position in Problem.Elements
	lambda float64 // change rate
	weight float64 // access probability (objective weight)
	size   float64 // bandwidth cost per refresh
	cutoff float64 // funding cutoff μ*: marginal value of the first sliver
	hint   float64 // warm-start hint carried across inversions
	freq   float64 // frequency at the most recently evaluated μ
	gain   float64 // residual top-up scratch: fill cap minus current freq
}

// marginalCurve is the per-element optimality curve a solve inverts:
// peak is the marginal value of an element's first sliver of bandwidth
// (+Inf for objectives that never starve an element), invert solves
// marginal(f) = target with an optional warm hint.
type marginalCurve interface {
	peak(lambda float64) float64
	invert(target, lambda, hint float64) (freq, nextHint float64)
}

// policyCurve adapts a freshness.Policy, using its warm-start fast
// path when the policy provides one.
type policyCurve struct {
	pol  freshness.Policy
	warm freshness.WarmStartInverter // nil when pol doesn't implement it
}

func newPolicyCurve(pol freshness.Policy) policyCurve {
	warm, _ := pol.(freshness.WarmStartInverter)
	return policyCurve{pol: pol, warm: warm}
}

func (c policyCurve) peak(lambda float64) float64 { return c.pol.Marginal(0, lambda) }

func (c policyCurve) invert(target, lambda, hint float64) (float64, float64) {
	if c.warm != nil {
		return c.warm.InvertMarginalWarm(target, lambda, hint)
	}
	return c.pol.InvertMarginal(target, lambda), 0
}

// ageCurve is the perceived-age objective of MinimizeAge: its marginal
// is unbounded at f = 0, so every active element is always funded.
type ageCurve struct{}

func (ageCurve) peak(float64) float64 { return math.Inf(1) }

func (ageCurve) invert(target, lambda, hint float64) (float64, float64) {
	f := freshness.InvertFixedOrderAgeMarginalWarm(target, lambda, hint)
	return f, f
}

// blendCurve is Blend's combined freshness-minus-weighted-age
// marginal; like the age curve it never starves an element.
type blendCurve struct{ ageWeight float64 }

func (blendCurve) peak(float64) float64 { return math.Inf(1) }

func (c blendCurve) invert(target, lambda, hint float64) (float64, float64) {
	pol := freshness.FixedOrder{}
	m := func(f float64) float64 {
		return pol.Marginal(f, lambda) + c.ageWeight*freshness.FixedOrderAgeMarginal(f, lambda)
	}
	f := invertDecreasingMarginal(m, target, hint)
	return f, f
}

// invertDecreasingMarginal solves m(f) = target for a positive,
// strictly decreasing marginal m with m(0⁺) = +∞, seeding the bracket
// from a warm hint when one is available.
func invertDecreasingMarginal(m func(float64) float64, target, hint float64) float64 {
	lo, hi := 0.0, 1.0
	if hint > 0 && !math.IsInf(hint, 0) {
		if m(hint) > target {
			lo, hi = hint, 2*hint
		} else {
			hi = hint
		}
	}
	for m(hi) > target {
		lo = hi
		hi *= 2
		if hi > 1e15 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if m(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-14*hi {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// Engine is a reusable solve context. It owns the sorted active-set
// array, warm-start state, worker pool and scratch buffers, so
// repeated solves (capacity planning, hierarchical sub-solves, the
// partition heuristics) allocate almost nothing after the first call.
// An Engine is NOT safe for concurrent use; the package-level solver
// entry points draw engines from a sync.Pool so concurrent callers
// never share one.
type Engine struct {
	act     []activeElem
	partial []float64
	heap    []int

	// Worker pool state, live only while a solve runs. Each worker has
	// its own wake channel: a shared channel would let one worker absorb
	// two tokens in a round while another sleeps through it, leaving the
	// sleeper's shard stale.
	curve    marginalCurve
	workers  int
	wake     []chan struct{}
	done     sync.WaitGroup
	jobMu    float64
	jobK     int
	jobChunk int

	// maxWorkers caps pool size; 0 means GOMAXPROCS. Tests use it to
	// compare serial and parallel solves on the same machine.
	maxWorkers int
}

// NewEngine returns an empty solve context.
func NewEngine() *Engine { return &Engine{} }

// enginePool recycles engines behind the package-level entry points.
var enginePool = sync.Pool{New: func() any { return NewEngine() }}

// WaterFill solves the problem exactly via the Appendix's Lagrange
// conditions on this engine, reusing its buffers and warm-start state.
func (e *Engine) WaterFill(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	return e.solveCurve(p, newPolicyCurve(p.policy()), true)
}

// solveCurve runs the shared μ-bisection: build and sort the active
// set, bracket the multiplier, bisect to full resolution, extract the
// schedule, and (for curves with finite cutoffs) drain any residual
// budget sliver.
func (e *Engine) solveCurve(p Problem, curve marginalCurve, topUp bool) (Solution, error) {
	obsm := metrics.Load()
	var obsStart time.Time
	if obsm != nil {
		obsStart = time.Now()
	}
	n := len(p.Elements)
	sol := Solution{Freqs: make([]float64, n)}

	// Per-element invariants, computed once per solve. Elements with
	// zero weight or zero change rate never earn bandwidth and stay at
	// frequency 0.
	e.act = e.act[:0]
	muHi := 0.0             // largest finite cutoff
	muLoSeed := math.Inf(1) // smallest cutoff
	unbounded := false      // some element's first sliver has unbounded value
	for i, el := range p.Elements {
		if el.AccessProb <= 0 || el.Lambda <= 0 {
			continue
		}
		cut := el.AccessProb * curve.peak(el.Lambda) / el.Size
		if !(cut > 0) {
			continue
		}
		e.act = append(e.act, activeElem{
			idx: i, lambda: el.Lambda, weight: el.AccessProb, size: el.Size, cutoff: cut,
		})
		if math.IsInf(cut, 1) {
			unbounded = true
		} else if cut > muHi {
			muHi = cut
		}
		if cut < muLoSeed {
			muLoSeed = cut
		}
	}
	if len(e.act) == 0 || p.Bandwidth == 0 || (muHi == 0 && !unbounded) {
		err := sol.evaluate(p)
		if obsm != nil {
			obsm.record(time.Since(obsStart), 0, 0)
		}
		return sol, err
	}

	// Sort by cutoff descending so the funded set at any μ is a prefix;
	// ties break on element index to keep runs deterministic.
	slices.SortFunc(e.act, func(a, b activeElem) int {
		switch {
		case a.cutoff > b.cutoff:
			return -1
		case a.cutoff < b.cutoff:
			return 1
		default:
			return a.idx - b.idx
		}
	})

	e.curve = curve
	e.startWorkers()
	defer e.stopWorkers()

	// Bracket the multiplier. With finite cutoffs usage(muHi) = 0 < B
	// by construction; unbounded curves grow muHi until feasible.
	fHi := -p.Bandwidth // usage(muHi) − B
	if unbounded {
		if muHi < 1 {
			muHi = 1
		}
		for i := 0; ; i++ {
			fHi = e.usage(muHi) - p.Bandwidth
			if fHi <= 0 || i >= bracketHalvings || muHi > 1e300 {
				break
			}
			muHi *= 2
		}
	}
	// Seed the low end from the smallest cutoff: below it every element
	// is funded, so usage is usually already past the budget and the
	// halving loop — which previously probed up to 4096 candidate μ
	// values from muHi down — degenerates to a short fallback for very
	// large budgets.
	muLo := muHi
	if muLoSeed < muLo {
		muLo = muLoSeed
	}
	fLo := 0.0 // usage(muLo) − B
	for i := 0; ; i++ {
		fLo = e.usage(muLo) - p.Bandwidth
		if fLo >= 0 || i >= bracketHalvings || muLo < 1e-300 {
			break
		}
		muLo /= 2
	}

	// Shrink the bracket to full multiplier resolution. Usage is close
	// to a power law in μ (element frequencies scale like inverse
	// powers of their targets), so a secant step on (log μ, log usage)
	// — where the curve is nearly linear — converges superlinearly:
	// single-digit sweeps to a 1e-15-relative root where bisection
	// needed ~60. An Illinois-style safeguard (geometric bisection
	// whenever the same endpoint moves twice in a row, or the secant
	// point leaves the bracket) keeps bisection's worst case. The
	// invariant usage(muLo) ≥ B ≥ usage(muHi) holds throughout; taking
	// the high end guarantees the final schedule never exceeds the
	// budget.
	iters := 0
	if fLo == 0 {
		muHi, fHi = muLo, fLo
	}
	// h = log(usage/B): the secant's ordinate. hLo ≥ 0 ≥ hHi; hHi is
	// −Inf while nothing is funded at muHi (the initial state for
	// finite-cutoff curves), which routes to the geometric fallback.
	hLo := math.Log((fLo + p.Bandwidth) / p.Bandwidth)
	hHi := math.Log((fHi + p.Bandwidth) / p.Bandwidth)
	side := 0 // endpoint the previous iteration replaced: −1 low, +1 high
	for i := 0; i < 200 && muHi-muLo > 1e-15*muHi; i++ {
		iters++
		// Near a funding cutoff the entering element's frequency decays
		// only logarithmically (f ≈ λ/log(1/δ) for a relative distance
		// δ below the cutoff), so usage looks like a step: the root can
		// sit within an ulp of the cutoff and interpolation would creep
		// toward it one halving at a time. Once a single cutoff remains
		// inside the bracket, probe it and its float neighbour directly
		// — at most two evaluations pin the bracket to one ulp.
		if kLo := e.fundedTo(muLo); kLo == e.fundedTo(muHi)+1 {
			cand := e.act[kLo-1].cutoff
			if cm := math.Nextafter(cand, 0); cm > muLo {
				cand = cm
			} else if cand >= muHi {
				// Bracket already tighter than an ulp around the cutoff;
				// muHi keeps the usage ≤ B invariant.
				break
			}
			h := math.Log(e.usage(cand) / p.Bandwidth)
			switch {
			case h > 0:
				muLo, hLo = cand, h
			case h < 0:
				muHi, hHi = cand, h
			default:
				muLo, muHi = cand, cand
				hLo, hHi = 0, 0
			}
			side = 0
			continue
		}
		cand := 0.0
		if hLo > 0 && hHi < 0 && !math.IsInf(hHi, -1) {
			tLo, tHi := math.Log(muLo), math.Log(muHi)
			cand = math.Exp(tLo + (tHi-tLo)*hLo/(hLo-hHi))
		}
		if !(cand > muLo && cand < muHi) {
			cand = math.Sqrt(muLo * muHi)
			if !(cand > muLo && cand < muHi) {
				cand = 0.5 * (muLo + muHi)
			}
		}
		h := math.Log(e.usage(cand) / p.Bandwidth)
		switch {
		case h > 0:
			muLo, hLo = cand, h
			if side < 0 {
				hHi *= 0.5
			}
			side = -1
		case h < 0:
			muHi, hHi = cand, h
			if side > 0 {
				hLo *= 0.5
			}
			side = 1
		default:
			// Exact hit: collapse the bracket on the root.
			muLo, muHi = cand, cand
			hLo, hHi = 0, 0
		}
	}

	mu := muHi
	k := e.fundedTo(mu)
	used := e.usage(mu)
	for j := 0; j < k; j++ {
		sol.Freqs[e.act[j].idx] = e.act[j].freq
	}
	if topUp {
		e.topUpResidual(p, &sol, mu, used, k)
	}
	sol.Multiplier = mu
	sol.Iterations = iters
	err := sol.evaluate(p)
	if obsm != nil {
		obsm.record(time.Since(obsStart), iters, k)
	}
	return sol, err
}

// fundedTo returns the funded prefix length at multiplier mu: the
// number of active elements whose cutoff exceeds mu.
func (e *Engine) fundedTo(mu float64) int {
	lo, hi := 0, len(e.act)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.act[mid].cutoff > mu {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// usage evaluates Σ sᵢ·fᵢ(μ) over the funded prefix, recording each
// element's frequency and warm hint in place. Large prefixes are
// sharded across the solve's worker pool; partial sums reduce in
// worker order so the result is deterministic.
func (e *Engine) usage(mu float64) float64 {
	k := e.fundedTo(mu)
	if e.workers <= 1 || k < engineParallelThreshold {
		return e.invertRange(mu, 0, k)
	}
	e.jobMu = mu
	e.jobK = k
	e.jobChunk = (k + e.workers - 1) / e.workers
	e.done.Add(e.workers)
	for i := 0; i < e.workers; i++ {
		e.wake[i] <- struct{}{}
	}
	e.done.Wait()
	var total float64
	for _, t := range e.partial[:e.workers] {
		total += t
	}
	return total
}

// invertRange inverts the marginal for active elements [lo, hi) at
// multiplier mu and returns their bandwidth usage.
func (e *Engine) invertRange(mu float64, lo, hi int) float64 {
	var total float64
	for j := lo; j < hi; j++ {
		a := &e.act[j]
		f, h := e.curve.invert(mu*a.size/a.weight, a.lambda, a.hint)
		a.freq, a.hint = f, h
		total += a.size * f
	}
	return total
}

// startWorkers spawns the solve's worker pool once; usage() then only
// passes tokens through a channel, so the bisection loop itself
// allocates nothing.
func (e *Engine) startWorkers() {
	w := e.maxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if len(e.act) < engineParallelThreshold || w < 2 {
		e.workers = 1
		return
	}
	e.workers = w
	if cap(e.partial) < w {
		e.partial = make([]float64, w)
	}
	e.partial = e.partial[:w]
	if cap(e.wake) < w {
		e.wake = make([]chan struct{}, 0, w)
	}
	e.wake = e.wake[:0]
	for i := 0; i < w; i++ {
		ch := make(chan struct{}, 1)
		e.wake = append(e.wake, ch)
		go func(id int, ch chan struct{}) {
			for range ch {
				lo := id * e.jobChunk
				hi := lo + e.jobChunk
				if hi > e.jobK {
					hi = e.jobK
				}
				var sum float64
				if lo < hi {
					sum = e.invertRange(e.jobMu, lo, hi)
				}
				e.partial[id] = sum
				e.done.Done()
			}
		}(i, ch)
	}
}

func (e *Engine) stopWorkers() {
	if e.workers > 1 {
		for _, ch := range e.wake {
			close(ch)
		}
	}
	e.workers = 0
	e.curve = nil
}

// topUpResidual drains any unused budget sliver. The multiplier is
// only resolvable to ~1e-15 relative, and an element whose funding
// cutoff coincides with μ to that precision absorbs its bandwidth
// discontinuously in float arithmetic, which can leave part of the
// budget unused. Each funded element's fill cap — the frequency it
// would hold at μ·(1−1e-9) — is computed once, and the residual drains
// through a max-heap of gains: every funded marginal stays within
// 1e-9 of the multiplier (optimality to the precision μ itself
// carries) while budget tightness is restored in O(m log m) instead
// of the previous O(n²) rescan-per-round.
func (e *Engine) topUpResidual(p Problem, sol *Solution, mu, used float64, k int) {
	residual := p.Bandwidth - used
	if residual <= p.Bandwidth*1e-14 {
		return
	}
	muFill := mu * (1 - 1e-9)
	kFill := e.fundedTo(muFill)
	if cap(e.heap) < kFill {
		e.heap = make([]int, 0, kFill)
	}
	h := e.heap[:0]
	for j := 0; j < kFill; j++ {
		a := &e.act[j]
		fillCap, hint := e.curve.invert(muFill*a.size/a.weight, a.lambda, a.hint)
		a.hint = hint
		cur := 0.0
		if j < k {
			cur = a.freq
		}
		if g := fillCap - cur; g > 0 {
			a.gain = g
			h = append(h, j)
		}
	}
	// Max-heap on gain; index ties cannot occur, so ordering is total.
	for i := len(h)/2 - 1; i >= 0; i-- {
		e.siftDown(h, i)
	}
	for len(h) > 0 && residual > p.Bandwidth*1e-14 {
		a := &e.act[h[0]]
		df := residual / a.size
		if df >= a.gain {
			df = a.gain
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) > 0 {
				e.siftDown(h, 0)
			}
		}
		sol.Freqs[a.idx] += df
		residual -= df * a.size
	}
	e.heap = h[:0]
}

func (e *Engine) siftDown(h []int, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && e.act[h[l]].gain > e.act[h[big]].gain {
			big = l
		}
		if r < len(h) && e.act[h[r]].gain > e.act[h[big]].gain {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// --- deterministic parallel helpers for the gradient baseline ---

// shardedSum evaluates fn over deterministic contiguous shards of
// [0, n) (in parallel when n is large) and adds the shard sums in
// shard order.
func shardedSum(n int, fn func(lo, hi int) float64) float64 {
	workers := runtime.GOMAXPROCS(0)
	if n < engineParallelThreshold || workers < 2 {
		return fn(0, n)
	}
	partial := make([]float64, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total float64
	for _, t := range partial {
		total += t
	}
	return total
}

// parallelFor runs fn over deterministic contiguous shards of [0, n),
// in parallel when n is large. Shards are disjoint, so fn may write to
// per-index slots without synchronization.
func parallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < engineParallelThreshold || workers < 2 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
