package solver

import (
	"strings"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/obs"
)

// TestInstrumentRecordsSolves pins the solver's metric surface: a
// solve through the instrumented engine must produce a latency
// observation, an iteration count, the funded-element gauge, and a
// solve-counter increment — and the series names must match the ones
// the daemon's metrics contract exports.
func TestInstrumentRecordsSolves(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer metrics.Store(nil) // other tests must see an uninstrumented solver

	elems := []freshness.Element{
		{ID: 0, Lambda: 2, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 1, AccessProb: 0.3, Size: 1},
		{ID: 2, Lambda: 0.5, AccessProb: 0.2, Size: 1},
	}
	// A degenerate solve (zero budget) must count too; it runs first so
	// the funded gauge below reflects the real solve.
	if _, err := WaterFill(Problem{Elements: elems, Bandwidth: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := WaterFill(Problem{Elements: elems, Bandwidth: 2}); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	e, err := obs.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Value("freshen_solver_solves_total"); !ok || v < 2 {
		t.Errorf("freshen_solver_solves_total = %v, %v; want >= 2", v, ok)
	}
	if v, ok := e.Value("freshen_solver_solve_seconds_count"); !ok || v < 2 {
		t.Errorf("freshen_solver_solve_seconds_count = %v, %v; want >= 2", v, ok)
	}
	if v, ok := e.Value("freshen_solver_funded_elements"); !ok || v < 1 || v > 3 {
		t.Errorf("freshen_solver_funded_elements = %v, %v; want within [1, 3]", v, ok)
	}
	if v, ok := e.Value("freshen_solver_bisection_iterations_count"); !ok || v < 2 {
		t.Errorf("iteration histogram count = %v, %v", v, ok)
	}
}
