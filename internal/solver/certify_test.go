package solver

import (
	"fmt"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/testkit"
)

// TestSolverSuiteCertified runs the production entry points over the
// suite's standard workloads and demands an independent KKT
// certificate — not the solver's own VerifyKKT, which trusts the
// reported multiplier — for every allocation produced.
func TestSolverSuiteCertified(t *testing.T) {
	t.Run("table1", func(t *testing.T) {
		for _, b := range []float64{1, 3, 5, 7, 9} {
			p := table1Problem([]float64{1.0 / 15, 2.0 / 15, 3.0 / 15, 4.0 / 15, 5.0 / 15})
			p.Bandwidth = b
			sol, err := WaterFill(p)
			if err != nil {
				t.Fatal(err)
			}
			testkit.MustCertify(t, p.Policy, p.Elements, sol.Freqs, b, 1e-6)
		}
	})
	t.Run("random-problems", func(t *testing.T) {
		for seed := int64(1); seed <= 25; seed++ {
			sized := seed%2 == 0
			p := randomProblem(seed, int(seed%17)+2, sized)
			sol, err := WaterFill(p)
			if err != nil {
				t.Fatal(err)
			}
			testkit.MustCertify(t, p.Policy, p.Elements, sol.Freqs, p.Bandwidth, 1e-5)
			// SolveGF optimizes average freshness — uniform weights —
			// so its schedule certifies against the uniform problem,
			// not the access profile it is later re-scored under.
			gf, err := SolveGF(p)
			if err != nil {
				t.Fatal(err)
			}
			uniform := append([]freshness.Element(nil), p.Elements...)
			for i := range uniform {
				uniform[i].AccessProb = 1 / float64(len(uniform))
			}
			testkit.MustCertify(t, p.Policy, uniform, gf.Freqs, p.Bandwidth, 1e-5)
		}
	})
	t.Run("parity-workloads", func(t *testing.T) {
		for _, pareto := range []bool{false, true} {
			elems := parityWorkload(17, 400, pareto)
			for _, b := range []float64{5, 60, 600} {
				sol, err := WaterFill(Problem{Elements: elems, Bandwidth: b})
				if err != nil {
					t.Fatal(err)
				}
				testkit.MustCertify(t, nil, elems, sol.Freqs, b, 1e-5)
			}
		}
	})
	for _, n := range []int{10, 100, 1000} {
		t.Run(fmt.Sprintf("paper-workload-n%d", n), func(t *testing.T) {
			elems := testkit.RandomElements(int64(n), n, true)
			b := float64(n) / 3
			for _, pol := range []freshness.Policy{nil, freshness.PoissonOrder{}} {
				sol, err := WaterFill(Problem{Elements: elems, Bandwidth: b, Policy: pol})
				if err != nil {
					t.Fatal(err)
				}
				cert := testkit.MustCertify(t, pol, elems, sol.Freqs, b, 1e-5)
				if cert.Funded == 0 {
					t.Errorf("n=%d: nothing funded at bandwidth %v", n, b)
				}
			}
		})
	}
}

// TestBandwidthForTargetCertified pins the capacity planner's output:
// the planned budget must attain the target and the attaining schedule
// must itself be optimal.
func TestBandwidthForTargetCertified(t *testing.T) {
	elems := testkit.RandomElements(23, 60, true)
	for _, target := range []float64{0.2, 0.5, 0.8} {
		b, err := BandwidthForTarget(elems, target, nil)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		sol, err := WaterFill(Problem{Elements: elems, Bandwidth: b})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Perceived < target-1e-9 {
			t.Errorf("target %v: planned bandwidth %v attains only %v", target, b, sol.Perceived)
		}
		testkit.MustCertify(t, nil, elems, sol.Freqs, b, 1e-5)
	}
}
