package solver

import (
	"math"
	"testing"

	"freshen/internal/freshness"
)

// table1Problem builds the paper's five-element example: change rates
// 1..5 per day, bandwidth 5 refreshes per day.
func table1Problem(probs []float64) Problem {
	elems := make([]freshness.Element, 5)
	for i := range elems {
		elems[i] = freshness.Element{
			ID:         i,
			Lambda:     float64(i + 1),
			AccessProb: probs[i],
			Size:       1,
		}
	}
	return Problem{Elements: elems, Bandwidth: 5}
}

func TestWaterFillTable1(t *testing.T) {
	// Golden values from the paper's Table 1 (rows b, c, d), ±0.02 for
	// their two-decimal rounding.
	cases := []struct {
		name  string
		probs []float64
		want  []float64
	}{
		{
			name:  "P1 uniform",
			probs: []float64{1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 5},
			want:  []float64{1.15, 1.36, 1.35, 1.14, 0.00},
		},
		{
			name:  "P2 aligned",
			probs: []float64{1.0 / 15, 2.0 / 15, 3.0 / 15, 4.0 / 15, 5.0 / 15},
			want:  []float64{0.33, 0.67, 1.00, 1.33, 1.67},
		},
		{
			name:  "P3 reverse",
			probs: []float64{5.0 / 15, 4.0 / 15, 3.0 / 15, 2.0 / 15, 1.0 / 15},
			want:  []float64{1.68, 1.83, 1.49, 0.00, 0.00},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := WaterFill(table1Problem(tc.probs))
			if err != nil {
				t.Fatal(err)
			}
			for i, want := range tc.want {
				if math.Abs(sol.Freqs[i]-want) > 0.02 {
					t.Errorf("element %d: freq %.4f, want %.2f (full: %.4v)",
						i+1, sol.Freqs[i], want, sol.Freqs)
				}
			}
			if math.Abs(sol.BandwidthUsed-5) > 1e-6 {
				t.Errorf("bandwidth used %v, want 5", sol.BandwidthUsed)
			}
		})
	}
}

func TestWaterFillSatisfiesKKT(t *testing.T) {
	probs := []float64{0.05, 0.3, 0.15, 0.4, 0.1}
	sol, err := WaterFill(table1Problem(probs))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKKT(table1Problem(probs), sol, 1e-6); err != nil {
		t.Errorf("KKT violated: %v", err)
	}
}

func TestWaterFillValidation(t *testing.T) {
	if _, err := WaterFill(Problem{}); err == nil {
		t.Error("empty problem must fail")
	}
	p := table1Problem([]float64{0.2, 0.2, 0.2, 0.2, 0.2})
	p.Bandwidth = -1
	if _, err := WaterFill(p); err == nil {
		t.Error("negative bandwidth must fail")
	}
	p.Bandwidth = math.Inf(1)
	if _, err := WaterFill(p); err == nil {
		t.Error("infinite bandwidth must fail")
	}
}

func TestWaterFillZeroBandwidth(t *testing.T) {
	p := table1Problem([]float64{0.2, 0.2, 0.2, 0.2, 0.2})
	p.Bandwidth = 0
	sol, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range sol.Freqs {
		if f != 0 {
			t.Errorf("element %d funded %v with zero budget", i, f)
		}
	}
	if sol.Perceived != 0 {
		t.Errorf("Perceived = %v, want 0", sol.Perceived)
	}
}

func TestWaterFillValuelessElements(t *testing.T) {
	// Elements with zero access probability or zero change rate must
	// receive nothing; the rest split the full budget.
	p := Problem{
		Elements: []freshness.Element{
			{ID: 0, Lambda: 2, AccessProb: 0, Size: 1},   // unread
			{ID: 1, Lambda: 0, AccessProb: 0.5, Size: 1}, // never changes
			{ID: 2, Lambda: 2, AccessProb: 0.5, Size: 1},
		},
		Bandwidth: 3,
	}
	sol, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Freqs[0] != 0 || sol.Freqs[1] != 0 {
		t.Errorf("valueless elements funded: %v", sol.Freqs)
	}
	if math.Abs(sol.Freqs[2]-3) > 1e-6 {
		t.Errorf("element 2 got %v, want the whole budget 3", sol.Freqs[2])
	}
}

func TestWaterFillAllValueless(t *testing.T) {
	p := Problem{
		Elements: []freshness.Element{
			{Lambda: 0, AccessProb: 0.5, Size: 1},
			{Lambda: 3, AccessProb: 0, Size: 1},
		},
		Bandwidth: 10,
	}
	sol, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Freqs[0] != 0 || sol.Freqs[1] != 0 {
		t.Errorf("freqs = %v, want all zero", sol.Freqs)
	}
	// The never-changing element is permanently fresh.
	if math.Abs(sol.Perceived-0.5) > 1e-12 {
		t.Errorf("Perceived = %v, want 0.5", sol.Perceived)
	}
}

func TestWaterFillMoreBandwidthNeverHurts(t *testing.T) {
	probs := []float64{0.1, 0.15, 0.2, 0.25, 0.3}
	prev := -1.0
	for _, b := range []float64{1, 2, 5, 10, 25, 100} {
		p := table1Problem(probs)
		p.Bandwidth = b
		sol, err := WaterFill(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Perceived < prev-1e-9 {
			t.Errorf("bandwidth %v: PF %v dropped below %v", b, sol.Perceived, prev)
		}
		prev = sol.Perceived
	}
}

func TestWaterFillBeatsBaselines(t *testing.T) {
	probs := []float64{0.5, 0.05, 0.3, 0.05, 0.1}
	p := table1Problem(probs)
	opt, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Uniform(p)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Proportional(p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Perceived < uni.Perceived-1e-9 {
		t.Errorf("optimal %v below uniform %v", opt.Perceived, uni.Perceived)
	}
	if opt.Perceived < prop.Perceived-1e-9 {
		t.Errorf("optimal %v below proportional %v", opt.Perceived, prop.Perceived)
	}
}

func TestWaterFillSizedObjects(t *testing.T) {
	// Two identical elements except for size: the smaller one must get
	// at least as high a refresh frequency, and the budget must bind
	// on Σ s·f.
	p := Problem{
		Elements: []freshness.Element{
			{ID: 0, Lambda: 2, AccessProb: 0.5, Size: 4},
			{ID: 1, Lambda: 2, AccessProb: 0.5, Size: 0.25},
		},
		Bandwidth: 4,
	}
	sol, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Freqs[1] <= sol.Freqs[0] {
		t.Errorf("small object freq %v not above large object freq %v", sol.Freqs[1], sol.Freqs[0])
	}
	if math.Abs(sol.BandwidthUsed-4) > 1e-6 {
		t.Errorf("bandwidth used %v, want 4", sol.BandwidthUsed)
	}
	if err := VerifyKKT(p, sol, 1e-6); err != nil {
		t.Errorf("KKT violated: %v", err)
	}
}

func TestSolveGFMatchesUniformProfileOptimum(t *testing.T) {
	// Under a uniform profile PF and GF coincide (the paper's theta=0
	// observation): the GF schedule must equal the PF schedule.
	probs := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	p := table1Problem(probs)
	pf, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := SolveGF(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pf.Freqs {
		if math.Abs(pf.Freqs[i]-gf.Freqs[i]) > 1e-6 {
			t.Errorf("element %d: PF freq %v vs GF freq %v", i, pf.Freqs[i], gf.Freqs[i])
		}
	}
}

func TestSolveGFScoredOnTrueProfile(t *testing.T) {
	// With a skewed profile, the GF schedule must score no better than
	// the PF optimum on perceived freshness.
	probs := []float64{0.02, 0.03, 0.05, 0.2, 0.7}
	p := table1Problem(probs)
	pf, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := SolveGF(p)
	if err != nil {
		t.Fatal(err)
	}
	if gf.Perceived > pf.Perceived+1e-9 {
		t.Errorf("GF perceived %v exceeds PF optimum %v", gf.Perceived, pf.Perceived)
	}
	if gf.Perceived >= pf.Perceived {
		t.Logf("note: GF matched PF exactly (possible only for degenerate profiles)")
	}
}

func TestWaterFillPoissonPolicy(t *testing.T) {
	p := table1Problem([]float64{0.1, 0.2, 0.3, 0.25, 0.15})
	p.Policy = freshness.PoissonOrder{}
	sol, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKKT(p, sol, 1e-6); err != nil {
		t.Errorf("KKT violated under poisson policy: %v", err)
	}
	// Fixed-Order must dominate Poisson-Order at the respective optima.
	fixed, err := WaterFill(table1Problem([]float64{0.1, 0.2, 0.3, 0.25, 0.15}))
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Perceived <= sol.Perceived {
		t.Errorf("fixed-order optimum %v not above poisson optimum %v", fixed.Perceived, sol.Perceived)
	}
}
