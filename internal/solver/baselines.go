package solver

// Uniform allocates the same refresh frequency to every element:
// fᵢ = B / Σ sⱼ. With unit sizes this is the naive "refresh everything
// equally" policy the paper's introduction argues against.
func Uniform(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	var sizeSum float64
	for _, e := range p.Elements {
		sizeSum += e.Size
	}
	freq := p.Bandwidth / sizeSum
	sol := Solution{Freqs: make([]float64, len(p.Elements))}
	for i := range sol.Freqs {
		sol.Freqs[i] = freq
	}
	err := sol.evaluate(p)
	return sol, err
}

// Proportional splits the bandwidth budget in proportion to access
// probability and converts each element's share to a frequency by its
// size: fᵢ = B·pᵢ / (sᵢ·Σpⱼ). It is the intuitive "popularity only"
// heuristic that ignores change rates; the experiments use it to show
// how much the change-rate-aware optimum adds.
func Proportional(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	var probSum float64
	for _, e := range p.Elements {
		probSum += e.AccessProb
	}
	sol := Solution{Freqs: make([]float64, len(p.Elements))}
	if probSum > 0 {
		for i, e := range p.Elements {
			sol.Freqs[i] = p.Bandwidth * e.AccessProb / (e.Size * probSum)
		}
	}
	err := sol.evaluate(p)
	return sol, err
}
