package solver

import (
	"runtime"
	"sync"
)

// ReferenceWaterFill is the frozen pre-engine water-filling solver,
// kept verbatim for two jobs: the parity property test proves the
// engine computes the same schedules, and the bench-solver harness
// measures the engine's speedup against it on the same machine. It
// re-inverts every element's marginal from scratch at each bisection
// step, spawns fresh goroutines per usage evaluation, and finishes
// with the original O(n²) residual top-up — exactly the costs the
// engine removes. Do not optimize this function.
func ReferenceWaterFill(p Problem) (Solution, error) {
	return referenceWaterFill(p, false)
}

// referenceWaterFill optionally disables the reference's early exit so
// the multiplier resolves to the same 1e-15 relative bracket the
// engine uses. Comparing schedules between two solvers is only
// well-conditioned when both resolve μ equally tightly: with the loose
// 1e-10 bandwidth early exit, two correct solvers can stop at
// multipliers far enough apart that near-cutoff elements differ
// visibly. The parity test therefore compares against the
// fully-resolved reference; benchmarks use the historical behaviour.
func referenceWaterFill(p Problem, fullResolve bool) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	pol := p.policy()
	n := len(p.Elements)
	sol := Solution{Freqs: make([]float64, n)}

	// Peak marginal value of bandwidth per element: pᵢ·(∂F/∂f)(0,λᵢ)/sᵢ.
	muHi := 0.0
	active := false
	for _, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			continue
		}
		active = true
		if m := e.AccessProb * pol.Marginal(0, e.Lambda) / e.Size; m > muHi {
			muHi = m
		}
	}
	if !active || p.Bandwidth == 0 || muHi == 0 {
		err := sol.evaluate(p)
		return sol, err
	}

	workers := runtime.GOMAXPROCS(0)
	const parallelThreshold = 16384
	if n < parallelThreshold || workers < 2 {
		workers = 1
	}
	usageRange := func(mu float64, lo, hi int) float64 {
		var total float64
		for _, e := range p.Elements[lo:hi] {
			if e.AccessProb <= 0 || e.Lambda <= 0 {
				continue
			}
			f := pol.InvertMarginal(mu*e.Size/e.AccessProb, e.Lambda)
			total += e.Size * f
		}
		return total
	}
	usage := func(mu float64) float64 {
		if workers == 1 {
			return usageRange(mu, 0, n)
		}
		partial := make([]float64, workers)
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				partial[w] = usageRange(mu, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		var total float64
		for _, t := range partial {
			total += t
		}
		return total
	}

	muLo := muHi
	for i := 0; i < 4096; i++ {
		muLo /= 2
		if usage(muLo) >= p.Bandwidth {
			break
		}
	}

	iters := 0
	for i := 0; i < 200; i++ {
		iters++
		mid := 0.5 * (muLo + muHi)
		u := usage(mid)
		if u > p.Bandwidth {
			muLo = mid
		} else {
			muHi = mid
			if !fullResolve && p.Bandwidth-u <= waterFillTol*p.Bandwidth {
				break
			}
		}
		if muHi-muLo <= 1e-15*muHi {
			break
		}
	}
	mu := muHi
	for i, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			continue
		}
		sol.Freqs[i] = pol.InvertMarginal(mu*e.Size/e.AccessProb, e.Lambda)
	}
	var used float64
	for i, e := range p.Elements {
		used += e.Size * sol.Freqs[i]
	}
	if residual := p.Bandwidth - used; residual > p.Bandwidth*1e-14 {
		muFill := mu * (1 - 1e-9)
		for round := 0; round <= len(p.Elements) && residual > p.Bandwidth*1e-14; round++ {
			best, bestGain := -1, 0.0
			for i, e := range p.Elements {
				if e.AccessProb <= 0 || e.Lambda <= 0 {
					continue
				}
				cap := pol.InvertMarginal(muFill*e.Size/e.AccessProb, e.Lambda)
				if gain := cap - sol.Freqs[i]; gain > bestGain {
					best, bestGain = i, gain
				}
			}
			if best < 0 {
				break
			}
			size := p.Elements[best].Size
			df := residual / size
			if df > bestGain {
				df = bestGain
			}
			sol.Freqs[best] += df
			residual -= df * size
		}
	}
	sol.Multiplier = mu
	sol.Iterations = iters
	err := sol.evaluate(p)
	return sol, err
}
