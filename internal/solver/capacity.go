package solver

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// BandwidthForTarget answers the capacity-planning question: what is
// the smallest refresh budget under which the optimal schedule reaches
// the target perceived freshness? It bisects on bandwidth around the
// optimal-PF curve, which is concave and increasing in B.
//
// The achievable ceiling is Σ pᵢ over elements that can be kept fresh
// plus the mass on never-changing elements; a target above the
// asymptotic limit (as B → ∞ perceived freshness approaches Σ pᵢ)
// yields an error.
func BandwidthForTarget(elems []freshness.Element, target float64, pol freshness.Policy) (float64, error) {
	if err := freshness.ValidateElements(elems); err != nil {
		return 0, err
	}
	if !(target > 0) || target >= 1 || math.IsNaN(target) {
		return 0, fmt.Errorf("solver: target perceived freshness must be in (0, 1), got %v", target)
	}
	// One engine serves every probe of the outer bandwidth bisection,
	// so the ~100 inner solves share buffers instead of re-allocating.
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	pfAt := func(bandwidth float64) (float64, error) {
		sol, err := e.WaterFill(Problem{Elements: elems, Bandwidth: bandwidth, Policy: pol})
		if err != nil {
			return 0, err
		}
		return sol.Perceived, nil
	}

	// Base perceived freshness with zero bandwidth: never-changing
	// elements are always fresh.
	base, err := pfAt(0)
	if err != nil {
		return 0, err
	}
	if base >= target {
		return 0, nil
	}

	// Bracket: grow B until the target is reached or the curve
	// plateaus out of reach.
	var totalLambda float64
	for _, e := range elems {
		totalLambda += e.Lambda * e.Size
	}
	lo, hi := 0.0, math.Max(totalLambda, 1)
	for i := 0; ; i++ {
		pf, err := pfAt(hi)
		if err != nil {
			return 0, err
		}
		if pf >= target {
			break
		}
		if i >= 40 {
			return 0, fmt.Errorf("solver: target %v unreachable (PF %v at bandwidth %v)", target, pf, hi)
		}
		lo = hi
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		pf, err := pfAt(mid)
		if err != nil {
			return 0, err
		}
		if pf >= target {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo <= 1e-6*hi {
			break
		}
	}
	return hi, nil
}
