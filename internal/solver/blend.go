package solver

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// Blend solves the combined objective
//
//	maximize Σ pᵢ·[F(fᵢ, λᵢ) − ageWeight·Ā(fᵢ, λᵢ)]
//
// subject to the bandwidth constraint: the paper's perceived freshness
// tempered by a staleness-depth penalty. ageWeight = 0 reduces to
// WaterFill; any positive weight makes the marginal value unbounded at
// f = 0 (the age term dominates), so every accessed, changing element
// receives bandwidth — the operator dials how much freshness to trade
// for bounded age with one knob. Fixed-Order policy only.
func Blend(p Problem, ageWeight float64) (Solution, error) {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	return e.Blend(p, ageWeight)
}

// Blend solves the combined objective on this engine. The combined
// marginal d/df [F − w·Ā] = F'(f) + w·(−Ā'(f)) is positive and
// decreasing (both terms are), so the engine's shared bisection
// applies; per-element inversions bisect on f with warm-started
// brackets, and the age term makes every active element fund, as in
// MinimizeAge.
func (e *Engine) Blend(p Problem, ageWeight float64) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if ageWeight < 0 || math.IsNaN(ageWeight) || math.IsInf(ageWeight, 0) {
		return Solution{}, fmt.Errorf("solver: ageWeight must be finite and non-negative, got %v", ageWeight)
	}
	if p.Policy != nil {
		if _, ok := p.Policy.(freshness.FixedOrder); !ok {
			return Solution{}, fmt.Errorf("solver: Blend supports the Fixed-Order policy only")
		}
	}
	if ageWeight == 0 {
		return e.WaterFill(p)
	}
	return e.solveCurve(p, blendCurve{ageWeight: ageWeight}, false)
}
