package solver

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// Blend solves the combined objective
//
//	maximize Σ pᵢ·[F(fᵢ, λᵢ) − ageWeight·Ā(fᵢ, λᵢ)]
//
// subject to the bandwidth constraint: the paper's perceived freshness
// tempered by a staleness-depth penalty. ageWeight = 0 reduces to
// WaterFill; any positive weight makes the marginal value unbounded at
// f = 0 (the age term dominates), so every accessed, changing element
// receives bandwidth — the operator dials how much freshness to trade
// for bounded age with one knob. Fixed-Order policy only.
func Blend(p Problem, ageWeight float64) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if ageWeight < 0 || math.IsNaN(ageWeight) || math.IsInf(ageWeight, 0) {
		return Solution{}, fmt.Errorf("solver: ageWeight must be finite and non-negative, got %v", ageWeight)
	}
	if p.Policy != nil {
		if _, ok := p.Policy.(freshness.FixedOrder); !ok {
			return Solution{}, fmt.Errorf("solver: Blend supports the Fixed-Order policy only")
		}
	}
	if ageWeight == 0 {
		return WaterFill(p)
	}
	pol := freshness.FixedOrder{}
	n := len(p.Elements)
	sol := Solution{Freqs: make([]float64, n)}

	active := false
	for _, e := range p.Elements {
		if e.AccessProb > 0 && e.Lambda > 0 {
			active = true
			break
		}
	}
	if !active || p.Bandwidth == 0 {
		if err := sol.evaluate(p); err != nil {
			return Solution{}, err
		}
		return sol, nil
	}

	// Combined marginal: d/df [F − w·Ā] = F'(f) + w·(−Ā'(f)), both
	// positive and decreasing, so their sum is too; invert per element
	// by bisection on f.
	marginal := func(f, lambda float64) float64 {
		return pol.Marginal(f, lambda) + ageWeight*freshness.FixedOrderAgeMarginal(f, lambda)
	}
	invert := func(target, lambda float64) float64 {
		lo, hi := 0.0, 1.0
		for marginal(hi, lambda) > target {
			lo = hi
			hi *= 2
			if hi > 1e15 {
				break
			}
		}
		for i := 0; i < 200; i++ {
			mid := 0.5 * (lo + hi)
			if marginal(mid, lambda) > target {
				lo = mid
			} else {
				hi = mid
			}
			if hi-lo <= 1e-14*hi {
				break
			}
		}
		return 0.5 * (lo + hi)
	}
	usage := func(mu float64) float64 {
		var total float64
		for _, e := range p.Elements {
			if e.AccessProb <= 0 || e.Lambda <= 0 {
				continue
			}
			total += e.Size * invert(mu*e.Size/e.AccessProb, e.Lambda)
		}
		return total
	}

	muLo, muHi := 1.0, 1.0
	for usage(muLo) < p.Bandwidth {
		muLo /= 2
		if muLo < 1e-300 {
			break
		}
	}
	for usage(muHi) > p.Bandwidth {
		muHi *= 2
		if muHi > 1e300 {
			break
		}
	}
	iters := 0
	for i := 0; i < 200; i++ {
		iters++
		mid := 0.5 * (muLo + muHi)
		u := usage(mid)
		if u > p.Bandwidth {
			muLo = mid
		} else {
			muHi = mid
			if p.Bandwidth-u <= waterFillTol*p.Bandwidth {
				break
			}
		}
		if muHi-muLo <= 1e-15*muHi {
			break
		}
	}
	mu := muHi
	for i, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			continue
		}
		sol.Freqs[i] = invert(mu*e.Size/e.AccessProb, e.Lambda)
	}
	sol.Multiplier = mu
	sol.Iterations = iters
	if err := sol.evaluate(p); err != nil {
		return Solution{}, err
	}
	return sol, nil
}
