package solver

import (
	"math"
	"testing"

	"freshen/internal/freshness"
)

func TestBlendZeroWeightEqualsWaterFill(t *testing.T) {
	probs := []float64{0.1, 0.3, 0.25, 0.2, 0.15}
	p := table1Problem(probs)
	a, err := Blend(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Freqs {
		if math.Abs(a.Freqs[i]-b.Freqs[i]) > 1e-9 {
			t.Fatalf("zero weight diverged from WaterFill at element %d", i)
		}
	}
}

func TestBlendInterpolatesBetweenObjectives(t *testing.T) {
	probs := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	p := table1Problem(probs)
	fresh, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	age, err := MinimizeAge(p)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep the knob: PF decreases monotonically from the freshness
	// optimum toward the age optimum, and perceived age becomes finite
	// as soon as the weight is positive.
	prevPF := fresh.Perceived + 1e-12
	for _, w := range []float64{0.001, 0.01, 0.1, 1, 10, 100} {
		sol, err := Blend(p, w)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Perceived > prevPF+1e-9 {
			t.Errorf("w=%v: PF %v rose above previous %v", w, sol.Perceived, prevPF)
		}
		prevPF = sol.Perceived
		a, err := PerceivedAgeOf(p, sol)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsInf(a, 0) {
			t.Errorf("w=%v: blended schedule still has infinite age", w)
		}
		if sol.BandwidthUsed > p.Bandwidth*(1+1e-6) {
			t.Errorf("w=%v: over budget", w)
		}
	}
	// At a large weight the schedule approaches the pure age optimum.
	heavy, err := Blend(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range heavy.Freqs {
		if math.Abs(heavy.Freqs[i]-age.Freqs[i]) > 0.05*(age.Freqs[i]+0.1) {
			t.Errorf("w=1000: element %d freq %v vs age optimum %v", i, heavy.Freqs[i], age.Freqs[i])
		}
	}
}

func TestBlendValidation(t *testing.T) {
	p := table1Problem([]float64{0.2, 0.2, 0.2, 0.2, 0.2})
	if _, err := Blend(p, -1); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := Blend(p, math.Inf(1)); err == nil {
		t.Error("infinite weight must fail")
	}
	p.Policy = freshness.PoissonOrder{}
	if _, err := Blend(p, 1); err == nil {
		t.Error("poisson policy must be rejected")
	}
	if _, err := Blend(Problem{}, 1); err == nil {
		t.Error("empty problem must fail")
	}
}

func TestBlendValuelessProblem(t *testing.T) {
	p := Problem{
		Elements:  []freshness.Element{{Lambda: 0, AccessProb: 1, Size: 1}},
		Bandwidth: 3,
	}
	sol, err := Blend(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Freqs[0] != 0 || sol.Perceived != 1 {
		t.Errorf("unchanging element: %+v", sol)
	}
}
