package solver_test

import (
	"fmt"

	"freshen/internal/freshness"
	"freshen/internal/solver"
)

// ExampleWaterFill reproduces the paper's Table 1 row (b): the optimal
// schedule for five elements changing 1..5 times/day under a uniform
// profile with bandwidth for five refreshes/day.
func ExampleWaterFill() {
	elems := make([]freshness.Element, 5)
	for i := range elems {
		elems[i] = freshness.Element{
			ID:         i,
			Lambda:     float64(i + 1),
			AccessProb: 0.2,
			Size:       1,
		}
	}
	sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: 5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, f := range sol.Freqs {
		fmt.Printf("element %d (changes %d/day): %.2f syncs/day\n", i+1, i+1, f)
	}
	// Output:
	// element 1 (changes 1/day): 1.15 syncs/day
	// element 2 (changes 2/day): 1.36 syncs/day
	// element 3 (changes 3/day): 1.35 syncs/day
	// element 4 (changes 4/day): 1.14 syncs/day
	// element 5 (changes 5/day): 0.00 syncs/day
}

// ExampleBandwidthForTarget sizes the refresh budget for an SLA.
func ExampleBandwidthForTarget() {
	elems := []freshness.Element{
		{ID: 0, Lambda: 2, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 2, AccessProb: 0.5, Size: 1},
	}
	b, err := solver.BandwidthForTarget(elems, 0.8, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("PF 0.80 needs %.1f refreshes/period\n", b)
	// Output:
	// PF 0.80 needs 8.6 refreshes/period
}
