package solver

import (
	"freshen/internal/freshness"
)

// waterFillTol is the relative bandwidth tolerance the frozen
// reference solver uses for its early exit; the engine instead runs
// the bisection to full multiplier resolution (see engine.go).
const waterFillTol = 1e-10

// WaterFill solves the problem exactly via the Appendix's Lagrange
// conditions. It bisects on the multiplier μ; for a candidate μ each
// element's frequency is the inverse of its marginal-value curve at
// μ·sᵢ/pᵢ, and total bandwidth usage is monotone decreasing in μ, so
// the budget-matching multiplier is unique.
//
// The heavy lifting happens in the solve engine (engine.go): funding
// cutoffs are precomputed and sorted so each candidate μ only touches
// the funded prefix, marginal inversions warm-start from the previous
// bisection iterate, and large mirrors shard across a per-solve worker
// pool with a deterministic reduction order. Engines are recycled
// through a pool, so steady-state solves allocate only the returned
// frequency vector.
func WaterFill(p Problem) (Solution, error) {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	return e.WaterFill(p)
}

// SolveGF solves the same instance under the GF (General Freshening)
// objective of Cho & Garcia-Molina: average freshness, i.e. uniform
// weights. The returned solution's Perceived field is still evaluated
// under the problem's real access profile so PF and GF schedules can
// be compared on the paper's metric.
func SolveGF(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	uniform := Problem{
		Elements:  append([]freshness.Element(nil), p.Elements...),
		Bandwidth: p.Bandwidth,
		Policy:    p.Policy,
	}
	w := 1 / float64(len(uniform.Elements))
	for i := range uniform.Elements {
		uniform.Elements[i].AccessProb = w
	}
	sol, err := WaterFill(uniform)
	if err != nil {
		return Solution{}, err
	}
	// Re-score the GF schedule against the true profile.
	if err := sol.evaluate(p); err != nil {
		return Solution{}, err
	}
	return sol, nil
}
