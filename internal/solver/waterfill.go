package solver

import (
	"runtime"
	"sync"

	"freshen/internal/freshness"
)

// waterFillTol is the relative bandwidth tolerance of the multiplier
// bisection.
const waterFillTol = 1e-10

// WaterFill solves the problem exactly via the Appendix's Lagrange
// conditions. It bisects on the multiplier μ; for a candidate μ each
// element's frequency is the inverse of its marginal-value curve at
// μ·sᵢ/pᵢ, and total bandwidth usage is monotone decreasing in μ, so
// the budget-matching multiplier is unique.
func WaterFill(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	pol := p.policy()
	n := len(p.Elements)
	sol := Solution{Freqs: make([]float64, n)}

	// Peak marginal value of bandwidth per element: pᵢ·(∂F/∂f)(0,λᵢ)/sᵢ.
	// Elements with zero weight or zero change rate never earn
	// bandwidth and stay at frequency 0.
	muHi := 0.0
	active := false
	for _, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			continue
		}
		active = true
		if m := e.AccessProb * pol.Marginal(0, e.Lambda) / e.Size; m > muHi {
			muHi = m
		}
	}
	if !active || p.Bandwidth == 0 || muHi == 0 {
		err := sol.evaluate(p)
		return sol, err
	}

	// usage evaluates Σ sᵢ·fᵢ(μ). For big mirrors the per-element
	// marginal inversions dominate the solve, so they are sharded
	// across workers; partial sums are reduced in worker order to keep
	// the result deterministic.
	workers := runtime.GOMAXPROCS(0)
	const parallelThreshold = 16384
	if n < parallelThreshold || workers < 2 {
		workers = 1
	}
	usageRange := func(mu float64, lo, hi int) float64 {
		var total float64
		for _, e := range p.Elements[lo:hi] {
			if e.AccessProb <= 0 || e.Lambda <= 0 {
				continue
			}
			f := pol.InvertMarginal(mu*e.Size/e.AccessProb, e.Lambda)
			total += e.Size * f
		}
		return total
	}
	usage := func(mu float64) float64 {
		if workers == 1 {
			return usageRange(mu, 0, n)
		}
		partial := make([]float64, workers)
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				partial[w] = usageRange(mu, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		var total float64
		for _, t := range partial {
			total += t
		}
		return total
	}

	// Bracket the multiplier: usage(muHi) = 0 < B; shrink muLo until
	// usage(muLo) >= B. Usage grows without bound as μ → 0 for any
	// active element, so this terminates.
	muLo := muHi
	for i := 0; i < 4096; i++ {
		muLo /= 2
		if usage(muLo) >= p.Bandwidth {
			break
		}
	}

	iters := 0
	for i := 0; i < 200; i++ {
		iters++
		mid := 0.5 * (muLo + muHi)
		u := usage(mid)
		if u > p.Bandwidth {
			muLo = mid
		} else {
			muHi = mid
			// Early exit only from the feasible side: muHi then both
			// respects the budget and fills it to tolerance.
			if p.Bandwidth-u <= waterFillTol*p.Bandwidth {
				break
			}
		}
		if muHi-muLo <= 1e-15*muHi {
			break
		}
	}
	// The bisection maintains usage(muLo) >= B >= usage(muHi); taking
	// the high end guarantees the final schedule never exceeds the
	// budget (the midpoint could overshoot by the width of the last
	// bracket).
	mu := muHi
	for i, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			continue
		}
		sol.Freqs[i] = pol.InvertMarginal(mu*e.Size/e.AccessProb, e.Lambda)
	}
	// Top up the residual. The multiplier is only resolvable to ~1e-15
	// relative, and an element whose funding cutoff coincides with μ
	// to that precision absorbs its bandwidth discontinuously in float
	// arithmetic, which can leave a sliver of the budget unused. Fill
	// the sliver by raising elements toward the frequency they would
	// hold at μ·(1−1e-9): that keeps every funded marginal within 1e-9
	// of the multiplier (optimality to the precision μ itself carries)
	// while restoring budget tightness. The fill frontier usage at
	// μ·(1−1e-9) is at least the budget by the bisection invariant, so
	// the loop always exhausts the residual.
	var used float64
	for i, e := range p.Elements {
		used += e.Size * sol.Freqs[i]
	}
	if residual := p.Bandwidth - used; residual > p.Bandwidth*1e-14 {
		muFill := mu * (1 - 1e-9)
		for round := 0; round <= len(p.Elements) && residual > p.Bandwidth*1e-14; round++ {
			best, bestGain := -1, 0.0
			for i, e := range p.Elements {
				if e.AccessProb <= 0 || e.Lambda <= 0 {
					continue
				}
				cap := pol.InvertMarginal(muFill*e.Size/e.AccessProb, e.Lambda)
				if gain := cap - sol.Freqs[i]; gain > bestGain {
					best, bestGain = i, gain
				}
			}
			if best < 0 {
				break
			}
			size := p.Elements[best].Size
			df := residual / size
			if df > bestGain {
				df = bestGain
			}
			sol.Freqs[best] += df
			residual -= df * size
		}
	}
	sol.Multiplier = mu
	sol.Iterations = iters
	err := sol.evaluate(p)
	return sol, err
}

// SolveGF solves the same instance under the GF (General Freshening)
// objective of Cho & Garcia-Molina: average freshness, i.e. uniform
// weights. The returned solution's Perceived field is still evaluated
// under the problem's real access profile so PF and GF schedules can
// be compared on the paper's metric.
func SolveGF(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	uniform := Problem{
		Elements:  append([]freshness.Element(nil), p.Elements...),
		Bandwidth: p.Bandwidth,
		Policy:    p.Policy,
	}
	w := 1 / float64(len(uniform.Elements))
	for i := range uniform.Elements {
		uniform.Elements[i].AccessProb = w
	}
	sol, err := WaterFill(uniform)
	if err != nil {
		return Solution{}, err
	}
	// Re-score the GF schedule against the true profile.
	if err := sol.evaluate(p); err != nil {
		return Solution{}, err
	}
	return sol, nil
}
