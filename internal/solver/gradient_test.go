package solver

import (
	"math"
	"testing"
	"testing/quick"

	"freshen/internal/freshness"
)

func TestGradientMatchesWaterFill(t *testing.T) {
	probs := []float64{0.05, 0.3, 0.15, 0.4, 0.1}
	p := table1Problem(probs)
	exact, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Gradient(p, GradientOptions{MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx.Perceived-exact.Perceived) > 2e-3 {
		t.Errorf("gradient PF %v vs exact %v", approx.Perceived, exact.Perceived)
	}
	if approx.BandwidthUsed > p.Bandwidth*(1+1e-9) {
		t.Errorf("gradient over budget: %v > %v", approx.BandwidthUsed, p.Bandwidth)
	}
}

func TestGradientSizedObjects(t *testing.T) {
	p := Problem{
		Elements: []freshness.Element{
			{ID: 0, Lambda: 1, AccessProb: 0.3, Size: 2},
			{ID: 1, Lambda: 3, AccessProb: 0.5, Size: 0.5},
			{ID: 2, Lambda: 2, AccessProb: 0.2, Size: 1},
		},
		Bandwidth: 6,
	}
	exact, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Gradient(p, GradientOptions{MaxIterations: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(approx.Perceived-exact.Perceived) > 2e-3 {
		t.Errorf("gradient PF %v vs exact %v", approx.Perceived, exact.Perceived)
	}
}

func TestGradientValidation(t *testing.T) {
	if _, err := Gradient(Problem{}, GradientOptions{}); err == nil {
		t.Error("empty problem must fail")
	}
}

func TestGradientValuelessProblem(t *testing.T) {
	p := Problem{
		Elements:  []freshness.Element{{Lambda: 0, AccessProb: 1, Size: 1}},
		Bandwidth: 5,
	}
	sol, err := Gradient(p, GradientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Perceived != 1 {
		t.Errorf("Perceived = %v, want 1 (element never changes)", sol.Perceived)
	}
}

func TestProjectBandwidth(t *testing.T) {
	elems := []freshness.Element{
		{Size: 1}, {Size: 2}, {Size: 1},
	}
	y := []float64{4, 3, 1}
	out := make([]float64, 3)
	projectBandwidth(y, elems, 6, out)
	var used float64
	for i, e := range elems {
		if out[i] < 0 {
			t.Errorf("projection produced negative frequency %v", out[i])
		}
		used += e.Size * out[i]
	}
	if math.Abs(used-6) > 1e-9 {
		t.Errorf("projected usage %v, want 6", used)
	}
	// Order statistics preserved per unit size: fᵢ = yᵢ − τ·sᵢ, so the
	// element with the largest y/s ratio keeps the largest f/s margin.
	if out[0] <= out[2] {
		t.Errorf("projection reordered elements: %v", out)
	}
}

func TestProjectBandwidthZeroBudget(t *testing.T) {
	elems := []freshness.Element{{Size: 1}, {Size: 1}}
	out := []float64{9, 9}
	projectBandwidth([]float64{1, 2}, elems, 0, out)
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("zero budget projection = %v, want zeros", out)
	}
}

func TestProjectBandwidthAlreadyFeasible(t *testing.T) {
	elems := []freshness.Element{{Size: 1}, {Size: 1}}
	out := make([]float64, 2)
	projectBandwidth([]float64{1, 1}, elems, 10, out)
	if out[0] != 1 || out[1] != 1 {
		t.Errorf("feasible point moved: %v", out)
	}
}

func TestProjectBandwidthProperty(t *testing.T) {
	// Property: the projection is feasible and leaves non-negative
	// frequencies, for any non-negative input.
	f := func(raw []uint8, rawB uint8) bool {
		if len(raw) == 0 {
			return true
		}
		elems := make([]freshness.Element, len(raw))
		y := make([]float64, len(raw))
		for i, v := range raw {
			elems[i] = freshness.Element{Size: float64(v%7)/2 + 0.5}
			y[i] = float64(v) / 10
		}
		b := float64(rawB)/10 + 0.1
		out := make([]float64, len(raw))
		projectBandwidth(y, elems, b, out)
		var used float64
		for i, e := range elems {
			if out[i] < 0 {
				return false
			}
			used += e.Size * out[i]
		}
		return used <= b*(1+1e-6)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
