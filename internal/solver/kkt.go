package solver

import (
	"fmt"
	"math"
)

// VerifyKKT checks that a solution satisfies the optimality conditions
// of the concave program within the relative tolerance tol:
//
//   - feasibility: fᵢ ≥ 0 and Σ sᵢ·fᵢ ≤ B (1+tol);
//   - stationarity: every funded element's marginal value of bandwidth
//     equals the multiplier, pᵢ·(∂F/∂f)(fᵢ,λᵢ)/sᵢ ≈ μ;
//   - complementary slackness: every starved element's peak marginal
//     value is at most μ.
//
// It is used by tests and by callers that want independent evidence a
// schedule is optimal rather than merely feasible.
func VerifyKKT(p Problem, s Solution, tol float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(s.Freqs) != len(p.Elements) {
		return fmt.Errorf("solver: solution has %d frequencies for %d elements", len(s.Freqs), len(p.Elements))
	}
	pol := p.policy()
	var used float64
	for i, e := range p.Elements {
		f := s.Freqs[i]
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("solver: element %d has invalid frequency %v", i, f)
		}
		used += e.Size * f
	}
	if used > p.Bandwidth*(1+tol)+tol {
		return fmt.Errorf("solver: bandwidth used %v exceeds budget %v", used, p.Bandwidth)
	}
	mu := s.Multiplier
	if mu <= 0 {
		return fmt.Errorf("solver: multiplier %v not positive; cannot check stationarity", mu)
	}
	for i, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			if s.Freqs[i] != 0 {
				return fmt.Errorf("solver: valueless element %d funded with frequency %v", i, s.Freqs[i])
			}
			continue
		}
		value := e.AccessProb * pol.Marginal(s.Freqs[i], e.Lambda) / e.Size
		if s.Freqs[i] > 0 {
			if math.Abs(value-mu) > tol*mu {
				return fmt.Errorf("solver: element %d funded but marginal value %v != multiplier %v", i, value, mu)
			}
		} else if value > mu*(1+tol) {
			return fmt.Errorf("solver: element %d starved but marginal value %v > multiplier %v", i, value, mu)
		}
	}
	return nil
}
