package solver

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/testkit"
)

// fuzzProblem decodes raw fuzzer input into a valid-but-extreme
// Problem: elements via testkit's total byte mapping, the budget
// folded onto [1e-9, 1e12]. Every input is a legal solver call, so a
// returned error is itself a finding.
func fuzzProblem(data []byte, rawBandwidth float64, poisson bool) Problem {
	p := Problem{
		Elements:  testkit.FuzzElements(data),
		Bandwidth: testkit.FoldFloat(rawBandwidth, 1e-9, 1e12),
	}
	if poisson {
		p.Policy = freshness.PoissonOrder{}
	}
	return p
}

// FuzzWaterFill asserts that the production solver, on any valid
// problem — change rates, access masses and sizes spanning many orders
// of magnitude — neither panics nor errors, and that every solution it
// returns carries an independent KKT certificate of optimality.
func FuzzWaterFill(f *testing.F) {
	f.Add([]byte{}, 5.0, false)
	f.Add([]byte{0, 0, 0, 0, 0, 0}, 1e-9, true)
	f.Add([]byte{255, 255, 255, 255, 255, 255}, 1e12, false)
	// Two elements at opposite corners of the domain plus a mid one.
	f.Add([]byte{
		0, 0, 255, 255, 0, 0,
		255, 255, 0, 0, 255, 255,
		128, 0, 128, 0, 128, 0,
	}, 3.5, false)
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}, 0.125, true)
	f.Fuzz(func(t *testing.T, data []byte, rawBandwidth float64, poisson bool) {
		p := fuzzProblem(data, rawBandwidth, poisson)
		sol, err := WaterFill(p)
		if err != nil {
			t.Fatalf("WaterFill rejected a valid problem (B=%v, n=%d): %v",
				p.Bandwidth, len(p.Elements), err)
		}
		if math.IsNaN(sol.Perceived) || sol.Perceived < 0 {
			t.Fatalf("perceived freshness %v", sol.Perceived)
		}
		testkit.MustCertify(t, p.Policy, p.Elements, sol.Freqs, p.Bandwidth, 1e-5)
	})
}

// FuzzBandwidthForTarget asserts the capacity planner either reports
// the target unreachable or returns a budget that actually attains it,
// with the attaining schedule KKT-certified.
func FuzzBandwidthForTarget(f *testing.F) {
	f.Add([]byte{}, 0.5, false)
	f.Add([]byte{0, 0, 255, 255, 0, 0}, 0.99, true)
	f.Add([]byte{255, 255, 255, 255, 255, 255, 1, 2, 3, 4, 5, 6}, 1e-6, false)
	f.Fuzz(func(t *testing.T, data []byte, rawTarget float64, poisson bool) {
		elems := testkit.FuzzElements(data)
		target := testkit.FoldFloat(rawTarget, 1e-6, 1-1e-6)
		var pol freshness.Policy
		if poisson {
			pol = freshness.PoissonOrder{}
		}
		bw, err := BandwidthForTarget(elems, target, pol)
		if err != nil {
			return // unreachable targets are a documented outcome
		}
		if math.IsNaN(bw) || bw < 0 || math.IsInf(bw, 0) {
			t.Fatalf("planned bandwidth %v", bw)
		}
		sol, err := WaterFill(Problem{Elements: elems, Bandwidth: bw, Policy: pol})
		if err != nil {
			t.Fatalf("re-solving at planned bandwidth %v: %v", bw, err)
		}
		if sol.Perceived < target-1e-9*(1+target) {
			t.Fatalf("planned bandwidth %v reaches PF %v, short of target %v", bw, sol.Perceived, target)
		}
		if bw > 0 {
			testkit.MustCertify(t, pol, elems, sol.Freqs, bw, 1e-5)
		}
	})
}
