package solver

import (
	"math"

	"freshen/internal/freshness"
)

// GradientOptions tunes the projected-gradient solver.
type GradientOptions struct {
	// MaxIterations caps the outer loop; 0 means the default (2000).
	MaxIterations int
	// Tolerance is the relative objective-improvement threshold at
	// which the solver declares convergence; 0 means 1e-10.
	Tolerance float64
	// StepScale multiplies the automatically chosen initial step; 0
	// means 1.
	StepScale float64
}

func (o GradientOptions) withDefaults() GradientOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 2000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-10
	}
	if o.StepScale <= 0 {
		o.StepScale = 1
	}
	return o
}

// Gradient solves the problem by projected gradient ascent on the
// feasible set {f ≥ 0, Σ sᵢ·fᵢ = B}. It stands in for the generic
// non-linear-programming package (IMSL) the paper used: it reaches the
// same optimum as WaterFill but needs many full passes over the data,
// which is exactly the scalability wall the paper's heuristics attack.
func Gradient(p Problem, opts GradientOptions) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.withDefaults()
	pol := p.policy()
	n := len(p.Elements)

	f := make([]float64, n)
	if p.Bandwidth > 0 {
		var sizeSum float64
		for _, e := range p.Elements {
			sizeSum += e.Size
		}
		for i := range f {
			f[i] = p.Bandwidth / sizeSum
		}
	}

	grad := make([]float64, n)
	y := make([]float64, n)
	// The marginal at f=0 is p/λ; scale the step so a typical first
	// move is a meaningful fraction of the per-element budget.
	var peak float64
	for _, e := range p.Elements {
		if e.Lambda > 0 && e.AccessProb > 0 {
			if m := e.AccessProb / e.Lambda; m > peak {
				peak = m
			}
		}
	}
	if peak == 0 {
		sol := Solution{Freqs: f}
		err := sol.evaluate(p)
		return sol, err
	}
	// Scale by sqrt(n) rather than n: after projection a gradient step
	// redistributes bandwidth among elements, and the useful step
	// magnitude shrinks with the problem's diameter (~sqrt(n)) rather
	// than with the per-element budget.
	baseStep := opts.StepScale * p.Bandwidth / (peak * math.Sqrt(float64(n)))

	prevObj := math.Inf(-1)
	iters := 0
	for t := 0; t < opts.MaxIterations; t++ {
		iters++
		step := baseStep / math.Sqrt(float64(t+1))
		// The marginal evaluations dominate each pass at scale; shard
		// them the same deterministic way as the solve engine.
		parallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := p.Elements[i]
				grad[i] = e.AccessProb * pol.Marginal(f[i], e.Lambda)
				y[i] = f[i] + step*grad[i]
			}
		})
		projectBandwidth(y, p.Elements, p.Bandwidth, f)
		if t%16 == 15 {
			obj, err := Solution{Freqs: f}.perceived(p)
			if err != nil {
				return Solution{}, err
			}
			if obj-prevObj <= opts.Tolerance*math.Max(math.Abs(obj), 1) {
				prevObj = obj
				break
			}
			prevObj = obj
		}
	}

	sol := Solution{Freqs: f, Iterations: iters}
	// Estimate the multiplier as the mean marginal value over funded
	// elements so callers can run the same KKT audit as for WaterFill.
	var muSum float64
	var funded int
	for i, e := range p.Elements {
		if f[i] > 0 && e.AccessProb > 0 && e.Lambda > 0 {
			muSum += e.AccessProb * pol.Marginal(f[i], e.Lambda) / e.Size
			funded++
		}
	}
	if funded > 0 {
		sol.Multiplier = muSum / float64(funded)
	}
	err := sol.evaluate(p)
	return sol, err
}

// perceived scores a frequency vector without mutating the solution.
func (s Solution) perceived(p Problem) (float64, error) {
	tmp := s
	if err := tmp.evaluate(p); err != nil {
		return 0, err
	}
	return tmp.Perceived, nil
}

// projectBandwidth writes into out the Euclidean projection of y onto
// {f ≥ 0, Σ sᵢ·fᵢ = B}: fᵢ = max(0, yᵢ − τ·sᵢ) with τ chosen by
// bisection so the budget binds. All yᵢ must be non-negative, which
// gradient ascent from a non-negative start guarantees.
func projectBandwidth(y []float64, elems []freshness.Element, bandwidth float64, out []float64) {
	usage := func(tau float64) float64 {
		return shardedSum(len(elems), func(lo, hi int) float64 {
			var u float64
			for i := lo; i < hi; i++ {
				v := y[i] - tau*elems[i].Size
				if v > 0 {
					u += elems[i].Size * v
				}
			}
			return u
		})
	}
	if bandwidth <= 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	lo := 0.0
	if usage(lo) <= bandwidth {
		// Already within budget (possible only through rounding);
		// keep y clamped at zero.
		for i := range out {
			out[i] = math.Max(0, y[i])
		}
		return
	}
	hi := 0.0
	for i, e := range elems {
		if r := y[i] / e.Size; r > hi {
			hi = r
		}
	}
	for it := 0; it < 100; it++ {
		mid := 0.5 * (lo + hi)
		if usage(mid) > bandwidth {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-15*math.Max(hi, 1) {
			break
		}
	}
	tau := 0.5 * (lo + hi)
	for i, e := range elems {
		v := y[i] - tau*e.Size
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
}
