// Package solver solves the paper's Core and Extended Problems: choose
// refresh frequencies fᵢ maximizing perceived freshness Σ pᵢ·F(fᵢ, λᵢ)
// subject to the bandwidth constraint Σ sᵢ·fᵢ ≤ B, fᵢ ≥ 0.
//
// The primary solver, WaterFill, implements the Lagrange-multiplier
// solution derived in the paper's Appendix directly: at the optimum
// every element with positive frequency has the same marginal value of
// bandwidth, pᵢ·(∂F/∂f)(fᵢ, λᵢ)/sᵢ = μ, and every starved element has
// peak marginal value pᵢ/(λᵢ·sᵢ) ≤ μ. Because the objective is concave
// (the paper's footnote 2) and the marginal is monotone in f, the
// multiplier is found by bisection and each frequency by inverting the
// marginal — an exact O(N log 1/ε) method that replaces the IMSL
// non-linear-programming library the authors used.
//
// Gradient is a deliberately generic projected-gradient-ascent solver
// standing in for that off-the-shelf NLP package; it reaches the same
// optimum far more slowly and anchors the scalability comparisons.
package solver
