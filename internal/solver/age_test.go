package solver

import (
	"math"
	"testing"
	"testing/quick"

	"freshen/internal/freshness"
)

func TestMinimizeAgeKKT(t *testing.T) {
	probs := []float64{0.05, 0.3, 0.15, 0.4, 0.1}
	p := table1Problem(probs)
	sol, err := MinimizeAge(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgeKKT(p, sol, 1e-6); err != nil {
		t.Errorf("age KKT violated: %v", err)
	}
	if math.Abs(sol.BandwidthUsed-5) > 1e-6 {
		t.Errorf("bandwidth used %v, want 5", sol.BandwidthUsed)
	}
}

func TestMinimizeAgeFundsEverything(t *testing.T) {
	// Contrast with the freshness objective: under P1 the freshness
	// optimum starves element 5 (Table 1 row b), the age optimum does
	// not.
	probs := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	p := table1Problem(probs)
	fresh, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Freqs[4] != 0 {
		t.Fatalf("precondition: freshness optimum should starve element 5, got %v", fresh.Freqs[4])
	}
	age, err := MinimizeAge(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range age.Freqs {
		if f <= 0 {
			t.Errorf("age optimum starves element %d", i+1)
		}
	}
}

func TestMinimizeAgeBeatsFreshnessOptimumOnAge(t *testing.T) {
	probs := []float64{0.1, 0.15, 0.2, 0.25, 0.3}
	p := table1Problem(probs)
	ageSol, err := MinimizeAge(p)
	if err != nil {
		t.Fatal(err)
	}
	freshSol, err := WaterFill(p)
	if err != nil {
		t.Fatal(err)
	}
	ageOfAge, err := PerceivedAgeOf(p, ageSol)
	if err != nil {
		t.Fatal(err)
	}
	ageOfFresh, err := PerceivedAgeOf(p, freshSol)
	if err != nil {
		t.Fatal(err)
	}
	if !(ageOfAge < ageOfFresh) {
		t.Errorf("age optimum's age %v not below freshness optimum's %v", ageOfAge, ageOfFresh)
	}
	// And vice versa on freshness.
	if !(freshSol.Perceived > ageSol.Perceived) {
		t.Errorf("freshness optimum's PF %v not above age optimum's %v",
			freshSol.Perceived, ageSol.Perceived)
	}
}

func TestMinimizeAgeRandomProblemsDominateUniform(t *testing.T) {
	// Property: the age optimum's perceived age is never above the
	// uniform allocation's.
	f := func(seed int64, rawN uint8) bool {
		p := randomProblem(seed, int(rawN%15)+2, true)
		sol, err := MinimizeAge(p)
		if err != nil {
			return false
		}
		uni, err := Uniform(p)
		if err != nil {
			return false
		}
		a, err := PerceivedAgeOf(p, sol)
		if err != nil {
			return false
		}
		b, err := PerceivedAgeOf(p, uni)
		if err != nil {
			return false
		}
		return a <= b+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeAgeValidation(t *testing.T) {
	if _, err := MinimizeAge(Problem{}); err == nil {
		t.Error("empty problem must fail")
	}
	p := table1Problem([]float64{0.2, 0.2, 0.2, 0.2, 0.2})
	p.Policy = freshness.PoissonOrder{}
	if _, err := MinimizeAge(p); err == nil {
		t.Error("poisson policy must be rejected")
	}
}

func TestMinimizeAgeValuelessElements(t *testing.T) {
	p := Problem{
		Elements: []freshness.Element{
			{ID: 0, Lambda: 0, AccessProb: 1, Size: 1},
			{ID: 1, Lambda: 2, AccessProb: 0, Size: 1},
		},
		Bandwidth: 5,
	}
	sol, err := MinimizeAge(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Freqs[0] != 0 || sol.Freqs[1] != 0 {
		t.Errorf("valueless elements funded: %v", sol.Freqs)
	}
}

func TestAgeMarginalMatchesFiniteDifference(t *testing.T) {
	for _, freq := range []float64{0.3, 1, 2.5, 10} {
		for _, lambda := range []float64{0.4, 1, 3, 9} {
			h := 1e-6 * freq
			fd := -(freshness.FixedOrderAge(freq+h, lambda) - freshness.FixedOrderAge(freq-h, lambda)) / (2 * h)
			an := freshness.FixedOrderAgeMarginal(freq, lambda)
			if math.Abs(fd-an) > 1e-4*(math.Abs(an)+1e-12) {
				t.Errorf("f=%v λ=%v: analytic %v vs finite-diff %v", freq, lambda, an, fd)
			}
		}
	}
}

func TestInvertAgeMarginalRoundTrip(t *testing.T) {
	for _, lambda := range []float64{0.3, 1, 4} {
		for _, freq := range []float64{0.05, 0.5, 2, 20} {
			target := freshness.FixedOrderAgeMarginal(freq, lambda)
			got := freshness.InvertFixedOrderAgeMarginal(target, lambda)
			if math.Abs(got-freq) > 1e-6*freq {
				t.Errorf("λ=%v: round trip %v -> %v", lambda, freq, got)
			}
		}
	}
	if got := freshness.InvertFixedOrderAgeMarginal(1, 0); got != 0 {
		t.Errorf("λ=0 must get 0, got %v", got)
	}
	if got := freshness.InvertFixedOrderAgeMarginal(0, 1); got != 0 {
		t.Errorf("target 0 must get 0, got %v", got)
	}
}
