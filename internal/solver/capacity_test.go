package solver

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/workload"
)

func TestBandwidthForTargetRoundTrip(t *testing.T) {
	spec := workload.TableTwo()
	spec.Theta = 1.0
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.4, 0.6304, 0.8} {
		b, err := BandwidthForTarget(elems, target, nil)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		sol, err := WaterFill(Problem{Elements: elems, Bandwidth: b})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Perceived < target-1e-4 {
			t.Errorf("target %v: bandwidth %v achieves only %v", target, b, sol.Perceived)
		}
		// Minimality: 2% less bandwidth must fall short.
		tight, err := WaterFill(Problem{Elements: elems, Bandwidth: b * 0.98})
		if err != nil {
			t.Fatal(err)
		}
		if tight.Perceived >= target {
			t.Errorf("target %v: bandwidth %v is not minimal (%v suffices)", target, b, b*0.98)
		}
	}
	// The paper's operating point cross-check: PF 0.6304 at B=250.
	b, err := BandwidthForTarget(elems, 0.6304, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-250) > 5 {
		t.Errorf("bandwidth for PF 0.6304 = %v, want about 250", b)
	}
}

func TestBandwidthForTargetFreeTargets(t *testing.T) {
	// Never-changing elements satisfy small targets at zero bandwidth.
	elems := []freshness.Element{
		{ID: 0, Lambda: 0, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 5, AccessProb: 0.5, Size: 1},
	}
	b, err := BandwidthForTarget(elems, 0.4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Errorf("target below the free base needs bandwidth %v, want 0", b)
	}
}

func TestBandwidthForTargetUnreachable(t *testing.T) {
	// Perceived freshness approaches but never exactly reaches 1 for a
	// changing element; a target requiring bandwidth beyond the
	// bracket's 2^40 growth cap must be reported unreachable rather
	// than looping forever (here: F = 1 − λ/(2f) needs f ≈ 5e12, the
	// cap stops near 1e12).
	elems := []freshness.Element{{ID: 0, Lambda: 1, AccessProb: 1, Size: 1}}
	if _, err := BandwidthForTarget(elems, 1-1e-13, nil); err == nil {
		t.Error("absurd target should be unreachable within the bracket cap")
	}
}

func TestBandwidthForTargetValidation(t *testing.T) {
	elems := []freshness.Element{{ID: 0, Lambda: 1, AccessProb: 1, Size: 1}}
	for _, target := range []float64{0, -0.5, 1, 1.5, math.NaN()} {
		if _, err := BandwidthForTarget(elems, target, nil); err == nil {
			t.Errorf("target %v accepted", target)
		}
	}
	if _, err := BandwidthForTarget(nil, 0.5, nil); err == nil {
		t.Error("empty mirror must fail")
	}
}
