package solver

import (
	"fmt"
	"testing"

	"freshen/internal/freshness"
)

// benchSizes are the scales the acceptance numbers are quoted at.
var benchSizes = []struct {
	label string
	n     int
}{
	{"N=1e4", 10_000},
	{"N=1e5", 100_000},
	{"N=1e6", 1_000_000},
}

func benchProblem(n int, pol freshness.Policy, pareto bool) Problem {
	elems := parityWorkload(42, n, pareto)
	var total float64
	for _, e := range elems {
		total += e.Size
	}
	return Problem{Elements: elems, Bandwidth: total * 0.3, Policy: pol}
}

// BenchmarkWaterFill measures the engine on Pareto-sized workloads at
// the paper's scales, for both synchronization policies. Run with
// -benchmem: allocs/op should stay flat in n (the Freqs slice plus
// per-solve pool setup — nothing per bisection iteration).
func BenchmarkWaterFill(b *testing.B) {
	policies := []struct {
		name string
		pol  freshness.Policy
	}{
		{"fixed", freshness.FixedOrder{}},
		{"poisson", freshness.PoissonOrder{}},
	}
	for _, size := range benchSizes {
		for _, pc := range policies {
			b.Run(fmt.Sprintf("%s/%s", size.label, pc.name), func(b *testing.B) {
				p := benchProblem(size.n, pc.pol, true)
				e := NewEngine()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.WaterFill(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReferenceWaterFill is the pre-engine baseline on the same
// workloads; the ratio against BenchmarkWaterFill is the speedup the
// engine's pruning, warm starts and persistent workers buy.
func BenchmarkReferenceWaterFill(b *testing.B) {
	policies := []struct {
		name string
		pol  freshness.Policy
	}{
		{"fixed", freshness.FixedOrder{}},
		{"poisson", freshness.PoissonOrder{}},
	}
	for _, size := range benchSizes {
		for _, pc := range policies {
			b.Run(fmt.Sprintf("%s/%s", size.label, pc.name), func(b *testing.B) {
				p := benchProblem(size.n, pc.pol, true)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ReferenceWaterFill(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWaterFillUnitSizes isolates the policy-inversion cost from
// the heavy-tailed size distribution (unit sizes, FixedOrder).
func BenchmarkWaterFillUnitSizes(b *testing.B) {
	for _, size := range benchSizes {
		b.Run(size.label, func(b *testing.B) {
			p := benchProblem(size.n, freshness.FixedOrder{}, false)
			e := NewEngine()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.WaterFill(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
