package solver

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// MinimizeAge solves the dual of the Core Problem for operators whose
// SLA is phrased in staleness depth rather than hit freshness:
// minimize the perceived age Σ pᵢ·Ā(fᵢ, λᵢ) subject to Σ sᵢ·fᵢ ≤ B.
// The age objective is convex with an unbounded marginal at f = 0, so
// the same Lagrange water-filling applies — with the notable
// difference that every accessed, changing element receives bandwidth
// (nothing may be allowed to age without bound). Fixed-Order policy
// only.
func MinimizeAge(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if p.Policy != nil {
		if _, ok := p.Policy.(freshness.FixedOrder); !ok {
			return Solution{}, fmt.Errorf("solver: MinimizeAge supports the Fixed-Order policy only")
		}
	}
	n := len(p.Elements)
	sol := Solution{Freqs: make([]float64, n)}

	active := false
	for _, e := range p.Elements {
		if e.AccessProb > 0 && e.Lambda > 0 {
			active = true
			break
		}
	}
	if !active || p.Bandwidth == 0 {
		if err := sol.evaluate(p); err != nil {
			return Solution{}, err
		}
		return sol, nil
	}

	usage := func(mu float64) float64 {
		var total float64
		for _, e := range p.Elements {
			if e.AccessProb <= 0 || e.Lambda <= 0 {
				continue
			}
			f := freshness.InvertFixedOrderAgeMarginal(mu*e.Size/e.AccessProb, e.Lambda)
			total += e.Size * f
		}
		return total
	}

	// The age marginal is unbounded at f = 0, so any positive μ funds
	// every active element; bracket μ from both sides.
	muLo, muHi := 1.0, 1.0
	for usage(muLo) < p.Bandwidth {
		muLo /= 2
		if muLo < 1e-300 {
			break
		}
	}
	for usage(muHi) > p.Bandwidth {
		muHi *= 2
		if muHi > 1e300 {
			break
		}
	}
	iters := 0
	for i := 0; i < 200; i++ {
		iters++
		mid := 0.5 * (muLo + muHi)
		u := usage(mid)
		if u > p.Bandwidth {
			muLo = mid
		} else {
			muHi = mid
			if p.Bandwidth-u <= waterFillTol*p.Bandwidth {
				break
			}
		}
		if muHi-muLo <= 1e-15*muHi {
			break
		}
	}
	mu := muHi
	for i, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			continue
		}
		sol.Freqs[i] = freshness.InvertFixedOrderAgeMarginal(mu*e.Size/e.AccessProb, e.Lambda)
	}
	sol.Multiplier = mu
	sol.Iterations = iters
	if err := sol.evaluate(p); err != nil {
		return Solution{}, err
	}
	return sol, nil
}

// PerceivedAgeOf scores a solution's frequencies on the perceived-age
// metric (convenience wrapper, +Inf when an accessed changing element
// is unfunded).
func PerceivedAgeOf(p Problem, s Solution) (float64, error) {
	return freshness.PerceivedAge(p.Elements, s.Freqs)
}

// VerifyAgeKKT checks the optimality conditions of the age program:
// feasibility and equal marginal age reduction per unit bandwidth
// across all funded elements.
func VerifyAgeKKT(p Problem, s Solution, tol float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(s.Freqs) != len(p.Elements) {
		return fmt.Errorf("solver: solution has %d frequencies for %d elements", len(s.Freqs), len(p.Elements))
	}
	var used float64
	for i, e := range p.Elements {
		if s.Freqs[i] < 0 || math.IsNaN(s.Freqs[i]) {
			return fmt.Errorf("solver: element %d has invalid frequency %v", i, s.Freqs[i])
		}
		used += e.Size * s.Freqs[i]
	}
	if used > p.Bandwidth*(1+tol)+tol {
		return fmt.Errorf("solver: bandwidth used %v exceeds budget %v", used, p.Bandwidth)
	}
	mu := s.Multiplier
	if mu <= 0 {
		return fmt.Errorf("solver: multiplier %v not positive", mu)
	}
	for i, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			if s.Freqs[i] != 0 {
				return fmt.Errorf("solver: valueless element %d funded", i)
			}
			continue
		}
		if s.Freqs[i] == 0 {
			return fmt.Errorf("solver: active element %d unfunded; the age objective forbids starvation", i)
		}
		v := e.AccessProb * freshness.FixedOrderAgeMarginal(s.Freqs[i], e.Lambda) / e.Size
		if math.Abs(v-mu) > tol*mu {
			return fmt.Errorf("solver: element %d marginal %v != multiplier %v", i, v, mu)
		}
	}
	return nil
}
