package solver

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// MinimizeAge solves the dual of the Core Problem for operators whose
// SLA is phrased in staleness depth rather than hit freshness:
// minimize the perceived age Σ pᵢ·Ā(fᵢ, λᵢ) subject to Σ sᵢ·fᵢ ≤ B.
// The age objective is convex with an unbounded marginal at f = 0, so
// the same Lagrange water-filling applies — with the notable
// difference that every accessed, changing element receives bandwidth
// (nothing may be allowed to age without bound). Fixed-Order policy
// only.
func MinimizeAge(p Problem) (Solution, error) {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	return e.MinimizeAge(p)
}

// MinimizeAge solves the age program on this engine. The age marginal
// is unbounded at f = 0, so every active element is always funded —
// cutoff pruning never fires — but the engine still provides the
// warm-started inversions, worker pool and allocation-free bisection.
func (e *Engine) MinimizeAge(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if p.Policy != nil {
		if _, ok := p.Policy.(freshness.FixedOrder); !ok {
			return Solution{}, fmt.Errorf("solver: MinimizeAge supports the Fixed-Order policy only")
		}
	}
	return e.solveCurve(p, ageCurve{}, false)
}

// PerceivedAgeOf scores a solution's frequencies on the perceived-age
// metric (convenience wrapper, +Inf when an accessed changing element
// is unfunded).
func PerceivedAgeOf(p Problem, s Solution) (float64, error) {
	return freshness.PerceivedAge(p.Elements, s.Freqs)
}

// VerifyAgeKKT checks the optimality conditions of the age program:
// feasibility and equal marginal age reduction per unit bandwidth
// across all funded elements.
func VerifyAgeKKT(p Problem, s Solution, tol float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(s.Freqs) != len(p.Elements) {
		return fmt.Errorf("solver: solution has %d frequencies for %d elements", len(s.Freqs), len(p.Elements))
	}
	var used float64
	for i, e := range p.Elements {
		if s.Freqs[i] < 0 || math.IsNaN(s.Freqs[i]) {
			return fmt.Errorf("solver: element %d has invalid frequency %v", i, s.Freqs[i])
		}
		used += e.Size * s.Freqs[i]
	}
	if used > p.Bandwidth*(1+tol)+tol {
		return fmt.Errorf("solver: bandwidth used %v exceeds budget %v", used, p.Bandwidth)
	}
	mu := s.Multiplier
	if mu <= 0 {
		return fmt.Errorf("solver: multiplier %v not positive", mu)
	}
	for i, e := range p.Elements {
		if e.AccessProb <= 0 || e.Lambda <= 0 {
			if s.Freqs[i] != 0 {
				return fmt.Errorf("solver: valueless element %d funded", i)
			}
			continue
		}
		if s.Freqs[i] == 0 {
			return fmt.Errorf("solver: active element %d unfunded; the age objective forbids starvation", i)
		}
		v := e.AccessProb * freshness.FixedOrderAgeMarginal(s.Freqs[i], e.Lambda) / e.Size
		if math.Abs(v-mu) > tol*mu {
			return fmt.Errorf("solver: element %d marginal %v != multiplier %v", i, v, mu)
		}
	}
	return nil
}
