package solver

import (
	"fmt"
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/stats"
)

// parityWorkload draws a Table-2/Table-3-style instance: Zipf-like
// access skew, Gamma-spread change rates, unit or Pareto sizes.
func parityWorkload(seed int64, n int, pareto bool) []freshness.Element {
	r := stats.NewRNG(seed)
	elems := make([]freshness.Element, n)
	var probSum float64
	for i := range elems {
		// Power-law access mass with a random exponent in [0.5, 1.5).
		p := math.Pow(float64(i+1), -(0.5 + r.Float64()))
		lambda := r.Float64()*8 + 1e-3
		size := 1.0
		if pareto {
			// Pareto(α≈1.5) truncated: heavy-tailed like web object sizes.
			size = math.Min(1/math.Pow(1-r.Float64(), 1/1.5), 1e3)
		}
		elems[i] = freshness.Element{ID: i, Lambda: lambda, AccessProb: p, Size: size}
		probSum += p
	}
	for i := range elems {
		elems[i].AccessProb /= probSum
	}
	return elems
}

// TestEngineParityWithReference proves the engine computes the same
// schedules as the frozen pre-engine solver. Both sides run the
// bisection to full multiplier resolution (comparing two solvers is
// only well-conditioned when both resolve μ equally tightly — see
// referenceWaterFill), after which Freqs, Perceived and BandwidthUsed
// must agree to ~1e-12 on the scales that enter the computation, and
// the engine must never exceed the budget.
func TestEngineParityWithReference(t *testing.T) {
	policies := []freshness.Policy{freshness.FixedOrder{}, freshness.PoissonOrder{}}
	for _, pol := range policies {
		for _, pareto := range []bool{false, true} {
			for _, n := range []int{3, 17, 128, 1024} {
				for seed := int64(1); seed <= 4; seed++ {
					name := fmt.Sprintf("%s/pareto=%v/n=%d/seed=%d", pol.Name(), pareto, n, seed)
					t.Run(name, func(t *testing.T) {
						elems := parityWorkload(seed, n, pareto)
						var totalSize float64
						for _, e := range elems {
							totalSize += e.Size
						}
						r := stats.NewRNG(seed * 977)
						bandwidth := totalSize * (0.1 + 1.4*r.Float64())
						p := Problem{Elements: elems, Bandwidth: bandwidth, Policy: pol}

						ref, err := referenceWaterFill(p, true)
						if err != nil {
							t.Fatal(err)
						}
						got, err := WaterFill(p)
						if err != nil {
							t.Fatal(err)
						}

						if got.BandwidthUsed > bandwidth*(1+1e-12) {
							t.Fatalf("budget exceeded: used %v of %v", got.BandwidthUsed, bandwidth)
						}
						if d := math.Abs(got.Perceived - ref.Perceived); d > 1e-12*(1+ref.Perceived) {
							t.Errorf("Perceived %v vs reference %v (Δ=%g)", got.Perceived, ref.Perceived, d)
						}
						if d := math.Abs(got.BandwidthUsed - ref.BandwidthUsed); d > 1e-12*(1+bandwidth) {
							t.Errorf("BandwidthUsed %v vs reference %v (Δ=%g)", got.BandwidthUsed, ref.BandwidthUsed, d)
						}
						for i := range got.Freqs {
							// The per-element frequency scale is B/sᵢ (the
							// frequency the whole budget would buy); 1e-12
							// of that, plus 1e-12 relative, absorbs the
							// conditioning of elements sitting near the
							// final multiplier's funding cutoff.
							tol := 1e-12 * (1 + got.Freqs[i] + bandwidth/elems[i].Size)
							if d := math.Abs(got.Freqs[i] - ref.Freqs[i]); d > tol {
								t.Errorf("element %d: freq %v vs reference %v (Δ=%g, tol=%g)",
									i, got.Freqs[i], ref.Freqs[i], d, tol)
							}
						}
					})
				}
			}
		}
	}
}

// TestEngineParityHistoricalReference compares against the reference
// with its historical early exit enabled: the coarse metrics must
// still agree (schedules from a loosely- and a tightly-resolved
// multiplier differ per element, but not in objective value or budget
// terms beyond the early exit's own 1e-10 tolerance).
func TestEngineParityHistoricalReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		elems := parityWorkload(seed, 257, seed%2 == 0)
		var totalSize float64
		for _, e := range elems {
			totalSize += e.Size
		}
		bandwidth := totalSize * 0.6
		p := Problem{Elements: elems, Bandwidth: bandwidth}
		ref, err := ReferenceWaterFill(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := WaterFill(p)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got.Perceived - ref.Perceived); d > 1e-9*(1+ref.Perceived) {
			t.Errorf("seed %d: Perceived %v vs historical reference %v", seed, got.Perceived, ref.Perceived)
		}
		if got.BandwidthUsed > bandwidth*(1+1e-12) {
			t.Errorf("seed %d: budget exceeded: %v of %v", seed, got.BandwidthUsed, bandwidth)
		}
	}
}
