package workload

import (
	"sort"

	"freshen/internal/freshness"
	"freshen/internal/stats"
)

// Generate builds the mirror a spec describes. Elements are indexed in
// access-rank order: element 0 carries the highest access probability.
// Change rates are gamma-distributed and related to access rank by
// ChangeAlignment; sizes, when Pareto, are related to change-rate rank
// by SizeAlignment. Generation is deterministic in Spec.Seed.
func Generate(s Spec) ([]freshness.Element, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRNG(s.Seed)

	zipf, err := stats.NewZipf(s.NumObjects, s.Theta)
	if err != nil {
		return nil, err
	}
	probs := zipf.Probs()

	gamma, err := stats.NewGammaMeanStdDev(s.MeanChangeRate(), s.UpdateStdDev)
	if err != nil {
		return nil, err
	}
	lambdas := gamma.SampleN(r.Split(), s.NumObjects)
	alignTo(lambdas, s.ChangeAlignment, r.Split())

	sizes := make([]float64, s.NumObjects)
	for i := range sizes {
		sizes[i] = 1
	}
	if s.Sizes == SizePareto {
		pareto, err := stats.NewParetoMean(s.ParetoShape, 1.0)
		if err != nil {
			return nil, err
		}
		sizes = pareto.SampleN(r.Split(), s.NumObjects)
		// Sizes align to change-rate rank, not access rank: order the
		// sizes, then hand them out walking the elements from the most
		// to the least volatile (or the opposite, or at random).
		alignToKey(sizes, lambdas, s.SizeAlignment, r.Split())
	}

	elems := make([]freshness.Element, s.NumObjects)
	for i := range elems {
		elems[i] = freshness.Element{
			ID:         i,
			Lambda:     lambdas[i],
			AccessProb: probs[i],
			Size:       sizes[i],
		}
	}
	return elems, nil
}

// alignTo orders vals in place relative to the access rank implied by
// index order (index 0 = hottest): Aligned sorts descending, Reverse
// ascending, Shuffled applies a random permutation.
func alignTo(vals []float64, a Alignment, r *stats.RNG) {
	switch a {
	case Aligned:
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	case Reverse:
		sort.Float64s(vals)
	case Shuffled:
		r.Shuffle(len(vals), func(i, j int) {
			vals[i], vals[j] = vals[j], vals[i]
		})
	}
}

// alignToKey orders vals relative to the rank order of key: under
// Aligned the largest value lands on the index holding the largest
// key, under Reverse on the smallest key, under Shuffled at random.
func alignToKey(vals, key []float64, a Alignment, r *stats.RNG) {
	if a == Shuffled {
		r.Shuffle(len(vals), func(i, j int) {
			vals[i], vals[j] = vals[j], vals[i]
		})
		return
	}
	// Rank the key indices: order[0] is the index of the largest key.
	order := make([]int, len(key))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return key[order[i]] > key[order[j]] })

	sorted := append([]float64(nil), vals...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted))) // descending
	if a == Reverse {
		for i, j := 0, len(sorted)-1; i < j; i, j = i+1, j-1 {
			sorted[i], sorted[j] = sorted[j], sorted[i]
		}
	}
	for rank, idx := range order {
		vals[idx] = sorted[rank]
	}
}
