package workload

import (
	"fmt"
	"math"
)

// Alignment relates two per-element attribute orderings (the paper's
// Figure 2): under Aligned the hottest element is also the most
// volatile (or largest); under Reverse the orderings oppose; under
// Shuffled the attribute is randomly permuted so no relationship
// exists.
type Alignment int

// Alignment values.
const (
	Aligned Alignment = iota
	Reverse
	Shuffled
)

// String implements fmt.Stringer.
func (a Alignment) String() string {
	switch a {
	case Aligned:
		return "aligned"
	case Reverse:
		return "reverse"
	case Shuffled:
		return "shuffled"
	default:
		return fmt.Sprintf("Alignment(%d)", int(a))
	}
}

// ParseAlignment converts an experiment-flag string to an Alignment.
func ParseAlignment(s string) (Alignment, error) {
	switch s {
	case "aligned":
		return Aligned, nil
	case "reverse":
		return Reverse, nil
	case "shuffled", "shuffled-change", "shuffle":
		return Shuffled, nil
	default:
		return 0, fmt.Errorf("workload: unknown alignment %q", s)
	}
}

// SizeDist selects the object-size distribution.
type SizeDist int

// SizeDist values.
const (
	// SizeUniform gives every object size 1.0, the paper's Section 2-4
	// assumption.
	SizeUniform SizeDist = iota
	// SizePareto draws sizes from a Pareto distribution (Section 5);
	// the paper uses shape 1.1 with mean 1.0.
	SizePareto
)

// String implements fmt.Stringer.
func (s SizeDist) String() string {
	switch s {
	case SizeUniform:
		return "uniform"
	case SizePareto:
		return "pareto"
	default:
		return fmt.Sprintf("SizeDist(%d)", int(s))
	}
}

// Spec describes a synthetic mirror in the paper's vocabulary. The
// zero value is not valid; start from TableTwo or TableThree or fill
// every field.
type Spec struct {
	// NumObjects is the number of elements in the mirror (Table 2: 500;
	// Table 3: 500 000).
	NumObjects int
	// UpdatesPerPeriod is the expected total number of source updates
	// per synchronization period; the per-element gamma mean is
	// UpdatesPerPeriod / NumObjects (Table 2: 1000 → mean 2).
	UpdatesPerPeriod float64
	// SyncsPerPeriod is the refresh bandwidth B (Table 2: 250).
	SyncsPerPeriod float64
	// Theta is the Zipf skew of the access distribution, 0 (uniform)
	// to 1.6 in the paper's sweeps.
	Theta float64
	// UpdateStdDev is the standard deviation of the per-element gamma
	// change-rate distribution (Table 2: 1.0; Table 3: 2.0).
	UpdateStdDev float64
	// ChangeAlignment relates change rates to access rank.
	ChangeAlignment Alignment
	// Sizes selects the object-size distribution.
	Sizes SizeDist
	// ParetoShape is the Pareto shape when Sizes == SizePareto
	// (paper: 1.1). The scale is derived so the mean size is 1.
	ParetoShape float64
	// SizeAlignment relates sizes to *change-rate* rank when sizes are
	// variable (Figure 10 aligns them; Figure 11 reverses them).
	SizeAlignment Alignment
	// Seed makes generation deterministic.
	Seed int64
}

// TableTwo returns the paper's Table 2 setup for the ideal-case
// experiments: 500 objects, 1000 updates and 250 syncs per period,
// UpdateStdDev 1.0. Theta and ChangeAlignment vary per experiment and
// default to 0 / Shuffled.
func TableTwo() Spec {
	return Spec{
		NumObjects:       500,
		UpdatesPerPeriod: 1000,
		SyncsPerPeriod:   250,
		Theta:            0,
		UpdateStdDev:     1.0,
		ChangeAlignment:  Shuffled,
		Sizes:            SizeUniform,
		Seed:             1,
	}
}

// TableThree returns the paper's Table 3 setup for the large
// partitioning experiments: 500 000 objects, 10⁶ updates and 250 000
// syncs per period, Theta 1.0, UpdateStdDev 2.0.
func TableThree() Spec {
	return Spec{
		NumObjects:       500000,
		UpdatesPerPeriod: 1000000,
		SyncsPerPeriod:   250000,
		Theta:            1.0,
		UpdateStdDev:     2.0,
		ChangeAlignment:  Shuffled,
		Sizes:            SizeUniform,
		Seed:             1,
	}
}

// Validate checks the spec is generatable.
func (s Spec) Validate() error {
	if s.NumObjects <= 0 {
		return fmt.Errorf("workload: NumObjects must be positive, got %d", s.NumObjects)
	}
	if !(s.UpdatesPerPeriod > 0) || math.IsInf(s.UpdatesPerPeriod, 0) {
		return fmt.Errorf("workload: UpdatesPerPeriod must be positive and finite, got %v", s.UpdatesPerPeriod)
	}
	if s.SyncsPerPeriod < 0 || math.IsNaN(s.SyncsPerPeriod) || math.IsInf(s.SyncsPerPeriod, 0) {
		return fmt.Errorf("workload: SyncsPerPeriod must be non-negative and finite, got %v", s.SyncsPerPeriod)
	}
	if s.Theta < 0 || math.IsNaN(s.Theta) || math.IsInf(s.Theta, 0) {
		return fmt.Errorf("workload: Theta must be non-negative and finite, got %v", s.Theta)
	}
	if !(s.UpdateStdDev > 0) || math.IsInf(s.UpdateStdDev, 0) {
		return fmt.Errorf("workload: UpdateStdDev must be positive and finite, got %v", s.UpdateStdDev)
	}
	if s.Sizes == SizePareto && s.ParetoShape <= 1 {
		return fmt.Errorf("workload: ParetoShape must exceed 1 for a unit mean, got %v", s.ParetoShape)
	}
	return nil
}

// MeanChangeRate returns the per-element gamma mean,
// UpdatesPerPeriod / NumObjects.
func (s Spec) MeanChangeRate() float64 {
	return s.UpdatesPerPeriod / float64(s.NumObjects)
}
