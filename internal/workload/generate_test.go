package workload

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/stats"
)

func TestGenerateTableTwoShape(t *testing.T) {
	spec := TableTwo()
	spec.Theta = 1.0
	elems, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 500 {
		t.Fatalf("got %d elements, want 500", len(elems))
	}
	if err := freshness.ValidateElements(elems); err != nil {
		t.Fatal(err)
	}
	// Access probabilities sum to 1 and are rank-ordered.
	var psum float64
	for i, e := range elems {
		psum += e.AccessProb
		if i > 0 && e.AccessProb > elems[i-1].AccessProb {
			t.Fatalf("access probs not rank-ordered at %d", i)
		}
		if e.Size != 1 {
			t.Fatalf("uniform sizes expected, element %d has %v", i, e.Size)
		}
	}
	if math.Abs(psum-1) > 1e-9 {
		t.Errorf("access probabilities sum to %v", psum)
	}
	// Mean change rate near UpdatesPerPeriod / NumObjects = 2.
	var lsum float64
	for _, e := range elems {
		lsum += e.Lambda
	}
	if mean := lsum / 500; math.Abs(mean-2) > 0.15 {
		t.Errorf("mean change rate %v, want about 2", mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := TableTwo()
	spec.Theta = 0.8
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at element %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	spec.Seed = 2
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Lambda != c[i].Lambda {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical change rates")
	}
}

func TestGenerateAlignments(t *testing.T) {
	base := TableTwo()
	base.Theta = 1.2

	base.ChangeAlignment = Aligned
	aligned, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(aligned); i++ {
		if aligned[i].Lambda > aligned[i-1].Lambda {
			t.Fatalf("aligned: lambda increased at %d", i)
		}
	}

	base.ChangeAlignment = Reverse
	reverse, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reverse); i++ {
		if reverse[i].Lambda < reverse[i-1].Lambda {
			t.Fatalf("reverse: lambda decreased at %d", i)
		}
	}

	base.ChangeAlignment = Shuffled
	shuffled, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	sortedRuns := 0
	for i := 1; i < len(shuffled); i++ {
		if shuffled[i].Lambda <= shuffled[i-1].Lambda {
			sortedRuns++
		}
	}
	// A shuffled sequence of 500 values must be far from sorted.
	if sortedRuns > 350 || sortedRuns < 150 {
		t.Errorf("shuffled lambdas look ordered: %d/499 descending steps", sortedRuns)
	}
}

func TestGenerateParetoSizes(t *testing.T) {
	spec := TableTwo()
	spec.Sizes = SizePareto
	spec.ParetoShape = 1.1
	spec.SizeAlignment = Aligned
	spec.ChangeAlignment = Aligned
	elems, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Sizes aligned to change rate: since change rates are themselves
	// aligned (descending), sizes must descend too.
	for i := 1; i < len(elems); i++ {
		if elems[i].Size > elems[i-1].Size {
			t.Fatalf("size-aligned workload: size increased at %d", i)
		}
	}
	var minSize float64 = math.Inf(1)
	for _, e := range elems {
		if e.Size < minSize {
			minSize = e.Size
		}
	}
	// Pareto(1.1, mean 1) has scale 1/11 ≈ 0.0909; no size may fall
	// below the scale.
	if minSize < 1.0/11.0-1e-12 {
		t.Errorf("min size %v below the Pareto scale", minSize)
	}
}

func TestGenerateSizeReverseAlignment(t *testing.T) {
	spec := TableTwo()
	spec.Sizes = SizePareto
	spec.ParetoShape = 1.1
	spec.SizeAlignment = Reverse
	spec.ChangeAlignment = Shuffled
	elems, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse size alignment: the most volatile element has the
	// smallest size and the least volatile the largest.
	var hotIdx, coldIdx int
	for i, e := range elems {
		if e.Lambda > elems[hotIdx].Lambda {
			hotIdx = i
		}
		if e.Lambda < elems[coldIdx].Lambda {
			coldIdx = i
		}
	}
	var minSize, maxSize = math.Inf(1), math.Inf(-1)
	for _, e := range elems {
		minSize = math.Min(minSize, e.Size)
		maxSize = math.Max(maxSize, e.Size)
	}
	if elems[hotIdx].Size != minSize {
		t.Errorf("most volatile element has size %v, want the minimum %v", elems[hotIdx].Size, minSize)
	}
	if elems[coldIdx].Size != maxSize {
		t.Errorf("least volatile element has size %v, want the maximum %v", elems[coldIdx].Size, maxSize)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := TableTwo()
	bad.NumObjects = 0
	if _, err := Generate(bad); err == nil {
		t.Error("NumObjects 0 must fail")
	}
	bad = TableTwo()
	bad.UpdateStdDev = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero UpdateStdDev must fail")
	}
	bad = TableTwo()
	bad.Theta = -1
	if _, err := Generate(bad); err == nil {
		t.Error("negative Theta must fail")
	}
	bad = TableTwo()
	bad.Sizes = SizePareto
	bad.ParetoShape = 1.0
	if _, err := Generate(bad); err == nil {
		t.Error("Pareto shape <= 1 must fail")
	}
}

func TestParseAlignment(t *testing.T) {
	for _, s := range []string{"aligned", "reverse", "shuffled", "shuffled-change", "shuffle"} {
		if _, err := ParseAlignment(s); err != nil {
			t.Errorf("ParseAlignment(%q) failed: %v", s, err)
		}
	}
	if _, err := ParseAlignment("bogus"); err == nil {
		t.Error("bogus alignment must fail")
	}
}

func TestAlignToKey(t *testing.T) {
	key := []float64{3, 1, 2}
	vals := []float64{10, 20, 30}
	alignToKey(vals, key, Aligned, stats.NewRNG(1))
	// Largest value 30 lands on the largest key (index 0).
	if vals[0] != 30 || vals[2] != 20 || vals[1] != 10 {
		t.Errorf("aligned alignToKey = %v, want [30 10 20]", vals)
	}
	vals = []float64{10, 20, 30}
	alignToKey(vals, key, Reverse, stats.NewRNG(1))
	if vals[0] != 10 || vals[1] != 30 || vals[2] != 20 {
		t.Errorf("reverse alignToKey = %v, want [10 30 20]", vals)
	}
}

func TestSpecStringers(t *testing.T) {
	if Aligned.String() != "aligned" || Reverse.String() != "reverse" || Shuffled.String() != "shuffled" {
		t.Error("alignment stringer broken")
	}
	if Alignment(99).String() == "" {
		t.Error("unknown alignment must still print")
	}
	if SizeUniform.String() != "uniform" || SizePareto.String() != "pareto" {
		t.Error("size dist stringer broken")
	}
	if SizeDist(42).String() == "" {
		t.Error("unknown size dist must still print")
	}
}

func TestTableThreePreset(t *testing.T) {
	s := TableThree()
	if s.NumObjects != 500000 || s.UpdatesPerPeriod != 1000000 || s.SyncsPerPeriod != 250000 {
		t.Errorf("TableThree preset wrong: %+v", s)
	}
	if s.Theta != 1.0 || s.UpdateStdDev != 2.0 {
		t.Errorf("TableThree parameters wrong: %+v", s)
	}
	if got := s.MeanChangeRate(); got != 2 {
		t.Errorf("MeanChangeRate = %v, want 2", got)
	}
}
