// Package workload generates the synthetic mirrors the paper's
// experiments run on: per-element change rates drawn from a gamma
// distribution, access probabilities from a Zipf distribution, object
// sizes fixed or Pareto-distributed, and the three alignments of
// change and access frequency the paper studies (aligned, reverse and
// shuffled-change). The Table 2 and Table 3 parameter sets are encoded
// as presets.
package workload
