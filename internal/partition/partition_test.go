package partition

import (
	"math"
	"testing"
	"testing/quick"

	"freshen/internal/freshness"
	"freshen/internal/workload"
)

func testElements(t *testing.T, n int, theta float64, seed int64) []freshness.Element {
	t.Helper()
	spec := workload.TableTwo()
	spec.NumObjects = n
	spec.UpdatesPerPeriod = 2 * float64(n)
	spec.SyncsPerPeriod = float64(n) / 2
	spec.Theta = theta
	spec.Seed = seed
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return elems
}

func TestBuildEvenSplit(t *testing.T) {
	elems := testElements(t, 100, 1.0, 1)
	p, err := Build(elems, KeyP, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(100); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 7 {
		t.Fatalf("got %d groups, want 7", len(p.Groups))
	}
	// 100 = 7*14 + 2: two groups of 15, five of 14.
	var big, small int
	for _, g := range p.Groups {
		switch len(g) {
		case 15:
			big++
		case 14:
			small++
		default:
			t.Fatalf("group size %d, want 14 or 15", len(g))
		}
	}
	if big != 2 || small != 5 {
		t.Errorf("got %d groups of 15 and %d of 14, want 2 and 5", big, small)
	}
}

func TestBuildSortedRuns(t *testing.T) {
	elems := testElements(t, 200, 1.2, 2)
	for _, key := range Keys() {
		p, err := Build(elems, key, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Contiguous runs of the sort order: every value in group g
		// must be <= every value in group g+1.
		prevMax := math.Inf(-1)
		for gi, g := range p.Groups {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, idx := range g {
				v := key.Value(elems[idx], nil)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if lo < prevMax-1e-15 {
				t.Errorf("key %v: group %d overlaps previous (lo %v < prev max %v)", key, gi, lo, prevMax)
			}
			prevMax = hi
		}
	}
}

func TestBuildMorePartitionsThanElements(t *testing.T) {
	elems := testElements(t, 5, 0.5, 3)
	p, err := Build(elems, KeyPF, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumGroups(); got != 5 {
		t.Errorf("NumGroups = %d, want 5 (clamped to element count)", got)
	}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
}

func TestBuildValidation(t *testing.T) {
	elems := testElements(t, 10, 0.5, 4)
	if _, err := Build(elems, KeyP, 0, nil); err == nil {
		t.Error("zero partitions must fail")
	}
	if _, err := Build(nil, KeyP, 3, nil); err == nil {
		t.Error("empty mirror must fail")
	}
}

func TestPartitioningValidateCatchesCorruption(t *testing.T) {
	bad := Partitioning{Groups: [][]int{{0, 1}, {1}}}
	if err := bad.Validate(3); err == nil {
		t.Error("duplicate element must fail validation")
	}
	bad = Partitioning{Groups: [][]int{{0, 5}}}
	if err := bad.Validate(3); err == nil {
		t.Error("out-of-range element must fail validation")
	}
	bad = Partitioning{Groups: [][]int{{0}}}
	if err := bad.Validate(3); err == nil {
		t.Error("missing elements must fail validation")
	}
}

func TestRepresentativesMeans(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 1, AccessProb: 0.1, Size: 1},
		{ID: 1, Lambda: 3, AccessProb: 0.3, Size: 2},
		{ID: 2, Lambda: 5, AccessProb: 0.6, Size: 3},
	}
	p := Partitioning{Groups: [][]int{{0, 1}, {2}, {}}}
	reps := Representatives(elems, p)
	if len(reps) != 2 {
		t.Fatalf("got %d representatives, want 2 (empty group skipped)", len(reps))
	}
	if reps[0].Count != 2 || math.Abs(reps[0].Lambda-2) > 1e-12 ||
		math.Abs(reps[0].AccessProb-0.2) > 1e-12 || math.Abs(reps[0].Size-1.5) > 1e-12 {
		t.Errorf("rep 0 = %+v, want means λ=2 p=0.2 s=1.5 count=2", reps[0])
	}
	if reps[1].Group != 1 || reps[1].Count != 1 || reps[1].Lambda != 5 {
		t.Errorf("rep 1 = %+v", reps[1])
	}
}

func TestKeyValues(t *testing.T) {
	e := freshness.Element{Lambda: 2, AccessProb: 0.4, Size: 4}
	fo := freshness.FixedOrder{}
	if got := KeyP.Value(e, nil); got != 0.4 {
		t.Errorf("KeyP = %v", got)
	}
	if got := KeyLambda.Value(e, nil); got != 2 {
		t.Errorf("KeyLambda = %v", got)
	}
	if got := KeyPOverLambda.Value(e, nil); got != 0.2 {
		t.Errorf("KeyPOverLambda = %v", got)
	}
	if got, want := KeyPF.Value(e, nil), 0.4*fo.Freshness(1, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("KeyPF = %v, want %v", got, want)
	}
	if got, want := KeyPFOverSize.Value(e, nil), 0.4*fo.Freshness(0.25, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("KeyPFOverSize = %v, want %v", got, want)
	}
	if got := KeySize.Value(e, nil); got != 4 {
		t.Errorf("KeySize = %v", got)
	}
	// λ = 0 sorts last under P/λ.
	if got := KeyPOverLambda.Value(freshness.Element{Lambda: 0, AccessProb: 0.1, Size: 1}, nil); !math.IsInf(got, 1) {
		t.Errorf("KeyPOverLambda at λ=0 = %v, want +Inf", got)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, k := range Keys() {
		got, err := ParseKey(k.String())
		if err != nil {
			t.Errorf("ParseKey(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKey(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKey("nope"); err == nil {
		t.Error("bogus key must fail")
	}
}

func TestBuildPropertyIsPartition(t *testing.T) {
	elems := testElements(t, 64, 0.9, 5)
	f := func(rawK uint8, rawKey uint8) bool {
		k := int(rawK%100) + 1
		key := Keys()[int(rawKey)%len(Keys())]
		p, err := Build(elems, key, k, nil)
		if err != nil {
			return false
		}
		return p.Validate(len(elems)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
