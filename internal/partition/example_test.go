package partition_test

import (
	"fmt"

	"freshen/internal/partition"
	"freshen/internal/workload"
)

// ExampleSolve runs the paper's PF-partitioning heuristic on a Table 2
// workload and reports how close 25 partitions come to the exact
// optimum of 0.6304.
func ExampleSolve() {
	spec := workload.TableTwo()
	spec.Theta = 1.0
	elems, err := workload.Generate(spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := partition.Solve(elems, spec.SyncsPerPeriod, partition.Options{
		Key:           partition.KeyPF,
		NumPartitions: 25,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("perceived freshness with 25 partitions: %.4f\n", res.Solution.Perceived)
	fmt.Printf("groups: %d, bandwidth used: %.0f\n",
		res.Partitioning.NumGroups(), res.Solution.BandwidthUsed)
	// Output:
	// perceived freshness with 25 partitions: 0.6043
	// groups: 25, bandwidth used: 250
}
