package partition

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/solver"
)

func TestSolveRespectsBandwidth(t *testing.T) {
	elems := testElements(t, 300, 1.0, 7)
	const bandwidth = 150
	for _, key := range Keys() {
		for _, k := range []int{1, 5, 30, 300} {
			res, err := Solve(elems, bandwidth, Options{Key: key, NumPartitions: k})
			if err != nil {
				t.Fatalf("key %v k=%d: %v", key, k, err)
			}
			if res.Solution.BandwidthUsed > bandwidth*(1+1e-6) {
				t.Errorf("key %v k=%d: bandwidth %v over budget %v",
					key, k, res.Solution.BandwidthUsed, bandwidth)
			}
			if res.Solution.Perceived < 0 || res.Solution.Perceived > 1 {
				t.Errorf("key %v k=%d: PF %v out of [0,1]", key, k, res.Solution.Perceived)
			}
		}
	}
}

func TestSolveWithNPartitionsMatchesExact(t *testing.T) {
	// With one partition per element the heuristic degenerates to the
	// exact solution.
	elems := testElements(t, 120, 1.1, 9)
	const bandwidth = 60
	exact, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: bandwidth})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(elems, bandwidth, Options{Key: KeyPF, NumPartitions: 120})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Solution.Perceived-exact.Perceived) > 1e-6 {
		t.Errorf("N-partition heuristic PF %v != exact %v",
			res.Solution.Perceived, exact.Perceived)
	}
}

func TestSolveQualityImprovesWithPartitions(t *testing.T) {
	// More partitions must (weakly, up to noise) approach the exact
	// optimum: the K=N value must beat the K=1 value, and K=50 must be
	// at least as good as K=2 within a small tolerance.
	elems := testElements(t, 400, 1.0, 11)
	const bandwidth = 200
	pf := func(k int) float64 {
		res, err := Solve(elems, bandwidth, Options{Key: KeyPF, NumPartitions: k})
		if err != nil {
			t.Fatal(err)
		}
		return res.Solution.Perceived
	}
	pf1, pf2, pf50, pfN := pf(1), pf(2), pf(50), pf(400)
	if pfN < pf1 {
		t.Errorf("K=N PF %v below K=1 PF %v", pfN, pf1)
	}
	if pf50 < pf2-0.01 {
		t.Errorf("K=50 PF %v materially below K=2 PF %v", pf50, pf2)
	}
	if pfN < pf50-1e-9 {
		t.Errorf("K=N PF %v below K=50 PF %v", pfN, pf50)
	}
}

func TestPFPartitioningBeatsLambdaUnderSkew(t *testing.T) {
	// The paper's Figure 6: under shuffled-change and strong skew,
	// λ-Partitioning cannot match PF-Partitioning at modest K.
	elems := testElements(t, 500, 1.4, 13)
	const bandwidth, k = 250, 25
	pfRes, err := Solve(elems, bandwidth, Options{Key: KeyPF, NumPartitions: k})
	if err != nil {
		t.Fatal(err)
	}
	lamRes, err := Solve(elems, bandwidth, Options{Key: KeyLambda, NumPartitions: k})
	if err != nil {
		t.Fatal(err)
	}
	if pfRes.Solution.Perceived <= lamRes.Solution.Perceived {
		t.Errorf("PF-partitioning %v not above λ-partitioning %v at theta=1.4",
			pfRes.Solution.Perceived, lamRes.Solution.Perceived)
	}
}

func TestTransformedProblemScaling(t *testing.T) {
	reps := []Representative{
		{Group: 0, Count: 4, Lambda: 2, AccessProb: 0.1, Size: 1.5},
		{Group: 1, Count: 1, Lambda: 1, AccessProb: 0.6, Size: 1},
	}
	tp := TransformedProblem(reps, 10, nil)
	if len(tp.Elements) != 2 {
		t.Fatalf("got %d transformed elements", len(tp.Elements))
	}
	if math.Abs(tp.Elements[0].AccessProb-0.4) > 1e-12 {
		t.Errorf("weight = %v, want count*mean = 0.4", tp.Elements[0].AccessProb)
	}
	if math.Abs(tp.Elements[0].Size-6) > 1e-12 {
		t.Errorf("size = %v, want count*mean = 6", tp.Elements[0].Size)
	}
	if tp.Bandwidth != 10 {
		t.Errorf("bandwidth = %v", tp.Bandwidth)
	}
}

func TestFFAvsFBAUnitSizesIdentical(t *testing.T) {
	elems := testElements(t, 100, 1.0, 17)
	const bandwidth = 50
	ffa, err := Solve(elems, bandwidth, Options{Key: KeyPF, NumPartitions: 10, Allocation: FFA})
	if err != nil {
		t.Fatal(err)
	}
	fba, err := Solve(elems, bandwidth, Options{Key: KeyPF, NumPartitions: 10, Allocation: FBA})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ffa.Solution.Freqs {
		if math.Abs(ffa.Solution.Freqs[i]-fba.Solution.Freqs[i]) > 1e-9 {
			t.Fatalf("unit sizes: FFA and FBA differ at element %d", i)
		}
	}
}

func TestFBAEqualBandwidthPerMember(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 2, AccessProb: 0.25, Size: 4},
		{ID: 1, Lambda: 2, AccessProb: 0.25, Size: 1},
		{ID: 2, Lambda: 2, AccessProb: 0.25, Size: 0.5},
		{ID: 3, Lambda: 2, AccessProb: 0.25, Size: 2},
	}
	res, err := Solve(elems, 6, Options{Key: KeyPF, NumPartitions: 1, Allocation: FBA})
	if err != nil {
		t.Fatal(err)
	}
	// Every member must consume the same bandwidth sᵢ·fᵢ.
	want := elems[0].Size * res.Solution.Freqs[0]
	for i, e := range elems {
		got := e.Size * res.Solution.Freqs[i]
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("member %d bandwidth %v, want %v", i, got, want)
		}
	}
	// The smallest object must refresh most often.
	if res.Solution.Freqs[2] <= res.Solution.Freqs[0] {
		t.Errorf("small object freq %v not above large object freq %v",
			res.Solution.Freqs[2], res.Solution.Freqs[0])
	}
	if math.Abs(res.Solution.BandwidthUsed-6) > 1e-6 {
		t.Errorf("bandwidth used %v, want 6", res.Solution.BandwidthUsed)
	}
}

func TestFBABeatsFFAWithVariableSizes(t *testing.T) {
	// Section 5.3: with variable sizes (reverse size/λ alignment), FBA
	// outperforms FFA at modest partition counts.
	elems := testElementsSized(t, 400, 19)
	const bandwidth, k = 200, 20
	ffa, err := Solve(elems, bandwidth, Options{Key: KeyPFOverSize, NumPartitions: k, Allocation: FFA})
	if err != nil {
		t.Fatal(err)
	}
	fba, err := Solve(elems, bandwidth, Options{Key: KeyPFOverSize, NumPartitions: k, Allocation: FBA})
	if err != nil {
		t.Fatal(err)
	}
	if fba.Solution.Perceived <= ffa.Solution.Perceived {
		t.Errorf("FBA %v not above FFA %v", fba.Solution.Perceived, ffa.Solution.Perceived)
	}
	if ffa.Solution.BandwidthUsed > bandwidth*(1+1e-6) {
		t.Errorf("FFA over budget: %v", ffa.Solution.BandwidthUsed)
	}
	if fba.Solution.BandwidthUsed > bandwidth*(1+1e-6) {
		t.Errorf("FBA over budget: %v", fba.Solution.BandwidthUsed)
	}
}

func TestSolvePartitionedRejectsCorruptGrouping(t *testing.T) {
	elems := testElements(t, 10, 1.0, 23)
	bad := Partitioning{Groups: [][]int{{0, 1, 2}}}
	if _, err := SolvePartitioned(elems, 5, bad, Options{}); err == nil {
		t.Error("incomplete grouping must fail")
	}
}

func TestAllocationString(t *testing.T) {
	if FFA.String() != "FFA" || FBA.String() != "FBA" {
		t.Error("allocation stringer broken")
	}
	if Allocation(9).String() == "" {
		t.Error("unknown allocation must still print")
	}
}
