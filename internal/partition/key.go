package partition

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// ReferenceFreq is the fixed synchronization frequency at which the PF
// sort keys evaluate perceived freshness. The paper's footnote 3 notes
// the exact value is immaterial and uses 1.0.
const ReferenceFreq = 1.0

// Key is a partitioning sort criterion.
type Key int

// The paper's partitioning techniques.
const (
	// KeyP sorts by access probability (P-Partitioning).
	KeyP Key = iota
	// KeyLambda sorts by change frequency (λ-Partitioning).
	KeyLambda
	// KeyPOverLambda sorts by p/λ (P/λ-Partitioning): bandwidth should
	// rise with p and fall with λ, so the ratio groups elements with
	// similar claims on bandwidth.
	KeyPOverLambda
	// KeyPF sorts by the element's perceived freshness at the
	// reference frequency, p·F(f₀, λ) (PF-Partitioning) — the paper's
	// winner.
	KeyPF
	// KeyPFOverSize is the Section 5 size-aware PF key: the reference
	// bandwidth buys a big object fewer refreshes, so the key is
	// p·F(f₀/s, λ) (PF/s-Partitioning).
	KeyPFOverSize
	// KeySize sorts by object size (Size-Partitioning), the Section 5
	// baseline that, like P- and λ-Partitioning, captures only one
	// attribute.
	KeySize
)

// String implements fmt.Stringer using the paper's names.
func (k Key) String() string {
	switch k {
	case KeyP:
		return "P"
	case KeyLambda:
		return "LAMBDA"
	case KeyPOverLambda:
		return "P_OVER_LAMBDA"
	case KeyPF:
		return "PF"
	case KeyPFOverSize:
		return "PF_OVER_SIZE"
	case KeySize:
		return "SIZE"
	default:
		return fmt.Sprintf("Key(%d)", int(k))
	}
}

// ParseKey converts an experiment-flag string to a Key.
func ParseKey(s string) (Key, error) {
	switch s {
	case "P", "p":
		return KeyP, nil
	case "LAMBDA", "lambda":
		return KeyLambda, nil
	case "P_OVER_LAMBDA", "p-over-lambda", "p/lambda":
		return KeyPOverLambda, nil
	case "PF", "pf":
		return KeyPF, nil
	case "PF_OVER_SIZE", "pf-over-size", "pf/s":
		return KeyPFOverSize, nil
	case "SIZE", "size":
		return KeySize, nil
	default:
		return 0, fmt.Errorf("partition: unknown key %q", s)
	}
}

// Keys lists every sort key, in the paper's comparison order.
func Keys() []Key {
	return []Key{KeyPF, KeyP, KeyLambda, KeyPOverLambda, KeyPFOverSize, KeySize}
}

// Value computes the key's sort value for one element under the given
// policy (nil means Fixed-Order).
func (k Key) Value(e freshness.Element, pol freshness.Policy) float64 {
	if pol == nil {
		pol = freshness.FixedOrder{}
	}
	switch k {
	case KeyP:
		return e.AccessProb
	case KeyLambda:
		return e.Lambda
	case KeyPOverLambda:
		if e.Lambda == 0 {
			return math.Inf(1)
		}
		return e.AccessProb / e.Lambda
	case KeyPF:
		return e.AccessProb * pol.Freshness(ReferenceFreq, e.Lambda)
	case KeyPFOverSize:
		return e.AccessProb * pol.Freshness(ReferenceFreq/e.Size, e.Lambda)
	case KeySize:
		return e.Size
	default:
		return 0
	}
}
