package partition

import (
	"fmt"
	"sort"

	"freshen/internal/freshness"
)

// Partitioning is a disjoint grouping of element indices. Groups may
// differ in size by at most one when produced by Build; k-means
// refinement may unbalance them further (and may leave groups empty).
type Partitioning struct {
	// Key records the sort criterion the grouping started from.
	Key Key
	// Groups holds element indices; every index in [0, N) appears in
	// exactly one group.
	Groups [][]int
}

// Build sorts the elements by the key and assigns successive runs to k
// partitions, as evenly as possible (the paper's ⌈N/k⌉ scheme: when k
// does not divide N some partitions hold one element fewer).
func Build(elems []freshness.Element, key Key, k int, pol freshness.Policy) (Partitioning, error) {
	if err := freshness.ValidateElements(elems); err != nil {
		return Partitioning{}, err
	}
	n := len(elems)
	if k <= 0 {
		return Partitioning{}, fmt.Errorf("partition: need at least one partition, got %d", k)
	}
	if k > n {
		k = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	vals := make([]float64, n)
	for i, e := range elems {
		vals[i] = key.Value(e, pol)
	}
	sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

	groups := make([][]int, k)
	base, rem := n/k, n%k
	pos := 0
	for g := 0; g < k; g++ {
		size := base
		if g < rem {
			size++
		}
		groups[g] = append([]int(nil), order[pos:pos+size]...)
		pos += size
	}
	return Partitioning{Key: key, Groups: groups}, nil
}

// Validate checks that the partitioning is a true partition of [0, n).
func (p Partitioning) Validate(n int) error {
	seen := make([]bool, n)
	count := 0
	for g, group := range p.Groups {
		for _, idx := range group {
			if idx < 0 || idx >= n {
				return fmt.Errorf("partition: group %d references element %d outside [0, %d)", g, idx, n)
			}
			if seen[idx] {
				return fmt.Errorf("partition: element %d appears in more than one group", idx)
			}
			seen[idx] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("partition: %d of %d elements covered", count, n)
	}
	return nil
}

// NumGroups returns the number of non-empty groups.
func (p Partitioning) NumGroups() int {
	n := 0
	for _, g := range p.Groups {
		if len(g) > 0 {
			n++
		}
	}
	return n
}

// Representative is one partition's stand-in element in the
// Transformed Problem, carrying the member count so the objective and
// constraint can be scaled.
type Representative struct {
	// Group indexes into Partitioning.Groups.
	Group int
	// Count is the number of member elements.
	Count int
	// Lambda, AccessProb and Size are the member means (the paper's
	// representative construction).
	Lambda     float64
	AccessProb float64
	Size       float64
}

// Representatives averages each non-empty group's access probability,
// change frequency and size into its representative element.
func Representatives(elems []freshness.Element, p Partitioning) []Representative {
	reps := make([]Representative, 0, len(p.Groups))
	for g, group := range p.Groups {
		if len(group) == 0 {
			continue
		}
		var rep Representative
		rep.Group = g
		rep.Count = len(group)
		for _, idx := range group {
			rep.Lambda += elems[idx].Lambda
			rep.AccessProb += elems[idx].AccessProb
			rep.Size += elems[idx].Size
		}
		inv := 1 / float64(len(group))
		rep.Lambda *= inv
		rep.AccessProb *= inv
		rep.Size *= inv
		reps = append(reps, rep)
	}
	return reps
}
