package partition

import (
	"testing"

	"freshen/internal/solver"
)

func TestSolveHierarchicalBeatsFlat(t *testing.T) {
	// Re-solving inside each partition can only improve on handing
	// every member the same frequency.
	elems := testElements(t, 600, 1.0, 29)
	const bandwidth = 300
	for _, k := range []int{5, 20, 60} {
		opts := Options{Key: KeyPF, NumPartitions: k}
		flat, err := Solve(elems, bandwidth, opts)
		if err != nil {
			t.Fatal(err)
		}
		hier, err := SolveHierarchical(elems, bandwidth, opts)
		if err != nil {
			t.Fatal(err)
		}
		if hier.Solution.Perceived < flat.Solution.Perceived-1e-9 {
			t.Errorf("K=%d: hierarchical %v below flat %v",
				k, hier.Solution.Perceived, flat.Solution.Perceived)
		}
		if hier.Solution.BandwidthUsed > bandwidth*(1+1e-6) {
			t.Errorf("K=%d: over budget %v", k, hier.Solution.BandwidthUsed)
		}
	}
}

func TestSolveHierarchicalNearExact(t *testing.T) {
	// With per-group exact solves, even very few partitions land near
	// the global optimum (the inter-group split is the only
	// approximation).
	elems := testElements(t, 500, 1.2, 31)
	const bandwidth = 250
	exact, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: bandwidth})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := SolveHierarchical(elems, bandwidth, Options{Key: KeyPF, NumPartitions: 10})
	if err != nil {
		t.Fatal(err)
	}
	if hier.Solution.Perceived > exact.Perceived+1e-9 {
		t.Errorf("hierarchical %v beats exact %v", hier.Solution.Perceived, exact.Perceived)
	}
	if exact.Perceived-hier.Solution.Perceived > 0.01 {
		t.Errorf("hierarchical K=10 %v too far below exact %v",
			hier.Solution.Perceived, exact.Perceived)
	}
}

func TestSolveHierarchicalValidation(t *testing.T) {
	elems := testElements(t, 10, 1.0, 33)
	if _, err := SolveHierarchical(nil, 5, Options{NumPartitions: 2}); err == nil {
		t.Error("empty mirror must fail")
	}
	if _, err := SolveHierarchical(elems, 5, Options{NumPartitions: 0}); err == nil {
		t.Error("zero partitions must fail")
	}
	bad := Partitioning{Groups: [][]int{{0}}}
	if _, err := SolveHierarchicalPartitioned(elems, 5, bad, Options{}); err == nil {
		t.Error("corrupt grouping must fail")
	}
}
