package partition

import (
	"freshen/internal/freshness"
	"freshen/internal/solver"
)

// SolveHierarchical is the multi-stage approach the paper's Section
// 3.2 describes and dismisses: first allocate bandwidth *between*
// partitions by solving the Transformed Problem over representatives,
// then solve each partition's own small optimization exactly with its
// allocation, instead of spreading the partition's bandwidth evenly
// (FFA/FBA). The paper dropped it because, with its NLP package, "the
// sheer number of subproblems is too large"; with the water-filling
// solver the subproblems are cheap, and the repository's
// extension-hierarchical experiment re-evaluates the trade.
func SolveHierarchical(elems []freshness.Element, bandwidth float64, opts Options) (Result, error) {
	part, err := Build(elems, opts.Key, opts.NumPartitions, opts.Policy)
	if err != nil {
		return Result{}, err
	}
	return SolveHierarchicalPartitioned(elems, bandwidth, part, opts)
}

// SolveHierarchicalPartitioned runs the two stages over an existing
// grouping.
func SolveHierarchicalPartitioned(elems []freshness.Element, bandwidth float64, part Partitioning, opts Options) (Result, error) {
	if err := part.Validate(len(elems)); err != nil {
		return Result{}, err
	}
	reps := Representatives(elems, part)
	tp := TransformedProblem(reps, bandwidth, opts.Policy)
	repSol, err := solveTransformed(tp, opts)
	if err != nil {
		return Result{}, err
	}

	// One engine serves every per-partition subproblem: the "sheer
	// number of subproblems" the paper worried about becomes a loop of
	// warm, allocation-free solves over shared buffers.
	eng := opts.Engine
	if eng == nil {
		eng = solver.NewEngine()
	}
	freqs := make([]float64, len(elems))
	var sub []freshness.Element
	for ri, rep := range reps {
		// The partition's bandwidth share under the transformed
		// problem: members × mean size × representative frequency.
		share := float64(rep.Count) * rep.Size * repSol.Freqs[ri]
		if share <= 0 {
			continue
		}
		group := part.Groups[rep.Group]
		sub = sub[:0]
		for _, idx := range group {
			sub = append(sub, elems[idx])
		}
		subSol, err := eng.WaterFill(solver.Problem{
			Elements:  sub,
			Bandwidth: share,
			Policy:    opts.Policy,
		})
		if err != nil {
			return Result{}, err
		}
		for i, idx := range group {
			freqs[idx] = subSol.Freqs[i]
		}
	}

	pol := policyOrDefault(opts.Policy)
	pf, err := freshness.Perceived(pol, elems, freqs)
	if err != nil {
		return Result{}, err
	}
	bw, err := freshness.BandwidthUsed(elems, freqs)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Solution: solver.Solution{
			Freqs:         freqs,
			Perceived:     pf,
			BandwidthUsed: bw,
			Multiplier:    repSol.Multiplier,
		},
		Partitioning:    part,
		Representatives: reps,
		RepFreqs:        repSol.Freqs,
	}, nil
}
