package partition

import (
	"fmt"
	"testing"

	"freshen/internal/testkit"
)

// TestPartitionedSolutionsCertified checks every allocation the
// heuristic pipeline produces. The expanded per-element schedule is
// deliberately sub-optimal (that is the heuristic's trade), but two
// things must hold exactly: the transformed representative instance is
// solved to optimality — certified independently — and the expansion
// never spends more than the budget.
func TestPartitionedSolutionsCertified(t *testing.T) {
	elems := testElementsSized(t, 200, 7)
	const bandwidth = 60.0
	for _, k := range []int{1, 8, 32} {
		for _, key := range []Key{KeyPF, KeyPFOverSize} {
			for _, alloc := range []Allocation{FFA, FBA} {
				name := fmt.Sprintf("k%d-%s-%s", k, key, alloc)
				t.Run(name, func(t *testing.T) {
					res, err := Solve(elems, bandwidth, Options{
						Key: key, NumPartitions: k, Allocation: alloc,
					})
					if err != nil {
						t.Fatal(err)
					}
					tp := TransformedProblem(res.Representatives, bandwidth, nil)
					testkit.MustCertify(t, nil, tp.Elements, res.RepFreqs, bandwidth, 1e-5)
					if used := res.Solution.BandwidthUsed; used > bandwidth*(1+1e-9) {
						t.Errorf("expansion overspends: %v of %v", used, bandwidth)
					}
				})
			}
		}
	}
}

// TestSingletonPartitioningCertified pins the heuristic's exactness
// limit: with one group per element the transformed problem is the
// full problem, so the expanded schedule itself must carry a KKT
// certificate.
func TestSingletonPartitioningCertified(t *testing.T) {
	elems := testElementsSized(t, 80, 11)
	const bandwidth = 25.0
	res, err := Solve(elems, bandwidth, Options{Key: KeyPF, NumPartitions: len(elems), Allocation: FBA})
	if err != nil {
		t.Fatal(err)
	}
	cert := testkit.MustCertify(t, nil, elems, res.Solution.Freqs, bandwidth, 1e-5)
	if cert.Funded == 0 {
		t.Error("nothing funded")
	}
}
