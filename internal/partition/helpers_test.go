package partition

import (
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/workload"
)

// testElementsSized builds a variable-size mirror in the paper's
// Figure 11 configuration: Pareto sizes reverse-aligned with change
// rate (volatile objects are small), shuffled access.
func testElementsSized(t *testing.T, n int, seed int64) []freshness.Element {
	t.Helper()
	spec := workload.TableTwo()
	spec.NumObjects = n
	spec.UpdatesPerPeriod = 2 * float64(n)
	spec.SyncsPerPeriod = float64(n) / 2
	spec.Theta = 1.0
	spec.ChangeAlignment = workload.Shuffled
	spec.Sizes = workload.SizePareto
	spec.ParetoShape = 1.1
	spec.SizeAlignment = workload.Reverse
	spec.Seed = seed
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return elems
}
