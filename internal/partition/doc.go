// Package partition implements the paper's Section 3 heuristics that
// make freshening scale: sort the elements by one of several criteria,
// chop the sorted order into K contiguous partitions, solve the small
// Transformed Problem over one representative per partition, and hand
// each partition's bandwidth down to its members.
//
// The sort keys are the paper's four — access probability (P), change
// frequency (λ), their ratio (P/λ) and perceived freshness at a
// reference frequency (PF) — plus the Section 5 size-aware variants
// PF/s and Size. Bandwidth is handed down by either Fixed Frequency
// Allocation (FFA: every member refreshed at the representative's
// frequency) or Fixed Bandwidth Allocation (FBA: every member receives
// the same bandwidth, so small objects refresh more often).
package partition
