package partition

import (
	"fmt"

	"freshen/internal/freshness"
	"freshen/internal/solver"
)

// Allocation is the policy for handing a partition's bandwidth down to
// its member elements.
type Allocation int

// Allocation policies (paper Section 5.2).
const (
	// FFA, Fixed Frequency Allocation: every member is refreshed at
	// the representative's frequency. Correct for unit sizes, but with
	// variable sizes it hands large members disproportionate
	// bandwidth.
	FFA Allocation = iota
	// FBA, Fixed Bandwidth Allocation: every member receives the same
	// bandwidth (representative size × representative frequency), so a
	// member's frequency is that bandwidth divided by its own size.
	// The paper shows FBA always outperforms FFA for variable sizes;
	// the two coincide for unit sizes.
	FBA
)

// String implements fmt.Stringer.
func (a Allocation) String() string {
	switch a {
	case FFA:
		return "FFA"
	case FBA:
		return "FBA"
	default:
		return fmt.Sprintf("Allocation(%d)", int(a))
	}
}

// TransformedProblem builds the small optimization instance over
// partition representatives: maximize Σ_g n_g·p̄_g·F(f_g, λ̄_g) subject
// to Σ_g n_g·s̄_g·f_g ≤ B. Scaling weight and size by the member count
// makes the small instance's KKT conditions agree with treating every
// member as identical to its representative.
func TransformedProblem(reps []Representative, bandwidth float64, pol freshness.Policy) solver.Problem {
	elems := make([]freshness.Element, len(reps))
	for i, r := range reps {
		elems[i] = freshness.Element{
			ID:         r.Group,
			Lambda:     r.Lambda,
			AccessProb: float64(r.Count) * r.AccessProb,
			Size:       float64(r.Count) * r.Size,
		}
	}
	return solver.Problem{Elements: elems, Bandwidth: bandwidth, Policy: pol}
}

// Options configures the heuristic pipeline.
type Options struct {
	// Key is the partitioning sort criterion.
	Key Key
	// NumPartitions is the target partition count K.
	NumPartitions int
	// Allocation hands partition bandwidth to members; the zero value
	// FFA matches the paper's Sections 3–4 (unit sizes).
	Allocation Allocation
	// Policy is the synchronization policy; nil means Fixed-Order.
	Policy freshness.Policy
	// Engine, when non-nil, is the solve engine used for the
	// transformed problem (and the per-partition subproblems of the
	// hierarchical variant). Callers running many partitioned solves —
	// k-means sweeps, the experiment harness — can pass one engine and
	// amortize its buffers; nil uses the solver's shared pool.
	Engine *solver.Engine
}

// solveTransformed solves the small representative instance with the
// caller's engine when one is provided.
func solveTransformed(tp solver.Problem, opts Options) (solver.Solution, error) {
	if opts.Engine != nil {
		return opts.Engine.WaterFill(tp)
	}
	return solver.WaterFill(tp)
}

// Result is the heuristic outcome: the full per-element schedule plus
// the intermediate artifacts for inspection.
type Result struct {
	// Solution is the per-element frequency assignment and its scores.
	Solution solver.Solution
	// Partitioning is the grouping used.
	Partitioning Partitioning
	// Representatives are the transformed problem's elements.
	Representatives []Representative
	// RepFreqs are the transformed problem's optimal frequencies,
	// aligned with Representatives.
	RepFreqs []float64
}

// Solve runs the two-step heuristic: partition, solve the transformed
// problem exactly, and expand the representative frequencies to all
// members under the chosen allocation.
func Solve(elems []freshness.Element, bandwidth float64, opts Options) (Result, error) {
	part, err := Build(elems, opts.Key, opts.NumPartitions, opts.Policy)
	if err != nil {
		return Result{}, err
	}
	return SolvePartitioned(elems, bandwidth, part, opts)
}

// SolvePartitioned runs the optimization and allocation steps over an
// existing grouping (used directly after k-means refinement, whose
// groups are no longer contiguous runs of a sort order).
func SolvePartitioned(elems []freshness.Element, bandwidth float64, part Partitioning, opts Options) (Result, error) {
	if err := part.Validate(len(elems)); err != nil {
		return Result{}, err
	}
	reps := Representatives(elems, part)
	tp := TransformedProblem(reps, bandwidth, opts.Policy)
	repSol, err := solveTransformed(tp, opts)
	if err != nil {
		return Result{}, err
	}

	freqs := make([]float64, len(elems))
	for ri, rep := range reps {
		f := repSol.Freqs[ri]
		switch opts.Allocation {
		case FBA:
			// Equal bandwidth per member: b = s̄·f, so fᵢ = s̄·f/sᵢ.
			b := rep.Size * f
			for _, idx := range part.Groups[rep.Group] {
				freqs[idx] = b / elems[idx].Size
			}
		default: // FFA
			for _, idx := range part.Groups[rep.Group] {
				freqs[idx] = f
			}
		}
	}

	sol := solver.Solution{Freqs: freqs, Multiplier: repSol.Multiplier, Iterations: repSol.Iterations}
	pf, err := freshness.Perceived(policyOrDefault(opts.Policy), elems, freqs)
	if err != nil {
		return Result{}, err
	}
	bw, err := freshness.BandwidthUsed(elems, freqs)
	if err != nil {
		return Result{}, err
	}
	sol.Perceived = pf
	sol.BandwidthUsed = bw
	return Result{
		Solution:        sol,
		Partitioning:    part,
		Representatives: reps,
		RepFreqs:        repSol.Freqs,
	}, nil
}

func policyOrDefault(p freshness.Policy) freshness.Policy {
	if p == nil {
		return freshness.FixedOrder{}
	}
	return p
}
