package core

import (
	"fmt"

	"freshen/internal/freshness"
	"freshen/internal/profile"
)

// AdaptivePlanner keeps a mirror's plan aligned with a shifting user
// community. It holds the current plan, watches the live access
// stream through a profile drift monitor, and re-plans — with the
// observed empirical profile — when the drift crosses the configured
// threshold. This is the operational loop behind the paper's remark
// that large mirrors "need to periodically solve the Core Problem";
// re-solving on observed drift spends that planning cost only when
// interests actually moved.
type AdaptivePlanner struct {
	elems    []freshness.Element
	cfg      Config
	monitor  *profile.Monitor
	plan     Plan
	replans  int
	minCount int
	thresh   float64
}

// NewAdaptivePlanner plans once for the elements' current profile and
// arms the drift monitor. threshold is the total-variation drift that
// triggers a re-plan; minAccesses guards against reacting to noise.
func NewAdaptivePlanner(elems []freshness.Element, cfg Config, threshold float64, minAccesses int) (*AdaptivePlanner, error) {
	if err := freshness.ValidateElements(elems); err != nil {
		return nil, err
	}
	own := append([]freshness.Element(nil), elems...)
	plan, err := MakePlan(own, cfg)
	if err != nil {
		return nil, err
	}
	baseline := make([]float64, len(own))
	for i, e := range own {
		baseline[i] = e.AccessProb
	}
	mon, err := profile.NewMonitor(baseline, threshold, minAccesses)
	if err != nil {
		return nil, err
	}
	return &AdaptivePlanner{
		elems:    own,
		cfg:      cfg,
		monitor:  mon,
		plan:     plan,
		minCount: minAccesses,
		thresh:   threshold,
	}, nil
}

// Plan returns the current plan.
func (a *AdaptivePlanner) Plan() Plan { return a.plan }

// Replans returns how many times the planner has re-solved.
func (a *AdaptivePlanner) Replans() int { return a.replans }

// Observe feeds one access. When the observed profile has drifted past
// the threshold the planner re-solves against the empirical profile,
// re-baselines the monitor, and reports replanned = true.
func (a *AdaptivePlanner) Observe(element int) (replanned bool, err error) {
	drifted, err := a.monitor.Observe(element)
	if err != nil {
		return false, err
	}
	if !drifted {
		return false, nil
	}
	emp := a.monitor.Empirical()
	if emp == nil {
		return false, fmt.Errorf("core: drift signalled without observations")
	}
	for i := range a.elems {
		a.elems[i].AccessProb = emp[i]
	}
	plan, err := MakePlan(a.elems, a.cfg)
	if err != nil {
		return false, err
	}
	a.plan = plan
	a.replans++
	if err := a.monitor.Reset(emp); err != nil {
		return false, err
	}
	return true, nil
}

// UpdateChangeRates installs fresh change-rate estimates (for example
// from an estimate.Tracker) and re-plans immediately.
func (a *AdaptivePlanner) UpdateChangeRates(lambdas []float64) error {
	if len(lambdas) != len(a.elems) {
		return fmt.Errorf("core: %d change rates for %d elements", len(lambdas), len(a.elems))
	}
	for i, l := range lambdas {
		if l < 0 {
			return fmt.Errorf("core: element %d has negative change rate %v", i, l)
		}
		a.elems[i].Lambda = l
	}
	plan, err := MakePlan(a.elems, a.cfg)
	if err != nil {
		return err
	}
	a.plan = plan
	a.replans++
	return nil
}
