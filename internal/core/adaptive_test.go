package core

import (
	"testing"

	"freshen/internal/stats"
)

func TestAdaptivePlannerReplansOnDrift(t *testing.T) {
	elems := testElements(t, 50, 1.0, 7)
	ap, err := NewAdaptivePlanner(elems, Config{Bandwidth: 25}, 0.25, 100)
	if err != nil {
		t.Fatal(err)
	}
	initial := ap.Plan()

	// The community's interest flips to the coldest element: all
	// accesses hit element 49.
	var replanned bool
	for i := 0; i < 1000 && !replanned; i++ {
		replanned, err = ap.Observe(49)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !replanned {
		t.Fatal("planner never replanned under total interest flip")
	}
	if ap.Replans() != 1 {
		t.Errorf("Replans = %d, want 1", ap.Replans())
	}
	// The new plan must fund element 49 far more than the old one did.
	if ap.Plan().Freqs[49] <= initial.Freqs[49] {
		t.Errorf("element 49 freq %v did not rise from %v",
			ap.Plan().Freqs[49], initial.Freqs[49])
	}
}

func TestAdaptivePlannerStableStreamNoReplan(t *testing.T) {
	// minCount must absorb sampling noise: the empirical TV distance
	// of n uniform samples over N bins is about sqrt(N/(2πn)), so 2000
	// samples over 20 bins leaves expected drift ≈ 0.05 « 0.2.
	elems := testElements(t, 20, 0.0, 8) // uniform profile
	ap, err := NewAdaptivePlanner(elems, Config{Bandwidth: 10}, 0.2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(3)
	for i := 0; i < 5000; i++ {
		replanned, err := ap.Observe(r.Intn(20))
		if err != nil {
			t.Fatal(err)
		}
		if replanned {
			t.Fatalf("false replan at access %d", i)
		}
	}
	if ap.Replans() != 0 {
		t.Errorf("Replans = %d, want 0", ap.Replans())
	}
}

func TestAdaptivePlannerDoesNotMutateCaller(t *testing.T) {
	elems := testElements(t, 10, 1.0, 9)
	orig := elems[0].AccessProb
	ap, err := NewAdaptivePlanner(elems, Config{Bandwidth: 5}, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := ap.Observe(9); err != nil {
			t.Fatal(err)
		}
	}
	if elems[0].AccessProb != orig {
		t.Error("adaptive planner mutated the caller's elements")
	}
}

func TestAdaptivePlannerUpdateChangeRates(t *testing.T) {
	elems := testElements(t, 10, 1.0, 10)
	ap, err := NewAdaptivePlanner(elems, Config{Bandwidth: 5}, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	lambdas := make([]float64, 10)
	for i := range lambdas {
		lambdas[i] = 1
	}
	if err := ap.UpdateChangeRates(lambdas); err != nil {
		t.Fatal(err)
	}
	if ap.Replans() != 1 {
		t.Errorf("Replans = %d, want 1", ap.Replans())
	}
	if err := ap.UpdateChangeRates(lambdas[:3]); err == nil {
		t.Error("length mismatch must fail")
	}
	lambdas[0] = -1
	if err := ap.UpdateChangeRates(lambdas); err == nil {
		t.Error("negative rate must fail")
	}
}

func TestAdaptivePlannerValidation(t *testing.T) {
	if _, err := NewAdaptivePlanner(nil, Config{Bandwidth: 5}, 0.1, 10); err == nil {
		t.Error("empty mirror must fail")
	}
	elems := testElements(t, 5, 0.5, 11)
	if _, err := NewAdaptivePlanner(elems, Config{Bandwidth: 5}, 0, 10); err == nil {
		t.Error("zero threshold must fail")
	}
	ap, err := NewAdaptivePlanner(elems, Config{Bandwidth: 5}, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Observe(99); err == nil {
		t.Error("out-of-range access must fail")
	}
}
