package core

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/partition"
	"freshen/internal/workload"
)

func testElements(t *testing.T, n int, theta float64, seed int64) []freshness.Element {
	t.Helper()
	spec := workload.TableTwo()
	spec.NumObjects = n
	spec.UpdatesPerPeriod = 2 * float64(n)
	spec.SyncsPerPeriod = float64(n) / 2
	spec.Theta = theta
	spec.Seed = seed
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return elems
}

func TestMakePlanExact(t *testing.T) {
	elems := testElements(t, 200, 1.0, 1)
	plan, err := MakePlan(elems, Config{Bandwidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != StrategyExact {
		t.Errorf("strategy = %v", plan.Strategy)
	}
	if plan.NumPartitions != 200 {
		t.Errorf("NumPartitions = %d, want 200", plan.NumPartitions)
	}
	if plan.BandwidthUsed > 100*(1+1e-6) {
		t.Errorf("over budget: %v", plan.BandwidthUsed)
	}
	if !(plan.Perceived > 0 && plan.Perceived < 1) {
		t.Errorf("Perceived = %v", plan.Perceived)
	}
	if !(plan.AvgFreshness > 0 && plan.AvgFreshness < 1) {
		t.Errorf("AvgFreshness = %v", plan.AvgFreshness)
	}
	if plan.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestMakePlanHeuristicsOrdering(t *testing.T) {
	// exact >= clustered >= partitioned at the same K (up to tiny
	// numerical slack), on a shuffled-change skewed workload.
	elems := testElements(t, 1000, 1.0, 2)
	const bandwidth, k = 500, 15
	exact, err := MakePlan(elems, Config{Bandwidth: bandwidth})
	if err != nil {
		t.Fatal(err)
	}
	parted, err := MakePlan(elems, Config{
		Bandwidth: bandwidth, Strategy: StrategyPartitioned,
		Key: partition.KeyPF, NumPartitions: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := MakePlan(elems, Config{
		Bandwidth: bandwidth, Strategy: StrategyClustered,
		Key: partition.KeyPF, NumPartitions: k, KMeansIterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Perceived < clustered.Perceived-1e-9 {
		t.Errorf("exact %v below clustered %v", exact.Perceived, clustered.Perceived)
	}
	if clustered.Perceived < parted.Perceived-1e-9 {
		t.Errorf("clustered %v below partitioned %v", clustered.Perceived, parted.Perceived)
	}
	if parted.NumPartitions != k {
		t.Errorf("partitioned NumPartitions = %d, want %d", parted.NumPartitions, k)
	}
}

func TestMakePlanValidation(t *testing.T) {
	elems := testElements(t, 10, 0.5, 3)
	if _, err := MakePlan(elems, Config{Bandwidth: 5, Strategy: StrategyPartitioned}); err == nil {
		t.Error("heuristic without NumPartitions must fail")
	}
	if _, err := MakePlan(elems, Config{Bandwidth: 5, Strategy: Strategy(42)}); err == nil {
		t.Error("unknown strategy must fail")
	}
	if _, err := MakePlan(nil, Config{Bandwidth: 5}); err == nil {
		t.Error("empty mirror must fail")
	}
}

func TestDefaultHeuristics(t *testing.T) {
	cfg := DefaultHeuristics(100, 50)
	if cfg.Strategy != StrategyClustered || cfg.Key != partition.KeyPF ||
		cfg.NumPartitions != 50 || cfg.KMeansIterations != 10 ||
		cfg.Allocation != partition.FBA || cfg.Bandwidth != 100 {
		t.Errorf("DefaultHeuristics = %+v", cfg)
	}
	elems := testElements(t, 300, 1.0, 4)
	plan, err := MakePlan(elems, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.BandwidthUsed > 100*(1+1e-6) {
		t.Errorf("over budget: %v", plan.BandwidthUsed)
	}
}

func TestPlanTimeline(t *testing.T) {
	elems := testElements(t, 50, 1.0, 5)
	plan, err := MakePlan(elems, Config{Bandwidth: 25})
	if err != nil {
		t.Fatal(err)
	}
	events, err := plan.Timeline(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// About bandwidth × horizon events.
	if math.Abs(float64(len(events))-100) > 55 {
		t.Errorf("got %d events, want about 100", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("timeline out of order")
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyExact.String() != "exact" || StrategyPartitioned.String() != "partitioned" ||
		StrategyClustered.String() != "clustered" {
		t.Error("strategy stringer broken")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy must still print")
	}
}
