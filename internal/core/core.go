package core
