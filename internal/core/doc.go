// Package core assembles the paper's contribution into a single
// planning API: given a mirror (elements with change rates, the
// aggregated user profile and sizes) and a bandwidth budget, produce a
// refresh plan that maximizes perceived freshness — exactly for small
// mirrors, or through the paper's partitioning heuristics with
// optional k-means refinement for large ones. The adaptive planner
// closes the loop the paper's conclusion sketches: it watches the
// access stream and re-plans when the profile drifts.
package core
