package core

import (
	"fmt"
	"time"

	"freshen/internal/cluster"
	"freshen/internal/freshness"
	"freshen/internal/partition"
	"freshen/internal/schedule"
	"freshen/internal/solver"
)

// Strategy selects how a plan is computed.
type Strategy int

// Strategies, from exact to most scalable.
const (
	// StrategyExact solves the Core/Extended Problem exactly
	// (water-filling). Scales to large N in this implementation, but
	// the heuristics remain the paper's subject and are much faster.
	StrategyExact Strategy = iota
	// StrategyPartitioned runs the two-step partitioning heuristic.
	StrategyPartitioned
	// StrategyClustered refines the partitioning with k-means before
	// optimizing — the paper's best time/quality trade-off.
	StrategyClustered
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyExact:
		return "exact"
	case StrategyPartitioned:
		return "partitioned"
	case StrategyClustered:
		return "clustered"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config parameterizes planning.
type Config struct {
	// Bandwidth is the refresh budget per period (Σ sᵢ·fᵢ ≤ Bandwidth).
	Bandwidth float64
	// Strategy defaults to StrategyExact.
	Strategy Strategy
	// Policy is the synchronization policy; nil means Fixed-Order.
	Policy freshness.Policy
	// Key is the partitioning criterion for the heuristic strategies;
	// the zero value is partition.KeyP, but PF-partitioning
	// (partition.KeyPF) is the paper's recommendation and the default
	// applied when NumPartitions > 0 and Key is unset is KeyPF via
	// DefaultHeuristics.
	Key partition.Key
	// NumPartitions is the heuristic partition count K (required for
	// the heuristic strategies).
	NumPartitions int
	// KMeansIterations applies to StrategyClustered.
	KMeansIterations int
	// IncludeSizeInClustering adds the size dimension to the k-means
	// feature space (variable-size mirrors).
	IncludeSizeInClustering bool
	// Allocation hands partition bandwidth to members (FFA or FBA).
	Allocation partition.Allocation
}

// DefaultHeuristics returns the paper's recommended heuristic
// configuration: PF-partitioning into k partitions, FBA allocation,
// and 10 k-means iterations under StrategyClustered.
func DefaultHeuristics(bandwidth float64, k int) Config {
	return Config{
		Bandwidth:        bandwidth,
		Strategy:         StrategyClustered,
		Key:              partition.KeyPF,
		NumPartitions:    k,
		KMeansIterations: 10,
		Allocation:       partition.FBA,
	}
}

// Plan is a computed refresh schedule.
type Plan struct {
	// Freqs is the per-element refresh frequency (refreshes/period).
	Freqs []float64
	// Perceived is the plan's perceived freshness Σ pᵢ·F(fᵢ, λᵢ).
	Perceived float64
	// AvgFreshness is the unweighted mean freshness (the GF metric).
	AvgFreshness float64
	// BandwidthUsed is Σ sᵢ·fᵢ.
	BandwidthUsed float64
	// Strategy and NumPartitions record how the plan was computed.
	Strategy      Strategy
	NumPartitions int
	// Elapsed is the planning wall-clock time.
	Elapsed time.Duration
}

// MakePlan computes a refresh plan for the mirror.
func MakePlan(elems []freshness.Element, cfg Config) (Plan, error) {
	start := time.Now()
	// One solve engine serves the whole plan, whichever strategy runs:
	// the exact solve, the transformed problem of the heuristics, or
	// both across a k-means refinement.
	eng := solver.NewEngine()
	var sol solver.Solution
	var numParts int
	switch cfg.Strategy {
	case StrategyExact:
		s, err := eng.WaterFill(solver.Problem{
			Elements:  elems,
			Bandwidth: cfg.Bandwidth,
			Policy:    cfg.Policy,
		})
		if err != nil {
			return Plan{}, err
		}
		sol = s
		numParts = len(elems)

	case StrategyPartitioned, StrategyClustered:
		if cfg.NumPartitions <= 0 {
			return Plan{}, fmt.Errorf("core: heuristic strategies need NumPartitions > 0, got %d", cfg.NumPartitions)
		}
		opts := partition.Options{
			Key:           cfg.Key,
			NumPartitions: cfg.NumPartitions,
			Allocation:    cfg.Allocation,
			Policy:        cfg.Policy,
			Engine:        eng,
		}
		part, err := partition.Build(elems, cfg.Key, cfg.NumPartitions, cfg.Policy)
		if err != nil {
			return Plan{}, err
		}
		if cfg.Strategy == StrategyClustered {
			refined, _, err := cluster.Refine(elems, part, cluster.Config{
				Iterations:  cfg.KMeansIterations,
				IncludeSize: cfg.IncludeSizeInClustering,
			})
			if err != nil {
				return Plan{}, err
			}
			part = refined
		}
		res, err := partition.SolvePartitioned(elems, cfg.Bandwidth, part, opts)
		if err != nil {
			return Plan{}, err
		}
		sol = res.Solution
		numParts = part.NumGroups()

	default:
		return Plan{}, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
	}

	pol := cfg.Policy
	if pol == nil {
		pol = freshness.FixedOrder{}
	}
	avg, err := freshness.Average(pol, elems, sol.Freqs)
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		Freqs:         sol.Freqs,
		Perceived:     sol.Perceived,
		AvgFreshness:  avg,
		BandwidthUsed: sol.BandwidthUsed,
		Strategy:      cfg.Strategy,
		NumPartitions: numParts,
		Elapsed:       time.Since(start),
	}, nil
}

// Timeline expands the plan into the concrete time-ordered sync stream
// over [0, horizon) periods (Fixed-Order spacing).
func (p Plan) Timeline(horizon float64, seed int64) ([]schedule.SyncEvent, error) {
	return schedule.Timeline(p.Freqs, schedule.Options{
		Horizon:     horizon,
		RandomPhase: true,
		Seed:        seed,
	})
}
