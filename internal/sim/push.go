package sim

import (
	"container/heap"
	"container/list"
	"fmt"

	"freshen/internal/freshness"
	"freshen/internal/stats"
)

// PushConfig describes a push-based refresh run: the source notifies
// the mirror the instant an element changes (the cooperation the
// paper's related work assumes and typical sources do not offer), and
// the mirror works through the dirty set at its bandwidth's service
// rate. Comparing its perceived freshness with the pull-optimal
// schedule at the same bandwidth bounds what source cooperation would
// buy.
type PushConfig struct {
	// Elements is the mirror.
	Elements []freshness.Element
	// Bandwidth is the service rate: refreshes per period.
	Bandwidth float64
	// PeriodLength, Periods, WarmupPeriods, AccessesPerPeriod and Seed
	// behave as in Config.
	PeriodLength      float64
	Periods           int
	WarmupPeriods     int
	AccessesPerPeriod float64
	Seed              int64
	// Priority makes the server refresh the dirty element with the
	// highest access probability first instead of FIFO order — the
	// smarter cooperative mirror a profile-aware source could run.
	Priority bool
}

// RunPush executes a push-notification simulation. The mirror keeps a
// FIFO of dirty elements (duplicates collapsed — refreshing an element
// clears all its pending changes) and a single server that completes
// one refresh every 1/Bandwidth periods while the queue is non-empty.
func RunPush(cfg PushConfig) (Result, error) {
	base := Config{
		Elements:          cfg.Elements,
		Freqs:             make([]float64, len(cfg.Elements)),
		PeriodLength:      cfg.PeriodLength,
		Periods:           cfg.Periods,
		WarmupPeriods:     cfg.WarmupPeriods,
		AccessesPerPeriod: cfg.AccessesPerPeriod,
		Seed:              cfg.Seed,
	}
	if err := base.Validate(); err != nil {
		return Result{}, err
	}
	if !(cfg.Bandwidth > 0) {
		return Result{}, fmt.Errorf("sim: push bandwidth must be positive, got %v", cfg.Bandwidth)
	}
	base = base.withDefaults()
	n := len(base.Elements)
	horizon := base.PeriodLength * float64(base.Periods)
	measureStart := base.PeriodLength * float64(base.WarmupPeriods)
	service := base.PeriodLength / cfg.Bandwidth

	r := stats.NewRNG(base.Seed)
	updateRNG := r.Split()
	accessRNG := r.Split()

	var accessAlias *stats.Alias
	accessRate := base.AccessesPerPeriod / base.PeriodLength
	if accessRate > 0 {
		weights := make([]float64, n)
		var mass float64
		for i, e := range base.Elements {
			weights[i] = e.AccessProb
			mass += e.AccessProb
		}
		if mass > 0 {
			var err error
			accessAlias, err = stats.NewAlias(weights)
			if err != nil {
				return Result{}, err
			}
		}
	}

	freshSince := make([]float64, n)
	staleSince := make([]float64, n)
	freshTime := make([]float64, n)
	ageTime := make([]float64, n)
	fresh := make([]bool, n)
	queued := make([]bool, n)
	for i := range fresh {
		fresh[i] = true
	}
	var queue dirtyQueue = &fifoQueue{}
	if cfg.Priority {
		weights := make([]float64, n)
		for i, e := range base.Elements {
			weights[i] = e.AccessProb
		}
		queue = &priorityQueue{weights: weights}
	}
	serverBusy := false

	q := &eventQueue{}
	for i, e := range base.Elements {
		if e.Lambda > 0 {
			rate := e.Lambda / base.PeriodLength
			q.push(event{time: updateRNG.ExpFloat64() / rate, kind: evUpdate, elem: i})
		}
	}
	if accessAlias != nil {
		q.push(event{time: accessRNG.ExpFloat64() / accessRate, kind: evAccess})
	}

	res := Result{MeasuredTime: horizon - measureStart}
	for q.Len() > 0 {
		ev := q.pop()
		if ev.time >= horizon {
			continue
		}
		switch ev.kind {
		case evUpdate:
			i := ev.elem
			if fresh[i] {
				if ev.time > measureStart {
					start := freshSince[i]
					if start < measureStart {
						start = measureStart
					}
					freshTime[i] += ev.time - start
				}
				fresh[i] = false
				staleSince[i] = ev.time
			}
			if ev.time > measureStart {
				res.Updates++
			}
			// The push notification: enqueue unless already pending.
			if !queued[i] {
				queued[i] = true
				queue.add(i)
				if !serverBusy {
					serverBusy = true
					q.push(event{time: ev.time + service, kind: evSync})
				}
			}
			rate := base.Elements[i].Lambda / base.PeriodLength
			q.push(event{time: ev.time + updateRNG.ExpFloat64()/rate, kind: evUpdate, elem: i})

		case evSync: // service completion
			i, ok := queue.pop()
			if !ok {
				serverBusy = false
				break
			}
			queued[i] = false
			if !fresh[i] {
				ageTime[i] += ageIntegral(staleSince[i], measureStart, ev.time)
				fresh[i] = true
				freshSince[i] = ev.time
			}
			if ev.time > measureStart {
				res.Syncs++
			}
			if queue.size() > 0 {
				q.push(event{time: ev.time + service, kind: evSync})
			} else {
				serverBusy = false
			}

		case evAccess:
			i := accessAlias.Sample(accessRNG)
			if ev.time > measureStart {
				res.Accesses++
				if fresh[i] {
					res.FreshAccesses++
				}
			}
			q.push(event{time: ev.time + accessRNG.ExpFloat64()/accessRate, kind: evAccess})
		}
	}

	for i := range fresh {
		if fresh[i] {
			start := freshSince[i]
			if start < measureStart {
				start = measureStart
			}
			if start < horizon {
				freshTime[i] += horizon - start
			}
		} else {
			ageTime[i] += ageIntegral(staleSince[i], measureStart, horizon)
		}
	}

	window := res.MeasuredTime
	var pfTime, avg, age float64
	for i, e := range base.Elements {
		frac := freshTime[i] / window
		pfTime += e.AccessProb * frac
		avg += frac
		age += e.AccessProb * ageTime[i] / window
	}
	res.TimeAveragedPF = pfTime
	res.AvgFreshness = avg / float64(n)
	res.MeasuredAge = age
	if res.Accesses > 0 {
		res.MonitoredPF = float64(res.FreshAccesses) / float64(res.Accesses)
	}
	return res, nil
}

// dirtyQueue is the pending-refresh set of the push server.
type dirtyQueue interface {
	add(i int)
	pop() (int, bool)
	size() int
}

// fifoQueue refreshes in notification order.
type fifoQueue struct {
	l list.List
}

func (q *fifoQueue) add(i int) { q.l.PushBack(i) }
func (q *fifoQueue) pop() (int, bool) {
	front := q.l.Front()
	if front == nil {
		return 0, false
	}
	return q.l.Remove(front).(int), true
}
func (q *fifoQueue) size() int { return q.l.Len() }

// priorityQueue refreshes the hottest dirty element first.
type priorityQueue struct {
	weights []float64
	items   []int
}

func (q *priorityQueue) add(i int) { heap.Push(q, i) }
func (q *priorityQueue) size() int { return len(q.items) }
func (q *priorityQueue) pop() (int, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return heap.Pop(q).(int), true
}

// heap.Interface over items, max-ordered by weight with index
// tiebreak for determinism.
func (q *priorityQueue) Len() int { return len(q.items) }
func (q *priorityQueue) Less(a, b int) bool {
	wa, wb := q.weights[q.items[a]], q.weights[q.items[b]]
	if wa != wb {
		return wa > wb
	}
	return q.items[a] < q.items[b]
}
func (q *priorityQueue) Swap(a, b int) { q.items[a], q.items[b] = q.items[b], q.items[a] }

// Push implements heap.Interface.
func (q *priorityQueue) Push(x interface{}) { q.items = append(q.items, x.(int)) }

// Pop implements heap.Interface.
func (q *priorityQueue) Pop() interface{} {
	n := len(q.items)
	v := q.items[n-1]
	q.items = q.items[:n-1]
	return v
}
