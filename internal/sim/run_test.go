package sim

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/solver"
	"freshen/internal/workload"
)

func tableTwoRun(t *testing.T, theta float64, seed int64) (Config, solver.Solution) {
	t.Helper()
	spec := workload.TableTwo()
	spec.NumObjects = 200
	spec.UpdatesPerPeriod = 400
	spec.SyncsPerPeriod = 100
	spec.Theta = theta
	spec.Seed = seed
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: spec.SyncsPerPeriod})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Elements:          elems,
		Freqs:             sol.Freqs,
		Periods:           60,
		WarmupPeriods:     5,
		AccessesPerPeriod: 20000,
		Seed:              seed,
	}, sol
}

func TestRunMatchesAnalyticFixedOrder(t *testing.T) {
	cfg, sol := tableTwoRun(t, 1.0, 42)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AnalyticPF-sol.Perceived) > 1e-12 {
		t.Errorf("analytic PF %v != solver objective %v", res.AnalyticPF, sol.Perceived)
	}
	// The two evaluator modes must agree with each other and with the
	// closed form within simulation noise.
	if math.Abs(res.TimeAveragedPF-res.AnalyticPF) > 0.02 {
		t.Errorf("time-averaged PF %v vs analytic %v", res.TimeAveragedPF, res.AnalyticPF)
	}
	if math.Abs(res.MonitoredPF-res.TimeAveragedPF) > 0.02 {
		t.Errorf("monitored PF %v vs time-averaged %v", res.MonitoredPF, res.TimeAveragedPF)
	}
}

func TestRunMatchesAnalyticPoisson(t *testing.T) {
	cfg, _ := tableTwoRun(t, 0.8, 7)
	cfg.Discipline = PoissonSync
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TimeAveragedPF-res.AnalyticPF) > 0.02 {
		t.Errorf("poisson: time-averaged PF %v vs analytic %v", res.TimeAveragedPF, res.AnalyticPF)
	}
}

func TestRunFixedOrderBeatsPoissonEmpirically(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation; skipped in -short mode")
	}
	cfg, _ := tableTwoRun(t, 1.0, 11)
	fo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Discipline = PoissonSync
	po, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fo.TimeAveragedPF <= po.TimeAveragedPF {
		t.Errorf("fixed-order %v not above poisson %v", fo.TimeAveragedPF, po.TimeAveragedPF)
	}
}

func TestRunEventCounts(t *testing.T) {
	cfg, _ := tableTwoRun(t, 0.5, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := res.MeasuredTime
	// Updates: Poisson with total rate 400/period over a 55-period
	// window; allow 6 sigma.
	wantUpdates := 400 * window
	if d := math.Abs(float64(res.Updates) - wantUpdates); d > 6*math.Sqrt(wantUpdates) {
		t.Errorf("updates %d, want about %v", res.Updates, wantUpdates)
	}
	// Syncs: deterministic spacing, budget 100/period.
	wantSyncs := 100 * window
	if d := math.Abs(float64(res.Syncs) - wantSyncs); d > 0.02*wantSyncs {
		t.Errorf("syncs %d, want about %v", res.Syncs, wantSyncs)
	}
	wantAccesses := 20000 * window
	if d := math.Abs(float64(res.Accesses) - wantAccesses); d > 6*math.Sqrt(wantAccesses) {
		t.Errorf("accesses %d, want about %v", res.Accesses, wantAccesses)
	}
	if res.FreshAccesses > res.Accesses {
		t.Error("more fresh accesses than accesses")
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation; skipped in -short mode")
	}
	cfg, _ := tableTwoRun(t, 1.2, 5)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Result contains a slice field, so compare the scalar metrics.
	if a.MonitoredPF != b.MonitoredPF || a.TimeAveragedPF != b.TimeAveragedPF ||
		a.MeasuredAge != b.MeasuredAge || a.Accesses != b.Accesses ||
		a.Updates != b.Updates || a.Syncs != b.Syncs {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MonitoredPF == c.MonitoredPF && a.Updates == c.Updates {
		t.Error("different seeds produced identical runs")
	}
}

func TestRunZeroScheduleAllStale(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 5, AccessProb: 1, Size: 1},
	}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{0},
		Periods:           30,
		WarmupPeriods:     5,
		AccessesPerPeriod: 1000,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A volatile element never refreshed goes permanently stale after
	// its first update; with warmup the measured freshness is ~0.
	if res.TimeAveragedPF > 0.01 {
		t.Errorf("unrefreshed volatile element measured %v fresh", res.TimeAveragedPF)
	}
	if res.AnalyticPF != 0 {
		t.Errorf("analytic PF %v, want 0", res.AnalyticPF)
	}
}

func TestRunUnchangingElementAlwaysFresh(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 0, AccessProb: 1, Size: 1},
	}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{0},
		Periods:           10,
		WarmupPeriods:     1,
		AccessesPerPeriod: 500,
		Seed:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitoredPF != 1 || res.TimeAveragedPF != 1 || res.AnalyticPF != 1 {
		t.Errorf("unchanging element not always fresh: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	elems := []freshness.Element{{Lambda: 1, AccessProb: 1, Size: 1}}
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := Run(Config{Elements: elems, Freqs: []float64{1, 2}}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := Run(Config{Elements: elems, Freqs: []float64{-1}}); err == nil {
		t.Error("negative frequency must fail")
	}
	if _, err := Run(Config{Elements: elems, Freqs: []float64{1}, Periods: 3, WarmupPeriods: 3}); err == nil {
		t.Error("warmup consuming the run must fail")
	}
}

func TestRunNoAccessStream(t *testing.T) {
	elems := []freshness.Element{{Lambda: 2, AccessProb: 1, Size: 1}}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{2},
		Periods:           40,
		WarmupPeriods:     4,
		AccessesPerPeriod: -0, // 0 -> default; use tiny positive? keep default
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// F(2,2) = 1 - e^-1 ≈ 0.632.
	if math.Abs(res.TimeAveragedPF-(1-math.Exp(-1))) > 0.05 {
		t.Errorf("time-averaged PF %v, want about %v", res.TimeAveragedPF, 1-math.Exp(-1))
	}
}

func TestSyncDisciplineString(t *testing.T) {
	if FixedOrderSync.String() != "fixed-order" || PoissonSync.String() != "poisson" {
		t.Error("discipline stringer broken")
	}
	if SyncDiscipline(5).String() == "" {
		t.Error("unknown discipline must still print")
	}
}
