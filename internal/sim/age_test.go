package sim

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/workload"
)

func TestRunAgeMatchesClosedForm(t *testing.T) {
	// Uniform allocation funds every element, keeping the analytic
	// perceived age finite so the two can be compared.
	spec := workload.TableTwo()
	spec.NumObjects = 200
	spec.UpdatesPerPeriod = 400
	spec.SyncsPerPeriod = 100
	spec.Theta = 1.0
	spec.Seed = 5
	elems, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	freqs := make([]float64, len(elems))
	for i := range freqs {
		freqs[i] = spec.SyncsPerPeriod / float64(len(elems))
	}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             freqs,
		Periods:           80,
		WarmupPeriods:     8,
		AccessesPerPeriod: 1000,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.AnalyticAge, 0) || math.IsNaN(res.AnalyticAge) {
		t.Fatalf("analytic age = %v", res.AnalyticAge)
	}
	if rel := math.Abs(res.MeasuredAge-res.AnalyticAge) / res.AnalyticAge; rel > 0.05 {
		t.Errorf("measured age %v vs analytic %v (rel %.3f)", res.MeasuredAge, res.AnalyticAge, rel)
	}
}

func TestRunAgeStarvedElementGrows(t *testing.T) {
	// A changing element that is never refreshed accumulates age
	// roughly linearly: over a window of length T its time-averaged
	// age approaches T/2 (plus the pre-window backlog).
	elems := []freshness.Element{{ID: 0, Lambda: 10, AccessProb: 1, Size: 1}}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{0},
		Periods:           20,
		WarmupPeriods:     2,
		AccessesPerPeriod: 100,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.AnalyticAge, 1) {
		t.Errorf("analytic age for an unrefreshed element = %v, want +Inf", res.AnalyticAge)
	}
	// Goes stale almost immediately (λ=10); measured mean age over
	// [2, 20] is about mean of (t - t0) ≈ 11 - small.
	if res.MeasuredAge < 8 || res.MeasuredAge > 12 {
		t.Errorf("measured age %v, want about 11", res.MeasuredAge)
	}
}

func TestRunAgeUnchangingElementZero(t *testing.T) {
	elems := []freshness.Element{{ID: 0, Lambda: 0, AccessProb: 1, Size: 1}}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{0},
		Periods:           10,
		WarmupPeriods:     1,
		AccessesPerPeriod: 100,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredAge != 0 || res.AnalyticAge != 0 {
		t.Errorf("unchanging element: measured %v analytic %v, want 0", res.MeasuredAge, res.AnalyticAge)
	}
}

func TestRunAgePoissonDisciplineNaN(t *testing.T) {
	elems := []freshness.Element{{ID: 0, Lambda: 1, AccessProb: 1, Size: 1}}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{2},
		Periods:           10,
		WarmupPeriods:     1,
		AccessesPerPeriod: 100,
		Discipline:        PoissonSync,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.AnalyticAge) {
		t.Errorf("poisson analytic age = %v, want NaN (not implemented)", res.AnalyticAge)
	}
	if res.MeasuredAge <= 0 {
		t.Errorf("poisson measured age = %v, want positive", res.MeasuredAge)
	}
}
