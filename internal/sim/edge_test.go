package sim

import (
	"testing"

	"freshen/internal/freshness"
)

func TestRunZeroMassProfileDisablesAccesses(t *testing.T) {
	// All access probabilities zero: the request generator is off and
	// monitored PF is reported as 0 (no accesses), while time-averaged
	// freshness still measures.
	elems := []freshness.Element{
		{ID: 0, Lambda: 2, AccessProb: 0, Size: 1},
		{ID: 1, Lambda: 2, AccessProb: 0, Size: 1},
	}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{2, 2},
		Periods:           20,
		WarmupPeriods:     2,
		AccessesPerPeriod: 5000,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 0 || res.MonitoredPF != 0 {
		t.Errorf("accesses %d monitored %v, want 0", res.Accesses, res.MonitoredPF)
	}
	if res.AvgFreshness <= 0 {
		t.Errorf("avg freshness %v, want positive (syncs still run)", res.AvgFreshness)
	}
	if res.Syncs == 0 {
		t.Error("no syncs performed")
	}
}

func TestRunPerElementStats(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 0, AccessProb: 0.75, Size: 1}, // always fresh
		{ID: 1, Lambda: 20, AccessProb: 0.25, Size: 1},
	}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{0, 1},
		Periods:           40,
		WarmupPeriods:     4,
		AccessesPerPeriod: 4000,
		CollectPerElement: true,
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerElement) != 2 {
		t.Fatalf("PerElement has %d entries", len(res.PerElement))
	}
	pe := res.PerElement
	if pe[0].Freshness != 1 || pe[0].Age != 0 {
		t.Errorf("unchanging element: %+v", pe[0])
	}
	if pe[1].Freshness > 0.2 {
		t.Errorf("volatile under-refreshed element freshness %v, want low", pe[1].Freshness)
	}
	if pe[1].Age <= 0 {
		t.Errorf("volatile element age %v, want positive", pe[1].Age)
	}
	// Per-element counters roll up to the totals.
	if pe[0].Accesses+pe[1].Accesses != res.Accesses {
		t.Errorf("per-element accesses %d+%d != total %d", pe[0].Accesses, pe[1].Accesses, res.Accesses)
	}
	if pe[0].FreshAccesses+pe[1].FreshAccesses != res.FreshAccesses {
		t.Error("per-element fresh accesses do not roll up")
	}
	// Access shares follow the profile.
	share := float64(pe[0].Accesses) / float64(res.Accesses)
	if share < 0.72 || share > 0.78 {
		t.Errorf("element 0 access share %v, want about 0.75", share)
	}

	// Off by default.
	res2, err := Run(Config{
		Elements: elems, Freqs: []float64{0, 1},
		Periods: 10, WarmupPeriods: 1, AccessesPerPeriod: 100, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.PerElement != nil {
		t.Error("PerElement should be nil unless requested")
	}
}

func TestRunPoissonSyncCounts(t *testing.T) {
	// Under the Poisson discipline the sync count is itself Poisson
	// with mean Σf × window; verify it lands in a plausible band.
	elems := []freshness.Element{{ID: 0, Lambda: 1, AccessProb: 1, Size: 1}}
	res, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{4},
		Periods:           100,
		WarmupPeriods:     10,
		AccessesPerPeriod: 100,
		Discipline:        PoissonSync,
		Seed:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 * res.MeasuredTime
	if float64(res.Syncs) < want*0.8 || float64(res.Syncs) > want*1.2 {
		t.Errorf("poisson syncs %d, want about %v", res.Syncs, want)
	}
}

func TestRunWarmupExcludesInitialFreshness(t *testing.T) {
	// A never-refreshed volatile element starts fresh; without warmup
	// the initial fresh interval pollutes the measurement, with warmup
	// it does not. Compare the two directly.
	elems := []freshness.Element{{ID: 0, Lambda: 0.5, AccessProb: 1, Size: 1}}
	short, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{0},
		Periods:           10,
		WarmupPeriods:     1,
		AccessesPerPeriod: 100,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Run(Config{
		Elements:          elems,
		Freqs:             []float64{0},
		Periods:           10,
		WarmupPeriods:     8,
		AccessesPerPeriod: 100,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With λ=0.5 the element is likely still fresh early on; the late
	// window must see less freshness than the early-inclusive one.
	if long.TimeAveragedPF > short.TimeAveragedPF+1e-9 {
		t.Errorf("longer warmup measured more freshness: %v vs %v",
			long.TimeAveragedPF, short.TimeAveragedPF)
	}
}
