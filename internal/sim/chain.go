package sim

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
	"freshen/internal/stats"
)

// ChainConfig describes one two-level chained simulation: the source's
// update generator feeds a regional mirror (synced at UpFreqs), which
// in turn feeds an edge mirror (synced at EdgeFreqs). It is the
// engine-feeding-engine fixture for internal/freshness.ChainFreshness:
// the edge's sync events copy whatever the regional state machine holds
// at that instant, exactly as a downstream httpmirror polls an
// upstream one.
type ChainConfig struct {
	// Elements is the catalog; AccessProb drives the edge's request
	// generator.
	Elements []freshness.Element
	// UpFreqs is the regional level's refresh schedule against the
	// source, element-aligned (refreshes per period).
	UpFreqs []float64
	// EdgeFreqs is the edge level's refresh schedule against the
	// regional mirror, element-aligned.
	EdgeFreqs []float64
	// PeriodLength is the simulation-clock length of one sync period;
	// 0 means 1.0.
	PeriodLength float64
	// Periods is the number of periods to simulate; 0 means 20.
	Periods int
	// WarmupPeriods are excluded from all metrics; 0 means 2.
	WarmupPeriods int
	// AccessesPerPeriod is the aggregate user request rate against the
	// edge; 0 means 10 000.
	AccessesPerPeriod float64
	// Discipline selects the refresh spacing at both levels (default
	// FixedOrderSync).
	Discipline SyncDiscipline
	// CollectPerElement fills ChainResult.PerElement.
	CollectPerElement bool
	// Seed makes the run deterministic.
	Seed int64
}

func (c ChainConfig) withDefaults() ChainConfig {
	if c.PeriodLength == 0 {
		c.PeriodLength = 1
	}
	if c.Periods == 0 {
		c.Periods = 20
	}
	if c.WarmupPeriods == 0 {
		c.WarmupPeriods = 2
	}
	if c.AccessesPerPeriod == 0 {
		c.AccessesPerPeriod = 10000
	}
	return c
}

// Validate checks the configuration.
func (c ChainConfig) Validate() error {
	if err := freshness.ValidateElements(c.Elements); err != nil {
		return err
	}
	if len(c.UpFreqs) != len(c.Elements) || len(c.EdgeFreqs) != len(c.Elements) {
		return fmt.Errorf("sim: %d upstream and %d edge frequencies for %d elements",
			len(c.UpFreqs), len(c.EdgeFreqs), len(c.Elements))
	}
	for i := range c.Elements {
		if f := c.UpFreqs[i]; f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("sim: element %d has invalid upstream frequency %v", i, f)
		}
		if f := c.EdgeFreqs[i]; f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("sim: element %d has invalid edge frequency %v", i, f)
		}
	}
	if c.PeriodLength < 0 || c.Periods < 0 || c.WarmupPeriods < 0 || c.AccessesPerPeriod < 0 {
		return fmt.Errorf("sim: negative durations or rates")
	}
	cd := c.withDefaults()
	if cd.WarmupPeriods >= cd.Periods {
		return fmt.Errorf("sim: warmup (%d periods) consumes the whole run (%d periods)", cd.WarmupPeriods, cd.Periods)
	}
	return nil
}

// ChainResult is what the Freshness Evaluator reports for one chained
// run. End-to-end metrics (the edge level) carry the same names as the
// single-level Result so harnesses can treat the two uniformly.
type ChainResult struct {
	// MonitoredPF is the fraction of edge accesses that found an
	// end-to-end fresh copy.
	MonitoredPF float64
	// TimeAveragedPF is Σ pᵢ · (measured end-to-end freshness of the
	// edge copy of element i).
	TimeAveragedPF float64
	// UpstreamPF is the regional level's Σ pᵢ · freshness — always ≥
	// TimeAveragedPF, since an edge copy is fresh only through a fresh
	// regional copy.
	UpstreamPF float64
	// AnalyticPF is the chain closed form Σ pᵢ·F(f1ᵢ,λᵢ)·F(f2ᵢ,λᵢ) for
	// the configured discipline.
	AnalyticPF float64
	// AvgFreshness is the unweighted mean of measured end-to-end
	// element freshness.
	AvgFreshness float64
	// Event counts over the measurement window.
	Accesses      int
	FreshAccesses int
	Updates       int
	Syncs         int // regional-level syncs
	EdgeSyncs     int
	// MeasuredTime is the length of the measurement window.
	MeasuredTime float64
	// PerElement holds per-element end-to-end measurements when
	// CollectPerElement is set (nil otherwise).
	PerElement []ElementStats
}

// RunChain executes one chained simulation. Both mirrors start in sync
// with the source. Per element the engine tracks two bits: whether the
// regional copy matches the source, and whether the edge copy matches
// the source. An update invalidates both (versions never recur); a
// regional sync restores the regional bit; an edge sync copies the
// regional bit — polling a stale regional copy leaves the edge stale,
// which is exactly the censoring the chain closed form integrates over.
func RunChain(cfg ChainConfig) (ChainResult, error) {
	if err := cfg.Validate(); err != nil {
		return ChainResult{}, err
	}
	cfg = cfg.withDefaults()
	n := len(cfg.Elements)
	horizon := cfg.PeriodLength * float64(cfg.Periods)
	measureStart := cfg.PeriodLength * float64(cfg.WarmupPeriods)

	r := stats.NewRNG(cfg.Seed)
	updateRNG := r.Split()
	syncRNG := r.Split()
	edgeRNG := r.Split()
	accessRNG := r.Split()

	var accessAlias *stats.Alias
	accessRate := cfg.AccessesPerPeriod / cfg.PeriodLength
	if accessRate > 0 {
		weights := make([]float64, n)
		var mass float64
		for i, e := range cfg.Elements {
			weights[i] = e.AccessProb
			mass += e.AccessProb
		}
		if mass > 0 {
			var err error
			accessAlias, err = stats.NewAlias(weights)
			if err != nil {
				return ChainResult{}, err
			}
		}
	}

	// Two-level mirror state. regFresh[i] ⟹ nothing; edgeFresh[i] ⟹
	// regFresh[i] (an edge copy can only be fresh through a fresh
	// regional copy), maintained by construction below.
	regFresh := make([]bool, n)
	edgeFresh := make([]bool, n)
	regSince := make([]float64, n)  // valid while regFresh[i]
	edgeSince := make([]float64, n) // valid while edgeFresh[i]
	regTime := make([]float64, n)
	edgeTime := make([]float64, n)
	for i := range regFresh {
		regFresh[i] = true
		edgeFresh[i] = true
	}

	creditReg := func(i int, now float64) {
		if now > measureStart {
			start := regSince[i]
			if start < measureStart {
				start = measureStart
			}
			regTime[i] += now - start
		}
	}
	creditEdge := func(i int, now float64) {
		if now > measureStart {
			start := edgeSince[i]
			if start < measureStart {
				start = measureStart
			}
			edgeTime[i] += now - start
		}
	}

	q := &eventQueue{}
	for i, e := range cfg.Elements {
		if e.Lambda > 0 {
			rate := e.Lambda / cfg.PeriodLength
			q.push(event{time: updateRNG.ExpFloat64() / rate, kind: evUpdate, elem: i})
		}
	}
	armSync := func(rng *stats.RNG, freqs []float64, kind eventKind) {
		for i, f := range freqs {
			if f <= 0 {
				continue
			}
			interval := cfg.PeriodLength / f
			switch cfg.Discipline {
			case PoissonSync:
				q.push(event{time: rng.ExpFloat64() * interval, kind: kind, elem: i})
			default: // FixedOrderSync: random phase, then exact intervals
				q.push(event{time: rng.Float64() * interval, kind: kind, elem: i})
			}
		}
	}
	armSync(syncRNG, cfg.UpFreqs, evSync)
	armSync(edgeRNG, cfg.EdgeFreqs, evSyncEdge)
	if accessAlias != nil {
		q.push(event{time: accessRNG.ExpFloat64() / accessRate, kind: evAccess})
	}

	res := ChainResult{MeasuredTime: horizon - measureStart}
	var perElem []ElementStats
	if cfg.CollectPerElement {
		perElem = make([]ElementStats, n)
	}
	for q.Len() > 0 {
		ev := q.pop()
		if ev.time >= horizon {
			continue
		}
		switch ev.kind {
		case evUpdate:
			i := ev.elem
			if regFresh[i] {
				creditReg(i, ev.time)
				regFresh[i] = false
			}
			if edgeFresh[i] {
				creditEdge(i, ev.time)
				edgeFresh[i] = false
			}
			if ev.time > measureStart {
				res.Updates++
			}
			rate := cfg.Elements[i].Lambda / cfg.PeriodLength
			q.push(event{time: ev.time + updateRNG.ExpFloat64()/rate, kind: evUpdate, elem: i})

		case evSync:
			i := ev.elem
			if !regFresh[i] {
				regFresh[i] = true
				regSince[i] = ev.time
			}
			if ev.time > measureStart {
				res.Syncs++
			}
			interval := cfg.PeriodLength / cfg.UpFreqs[i]
			next := ev.time + interval
			if cfg.Discipline == PoissonSync {
				next = ev.time + syncRNG.ExpFloat64()*interval
			}
			q.push(event{time: next, kind: evSync, elem: i})

		case evSyncEdge:
			i := ev.elem
			// The edge copies the regional copy: a stale regional poll
			// cannot refresh the edge (and cannot un-refresh it either —
			// edgeFresh ⟹ regFresh, so a fresh edge never observes a
			// stale regional copy of a *newer* value).
			if regFresh[i] && !edgeFresh[i] {
				edgeFresh[i] = true
				edgeSince[i] = ev.time
			}
			if ev.time > measureStart {
				res.EdgeSyncs++
			}
			interval := cfg.PeriodLength / cfg.EdgeFreqs[i]
			next := ev.time + interval
			if cfg.Discipline == PoissonSync {
				next = ev.time + edgeRNG.ExpFloat64()*interval
			}
			q.push(event{time: next, kind: evSyncEdge, elem: i})

		case evAccess:
			i := accessAlias.Sample(accessRNG)
			if ev.time > measureStart {
				res.Accesses++
				if edgeFresh[i] {
					res.FreshAccesses++
				}
				if perElem != nil {
					perElem[i].Accesses++
					if edgeFresh[i] {
						perElem[i].FreshAccesses++
					}
				}
			}
			q.push(event{time: ev.time + accessRNG.ExpFloat64()/accessRate, kind: evAccess})
		}
	}

	for i := range regFresh {
		if regFresh[i] {
			creditReg(i, horizon)
		}
		if edgeFresh[i] {
			creditEdge(i, horizon)
		}
	}

	window := res.MeasuredTime
	var pfEdge, pfReg, avg float64
	for i, e := range cfg.Elements {
		frac := edgeTime[i] / window
		pfEdge += e.AccessProb * frac
		pfReg += e.AccessProb * regTime[i] / window
		avg += frac
	}
	res.TimeAveragedPF = pfEdge
	res.UpstreamPF = pfReg
	res.AvgFreshness = avg / float64(n)
	if res.Accesses > 0 {
		res.MonitoredPF = float64(res.FreshAccesses) / float64(res.Accesses)
	}
	if perElem != nil {
		for i := range perElem {
			perElem[i].Freshness = edgeTime[i] / window
			perElem[i].Age = math.NaN() // no chained age form implemented
		}
		res.PerElement = perElem
	}

	var pol freshness.Policy = freshness.FixedOrder{}
	if cfg.Discipline == PoissonSync {
		pol = freshness.PoissonOrder{}
	}
	analytic, err := freshness.ChainPerceived(pol, cfg.Elements, cfg.UpFreqs, cfg.EdgeFreqs)
	if err != nil {
		return ChainResult{}, err
	}
	res.AnalyticPF = analytic
	return res, nil
}
