package sim

import "container/heap"

// eventKind discriminates the event streams of Figure 4, plus the
// second sync level the chained engine adds.
type eventKind uint8

const (
	evUpdate   eventKind = iota // Update Generator -> Source
	evSync                      // Synchronization Scheduler -> Mirror (regional in a chain)
	evSyncEdge                  // edge-level sync in the chained engine (Edge <- Regional)
	evAccess                    // User Request Generator -> Mirror
)

// event is one scheduled occurrence. Each stream re-arms itself when
// its event fires, so the heap holds at most one update and one sync
// event per element plus one access event.
type event struct {
	time float64
	kind eventKind
	elem int
}

// eventQueue is a min-heap of events ordered by time; ties break by
// kind (updates before syncs before accesses, so a refresh that
// coincides with an update is conservatively treated as fetching the
// pre-update value; regional syncs before edge syncs, so a co-timed
// edge poll observes the just-refreshed regional copy) and then
// element index, keeping runs deterministic.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].elem < q[j].elem
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface.
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }

// Pop implements heap.Interface.
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// push is a convenience wrapper.
func (q *eventQueue) push(ev event) { heap.Push(q, ev) }

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event { return heap.Pop(q).(event) }
