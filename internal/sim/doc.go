// Package sim is the discrete-event simulator of the paper's Figure 4.
// A Source receives Poisson updates from the Update Generator; the
// Synchronization Scheduler replays a Fixed-Order (or Poisson) refresh
// timeline against the Mirror; the User Request Generator issues
// profile-distributed accesses; and the Freshness Evaluator scores the
// run in the paper's two modes — analytically, from the closed-form
// freshness of the schedule, and by monitoring, from the accesses and
// freshness intervals actually observed. Agreement between the two
// modes is the package's own validation (and a repository test).
package sim
