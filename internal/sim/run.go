package sim

import (
	"math"

	"freshen/internal/freshness"
	"freshen/internal/stats"
)

// Run executes one simulation. The Source starts in sync with the
// Mirror (every element fresh); the warmup periods let the system
// reach steady state before measurement begins.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	n := len(cfg.Elements)
	horizon := cfg.PeriodLength * float64(cfg.Periods)
	measureStart := cfg.PeriodLength * float64(cfg.WarmupPeriods)

	r := stats.NewRNG(cfg.Seed)
	updateRNG := r.Split()
	syncRNG := r.Split()
	accessRNG := r.Split()

	// The User Request Generator draws elements from the master
	// profile; an all-zero profile disables accesses entirely.
	var accessAlias *stats.Alias
	accessRate := cfg.AccessesPerPeriod / cfg.PeriodLength
	if accessRate > 0 {
		weights := make([]float64, n)
		var mass float64
		for i, e := range cfg.Elements {
			weights[i] = e.AccessProb
			mass += e.AccessProb
		}
		if mass > 0 {
			var err error
			accessAlias, err = stats.NewAlias(weights)
			if err != nil {
				return Result{}, err
			}
		}
	}

	// Mirror state. An element is fresh while the mirror's copy still
	// matches the source, i.e. no update has landed since its last
	// sync.
	freshSince := make([]float64, n) // valid while fresh[i]
	staleSince := make([]float64, n) // first un-synced change; valid while !fresh[i]
	freshTime := make([]float64, n)
	ageTime := make([]float64, n) // integral of age over the window
	fresh := make([]bool, n)
	for i := range fresh {
		fresh[i] = true
	}

	q := &eventQueue{}
	// Arm the update streams (Poisson, rate λᵢ per period).
	for i, e := range cfg.Elements {
		if e.Lambda > 0 {
			rate := e.Lambda / cfg.PeriodLength
			q.push(event{time: updateRNG.ExpFloat64() / rate, kind: evUpdate, elem: i})
		}
	}
	// Arm the sync streams.
	for i, f := range cfg.Freqs {
		if f <= 0 {
			continue
		}
		interval := cfg.PeriodLength / f
		switch cfg.Discipline {
		case PoissonSync:
			q.push(event{time: syncRNG.ExpFloat64() * interval, kind: evSync, elem: i})
		default: // FixedOrderSync: random phase, then exact intervals
			q.push(event{time: syncRNG.Float64() * interval, kind: evSync, elem: i})
		}
	}
	// Arm the access stream.
	if accessAlias != nil {
		q.push(event{time: accessRNG.ExpFloat64() / accessRate, kind: evAccess})
	}

	res := Result{MeasuredTime: horizon - measureStart}
	var perElem []ElementStats
	if cfg.CollectPerElement {
		perElem = make([]ElementStats, n)
	}
	for q.Len() > 0 {
		ev := q.pop()
		if ev.time >= horizon {
			continue
		}
		switch ev.kind {
		case evUpdate:
			i := ev.elem
			if fresh[i] {
				if ev.time > measureStart {
					start := freshSince[i]
					if start < measureStart {
						start = measureStart
					}
					freshTime[i] += ev.time - start
				}
				fresh[i] = false
				staleSince[i] = ev.time
			}
			if ev.time > measureStart {
				res.Updates++
			}
			rate := cfg.Elements[i].Lambda / cfg.PeriodLength
			q.push(event{time: ev.time + updateRNG.ExpFloat64()/rate, kind: evUpdate, elem: i})

		case evSync:
			i := ev.elem
			if !fresh[i] {
				ageTime[i] += ageIntegral(staleSince[i], measureStart, ev.time)
				fresh[i] = true
				freshSince[i] = ev.time
			}
			if ev.time > measureStart {
				res.Syncs++
			}
			interval := cfg.PeriodLength / cfg.Freqs[i]
			next := ev.time + interval
			if cfg.Discipline == PoissonSync {
				next = ev.time + syncRNG.ExpFloat64()*interval
			}
			q.push(event{time: next, kind: evSync, elem: i})

		case evAccess:
			i := accessAlias.Sample(accessRNG)
			if ev.time > measureStart {
				res.Accesses++
				if fresh[i] {
					res.FreshAccesses++
				}
				if perElem != nil {
					perElem[i].Accesses++
					if fresh[i] {
						perElem[i].FreshAccesses++
					}
				}
			}
			q.push(event{time: ev.time + accessRNG.ExpFloat64()/accessRate, kind: evAccess})
		}
	}

	// Close the books at the horizon: credit fresh time to elements
	// still fresh and age to elements still stale.
	for i := range fresh {
		if fresh[i] {
			start := freshSince[i]
			if start < measureStart {
				start = measureStart
			}
			if start < horizon {
				freshTime[i] += horizon - start
			}
		} else {
			ageTime[i] += ageIntegral(staleSince[i], measureStart, horizon)
		}
	}

	// Freshness Evaluator, both modes.
	window := res.MeasuredTime
	var pfTime, avg, age float64
	for i, e := range cfg.Elements {
		frac := freshTime[i] / window
		pfTime += e.AccessProb * frac
		avg += frac
		age += e.AccessProb * ageTime[i] / window
	}
	res.TimeAveragedPF = pfTime
	res.AvgFreshness = avg / float64(n)
	res.MeasuredAge = age
	if res.Accesses > 0 {
		res.MonitoredPF = float64(res.FreshAccesses) / float64(res.Accesses)
	}
	if perElem != nil {
		for i := range perElem {
			perElem[i].Freshness = freshTime[i] / window
			perElem[i].Age = ageTime[i] / window
		}
		res.PerElement = perElem
	}

	var pol freshness.Policy = freshness.FixedOrder{}
	if cfg.Discipline == PoissonSync {
		pol = freshness.PoissonOrder{}
	}
	// Frequencies are per period; the closed form is per unit time, so
	// rates and frequencies share the period unit and cancel.
	analytic, err := freshness.Perceived(pol, cfg.Elements, cfg.Freqs)
	if err != nil {
		return Result{}, err
	}
	res.AnalyticPF = analytic
	if cfg.Discipline == PoissonSync {
		res.AnalyticAge = math.NaN()
	} else {
		// The closed form is per unit time; the simulator's frequencies
		// and rates are per period, so scale by PeriodLength.
		aa, err := freshness.PerceivedAge(cfg.Elements, cfg.Freqs)
		if err != nil {
			return Result{}, err
		}
		res.AnalyticAge = aa * cfg.PeriodLength
	}
	return res, nil
}

// ageIntegral integrates the age of a copy that went stale at t0 over
// the part of [t0, t] inside the measurement window starting at w:
// age at time s is s − t0.
func ageIntegral(t0, w, t float64) float64 {
	lo := t0
	if w > lo {
		lo = w
	}
	if t <= lo {
		return 0
	}
	a, b := lo-t0, t-t0
	return (b*b - a*a) / 2
}
