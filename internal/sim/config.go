package sim

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
)

// SyncDiscipline selects how the scheduler spaces an element's
// refreshes.
type SyncDiscipline int

// Disciplines.
const (
	// FixedOrderSync refreshes each element at exact intervals 1/fᵢ,
	// the paper's policy.
	FixedOrderSync SyncDiscipline = iota
	// PoissonSync refreshes each element at exponentially distributed
	// intervals with rate fᵢ, used to validate the Poisson-order
	// closed form in the policy ablation.
	PoissonSync
)

// String implements fmt.Stringer.
func (d SyncDiscipline) String() string {
	switch d {
	case FixedOrderSync:
		return "fixed-order"
	case PoissonSync:
		return "poisson"
	default:
		return fmt.Sprintf("SyncDiscipline(%d)", int(d))
	}
}

// Config describes one simulation run.
type Config struct {
	// Elements is the mirror; AccessProb drives the request generator.
	Elements []freshness.Element
	// Freqs is the refresh schedule, element-aligned (refreshes per
	// period).
	Freqs []float64
	// PeriodLength is the simulation-clock length of one sync period;
	// 0 means 1.0.
	PeriodLength float64
	// Periods is the number of periods to simulate; 0 means 20.
	Periods int
	// WarmupPeriods are excluded from all metrics so the all-fresh
	// initial state does not bias the measurement; 0 means 2.
	WarmupPeriods int
	// AccessesPerPeriod is the aggregate user request rate; 0 means
	// 10 000.
	AccessesPerPeriod float64
	// Discipline selects the refresh spacing (default FixedOrderSync).
	Discipline SyncDiscipline
	// CollectPerElement fills Result.PerElement (costs O(N) memory in
	// the result; the big sweeps leave it off).
	CollectPerElement bool
	// Seed makes the run deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.PeriodLength == 0 {
		c.PeriodLength = 1
	}
	if c.Periods == 0 {
		c.Periods = 20
	}
	if c.WarmupPeriods == 0 {
		c.WarmupPeriods = 2
	}
	if c.AccessesPerPeriod == 0 {
		c.AccessesPerPeriod = 10000
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := freshness.ValidateElements(c.Elements); err != nil {
		return err
	}
	if len(c.Freqs) != len(c.Elements) {
		return fmt.Errorf("sim: %d frequencies for %d elements", len(c.Freqs), len(c.Elements))
	}
	for i, f := range c.Freqs {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("sim: element %d has invalid frequency %v", i, f)
		}
	}
	if c.PeriodLength < 0 || c.Periods < 0 || c.WarmupPeriods < 0 || c.AccessesPerPeriod < 0 {
		return fmt.Errorf("sim: negative durations or rates")
	}
	cd := c.withDefaults()
	if cd.WarmupPeriods >= cd.Periods {
		return fmt.Errorf("sim: warmup (%d periods) consumes the whole run (%d periods)", cd.WarmupPeriods, cd.Periods)
	}
	return nil
}

// Result is what the Freshness Evaluator reports for one run.
type Result struct {
	// MonitoredPF is the fraction of user accesses that found a fresh
	// copy — perceived freshness as the paper's Definition 3/4 defines
	// it, measured by monitoring.
	MonitoredPF float64
	// TimeAveragedPF is Σ pᵢ · (measured time-averaged freshness of
	// element i): the evaluator's integration mode, free of access
	// sampling noise.
	TimeAveragedPF float64
	// AnalyticPF is the closed-form prediction Σ pᵢ·F(fᵢ, λᵢ) for the
	// configured discipline.
	AnalyticPF float64
	// AvgFreshness is the unweighted mean of measured time-averaged
	// element freshness (the GF metric).
	AvgFreshness float64
	// MeasuredAge is the profile-weighted measured time-averaged age
	// Σ pᵢ·Āᵢ (age = time since the first un-synced change; 0 while
	// fresh).
	MeasuredAge float64
	// AnalyticAge is the closed-form prediction of MeasuredAge under
	// the Fixed-Order policy (NaN for the Poisson discipline, which
	// has no implemented closed form).
	AnalyticAge float64
	// Event counts over the measurement window.
	Accesses      int
	FreshAccesses int
	Updates       int
	Syncs         int
	// MeasuredTime is the length of the measurement window.
	MeasuredTime float64
	// PerElement holds per-element measurements when
	// Config.CollectPerElement is set (nil otherwise).
	PerElement []ElementStats
}

// ElementStats is one element's measured behaviour over the window.
type ElementStats struct {
	// Freshness is the measured time-averaged freshness.
	Freshness float64
	// Age is the measured time-averaged age.
	Age float64
	// Accesses and FreshAccesses count this element's lookups.
	Accesses      int
	FreshAccesses int
}
