package sim

import (
	"math"
	"testing"

	"freshen/internal/freshness"
)

func TestRunPushAbundantBandwidthNearPerfect(t *testing.T) {
	// With service capacity far above the update volume, every change
	// is repaired almost immediately: PF approaches 1.
	elems := []freshness.Element{
		{ID: 0, Lambda: 2, AccessProb: 0.5, Size: 1},
		{ID: 1, Lambda: 1, AccessProb: 0.5, Size: 1},
	}
	res, err := RunPush(PushConfig{
		Elements:          elems,
		Bandwidth:         300,
		Periods:           40,
		WarmupPeriods:     4,
		AccessesPerPeriod: 2000,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeAveragedPF < 0.98 {
		t.Errorf("abundant push PF = %v, want near 1", res.TimeAveragedPF)
	}
	if res.MeasuredAge > 0.01 {
		t.Errorf("abundant push age = %v, want near 0", res.MeasuredAge)
	}
}

func TestRunPushDedupe(t *testing.T) {
	// A single element updating much faster than the server can fetch:
	// the dedupe means the server refreshes it once per service slot,
	// never building a backlog of duplicate work.
	elems := []freshness.Element{{ID: 0, Lambda: 100, AccessProb: 1, Size: 1}}
	res, err := RunPush(PushConfig{
		Elements:          elems,
		Bandwidth:         10,
		Periods:           30,
		WarmupPeriods:     3,
		AccessesPerPeriod: 1000,
		Seed:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	window := res.MeasuredTime
	// At most one sync per service interval.
	if float64(res.Syncs) > 10*window*1.02 {
		t.Errorf("%d syncs in %v periods at service rate 10", res.Syncs, window)
	}
	if res.Syncs == 0 {
		t.Error("no syncs performed")
	}
}

func TestRunPushPriorityBeatsFIFOUnderOverload(t *testing.T) {
	// Overloaded server (updates >> bandwidth), skewed interest: the
	// priority queue protects the hot element, FIFO does not.
	elems := []freshness.Element{
		{ID: 0, Lambda: 5, AccessProb: 0.9, Size: 1},
	}
	for i := 1; i < 50; i++ {
		elems = append(elems, freshness.Element{ID: i, Lambda: 5, AccessProb: 0.1 / 49, Size: 1})
	}
	cfg := PushConfig{
		Elements:          elems,
		Bandwidth:         25, // half the 250 updates/period
		Periods:           40,
		WarmupPeriods:     4,
		AccessesPerPeriod: 5000,
		Seed:              3,
	}
	fifo, err := RunPush(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Priority = true
	prio, err := RunPush(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prio.TimeAveragedPF <= fifo.TimeAveragedPF+0.05 {
		t.Errorf("priority %v not clearly above FIFO %v under overload",
			prio.TimeAveragedPF, fifo.TimeAveragedPF)
	}
}

func TestRunPushValidation(t *testing.T) {
	elems := []freshness.Element{{ID: 0, Lambda: 1, AccessProb: 1, Size: 1}}
	if _, err := RunPush(PushConfig{Elements: elems, Bandwidth: 0}); err == nil {
		t.Error("zero bandwidth must fail")
	}
	if _, err := RunPush(PushConfig{Bandwidth: 1}); err == nil {
		t.Error("empty mirror must fail")
	}
}

func TestRunPushMonitoredMatchesTimeAveraged(t *testing.T) {
	elems := []freshness.Element{
		{ID: 0, Lambda: 3, AccessProb: 0.6, Size: 1},
		{ID: 1, Lambda: 1, AccessProb: 0.4, Size: 1},
	}
	res, err := RunPush(PushConfig{
		Elements:          elems,
		Bandwidth:         2,
		Periods:           80,
		WarmupPeriods:     8,
		AccessesPerPeriod: 20000,
		Seed:              4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MonitoredPF-res.TimeAveragedPF) > 0.02 {
		t.Errorf("monitored %v vs time-averaged %v", res.MonitoredPF, res.TimeAveragedPF)
	}
}
