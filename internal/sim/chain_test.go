package sim

import (
	"math"
	"testing"

	"freshen/internal/freshness"
)

func chainElems(n int) []freshness.Element {
	elems := make([]freshness.Element, n)
	for i := range elems {
		elems[i] = freshness.Element{
			ID:         i,
			Lambda:     0.5 + float64(i%5),
			AccessProb: 1 / float64(n),
			Size:       1,
		}
	}
	return elems
}

// TestRunChainDegeneratesToSingleLevel: with the regional level syncing
// so often it is effectively always fresh, the edge's measured
// end-to-end freshness must match the *single-level* closed form for
// the edge schedule — the chained engine collapses to the plain one.
func TestRunChainDegeneratesToSingleLevel(t *testing.T) {
	elems := chainElems(8)
	up := make([]float64, len(elems))
	edge := make([]float64, len(elems))
	for i := range elems {
		up[i] = 500 // ~always fresh upstream
		edge[i] = 1 + float64(i%3)
	}
	res, err := RunChain(ChainConfig{
		Elements: elems, UpFreqs: up, EdgeFreqs: edge,
		Periods: 400, WarmupPeriods: 4, AccessesPerPeriod: 1e-9, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	single, err := freshness.Perceived(freshness.FixedOrder{}, elems, edge)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TimeAveragedPF-single) > 0.02 {
		t.Errorf("chain PF with perfect upstream = %v, want single-level %v", res.TimeAveragedPF, single)
	}
}

// TestRunChainEdgeNeverFresherThanRegional pins the structural
// invariant the engine maintains: an edge copy is fresh only through a
// fresh regional copy, so the regional level's PF bounds the edge's
// from above — in every run, not just in expectation.
func TestRunChainEdgeNeverFresherThanRegional(t *testing.T) {
	elems := chainElems(16)
	up := make([]float64, len(elems))
	edge := make([]float64, len(elems))
	for i := range elems {
		up[i] = 0.5 + float64(i%4)
		edge[i] = 0.5 + float64((i+2)%4)
	}
	for seed := int64(0); seed < 5; seed++ {
		for _, d := range []SyncDiscipline{FixedOrderSync, PoissonSync} {
			res, err := RunChain(ChainConfig{
				Elements: elems, UpFreqs: up, EdgeFreqs: edge,
				Periods: 60, WarmupPeriods: 4, AccessesPerPeriod: 1e-9,
				Discipline: d, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.TimeAveragedPF > res.UpstreamPF+1e-12 {
				t.Errorf("discipline %v seed %d: edge PF %v exceeds regional PF %v",
					d, seed, res.TimeAveragedPF, res.UpstreamPF)
			}
			if res.AnalyticPF < 0 || res.AnalyticPF > 1 {
				t.Errorf("analytic chain PF %v outside [0,1]", res.AnalyticPF)
			}
		}
	}
}

// TestRunChainMonitoredAgreesWithTimeAveraged: with real access
// sampling on, the monitored end-to-end PF and the time-averaged one
// estimate the same quantity.
func TestRunChainMonitoredAgreesWithTimeAveraged(t *testing.T) {
	elems := chainElems(8)
	up := []float64{2, 2, 2, 2, 2, 2, 2, 2}
	edge := []float64{2, 2, 2, 2, 2, 2, 2, 2}
	res, err := RunChain(ChainConfig{
		Elements: elems, UpFreqs: up, EdgeFreqs: edge,
		Periods: 200, WarmupPeriods: 4, AccessesPerPeriod: 2000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 {
		t.Fatal("no accesses sampled")
	}
	if math.Abs(res.MonitoredPF-res.TimeAveragedPF) > 0.02 {
		t.Errorf("monitored PF %v vs time-averaged %v", res.MonitoredPF, res.TimeAveragedPF)
	}
}

// TestRunChainValidation covers the config error paths.
func TestRunChainValidation(t *testing.T) {
	elems := chainElems(2)
	ok := []float64{1, 1}
	cases := []ChainConfig{
		{Elements: elems, UpFreqs: []float64{1}, EdgeFreqs: ok},
		{Elements: elems, UpFreqs: ok, EdgeFreqs: []float64{1}},
		{Elements: elems, UpFreqs: []float64{-1, 1}, EdgeFreqs: ok},
		{Elements: elems, UpFreqs: ok, EdgeFreqs: []float64{math.NaN(), 1}},
		{Elements: elems, UpFreqs: ok, EdgeFreqs: ok, Periods: 2, WarmupPeriods: 2},
	}
	for i, cfg := range cases {
		if _, err := RunChain(cfg); err == nil {
			t.Errorf("case %d: invalid chain config accepted", i)
		}
	}
}
