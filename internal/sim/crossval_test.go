// Cross-validation wiring lives in an external test package: testkit
// imports sim to drive the simulations, so these tests must sit
// outside package sim to avoid an import cycle.
package sim_test

import (
	"fmt"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/sim"
	"freshen/internal/solver"
	"freshen/internal/testkit"
)

func optimalSchedule(t *testing.T, elems []freshness.Element, bandwidth float64, pol freshness.Policy) []float64 {
	t.Helper()
	sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: bandwidth, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return sol.Freqs
}

// TestCrossValidationCoreProblem validates the paper's core closed
// form against event-driven simulation: optimal unit-size schedules at
// three mirror scales, element by element. Every run is seeded, so a
// pass is deterministic.
func TestCrossValidationCoreProblem(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			if n == 1000 && testing.Short() {
				t.Skip("large cross-validation skipped in -short mode")
			}
			elems := testkit.RandomElements(int64(100+n), n, false)
			freqs := optimalSchedule(t, elems, float64(n)/2, nil)
			testkit.CrossValidate(t, elems, freqs, testkit.CrossValOptions{Seed: int64(n)})
		})
	}
}

// TestCrossValidationVariableSizes repeats the validation for the §5
// refinement: transfer sizes spread over three decades change which
// elements get funded, not the freshness a funded frequency delivers —
// and the simulation must agree.
func TestCrossValidationVariableSizes(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			if n == 1000 && testing.Short() {
				t.Skip("large cross-validation skipped in -short mode")
			}
			elems := testkit.RandomElements(int64(200+n), n, true)
			var budget float64
			for _, e := range elems {
				budget += e.Lambda * e.Size
			}
			freqs := optimalSchedule(t, elems, budget/4, nil)
			testkit.CrossValidate(t, elems, freqs, testkit.CrossValOptions{Seed: int64(2 * n)})
		})
	}
}

// TestCrossValidationPoissonDiscipline validates the ablation policy's
// closed form f/(f+λ) under the matching Poisson refresh discipline.
func TestCrossValidationPoissonDiscipline(t *testing.T) {
	elems := testkit.RandomElements(42, 100, false)
	freqs := optimalSchedule(t, elems, 50, freshness.PoissonOrder{})
	testkit.CrossValidate(t, elems, freqs, testkit.CrossValOptions{
		Seed:       3,
		Discipline: sim.PoissonSync,
	})
}
