// Chained cross-validation wiring, external for the same import-cycle
// reason as crossval_test.go: testkit imports sim.
package sim_test

import (
	"fmt"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/sim"
	"freshen/internal/testkit"
)

// chainSchedules water-fills a per-level budget at each chain level
// independently — the shape SplitBudget produces — giving realistic
// heterogeneous schedules for the validation.
func chainSchedules(t *testing.T, elems []freshness.Element, upBudget, edgeBudget float64) (up, edge []float64) {
	t.Helper()
	return optimalSchedule(t, elems, upBudget, nil), optimalSchedule(t, elems, edgeBudget, nil)
}

// TestCrossValidationChain validates the two-level chain closed form
// (freshness.ChainFreshness) against the chained event-driven engine at
// three catalog scales, element by element, within the same intervals
// PR 3's single-level harness uses. Every run is seeded.
func TestCrossValidationChain(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			if n == 1000 && testing.Short() {
				t.Skip("large cross-validation skipped in -short mode")
			}
			elems := testkit.RandomElements(int64(300+n), n, false)
			// A 60/40 split of a global budget across the levels: the
			// upstream level is typically funded harder (it serves every
			// edge), but nothing in the validation depends on that.
			up, edge := chainSchedules(t, elems, 0.6*float64(n), 0.4*float64(n))
			testkit.CrossValidateChain(t, elems, up, edge, testkit.CrossValOptions{Seed: int64(5 * n)})
		})
	}
}

// TestCrossValidationChainPoisson validates the Poisson-discipline
// chain form f1/(f1+λ) · f2/(f2+λ) under matching Poisson refresh
// spacing at both levels.
func TestCrossValidationChainPoisson(t *testing.T) {
	elems := testkit.RandomElements(77, 100, false)
	up, edge := chainSchedules(t, elems, 60, 40)
	testkit.CrossValidateChain(t, elems, up, edge, testkit.CrossValOptions{
		Seed:       13,
		Discipline: sim.PoissonSync,
	})
}
