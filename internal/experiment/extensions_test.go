package experiment

import (
	"math"
	"testing"
)

func TestRunSensitivityShapes(t *testing.T) {
	res, err := RunSensitivity(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// PF beats GF at every dispersion and every bandwidth ratio.
	for i := range res.StdDevPF.X {
		if res.StdDevPF.Y[i] <= res.StdDevGF.Y[i] {
			t.Errorf("stddev %v: PF %v not above GF %v",
				res.StdDevPF.X[i], res.StdDevPF.Y[i], res.StdDevGF.Y[i])
		}
	}
	for i := range res.BandwidthPF.X {
		if res.BandwidthPF.Y[i] <= res.BandwidthGF.Y[i] {
			t.Errorf("bandwidth frac %v: PF %v not above GF %v",
				res.BandwidthPF.X[i], res.BandwidthPF.Y[i], res.BandwidthGF.Y[i])
		}
	}
	// Both techniques improve with bandwidth; PF's *relative*
	// advantage is largest when bandwidth is scarce.
	n := len(res.BandwidthPF.Y)
	for i := 1; i < n; i++ {
		if res.BandwidthPF.Y[i] <= res.BandwidthPF.Y[i-1] {
			t.Error("PF did not improve with bandwidth")
		}
	}
	firstRatio := res.BandwidthPF.Y[0] / res.BandwidthGF.Y[0]
	lastRatio := res.BandwidthPF.Y[n-1] / res.BandwidthGF.Y[n-1]
	if firstRatio <= lastRatio {
		t.Errorf("PF/GF advantage should shrink with bandwidth: %v -> %v", firstRatio, lastRatio)
	}
}

func TestRunPushShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("push simulation sweep is slow; skipped in -short mode")
	}
	res, err := RunPush(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		// Priority push dominates FIFO push at every bandwidth (it
		// spends the same cooperation budget profile-aware).
		if p.PushPriorityPF < p.PushFIFOPF-0.01 {
			t.Errorf("B=%v: priority push %v below FIFO push %v", p.Bandwidth, p.PushPriorityPF, p.PushFIFOPF)
		}
	}
	// Scarcity regime (bandwidth far below the 1000 updates/period):
	// profile-aware pull beats FIFO push.
	scarce := res.Points[0]
	if scarce.PullPF <= scarce.PushFIFOPF {
		t.Errorf("scarce B=%v: pull %v not above FIFO push %v",
			scarce.Bandwidth, scarce.PullPF, scarce.PushFIFOPF)
	}
	// Abundance regime: push overtakes the fixed pull schedule.
	rich := res.Points[len(res.Points)-1]
	if rich.PushFIFOPF <= rich.PullPF {
		t.Errorf("rich B=%v: FIFO push %v not above pull %v",
			rich.Bandwidth, rich.PushFIFOPF, rich.PullPF)
	}
}

func TestRunAgeShapes(t *testing.T) {
	res, err := RunAge(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		// The freshness optimum starves elements, so its perceived age
		// is infinite; the age optimum keeps age finite everywhere.
		if p.StarvedFresh == 0 {
			t.Errorf("θ=%v: PF optimum starved no one (unexpected for B=250, U=1000)", p.Theta)
		}
		if !isInf(p.FreshOptAge) {
			t.Errorf("θ=%v: PF-opt age %v, want +Inf with starved elements", p.Theta, p.FreshOptAge)
		}
		if isInf(p.AgeOptAge) || p.AgeOptAge <= 0 {
			t.Errorf("θ=%v: age-opt age %v, want finite positive", p.Theta, p.AgeOptAge)
		}
		// Each schedule wins its own metric.
		if p.AgeOptPF >= p.FreshOptPF {
			t.Errorf("θ=%v: age-opt PF %v not below PF-opt %v", p.Theta, p.AgeOptPF, p.FreshOptPF)
		}
		// The PF sacrifice for bounded age stays modest.
		if p.FreshOptPF-p.AgeOptPF > 0.15 {
			t.Errorf("θ=%v: age-opt gives up %v PF", p.Theta, p.FreshOptPF-p.AgeOptPF)
		}
	}
}

func isInf(v float64) bool { return math.IsInf(v, 0) }

func TestRunHierarchicalShapes(t *testing.T) {
	res, err := RunHierarchical(Options{ClusterN: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.HierPF < p.FlatPF {
			t.Errorf("K=%d: multi-stage %v below flat %v", p.K, p.HierPF, p.FlatPF)
		}
		if p.HierPF > res.ExactPF+1e-9 {
			t.Errorf("K=%d: multi-stage %v beats exact %v", p.K, p.HierPF, res.ExactPF)
		}
	}
	// The revisionist claim: even at the smallest K the multi-stage
	// heuristic lands within 2% of the exact optimum.
	first := res.Points[0]
	if res.ExactPF-first.HierPF > 0.02*res.ExactPF {
		t.Errorf("K=%d multi-stage %v too far below exact %v", first.K, first.HierPF, res.ExactPF)
	}
}

func TestRunQuantizeShapes(t *testing.T) {
	res, err := RunQuantize(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.QuantizedPF > p.FractionalPF+1e-9 {
			t.Errorf("B=%v: quantized %v above fractional %v", p.Bandwidth, p.QuantizedPF, p.FractionalPF)
		}
		if loss := p.FractionalPF - p.QuantizedPF; loss > 0.02 {
			t.Errorf("B=%v: quantization loss %v too large", p.Bandwidth, loss)
		}
		if p.Slots != int(p.Bandwidth) {
			t.Errorf("B=%v: %d slots", p.Bandwidth, p.Slots)
		}
	}
	// The loss shrinks as the budget grows.
	first := res.Points[0].FractionalPF - res.Points[0].QuantizedPF
	last := res.Points[len(res.Points)-1].FractionalPF - res.Points[len(res.Points)-1].QuantizedPF
	if last >= first {
		t.Errorf("quantization loss did not shrink: %v -> %v", first, last)
	}
}
