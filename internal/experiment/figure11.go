package experiment

import (
	"freshen/internal/partition"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// Figure11Result reproduces Figure 11: Fixed Bandwidth Allocation
// versus Fixed Frequency Allocation under PF/s-partitioning on a
// variable-size mirror where change rate and size are reverse-aligned
// (volatile objects are small — stock quotes vs movies) and access is
// shuffled.
type Figure11Result struct {
	FBA Series
	FFA Series
}

// Figure11PartitionCounts is the x-axis.
func Figure11PartitionCounts() []int { return []int{10, 25, 50, 75, 100, 150, 200, 250} }

// RunFigure11 sweeps partition counts for both allocation policies.
func RunFigure11(opts Options) (Figure11Result, error) {
	opts = opts.withDefaults()
	spec := workload.TableTwo()
	spec.Theta = 1.0
	spec.ChangeAlignment = workload.Shuffled
	spec.Sizes = workload.SizePareto
	spec.ParetoShape = 1.1
	spec.SizeAlignment = workload.Reverse
	spec.Seed = opts.Seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return Figure11Result{}, err
	}
	counts := Figure11PartitionCounts()
	if opts.Quick {
		counts = []int{10, 100, 250}
	}
	res := Figure11Result{
		FBA: Series{Name: "FIXED BANDWIDTH (FBA)"},
		FFA: Series{Name: "FIXED FREQUENCY (FFA)"},
	}
	for _, k := range counts {
		for _, alloc := range []partition.Allocation{partition.FBA, partition.FFA} {
			r, err := partition.Solve(elems, spec.SyncsPerPeriod, partition.Options{
				Key:           partition.KeyPFOverSize,
				NumPartitions: k,
				Allocation:    alloc,
			})
			if err != nil {
				return res, err
			}
			if alloc == partition.FBA {
				res.FBA.X = append(res.FBA.X, float64(k))
				res.FBA.Y = append(res.FBA.Y, r.Solution.Perceived)
			} else {
				res.FFA.X = append(res.FFA.X, float64(k))
				res.FFA.Y = append(res.FFA.Y, r.Solution.Perceived)
			}
		}
	}
	return res, nil
}

// Tables renders the comparison.
func (r Figure11Result) Tables() []*textio.Table {
	t := textio.NewTable("Figure 11: sync allocation policies (PF/s-partitioning, sizes reverse-aligned)",
		"num partitions", r.FBA.Name, r.FFA.Name)
	for i := range r.FBA.X {
		t.AddRow(int(r.FBA.X[i]), r.FBA.Y[i], r.FFA.Y[i])
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure11",
		Title: "FBA vs FFA bandwidth allocation for variable-size objects",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunFigure11(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
