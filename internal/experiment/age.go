package experiment

import (
	"math"
	"strconv"

	"freshen/internal/freshness"
	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// AgePoint compares the freshness-optimal and age-optimal schedules on
// both metrics at one skew.
type AgePoint struct {
	Theta float64
	// FreshOptPF / FreshOptAge: the paper's PF-optimal schedule.
	FreshOptPF  float64
	FreshOptAge float64 // +Inf whenever an accessed element is starved
	// AgeOptPF / AgeOptAge: the age-minimizing schedule.
	AgeOptPF  float64
	AgeOptAge float64
	// StarvedFresh counts elements the freshness optimum leaves
	// unrefreshed; the age optimum never starves.
	StarvedFresh int
}

// AgeResult is the repository's age-objective extension: the paper
// optimizes binary freshness, under which starving hopeless elements
// is optimal — but their copies then age without bound. The
// age-minimizing schedule (same water-filling machinery, convex age
// objective) bounds staleness depth everywhere at a modest perceived-
// freshness cost, the trade an SLA-driven operator actually navigates.
type AgeResult struct {
	Points []AgePoint
}

// RunAge sweeps θ on the Table 2 setup.
func RunAge(opts Options) (AgeResult, error) {
	opts = opts.withDefaults()
	thetas := Figure3Thetas()
	if opts.Quick {
		thetas = []float64{0, 1.0}
	}
	var res AgeResult
	for _, theta := range thetas {
		spec := workload.TableTwo()
		spec.Theta = theta
		spec.Seed = opts.Seed
		elems, err := workload.Generate(spec)
		if err != nil {
			return res, err
		}
		prob := solver.Problem{Elements: elems, Bandwidth: spec.SyncsPerPeriod}
		fresh, err := solver.WaterFill(prob)
		if err != nil {
			return res, err
		}
		age, err := solver.MinimizeAge(prob)
		if err != nil {
			return res, err
		}
		fAge, err := freshness.PerceivedAge(elems, fresh.Freqs)
		if err != nil {
			return res, err
		}
		aAge, err := freshness.PerceivedAge(elems, age.Freqs)
		if err != nil {
			return res, err
		}
		starved := 0
		for i, f := range fresh.Freqs {
			if f == 0 && elems[i].Lambda > 0 && elems[i].AccessProb > 0 {
				starved++
			}
		}
		res.Points = append(res.Points, AgePoint{
			Theta:        theta,
			FreshOptPF:   fresh.Perceived,
			FreshOptAge:  fAge,
			AgeOptPF:     age.Perceived,
			AgeOptAge:    aAge,
			StarvedFresh: starved,
		})
	}
	return res, nil
}

// Tables renders the sweep.
func (r AgeResult) Tables() []*textio.Table {
	t := textio.NewTable("Extension: freshness-optimal vs age-optimal schedules (Table 2 setup)",
		"theta", "PF-opt PF", "PF-opt age", "age-opt PF", "age-opt age", "starved by PF-opt")
	for _, p := range r.Points {
		fAge := "inf"
		if !math.IsInf(p.FreshOptAge, 0) {
			fAge = strconv.FormatFloat(p.FreshOptAge, 'f', 4, 64)
		}
		t.AddRow(p.Theta, p.FreshOptPF, fAge, p.AgeOptPF, p.AgeOptAge, p.StarvedFresh)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "extension-age",
		Title: "Freshness-optimal vs age-optimal scheduling",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunAge(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
