package experiment

import (
	"freshen/internal/sim"
	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// SimValidateResult exercises the Figure 4 simulation model end to
// end: the optimal schedule for the Table 2 setup is deployed in the
// discrete-event simulator and the Freshness Evaluator's two modes —
// analytic and monitored — are compared (the paper: "the results ...
// have been verified using both modes").
type SimValidateResult struct {
	Theta       float64
	AnalyticPF  float64
	TimeAvgPF   float64
	MonitoredPF float64
	Accesses    int
	Syncs       int
	Updates     int
}

// RunSimValidate runs the validation at several skews.
func RunSimValidate(opts Options) ([]SimValidateResult, error) {
	opts = opts.withDefaults()
	thetas := []float64{0, 0.8, 1.6}
	if opts.Quick {
		thetas = []float64{0.8}
	}
	var out []SimValidateResult
	for _, theta := range thetas {
		spec := workload.TableTwo()
		spec.Theta = theta
		spec.Seed = opts.Seed
		elems, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: spec.SyncsPerPeriod})
		if err != nil {
			return nil, err
		}
		periods := 60
		if opts.Quick {
			periods = 12
		}
		res, err := sim.Run(sim.Config{
			Elements:          elems,
			Freqs:             sol.Freqs,
			Periods:           periods,
			WarmupPeriods:     5,
			AccessesPerPeriod: 20000,
			Seed:              opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SimValidateResult{
			Theta:       theta,
			AnalyticPF:  res.AnalyticPF,
			TimeAvgPF:   res.TimeAveragedPF,
			MonitoredPF: res.MonitoredPF,
			Accesses:    res.Accesses,
			Syncs:       res.Syncs,
			Updates:     res.Updates,
		})
	}
	return out, nil
}

// SimValidateTables renders the comparison.
func SimValidateTables(results []SimValidateResult) []*textio.Table {
	t := textio.NewTable("Simulator validation: Freshness Evaluator modes (Table 2 setup)",
		"theta", "analytic PF", "time-avg PF", "monitored PF", "accesses", "syncs", "updates")
	for _, r := range results {
		t.AddRow(r.Theta, r.AnalyticPF, r.TimeAvgPF, r.MonitoredPF, r.Accesses, r.Syncs, r.Updates)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "sim-validate",
		Title: "Simulator: analytic vs monitored perceived freshness",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunSimValidate(o)
			if err != nil {
				return nil, err
			}
			return SimValidateTables(res), nil
		},
	})
}
