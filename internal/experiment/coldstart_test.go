package experiment

import (
	"encoding/json"
	"testing"

	"freshen/internal/estimate"
)

// TestColdStartSeparatesEstimators pins the benchmark's headline at the
// standard configuration: the MLE-with-exploration policy steers a cold
// mirror to 99% of the converged-plan freshness within the horizon,
// while the naive changes/elapsed tracker never gets there — its
// censoring bias compounds through the poll-feedback loop (elements
// estimated slow are polled slower, which censors them harder). The
// whole run is seeded, so any drift here means a policy changed.
func TestColdStartSeparatesEstimators(t *testing.T) {
	res, err := RunColdStart(ColdStartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetPF >= res.ConvergedPF || res.TargetPF < 0.98*res.ConvergedPF {
		t.Fatalf("target %v not at 99%% of converged %v", res.TargetPF, res.ConvergedPF)
	}

	byName := make(map[string]ColdStartTrajectory, len(res.Policies))
	for _, p := range res.Policies {
		if len(p.PF) != res.Periods {
			t.Fatalf("%s: %d trajectory points for %d periods", p.Name, len(p.PF), res.Periods)
		}
		byName[p.Name] = p
	}
	mleX, ok := byName["mle+explore"]
	if !ok {
		t.Fatal("no mle+explore policy in result")
	}
	naive, ok := byName["naive"]
	if !ok {
		t.Fatal("no naive policy in result")
	}

	if mleX.PeriodsTo99 < 0 {
		t.Fatalf("mle+explore never reached 99%% of converged PF (final %v, target %v)",
			mleX.PF[len(mleX.PF)-1], res.TargetPF)
	}
	if naive.PeriodsTo99 >= 0 && naive.PeriodsTo99 <= mleX.PeriodsTo99 {
		t.Errorf("naive reached target at period %d, not after mle+explore's %d",
			naive.PeriodsTo99, mleX.PeriodsTo99)
	}
	// The estimate quality behind the plans: principled estimation with
	// exploration ends an order of magnitude closer to the truth.
	if !(mleX.FinalRelErr < naive.FinalRelErr/3) {
		t.Errorf("mle+explore relErr %v not well below naive %v", mleX.FinalRelErr, naive.FinalRelErr)
	}
}

// TestColdStartJSONShape locks the BENCH_obs.json cold_start schema: the
// keys downstream tooling greps for must survive refactors.
func TestColdStartJSONShape(t *testing.T) {
	res, err := RunColdStart(ColdStartOptions{N: 20, Periods: 10, Bandwidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"n", "bandwidth", "periods", "converged_pf", "target_pf", "policies"} {
		if _, ok := m[key]; !ok {
			t.Errorf("cold_start JSON missing key %q", key)
		}
	}
	var pols []map[string]json.RawMessage
	if err := json.Unmarshal(m["policies"], &pols); err != nil {
		t.Fatal(err)
	}
	if len(pols) != 5 {
		t.Fatalf("want 5 policies, got %d", len(pols))
	}
	for _, p := range pols {
		for _, key := range []string{"name", "pf_trajectory", "periods_to_99", "final_rel_err"} {
			if _, ok := p[key]; !ok {
				t.Errorf("policy JSON missing key %q", key)
			}
		}
	}
}

// TestColdStartPolicyCoverage checks every estimator kind is exercised
// by some policy, so a new estimator family cannot silently skip the
// closed-loop benchmark.
func TestColdStartPolicyCoverage(t *testing.T) {
	res, err := RunColdStart(ColdStartOptions{N: 20, Periods: 10, Bandwidth: 5})
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(res.Policies))
	for _, p := range res.Policies {
		names[p.Name] = true
	}
	for _, kind := range estimate.Kinds() {
		if !names[kind] {
			t.Errorf("no cold-start policy exercises estimator kind %q", kind)
		}
	}
}
