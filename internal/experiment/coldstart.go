package experiment

import (
	"fmt"
	"math"

	"freshen/internal/estimate"
	"freshen/internal/freshness"
	"freshen/internal/schedule"
	"freshen/internal/solver"
	"freshen/internal/stats"
	"freshen/internal/workload"
)

// ColdStartOptions tunes the cold-start convergence benchmark. Zero
// values pick the standard configuration.
type ColdStartOptions struct {
	// N is the catalog size (0 means 200).
	N int
	// Bandwidth is the refresh budget per period (0 means N/4).
	Bandwidth float64
	// Periods is the horizon (0 means 500).
	Periods int
	// ReplanEvery is the learn-and-replan cadence in periods (0 means 2).
	ReplanEvery int
	// ExploreFrac is the probe slice used by the "+explore" policy
	// (0 means 0.2).
	ExploreFrac float64
	// Prior is the change-rate prior every estimator starts from
	// (0 means 1).
	Prior float64
	// MeanLambda is the workload's mean change rate (0 means 0.3).
	MeanLambda float64
	// LambdaStdDev is the change-rate spread (0 means 0.9).
	LambdaStdDev float64
	// Seed fixes the workload and the change streams.
	Seed int64
}

func (o ColdStartOptions) withDefaults() ColdStartOptions {
	if o.N == 0 {
		o.N = 200
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = float64(o.N) / 4
	}
	if o.Periods == 0 {
		o.Periods = 500
	}
	if o.ReplanEvery == 0 {
		o.ReplanEvery = 2
	}
	if o.ExploreFrac == 0 {
		o.ExploreFrac = 0.2
	}
	if o.Prior == 0 {
		o.Prior = 1
	}
	if o.MeanLambda == 0 {
		o.MeanLambda = 0.3
	}
	if o.LambdaStdDev == 0 {
		o.LambdaStdDev = 0.9
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ColdStartTrajectory is one estimation policy's convergence record:
// the perceived freshness its evolving plan would actually deliver
// (evaluated at the TRUE change rates it never sees), period by
// period from a cold start.
type ColdStartTrajectory struct {
	// Name identifies the policy ("naive", "mle+explore", …).
	Name string `json:"name"`
	// PF is the per-period perceived freshness of the live plan at the
	// true rates.
	PF []float64 `json:"pf_trajectory"`
	// PeriodsTo99 is the first period whose plan reaches 99% of the
	// converged optimum; -1 if the horizon ends first.
	PeriodsTo99 int `json:"periods_to_99"`
	// FinalRelErr is the mean relative λ̂ error at the horizon.
	FinalRelErr float64 `json:"final_rel_err"`
}

// ColdStartResult is the benchmark output, shaped for the cold_start
// section of BENCH_obs.json.
type ColdStartResult struct {
	N           int                   `json:"n"`
	Bandwidth   float64               `json:"bandwidth"`
	Periods     int                   `json:"periods"`
	ReplanEvery int                   `json:"replan_every"`
	ExploreFrac float64               `json:"explore_frac"`
	Seed        int64                 `json:"seed"`
	ConvergedPF float64               `json:"converged_pf"`
	TargetPF    float64               `json:"target_pf"`
	Policies    []ColdStartTrajectory `json:"policies"`
}

// RunColdStart measures how fast each change-rate estimation policy
// steers a cold mirror onto the optimal plan. Every policy starts
// knowing only the prior, polls what its own plan funds (a poll's
// change/no-change outcome is drawn from the element's true Poisson
// process over the real elapsed time — the censored feedback loop a
// live mirror experiences), re-learns and re-plans on cadence, and is
// scored by the perceived freshness its plan would deliver at the TRUE
// rates. The ruler is the converged optimum: the water-filled plan
// computed directly from the truth.
//
// The loop is deterministic: one seeded stream per policy, no wall
// clock, so the trajectories are reproducible run to run.
func RunColdStart(opts ColdStartOptions) (ColdStartResult, error) {
	opts = opts.withDefaults()
	spec := workload.TableTwo()
	spec.NumObjects = opts.N
	spec.UpdatesPerPeriod = opts.MeanLambda * float64(opts.N)
	spec.SyncsPerPeriod = opts.Bandwidth
	spec.Theta = 1.0
	spec.UpdateStdDev = opts.LambdaStdDev
	spec.Seed = opts.Seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return ColdStartResult{}, err
	}

	sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: opts.Bandwidth})
	if err != nil {
		return ColdStartResult{}, err
	}
	converged, err := freshness.Perceived(freshness.FixedOrder{}, elems, sol.Freqs)
	if err != nil {
		return ColdStartResult{}, err
	}

	res := ColdStartResult{
		N:           opts.N,
		Bandwidth:   opts.Bandwidth,
		Periods:     opts.Periods,
		ReplanEvery: opts.ReplanEvery,
		ExploreFrac: opts.ExploreFrac,
		Seed:        opts.Seed,
		ConvergedPF: converged,
		TargetPF:    0.99 * converged,
	}
	policies := []struct {
		name    string
		kind    string
		explore float64
	}{
		{"naive", estimate.KindNaive, 0},
		{"history", estimate.KindHistory, 0},
		{"sa", estimate.KindSA, 0},
		{"mle", estimate.KindMLE, 0},
		{"mle+explore", estimate.KindMLE, opts.ExploreFrac},
	}
	for _, p := range policies {
		tr, err := runColdStartPolicy(elems, opts, p.name, p.kind, p.explore, res.TargetPF)
		if err != nil {
			return ColdStartResult{}, fmt.Errorf("policy %s: %w", p.name, err)
		}
		res.Policies = append(res.Policies, tr)
	}
	return res, nil
}

// runColdStartPolicy drives one policy through the poll → estimate →
// replan loop. Poll opportunities accrue as fractional credit — an
// element planned at frequency f earns f polls per period and is
// actually polled each time the credit crosses a whole number, at
// evenly spaced instants within the period — so low-frequency elements
// poll every 1/f periods with the true long elapsed gap, exactly the
// censoring regime that separates the estimators.
func runColdStartPolicy(elems []freshness.Element, opts ColdStartOptions, name, kind string, exploreFrac float64, target float64) (ColdStartTrajectory, error) {
	n := len(elems)
	// The floor is each policy's probe-keeping channel. Without explore
	// it must be large enough that "believed static" elements still get
	// occasional budget (prior/100); with the explore slice doing that
	// job on uncertainty, the floor can sit far lower, so near-static
	// elements stop soaking up exploit bandwidth (the water-fill funds
	// small rates first — marginal value ~ p/λ̂).
	floor := opts.Prior / 100
	if exploreFrac > 0 {
		floor = opts.Prior / 1e4
	}
	est, err := estimate.New(kind, n, estimate.Params{Prior: opts.Prior, Floor: floor})
	if err != nil {
		return ColdStartTrajectory{}, err
	}
	r := stats.NewRNG(opts.Seed + 7)
	lastPoll := make([]float64, n)
	credit := make([]float64, n)
	believed := make([]freshness.Element, n)
	copy(believed, elems)

	replan := func() ([]float64, error) {
		lambdas, err := est.Estimates(opts.Prior)
		if err != nil {
			return nil, err
		}
		for i := range believed {
			believed[i].Lambda = lambdas[i]
		}
		// The explore slice anneals with mean uncertainty: early on the
		// full fraction probes an unknown catalog; as confidence builds
		// the slice shrinks and its bandwidth flows back to exploitation,
		// so a converged mirror pays almost no probe tax. Uncertainty is
		// scored against the planning-relevant rate floor so elements
		// confidently known to be near-static release their probe share
		// instead of holding the slice open forever.
		uncertainty := make([]float64, n)
		var meanU float64
		for i := range uncertainty {
			uncertainty[i] = est.Estimate(i).UncertaintyAt(opts.Prior / 10)
			meanU += uncertainty[i]
		}
		meanU /= float64(n)
		exploreBudget := opts.Bandwidth * exploreFrac * meanU
		sol, err := solver.WaterFill(solver.Problem{Elements: believed, Bandwidth: opts.Bandwidth - exploreBudget})
		if err != nil {
			return nil, err
		}
		freqs := sol.Freqs
		if exploreBudget > 0 {
			exFreqs, _, err := schedule.AllocateExplore(elems, uncertainty, opts.Prior, exploreBudget)
			if err != nil {
				return nil, err
			}
			for i := range freqs {
				freqs[i] += exFreqs[i]
			}
		}
		return freqs, nil
	}

	// The cold plan: water-filled on the prior alone.
	freqs, err := replan()
	if err != nil {
		return ColdStartTrajectory{}, err
	}

	tr := ColdStartTrajectory{Name: name, PeriodsTo99: -1}
	for t := 1; t <= opts.Periods; t++ {
		for i := range elems {
			credit[i] += freqs[i]
			polls := int(credit[i])
			if polls == 0 {
				continue
			}
			credit[i] -= float64(polls)
			for k := 1; k <= polls; k++ {
				at := float64(t-1) + float64(k)/float64(polls)
				elapsed := at - lastPoll[i]
				if elapsed <= 0 {
					continue
				}
				changed := r.Float64() < -math.Expm1(-elems[i].Lambda*elapsed)
				if err := est.Observe(i, elapsed, changed); err != nil {
					return ColdStartTrajectory{}, err
				}
				lastPoll[i] = at
			}
		}
		pf, err := freshness.Perceived(freshness.FixedOrder{}, elems, freqs)
		if err != nil {
			return ColdStartTrajectory{}, err
		}
		tr.PF = append(tr.PF, pf)
		if tr.PeriodsTo99 < 0 && pf >= target {
			tr.PeriodsTo99 = t
		}
		if t%opts.ReplanEvery == 0 {
			if freqs, err = replan(); err != nil {
				return ColdStartTrajectory{}, err
			}
		}
	}

	// Relative error with the denominator floored: the gamma workload
	// produces essentially-static elements whose true rate is near
	// zero, and dividing by it would let a handful of them swamp the
	// mean no matter what any estimator does.
	var relErr float64
	lambdas, err := est.Estimates(opts.Prior)
	if err != nil {
		return ColdStartTrajectory{}, err
	}
	for i := range elems {
		relErr += math.Abs(lambdas[i]-elems[i].Lambda) / math.Max(elems[i].Lambda, opts.Prior/10)
	}
	tr.FinalRelErr = relErr / float64(n)
	return tr, nil
}
