package experiment

import (
	"fmt"

	"freshen/internal/textio"
	"freshen/internal/workload"
)

// Figure7Result reproduces Figure 7, the big case: the partitioning
// techniques on the Table 3 setup (500 000 elements at paper scale),
// where solving exactly per element is off the table for the NLP
// package the paper used. BestCase is still reported here because the
// water-filling solver handles the full problem — it serves as the
// reference line the paper could not draw.
type Figure7Result struct {
	// N is the element count actually used.
	N int
	// Techniques holds one series per key over the partition counts.
	Techniques []Series
	// BestCase is the exact optimum for reference.
	BestCase float64
}

// Figure7PartitionCounts is the paper's x-axis.
func Figure7PartitionCounts() []int {
	return []int{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
}

// RunFigure7 runs the big-case sweep. Options.BigN scales the element
// count (default: the paper's 500 000); updates and syncs scale
// proportionally so the per-element regime is unchanged.
func RunFigure7(opts Options) (Figure7Result, error) {
	opts = opts.withDefaults()
	spec := workload.TableThree()
	if opts.BigN != spec.NumObjects {
		ratio := float64(opts.BigN) / float64(spec.NumObjects)
		spec.NumObjects = opts.BigN
		spec.UpdatesPerPeriod *= ratio
		spec.SyncsPerPeriod *= ratio
	}
	spec.Seed = opts.Seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return Figure7Result{}, err
	}
	counts := Figure7PartitionCounts()
	if opts.Quick {
		counts = []int{20, 100, 200}
	}
	sweep, err := runPartitionSweep(elems, spec.SyncsPerPeriod, spec.ChangeAlignment, counts, heuristicKeys, 0)
	if err != nil {
		return Figure7Result{}, err
	}
	return Figure7Result{
		N:          spec.NumObjects,
		Techniques: sweep.Techniques,
		BestCase:   sweep.BestCase,
	}, nil
}

// Tables renders the sweep.
func (r Figure7Result) Tables() []*textio.Table {
	headers := []string{"num partitions"}
	for _, s := range r.Techniques {
		headers = append(headers, s.Name)
	}
	headers = append(headers, "best_case")
	t := textio.NewTable(fmt.Sprintf("Figure 7: big case (N=%d)", r.N), headers...)
	for i := range r.Techniques[0].X {
		cells := []interface{}{int(r.Techniques[0].X[i])}
		for _, s := range r.Techniques {
			cells = append(cells, s.Y[i])
		}
		cells = append(cells, r.BestCase)
		t.AddRow(cells...)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure7",
		Title: "Big case: partitioning techniques on the Table 3 setup",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunFigure7(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
