package experiment

import (
	"fmt"

	"freshen/internal/freshness"
	"freshen/internal/partition"
	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// heuristicKeys are the four partitioning techniques Figure 5
// compares, in the paper's legend order.
var heuristicKeys = []partition.Key{
	partition.KeyPF,
	partition.KeyP,
	partition.KeyLambda,
	partition.KeyPOverLambda,
}

// Figure5Result reproduces Figure 5(a)-(c): perceived freshness versus
// partition count for the four partitioning techniques against the
// ideal (exact) solution, for one alignment of the Table 2 setup at
// θ = 1.0.
type Figure5Result struct {
	Alignment workload.Alignment
	// Techniques holds one series per key, named with the paper's
	// legend labels (e.g. "PF_PARTITIONING").
	Techniques []Series
	// BestCase is the exact optimum, constant across partition counts.
	BestCase float64
}

// Figure5PartitionCounts is the sweep of K.
func Figure5PartitionCounts() []int {
	return []int{10, 25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
}

func legendName(k partition.Key) string {
	switch k {
	case partition.KeyPF:
		return "PF_PARTITIONING"
	case partition.KeyP:
		return "P_PARTITIONING"
	case partition.KeyLambda:
		return "LAMBDA_PARTITIONING"
	case partition.KeyPOverLambda:
		return "P_OVER_LAMBDA_PARTITIONING"
	case partition.KeyPFOverSize:
		return "PF_OVER_SIZE_PARTITIONING"
	case partition.KeySize:
		return "SIZE_PARTITIONING"
	default:
		return k.String()
	}
}

// RunFigure5 sweeps partition counts for one alignment.
func RunFigure5(align workload.Alignment, opts Options) (Figure5Result, error) {
	opts = opts.withDefaults()
	spec := workload.TableTwo()
	spec.Theta = 1.0
	spec.ChangeAlignment = align
	spec.Seed = opts.Seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return Figure5Result{}, err
	}
	counts := Figure5PartitionCounts()
	if opts.Quick {
		counts = []int{10, 100, 500}
	}
	return runPartitionSweep(elems, spec.SyncsPerPeriod, align, counts, heuristicKeys, partition.FFA)
}

// runPartitionSweep is the shared engine behind Figures 5, 7 and 11:
// it evaluates each key at each partition count and the exact best
// case.
func runPartitionSweep(elems []freshness.Element, bandwidth float64, align workload.Alignment, counts []int, keys []partition.Key, alloc partition.Allocation) (Figure5Result, error) {
	res := Figure5Result{Alignment: align}
	for _, key := range keys {
		s := Series{Name: legendName(key)}
		for _, k := range counts {
			r, err := partition.Solve(elems, bandwidth, partition.Options{
				Key:           key,
				NumPartitions: k,
				Allocation:    alloc,
			})
			if err != nil {
				return res, err
			}
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, r.Solution.Perceived)
		}
		res.Techniques = append(res.Techniques, s)
	}
	best, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: bandwidth})
	if err != nil {
		return res, err
	}
	res.BestCase = best.Perceived
	return res, nil
}

// RunFigure5All runs the three subfigures (shuffled, aligned,
// reverse).
func RunFigure5All(opts Options) ([]Figure5Result, error) {
	aligns := []workload.Alignment{workload.Shuffled, workload.Aligned, workload.Reverse}
	out := make([]Figure5Result, 0, len(aligns))
	for _, a := range aligns {
		r, err := RunFigure5(a, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Tables renders the sweep.
func (r Figure5Result) Tables() []*textio.Table {
	headers := []string{"num partitions"}
	for _, s := range r.Techniques {
		headers = append(headers, s.Name)
	}
	headers = append(headers, "best_case")
	t := textio.NewTable(
		fmt.Sprintf("Figure 5 (%s): perceived freshness vs num partitions", r.Alignment),
		headers...)
	for i := range r.Techniques[0].X {
		cells := []interface{}{int(r.Techniques[0].X[i])}
		for _, s := range r.Techniques {
			cells = append(cells, s.Y[i])
		}
		cells = append(cells, r.BestCase)
		t.AddRow(cells...)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure5",
		Title: "Comparing partitioning techniques vs the ideal (3 alignments)",
		Run: func(o Options) ([]*textio.Table, error) {
			results, err := RunFigure5All(o)
			if err != nil {
				return nil, err
			}
			var tables []*textio.Table
			for _, r := range results {
				tables = append(tables, r.Tables()...)
			}
			return tables, nil
		},
	})
}
