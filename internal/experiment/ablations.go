package experiment

import (
	"fmt"
	"time"

	"freshen/internal/estimate"
	"freshen/internal/freshness"
	"freshen/internal/solver"
	"freshen/internal/stats"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// PolicyAblationResult compares optimal perceived freshness under the
// Fixed-Order policy (the paper's choice) and the Poisson-order policy
// across interest skew — quantifying how much the paper's policy
// assumption is worth.
type PolicyAblationResult struct {
	FixedOrder Series
	Poisson    Series
}

// RunPolicyAblation sweeps θ on the Table 2 setup.
func RunPolicyAblation(opts Options) (PolicyAblationResult, error) {
	opts = opts.withDefaults()
	res := PolicyAblationResult{
		FixedOrder: Series{Name: "fixed-order"},
		Poisson:    Series{Name: "poisson-order"},
	}
	thetas := Figure3Thetas()
	if opts.Quick {
		thetas = []float64{0, 0.8, 1.6}
	}
	for _, theta := range thetas {
		spec := workload.TableTwo()
		spec.Theta = theta
		spec.Seed = opts.Seed
		elems, err := workload.Generate(spec)
		if err != nil {
			return res, err
		}
		fo, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: spec.SyncsPerPeriod})
		if err != nil {
			return res, err
		}
		po, err := solver.WaterFill(solver.Problem{
			Elements:  elems,
			Bandwidth: spec.SyncsPerPeriod,
			Policy:    freshness.PoissonOrder{},
		})
		if err != nil {
			return res, err
		}
		res.FixedOrder.X = append(res.FixedOrder.X, theta)
		res.FixedOrder.Y = append(res.FixedOrder.Y, fo.Perceived)
		res.Poisson.X = append(res.Poisson.X, theta)
		res.Poisson.Y = append(res.Poisson.Y, po.Perceived)
	}
	return res, nil
}

// Tables renders the policy ablation.
func (r PolicyAblationResult) Tables() []*textio.Table {
	t := textio.NewTable("Ablation: synchronization policy (optimal PF per policy)",
		"theta", "fixed-order", "poisson-order")
	for i := range r.FixedOrder.X {
		t.AddRow(r.FixedOrder.X[i], r.FixedOrder.Y[i], r.Poisson.Y[i])
	}
	return []*textio.Table{t}
}

// SolverAblationPoint is one scaling measurement.
type SolverAblationPoint struct {
	N                int
	WaterFillSeconds float64
	GradientSeconds  float64
	WaterFillPF      float64
	GradientPF       float64
}

// SolverAblationResult compares the exact water-filling solver with
// the projected-gradient NLP stand-in across problem sizes — the
// repository's analogue of the paper's observation that a generic NLP
// package "runs for days" on large instances.
type SolverAblationResult struct {
	Points []SolverAblationPoint
}

// RunSolverAblation measures both solvers on growing instances.
func RunSolverAblation(opts Options) (SolverAblationResult, error) {
	opts = opts.withDefaults()
	sizes := []int{100, 500, 2000, 10000}
	if opts.Quick {
		sizes = []int{100, 500}
	}
	var res SolverAblationResult
	for _, n := range sizes {
		spec := workload.TableTwo()
		spec.NumObjects = n
		spec.UpdatesPerPeriod = 2 * float64(n)
		spec.SyncsPerPeriod = float64(n) / 2
		spec.Theta = 1.0
		spec.Seed = opts.Seed
		elems, err := workload.Generate(spec)
		if err != nil {
			return res, err
		}
		prob := solver.Problem{Elements: elems, Bandwidth: spec.SyncsPerPeriod}
		start := time.Now()
		wf, err := solver.WaterFill(prob)
		if err != nil {
			return res, err
		}
		wfSec := time.Since(start).Seconds()
		start = time.Now()
		gr, err := solver.Gradient(prob, solver.GradientOptions{MaxIterations: 3000})
		if err != nil {
			return res, err
		}
		grSec := time.Since(start).Seconds()
		res.Points = append(res.Points, SolverAblationPoint{
			N:                n,
			WaterFillSeconds: wfSec,
			GradientSeconds:  grSec,
			WaterFillPF:      wf.Perceived,
			GradientPF:       gr.Perceived,
		})
	}
	return res, nil
}

// Tables renders the solver ablation.
func (r SolverAblationResult) Tables() []*textio.Table {
	t := textio.NewTable("Ablation: exact water-filling vs generic NLP (projected gradient)",
		"N", "waterfill s", "gradient s", "waterfill PF", "gradient PF")
	for _, p := range r.Points {
		t.AddRow(p.N, fmt.Sprintf("%.4f", p.WaterFillSeconds),
			fmt.Sprintf("%.4f", p.GradientSeconds), p.WaterFillPF, p.GradientPF)
	}
	return []*textio.Table{t}
}

// EstimateAblationPoint measures planning quality under estimated
// change rates from a given polling budget.
type EstimateAblationPoint struct {
	PollsPerElement int
	// OraclePF is the optimum with true change rates.
	OraclePF float64
	// EstimatedPF is the PF (scored with true rates) of the schedule
	// solved with estimated rates.
	EstimatedPF float64
}

// EstimateAblationResult quantifies the paper's claim that the
// approach tolerates imperfect knowledge of change frequency: the
// schedule is solved with rates estimated from k polls per element and
// scored against the truth.
type EstimateAblationResult struct {
	Points []EstimateAblationPoint
}

// RunEstimateAblation sweeps the polling budget on the Table 2 setup
// at θ = 1.0.
func RunEstimateAblation(opts Options) (EstimateAblationResult, error) {
	opts = opts.withDefaults()
	spec := workload.TableTwo()
	spec.Theta = 1.0
	spec.Seed = opts.Seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return EstimateAblationResult{}, err
	}
	oracle, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: spec.SyncsPerPeriod})
	if err != nil {
		return EstimateAblationResult{}, err
	}
	budgets := []int{2, 5, 10, 25, 100, 400}
	if opts.Quick {
		budgets = []int{2, 25}
	}
	r := stats.NewRNG(opts.Seed + 1000)
	var res EstimateAblationResult
	for _, polls := range budgets {
		est := make([]freshness.Element, len(elems))
		copy(est, elems)
		// The mirror polls each element at interval 0.25 periods (its
		// refresh loop doubling as a change detector).
		const interval = 0.25
		for i := range est {
			history := estimate.SimulatePolling(r, elems[i].Lambda, interval, polls)
			lam, err := estimate.MLE(history)
			if err != nil {
				return res, err
			}
			est[i].Lambda = lam
		}
		sol, err := solver.WaterFill(solver.Problem{Elements: est, Bandwidth: spec.SyncsPerPeriod})
		if err != nil {
			return res, err
		}
		// Score the estimated-rate schedule against reality.
		pf, err := freshness.Perceived(freshness.FixedOrder{}, elems, sol.Freqs)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, EstimateAblationPoint{
			PollsPerElement: polls,
			OraclePF:        oracle.Perceived,
			EstimatedPF:     pf,
		})
	}
	return res, nil
}

// Tables renders the estimation ablation.
func (r EstimateAblationResult) Tables() []*textio.Table {
	t := textio.NewTable("Ablation: planning under estimated change rates",
		"polls/element", "oracle PF", "estimated-rate PF")
	for _, p := range r.Points {
		t.AddRow(p.PollsPerElement, p.OraclePF, p.EstimatedPF)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "ablation-policy",
		Title: "Fixed-Order vs Poisson-order synchronization policy",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunPolicyAblation(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
	register(Info{
		ID:    "ablation-solver",
		Title: "Water-filling vs projected-gradient NLP scaling",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunSolverAblation(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
	register(Info{
		ID:    "ablation-estimate",
		Title: "Schedule quality under estimated change rates",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunEstimateAblation(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
