package experiment

import (
	"fmt"

	"freshen/internal/freshness"
	"freshen/internal/solver"
	"freshen/internal/textio"
)

// Table1Result reproduces the paper's Table 1: optimal synchronization
// frequencies for the five-element example under three access
// profiles.
type Table1Result struct {
	// ChangeFreqs is row (a): 1..5 changes/day.
	ChangeFreqs []float64
	// P1, P2, P3 are rows (b)-(d): the optimal sync frequencies under
	// the uniform, aligned-skew and reverse-skew profiles.
	P1, P2, P3 []float64
	// PerceivedP1, PerceivedP2, PerceivedP3 are the optimal objective
	// values (not printed in the paper but useful context).
	PerceivedP1, PerceivedP2, PerceivedP3 float64
}

// Table1Profiles returns the example's three access profiles.
func Table1Profiles() (p1, p2, p3 []float64) {
	p1 = []float64{1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 5, 1.0 / 5}
	p2 = []float64{1.0 / 15, 2.0 / 15, 3.0 / 15, 4.0 / 15, 5.0 / 15}
	p3 = []float64{5.0 / 15, 4.0 / 15, 3.0 / 15, 2.0 / 15, 1.0 / 15}
	return
}

// RunTable1 solves the paper's Section 2.2.1 example: five elements
// changing 1..5 times/day, bandwidth 5 refreshes/day.
func RunTable1() (Table1Result, error) {
	res := Table1Result{ChangeFreqs: []float64{1, 2, 3, 4, 5}}
	p1, p2, p3 := Table1Profiles()
	solve := func(probs []float64) (solver.Solution, error) {
		elems := make([]freshness.Element, 5)
		for i := range elems {
			elems[i] = freshness.Element{ID: i, Lambda: float64(i + 1), AccessProb: probs[i], Size: 1}
		}
		return solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: 5})
	}
	s1, err := solve(p1)
	if err != nil {
		return res, err
	}
	s2, err := solve(p2)
	if err != nil {
		return res, err
	}
	s3, err := solve(p3)
	if err != nil {
		return res, err
	}
	res.P1, res.PerceivedP1 = s1.Freqs, s1.Perceived
	res.P2, res.PerceivedP2 = s2.Freqs, s2.Perceived
	res.P3, res.PerceivedP3 = s3.Freqs, s3.Perceived
	return res, nil
}

// Tables renders the result in the paper's row layout.
func (r Table1Result) Tables() []*textio.Table {
	t := textio.NewTable("Table 1: optimal sync frequencies for the 5-element example",
		"row", "e1", "e2", "e3", "e4", "e5", "perceived")
	addRow := func(label string, vals []float64, pf string) {
		cells := make([]interface{}, 0, 7)
		cells = append(cells, label)
		for _, v := range vals {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		cells = append(cells, pf)
		t.AddRow(cells...)
	}
	addRow("(a) change freq", r.ChangeFreqs, "")
	addRow("(b) sync freq (P1)", r.P1, fmt.Sprintf("%.4f", r.PerceivedP1))
	addRow("(c) sync freq (P2)", r.P2, fmt.Sprintf("%.4f", r.PerceivedP2))
	addRow("(d) sync freq (P3)", r.P3, fmt.Sprintf("%.4f", r.PerceivedP3))
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "table1",
		Title: "Optimal sync frequencies for the 5-element example (3 profiles)",
		Run: func(Options) ([]*textio.Table, error) {
			res, err := RunTable1()
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
