package experiment

import (
	"math"
	"strings"
	"testing"

	"freshen/internal/workload"
)

func TestRunTable1GoldenValues(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, want []float64) {
		t.Helper()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.02 {
				t.Errorf("%s element %d: %.4f, want %.2f", name, i+1, got[i], want[i])
			}
		}
	}
	check("P1", res.P1, []float64{1.15, 1.36, 1.35, 1.14, 0.00})
	check("P2", res.P2, []float64{0.33, 0.67, 1.00, 1.33, 1.67})
	check("P3", res.P3, []float64{1.68, 1.83, 1.49, 0.00, 0.00})
	if res.PerceivedP3 <= res.PerceivedP1 {
		t.Errorf("reverse-skew optimum %v should beat uniform %v (cold items are cheap to keep fresh)",
			res.PerceivedP3, res.PerceivedP1)
	}
	tables := res.Tables()
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	var sb strings.Builder
	if err := tables[0].Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(b) sync freq (P1)") {
		t.Error("table missing P1 row")
	}
}

func TestRunFigure1Shapes(t *testing.T) {
	res := RunFigure1()
	if len(res.Curves) != 3 {
		t.Fatalf("got %d curves", len(res.Curves))
	}
	// Higher p gets at least as much bandwidth at every λ, strictly
	// more wherever funded.
	lo, mid, hi := res.Curves[0], res.Curves[1], res.Curves[2]
	for i := range lo.X {
		if mid.Y[i] < lo.Y[i]-1e-9 || hi.Y[i] < mid.Y[i]-1e-9 {
			t.Fatalf("curves not ordered by p at λ=%v: %v %v %v", lo.X[i], lo.Y[i], mid.Y[i], hi.Y[i])
		}
	}
	// Each curve eventually drops to zero for large λ (elements too
	// volatile to be worth refreshing), with the cutoff moving right
	// as p doubles: the λ at which p=0.2 loses funding still has
	// funding at p=0.4 (the paper's point B vs C narrative).
	cutoff := func(s Series) float64 {
		for i := len(s.X) - 1; i >= 0; i-- {
			if s.Y[i] > 0 {
				return s.X[i]
			}
		}
		return 0
	}
	if !(cutoff(lo) < cutoff(mid) && cutoff(mid) < cutoff(hi)) {
		t.Errorf("funding cutoffs not increasing in p: %v %v %v", cutoff(lo), cutoff(mid), cutoff(hi))
	}
	// Each funded curve is unimodal-ish: rises from small λ then falls.
	peakIdx := 0
	for i, y := range hi.Y {
		if y > hi.Y[peakIdx] {
			peakIdx = i
		}
	}
	if peakIdx == 0 || hi.Y[peakIdx] <= hi.Y[len(hi.Y)-1] {
		t.Errorf("p=0.4 curve not peaked in the interior (peak at %d)", peakIdx)
	}
	if len(res.Tables()) != 1 {
		t.Error("figure1 must render one table")
	}
}

func TestRunFigure2Shapes(t *testing.T) {
	res, err := RunFigure2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Access curve decreasing; aligned change decreasing; reverse
	// change increasing.
	for i := 1; i < res.Access.Len(); i++ {
		if res.Access.Y[i] > res.Access.Y[i-1] {
			t.Fatal("access curve not decreasing")
		}
		if res.AlignedChange.Y[i] > res.AlignedChange.Y[i-1] {
			t.Fatal("aligned change curve not decreasing")
		}
		if res.ReverseChange.Y[i] < res.ReverseChange.Y[i-1] {
			t.Fatal("reverse change curve not increasing")
		}
	}
	if len(res.Tables()) != 1 {
		t.Error("figure2 must render one table")
	}
}

func TestRunFigure3Shapes(t *testing.T) {
	results, err := RunFigure3All(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d alignments", len(results))
	}
	for _, r := range results {
		// PF >= GF at every skew.
		for i := range r.PF.X {
			if r.PF.Y[i] < r.GF.Y[i]-1e-9 {
				t.Errorf("%v θ=%v: PF %v below GF %v", r.Alignment, r.PF.X[i], r.PF.Y[i], r.GF.Y[i])
			}
		}
		// Equal at θ=0 (uniform profile).
		if math.Abs(r.PF.Y[0]-r.GF.Y[0]) > 1e-6 {
			t.Errorf("%v: PF %v != GF %v at θ=0", r.Alignment, r.PF.Y[0], r.GF.Y[0])
		}
		// The gap grows with the skew: compare last vs first.
		last := len(r.PF.Y) - 1
		if gapEnd := r.PF.Y[last] - r.GF.Y[last]; gapEnd < 0.05 {
			t.Errorf("%v: PF-GF gap at θ=1.6 only %v", r.Alignment, gapEnd)
		}
		// PF technique's perceived freshness rises with skew.
		if r.PF.Y[last] <= r.PF.Y[0] {
			t.Errorf("%v: PF at θ=1.6 (%v) not above θ=0 (%v)", r.Alignment, r.PF.Y[last], r.PF.Y[0])
		}
	}
	// The aligned case is the paper's dramatic one: GF collapses at
	// high skew while PF stays high.
	var aligned Figure3Result
	for _, r := range results {
		if r.Alignment == workload.Aligned {
			aligned = r
		}
	}
	last := len(aligned.GF.Y) - 1
	if aligned.GF.Y[last] > 0.15 {
		t.Errorf("aligned GF at θ=1.6 = %v, want collapse toward 0", aligned.GF.Y[last])
	}
	if aligned.PF.Y[last] < 0.5 {
		t.Errorf("aligned PF at θ=1.6 = %v, want high", aligned.PF.Y[last])
	}
}

func TestRunFigure5Shapes(t *testing.T) {
	results, err := RunFigure5All(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for _, s := range r.Techniques {
			last := s.Len() - 1
			// At K=500 (=N) every technique must essentially reach the
			// ideal.
			if math.Abs(s.Y[last]-r.BestCase) > 0.01 {
				t.Errorf("%v %s: K=N PF %v vs best case %v", r.Alignment, s.Name, s.Y[last], r.BestCase)
			}
			// No technique may beat the ideal.
			for i := range s.Y {
				if s.Y[i] > r.BestCase+1e-6 {
					t.Errorf("%v %s: PF %v above best case %v", r.Alignment, s.Name, s.Y[i], r.BestCase)
				}
			}
			// Approach: the last point must be at least as good as the
			// first (convergence toward the ideal).
			if s.Y[last] < s.Y[0]-1e-9 {
				t.Errorf("%v %s: PF fell from %v to %v as K grew", r.Alignment, s.Name, s.Y[0], s.Y[last])
			}
		}
	}
	// Under shuffled change, PF-partitioning must reach near-ideal
	// faster than λ-partitioning: compare at K=25 (second point).
	shuffled := results[0]
	if shuffled.Alignment != workload.Shuffled {
		t.Fatal("first result should be shuffled")
	}
	var pf, lam Series
	for _, s := range shuffled.Techniques {
		switch s.Name {
		case "PF_PARTITIONING":
			pf = s
		case "LAMBDA_PARTITIONING":
			lam = s
		}
	}
	if pf.Y[1] <= lam.Y[1] {
		t.Errorf("shuffled K=25: PF-partitioning %v not above λ-partitioning %v", pf.Y[1], lam.Y[1])
	}
}

func TestRunFigure6Shapes(t *testing.T) {
	res, err := RunFigure6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var pf, p, lam Series
	for _, s := range res.Techniques {
		switch s.Name {
		case "PF_PARTITIONING":
			pf = s
		case "P_PARTITIONING":
			p = s
		case "LAMBDA_PARTITIONING":
			lam = s
		}
	}
	last := pf.Len() - 1
	// PF rises with θ for the access-aware techniques.
	if pf.Y[last] <= pf.Y[0] || p.Y[last] <= p.Y[0] {
		t.Error("access-aware techniques should improve with skew")
	}
	// λ-partitioning falls behind at high skew (the paper's Figure 6).
	if lam.Y[last] >= pf.Y[last]-0.02 {
		t.Errorf("λ-partitioning %v too close to PF-partitioning %v at θ=1.6", lam.Y[last], pf.Y[last])
	}
}

func TestRunFigure7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 7 sweep is slow; skipped in -short mode")
	}
	res, err := RunFigure7(Options{BigN: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 50000 {
		t.Fatalf("N = %d", res.N)
	}
	var pf, lam Series
	for _, s := range res.Techniques {
		switch s.Name {
		case "PF_PARTITIONING":
			pf = s
		case "LAMBDA_PARTITIONING":
			lam = s
		}
	}
	// PF-partitioning is the clear winner at every partition count.
	for i := range pf.Y {
		if pf.Y[i] <= lam.Y[i] {
			t.Errorf("K=%v: PF-partitioning %v not above λ %v", pf.X[i], pf.Y[i], lam.Y[i])
		}
		if pf.Y[i] > res.BestCase+1e-6 {
			t.Errorf("PF above best case")
		}
	}
	// Solutions beyond ~100 partitions do not appreciably improve.
	atHundred := pf.Y[4] // K=100
	last := pf.Y[len(pf.Y)-1]
	if last-atHundred > 0.02 {
		t.Errorf("PF still improving after 100 partitions: %v -> %v", atHundred, last)
	}
}

func TestRunFigure8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 8 sweep is slow; skipped in -short mode")
	}
	res, err := RunFigure8(Options{ClusterN: 20000})
	if err != nil {
		t.Fatal(err)
	}
	zero := res.PerIterations[0]
	ten := res.PerIterations[len(res.PerIterations)-1]
	if zero.Name != "0 iterations" {
		t.Fatalf("first series %q", zero.Name)
	}
	// Clustering must improve on plain partitioning at the smallest
	// partition count, significantly.
	if ten.Y[0] <= zero.Y[0] {
		t.Errorf("10 iterations (%v) not above 0 iterations (%v) at K=20", ten.Y[0], zero.Y[0])
	}
	// A few iterations at 20 partitions should rival many plain
	// partitions (the paper's punchline).
	zeroLast := zero.Y[len(zero.Y)-1]
	if ten.Y[0] < zeroLast-0.05 {
		t.Errorf("clustered K=20 (%v) far below plain K=200 (%v)", ten.Y[0], zeroLast)
	}
}

func TestRunFigure9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 9 sweep is slow; skipped in -short mode")
	}
	res, err := RunFigure9(Options{ClusterN: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClusterLine) != len(Figure9ClusterCounts()) {
		t.Fatalf("cluster line has %d points", len(res.ClusterLine))
	}
	for _, curve := range res.PerClusters {
		// Time grows with iteration budget.
		if curve[len(curve)-1].Seconds <= curve[0].Seconds {
			t.Errorf("clusters=%d: 25 iterations (%vs) not slower than 0 (%vs)",
				curve[0].Clusters, curve[len(curve)-1].Seconds, curve[0].Seconds)
		}
		// Iterations never hurt beyond noise.
		if curve[len(curve)-1].Perceived < curve[0].Perceived-0.01 {
			t.Errorf("clusters=%d: PF fell with iterations: %v -> %v",
				curve[0].Clusters, curve[0].Perceived, curve[len(curve)-1].Perceived)
		}
	}
}

func TestRunFigure10Shapes(t *testing.T) {
	res, err := RunFigure10(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sync resources go to the pages with the lowest change rates:
	// with aligned change (object 1 most volatile), the early objects
	// get nothing and the late objects get funded.
	if res.UniformFreq.Y[0] != 0 {
		t.Errorf("most volatile object funded %v under uniform sizes", res.UniformFreq.Y[0])
	}
	lastIdx := res.UniformFreq.Len() - 1
	if res.UniformFreq.Y[lastIdx] <= 0 {
		t.Error("least volatile object not funded under uniform sizes")
	}
	// Pareto case: more total syncs, same total bandwidth.
	var unifSyncs, parSyncs, unifBW, parBW float64
	for i := 0; i < res.UniformFreq.Len(); i++ {
		unifSyncs += res.UniformFreq.Y[i]
		parSyncs += res.ParetoFreq.Y[i]
		unifBW += res.UniformBandwidth.Y[i]
		parBW += res.ParetoBandwidth.Y[i]
	}
	if parSyncs <= unifSyncs {
		t.Errorf("pareto total syncs %v not above uniform %v (small objects are cheap)", parSyncs, unifSyncs)
	}
	if math.Abs(unifBW-parBW) > 1e-3*unifBW {
		t.Errorf("total bandwidth differs: uniform %v vs pareto %v", unifBW, parBW)
	}
	// The Section 5.3 headline: the Pareto mirror's optimum beats the
	// uniform mirror's by roughly the paper's 0.586 vs 0.312 margin.
	if res.ParetoPF <= res.UniformPF {
		t.Errorf("pareto optimum %v not above uniform optimum %v", res.ParetoPF, res.UniformPF)
	}
	if ratio := res.ParetoPF / res.UniformPF; ratio < 1.3 {
		t.Errorf("pareto/uniform PF ratio %v, paper reports ~1.9", ratio)
	}
	// The deployment experiment: misallocating by ignoring sizes costs
	// perceived freshness.
	if res.SizeAwarePF < res.SizeBlindPF-1e-9 {
		t.Errorf("size-aware %v below size-blind %v", res.SizeAwarePF, res.SizeBlindPF)
	}
	if len(res.Tables()) != 3 {
		t.Error("figure10 must render three tables")
	}
}

func TestRunFigure11Shapes(t *testing.T) {
	res, err := RunFigure11(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// FBA at least matches FFA everywhere and wins at small K.
	for i := range res.FBA.Y {
		if res.FBA.Y[i] < res.FFA.Y[i]-0.01 {
			t.Errorf("K=%v: FBA %v below FFA %v", res.FBA.X[i], res.FBA.Y[i], res.FFA.Y[i])
		}
	}
	if res.FBA.Y[0] <= res.FFA.Y[0] {
		t.Errorf("K=10: FBA %v not above FFA %v", res.FBA.Y[0], res.FFA.Y[0])
	}
}

func TestRegistryRunsAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is slow; skipped in -short mode")
	}
	infos := All()
	if len(infos) < 13 {
		t.Fatalf("only %d experiments registered", len(infos))
	}
	seen := map[string]bool{}
	for _, info := range infos {
		if seen[info.ID] {
			t.Fatalf("duplicate experiment id %q", info.ID)
		}
		seen[info.ID] = true
	}
	for _, id := range []string{"table1", "figure1", "figure2", "figure3", "figure5",
		"figure6", "figure7", "figure8", "figure9", "figure10", "figure11",
		"ablation-policy", "ablation-solver", "ablation-estimate", "sim-validate",
		"extension-selection", "extension-sensitivity", "extension-quantize",
		"extension-push", "extension-age", "extension-hierarchical"} {
		info, err := Find(id)
		if err != nil {
			t.Errorf("missing experiment %q", id)
			continue
		}
		tables, err := info.Run(Options{Quick: true})
		if err != nil {
			t.Errorf("experiment %q failed: %v", id, err)
			continue
		}
		if len(tables) == 0 {
			t.Errorf("experiment %q produced no tables", id)
		}
		for _, tab := range tables {
			var sb strings.Builder
			if err := tab.Render(&sb); err != nil {
				t.Errorf("experiment %q render: %v", id, err)
			}
			if err := tab.RenderCSV(&sb); err != nil {
				t.Errorf("experiment %q csv: %v", id, err)
			}
		}
	}
	if _, err := Find("bogus"); err == nil {
		t.Error("unknown id must fail")
	}
}

func TestAblationShapes(t *testing.T) {
	pol, err := RunPolicyAblation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pol.FixedOrder.Y {
		if pol.FixedOrder.Y[i] <= pol.Poisson.Y[i] {
			t.Errorf("θ=%v: fixed-order %v not above poisson %v",
				pol.FixedOrder.X[i], pol.FixedOrder.Y[i], pol.Poisson.Y[i])
		}
	}

	est, err := RunEstimateAblation(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range est.Points {
		if p.EstimatedPF > p.OraclePF+1e-9 {
			t.Errorf("estimated-rate schedule beats the oracle: %+v", p)
		}
	}
	// More polls close the gap.
	first, last := est.Points[0], est.Points[len(est.Points)-1]
	if last.EstimatedPF < first.EstimatedPF-1e-9 {
		t.Errorf("more polling made things worse: %v -> %v", first.EstimatedPF, last.EstimatedPF)
	}
	if last.OraclePF-last.EstimatedPF > 0.05 {
		t.Errorf("25 polls/element still %v below oracle", last.OraclePF-last.EstimatedPF)
	}
}

func TestSolverAblationShapes(t *testing.T) {
	res, err := RunSolverAblation(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.GradientPF > p.WaterFillPF+1e-6 {
			t.Errorf("N=%d: gradient PF %v above exact %v", p.N, p.GradientPF, p.WaterFillPF)
		}
		if p.WaterFillPF-p.GradientPF > 0.02 {
			t.Errorf("N=%d: gradient PF %v far below exact %v", p.N, p.GradientPF, p.WaterFillPF)
		}
	}
}

func TestRunSelectionShapes(t *testing.T) {
	res, err := RunSelection(Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, p := range res.Points {
		if p.GreedyPF < p.InOrderPF-1e-9 {
			t.Errorf("capacity %v: greedy %v below in-order %v", p.CapacityFrac, p.GreedyPF, p.InOrderPF)
		}
		if p.GreedyPF < prev-1e-9 {
			t.Errorf("capacity %v: PF fell as capacity grew", p.CapacityFrac)
		}
		prev = p.GreedyPF
	}
	// Small mirrors are where selection matters: at 10% capacity the
	// profile-driven mirror must be dramatically better than the
	// uninformed one, and already close to the full-mirror optimum.
	first := res.Points[0]
	full := res.Points[len(res.Points)-1]
	if first.GreedyPF < 3*first.InOrderPF {
		t.Errorf("10%% capacity: greedy %v vs in-order %v, want a large margin", first.GreedyPF, first.InOrderPF)
	}
	if first.GreedyPF < 0.8*full.GreedyPF {
		t.Errorf("10%% capacity greedy PF %v below 80%% of full-mirror %v", first.GreedyPF, full.GreedyPF)
	}
	// At full capacity the two hosting policies coincide (up to
	// summation order).
	if math.Abs(full.GreedyPF-full.InOrderPF) > 1e-12 {
		t.Errorf("full capacity: greedy %v != in-order %v", full.GreedyPF, full.InOrderPF)
	}
}

func TestSimValidateAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation validation is slow; skipped in -short mode")
	}
	results, err := RunSimValidate(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if math.Abs(r.TimeAvgPF-r.AnalyticPF) > 0.02 {
			t.Errorf("θ=%v: time-avg %v vs analytic %v", r.Theta, r.TimeAvgPF, r.AnalyticPF)
		}
		if math.Abs(r.MonitoredPF-r.AnalyticPF) > 0.02 {
			t.Errorf("θ=%v: monitored %v vs analytic %v", r.Theta, r.MonitoredPF, r.AnalyticPF)
		}
	}
}
