package experiment

import (
	"fmt"
	"time"

	"freshen/internal/cluster"
	"freshen/internal/partition"
	"freshen/internal/textio"
)

// Figure9Point is one (time, quality) measurement: running the
// pipeline with a given cluster count and iteration budget.
type Figure9Point struct {
	Clusters   int
	Iterations int
	Seconds    float64
	Perceived  float64
}

// Figure9Result reproduces Figure 9: the time/quality trade-off of
// buying partitions versus buying k-means iterations. ClusterLine is
// the paper's "CLUSTER LINE" — the 0-iteration point of every cluster
// count; PerClusters traces each cluster count as its iteration budget
// grows.
type Figure9Result struct {
	N           int
	ClusterLine []Figure9Point
	PerClusters [][]Figure9Point
}

// Figure9ClusterCounts is the paper's legend.
func Figure9ClusterCounts() []int { return []int{50, 150, 200, 300, 400} }

// Figure9IterationBudgets is the per-curve iteration schedule.
func Figure9IterationBudgets() []int { return []int{0, 1, 3, 5, 7, 10, 15, 25} }

// RunFigure9 measures wall-clock time and perceived freshness for each
// (clusters, iterations) cell. Each cell re-runs the full pipeline —
// partition, refine, optimize — so Seconds reflects the cost a mirror
// would actually pay.
func RunFigure9(opts Options) (Figure9Result, error) {
	opts = opts.withDefaults()
	elems, bandwidth, err := clusterWorkload(opts.ClusterN, opts.Seed)
	if err != nil {
		return Figure9Result{}, err
	}
	res := Figure9Result{N: opts.ClusterN}
	clusterCounts := Figure9ClusterCounts()
	budgets := Figure9IterationBudgets()
	if opts.Quick {
		clusterCounts = []int{50, 200}
		budgets = []int{0, 3}
	}
	for _, k := range clusterCounts {
		var curve []Figure9Point
		for _, iters := range budgets {
			start := time.Now()
			seed, err := partition.Build(elems, partition.KeyPF, k, nil)
			if err != nil {
				return res, err
			}
			grouping := seed
			if iters > 0 {
				grouping, _, err = cluster.Refine(elems, seed, cluster.Config{Iterations: iters})
				if err != nil {
					return res, err
				}
			}
			r, err := partition.SolvePartitioned(elems, bandwidth, grouping, partition.Options{
				Key:           partition.KeyPF,
				NumPartitions: k,
			})
			if err != nil {
				return res, err
			}
			pt := Figure9Point{
				Clusters:   k,
				Iterations: iters,
				Seconds:    time.Since(start).Seconds(),
				Perceived:  r.Solution.Perceived,
			}
			curve = append(curve, pt)
			if iters == 0 {
				res.ClusterLine = append(res.ClusterLine, pt)
			}
		}
		res.PerClusters = append(res.PerClusters, curve)
	}
	return res, nil
}

// Tables renders all points as one long table.
func (r Figure9Result) Tables() []*textio.Table {
	t := textio.NewTable(
		fmt.Sprintf("Figure 9: perceived freshness vs planning time (N=%d)", r.N),
		"clusters", "iterations", "seconds", "perceived freshness")
	for _, curve := range r.PerClusters {
		for _, pt := range curve {
			t.AddRow(pt.Clusters, pt.Iterations, pt.Seconds, pt.Perceived)
		}
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure9",
		Title: "Time/quality trade-off: partitions vs k-means iterations",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunFigure9(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
