package experiment

import "freshen/internal/freshness"

// permuteElements returns elems reordered so position i holds
// elems[perm[i]].
func permuteElements(elems []freshness.Element, perm []int) []freshness.Element {
	out := make([]freshness.Element, len(elems))
	for i, src := range perm {
		out[i] = elems[src]
	}
	return out
}
