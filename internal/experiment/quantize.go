package experiment

import (
	"freshen/internal/freshness"
	"freshen/internal/schedule"
	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// QuantizePoint measures the cost of executing whole refresh counts
// instead of the fractional optimum at one bandwidth setting.
type QuantizePoint struct {
	Bandwidth    float64
	FractionalPF float64
	QuantizedPF  float64
	// Slots is the integer refresh budget Σ counts.
	Slots int
}

// QuantizeResult quantifies what a period-by-period executor loses to
// integer refresh counts (largest-remainder rounding of the optimal
// frequencies), across bandwidths, on the Table 2 setup at θ = 1.0.
// The loss should vanish as the per-element budget grows.
type QuantizeResult struct {
	Points []QuantizePoint
}

// RunQuantize performs the sweep.
func RunQuantize(opts Options) (QuantizeResult, error) {
	opts = opts.withDefaults()
	spec := workload.TableTwo()
	spec.Theta = 1.0
	spec.Seed = opts.Seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return QuantizeResult{}, err
	}
	bandwidths := []float64{50, 125, 250, 500, 1000, 2000}
	if opts.Quick {
		bandwidths = []float64{125, 1000}
	}
	var res QuantizeResult
	for _, b := range bandwidths {
		sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: b})
		if err != nil {
			return res, err
		}
		counts, err := schedule.Quantize(sol.Freqs)
		if err != nil {
			return res, err
		}
		slots := 0
		for _, c := range counts {
			slots += c
		}
		qpf, err := freshness.Perceived(freshness.FixedOrder{}, elems, schedule.QuantizedFreqs(counts))
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, QuantizePoint{
			Bandwidth:    b,
			FractionalPF: sol.Perceived,
			QuantizedPF:  qpf,
			Slots:        slots,
		})
	}
	return res, nil
}

// Tables renders the sweep.
func (r QuantizeResult) Tables() []*textio.Table {
	t := textio.NewTable("Extension: integer refresh schedules (largest-remainder rounding)",
		"bandwidth", "fractional PF", "quantized PF", "slots")
	for _, p := range r.Points {
		t.AddRow(p.Bandwidth, p.FractionalPF, p.QuantizedPF, p.Slots)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "extension-quantize",
		Title: "Cost of integer (per-period) refresh schedules",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunQuantize(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
