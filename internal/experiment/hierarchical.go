package experiment

import (
	"time"

	"freshen/internal/partition"
	"freshen/internal/solver"
	"freshen/internal/textio"
)

// HierarchicalPoint compares the flat and multi-stage heuristics at
// one partition count.
type HierarchicalPoint struct {
	K int
	// FlatPF / FlatSeconds: the paper's one-stage heuristic (solve the
	// transformed problem, spread each partition's bandwidth evenly).
	FlatPF      float64
	FlatSeconds float64
	// HierPF / HierSeconds: the Section 3.2 multi-stage approach
	// (re-solve exactly inside each partition).
	HierPF      float64
	HierSeconds float64
}

// HierarchicalResult re-evaluates the multi-stage heuristic the paper
// dismissed as too costly for its NLP package ("you would have to
// solve 1000 such problems for a database with 1,000,000 elements").
// With the water-filling solver the subproblems are cheap, so the
// multi-stage approach recovers near-exact quality at small K — the
// repository's one genuinely revisionist result, possible only because
// the substrate solver changed.
type HierarchicalResult struct {
	N       int
	ExactPF float64
	// ExactSeconds is the cost of the full exact solve for scale.
	ExactSeconds float64
	Points       []HierarchicalPoint
}

// RunHierarchical measures quality and time on a scaled Table 3
// workload.
func RunHierarchical(opts Options) (HierarchicalResult, error) {
	opts = opts.withDefaults()
	elems, bandwidth, err := clusterWorkload(opts.ClusterN, opts.Seed)
	if err != nil {
		return HierarchicalResult{}, err
	}
	res := HierarchicalResult{N: opts.ClusterN}

	start := time.Now()
	exact, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: bandwidth})
	if err != nil {
		return res, err
	}
	res.ExactPF = exact.Perceived
	res.ExactSeconds = time.Since(start).Seconds()

	ks := []int{10, 50, 200}
	if opts.Quick {
		ks = []int{10}
	}
	for _, k := range ks {
		o := partition.Options{Key: partition.KeyPF, NumPartitions: k}
		start = time.Now()
		flat, err := partition.Solve(elems, bandwidth, o)
		if err != nil {
			return res, err
		}
		flatSec := time.Since(start).Seconds()
		start = time.Now()
		hier, err := partition.SolveHierarchical(elems, bandwidth, o)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, HierarchicalPoint{
			K:           k,
			FlatPF:      flat.Solution.Perceived,
			FlatSeconds: flatSec,
			HierPF:      hier.Solution.Perceived,
			HierSeconds: time.Since(start).Seconds(),
		})
	}
	return res, nil
}

// Tables renders the comparison.
func (r HierarchicalResult) Tables() []*textio.Table {
	t := textio.NewTable("Extension: one-stage vs multi-stage (Section 3.2) heuristics",
		"K", "flat PF", "flat s", "multi-stage PF", "multi-stage s", "exact PF", "exact s")
	for _, p := range r.Points {
		t.AddRow(p.K, p.FlatPF, p.FlatSeconds, p.HierPF, p.HierSeconds, r.ExactPF, r.ExactSeconds)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "extension-hierarchical",
		Title: "Re-evaluating the multi-stage heuristic the paper dismissed",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunHierarchical(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
