package experiment

import (
	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// SensitivityResult is the parameter sensitivity study the paper
// defers to its technical report [2]: how perceived freshness of the
// PF and GF techniques responds to the update-rate dispersion
// (UpdateStdDev) and to the bandwidth-to-update ratio, on the Table 2
// setup at θ = 1.0 under shuffled change.
type SensitivityResult struct {
	// StdDevPF / StdDevGF sweep UpdateStdDev at B = 250.
	StdDevPF Series
	StdDevGF Series
	// BandwidthPF / BandwidthGF sweep the sync budget as a fraction of
	// the update volume at σ = 1.
	BandwidthPF Series
	BandwidthGF Series
}

// RunSensitivity performs both sweeps.
func RunSensitivity(opts Options) (SensitivityResult, error) {
	opts = opts.withDefaults()
	res := SensitivityResult{
		StdDevPF:    Series{Name: "PF_TECHNIQUE"},
		StdDevGF:    Series{Name: "GF_TECHNIQUE"},
		BandwidthPF: Series{Name: "PF_TECHNIQUE"},
		BandwidthGF: Series{Name: "GF_TECHNIQUE"},
	}
	stddevs := []float64{0.25, 0.5, 1, 2, 4}
	fracs := []float64{0.05, 0.1, 0.25, 0.5, 1, 2}
	if opts.Quick {
		stddevs = []float64{0.5, 2}
		fracs = []float64{0.1, 1}
	}

	for _, sd := range stddevs {
		spec := workload.TableTwo()
		spec.Theta = 1.0
		spec.UpdateStdDev = sd
		spec.Seed = opts.Seed
		elems, err := workload.Generate(spec)
		if err != nil {
			return res, err
		}
		prob := solver.Problem{Elements: elems, Bandwidth: spec.SyncsPerPeriod}
		pf, err := solver.WaterFill(prob)
		if err != nil {
			return res, err
		}
		gf, err := solver.SolveGF(prob)
		if err != nil {
			return res, err
		}
		res.StdDevPF.X = append(res.StdDevPF.X, sd)
		res.StdDevPF.Y = append(res.StdDevPF.Y, pf.Perceived)
		res.StdDevGF.X = append(res.StdDevGF.X, sd)
		res.StdDevGF.Y = append(res.StdDevGF.Y, gf.Perceived)
	}

	for _, frac := range fracs {
		spec := workload.TableTwo()
		spec.Theta = 1.0
		spec.Seed = opts.Seed
		elems, err := workload.Generate(spec)
		if err != nil {
			return res, err
		}
		bandwidth := frac * spec.UpdatesPerPeriod
		prob := solver.Problem{Elements: elems, Bandwidth: bandwidth}
		pf, err := solver.WaterFill(prob)
		if err != nil {
			return res, err
		}
		gf, err := solver.SolveGF(prob)
		if err != nil {
			return res, err
		}
		res.BandwidthPF.X = append(res.BandwidthPF.X, frac)
		res.BandwidthPF.Y = append(res.BandwidthPF.Y, pf.Perceived)
		res.BandwidthGF.X = append(res.BandwidthGF.X, frac)
		res.BandwidthGF.Y = append(res.BandwidthGF.Y, gf.Perceived)
	}
	return res, nil
}

// Tables renders both sweeps.
func (r SensitivityResult) Tables() []*textio.Table {
	sd := textio.NewTable("Sensitivity: update-rate dispersion (theta=1, B=250)",
		"update stddev", "PF_TECHNIQUE", "GF_TECHNIQUE")
	for i := range r.StdDevPF.X {
		sd.AddRow(r.StdDevPF.X[i], r.StdDevPF.Y[i], r.StdDevGF.Y[i])
	}
	bw := textio.NewTable("Sensitivity: bandwidth as a fraction of update volume (theta=1, stddev=1)",
		"syncs/updates", "PF_TECHNIQUE", "GF_TECHNIQUE")
	for i := range r.BandwidthPF.X {
		bw.AddRow(r.BandwidthPF.X[i], r.BandwidthPF.Y[i], r.BandwidthGF.Y[i])
	}
	return []*textio.Table{sd, bw}
}

func init() {
	register(Info{
		ID:    "extension-sensitivity",
		Title: "Parameter sensitivity: update dispersion and bandwidth ratio",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunSensitivity(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
