package experiment

import (
	"fmt"
	"sort"

	"freshen/internal/textio"
)

// Options tunes experiment scale. The zero value runs everything at
// the paper's parameters except the k-means big case, which defaults
// to a laptop-friendly element count.
type Options struct {
	// Seed drives all workload generation; 0 means 1.
	Seed int64
	// BigN overrides Table 3's 500 000 elements for the partitioning
	// big case (Figure 7); 0 keeps the paper's size.
	BigN int
	// ClusterN sizes the k-means experiments (Figures 8 and 9);
	// 0 means 100 000 (the paper's 500 000 works too, just slower).
	ClusterN int
	// Quick shrinks sweeps for smoke tests and benchmarks.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BigN == 0 {
		o.BigN = 500000
	}
	if o.ClusterN == 0 {
		o.ClusterN = 100000
	}
	if o.Quick {
		if o.BigN > 20000 {
			o.BigN = 20000
		}
		if o.ClusterN > 10000 {
			o.ClusterN = 10000
		}
	}
	return o
}

// Series is one named curve of an experiment figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Point returns (x, y) at index i.
func (s Series) Point(i int) (float64, float64) { return s.X[i], s.Y[i] }

// Len returns the number of points.
func (s Series) Len() int { return len(s.X) }

// Info describes one registered experiment.
type Info struct {
	// ID is the paper artifact name, e.g. "table1", "figure5".
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment and renders its result tables.
	Run func(Options) ([]*textio.Table, error)
}

// All returns every registered experiment sorted by ID.
func All() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Info, error) {
	for _, info := range registry {
		if info.ID == id {
			return info, nil
		}
	}
	return Info{}, fmt.Errorf("experiment: unknown experiment %q (try 'list')", id)
}

var registry []Info

func register(info Info) {
	registry = append(registry, info)
}
