package experiment

import (
	"fmt"

	"freshen/internal/freshness"
	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// Figure10Result reproduces Figure 10 and the Section 5.3 summary
// numbers: the optimal distribution of sync frequency (a) and sync
// bandwidth (b) across 500 objects under uniform versus Pareto size
// distributions, with uniform access and change rate and size both
// aligned (object 1 most volatile and largest).
type Figure10Result struct {
	// UniformFreq / ParetoFreq: per-object optimal sync frequency.
	UniformFreq Series
	ParetoFreq  Series
	// UniformBandwidth / ParetoBandwidth: per-object sᵢ·fᵢ.
	UniformBandwidth Series
	ParetoBandwidth  Series
	// UniformPF is the optimal perceived freshness of the uniform-size
	// mirror — the "ignore object size" number the paper reports as
	// 0.312: with every object costing a full bandwidth unit, the
	// budget buys far fewer refreshes.
	UniformPF float64
	// ParetoPF is the optimal perceived freshness of the Pareto-size
	// mirror at the same bandwidth — the paper's 0.586: a mirror full
	// of small objects converts the same bandwidth into many more
	// refreshes.
	ParetoPF float64
	// SizeBlindPF is this repository's sharper deployment experiment:
	// the schedule solved as if the Pareto mirror had unit sizes, then
	// scaled uniformly to fit the true bandwidth, scored on the true
	// mirror. SizeAwarePF (= ParetoPF) is its size-aware counterpart;
	// the gap is pure misallocation.
	SizeBlindPF float64
	// SizeAwarePF equals ParetoPF; kept as a named field so the
	// deployment comparison reads on its own.
	SizeAwarePF float64
}

// RunFigure10 solves the sized Extended Problem for the two size
// distributions.
func RunFigure10(opts Options) (Figure10Result, error) {
	opts = opts.withDefaults()
	var res Figure10Result

	build := func(sizes workload.SizeDist) ([]freshness.Element, float64, error) {
		spec := workload.TableTwo()
		spec.Theta = 0 // uniform access
		spec.ChangeAlignment = workload.Aligned
		spec.Sizes = sizes
		spec.ParetoShape = 1.1
		spec.SizeAlignment = workload.Aligned // object 1 largest
		spec.Seed = opts.Seed
		elems, err := workload.Generate(spec)
		return elems, spec.SyncsPerPeriod, err
	}

	uniElems, bandwidth, err := build(workload.SizeUniform)
	if err != nil {
		return res, err
	}
	uniSol, err := solver.WaterFill(solver.Problem{Elements: uniElems, Bandwidth: bandwidth})
	if err != nil {
		return res, err
	}
	parElems, _, err := build(workload.SizePareto)
	if err != nil {
		return res, err
	}
	parSol, err := solver.WaterFill(solver.Problem{Elements: parElems, Bandwidth: bandwidth})
	if err != nil {
		return res, err
	}

	res.UniformFreq = Series{Name: "Uniform Size Distribution"}
	res.ParetoFreq = Series{Name: "Pareto_Shape (a) = 1.1"}
	res.UniformBandwidth = Series{Name: "Uniform Size Distribution"}
	res.ParetoBandwidth = Series{Name: "Pareto_Shape (a) = 1.1"}
	for i := range uniElems {
		x := float64(i + 1)
		res.UniformFreq.X = append(res.UniformFreq.X, x)
		res.UniformFreq.Y = append(res.UniformFreq.Y, uniSol.Freqs[i])
		res.UniformBandwidth.X = append(res.UniformBandwidth.X, x)
		res.UniformBandwidth.Y = append(res.UniformBandwidth.Y, uniSol.Freqs[i]*uniElems[i].Size)
		res.ParetoFreq.X = append(res.ParetoFreq.X, x)
		res.ParetoFreq.Y = append(res.ParetoFreq.Y, parSol.Freqs[i])
		res.ParetoBandwidth.X = append(res.ParetoBandwidth.X, x)
		res.ParetoBandwidth.Y = append(res.ParetoBandwidth.Y, parSol.Freqs[i]*parElems[i].Size)
	}

	// Size-blind schedule on the Pareto mirror: solve pretending unit
	// sizes, then scale the frequencies uniformly so the schedule fits
	// the true bandwidth. This is what a Section 2-4 planner would
	// deploy on a variable-size mirror.
	blind := make([]freshness.Element, len(parElems))
	copy(blind, parElems)
	for i := range blind {
		blind[i].Size = 1
	}
	blindSol, err := solver.WaterFill(solver.Problem{Elements: blind, Bandwidth: bandwidth})
	if err != nil {
		return res, err
	}
	used, err := freshness.BandwidthUsed(parElems, blindSol.Freqs)
	if err != nil {
		return res, err
	}
	scaled := make([]float64, len(blindSol.Freqs))
	if used > 0 {
		scale := bandwidth / used
		for i, f := range blindSol.Freqs {
			scaled[i] = f * scale
		}
	}
	res.SizeBlindPF, err = freshness.Perceived(freshness.FixedOrder{}, parElems, scaled)
	if err != nil {
		return res, err
	}
	res.UniformPF = uniSol.Perceived
	res.ParetoPF = parSol.Perceived
	res.SizeAwarePF = parSol.Perceived
	return res, nil
}

// Tables renders the two panels (down-sampled) and the PF summary.
func (r Figure10Result) Tables() []*textio.Table {
	freq := textio.NewTable("Figure 10(a): optimal sync frequency per object (every 25th)",
		"object", "pareto sizes", "uniform sizes")
	bw := textio.NewTable("Figure 10(b): optimal sync bandwidth per object (every 25th)",
		"object", "pareto sizes", "uniform sizes")
	for i := 0; i < r.UniformFreq.Len(); i += 25 {
		obj := fmt.Sprintf("%d", int(r.UniformFreq.X[i]))
		freq.AddRow(obj, r.ParetoFreq.Y[i], r.UniformFreq.Y[i])
		bw.AddRow(obj, r.ParetoBandwidth.Y[i], r.UniformBandwidth.Y[i])
	}
	sum := textio.NewTable("Section 5.3 summary: perceived freshness at the same bandwidth",
		"schedule", "perceived freshness")
	sum.AddRow("uniform-size mirror optimum (paper: 0.312)", r.UniformPF)
	sum.AddRow("pareto-size mirror optimum (paper: 0.586)", r.ParetoPF)
	sum.AddRow("size-blind schedule deployed on pareto mirror", r.SizeBlindPF)
	sum.AddRow("size-aware schedule on pareto mirror", r.SizeAwarePF)
	return []*textio.Table{freq, bw, sum}
}

func init() {
	register(Info{
		ID:    "figure10",
		Title: "Optimal sync resource distribution under uniform vs Pareto sizes",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunFigure10(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
