package experiment

import (
	"fmt"

	"freshen/internal/textio"
	"freshen/internal/workload"
)

// Figure2Result illustrates the paper's Figure 2 alignment options:
// per-element access and change frequency under the aligned and
// reverse configurations of a Table 2 workload.
type Figure2Result struct {
	// Access is the Zipf access-frequency curve (identical in both
	// alignments; elements are indexed in access-rank order).
	Access Series
	// AlignedChange and ReverseChange are the change-rate curves.
	AlignedChange Series
	ReverseChange Series
}

// RunFigure2 generates a Table 2 workload at θ = 1.0 under both
// alignments.
func RunFigure2(opts Options) (Figure2Result, error) {
	opts = opts.withDefaults()
	spec := workload.TableTwo()
	spec.Theta = 1.0
	spec.Seed = opts.Seed

	var res Figure2Result
	spec.ChangeAlignment = workload.Aligned
	aligned, err := workload.Generate(spec)
	if err != nil {
		return res, err
	}
	spec.ChangeAlignment = workload.Reverse
	reverse, err := workload.Generate(spec)
	if err != nil {
		return res, err
	}
	res.Access = Series{Name: "access"}
	res.AlignedChange = Series{Name: "change (aligned)"}
	res.ReverseChange = Series{Name: "change (reverse)"}
	for i := range aligned {
		x := float64(i + 1)
		res.Access.X = append(res.Access.X, x)
		res.Access.Y = append(res.Access.Y, aligned[i].AccessProb)
		res.AlignedChange.X = append(res.AlignedChange.X, x)
		res.AlignedChange.Y = append(res.AlignedChange.Y, aligned[i].Lambda)
		res.ReverseChange.X = append(res.ReverseChange.X, x)
		res.ReverseChange.Y = append(res.ReverseChange.Y, reverse[i].Lambda)
	}
	return res, nil
}

// Tables renders a down-sampled view (every 25th element) of the
// curves.
func (r Figure2Result) Tables() []*textio.Table {
	t := textio.NewTable("Figure 2: alignment options (every 25th element)",
		"page", "access prob", "change (aligned)", "change (reverse)")
	for i := 0; i < r.Access.Len(); i += 25 {
		t.AddRow(
			fmt.Sprintf("%d", int(r.Access.X[i])),
			r.Access.Y[i],
			r.AlignedChange.Y[i],
			r.ReverseChange.Y[i],
		)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure2",
		Title: "Alignment options: access vs change frequency shapes",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunFigure2(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
