package experiment

import (
	"freshen/internal/sim"
	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// PushPoint compares refresh architectures at one bandwidth.
type PushPoint struct {
	// Bandwidth is in refreshes/period (the update volume is 1000).
	Bandwidth float64
	// PullPF is the measured perceived freshness of the paper's
	// pull-optimal Fixed-Order schedule.
	PullPF float64
	// PushFIFOPF is a cooperative source pushing change notifications
	// with the mirror refreshing dirty elements in FIFO order.
	PushFIFOPF float64
	// PushPriorityPF refreshes the hottest dirty element first.
	PushPriorityPF float64
}

// PushResult quantifies the related-work comparison the paper can only
// discuss: how much source cooperation (push notifications) would buy
// over profile-aware pull scheduling, across the bandwidth range. All
// three systems are measured in the same discrete-event simulator on
// the Table 2 workload at θ = 1.0.
//
// The interesting regime is scarcity: when bandwidth is far below the
// update volume, FIFO push degrades toward profile-blind round-robin
// (every change gets in line), while profile-aware pull — and push
// with a profile-aware priority queue — keep the hot copies fresh.
type PushResult struct {
	Points []PushPoint
}

// RunPush sweeps the bandwidth ratio.
func RunPush(opts Options) (PushResult, error) {
	opts = opts.withDefaults()
	spec := workload.TableTwo()
	spec.Theta = 1.0
	spec.Seed = opts.Seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return PushResult{}, err
	}
	bandwidths := []float64{100, 250, 500, 1000, 2000}
	periods := 60
	if opts.Quick {
		bandwidths = []float64{250, 1000}
		periods = 15
	}
	var res PushResult
	for _, b := range bandwidths {
		sol, err := solver.WaterFill(solver.Problem{Elements: elems, Bandwidth: b})
		if err != nil {
			return res, err
		}
		pull, err := sim.Run(sim.Config{
			Elements:          elems,
			Freqs:             sol.Freqs,
			Periods:           periods,
			WarmupPeriods:     5,
			AccessesPerPeriod: 20000,
			Seed:              opts.Seed,
		})
		if err != nil {
			return res, err
		}
		pushCfg := sim.PushConfig{
			Elements:          elems,
			Bandwidth:         b,
			Periods:           periods,
			WarmupPeriods:     5,
			AccessesPerPeriod: 20000,
			Seed:              opts.Seed,
		}
		fifo, err := sim.RunPush(pushCfg)
		if err != nil {
			return res, err
		}
		pushCfg.Priority = true
		prio, err := sim.RunPush(pushCfg)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, PushPoint{
			Bandwidth:      b,
			PullPF:         pull.TimeAveragedPF,
			PushFIFOPF:     fifo.TimeAveragedPF,
			PushPriorityPF: prio.TimeAveragedPF,
		})
	}
	return res, nil
}

// Tables renders the comparison.
func (r PushResult) Tables() []*textio.Table {
	t := textio.NewTable("Extension: pull-optimal vs push notification (measured PF, updates=1000/period)",
		"bandwidth", "pull optimal", "push FIFO", "push priority")
	for _, p := range r.Points {
		t.AddRow(p.Bandwidth, p.PullPF, p.PushFIFOPF, p.PushPriorityPF)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "extension-push",
		Title: "What source cooperation buys: pull scheduling vs push notification",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunPush(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
