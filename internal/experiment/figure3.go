package experiment

import (
	"fmt"

	"freshen/internal/solver"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// Figure3Result reproduces Figure 3(a)-(c): perceived freshness of the
// PF technique (our optimum) versus the GF technique (Cho &
// Garcia-Molina's average-freshness optimum) as the Zipf interest skew
// grows, for one change/access alignment.
type Figure3Result struct {
	Alignment workload.Alignment
	// PF and GF share the θ grid in X.
	PF Series
	GF Series
}

// Figure3Thetas is the paper's skew sweep.
func Figure3Thetas() []float64 {
	return []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}
}

// RunFigure3 sweeps θ for one alignment on the Table 2 setup. Both
// techniques' schedules are scored on perceived freshness under the
// true profile.
func RunFigure3(align workload.Alignment, opts Options) (Figure3Result, error) {
	opts = opts.withDefaults()
	res := Figure3Result{
		Alignment: align,
		PF:        Series{Name: "PF_TECHNIQUE"},
		GF:        Series{Name: "GF_TECHNIQUE"},
	}
	thetas := Figure3Thetas()
	if opts.Quick {
		thetas = []float64{0, 0.8, 1.6}
	}
	for _, theta := range thetas {
		spec := workload.TableTwo()
		spec.Theta = theta
		spec.ChangeAlignment = align
		spec.Seed = opts.Seed
		elems, err := workload.Generate(spec)
		if err != nil {
			return res, err
		}
		prob := solver.Problem{Elements: elems, Bandwidth: spec.SyncsPerPeriod}
		pf, err := solver.WaterFill(prob)
		if err != nil {
			return res, err
		}
		gf, err := solver.SolveGF(prob)
		if err != nil {
			return res, err
		}
		res.PF.X = append(res.PF.X, theta)
		res.PF.Y = append(res.PF.Y, pf.Perceived)
		res.GF.X = append(res.GF.X, theta)
		res.GF.Y = append(res.GF.Y, gf.Perceived)
	}
	return res, nil
}

// RunFigure3All runs the three subfigures in the paper's order:
// shuffled-change, aligned, reverse.
func RunFigure3All(opts Options) ([]Figure3Result, error) {
	aligns := []workload.Alignment{workload.Shuffled, workload.Aligned, workload.Reverse}
	out := make([]Figure3Result, 0, len(aligns))
	for _, a := range aligns {
		r, err := RunFigure3(a, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Tables renders the sweep.
func (r Figure3Result) Tables() []*textio.Table {
	t := textio.NewTable(
		fmt.Sprintf("Figure 3 (%s): perceived freshness vs zipf skew", r.Alignment),
		"theta", "PF_TECHNIQUE", "GF_TECHNIQUE")
	for i := range r.PF.X {
		t.AddRow(r.PF.X[i], r.PF.Y[i], r.GF.Y[i])
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure3",
		Title: "Ideal case: PF vs GF technique across interest skew (3 alignments)",
		Run: func(o Options) ([]*textio.Table, error) {
			results, err := RunFigure3All(o)
			if err != nil {
				return nil, err
			}
			var tables []*textio.Table
			for _, r := range results {
				tables = append(tables, r.Tables()...)
			}
			return tables, nil
		},
	})
}
