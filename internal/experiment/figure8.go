package experiment

import (
	"fmt"

	"freshen/internal/cluster"
	"freshen/internal/freshness"
	"freshen/internal/partition"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// Figure8Result reproduces Figure 8: the perceived-freshness
// improvement from running k-means iterations on top of
// PF-partitioning, as a function of the partition count, on the
// Table 3 setup.
type Figure8Result struct {
	// N is the element count used (Options.ClusterN).
	N int
	// PerIterations holds one series per iteration count, named
	// "<n> iterations".
	PerIterations []Series
}

// Figure8Iterations is the paper's legend.
func Figure8Iterations() []int { return []int{0, 1, 3, 5, 10} }

// Figure8PartitionCounts is the paper's x-axis.
func Figure8PartitionCounts() []int { return []int{20, 50, 100, 150, 200} }

// clusterWorkload builds the Table 3 workload scaled to n elements.
func clusterWorkload(n int, seed int64) ([]freshness.Element, float64, error) {
	spec := workload.TableThree()
	ratio := float64(n) / float64(spec.NumObjects)
	spec.NumObjects = n
	spec.UpdatesPerPeriod *= ratio
	spec.SyncsPerPeriod *= ratio
	spec.Seed = seed
	elems, err := workload.Generate(spec)
	return elems, spec.SyncsPerPeriod, err
}

// RunFigure8 sweeps partition counts and k-means iteration counts.
func RunFigure8(opts Options) (Figure8Result, error) {
	opts = opts.withDefaults()
	elems, bandwidth, err := clusterWorkload(opts.ClusterN, opts.Seed)
	if err != nil {
		return Figure8Result{}, err
	}
	res := Figure8Result{N: opts.ClusterN}
	counts := Figure8PartitionCounts()
	iterations := Figure8Iterations()
	if opts.Quick {
		counts = []int{20, 100}
		iterations = []int{0, 3}
	}
	solveOpts := partition.Options{Key: partition.KeyPF}
	for _, iters := range iterations {
		s := Series{Name: fmt.Sprintf("%d iterations", iters)}
		for _, k := range counts {
			seed, err := partition.Build(elems, partition.KeyPF, k, nil)
			if err != nil {
				return res, err
			}
			grouping := seed
			if iters > 0 {
				grouping, _, err = cluster.Refine(elems, seed, cluster.Config{Iterations: iters})
				if err != nil {
					return res, err
				}
			}
			solveOpts.NumPartitions = k
			r, err := partition.SolvePartitioned(elems, bandwidth, grouping, solveOpts)
			if err != nil {
				return res, err
			}
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, r.Solution.Perceived)
		}
		res.PerIterations = append(res.PerIterations, s)
	}
	return res, nil
}

// Tables renders the sweep.
func (r Figure8Result) Tables() []*textio.Table {
	headers := []string{"num partitions"}
	for _, s := range r.PerIterations {
		headers = append(headers, s.Name)
	}
	t := textio.NewTable(
		fmt.Sprintf("Figure 8: perceived freshness after clustering (N=%d)", r.N), headers...)
	for i := range r.PerIterations[0].X {
		cells := []interface{}{int(r.PerIterations[0].X[i])}
		for _, s := range r.PerIterations {
			cells = append(cells, s.Y[i])
		}
		t.AddRow(cells...)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure8",
		Title: "Improvement in perceived freshness after k-means clustering",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunFigure8(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
