package experiment

import (
	"freshen/internal/partition"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// Figure6Result reproduces Figure 6: sensitivity of the partitioning
// techniques to the Zipf skew θ under shuffled-change alignment, at a
// fixed partition count.
type Figure6Result struct {
	// NumPartitions is the fixed K.
	NumPartitions int
	// Techniques holds one series per key over the θ grid.
	Techniques []Series
}

// RunFigure6 sweeps θ at K = 50 partitions (Table 2 setup, shuffled
// change).
func RunFigure6(opts Options) (Figure6Result, error) {
	opts = opts.withDefaults()
	const numPartitions = 50
	res := Figure6Result{NumPartitions: numPartitions}
	thetas := Figure3Thetas()[1:] // the paper's x-axis starts above 0
	if opts.Quick {
		thetas = []float64{0.4, 1.0, 1.6}
	}
	for _, key := range heuristicKeys {
		s := Series{Name: legendName(key)}
		for _, theta := range thetas {
			spec := workload.TableTwo()
			spec.Theta = theta
			spec.ChangeAlignment = workload.Shuffled
			spec.Seed = opts.Seed
			elems, err := workload.Generate(spec)
			if err != nil {
				return res, err
			}
			r, err := partition.Solve(elems, spec.SyncsPerPeriod, partition.Options{
				Key:           key,
				NumPartitions: numPartitions,
			})
			if err != nil {
				return res, err
			}
			s.X = append(s.X, theta)
			s.Y = append(s.Y, r.Solution.Perceived)
		}
		res.Techniques = append(res.Techniques, s)
	}
	return res, nil
}

// Tables renders the sweep.
func (r Figure6Result) Tables() []*textio.Table {
	headers := []string{"theta"}
	for _, s := range r.Techniques {
		headers = append(headers, s.Name)
	}
	t := textio.NewTable("Figure 6: partitioning sensitivity to zipf skew (shuffled change)", headers...)
	for i := range r.Techniques[0].X {
		cells := []interface{}{r.Techniques[0].X[i]}
		for _, s := range r.Techniques {
			cells = append(cells, s.Y[i])
		}
		t.AddRow(cells...)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure6",
		Title: "Partitioning sensitivity to zipf skew under shuffled change",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunFigure6(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
