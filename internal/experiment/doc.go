// Package experiment reproduces every table and figure of the paper's
// evaluation, plus this repository's ablation studies. Each experiment
// is a typed function returning structured series (which the tests and
// benchmarks assert shape properties on) and can render itself as
// aligned text or CSV through the shared registry, which the
// freshenctl CLI exposes.
//
// Absolute numbers need not match the paper — the substrate is a
// simulator, not the authors' testbed — but the qualitative shapes
// (who wins, by what factor, where curves cross) are asserted by the
// package's tests, and EXPERIMENTS.md records a full paper-vs-measured
// comparison.
package experiment
