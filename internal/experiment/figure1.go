package experiment

import (
	"fmt"

	"freshen/internal/freshness"
	"freshen/internal/textio"
)

// Figure1Result reproduces the paper's Figure 1: the relationship
// among sync frequency f, change rate λ and access probability p. Each
// curve fixes p and plots the optimal f as a function of λ for a fixed
// Lagrange multiplier μ — the locus on which solutions of the Core
// Problem lie (the paper's Equation 6).
type Figure1Result struct {
	// Mu is the multiplier shared by all curves.
	Mu float64
	// Curves holds one series per access probability, named "p=<v>".
	Curves []Series
}

// RunFigure1 computes the solution loci for access probabilities with
// the paper's 1:2:4 ratios. The λ grid spans (0, 5] like the paper's
// axis, and μ is chosen so the middle curve loses its bandwidth near
// λ ≈ 4, matching the figure's "an element with λ=4 gets no bandwidth
// at p but significant bandwidth at 2p" narrative.
func RunFigure1() Figure1Result {
	const mu = 0.05
	pol := freshness.FixedOrder{}
	ps := []float64{0.1, 0.2, 0.4}
	res := Figure1Result{Mu: mu}
	for _, p := range ps {
		s := Series{Name: fmt.Sprintf("p=%.2f", p)}
		for l := 0.1; l <= 5.0001; l += 0.1 {
			// Optimal f for this (p, λ) at multiplier μ: invert
			// p·∂F/∂f = μ. Zero when the element's peak marginal value
			// p/λ is below μ.
			f := pol.InvertMarginal(mu/p, l)
			s.X = append(s.X, l)
			s.Y = append(s.Y, f)
		}
		res.Curves = append(res.Curves, s)
	}
	return res
}

// Tables renders the curves side by side.
func (r Figure1Result) Tables() []*textio.Table {
	headers := []string{"lambda"}
	for _, c := range r.Curves {
		headers = append(headers, "f("+c.Name+")")
	}
	t := textio.NewTable(fmt.Sprintf("Figure 1: sync frequency vs change rate at fixed mu=%.3f", r.Mu), headers...)
	for i := range r.Curves[0].X {
		cells := []interface{}{r.Curves[0].X[i]}
		for _, c := range r.Curves {
			cells = append(cells, c.Y[i])
		}
		t.AddRow(cells...)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "figure1",
		Title: "Relationship among sync frequency, change rate and access probability",
		Run: func(Options) ([]*textio.Table, error) {
			return RunFigure1().Tables(), nil
		},
	})
}
