package experiment

import (
	"freshen/internal/selection"
	"freshen/internal/stats"
	"freshen/internal/textio"
	"freshen/internal/workload"
)

// SelectionPoint is one capacity setting of the mirror-selection
// extension experiment.
type SelectionPoint struct {
	// CapacityFrac is the mirror capacity as a fraction of the
	// database size.
	CapacityFrac float64
	// GreedyPF is the perceived freshness of profile-driven selection.
	GreedyPF float64
	// InOrderPF hosts candidates in database order until full.
	InOrderPF float64
	// HostedCount is the number of objects the greedy mirror hosts.
	HostedCount int
}

// SelectionResult quantifies the paper's future-work remark that
// profiles "could influence which objects we include in the mirror
// when the mirror is smaller than the database": perceived freshness
// as the mirror's capacity shrinks, with and without profile-driven
// selection. Candidates are presented in shuffled order so the
// in-order baseline is genuinely uninformed.
type SelectionResult struct {
	Points []SelectionPoint
}

// RunSelection sweeps mirror capacities on a Table 2-style database at
// θ = 1.0.
func RunSelection(opts Options) (SelectionResult, error) {
	opts = opts.withDefaults()
	spec := workload.TableTwo()
	spec.Theta = 1.0
	spec.Seed = opts.Seed
	elems, err := workload.Generate(spec)
	if err != nil {
		return SelectionResult{}, err
	}
	// Shuffle the candidate order so index order carries no interest
	// signal (Generate indexes by access rank).
	permuted := permuteElements(elems, stats.NewRNG(opts.Seed+99).Perm(len(elems)))

	fracs := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	if opts.Quick {
		fracs = []float64{0.25, 1.0}
	}
	var res SelectionResult
	for _, frac := range fracs {
		p := selection.Problem{
			Candidates: permuted,
			Capacity:   frac * float64(len(elems)),
			Bandwidth:  spec.SyncsPerPeriod,
		}
		greedy, err := selection.Greedy(p)
		if err != nil {
			return res, err
		}
		inOrder, err := selection.HostAll(p)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, SelectionPoint{
			CapacityFrac: frac,
			GreedyPF:     greedy.Perceived,
			InOrderPF:    inOrder.Perceived,
			HostedCount:  greedy.HostedCount,
		})
	}
	return res, nil
}

// Tables renders the sweep.
func (r SelectionResult) Tables() []*textio.Table {
	t := textio.NewTable("Extension: profile-driven mirror selection (capacity sweep)",
		"capacity/db", "greedy selection PF", "host-in-order PF", "hosted objects")
	for _, p := range r.Points {
		t.AddRow(p.CapacityFrac, p.GreedyPF, p.InOrderPF, p.HostedCount)
	}
	return []*textio.Table{t}
}

func init() {
	register(Info{
		ID:    "extension-selection",
		Title: "Profile-driven mirror content selection under a capacity limit",
		Run: func(o Options) ([]*textio.Table, error) {
			res, err := RunSelection(o)
			if err != nil {
				return nil, err
			}
			return res.Tables(), nil
		},
	})
}
