package profile

import (
	"math"
	"testing"
)

func TestAggregateTwoUsers(t *testing.T) {
	users := []User{
		{Name: "a", Weight: 1, Interests: map[int]float64{0: 1, 1: 1}},
		{Name: "b", Weight: 1, Interests: map[int]float64{1: 2}},
	}
	got, err := Aggregate(3, users)
	if err != nil {
		t.Fatal(err)
	}
	// User a contributes (0.5, 0.5, 0); user b contributes (0, 1, 0);
	// the sum (0.5, 1.5, 0) normalizes to (0.25, 0.75, 0).
	want := []float64{0.25, 0.75, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("master[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAggregateUserWeighting(t *testing.T) {
	// A general with weight 3 counts three times a private's vote.
	users := []User{
		{Name: "general", Weight: 3, Interests: map[int]float64{0: 1}},
		{Name: "private", Weight: 1, Interests: map[int]float64{1: 1}},
	}
	got, err := Aggregate(2, users)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.75) > 1e-12 || math.Abs(got[1]-0.25) > 1e-12 {
		t.Errorf("master = %v, want [0.75 0.25]", got)
	}
}

func TestAggregateInterestRatiosOnly(t *testing.T) {
	// A user's absolute interest scale must not matter, only ratios:
	// a user with interests {0:100} carries no more force than {0:1}.
	a := []User{
		{Weight: 1, Interests: map[int]float64{0: 100}},
		{Weight: 1, Interests: map[int]float64{1: 1}},
	}
	got, err := Aggregate(2, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 1e-12 {
		t.Errorf("master = %v, want [0.5 0.5]", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(0, nil); err == nil {
		t.Error("empty mirror must fail")
	}
	if _, err := Aggregate(2, nil); err == nil {
		t.Error("no users must fail")
	}
	if _, err := Aggregate(2, []User{{Weight: 0, Interests: map[int]float64{0: 1}}}); err == nil {
		t.Error("all-zero-weight users must fail")
	}
	if _, err := Aggregate(2, []User{{Weight: 1, Interests: map[int]float64{5: 1}}}); err == nil {
		t.Error("out-of-range interest must fail")
	}
	if _, err := Aggregate(2, []User{{Weight: -1, Interests: map[int]float64{0: 1}}}); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := Aggregate(2, []User{{Weight: 1, Interests: map[int]float64{0: -1}}}); err == nil {
		t.Error("negative interest must fail")
	}
}

func TestZipfProfile(t *testing.T) {
	got, err := Zipf(4, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] <= got[1] || got[1] <= got[2] || got[2] <= got[3] {
		t.Errorf("default zipf profile not rank-ordered: %v", got)
	}
	// With a permutation, rank 1 probability lands on perm[0].
	perm := []int{3, 2, 1, 0}
	rev, err := Zipf(4, 1.0, perm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(rev[3-i]-got[i]) > 1e-12 {
			t.Errorf("permuted profile mismatch at %d: %v vs %v", i, rev, got)
		}
	}
}

func TestZipfProfileBadPerm(t *testing.T) {
	if _, err := Zipf(3, 1, []int{0, 1}); err == nil {
		t.Error("short permutation must fail")
	}
	if _, err := Zipf(3, 1, []int{0, 1, 1}); err == nil {
		t.Error("non-bijective permutation must fail")
	}
	if _, err := Zipf(3, 1, []int{0, 1, 5}); err == nil {
		t.Error("out-of-range permutation must fail")
	}
}

func TestFromAccessLog(t *testing.T) {
	got, err := FromAccessLog(3, []int{0, 0, 1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.75, 0.25, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("profile[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Laplace smoothing keeps unseen elements positive.
	smoothed, err := FromAccessLog(3, []int{0, 0, 1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if smoothed[2] <= 0 {
		t.Errorf("smoothed profile gives element 2 mass %v, want > 0", smoothed[2])
	}
	if math.Abs(smoothed[2]-1.0/7.0) > 1e-12 {
		t.Errorf("smoothed[2] = %v, want 1/7", smoothed[2])
	}
}

func TestFromAccessLogErrors(t *testing.T) {
	if _, err := FromAccessLog(0, nil, 0); err == nil {
		t.Error("empty mirror must fail")
	}
	if _, err := FromAccessLog(2, []int{5}, 0); err == nil {
		t.Error("out-of-range access must fail")
	}
	if _, err := FromAccessLog(2, nil, 0); err == nil {
		t.Error("no accesses and no smoothing must fail (zero mass)")
	}
	if _, err := FromAccessLog(2, nil, -1); err == nil {
		t.Error("negative smoothing must fail")
	}
}
