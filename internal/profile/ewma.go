package profile

import (
	"fmt"
	"math"
)

// EWMA is an exponentially weighted access-profile estimator for
// long-running mirrors: unlike FromAccessLog, which weighs the whole
// history equally, it discounts old accesses with a configurable
// half-life so the learned profile follows the community's current
// interests. Updates are O(1) per access (a global scale factor is
// maintained instead of decaying every element).
type EWMA struct {
	weights []float64
	scale   float64 // multiplier applied per access: weights decay by scale
	decay   float64
	mass    float64
}

// NewEWMA creates an estimator over n elements whose past weight
// halves every halfLifeAccesses accesses.
func NewEWMA(n int, halfLifeAccesses float64) (*EWMA, error) {
	if n <= 0 {
		return nil, fmt.Errorf("profile: EWMA needs at least one element, got %d", n)
	}
	if !(halfLifeAccesses > 0) || math.IsInf(halfLifeAccesses, 0) {
		return nil, fmt.Errorf("profile: half-life must be positive and finite, got %v", halfLifeAccesses)
	}
	return &EWMA{
		weights: make([]float64, n),
		scale:   1,
		decay:   math.Exp2(-1 / halfLifeAccesses),
	}, nil
}

// Observe records one access.
func (e *EWMA) Observe(element int) error {
	if element < 0 || element >= len(e.weights) {
		return fmt.Errorf("profile: access to element %d outside [0, %d)", element, len(e.weights))
	}
	// Decaying every weight per access would be O(n); instead the
	// *new* observation is recorded with an ever-growing inverse
	// scale, which is equivalent up to normalization.
	e.scale /= e.decay
	e.weights[element] += e.scale
	e.mass += e.scale
	// Renormalize before the scale overflows float64.
	if e.scale > 1e300 {
		inv := 1 / e.scale
		for i := range e.weights {
			e.weights[i] *= inv
		}
		e.mass *= inv
		e.scale = 1
	}
	return nil
}

// Profile returns the current exponentially weighted access
// distribution, or an error before any observation.
func (e *EWMA) Profile() ([]float64, error) {
	if e.mass == 0 {
		return nil, fmt.Errorf("profile: EWMA has no observations")
	}
	out := make([]float64, len(e.weights))
	for i, w := range e.weights {
		out[i] = w / e.mass
	}
	return out, nil
}
