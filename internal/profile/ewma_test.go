package profile

import (
	"math"
	"testing"
)

func TestEWMAValidation(t *testing.T) {
	if _, err := NewEWMA(0, 10); err == nil {
		t.Error("zero elements must fail")
	}
	if _, err := NewEWMA(5, 0); err == nil {
		t.Error("zero half-life must fail")
	}
	e, err := NewEWMA(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(7); err == nil {
		t.Error("out-of-range access must fail")
	}
	if _, err := e.Profile(); err == nil {
		t.Error("profile before observations must fail")
	}
}

func TestEWMAStationaryStreamMatchesCounts(t *testing.T) {
	e, err := NewEWMA(2, 1e9) // effectively no decay
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		elem := 0
		if i%3 == 2 {
			elem = 1
		}
		if err := e.Observe(elem); err != nil {
			t.Fatal(err)
		}
	}
	p, err := e.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-2.0/3.0) > 0.01 {
		t.Errorf("profile %v, want about [2/3 1/3]", p)
	}
}

func TestEWMAFollowsShift(t *testing.T) {
	// 1000 accesses to element 0, then 100 to element 1: with a
	// half-life of 20 accesses, the recent burst dominates.
	e, err := NewEWMA(2, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := e.Observe(0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := e.Observe(1); err != nil {
			t.Fatal(err)
		}
	}
	p, err := e.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p[1] < 0.9 {
		t.Errorf("after the shift element 1 holds %v, want > 0.9", p[1])
	}
	// A plain count-based profile would still favour element 0.
	counts, err := FromAccessLog(2, append(repeat(0, 1000), repeat(1, 100)...), 0)
	if err != nil {
		t.Fatal(err)
	}
	if counts[1] > 0.2 {
		t.Errorf("count profile %v unexpectedly shifted", counts)
	}
}

func TestEWMARenormalizationStable(t *testing.T) {
	// Tiny half-life forces the internal scale to grow fast and
	// exercises the overflow renormalization path.
	e, err := NewEWMA(3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		if err := e.Observe(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	p, err := e.Profile()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("profile corrupted: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("profile sums to %v", sum)
	}
	// With half-life 0.1 the last access is nearly everything.
	if p[(200000-1)%3] < 0.99 {
		t.Errorf("last-accessed element holds %v, want ~1", p[(200000-1)%3])
	}
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
