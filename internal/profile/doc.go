// Package profile models user interest. Each user submits a profile —
// a declarative statement of the relative importance of the mirror's
// elements — and the mirror site aggregates them, optionally weighting
// users by importance, into the single master profile (an access
// probability distribution) that drives scheduling.
//
// The package also provides the two acquisition paths the paper's
// conclusion describes: direct synthetic profiles (Zipf-skewed) and a
// learner that builds the master profile by monitoring the request log,
// plus a drift monitor that tells the mirror when the profile has
// shifted enough that the freshening schedule should be re-solved.
package profile
