package profile

import (
	"fmt"
	"math"

	"freshen/internal/stats"
)

// User is one client of the mirror. Interests maps element index to a
// non-negative relative importance; it is normalized during
// aggregation, so only ratios matter. Weight lets the mirror operator
// prioritize some users (the paper's "generals or higher paying
// customers"); zero-weight users are ignored.
type User struct {
	Name      string
	Weight    float64
	Interests map[int]float64
}

// Validate reports whether the user profile is usable for a mirror of
// n elements.
func (u User) Validate(n int) error {
	if u.Weight < 0 || math.IsNaN(u.Weight) || math.IsInf(u.Weight, 0) {
		return fmt.Errorf("profile: user %q has invalid weight %v", u.Name, u.Weight)
	}
	for idx, v := range u.Interests {
		if idx < 0 || idx >= n {
			return fmt.Errorf("profile: user %q references element %d outside [0, %d)", u.Name, idx, n)
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("profile: user %q has invalid interest %v in element %d", u.Name, v, idx)
		}
	}
	return nil
}

// mass returns the user's total interest mass.
func (u User) mass() float64 {
	var m float64
	for _, v := range u.Interests {
		m += v
	}
	return m
}

// Aggregate combines user profiles into the master profile for a
// mirror of n elements: each user's interests are normalized to a
// probability distribution, scaled by the user's weight, summed, and
// renormalized. Users with zero weight or zero interest mass are
// skipped; if nothing remains the aggregate is undefined and an error
// is returned.
func Aggregate(n int, users []User) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("profile: mirror must have at least one element, got %d", n)
	}
	master := make([]float64, n)
	var contributed bool
	for _, u := range users {
		if err := u.Validate(n); err != nil {
			return nil, err
		}
		if u.Weight == 0 {
			continue
		}
		m := u.mass()
		if m == 0 {
			continue
		}
		for idx, v := range u.Interests {
			master[idx] += u.Weight * v / m
		}
		contributed = true
	}
	if !contributed {
		return nil, fmt.Errorf("profile: no user contributed interest mass")
	}
	return stats.Normalize(master)
}

// Zipf builds a master profile directly from a Zipf distribution with
// skew theta: the element at position perm[r] receives the probability
// of rank r+1. A nil perm means element index equals rank order
// (element 0 is the hottest).
func Zipf(n int, theta float64, perm []int) ([]float64, error) {
	z, err := stats.NewZipf(n, theta)
	if err != nil {
		return nil, err
	}
	probs := z.Probs()
	if perm == nil {
		return probs, nil
	}
	if len(perm) != n {
		return nil, fmt.Errorf("profile: permutation has %d entries for %d elements", len(perm), n)
	}
	out := make([]float64, n)
	seen := make([]bool, n)
	for r, idx := range perm {
		if idx < 0 || idx >= n || seen[idx] {
			return nil, fmt.Errorf("profile: perm is not a permutation of [0, %d)", n)
		}
		seen[idx] = true
		out[idx] = probs[r]
	}
	return out, nil
}

// FromAccessLog estimates the master profile from an observed access
// log — the "simple learning algorithm that monitors the system
// request log" of the paper's conclusion. Each entry is an element
// index. Smoothing adds the given pseudo-count to every element
// (Laplace smoothing) so unobserved elements keep a small positive
// probability; pass 0 for the raw maximum-likelihood estimate.
func FromAccessLog(n int, accesses []int, smoothing float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("profile: mirror must have at least one element, got %d", n)
	}
	if smoothing < 0 || math.IsNaN(smoothing) || math.IsInf(smoothing, 0) {
		return nil, fmt.Errorf("profile: smoothing must be finite and non-negative, got %v", smoothing)
	}
	counts := make([]float64, n)
	for i := range counts {
		counts[i] = smoothing
	}
	for _, a := range accesses {
		if a < 0 || a >= n {
			return nil, fmt.Errorf("profile: access to element %d outside [0, %d)", a, n)
		}
		counts[a]++
	}
	return stats.Normalize(counts)
}
