package profile

import (
	"fmt"
	"math"
)

// TotalVariation returns the total-variation distance between two
// distributions over the same elements: ½·Σ|aᵢ − bᵢ| ∈ [0, 1].
func TotalVariation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("profile: distributions have different sizes %d and %d", len(a), len(b))
	}
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d / 2, nil
}

// Monitor watches the live access stream and reports when the profile
// has drifted far enough from the one the current schedule was solved
// for that re-solving is warranted. The paper notes large mirrors must
// "periodically solve the Core Problem to ensure that the freshening
// schedule still produces good results"; Monitor makes that trigger
// interest-driven instead of purely periodic.
type Monitor struct {
	baseline  []float64
	threshold float64
	minCount  int
	counts    []float64
	total     int
}

// NewMonitor creates a drift monitor against the given baseline
// profile. A re-solve is signalled when the total-variation distance
// between the baseline and the empirical profile of accesses observed
// so far exceeds threshold, but never before minCount accesses have
// been seen. Size minCount so sampling noise stays below the
// threshold: the expected TV distance of n samples from an N-element
// baseline is on the order of sqrt(N/(2πn)), so minCount should be
// comfortably above N/(2π·threshold²).
func NewMonitor(baseline []float64, threshold float64, minCount int) (*Monitor, error) {
	if len(baseline) == 0 {
		return nil, fmt.Errorf("profile: baseline profile is empty")
	}
	if !(threshold > 0) || threshold > 1 {
		return nil, fmt.Errorf("profile: drift threshold must be in (0, 1], got %v", threshold)
	}
	if minCount < 1 {
		return nil, fmt.Errorf("profile: minCount must be at least 1, got %d", minCount)
	}
	m := &Monitor{
		baseline:  append([]float64(nil), baseline...),
		threshold: threshold,
		minCount:  minCount,
		counts:    make([]float64, len(baseline)),
	}
	return m, nil
}

// Observe records one access and reports whether the accumulated
// drift now crosses the threshold.
func (m *Monitor) Observe(element int) (drifted bool, err error) {
	if element < 0 || element >= len(m.counts) {
		return false, fmt.Errorf("profile: access to element %d outside [0, %d)", element, len(m.counts))
	}
	m.counts[element]++
	m.total++
	if m.total < m.minCount {
		return false, nil
	}
	d, err := m.Drift()
	if err != nil {
		return false, err
	}
	return d > m.threshold, nil
}

// Drift returns the current total-variation distance between the
// baseline and the empirical profile, or 0 before any access.
func (m *Monitor) Drift() (float64, error) {
	if m.total == 0 {
		return 0, nil
	}
	emp := make([]float64, len(m.counts))
	for i, c := range m.counts {
		emp[i] = c / float64(m.total)
	}
	return TotalVariation(m.baseline, emp)
}

// Empirical returns the observed profile so far (nil before any
// access). Callers use it as the new baseline when re-solving.
func (m *Monitor) Empirical() []float64 {
	if m.total == 0 {
		return nil
	}
	emp := make([]float64, len(m.counts))
	for i, c := range m.counts {
		emp[i] = c / float64(m.total)
	}
	return emp
}

// Reset re-baselines the monitor (typically on the Empirical profile
// just used for a re-solve) and clears the observation window.
func (m *Monitor) Reset(baseline []float64) error {
	if len(baseline) != len(m.counts) {
		return fmt.Errorf("profile: baseline has %d entries, monitor tracks %d", len(baseline), len(m.counts))
	}
	copy(m.baseline, baseline)
	for i := range m.counts {
		m.counts[i] = 0
	}
	m.total = 0
	return nil
}

// Total returns the number of accesses observed since the last reset.
func (m *Monitor) Total() int { return m.total }
