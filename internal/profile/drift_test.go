package profile

import (
	"math"
	"testing"
)

func TestTotalVariation(t *testing.T) {
	d, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("TV of disjoint distributions = %v, want 1", d)
	}
	d, err = TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("TV of identical distributions = %v, want 0", d)
	}
	if _, err := TotalVariation([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestMonitorSignalsDrift(t *testing.T) {
	baseline := []float64{0.5, 0.5}
	m, err := NewMonitor(baseline, 0.3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Feed accesses that all hit element 0: empirical profile (1, 0),
	// TV distance 0.5 > 0.3, but not before 10 observations.
	for i := 0; i < 9; i++ {
		drifted, err := m.Observe(0)
		if err != nil {
			t.Fatal(err)
		}
		if drifted {
			t.Fatalf("drift signalled after %d < minCount observations", i+1)
		}
	}
	drifted, err := m.Observe(0)
	if err != nil {
		t.Fatal(err)
	}
	if !drifted {
		t.Error("drift not signalled at TV distance 0.5 with threshold 0.3")
	}
	if got := m.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
}

func TestMonitorStableProfileNoDrift(t *testing.T) {
	baseline := []float64{0.5, 0.5}
	m, err := NewMonitor(baseline, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		drifted, err := m.Observe(i % 2)
		if err != nil {
			t.Fatal(err)
		}
		if drifted {
			t.Fatalf("false drift alarm at observation %d", i+1)
		}
	}
	d, err := m.Drift()
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("drift = %v for a perfectly matching stream", d)
	}
}

func TestMonitorResetAndEmpirical(t *testing.T) {
	m, err := NewMonitor([]float64{1, 0}, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Empirical() != nil {
		t.Error("Empirical before any access must be nil")
	}
	if _, err := m.Observe(1); err != nil {
		t.Fatal(err)
	}
	emp := m.Empirical()
	if emp[1] != 1 {
		t.Errorf("Empirical = %v, want [0 1]", emp)
	}
	if err := m.Reset(emp); err != nil {
		t.Fatal(err)
	}
	if m.Total() != 0 {
		t.Error("Reset did not clear the observation window")
	}
	d, err := m.Drift()
	if err != nil || d != 0 {
		t.Errorf("Drift after reset = %v, %v", d, err)
	}
	if err := m.Reset([]float64{1}); err == nil {
		t.Error("Reset with wrong length must fail")
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, 0.5, 1); err == nil {
		t.Error("empty baseline must fail")
	}
	if _, err := NewMonitor([]float64{1}, 0, 1); err == nil {
		t.Error("zero threshold must fail")
	}
	if _, err := NewMonitor([]float64{1}, 1.5, 1); err == nil {
		t.Error("threshold above 1 must fail")
	}
	if _, err := NewMonitor([]float64{1}, 0.5, 0); err == nil {
		t.Error("minCount 0 must fail")
	}
	m, err := NewMonitor([]float64{1, 0}, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(7); err == nil {
		t.Error("out-of-range access must fail")
	}
	if math.IsNaN(func() float64 { d, _ := m.Drift(); return d }()) {
		t.Error("Drift must never be NaN")
	}
}
