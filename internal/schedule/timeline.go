package schedule

import (
	"container/heap"
	"fmt"
	"math"

	"freshen/internal/stats"
)

// SyncEvent is one refresh operation: fetch element Element at time
// Time.
type SyncEvent struct {
	Time    float64
	Element int
}

// Options configures timeline construction.
type Options struct {
	// Horizon is the length of the generated timeline; events lie in
	// [0, Horizon).
	Horizon float64
	// RandomPhase staggers each element's first refresh uniformly
	// within its interval (using Seed). Without it every element
	// starts at its half-interval point, a deterministic stagger that
	// avoids a thundering herd at t = 0.
	RandomPhase bool
	// Seed drives the random phases.
	Seed int64
}

// Timeline expands frequencies (refreshes per unit time) into the
// merged, time-ordered sync stream over [0, Horizon). Elements with
// zero frequency contribute no events. The merge uses a heap over the
// per-element next-due times, so the stream is produced in O(E·log N).
func Timeline(freqs []float64, opts Options) ([]SyncEvent, error) {
	if !(opts.Horizon > 0) || math.IsInf(opts.Horizon, 0) {
		return nil, fmt.Errorf("schedule: horizon must be positive and finite, got %v", opts.Horizon)
	}
	var r *stats.RNG
	if opts.RandomPhase {
		r = stats.NewRNG(opts.Seed)
	}
	h := &eventHeap{}
	expected := 0.0
	for i, f := range freqs {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("schedule: element %d has invalid frequency %v", i, f)
		}
		if f == 0 {
			continue
		}
		interval := 1 / f
		phase := 0.5 * interval
		if r != nil {
			phase = r.Float64() * interval
		}
		if phase < opts.Horizon {
			heap.Push(h, SyncEvent{Time: phase, Element: i})
			expected += (opts.Horizon - phase) * f
		}
	}
	events := make([]SyncEvent, 0, int(expected)+len(freqs))
	for h.Len() > 0 {
		ev := heap.Pop(h).(SyncEvent)
		events = append(events, ev)
		next := ev.Time + 1/freqs[ev.Element]
		if next < opts.Horizon {
			heap.Push(h, SyncEvent{Time: next, Element: ev.Element})
		}
	}
	return events, nil
}

// Order returns just the element sequence of a timeline — the paper's
// "fixed order" in which the mirror cycles through its refreshes.
func Order(events []SyncEvent) []int {
	order := make([]int, len(events))
	for i, ev := range events {
		order[i] = ev.Element
	}
	return order
}

// eventHeap is a min-heap of SyncEvents by time, with element index as
// the tiebreak so merges are deterministic.
type eventHeap []SyncEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Element < h[j].Element
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(SyncEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
