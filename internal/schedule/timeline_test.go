package schedule

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimelineEvenSpacing(t *testing.T) {
	events, err := Timeline([]float64{2}, Options{Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Frequency 2 over horizon 10, phased at half-interval 0.25:
	// events at 0.25, 0.75, 1.25, ..., 9.75 — twenty of them.
	if len(events) != 20 {
		t.Fatalf("got %d events, want 20", len(events))
	}
	for i, ev := range events {
		want := 0.25 + 0.5*float64(i)
		if math.Abs(ev.Time-want) > 1e-9 {
			t.Errorf("event %d at %v, want %v", i, ev.Time, want)
		}
		if ev.Element != 0 {
			t.Errorf("event %d element %d", i, ev.Element)
		}
	}
}

func TestTimelineMergedSorted(t *testing.T) {
	freqs := []float64{1.5, 0, 3.7, 0.4}
	events, err := Timeline(freqs, Options{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(freqs))
	prev := -1.0
	for _, ev := range events {
		if ev.Time < prev {
			t.Fatal("events out of order")
		}
		prev = ev.Time
		if ev.Time < 0 || ev.Time >= 100 {
			t.Fatalf("event at %v outside horizon", ev.Time)
		}
		counts[ev.Element]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-frequency element synced %d times", counts[1])
	}
	for i, f := range freqs {
		if f == 0 {
			continue
		}
		want := f * 100
		if math.Abs(float64(counts[i])-want) > 1 {
			t.Errorf("element %d synced %d times, want about %v", i, counts[i], want)
		}
	}
}

func TestTimelineRandomPhaseDeterministic(t *testing.T) {
	freqs := []float64{1, 2, 3}
	a, err := Timeline(freqs, Options{Horizon: 10, RandomPhase: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Timeline(freqs, Options{Horizon: 10, RandomPhase: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("same seed produced different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
	c, err := Timeline(freqs, Options{Horizon: 10, RandomPhase: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical timelines")
	}
}

func TestTimelineValidation(t *testing.T) {
	if _, err := Timeline([]float64{1}, Options{Horizon: 0}); err == nil {
		t.Error("zero horizon must fail")
	}
	if _, err := Timeline([]float64{-1}, Options{Horizon: 10}); err == nil {
		t.Error("negative frequency must fail")
	}
	if _, err := Timeline([]float64{math.NaN()}, Options{Horizon: 10}); err == nil {
		t.Error("NaN frequency must fail")
	}
	// All-zero frequencies yield an empty timeline, not an error.
	events, err := Timeline([]float64{0, 0}, Options{Horizon: 10})
	if err != nil || len(events) != 0 {
		t.Errorf("all-zero freqs: %v, %v", events, err)
	}
}

func TestOrder(t *testing.T) {
	events := []SyncEvent{{Time: 1, Element: 2}, {Time: 2, Element: 0}}
	got := Order(events)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("Order = %v, want [2 0]", got)
	}
}

func TestTimelinePropertyIntervalsExact(t *testing.T) {
	// Property: consecutive syncs of the same element are exactly one
	// interval apart (the Fixed-Order premise behind the closed form).
	f := func(rawF uint8, seed int64) bool {
		freq := float64(rawF%40)/4 + 0.25
		events, err := Timeline([]float64{freq}, Options{Horizon: 50, RandomPhase: true, Seed: seed})
		if err != nil {
			return false
		}
		for i := 1; i < len(events); i++ {
			if math.Abs(events[i].Time-events[i-1].Time-1/freq) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
