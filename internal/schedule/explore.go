package schedule

import (
	"fmt"
	"math"

	"freshen/internal/freshness"
	"freshen/internal/solver"
)

// ExploreElements builds the synthetic probe problem the explore slice
// solves: every element keeps its real size (probe cost is a real
// fetch), is assigned the shared probe rate probeLambda (the estimator
// is exactly what we do not trust yet, so no per-element λ̂ enters the
// probe objective), and gets access weight proportional to its
// estimator uncertainty. Water-filling this problem spends the probe
// budget where knowledge is thinnest — the explore half of the
// explore/exploit split — while staying inside the same certified
// concave machinery as the exploit plan.
func ExploreElements(elems []freshness.Element, uncertainty []float64, probeLambda float64) ([]freshness.Element, error) {
	if len(elems) == 0 {
		return nil, fmt.Errorf("schedule: explore needs at least one element")
	}
	if len(uncertainty) != len(elems) {
		return nil, fmt.Errorf("schedule: %d uncertainty scores for %d elements", len(uncertainty), len(elems))
	}
	if !(probeLambda > 0) || math.IsInf(probeLambda, 0) {
		return nil, fmt.Errorf("schedule: probe rate must be positive and finite, got %v", probeLambda)
	}
	total := 0.0
	for i, u := range uncertainty {
		if math.IsNaN(u) || math.IsInf(u, 0) || u < 0 {
			return nil, fmt.Errorf("schedule: element %d has invalid uncertainty %v", i, u)
		}
		total += u
	}
	out := make([]freshness.Element, len(elems))
	for i, e := range elems {
		e.Lambda = probeLambda
		e.AccessProb = uncertainty[i]
		out[i] = e
	}
	if total == 0 {
		// Nothing is uncertain: probe uniformly rather than not at all,
		// so the slice still guards against estimator drift.
		for i := range out {
			out[i].AccessProb = 1.0 / float64(len(out))
		}
	}
	return out, nil
}

// AllocateExplore water-fills budget over the probe problem built by
// ExploreElements and returns the per-element probe frequencies plus
// the bandwidth actually spent. A zero budget returns all-zero
// frequencies. The caller adds these on top of the exploit plan's
// frequencies; the sum of the returned bandwidth never exceeds budget
// (the underlying engine's contract, certified in tests via
// testkit.Certify).
func AllocateExplore(elems []freshness.Element, uncertainty []float64, probeLambda, budget float64) ([]float64, float64, error) {
	if math.IsNaN(budget) || math.IsInf(budget, 0) || budget < 0 {
		return nil, 0, fmt.Errorf("schedule: explore budget must be finite and non-negative, got %v", budget)
	}
	probe, err := ExploreElements(elems, uncertainty, probeLambda)
	if err != nil {
		return nil, 0, err
	}
	if budget == 0 {
		return make([]float64, len(elems)), 0, nil
	}
	sol, err := solver.NewEngine().WaterFill(solver.Problem{Elements: probe, Bandwidth: budget})
	if err != nil {
		return nil, 0, fmt.Errorf("schedule: explore allocation: %w", err)
	}
	return sol.Freqs, sol.BandwidthUsed, nil
}
