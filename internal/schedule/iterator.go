package schedule

import (
	"container/heap"
	"fmt"
	"math"

	"freshen/internal/stats"
)

// Iterator yields a plan's refresh operations one at a time, forever —
// the form a live mirror's fetch loop consumes. Unlike Timeline it has
// no horizon: each Next call returns the next due (time, element) pair
// under Fixed-Order spacing, with per-element intervals 1/fᵢ.
//
// Iterator is not safe for concurrent use; a fetch loop owns it.
type Iterator struct {
	freqs []float64
	h     eventHeap
}

// NewIterator builds an iterator over the frequency vector. Elements
// with zero frequency never appear. randomPhase staggers first
// refreshes within each element's interval using seed; otherwise every
// element starts at its half-interval point.
func NewIterator(freqs []float64, randomPhase bool, seed int64) (*Iterator, error) {
	it := &Iterator{freqs: append([]float64(nil), freqs...)}
	var r *stats.RNG
	if randomPhase {
		r = stats.NewRNG(seed)
	}
	for i, f := range freqs {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("schedule: element %d has invalid frequency %v", i, f)
		}
		if f == 0 {
			continue
		}
		interval := 1 / f
		phase := 0.5 * interval
		if r != nil {
			phase = r.Float64() * interval
		}
		heap.Push(&it.h, SyncEvent{Time: phase, Element: i})
	}
	return it, nil
}

// Next returns the next due refresh and schedules the element's
// subsequent one. ok is false when the iterator is empty (every
// frequency was zero).
func (it *Iterator) Next() (ev SyncEvent, ok bool) {
	if it.h.Len() == 0 {
		return SyncEvent{}, false
	}
	ev = heap.Pop(&it.h).(SyncEvent)
	heap.Push(&it.h, SyncEvent{
		Time:    ev.Time + 1/it.freqs[ev.Element],
		Element: ev.Element,
	})
	return ev, true
}

// Peek returns the next due refresh without consuming it.
func (it *Iterator) Peek() (ev SyncEvent, ok bool) {
	if it.h.Len() == 0 {
		return SyncEvent{}, false
	}
	return it.h[0], true
}

// Reschedule replaces the frequency of one element from now on: its
// pending occurrence keeps its due time (or is inserted at now +
// interval if the element was idle), and subsequent occurrences follow
// the new interval. Setting freq to 0 removes the element after its
// pending occurrence fires; Next skips retired elements lazily.
func (it *Iterator) Reschedule(element int, freq, now float64) error {
	if element < 0 || element >= len(it.freqs) {
		return fmt.Errorf("schedule: element %d outside [0, %d)", element, len(it.freqs))
	}
	if freq < 0 || math.IsNaN(freq) || math.IsInf(freq, 0) {
		return fmt.Errorf("schedule: invalid frequency %v", freq)
	}
	wasIdle := it.freqs[element] == 0
	it.freqs[element] = freq
	if wasIdle && freq > 0 {
		heap.Push(&it.h, SyncEvent{Time: now + 1/freq, Element: element})
	}
	if freq == 0 && !wasIdle {
		// Remove the pending occurrence so the element retires now.
		for i := range it.h {
			if it.h[i].Element == element {
				heap.Remove(&it.h, i)
				break
			}
		}
	}
	return nil
}
