package schedule

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizePreservesBudget(t *testing.T) {
	freqs := []float64{1.15, 1.36, 1.35, 1.14, 0.0}
	counts, err := Quantize(freqs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Errorf("total %d, want round(5.0) = 5", total)
	}
	// Floors sum to 4 against a budget of 5: one leftover slot goes to
	// the largest remainder (0.36).
	want := []int{1, 2, 1, 1, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", counts, want)
			break
		}
	}
}

func TestQuantizeExactIntegers(t *testing.T) {
	counts, err := Quantize([]float64{2, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 3 {
		t.Errorf("counts = %v", counts)
	}
}

func TestQuantizeValidation(t *testing.T) {
	if _, err := Quantize([]float64{-1}); err == nil {
		t.Error("negative frequency must fail")
	}
	if _, err := Quantize([]float64{math.NaN()}); err == nil {
		t.Error("NaN must fail")
	}
}

func TestQuantizePropertyBudgetAndProximity(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		freqs := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			freqs[i] = float64(v%800) / 100
			total += freqs[i]
		}
		counts, err := Quantize(freqs)
		if err != nil {
			return false
		}
		sum := 0
		for i, c := range counts {
			// Each count is within 1 of its frequency.
			if math.Abs(float64(c)-freqs[i]) >= 1 {
				return false
			}
			sum += c
		}
		return sum == int(math.Round(total))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizedFreqs(t *testing.T) {
	got := QuantizedFreqs([]int{0, 2, 5})
	if got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Errorf("QuantizedFreqs = %v", got)
	}
}

func TestIteratorMatchesTimeline(t *testing.T) {
	freqs := []float64{1.5, 0, 3.7}
	events, err := Timeline(freqs, Options{Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(freqs, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, ok := it.Next()
		if !ok {
			t.Fatalf("iterator dried up at %d", i)
		}
		if math.Abs(got.Time-want.Time) > 1e-9 || got.Element != want.Element {
			t.Fatalf("event %d: iterator %+v vs timeline %+v", i, got, want)
		}
	}
	// And it keeps going past any horizon.
	next, ok := it.Next()
	if !ok || next.Time < 10 {
		t.Errorf("iterator should continue past the horizon, got %+v ok=%v", next, ok)
	}
}

func TestIteratorEmptyAndPeek(t *testing.T) {
	it, err := NewIterator([]float64{0, 0}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Error("all-zero iterator must be empty")
	}
	if _, ok := it.Peek(); ok {
		t.Error("all-zero iterator Peek must be empty")
	}

	it, err = NewIterator([]float64{2}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1, ok := it.Peek()
	if !ok {
		t.Fatal("peek failed")
	}
	n1, _ := it.Next()
	if p1 != n1 {
		t.Errorf("Peek %+v != Next %+v", p1, n1)
	}
}

func TestIteratorValidation(t *testing.T) {
	if _, err := NewIterator([]float64{-1}, false, 0); err == nil {
		t.Error("negative frequency must fail")
	}
	it, err := NewIterator([]float64{1}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Reschedule(5, 1, 0); err == nil {
		t.Error("out-of-range element must fail")
	}
	if err := it.Reschedule(0, math.Inf(1), 0); err == nil {
		t.Error("infinite frequency must fail")
	}
}

func TestIteratorReschedule(t *testing.T) {
	it, err := NewIterator([]float64{1, 1}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Speed element 0 up to 4/period at t=0: its pending occurrence
	// (t=0.5) stays, subsequent ones follow the 0.25 interval.
	if err := it.Reschedule(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	var zeroTimes []float64
	for i := 0; i < 12; i++ {
		ev, ok := it.Next()
		if !ok {
			t.Fatal("iterator dried up")
		}
		if ev.Element == 0 {
			zeroTimes = append(zeroTimes, ev.Time)
		}
	}
	if len(zeroTimes) < 3 {
		t.Fatalf("element 0 appeared %d times in 12 events after speed-up", len(zeroTimes))
	}
	if math.Abs(zeroTimes[0]-0.5) > 1e-9 {
		t.Errorf("pending occurrence moved: %v", zeroTimes[0])
	}
	for i := 1; i < len(zeroTimes); i++ {
		if math.Abs(zeroTimes[i]-zeroTimes[i-1]-0.25) > 1e-9 {
			t.Errorf("interval after reschedule: %v", zeroTimes[i]-zeroTimes[i-1])
		}
	}
}

func TestIteratorRetireAndRevive(t *testing.T) {
	it, err := NewIterator([]float64{2, 2}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Retire element 1 immediately: it must never fire.
	if err := it.Reschedule(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ev, ok := it.Next()
		if !ok {
			t.Fatal("iterator dried up")
		}
		if ev.Element == 1 {
			t.Fatal("retired element fired")
		}
	}
	// Revive it at t=4 with frequency 1: first occurrence at 5.
	if err := it.Reschedule(1, 1, 4); err != nil {
		t.Fatal(err)
	}
	for {
		ev, ok := it.Next()
		if !ok {
			t.Fatal("iterator dried up")
		}
		if ev.Element == 1 {
			if math.Abs(ev.Time-5) > 1e-9 {
				t.Errorf("revived element first fires at %v, want 5", ev.Time)
			}
			break
		}
		if ev.Time > 20 {
			t.Fatal("revived element never fired")
		}
	}
}
