package schedule

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/stats"
	"freshen/internal/testkit"
)

func TestExploreElementsValidation(t *testing.T) {
	elems := testkit.RandomElements(1, 4, false)
	if _, err := ExploreElements(nil, nil, 1); err == nil {
		t.Error("empty elements accepted")
	}
	if _, err := ExploreElements(elems, []float64{1}, 1); err == nil {
		t.Error("mismatched uncertainty length accepted")
	}
	if _, err := ExploreElements(elems, []float64{1, 1, 1, 1}, 0); err == nil {
		t.Error("zero probe rate accepted")
	}
	if _, err := ExploreElements(elems, []float64{1, 1, math.NaN(), 1}, 1); err == nil {
		t.Error("NaN uncertainty accepted")
	}
	if _, err := ExploreElements(elems, []float64{1, 1, -0.5, 1}, 1); err == nil {
		t.Error("negative uncertainty accepted")
	}
	if _, _, err := AllocateExplore(elems, []float64{1, 1, 1, 1}, 1, math.Inf(1)); err == nil {
		t.Error("infinite budget accepted")
	}
	if _, _, err := AllocateExplore(elems, []float64{1, 1, 1, 1}, 1, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestExploreBudgetNeverExceeded is the estimator↔scheduler boundary
// property: across seeded random workloads and uncertainty profiles,
// the probe allocation never spends more than the explore slice it was
// given, and every returned frequency is finite and non-negative.
func TestExploreBudgetNeverExceeded(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := stats.NewRNG(seed + 1000)
		n := 1 + int(r.Float64()*80)
		elems := testkit.RandomElements(seed, n, seed%2 == 0)
		uncertainty := make([]float64, n)
		for i := range uncertainty {
			switch seed % 3 {
			case 0:
				uncertainty[i] = r.Float64()
			case 1:
				// Sparse: most elements fully known.
				if r.Float64() < 0.1 {
					uncertainty[i] = 1
				}
			default:
				// All zero on a few seeds: the uniform-probe fallback.
			}
		}
		budget := r.Float64() * float64(n)
		freqs, used, err := AllocateExplore(elems, uncertainty, 1.0, budget)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(freqs) != n {
			t.Fatalf("seed %d: %d freqs for %d elements", seed, len(freqs), n)
		}
		var spent float64
		for i, f := range freqs {
			if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
				t.Fatalf("seed %d: freq[%d] = %v", seed, i, f)
			}
			spent += f * elems[i].Size
		}
		if spent > budget*(1+1e-9)+1e-12 {
			t.Errorf("seed %d: explore spent %v over budget %v", seed, spent, budget)
		}
		if math.Abs(spent-used) > 1e-6*(1+used) {
			t.Errorf("seed %d: reported use %v, recomputed %v", seed, used, spent)
		}
	}
}

// TestExploreAllocationWaterFilled certifies via the independent KKT
// checker that the explore slice is itself optimally water-filled over
// the probe problem (uncertainty as weight, shared probe rate) — the
// allocation is not ad hoc, it is the paper's machinery one level up.
func TestExploreAllocationWaterFilled(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := stats.NewRNG(seed + 77)
		n := 5 + int(r.Float64()*50)
		elems := testkit.RandomElements(seed, n, false)
		uncertainty := make([]float64, n)
		for i := range uncertainty {
			uncertainty[i] = r.Float64()
		}
		budget := 0.5 + r.Float64()*float64(n)/4
		const probeLambda = 1.0
		freqs, _, err := AllocateExplore(elems, uncertainty, probeLambda, budget)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		probe, err := ExploreElements(elems, uncertainty, probeLambda)
		if err != nil {
			t.Fatal(err)
		}
		testkit.MustCertify(t, freshness.FixedOrder{}, probe, freqs, budget, 1e-6)
	}
}

func TestExploreZeroBudgetAndUniformFallback(t *testing.T) {
	elems := testkit.RandomElements(3, 6, false)
	u := []float64{1, 0, 0.5, 0, 0, 0.25}
	freqs, used, err := AllocateExplore(elems, u, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if used != 0 {
		t.Errorf("zero budget used %v", used)
	}
	for i, f := range freqs {
		if f != 0 {
			t.Errorf("zero budget freq[%d] = %v", i, f)
		}
	}

	// All-zero uncertainty probes uniformly instead of starving.
	freqs, used, err = AllocateExplore(elems, make([]float64, 6), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(used > 0) {
		t.Fatalf("uniform fallback spent %v, want positive", used)
	}
	positive := 0
	for _, f := range freqs {
		if f > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Error("uniform fallback funded nothing")
	}

	// Only uncertain elements are probed when some are certain.
	freqs, _, err = AllocateExplore(elems, u, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range freqs {
		if u[i] == 0 && f > 0 {
			t.Errorf("certain element %d probed at %v", i, f)
		}
	}
}

// TestExploreBudgetCutMonotone pins the contract the fleet's
// hierarchical allocator leans on: when a shard's budget slice is cut,
// the explore spend computed from it shrinks monotonically — the probe
// tax scales with the local slice and never spends bandwidth the shard
// no longer holds.
func TestExploreBudgetCutMonotone(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := stats.NewRNG(seed + 500)
		n := 2 + int(r.Float64()*40)
		elems := testkit.RandomElements(seed, n, false)
		uncertainty := make([]float64, n)
		for i := range uncertainty {
			uncertainty[i] = r.Float64()
		}
		prev := math.Inf(1)
		budget := float64(n)
		for cut := 0; cut < 6; cut++ {
			_, used, err := AllocateExplore(elems, uncertainty, 1.0, budget)
			if err != nil {
				t.Fatalf("seed %d budget %v: %v", seed, budget, err)
			}
			if used > budget*(1+1e-9)+1e-12 {
				t.Errorf("seed %d: explore used %v of budget %v", seed, used, budget)
			}
			if used > prev*(1+1e-9) {
				t.Errorf("seed %d: cutting the budget to %v RAISED explore spend %v → %v", seed, budget, prev, used)
			}
			prev = used
			budget /= 2
		}
		// The limit case: a fully cut slice spends nothing.
		_, used, err := AllocateExplore(elems, uncertainty, 1.0, 0)
		if err != nil || used != 0 {
			t.Errorf("seed %d: zero budget spent %v (err %v)", seed, used, err)
		}
	}
}
