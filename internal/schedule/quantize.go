package schedule

import (
	"fmt"
	"math"
	"sort"
)

// Quantize rounds fractional per-period refresh frequencies to whole
// refresh counts while preserving the total budget — what a mirror
// that plans period-by-period actually executes. It uses the largest-
// remainder method: every element gets ⌊fᵢ⌋ refreshes, and the
// leftover budget goes to the elements with the largest fractional
// parts (ties broken by lower index for determinism). Sizes are not
// consulted: quantization is about slot counts, so callers with sized
// objects should quantize the frequency vector their bandwidth-aware
// solver produced.
//
// The returned counts satisfy Σ counts = round(Σ freqs) exactly.
func Quantize(freqs []float64) ([]int, error) {
	counts := make([]int, len(freqs))
	type frac struct {
		idx int
		rem float64
	}
	var rems []frac
	var total float64
	for i, f := range freqs {
		if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("schedule: element %d has invalid frequency %v", i, f)
		}
		total += f
		floor := math.Floor(f)
		counts[i] = int(floor)
		if rem := f - floor; rem > 0 {
			rems = append(rems, frac{idx: i, rem: rem})
		}
	}
	budget := int(math.Round(total))
	used := 0
	for _, c := range counts {
		used += c
	}
	leftover := budget - used
	if leftover < 0 {
		// Impossible with floor counts, but guard against float edge
		// cases where Round(total) < Σ floors.
		leftover = 0
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].rem > rems[b].rem })
	for i := 0; i < leftover && i < len(rems); i++ {
		counts[rems[i].idx]++
	}
	return counts, nil
}

// QuantizedFreqs converts whole refresh counts back to a frequency
// vector (refreshes per period) for scoring with the closed forms.
func QuantizedFreqs(counts []int) []float64 {
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c)
	}
	return out
}
