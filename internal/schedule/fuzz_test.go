package schedule

import (
	"math"
	"testing"
)

// FuzzQuantize checks budget preservation and per-element proximity on
// arbitrary frequency vectors.
func FuzzQuantize(f *testing.F) {
	f.Add([]byte{10, 20, 30})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		freqs := make([]float64, len(raw))
		var total float64
		for i, b := range raw {
			freqs[i] = float64(b) / 16
			total += freqs[i]
		}
		counts, err := Quantize(freqs)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		sum := 0
		for i, c := range counts {
			if c < 0 {
				t.Fatalf("negative count %d", c)
			}
			if math.Abs(float64(c)-freqs[i]) >= 1 {
				t.Fatalf("count %d strays from frequency %v", c, freqs[i])
			}
			sum += c
		}
		if sum != int(math.Round(total)) {
			t.Fatalf("counts sum %d, budget %v", sum, total)
		}
	})
}
