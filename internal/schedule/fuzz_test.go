package schedule

import (
	"math"
	"testing"

	"freshen/internal/freshness"
	"freshen/internal/testkit"
)

// FuzzQuantize checks budget preservation and per-element proximity on
// arbitrary frequency vectors.
func FuzzQuantize(f *testing.F) {
	f.Add([]byte{10, 20, 30})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		freqs := make([]float64, len(raw))
		var total float64
		for i, b := range raw {
			freqs[i] = float64(b) / 16
			total += freqs[i]
		}
		counts, err := Quantize(freqs)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		sum := 0
		for i, c := range counts {
			if c < 0 {
				t.Fatalf("negative count %d", c)
			}
			if math.Abs(float64(c)-freqs[i]) >= 1 {
				t.Fatalf("count %d strays from frequency %v", c, freqs[i])
			}
			sum += c
		}
		if sum != int(math.Round(total)) {
			t.Fatalf("counts sum %d, budget %v", sum, total)
		}
	})
}

// FuzzExploreAllocation drives the estimator↔scheduler boundary with
// arbitrary workloads, uncertainty profiles and budgets: the explore
// slice must never be exceeded, every frequency must be finite and
// non-negative, and the allocation must be a certified water-fill of
// the probe problem (independent KKT check).
func FuzzExploreAllocation(f *testing.F) {
	f.Add([]byte{}, []byte{}, 1.0, 1.0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, []byte{255, 0}, 0.5, 3.0)
	f.Add([]byte{255, 255, 255, 255, 255, 255}, []byte{0}, math.Inf(1), math.NaN())
	f.Fuzz(func(t *testing.T, elemData, uData []byte, rawProbe, rawBudget float64) {
		elems := testkit.FuzzElements(elemData)
		n := len(elems)
		uncertainty := make([]float64, n)
		for i := range uncertainty {
			if len(uData) > 0 {
				uncertainty[i] = float64(uData[i%len(uData)]) / 255
			}
		}
		probeLambda := testkit.FoldFloat(rawProbe, 1e-3, 1e3)
		budget := testkit.FoldFloat(rawBudget, 1e-6, float64(n))
		if rawBudget == 0 {
			budget = 0
		}
		freqs, used, err := AllocateExplore(elems, uncertainty, probeLambda, budget)
		if err != nil {
			t.Fatalf("valid probe problem rejected: %v", err)
		}
		var spent float64
		for i, fq := range freqs {
			if math.IsNaN(fq) || math.IsInf(fq, 0) || fq < 0 {
				t.Fatalf("freq[%d] = %v", i, fq)
			}
			spent += fq * elems[i].Size
		}
		if spent > budget*(1+1e-6)+1e-9 {
			t.Fatalf("explore spent %v over budget %v", spent, budget)
		}
		if math.IsNaN(used) || used < 0 || used > budget*(1+1e-6)+1e-9 {
			t.Fatalf("reported bandwidth %v for budget %v", used, budget)
		}
		if budget == 0 {
			return
		}
		probe, err := ExploreElements(elems, uncertainty, probeLambda)
		if err != nil {
			t.Fatal(err)
		}
		testkit.MustCertify(t, freshness.FixedOrder{}, probe, freqs, budget, 1e-5)
	})
}
