// Package schedule turns a vector of per-element refresh frequencies
// into a concrete synchronization timeline. Under the paper's
// Fixed-Order policy every element is refreshed at a fixed interval
// 1/fᵢ; the timeline merges those per-element arithmetic progressions
// into one time-ordered stream of sync operations, the form consumed
// by the simulator's Synchronization Scheduler and by a real mirror's
// fetch loop.
package schedule
