package freshness

import (
	"math"
	"testing"
)

func TestPerceivedAndAverage(t *testing.T) {
	fo := FixedOrder{}
	elems := []Element{
		{Lambda: 1, AccessProb: 0.8, Size: 1},
		{Lambda: 1, AccessProb: 0.2, Size: 1},
	}
	freqs := []float64{1, 1}
	f11 := fo.Freshness(1, 1)
	pf, err := Perceived(fo, elems, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pf-f11) > 1e-12 {
		t.Errorf("Perceived = %v, want %v (identical elements)", pf, f11)
	}
	af, err := Average(fo, elems, freqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(af-f11) > 1e-12 {
		t.Errorf("Average = %v, want %v", af, f11)
	}
}

func TestPerceivedWeighting(t *testing.T) {
	// The hot element fresh, the cold one stale: PF must equal the hot
	// element's access probability.
	fo := FixedOrder{}
	elems := []Element{
		{Lambda: 0, AccessProb: 0.7, Size: 1}, // never changes: always fresh
		{Lambda: 5, AccessProb: 0.3, Size: 1}, // never refreshed: always stale
	}
	pf, err := Perceived(fo, elems, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pf-0.7) > 1e-12 {
		t.Errorf("Perceived = %v, want 0.7", pf)
	}
}

func TestMetricLengthMismatch(t *testing.T) {
	fo := FixedOrder{}
	elems := []Element{{Lambda: 1, AccessProb: 1, Size: 1}}
	if _, err := Perceived(fo, elems, []float64{1, 2}); err == nil {
		t.Error("Perceived with mismatched lengths must fail")
	}
	if _, err := Average(fo, elems, nil); err == nil {
		t.Error("Average with mismatched lengths must fail")
	}
	if _, err := Average(fo, nil, nil); err == nil {
		t.Error("Average of empty mirror must fail")
	}
	if _, err := BandwidthUsed(elems, nil); err == nil {
		t.Error("BandwidthUsed with mismatched lengths must fail")
	}
}

func TestBandwidthUsed(t *testing.T) {
	elems := []Element{
		{Lambda: 1, AccessProb: 0.5, Size: 2},
		{Lambda: 1, AccessProb: 0.5, Size: 0.5},
	}
	got, err := BandwidthUsed(elems, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 { // 2*3 + 0.5*4
		t.Errorf("BandwidthUsed = %v, want 8", got)
	}
}
