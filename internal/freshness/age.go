package freshness

import "math"

// Age metrics complement freshness: where freshness is the binary
// "is the copy current", age is *how long* a stale copy has been
// stale. Cho & Garcia-Molina define the age of element e at time t as
// 0 if the copy is current and t − (time of the first un-synced
// change) otherwise; the paper optimizes freshness but a mirror
// operator watching an SLA usually reports both.
//
// For the Fixed-Order policy with refresh interval I = 1/f and Poisson
// changes at rate λ, the time-averaged age has the closed form
//
//	Ā(f, λ) = I·(1/2 − 1/r + (1 − e^(−r))/r²),  r = λ/f = λ·I,
//
// obtained by integrating E[age at offset s] = s − (1 − e^(−λs))/λ
// over one refresh interval. As f → ∞ the age vanishes (like λ/(6f²));
// with no refreshing the age of a changing element grows without bound
// (the function returns +Inf for f = 0, λ > 0).

// FixedOrderAge returns the time-averaged age Ā(f, λ) of an element
// under the Fixed-Order policy.
func FixedOrderAge(freq, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if freq <= 0 {
		return math.Inf(1)
	}
	r := lambda / freq
	if r < 1e-4 {
		// Series: 1/2 − 1/r + (1−e^(−r))/r² = r/6 − r²/24 + O(r³).
		return (r/6 - r*r/24) / freq
	}
	return (0.5 - 1/r - math.Expm1(-r)/(r*r)) / freq
}

// PerceivedAge is the profile-weighted mean age Σᵢ pᵢ·Ā(fᵢ, λᵢ): the
// expected staleness of the copy behind a random access. It is +Inf
// whenever any accessed element is never refreshed but does change.
func PerceivedAge(elems []Element, freqs []float64) (float64, error) {
	if len(elems) != len(freqs) {
		return 0, errLenMismatch(len(elems), len(freqs))
	}
	var a float64
	for i, e := range elems {
		if e.AccessProb == 0 {
			continue
		}
		a += e.AccessProb * FixedOrderAge(freqs[i], e.Lambda)
	}
	return a, nil
}

// FixedOrderAgeMarginal returns −∂Ā/∂f, the (positive) rate at which
// an element's time-averaged age falls per unit of extra refresh
// frequency. Differentiating Ā = I·h(λI) gives
//
//	−∂Ā/∂f = (1/f²)·k(r),   k(r) = 1/2 + e^(−r)/r − (1−e^(−r))/r²,
//
// with k increasing from 0 (like r/3) to 1/2. The marginal therefore
// diverges as f → 0 — unlike the freshness objective, the age
// objective never starves a changing element — and decreases
// monotonically in f (Ā is convex), so the same water-filling strategy
// optimizes it.
func FixedOrderAgeMarginal(freq, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if freq <= 0 {
		return math.Inf(1)
	}
	r := lambda / freq
	return fixedOrderK(r) / (freq * freq)
}

// fixedOrderK is k(r) = 1/2 + e^(−r)/r − (1−e^(−r))/r², the
// dimensionless part of the age marginal.
func fixedOrderK(r float64) float64 {
	if r <= 0 {
		return 0
	}
	if r < 1e-4 {
		// Series: k(r) = r/3 − r²/8 + O(r³).
		return r * (1.0/3.0 - r/8)
	}
	er := math.Exp(-r)
	return 0.5 + er/r - (1-er)/(r*r)
}

// InvertFixedOrderAgeMarginal returns the frequency at which the age
// marginal equals target (> 0). The marginal spans (0, ∞), so a
// solution always exists for λ > 0.
func InvertFixedOrderAgeMarginal(target, lambda float64) float64 {
	return InvertFixedOrderAgeMarginalWarm(target, lambda, 0)
}

// InvertFixedOrderAgeMarginalWarm is InvertFixedOrderAgeMarginal with
// a warm-start hint: the frequency returned by a previous inversion
// for the same element at a nearby target. A good hint turns the
// bracketing phase into one or two probes around the old root; a zero
// (or wrong) hint falls back to the cold geometric bracket.
func InvertFixedOrderAgeMarginalWarm(target, lambda, hint float64) float64 {
	if lambda <= 0 || target <= 0 || math.IsInf(target, 0) {
		return 0
	}
	// Bracket f: the marginal decreases in f from +∞ to 0.
	lo, hi := 0.0, 1.0
	if hint > 0 && !math.IsInf(hint, 0) {
		if FixedOrderAgeMarginal(hint, lambda) > target {
			// Root is above the hint.
			lo, hi = hint, 2*hint
		} else {
			// Root is below the hint; keep lo = 0 and shrink from it.
			hi = hint
		}
	}
	for FixedOrderAgeMarginal(hi, lambda) > target {
		lo = hi
		hi *= 2
		if hi > 1e15 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if FixedOrderAgeMarginal(mid, lambda) > target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-14*hi {
			break
		}
	}
	return 0.5 * (lo + hi)
}
